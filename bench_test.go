package act

// One benchmark per table and figure of the paper's evaluation. Each
// regenerates the experiment at quick scale and reports its headline
// number as a benchmark metric; `go test -bench=. -benchmem` therefore
// reproduces the whole evaluation. cmd/actbench prints the full rows,
// and -full there runs the paper-scale versions.

import (
	"testing"

	"act/internal/bench"
	"act/internal/core"
	"act/internal/deps"
	"act/internal/nnhw"
)

func BenchmarkTableIVTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableIV(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.MispredPct
		}
		b.ReportMetric(sum/float64(len(rows)), "avgFP%")
	}
}

func BenchmarkFig7aInvalidDeps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7a(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.FNPct
		}
		b.ReportMetric(sum/float64(len(rows)), "avgFN%")
	}
}

func BenchmarkFig7bNewCode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7b(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.IncorrectPct
		}
		b.ReportMetric(sum/float64(len(rows)), "avgIncorrect%")
	}
}

func BenchmarkTableVRealBugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableV(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		diagnosed, worst := 0, 0
		for _, r := range rows {
			if r.Rank > 0 {
				diagnosed++
				if r.Rank > worst {
					worst = r.Rank
				}
			}
		}
		b.ReportMetric(float64(diagnosed), "diagnosed")
		b.ReportMetric(float64(worst), "worstRank")
	}
}

func BenchmarkTableVIInjectedBugs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableVI(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		diagnosed := 0
		var filter float64
		for _, r := range rows {
			if r.Rank > 0 {
				diagnosed++
			}
			filter += r.FilterPct
		}
		b.ReportMetric(float64(diagnosed), "diagnosed")
		b.ReportMetric(filter/float64(len(rows)), "avgFilter%")
	}
}

func BenchmarkFig8Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8(bench.Quick, nnhw.Config{})
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range rows {
			sum += r.OverheadPct
		}
		b.ReportMetric(sum/float64(len(rows)), "avgOverhead%")
	}
}

func BenchmarkFig9Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: overhead at the default point and the cheapest point.
		for _, r := range rows {
			if r.MulAddUnits == 1 && r.FIFODepth == 8 {
				b.ReportMetric(r.AvgOverhead, "x1fifo8%")
			}
			if r.MulAddUnits == 10 && r.FIFODepth == 16 {
				b.ReportMetric(r.AvgOverhead, "x10fifo16%")
			}
		}
	}
}

func BenchmarkFig10FalseSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Granularity {
			case 8:
				b.ReportMetric(r.MispredPct, "wordFP%")
			case 64:
				b.ReportMetric(r.MispredPct, "line64FP%")
			}
		}
	}
}

func BenchmarkNNDesignComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.NNDesign()
		b.ReportMetric(rows[len(rows)-1].Speedup, "gain10-10-1")
	}
}

func BenchmarkAblationEncoding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationEncoding(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == "pair hash" {
				b.ReportMetric(r.FPPct, "pairHashFP%")
			}
		}
	}
}

func BenchmarkAblationNegatives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationNegatives(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant == "before-last only" {
				b.ReportMetric(r.FNPct, "beforeLastFN%")
			}
		}
	}
}

func BenchmarkAblationRanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationRanking(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Strategy == "most matched (paper)" {
				b.ReportMetric(r.AvgRank, "paperAvgRank")
			}
			if r.Strategy == "most mismatched" {
				b.ReportMetric(r.AvgRank, "mismatchAvgRank")
			}
		}
	}
}

func BenchmarkAblationQuantization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationQuantization(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.FracBits == 9 {
				b.ReportMetric(r.Disagreement, "disagree@Q6.9")
			}
		}
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationThreshold(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.ThresholdPct == 5 {
				b.ReportMetric(float64(r.ModeSwitches), "switches@5%")
			}
		}
	}
}

// BenchmarkPipelineReplay measures monitoring throughput sequential vs
// parallel on the 4-thread radix trace. The "parSpeedup" metric is the
// parallel/sequential records-per-second ratio — it needs GOMAXPROCS > 1
// to exceed 1.0 (on a multicore host the two-stage pipeline reaches its
// gain; on one CPU the channel hand-off is pure overhead).
func BenchmarkPipelineReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := bench.Pipeline(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rep.Rows {
			switch r.Config {
			case "sequential":
				b.ReportMetric(r.RecordsPerSec, "seqRec/s")
			case "parallel":
				b.ReportMetric(r.RecordsPerSec, "parRec/s")
				b.ReportMetric(r.Speedup, "parSpeedup")
			case "parallel+cache":
				b.ReportMetric(r.CacheHitRate, "cacheHit")
			}
		}
	}
}

// BenchmarkClassifySteadyState is the zero-allocation contract for the
// classification hot path: one converged testing-mode module fed a
// recurring dependence stream. -benchmem must report 0 allocs/op.
func BenchmarkClassifySteadyState(b *testing.B) {
	nIn := deps.InputLen(deps.EncodeDefault, 3)
	tr := core.NewTracker(core.AlwaysValidBinary(nIn, 8, 1),
		core.TrackerConfig{Module: core.Config{N: 3}})
	m := tr.Module(0)
	ds := make([]deps.Dep, 64)
	for i := range ds {
		ds[i] = deps.Dep{S: 0x1000 + uint64(i)*16, L: 0x2000 + uint64(i)*16}
	}
	for _, d := range ds {
		m.OnDep(d) // warm up: window ring filled, no further growth
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.OnDep(ds[i&63])
	}
}
