// Online adaptation: deploy ACT with weights that know nothing about a
// whole function (the code was added after the weights shipped), and
// watch the ACT Module flip into online-training mode, absorb the new
// code's communication patterns, and flip back — no offline retraining.
//
// This is the property Section II-C motivates: invariants-in-a-database
// (PSet/Bugaboo-style) would need the whole program retrained after
// every release; a neural network keeps learning in the field.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"act"
	"act/internal/isa"
	"act/internal/trace"
	"act/internal/workloads"
)

func main() {
	w, err := workloads.KernelByName("lu")
	if err != nil {
		log.Fatal(err)
	}

	// Pretend thread 1's first 48 instructions were added in a new
	// release: train as if they did not exist.
	lo, hi := isa.ThreadBase(1), isa.ThreadBase(1)+48*isa.PCStride
	isNew := func(d act.Dep) bool { return d.L >= lo && d.L < hi }

	var trainTr, testTr []*act.Trace
	for s := int64(0); s < 10; s++ {
		tr, _ := trace.Collect(w.Build(s), w.Sched(s))
		trainTr = append(trainTr, tr)
	}
	for s := int64(10_000); s < 10_004; s++ {
		tr, _ := trace.Collect(w.Build(s), w.Sched(s))
		testTr = append(testTr, tr)
	}

	fmt.Println("==> training with the 'new' function withheld")
	model, err := act.Train(trainTr, testTr, act.WithExclude(isNew))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    topology %s\n", model.Topology())

	// Deploy on the full program (new code included) with an aggressive
	// check interval so mode decisions are visible on a short run.
	fmt.Println("==> deploying on the full program (new code now executes)")
	run := func(label string, replays int) {
		mon := act.Deploy(model, w.Threads,
			act.WithCheckInterval(100), act.WithThreshold(0.03))
		for i := 0; i < replays; i++ {
			tr, _ := trace.Collect(w.Build(int64(500+i)), w.Sched(int64(500+i)))
			mon.Replay(tr)
		}
		st := mon.Stats()
		fmt.Printf("    %-12s deps=%-6d flagged=%-5d online-updates=%-5d mode-switches=%d\n",
			label, st.Deps, st.PredictedInvalid, st.Updates, st.ModeSwitches)
	}
	run("1 execution", 1)
	run("4 executions", 4)
	run("8 executions", 8)

	fmt.Println("\nflagged counts stay bounded while online updates accumulate:")
	fmt.Println("the modules learn the new function's communication in the field.")
}
