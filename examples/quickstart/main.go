// Quickstart: the whole ACT workflow in one file.
//
// We take a buggy "server" (the apache workload: an atomicity violation
// on a connection object's reference counter), train ACT on a handful of
// correct executions, deploy it, let a production run crash, and ask ACT
// to rank the root cause — without ever re-running the failure.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"act"
	"act/internal/workloads"
)

func main() {
	bug, err := workloads.BugByName("apache")
	if err != nil {
		log.Fatal(err)
	}

	// 1. The test suite: correct executions, traced.
	fmt.Println("==> collecting correct executions (the test suite)")
	correct, err := workloads.CollectOutcome(bug, false, 12, 0)
	if err != nil {
		log.Fatal(err)
	}
	var trainTraces, testTraces []*act.Trace
	for i, run := range correct {
		if i < 9 {
			trainTraces = append(trainTraces, run.Trace)
		} else {
			testTraces = append(testTraces, run.Trace)
		}
	}

	// 2. Offline training: learn the valid RAW dependence sequences.
	fmt.Println("==> offline training (topology search + backpropagation)")
	model, err := act.Train(trainTraces, testTraces)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    topology %s, sequence length %d, false positives %.3f%%\n",
		model.Topology(), model.SequenceLength(), 100*model.FalsePositiveRate())

	// 3. Production: deploy and wait for a failure.
	fmt.Println("==> production run (deployed monitor, failing interleaving)")
	failure, err := workloads.CollectOutcome(bug, true, 1, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	monitor := act.Deploy(model, failure[0].Program.NumThreads())
	monitor.Replay(failure[0].Trace)
	fmt.Printf("    %s\n", failure[0].Result.Reason)
	debug := monitor.DebugBuffer()
	fmt.Printf("    debug buffer holds %d suspicious sequence(s)\n", len(debug))

	// 4. Diagnosis: prune against fresh correct runs, rank the rest.
	fmt.Println("==> offline postprocessing (the failure is NOT reproduced)")
	prune, err := workloads.CollectOutcome(bug, false, 10, 50_000)
	if err != nil {
		log.Fatal(err)
	}
	var pruneTraces []*act.Trace
	for _, run := range prune {
		pruneTraces = append(pruneTraces, run.Trace)
	}
	report := act.Diagnose(debug, pruneTraces, model.SequenceLength())
	report.Write(os.Stdout, 5)

	// The known root cause: the freed object's data read by the checked
	// user — verify the ranking found it.
	match := bug.Matcher(failure[0].Program)
	if rank := report.RankOf(match); rank > 0 {
		fmt.Printf("\nroot cause (free -> use-after-check) ranked #%d\n", rank)
	} else {
		fmt.Println("\nroot cause not ranked — unexpected")
		os.Exit(1)
	}
}
