// The paper's running example, Figure 2(c): thread T1 allocates a
// pointer (I1: p = malloc) and later frees it (I2: p = NULL); thread T2
// checks the pointer (J1: if p != NULL) and uses it (J2: *p). There is
// no synchronization. The valid dependence sequences are (I1→J1, I1→J2)
// and (I2→J1, …skip…); if I2 interleaves between J1 and J2 the sequence
// (I1→J1, I2→J2) appears and the program crashes.
//
// This example builds that exact program in the reproduction's ISA,
// shows both interleavings, and demonstrates ACT flagging the invalid
// sequence.
//
//	go run ./examples/concurrency-bug
//
// With -ship ADDR the example acts as a tiny fleet: it ships each
// monitored run's Debug Buffer to a running actd collector (failing
// runs marked failing, correct runs correct), so the collector's
// cross-run report can be compared with the local diagnosis:
//
//	go run ./cmd/actd -listen :7077 &
//	go run ./examples/concurrency-bug -ship 127.0.0.1:7077
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"act"
	"act/internal/program"
	"act/internal/trace"
	"act/internal/vm"
)

// buildFig2c builds the two-thread racy pointer program. The scheduler's
// treatment of the Pause hint inside T2's check-use window decides the
// interleaving.
func buildFig2c(rounds int) *program.Program {
	pb := program.New("fig2c")
	sp := pb.Space()
	p := sp.Alloc("p", 1)      // the pointer variable
	obj := sp.Alloc("obj", 1)  // the heap object malloc returns
	round := sp.Alloc("rd", 1) // round handshake
	ack := sp.Alloc("ack", 1)
	pb.SetInit(obj, 1234)

	t1 := pb.Thread() // allocator/freer
	t1.LiAddr(1, p)
	t1.LiAddr(3, round)
	t1.LiAddr(4, ack)
	t1.Li(22, 0) // round counter
	t1.Label("round")
	t1.Li(10, int64(obj))
	t1.Mark("I1")
	t1.Store(10, 1, 0) // I1: p = malloc(...)
	t1.Addi(10, 22, 1)
	t1.Store(10, 3, 0) // release T2 for this round
	// some allocator bookkeeping before the free
	t1.Li(11, 6)
	t1.Label("work")
	t1.Addi(11, 11, -1)
	t1.Bnez(11, "work")
	t1.Li(10, 0)
	t1.Mark("I2")
	t1.Store(10, 1, 0) // I2: p = NULL
	t1.Label("wait")
	t1.Load(11, 4, 0)
	t1.Pause()
	t1.Addi(10, 22, 1)
	t1.Slt(12, 11, 10)
	t1.Bnez(12, "wait")
	t1.Addi(22, 22, 1)
	t1.Li(10, int64(rounds))
	t1.Slt(11, 22, 10)
	t1.Bnez(11, "round")
	t1.Halt()

	t2 := pb.Thread() // user
	t2.LiAddr(1, p)
	t2.LiAddr(3, round)
	t2.LiAddr(4, ack)
	t2.Li(22, 0)
	t2.Label("round")
	t2.Label("wait")
	t2.Load(11, 3, 0)
	t2.Pause()
	t2.Addi(10, 22, 1)
	t2.Slt(12, 11, 10)
	t2.Bnez(12, "wait")
	t2.Mark("J1")
	t2.Load(11, 1, 0) // J1: if (p != NULL)
	t2.Beqz(11, "skip")
	t2.Pause() // the window I2 can slip into
	t2.Mark("J2")
	t2.Load(12, 1, 0)  // J2: p->... (the dereference re-reads p)
	t2.Assert(12)      // NULL here is the crash
	t2.Load(13, 12, 0) // ...then touches the object
	t2.Label("skip")
	t2.Addi(10, 22, 1)
	t2.Store(10, 4, 0)
	t2.Addi(22, 22, 1)
	t2.Li(10, int64(rounds))
	t2.Slt(11, 22, 10)
	t2.Bnez(11, "round")
	t2.Halt()

	return pb.MustBuild()
}

// shipRun replays one trace through a fresh monitor and ships its
// Debug Buffer to the collector as one labelled run.
func shipRun(model *act.Model, addr string, run uint64, tr *act.Trace, failed bool) {
	mon := act.Deploy(model, 2)
	mon.Replay(tr)
	sh, err := act.ShipTo(addr, mon, act.WithShipIdentity("fig2c", run))
	if err != nil {
		log.Fatal(err)
	}
	if failed {
		sh.MarkFailing()
	} else {
		sh.MarkCorrect()
	}
	if err := sh.Close(); err != nil {
		log.Printf("ship run %d: %v", run, err)
	}
}

func main() {
	ship := flag.String("ship", "", "ship each run's Debug Buffer to this actd collector (host:port)")
	flag.Parse()
	const rounds = 12

	// Correct executions: the race window never gets hit.
	fmt.Println("==> collecting correct interleavings")
	var trainTr, testTr []*act.Trace
	for seed := int64(0); len(trainTr) < 8 || len(testTr) < 4; seed++ {
		prog := buildFig2c(rounds)
		tr, res := trace.Collect(prog, vm.SchedConfig{Seed: seed, MeanBurst: 80, PausePct: 10})
		if res.Failed {
			continue
		}
		if len(trainTr) < 8 {
			trainTr = append(trainTr, tr)
		} else {
			testTr = append(testTr, tr)
		}
	}

	model, err := act.Train(trainTr, testTr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    learned topology %s\n", model.Topology())

	// Hunt a failing interleaving: I2 between J1 and J2.
	fmt.Println("==> hunting the buggy interleaving (I1→J1, I2→J2)")
	var failProg *program.Program
	var failTrace *act.Trace
	for seed := int64(1000); ; seed++ {
		prog := buildFig2c(rounds)
		tr, res := trace.Collect(prog, vm.SchedConfig{Seed: seed, MeanBurst: 80, PausePct: 10})
		if res.Failed {
			fmt.Printf("    seed %d: %s\n", seed, res.Reason)
			failProg, failTrace = prog, tr
			break
		}
	}

	monitor := act.Deploy(model, 2)
	monitor.Replay(failTrace)
	report := act.Diagnose(monitor.DebugBuffer(), testTr, model.SequenceLength())
	report.Write(os.Stdout, 3)

	if *ship != "" {
		fmt.Printf("==> shipping runs to actd at %s\n", *ship)
		shipRun(model, *ship, 1, failTrace, true)
		for i, tr := range testTr {
			shipRun(model, *ship, uint64(100+i), tr, false)
		}
		fmt.Println("    shipped; check the collector's report (SIGINT actd to print it)")
	}

	// The invalid dependence is I2→J2: the use observing the free.
	i2, j2 := failProg.MarkPC("t0.I2"), failProg.MarkPC("t1.J2")
	rank := report.RankOf(func(s act.Sequence) bool {
		for _, d := range s {
			if d.S == i2 && d.L == j2 {
				return true
			}
		}
		return false
	})
	if rank == 0 {
		fmt.Println("I2→J2 not ranked — unexpected")
		os.Exit(1)
	}
	fmt.Printf("\nthe paper's invalid sequence (…, I2→J2) ranked #%d\n", rank)
}
