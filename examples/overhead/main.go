// Execution overhead on the simulated multicore: run every benchmark
// kernel on the Table III machine with and without ACT and print the
// slowdown, then sweep the neuron's multiply-add knob to show the
// latency/area trade-off of Section IV-A.
//
//	go run ./examples/overhead
package main

import (
	"fmt"
	"log"

	"act/internal/core"
	"act/internal/mem"
	"act/internal/nnhw"
	"act/internal/sim"
	"act/internal/workloads"
)

func main() {
	memCfg := mem.Config{LineSize: 64, L1Size: 8 << 10, L1Ways: 2, L2Size: 64 << 10, L2Ways: 4}

	fmt.Println("per-kernel overhead, default design point (1 multiply-add unit, FIFO 8):")
	var sum float64
	for _, w := range workloads.Kernels() {
		p := w.Build(1)
		cfg := sim.Config{
			Mem:    memCfg,
			Binary: core.AlwaysValidBinary(6, 10, p.NumThreads()),
		}
		ov, base, withACT, err := sim.Overhead(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var stalls int64
		for _, c := range withACT.Cores {
			stalls += c.NNStalls
		}
		fmt.Printf("  %-14s base %8d cycles   with ACT %8d   overhead %6.2f%%   NN stalls %d\n",
			w.Name, base.Cycles, withACT.Cycles, 100*ov, stalls)
		sum += ov
	}
	fmt.Printf("  %-14s %52.2f%%\n\n", "average", 100*sum/float64(len(workloads.Kernels())))

	fmt.Println("sensitivity: neuron latency T = ceil(M/x)·T_muladd + T_rest")
	for _, x := range []int{1, 2, 5, 10} {
		nnCfg := nnhw.Config{MulAddUnits: x}
		var s float64
		for _, w := range workloads.Kernels() {
			p := w.Build(1)
			cfg := sim.Config{
				Mem:    memCfg,
				NNHW:   nnCfg,
				Binary: core.AlwaysValidBinary(6, 10, p.NumThreads()),
			}
			ov, _, _, err := sim.Overhead(p, cfg)
			if err != nil {
				log.Fatal(err)
			}
			s += ov
		}
		fmt.Printf("  x=%-2d  T=%-3d  average overhead %6.2f%%\n",
			x, nnCfg.NeuronLatency(), 100*s/float64(len(workloads.Kernels())))
	}
}
