package act

import (
	"net"
	"testing"
	"time"

	"act/internal/fleet"
	"act/internal/workloads"
)

// TestShipToFleetDiagnosis is the fleet acceptance path: several agents
// replay failing production runs and ship their Debug Buffers to one
// in-process collector, correct runs ship theirs as pruning evidence,
// and the collector's cross-run ranked report places the bug's
// sequence at rank 1.
func TestShipToFleetDiagnosis(t *testing.T) {
	b, err := workloads.BugByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	correct, err := workloads.CollectOutcome(b, false, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trainTr, testTr []*Trace
	for i, r := range correct {
		if i < 9 {
			trainTr = append(trainTr, r.Trace)
		} else {
			testTr = append(testTr, r.Trace)
		}
	}
	model, err := Train(trainTr, testTr)
	if err != nil {
		t.Fatal(err)
	}

	fails, err := workloads.CollectOutcome(b, true, 3, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	prune, err := workloads.CollectOutcome(b, false, 10, 50_000)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coll := fleet.NewCollector(fleet.CollectorConfig{})
	go coll.Serve(ln)
	defer coll.Shutdown()
	addr := ln.Addr().String()

	var wantEntries uint64
	ship := func(run uint64, tr *Trace, threads int, failing bool) {
		mon := Deploy(model, threads)
		mon.Replay(tr)
		sh, err := ShipTo(addr, mon,
			WithShipIdentity("prod", run),
			WithShipInterval(time.Hour)) // test drives Flush/Close itself
		if err != nil {
			t.Fatal(err)
		}
		if failing {
			sh.MarkFailing()
		} else {
			sh.MarkCorrect()
		}
		if err := sh.Close(); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		wantEntries += sh.ShipStats().Drained
	}
	for i, r := range fails {
		ship(uint64(1+i), r.Trace, r.Program.NumThreads(), true)
	}
	for i, r := range prune {
		ship(uint64(100+i), r.Trace, r.Program.NumThreads(), false)
	}

	deadline := time.Now().Add(5 * time.Second)
	for coll.Stats().Entries < wantEntries {
		if time.Now().After(deadline) {
			t.Fatalf("collector ingested %d/%d entries", coll.Stats().Entries, wantEntries)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rep := coll.Report()
	match := b.Matcher(fails[0].Program)
	if rank := rep.RankOf(match); rank != 1 {
		t.Fatalf("fleet diagnosis ranked the root cause #%d, want #1 (candidates %d)",
			rank, len(rep.Ranked))
	}
	if rep.Ranked[0].Runs != len(fails) {
		t.Fatalf("root cause seen in %d failing runs, want %d", rep.Ranked[0].Runs, len(fails))
	}
	if st := coll.Stats(); st.DupBatches != 0 || st.BadSpans != 0 {
		t.Fatalf("clean loopback reported damage: %+v", st)
	}
}
