package vm

import (
	"testing"

	"act/internal/isa"
	"act/internal/program"
)

// buildCounter returns a single-threaded program that sums 1..n into a
// shared word and Outs the result.
func buildCounter(n int64) *program.Program {
	pb := program.New("counter")
	sum := pb.Space().Alloc("sum", 1)
	b := pb.Thread()
	b.LiAddr(1, sum) // r1 = &sum
	b.Li(2, n)       // r2 = n (counts down)
	b.Label("loop")
	b.Load(3, 1, 0)   // r3 = sum
	b.Add(3, 3, 2)    // r3 += r2
	b.Store(3, 1, 0)  // sum = r3
	b.Addi(2, 2, -1)  // r2--
	b.Bnez(2, "loop") // while r2 != 0
	b.Load(4, 1, 0)
	b.Out(4)
	b.Halt()
	return pb.MustBuild()
}

func TestArithmeticLoop(t *testing.T) {
	p := buildCounter(10)
	res := Run(p, SchedConfig{Seed: 1})
	if res.Failed {
		t.Fatalf("unexpected failure: %s", res.Reason)
	}
	if len(res.Outputs[0]) != 1 || res.Outputs[0][0] != 55 {
		t.Fatalf("output = %v, want [55]", res.Outputs[0])
	}
}

func TestALUOps(t *testing.T) {
	pb := program.New("alu")
	b := pb.Thread()
	b.Li(1, 12)
	b.Li(2, 5)
	b.Sub(3, 1, 2) // 7
	b.Out(3)
	b.Mul(3, 1, 2) // 60
	b.Out(3)
	b.Div(3, 1, 2) // 2
	b.Out(3)
	b.Rem(3, 1, 2) // 2
	b.Out(3)
	b.And(3, 1, 2) // 4
	b.Out(3)
	b.Or(3, 1, 2) // 13
	b.Out(3)
	b.Xor(3, 1, 2) // 9
	b.Out(3)
	b.Li(2, 2)
	b.Shl(3, 1, 2) // 48
	b.Out(3)
	b.Shr(3, 1, 2) // 3
	b.Out(3)
	b.Slt(3, 2, 1) // 1
	b.Out(3)
	b.Seq(3, 1, 1) // 1
	b.Out(3)
	b.Li(2, 0)
	b.Div(3, 1, 2) // div by zero -> 0
	b.Out(3)
	b.Rem(3, 1, 2) // rem by zero -> 0
	b.Out(3)
	b.Halt()
	p := pb.MustBuild()
	res := Run(p, SchedConfig{Seed: 1})
	want := []int64{7, 60, 2, 2, 4, 13, 9, 48, 3, 1, 1, 0, 0}
	got := res.Outputs[0]
	if len(got) != len(want) {
		t.Fatalf("outputs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAssertFailure(t *testing.T) {
	pb := program.New("assert")
	b := pb.Thread()
	b.Li(1, 0)
	b.Mark("boom")
	b.Assert(1)
	b.Halt()
	p := pb.MustBuild()
	res := Run(p, SchedConfig{Seed: 1})
	if !res.Failed {
		t.Fatal("expected failure")
	}
	if res.FailPC != p.MarkPC("t0.boom") {
		t.Errorf("FailPC = %#x, want %#x", res.FailPC, p.MarkPC("t0.boom"))
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// Two threads each do 1000 locked increments; without mutual
	// exclusion under preemption the count would be lost.
	pb := program.New("mutex")
	cnt := pb.Space().Alloc("cnt", 1)
	lk := pb.Space().Alloc("lk", 1)
	for i := 0; i < 2; i++ {
		b := pb.Thread()
		b.LiAddr(1, cnt)
		b.LiAddr(2, lk)
		b.Li(3, 1000)
		b.Label("loop")
		b.Lock(2, 0)
		b.Load(4, 1, 0)
		b.Pause() // preemption point inside the critical section
		b.Addi(4, 4, 1)
		b.Store(4, 1, 0)
		b.Unlock(2, 0)
		b.Addi(3, 3, -1)
		b.Bnez(3, "loop")
		b.Halt()
	}
	p := pb.MustBuild()
	m := runToEnd(t, p, SchedConfig{Seed: 7, MeanBurst: 3, PreemptOnPause: true})
	if got := m.ReadWord(cnt); got != 2000 {
		t.Fatalf("count = %d, want 2000 (mutual exclusion broken)", got)
	}
}

// runToEnd runs the program via the low-level stepping interface using
// the same policy as Run, returning the final VM for state inspection.
func runToEnd(t *testing.T, p *program.Program, cfg SchedConfig) *VM {
	t.Helper()
	m := New(p)
	cur := 0
	for steps := 0; !m.Done(); steps++ {
		if steps > 10_000_000 {
			t.Fatal("program did not terminate")
		}
		if m.Status(cur) != Running {
			cur = m.nextRunnable(cur)
			continue
		}
		ev, ok := m.StepThread(cur)
		if !ok {
			cur = m.nextRunnable(cur)
			continue
		}
		if cfg.PreemptOnPause && ev.Op == isa.Pause {
			cur = m.nextRunnable(cur)
		}
	}
	return m
}

func TestRaceWithoutLock(t *testing.T) {
	// The same increment loop without the lock, with forced preemption
	// at the Pause inside the (non-)critical section, must lose updates.
	pb := program.New("racy")
	cnt := pb.Space().Alloc("cnt", 1)
	for i := 0; i < 2; i++ {
		b := pb.Thread()
		b.LiAddr(1, cnt)
		b.Li(3, 100)
		b.Label("loop")
		b.Load(4, 1, 0)
		b.Pause()
		b.Addi(4, 4, 1)
		b.Store(4, 1, 0)
		b.Addi(3, 3, -1)
		b.Bnez(3, "loop")
		b.Halt()
	}
	p := pb.MustBuild()
	m := runToEnd(t, p, SchedConfig{PreemptOnPause: true})
	if got := m.ReadWord(cnt); got >= 200 {
		t.Fatalf("count = %d, expected lost updates (< 200)", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	pb := program.New("deadlock")
	a := pb.Space().Alloc("a", 1)
	bb := pb.Space().Alloc("b", 1)
	t0 := pb.Thread()
	t0.LiAddr(1, a)
	t0.LiAddr(2, bb)
	t0.Lock(1, 0)
	t0.Pause()
	t0.Lock(2, 0)
	t0.Halt()
	t1 := pb.Thread()
	t1.LiAddr(1, a)
	t1.LiAddr(2, bb)
	t1.Lock(2, 0)
	t1.Pause()
	t1.Lock(1, 0)
	t1.Halt()
	p := pb.MustBuild()
	res := Run(p, SchedConfig{Seed: 1, PreemptOnPause: true})
	if !res.Deadlock {
		t.Fatal("deadlock not detected")
	}
	if !res.Failed || res.Reason != "deadlock" {
		t.Fatalf("Failed=%v Reason=%q, want deadlock failure", res.Failed, res.Reason)
	}
}

func TestAtomicFetchAdd(t *testing.T) {
	pb := program.New("atomic")
	cnt := pb.Space().Alloc("cnt", 1)
	for i := 0; i < 4; i++ {
		b := pb.Thread()
		b.LiAddr(1, cnt)
		b.Li(2, 1)
		b.Li(3, 500)
		b.Label("loop")
		b.Atomic(4, 2, 1, 0)
		b.Addi(3, 3, -1)
		b.Bnez(3, "loop")
		b.Halt()
	}
	p := pb.MustBuild()
	m := runToEnd(t, p, SchedConfig{})
	if got := m.ReadWord(cnt); got != 2000 {
		t.Fatalf("count = %d, want 2000", got)
	}
}

func TestDeterminism(t *testing.T) {
	p := buildCounter(50)
	var seqs [2][]uint64
	for run := 0; run < 2; run++ {
		Run(p, SchedConfig{Seed: 42, OnEvent: func(ev Event) {
			seqs[run] = append(seqs[run], ev.PC)
		}})
	}
	if len(seqs[0]) == 0 || len(seqs[0]) != len(seqs[1]) {
		t.Fatalf("event counts differ: %d vs %d", len(seqs[0]), len(seqs[1]))
	}
	for i := range seqs[0] {
		if seqs[0][i] != seqs[1][i] {
			t.Fatalf("event %d differs across identical runs", i)
		}
	}
}

func TestMaxStepsGuard(t *testing.T) {
	pb := program.New("spin")
	b := pb.Thread()
	b.Label("forever")
	b.Jmp("forever")
	p := pb.MustBuild()
	res := Run(p, SchedConfig{Seed: 1, MaxSteps: 1000})
	if !res.TimedOut {
		t.Fatal("infinite loop not cut off")
	}
	if res.Steps > 1001 {
		t.Fatalf("ran %d steps past the budget", res.Steps)
	}
}

func TestInitialMemoryImage(t *testing.T) {
	pb := program.New("init")
	v := pb.Space().Alloc("v", 1)
	pb.SetInit(v, 99)
	b := pb.Thread()
	b.LiAddr(1, v)
	b.Load(2, 1, 0)
	b.Out(2)
	b.Halt()
	res := Run(pb.MustBuild(), SchedConfig{Seed: 1})
	if res.Outputs[0][0] != 99 {
		t.Fatalf("initial value = %d, want 99", res.Outputs[0][0])
	}
}

func TestStackEventFlag(t *testing.T) {
	pb := program.New("stack")
	b := pb.Thread()
	b.Store(2, isa.SP, 8)
	b.Load(3, isa.SP, 8)
	b.Halt()
	var stackEvents int
	Run(pb.MustBuild(), SchedConfig{Seed: 1, OnEvent: func(ev Event) {
		if ev.Stack {
			stackEvents++
		}
	}})
	if stackEvents != 2 {
		t.Fatalf("stack-flagged events = %d, want 2", stackEvents)
	}
}

func TestLockReentrantSameThread(t *testing.T) {
	// The owner re-acquiring its own lock must not deadlock (the lock
	// model is per-thread ownership, like a spinlock the owner already
	// holds conceptually re-entering a guarded region).
	pb := program.New("reentrant")
	lk := pb.Space().Alloc("lk", 1)
	b := pb.Thread()
	b.LiAddr(1, lk)
	b.Lock(1, 0)
	b.Lock(1, 0) // same owner: proceeds
	b.Unlock(1, 0)
	b.Halt()
	res := Run(pb.MustBuild(), SchedConfig{Seed: 1, MaxSteps: 1000})
	if res.Failed || res.TimedOut || res.Deadlock {
		t.Fatalf("reentrant lock broke: %+v", res)
	}
}

func TestUnlockWithoutLockIsHarmless(t *testing.T) {
	pb := program.New("unlock")
	lk := pb.Space().Alloc("lk", 1)
	b := pb.Thread()
	b.LiAddr(1, lk)
	b.Unlock(1, 0)
	b.Halt()
	res := Run(pb.MustBuild(), SchedConfig{Seed: 1})
	if res.Failed {
		t.Fatalf("stray unlock failed the program: %+v", res)
	}
}

func TestPeek(t *testing.T) {
	pb := program.New("peek")
	b := pb.Thread()
	b.Li(1, 42)
	b.Halt()
	m := New(pb.MustBuild())
	in, ok := m.Peek(0)
	if !ok || in.Op != isa.Li || in.Imm != 42 {
		t.Fatalf("peek = %v %v", in, ok)
	}
	// Peek must not advance execution.
	if in2, ok2 := m.Peek(0); !ok2 || in2 != in {
		t.Fatal("peek advanced the thread")
	}
	m.StepThread(0)
	if in, _ = m.Peek(0); in.Op != isa.Halt {
		t.Fatalf("after step, peek = %v", in)
	}
	m.StepThread(0)
	if _, ok = m.Peek(0); ok {
		t.Fatal("peek succeeded on a halted thread")
	}
}

func TestBranchOutcomeInEvent(t *testing.T) {
	pb := program.New("branch")
	b := pb.Thread()
	b.Li(1, 0)
	b.Beqz(1, "taken") // taken
	b.Nop()
	b.Label("taken")
	b.Li(1, 1)
	b.Beqz(1, "end") // not taken
	b.Label("end")
	b.Halt()
	var outcomes []int64
	Run(pb.MustBuild(), SchedConfig{Seed: 1, OnEvent: func(ev Event) {
		if ev.Op == isa.Beqz {
			outcomes = append(outcomes, ev.Value)
		}
	}})
	if len(outcomes) != 2 || outcomes[0] != 1 || outcomes[1] != 0 {
		t.Fatalf("branch outcomes = %v, want [1 0]", outcomes)
	}
}
