package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"act/internal/isa"
	"act/internal/program"
)

// randomProgram builds an arbitrary but well-formed program: random ALU
// and memory operations, forward-only branches (so loops cannot hang),
// and a final Halt per thread.
func randomProgram(seed int64, threads int) *program.Program {
	rng := rand.New(rand.NewSource(seed))
	pb := program.New("fuzz")
	data := pb.Space().Alloc("data", 64)
	for t := 0; t < threads; t++ {
		b := pb.Thread()
		b.LiAddr(1, data)
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			rd := uint8(2 + rng.Intn(20))
			rs1 := uint8(2 + rng.Intn(20))
			rs2 := uint8(2 + rng.Intn(20))
			switch rng.Intn(10) {
			case 0:
				b.Li(rd, int64(rng.Intn(1000)))
			case 1:
				b.Add(rd, rs1, rs2)
			case 2:
				b.Mul(rd, rs1, rs2)
			case 3:
				b.Div(rd, rs1, rs2)
			case 4:
				// bounded data address: base + (0..63)*8
				off := int64(rng.Intn(64)) * 8
				b.Load(rd, 1, off)
			case 5:
				off := int64(rng.Intn(64)) * 8
				b.Store(rs1, 1, off)
			case 6:
				off := int64(rng.Intn(64)) * 8
				b.Atomic(rd, rs1, 1, off)
			case 7:
				b.Pause()
			case 8:
				b.Slt(rd, rs1, rs2)
			case 9:
				b.Xor(rd, rs1, rs2)
			}
		}
		b.Halt()
	}
	return pb.MustBuild()
}

// TestFuzzRandomProgramsTerminate: arbitrary branch-free programs
// terminate, never panic, and are deterministic under a fixed seed.
func TestFuzzRandomProgramsTerminate(t *testing.T) {
	f := func(seed int64, nt uint8) bool {
		threads := 1 + int(nt)%4
		p := randomProgram(seed, threads)
		cfg := SchedConfig{Seed: seed, MeanBurst: 10, PausePct: 30, MaxSteps: 1_000_000}
		a := Run(p, cfg)
		b := Run(p, cfg)
		if a.TimedOut || a.Failed {
			return false
		}
		return a.Steps == b.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzEventStreamWellFormed: every memory event carries an address
// inside the data segment, and Seq numbers increase.
func TestFuzzEventStreamWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		p := randomProgram(seed, 2)
		lastSeq := int64(-1)
		ok := true
		Run(p, SchedConfig{Seed: seed, OnEvent: func(ev Event) {
			if int64(ev.Seq) <= lastSeq {
				ok = false
			}
			lastSeq = int64(ev.Seq)
			if ev.Op.IsMem() && ev.Addr < program.DataBase {
				ok = false
			}
			if ev.Op == isa.Load && ev.Addr%8 != 0 {
				ok = false
			}
		}})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
