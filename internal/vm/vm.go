// Package vm executes workload programs functionally and emits the
// dynamic instruction stream. It is the reproduction's substitute for
// PIN-instrumented native execution: every executed instruction becomes
// an Event carrying the PC, and memory operations carry their effective
// address — exactly the information ACT's trace collector and the timing
// simulator consume.
//
// The VM is deliberately deterministic: given a program, a scheduler
// configuration and a seed, the interleaving (and therefore the set of
// RAW dependences) is reproducible. Concurrency-bug workloads exploit
// this to produce correct runs and failure runs on demand.
package vm

import (
	"fmt"
	"math/rand"

	"act/internal/isa"
	"act/internal/program"
)

// Event describes one executed dynamic instruction.
type Event struct {
	Seq   uint64 // global dynamic instruction number
	Tid   int    // executing thread
	PC    uint64 // instruction address
	Op    isa.Op // operation
	Addr  uint64 // effective address (memory ops only)
	Value int64  // value loaded (Load/Atomic) or stored (Store)
	Stack bool   // memory op addressed through SP/FP
}

// Status is a thread's scheduling state.
type Status int

// Thread states.
const (
	Running Status = iota // runnable
	Blocked               // waiting on a lock
	Halted                // executed Halt or ran off the end
	Faulted               // failed an Assert
)

// VM is the functional interpreter state for one execution.
type VM struct {
	prog    *program.Program
	mem     map[uint64]int64
	threads []*thread
	locks   map[uint64]int // lock address -> owner tid
	seq     uint64
	outputs [][]int64

	failed  bool
	reason  string
	failPC  uint64
	failTid int
}

type thread struct {
	pc     int
	regs   [isa.NumRegs]int64
	status Status
}

// New creates a VM for the program with its initial memory image loaded
// and every thread's stack pointer initialized to a disjoint region.
func New(p *program.Program) *VM {
	m := &VM{
		prog:    p,
		mem:     make(map[uint64]int64, len(p.Init)),
		locks:   make(map[uint64]int),
		outputs: make([][]int64, len(p.Threads)),
	}
	for a, v := range p.Init {
		m.mem[a&^7] = v
	}
	for t := range p.Threads {
		th := &thread{}
		// Per-thread stacks live far above the data segment.
		th.regs[isa.SP] = int64(0x7000_0000 + uint64(t)<<20)
		th.regs[isa.FP] = th.regs[isa.SP]
		m.threads = append(m.threads, th)
	}
	return m
}

// Status returns thread t's scheduling state, re-checking lock
// availability for blocked threads.
func (m *VM) Status(t int) Status {
	th := m.threads[t]
	if th.status == Blocked {
		in := m.prog.Threads[t][th.pc]
		addr := uint64(th.regs[in.Rs1]+in.Imm) &^ 7
		if _, held := m.locks[addr]; !held {
			th.status = Running
		}
	}
	return th.status
}

// Done reports whether execution is over: a failure occurred, or no
// thread can make progress.
func (m *VM) Done() bool {
	if m.failed {
		return true
	}
	for t := range m.threads {
		if s := m.Status(t); s == Running {
			return false
		}
	}
	return true
}

// Deadlocked reports whether at least one thread is blocked while no
// thread is runnable.
func (m *VM) Deadlocked() bool {
	anyBlocked := false
	for t := range m.threads {
		switch m.Status(t) {
		case Running:
			return false
		case Blocked:
			anyBlocked = true
		}
	}
	return anyBlocked
}

// Failed reports whether an Assert failed, with the reason and PC.
func (m *VM) Failed() (bool, string, uint64) { return m.failed, m.reason, m.failPC }

// FailTid returns the thread that failed the Assert.
func (m *VM) FailTid() int { return m.failTid }

// Output returns the values thread t emitted with Out.
func (m *VM) Output(t int) []int64 { return m.outputs[t] }

// ReadWord returns the current value of the data word at addr.
func (m *VM) ReadWord(addr uint64) int64 { return m.mem[addr&^7] }

// Steps returns the number of dynamic instructions executed so far.
func (m *VM) Steps() uint64 { return m.seq }

// Peek returns thread t's next instruction without executing it, and
// whether the thread can currently run. The timing simulator uses it to
// check operand readiness before committing to an issue.
func (m *VM) Peek(t int) (isa.Instr, bool) {
	if m.Status(t) != Running {
		return isa.Instr{}, false
	}
	th := m.threads[t]
	code := m.prog.Threads[t]
	if th.pc >= len(code) {
		return isa.Instr{}, false
	}
	return code[th.pc], true
}

// StepThread executes one instruction of thread t. It returns the
// resulting event and true, or a zero Event and false if the thread
// cannot execute (halted, faulted, or blocked on a lock).
func (m *VM) StepThread(t int) (Event, bool) {
	th := m.threads[t]
	if m.Status(t) != Running {
		return Event{}, false
	}
	code := m.prog.Threads[t]
	if th.pc >= len(code) {
		th.status = Halted
		return Event{}, false
	}
	in := code[th.pc]
	ev := Event{Seq: m.seq, Tid: t, PC: isa.PC(t, th.pc), Op: in.Op}
	next := th.pc + 1
	r := &th.regs

	switch in.Op {
	case isa.Nop, isa.Fence, isa.Pause:
	case isa.Li:
		r[in.Rd] = in.Imm
	case isa.Mov:
		r[in.Rd] = r[in.Rs1]
	case isa.Add:
		r[in.Rd] = r[in.Rs1] + r[in.Rs2]
	case isa.Addi:
		r[in.Rd] = r[in.Rs1] + in.Imm
	case isa.Sub:
		r[in.Rd] = r[in.Rs1] - r[in.Rs2]
	case isa.Mul:
		r[in.Rd] = r[in.Rs1] * r[in.Rs2]
	case isa.Div:
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = r[in.Rs1] / r[in.Rs2]
		}
	case isa.Rem:
		if r[in.Rs2] == 0 {
			r[in.Rd] = 0
		} else {
			r[in.Rd] = r[in.Rs1] % r[in.Rs2]
		}
	case isa.And:
		r[in.Rd] = r[in.Rs1] & r[in.Rs2]
	case isa.Or:
		r[in.Rd] = r[in.Rs1] | r[in.Rs2]
	case isa.Xor:
		r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
	case isa.Shl:
		r[in.Rd] = r[in.Rs1] << (uint64(r[in.Rs2]) & 63)
	case isa.Shr:
		r[in.Rd] = int64(uint64(r[in.Rs1]) >> (uint64(r[in.Rs2]) & 63))
	case isa.Slt:
		r[in.Rd] = b2i(r[in.Rs1] < r[in.Rs2])
	case isa.Seq:
		r[in.Rd] = b2i(r[in.Rs1] == r[in.Rs2])
	case isa.Load:
		addr := uint64(r[in.Rs1]+in.Imm) &^ 7
		v := m.mem[addr]
		r[in.Rd] = v
		ev.Addr, ev.Value, ev.Stack = addr, v, in.UsesStackReg()
	case isa.Store:
		addr := uint64(r[in.Rs1]+in.Imm) &^ 7
		m.mem[addr] = r[in.Rs2]
		ev.Addr, ev.Value, ev.Stack = addr, r[in.Rs2], in.UsesStackReg()
	case isa.Atomic:
		addr := uint64(r[in.Rs1]+in.Imm) &^ 7
		old := m.mem[addr]
		m.mem[addr] = old + r[in.Rs2]
		r[in.Rd] = old
		ev.Addr, ev.Value, ev.Stack = addr, old, in.UsesStackReg()
	case isa.Beqz:
		if r[in.Rs1] == 0 {
			next = int(in.Target)
			ev.Value = 1 // taken
		}
	case isa.Bnez:
		if r[in.Rs1] != 0 {
			next = int(in.Target)
			ev.Value = 1
		}
	case isa.Jmp:
		next = int(in.Target)
		ev.Value = 1
	case isa.Lock:
		addr := uint64(r[in.Rs1]+in.Imm) &^ 7
		if owner, held := m.locks[addr]; held && owner != t {
			th.status = Blocked
			return Event{}, false
		}
		m.locks[addr] = t
	case isa.Unlock:
		addr := uint64(r[in.Rs1]+in.Imm) &^ 7
		delete(m.locks, addr)
	case isa.Assert:
		if r[in.Rs1] == 0 {
			th.status = Faulted
			m.failed = true
			m.reason = fmt.Sprintf("assertion failed at %#x (thread %d)", ev.PC, t)
			m.failPC = ev.PC
			m.failTid = t
		}
	case isa.Out:
		m.outputs[t] = append(m.outputs[t], r[in.Rs1])
	case isa.Halt:
		th.status = Halted
	default:
		panic(fmt.Sprintf("vm: unknown op %v at %#x", in.Op, ev.PC))
	}

	th.pc = next
	if th.pc >= len(code) && th.status == Running {
		th.status = Halted
	}
	m.seq++
	return ev, true
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// SchedConfig controls the deterministic scheduler used by Run.
type SchedConfig struct {
	// Seed seeds the burst-length generator; the same seed reproduces
	// the same interleaving.
	Seed int64
	// MeanBurst is the average number of instructions a thread runs
	// before the scheduler preempts it. Zero means 50.
	MeanBurst int
	// PreemptOnPause forces a context switch at every Pause hint, the
	// mechanism the concurrency-bug workloads use to open their race
	// windows deterministically.
	PreemptOnPause bool
	// PausePct preempts at a Pause hint with the given probability in
	// percent (0-100), modelling race windows that are hit only
	// sometimes. Ignored when PreemptOnPause is set.
	PausePct int
	// MaxSteps bounds total dynamic instructions. Zero means 50 million.
	MaxSteps uint64
	// OnEvent, when non-nil, observes every executed instruction.
	OnEvent func(Event)
}

// Result summarizes one execution.
type Result struct {
	Failed   bool   // an Assert failed
	Reason   string // failure description
	FailPC   uint64 // PC of the failed Assert
	FailTid  int    // thread that failed
	Deadlock bool   // all non-halted threads blocked
	TimedOut bool   // MaxSteps exhausted
	Steps    uint64 // dynamic instructions executed
	Outputs  [][]int64
}

// Run executes the program to completion under the configured scheduler
// and returns the outcome.
func Run(p *program.Program, cfg SchedConfig) *Result {
	if cfg.MeanBurst <= 0 {
		cfg.MeanBurst = 50
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 50_000_000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := New(p)
	n := len(p.Threads)
	cur := 0
	budget := burst(rng, cfg.MeanBurst)

	for !m.Done() && m.seq < cfg.MaxSteps {
		if m.Status(cur) != Running {
			cur = m.nextRunnable(cur)
			budget = burst(rng, cfg.MeanBurst)
			continue
		}
		ev, ok := m.StepThread(cur)
		if !ok {
			cur = m.nextRunnable(cur)
			budget = burst(rng, cfg.MeanBurst)
			continue
		}
		if cfg.OnEvent != nil {
			cfg.OnEvent(ev)
		}
		budget--
		switchNow := budget <= 0
		if ev.Op == isa.Pause {
			switchNow = switchNow || cfg.PreemptOnPause ||
				(cfg.PausePct > 0 && rng.Intn(100) < cfg.PausePct)
		}
		if switchNow && n > 1 {
			cur = m.nextRunnable(cur)
			budget = burst(rng, cfg.MeanBurst)
		}
	}

	res := &Result{Steps: m.seq, Outputs: m.outputs}
	res.Failed, res.Reason, res.FailPC = m.Failed()
	res.FailTid = m.failTid
	res.Deadlock = m.Deadlocked()
	if res.Deadlock && !res.Failed {
		res.Failed = true
		res.Reason = "deadlock"
	}
	if m.seq >= cfg.MaxSteps {
		res.TimedOut = true
	}
	return res
}

// nextRunnable returns the next thread after cur that can run, or cur if
// none can.
func (m *VM) nextRunnable(cur int) int {
	n := len(m.threads)
	for i := 1; i <= n; i++ {
		t := (cur + i) % n
		if m.Status(t) == Running {
			return t
		}
	}
	return cur
}

func burst(rng *rand.Rand, mean int) int {
	return 1 + rng.Intn(2*mean)
}
