package core

import "act/internal/obs"

// Always-on instruments on the process-wide registry. These are new
// signals no existing counter carries (timings, rate distributions);
// everything core already counts in Stats is bridged at scrape time by
// RegisterMetrics instead, so the hot path pays nothing twice.
var (
	// statWindowRate is the distribution of per-window misprediction
	// rates in permille, observed once per completed CheckInterval
	// window — the signal the testing<->training state machine runs on.
	statWindowRate = obs.Default.Histogram("act_core_window_rate_permille",
		"Per-window misprediction rate in permille, one observation per rate check.")

	// statReplays counts whole-trace replays (sequential or parallel).
	statReplays = obs.Default.Counter("act_replay_total",
		"Whole-trace replays completed (sequential and parallel).")

	// statReplayNS times whole replays end to end.
	statReplayNS = obs.Default.Histogram("act_replay_ns",
		"Whole-trace replay duration in nanoseconds.")

	// statReplayBatchNS times one worker's classification of one fanout
	// batch — the unit of parallel-replay work.
	statReplayBatchNS = obs.Default.Histogram("act_replay_batch_ns",
		"Per-worker classification time of one fanout batch in nanoseconds.")
)

// RegisterMetrics exposes the tracker's aggregate state on r as
// act_core_* series. Every series is sampled at scrape time through
// StatsSnapshot, so registering costs the replay hot path nothing and
// scraping is race-free even mid-ReplayParallel. Typically called once
// per deployment on the registry a Monitor or daemon serves.
func (t *Tracker) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("act_core_deps_total",
		"RAW dependences processed across all modules.",
		func() uint64 { return t.StatsSnapshot().Deps })
	r.CounterFunc("act_core_sequences_total",
		"Full-length dependence sequences classified.",
		func() uint64 { return t.StatsSnapshot().Sequences })
	r.CounterFunc("act_core_predicted_invalid_total",
		"Sequences the network rejected (Debug Buffer inserts).",
		func() uint64 { return t.StatsSnapshot().PredictedInvalid })
	r.CounterFunc("act_core_updates_total",
		"Online backprop weight updates.",
		func() uint64 { return t.StatsSnapshot().Updates })
	r.CounterFunc("act_core_mode_switches_total",
		"Testing<->training mode transitions.",
		func() uint64 { return t.StatsSnapshot().ModeSwitches })
	r.CounterFunc("act_core_training_deps_total",
		"Dependences processed while in training mode.",
		func() uint64 { return t.StatsSnapshot().TrainingDeps })
	r.CounterFunc("act_core_snapshots_total",
		"Weight snapshots taken on healthy windows.",
		func() uint64 { return t.StatsSnapshot().Snapshots })
	r.CounterFunc("act_core_recoveries_total",
		"Breaker rollbacks to the last-known-good snapshot.",
		func() uint64 { return t.StatsSnapshot().Recoveries })
	r.CounterFunc("act_core_verdict_cache_hits_total",
		"Verdicts served from the memoization cache.",
		func() uint64 { return t.StatsSnapshot().CacheHits })
	r.CounterFunc("act_core_verdict_cache_misses_total",
		"Testing-mode classifications the cache missed.",
		func() uint64 { return t.StatsSnapshot().CacheMisses })
	r.GaugeFunc("act_core_modules",
		"Deployed ACT Modules (one per processor seen).",
		func() float64 { return float64(t.Modules()) })
	r.CounterFunc("act_core_weight_generations_total",
		"Sum of per-module weight-state generations (updates, mode switches, recoveries).",
		func() uint64 { return t.Generations() })
}
