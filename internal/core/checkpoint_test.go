// Checkpoint codec and restore invariants: a restored tracker is
// indistinguishable from the one that was exported (same bytes on
// re-export, same observables on continued replay), and resume refuses
// state from a different run.
package core

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"act/internal/deps"
	"act/internal/pipeline"
	"act/internal/trace"
)

// splitReplay replays tr up to cursor on a fresh tracker built by mk
// and returns the tracker (using the staged sequential path, like
// Replay does).
func splitReplay(mk func() *Tracker, tr *trace.Trace, cursor int) *Tracker {
	t := mk()
	prev := t.ext.OnDep
	t.ext.OnDep = t.stageDep
	for _, r := range tr.Records[:cursor] {
		t.OnRecord(r)
	}
	t.flushStaged()
	t.ext.OnDep = prev
	return t
}

func TestCheckpointRoundTrip(t *testing.T) {
	tr := randTrace(11, 3, 4000)
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	cfg := TrackerConfig{Module: Config{N: 2, CheckInterval: 100}, Seed: 5}
	mk := func() *Tracker { return NewTracker(NewWeightBinary(nIn, 6), cfg) }

	cursor := len(tr.Records) / 2
	src := splitReplay(mk, tr, cursor)
	img, err := src.EncodeCheckpoint(tr, cursor)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	// Decoding must reproduce the exported state exactly.
	hdr, st, extra, err := DecodeCheckpoint(img)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if int(hdr.Cursor) != cursor || hdr.Program != tr.Program || len(extra) != 0 {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	if want := src.ExportState(); !reflect.DeepEqual(*st, want) {
		t.Fatalf("decoded state differs from exported state")
	}

	// A restored tracker re-encodes to the identical image (save→load→
	// save is a fixed point) ...
	dst := mk()
	gotCursor, _, err := dst.RestoreCheckpoint(img, tr)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if gotCursor != cursor {
		t.Fatalf("restored cursor %d, want %d", gotCursor, cursor)
	}
	img2, err := dst.EncodeCheckpoint(tr, cursor)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(img, img2) {
		t.Fatalf("restore+re-encode changed the image (%d vs %d bytes)", len(img), len(img2))
	}

	// ... and finishing the trace on it matches an uninterrupted run.
	full := splitReplay(mk, tr, len(tr.Records))
	prev := dst.ext.OnDep
	dst.ext.OnDep = dst.stageDep
	for _, r := range tr.Records[cursor:] {
		dst.OnRecord(r)
	}
	dst.flushStaged()
	dst.ext.OnDep = prev
	if !reflect.DeepEqual(full.DebugBuffers(), dst.DebugBuffers()) {
		t.Fatalf("debug buffers diverge after resume")
	}
	if fs, ds := full.Stats(), dst.Stats(); fs != ds {
		t.Fatalf("stats diverge after resume:\nfull %+v\nrest %+v", fs, ds)
	}
}

func TestCheckpointRefusesForeignState(t *testing.T) {
	tr := randTrace(11, 3, 2000)
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	cfg := TrackerConfig{Module: Config{N: 2}, Seed: 5}
	src := NewTracker(NewWeightBinary(nIn, 6), cfg)
	src.Replay(tr)
	img, err := src.EncodeCheckpoint(tr, len(tr.Records))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	cases := []struct {
		name string
		mk   func() *Tracker
		tr   *trace.Trace
	}{
		{"different seed", func() *Tracker {
			c := cfg
			c.Seed = 6
			return NewTracker(NewWeightBinary(nIn, 6), c)
		}, tr},
		{"different config", func() *Tracker {
			c := cfg
			c.Module.CheckInterval = 50
			return NewTracker(NewWeightBinary(nIn, 6), c)
		}, tr},
		{"different granularity", func() *Tracker {
			c := cfg
			c.Granularity = 64
			return NewTracker(NewWeightBinary(nIn, 6), c)
		}, tr},
		{"different trace", func() *Tracker {
			return NewTracker(NewWeightBinary(nIn, 6), cfg)
		}, randTrace(12, 3, 2000)},
	}
	for _, tc := range cases {
		if _, _, err := tc.mk().RestoreCheckpoint(img, tc.tr); err == nil {
			t.Errorf("%s: restore accepted foreign checkpoint", tc.name)
		}
	}

	// A tracker that has already replayed is not fresh.
	if _, _, err := src.RestoreCheckpoint(img, tr); err == nil {
		t.Error("restore accepted a non-fresh tracker")
	}
}

func TestCheckpointExtraSections(t *testing.T) {
	tr := randTrace(3, 2, 500)
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	mk := func() *Tracker {
		return NewTracker(NewWeightBinary(nIn, 6), TrackerConfig{Module: Config{N: 2}, Seed: 1})
	}
	src := mk()
	src.Replay(tr)

	payload := []byte("stage result bytes")
	img, err := src.EncodeCheckpoint(tr, len(tr.Records), pipeline.Section{Kind: 64, Data: payload})
	if err != nil {
		t.Fatalf("encode with extra: %v", err)
	}
	_, extra, err := mk().RestoreCheckpoint(img, tr)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(extra) != 1 || extra[0].Kind != 64 || !bytes.Equal(extra[0].Data, payload) {
		t.Fatalf("extra sections did not round-trip: %+v", extra)
	}

	// Kinds in the core-owned or terminator range are rejected.
	for _, kind := range []byte{1, 63, 0xFF} {
		if _, err := src.EncodeCheckpoint(tr, 0, pipeline.Section{Kind: kind}); err == nil {
			t.Errorf("kind %d accepted as extra section", kind)
		}
	}
}

func TestReplayCheckpointedWritesAndResumes(t *testing.T) {
	tr := randTrace(21, 3, 6000)
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	cfg := TrackerConfig{Module: Config{N: 2, CheckInterval: 100}, Seed: 9}
	mk := func() *Tracker { return NewTracker(NewWeightBinary(nIn, 6), cfg) }
	path := filepath.Join(t.TempDir(), "replay.ckpt")

	// Abort after the second checkpoint — a simulated kill.
	killed := mk()
	st, err := killed.ReplayCheckpointed(tr, nil, CheckpointConfig{Path: path, Interval: 1000, AbortAfter: 2})
	if !errors.Is(err, ErrReplayAborted) {
		t.Fatalf("want ErrReplayAborted, got %v", err)
	}
	if st.Checkpoints != 2 || st.Resumed {
		t.Fatalf("aborted status %+v", st)
	}

	// Resume on a fresh tracker finishes the trace.
	resumed := mk()
	st, err = resumed.ReplayCheckpointed(tr, nil, CheckpointConfig{Path: path, Interval: 1000, Resume: true})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !st.Resumed || st.ResumedFrom != 2000 {
		t.Fatalf("resume status %+v", st)
	}

	full := mk()
	full.Replay(tr)
	if !reflect.DeepEqual(full.DebugBuffers(), resumed.DebugBuffers()) {
		t.Fatalf("debug buffers diverge after kill+resume")
	}

	// Rerun over the completed image: resumes straight to the end,
	// writing nothing new.
	rerun := mk()
	st, err = rerun.ReplayCheckpointed(tr, nil, CheckpointConfig{Path: path, Interval: 1000, Resume: true})
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !st.Resumed || st.ResumedFrom != len(tr.Records) || st.Checkpoints != 0 {
		t.Fatalf("rerun status %+v", st)
	}
	if !reflect.DeepEqual(full.DebugBuffers(), rerun.DebugBuffers()) {
		t.Fatalf("debug buffers diverge after instant resume")
	}
}

func TestReplayCheckpointedLenientOnCorruptFile(t *testing.T) {
	tr := randTrace(4, 2, 1000)
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	mk := func() *Tracker {
		return NewTracker(NewWeightBinary(nIn, 6), TrackerConfig{Module: Config{N: 2}, Seed: 1})
	}
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := pipeline.WriteFile(path, []byte("ACTK garbage that is not a checkpoint")); err != nil {
		t.Fatal(err)
	}
	tk := mk()
	st, err := tk.ReplayCheckpointed(tr, nil, CheckpointConfig{Path: path, Resume: true})
	if err != nil {
		t.Fatalf("lenient resume errored: %v", err)
	}
	if st.Resumed || st.Reason == "" {
		t.Fatalf("corrupt file should force a fresh run with a reason, got %+v", st)
	}
	full := mk()
	full.Replay(tr)
	if !reflect.DeepEqual(full.DebugBuffers(), tk.DebugBuffers()) {
		t.Fatalf("fresh-after-corrupt run diverges from plain replay")
	}
}
