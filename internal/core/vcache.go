package core

// Verdict memoization. RAW dependence sequences repeat heavily — the
// paper's Table IV counts on the order of 5–24 unique dependences per
// program against millions of dynamic ones — so while a module's
// weights are unchanged, a sequence's network output is a pure function
// of its identity. The cache maps a sequence's FNV-1a hash to the
// output the network produced for it, short-circuiting Forward on
// repeats.
//
// Consistency is enforced with a generation stamp: every weight
// mutation (an online training step, a LoadWeights, a breaker rollback)
// and every mode switch bumps the module's generation, and the cache
// resets itself lazily the first time it is consulted under a new
// generation. A hash collision would return the colliding sequence's
// output; with 64-bit FNV-1a over the handful of distinct sequences a
// deployment sees, that is vanishingly unlikely and at worst mirrors a
// single misprediction.
//
// The structure is a classic intrusive-list LRU over a preallocated
// entry arena plus a fixed-capacity index map, so steady-state hits,
// inserts, and evictions perform zero heap allocations.

// DefaultVerdictCache is the capacity used when Config.VerdictCache is
// set to a negative value ("enable at the default size").
const DefaultVerdictCache = 1024

type vcEntry struct {
	hash       uint64
	out        float64
	prev, next int32 // intrusive LRU list; -1 terminates
}

type verdictCache struct {
	gen        uint64 // module generation the contents are valid for
	idx        map[uint64]int32
	ent        []vcEntry
	head, tail int32 // most / least recently used
	used       int
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		idx:  make(map[uint64]int32, capacity),
		ent:  make([]vcEntry, capacity),
		head: -1,
		tail: -1,
	}
}

// sync resets the cache if the module generation moved past it.
//
//act:noalloc
func (c *verdictCache) sync(gen uint64) {
	if c.gen != gen {
		clear(c.idx)
		c.used = 0
		c.head, c.tail = -1, -1
		c.gen = gen
	}
}

// unlink removes entry i from the LRU list.
//
//act:noalloc
func (c *verdictCache) unlink(i int32) {
	e := &c.ent[i]
	if e.prev >= 0 {
		c.ent[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next >= 0 {
		c.ent[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
}

// pushFront makes entry i the most recently used.
//
//act:noalloc
func (c *verdictCache) pushFront(i int32) {
	e := &c.ent[i]
	e.prev, e.next = -1, c.head
	if c.head >= 0 {
		c.ent[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// get looks up a verdict under the given generation.
//
//act:noalloc
func (c *verdictCache) get(hash, gen uint64) (float64, bool) {
	c.sync(gen)
	i, ok := c.idx[hash]
	if !ok {
		return 0, false
	}
	if i != c.head {
		c.unlink(i)
		c.pushFront(i)
	}
	return c.ent[i].out, true
}

// put records a verdict under the given generation, evicting the least
// recently used entry at capacity.
//
//act:noalloc
func (c *verdictCache) put(hash, gen uint64, out float64) {
	c.sync(gen)
	if i, ok := c.idx[hash]; ok {
		c.ent[i].out = out
		if i != c.head {
			c.unlink(i)
			c.pushFront(i)
		}
		return
	}
	var i int32
	if c.used < len(c.ent) {
		i = int32(c.used)
		c.used++
	} else {
		i = c.tail
		delete(c.idx, c.ent[i].hash)
		c.unlink(i)
	}
	c.ent[i] = vcEntry{hash: hash, out: out}
	c.pushFront(i)
	c.idx[hash] = i
}

// Len returns the number of live entries (tests).
func (c *verdictCache) Len() int { return c.used }
