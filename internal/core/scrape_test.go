package core

import (
	"io"
	"sync"
	"testing"

	"act/internal/deps"
	"act/internal/obs"
)

// TestReplayParallelScrapeDuringReplay pins the Stats race fix: a
// metrics scrape (StatsSnapshot plus a registry render, exactly what an
// actd /metrics hit does) must be safe while ReplayParallel's workers
// are classifying. The -race run in CI is the actual assertion; the
// value checks below only pin that snapshots are coherent sums.
// The TestReplayParallel name prefix keeps it inside CI's -race regex.
func TestReplayParallelScrapeDuringReplay(t *testing.T) {
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	tr := randTrace(11, 8, 4000)
	tk := NewTracker(AlwaysValidBinary(nIn, 6, 8), TrackerConfig{
		Module: Config{N: 2, VerdictCache: -1},
	})
	reg := obs.NewRegistry()
	tk.RegisterMetrics(reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := tk.StatsSnapshot()
			if s.Sequences > s.Deps {
				t.Errorf("torn snapshot: %d sequences from %d deps", s.Sequences, s.Deps)
				return
			}
			if err := reg.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			tk.Generations()
			tk.Modules()
		}
	}()

	for i := 0; i < 3; i++ {
		tk.ReplayParallel(tr, ParallelConfig{Batch: 7, Depth: 2})
	}
	close(stop)
	wg.Wait()

	// After the replays quiesce, the snapshot equals what an identical
	// unscraped tracker reports: scraping is observation, not mutation.
	ref := NewTracker(AlwaysValidBinary(nIn, 6, 8), TrackerConfig{
		Module: Config{N: 2, VerdictCache: -1},
	})
	for i := 0; i < 3; i++ {
		ref.Replay(tr)
	}
	if got, want := tk.StatsSnapshot(), ref.StatsSnapshot(); got != want {
		t.Fatalf("scraped replay diverged:\ngot  %+v\nwant %+v", got, want)
	}
}
