package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"act/internal/deps"
	"act/internal/nn"
)

// quantModulePair builds two identically seeded modules so a test can
// drive one through OnDep and the other through OnDeps and compare
// every observable.
func quantModulePair(seed int64, cfg Config) (*Module, *Module) {
	mk := func() *Module {
		nIn := deps.InputLen(deps.EncodeDefault, cfg.N)
		return NewModule(nn.New(nIn, 6, rand.New(rand.NewSource(seed))), cfg)
	}
	return mk(), mk()
}

// randDeps builds a dependence stream over a small address pool (so
// sequences repeat and the verdict cache gets hits).
func randDeps(seed int64, n int) []deps.Dep {
	rng := rand.New(rand.NewSource(seed))
	ds := make([]deps.Dep, n)
	for i := range ds {
		ds[i] = deps.Dep{
			S:     0x1000 + uint64(rng.Intn(24))*8,
			L:     0x8000 + uint64(rng.Intn(24))*8,
			Inter: rng.Intn(4) == 0,
		}
	}
	return ds
}

// moduleStateEqual asserts two modules reached bit-identical observable
// state.
func moduleStateEqual(t *testing.T, ref, got *Module) {
	t.Helper()
	if rs, gs := ref.Stats(), got.Stats(); rs != gs {
		t.Fatalf("stats diverge:\nper-dep %+v\nbatched %+v", rs, gs)
	}
	if ref.Mode() != got.Mode() {
		t.Fatalf("mode diverges: %v vs %v", ref.Mode(), got.Mode())
	}
	if rg, gg := ref.Generation(), got.Generation(); rg != gg {
		t.Fatalf("generation diverges: %d vs %d", rg, gg)
	}
	if !reflect.DeepEqual(ref.DebugBuffer(), got.DebugBuffer()) {
		t.Fatalf("debug buffers diverge: %d vs %d entries", len(ref.DebugBuffer()), len(got.DebugBuffer()))
	}
	if !reflect.DeepEqual(ref.SaveWeights(), got.SaveWeights()) {
		t.Fatal("weights diverge")
	}
}

// TestOnDepsMatchesOnDep is the batch-boundary invisibility property:
// feeding a stream through OnDeps in arbitrary chunkings — including
// chunks beyond quantChunk — leaves the module in exactly the state a
// per-dependence OnDep loop produces, across float/quantized and
// cache/no-cache configurations, with rate windows short enough that
// modes flip and kernels go stale mid-chunk.
func TestOnDepsMatchesOnDep(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"float", Config{N: 3, CheckInterval: 64}},
		{"quant", Config{N: 3, CheckInterval: 64, Quantized: true}},
		{"quant+cache", Config{N: 3, CheckInterval: 64, Quantized: true, VerdictCache: 32}},
		{"quant+N1", Config{N: 1, CheckInterval: 100, Quantized: true}},
	} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				ref, got := quantModulePair(seed, tc.cfg)
				ds := randDeps(seed, 4000)
				for _, d := range ds {
					ref.OnDep(d)
				}
				rng := rand.New(rand.NewSource(seed + 77))
				for len(ds) > 0 {
					n := 1 + rng.Intn(700) // crosses quantChunk
					if n > len(ds) {
						n = len(ds)
					}
					got.OnDeps(ds[:n])
					ds = ds[n:]
				}
				moduleStateEqual(t, ref, got)
			})
		}
	}
}

// TestQuantReadyLifecycle pins the generation scheme: a compiled kernel
// is valid for exactly one weight generation; training steps, direct
// weight mutation, and InvalidateVerdicts all orphan it; a poisoned
// weight state refuses to compile (float fallback) until recovery
// produces a compilable one again.
func TestQuantReadyLifecycle(t *testing.T) {
	cfg := Config{N: 3, Quantized: true}
	m, _ := quantModulePair(11, cfg)

	// First classification compiles a kernel for the current generation.
	m.OnDep(deps.Dep{S: 1, L: 2})
	g0, ok := m.QuantGeneration()
	if !ok || g0 != m.Generation() {
		t.Fatalf("no kernel after first classification (gen %d, qgen %d ok=%v)", m.Generation(), g0, ok)
	}

	// A training pass moves the generation; the next testing
	// classification must recompile.
	m.ForceMode(Training)
	m.OnDep(deps.Dep{S: 3, L: 4})
	m.ForceMode(Testing)
	m.OnDep(deps.Dep{S: 5, L: 6})
	g1, _ := m.QuantGeneration()
	if g1 == g0 || g1 != m.Generation() {
		t.Fatalf("kernel not recompiled after training (was gen %d, now %d, module gen %d)", g0, g1, m.Generation())
	}

	// Poison the weights through the diagnostics hook: compile must
	// fail, classification must fall back to float (surfacing NaN), the
	// breaker must recover, and the kernel must re-arm at the recovered
	// generation.
	m.Network().WO[0] = math.NaN()
	m.InvalidateVerdicts()
	before := m.Stats().Recoveries
	m.OnDep(deps.Dep{S: 7, L: 8})
	if rec := m.Stats().Recoveries; rec != before+1 {
		t.Fatalf("NaN weights did not trigger recovery (recoveries %d -> %d)", before, rec)
	}
	m.OnDep(deps.Dep{S: 9, L: 10})
	g2, ok := m.QuantGeneration()
	if !ok || g2 != m.Generation() || g2 == g1 {
		t.Fatalf("kernel not re-armed after recovery (qgen %d ok=%v, module gen %d)", g2, ok, m.Generation())
	}
}

// TestQuantRollbackRecompiles drives the breaker's stalled-window
// rollback with the quantized path active: a SaturationEps wide enough
// to call every window pinned forces recover() from checkRate, which
// must orphan the kernel mid-stream without diverging from the per-dep
// path.
func TestQuantRollbackRecompiles(t *testing.T) {
	cfg := Config{
		N: 3, Quantized: true, CheckInterval: 50,
		SaturationEps: 0.5, RecoveryWindows: 2, MispredThreshold: NeverTrain,
	}
	ref, got := quantModulePair(5, cfg)
	ds := randDeps(5, 1000)
	for _, d := range ds {
		ref.OnDep(d)
	}
	got.OnDeps(ds)
	if ref.Stats().Recoveries == 0 {
		t.Fatal("fixture did not roll back; the test exercises nothing")
	}
	moduleStateEqual(t, ref, got)
	// The kernel re-arms lazily on the next classification after the
	// rollback moved the generation.
	got.OnDep(deps.Dep{S: 0xfeed, L: 0xbeef})
	g, ok := got.QuantGeneration()
	if !ok || g != got.Generation() {
		t.Fatalf("kernel stale after rollback (qgen %d ok=%v, gen %d)", g, ok, got.Generation())
	}
}

// TestOnDepsSteadyStateAllocs pins the batched classification loop at
// zero steady-state allocations — the dynamic half of OnDeps'
// //act:noalloc annotation, quantized and float.
func TestOnDepsSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"quant", Config{N: 3, Quantized: true}},
		{"quant+cache", Config{N: 3, Quantized: true, VerdictCache: -1}},
		{"float", Config{N: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nIn := deps.InputLen(deps.EncodeDefault, 3)
			wb := AlwaysValidBinary(nIn, 8, 1)
			tr := NewTracker(wb, TrackerConfig{Module: tc.cfg})
			m := tr.Module(0)
			ds := randDeps(21, 256)
			m.OnDeps(ds) // warm-up: kernel compile, slab growth
			if n := testing.AllocsPerRun(100, func() {
				m.OnDeps(ds)
			}); n > 0 {
				t.Fatalf("steady-state OnDeps allocates: %.1f allocs per %d deps", n, len(ds))
			}
		})
	}
}

// TestCustomEncoderWithoutDepEncoder pins the fallback: a custom
// sequence encoder with no per-dependence twin must keep working under
// Quantized — per-window classification, no batching, no panic.
func TestCustomEncoderWithoutDepEncoder(t *testing.T) {
	enc := func(s deps.Sequence, dst []float64) []float64 { return deps.EncodeDefault(s, dst) }
	cfg := Config{N: 2, Quantized: true, Encoder: enc}
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	m := NewModule(nn.New(nIn, 4, rand.New(rand.NewSource(3))), cfg)
	if m.fpd != 0 {
		t.Fatalf("fpd = %d for an unknown encoder, want 0 (batching disabled)", m.fpd)
	}
	ds := randDeps(3, 500)
	m.OnDeps(ds)
	if got := m.Stats().Deps; got != 500 {
		t.Fatalf("processed %d deps, want 500", got)
	}
}

// TestPairedDepEncoders pins the Encoder↔DepEncoder agreement contract
// for both built-ins: concatenated per-dependence features must equal
// the sequence encoding.
func TestPairedDepEncoders(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := make(deps.Sequence, 4)
	for i := range s {
		s[i] = deps.Dep{S: rng.Uint64(), L: rng.Uint64(), Inter: i%2 == 0}
	}
	for _, tc := range []struct {
		name string
		enc  deps.Encoder
	}{
		{"default", deps.EncodeDefault},
		{"pairhash", deps.EncodePairHash},
	} {
		de := deps.PairedDepEncoder(tc.enc)
		if de == nil {
			t.Fatalf("%s: no paired DepEncoder", tc.name)
		}
		want := tc.enc(s, nil)
		fpd := len(want) / len(s)
		got := make([]float64, len(want))
		for i, d := range s {
			if w := de(d, got[i*fpd:]); w != fpd {
				t.Fatalf("%s: wrote %d features, want %d", tc.name, w, fpd)
			}
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: per-dep features diverge from sequence encoding\nseq %v\ndep %v", tc.name, want, got)
		}
	}
	if deps.PairedDepEncoder(func(s deps.Sequence, dst []float64) []float64 { return dst }) != nil {
		t.Fatal("unknown encoder matched a built-in DepEncoder")
	}
}
