// Equivalence of sequential and parallel replay at the level the
// programmer sees: for every workload kernel, the ranked diagnosis
// report rendered from a parallel replay must be byte-identical to the
// sequential one. Lives in an external test package so it can pull in
// the ranking layer (which imports core).
package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/ranking"
	"act/internal/trace"
	"act/internal/workloads"
)

func TestWorkloadReportsSequentialVsParallel(t *testing.T) {
	const n = 2
	nIn := deps.InputLen(deps.EncodeDefault, n)
	ranked := 0 // kernels whose report had candidates; guards triviality
	defer func() {
		if ranked == 0 {
			t.Error("every kernel produced an empty report; test compares nothing")
		}
	}()
	for _, quant := range []bool{false, true} {
		name := "float"
		if quant {
			name = "quant"
		}
		for _, w := range workloads.Kernels() {
			t.Run(name+"/"+w.Name, func(t *testing.T) {
				tr, _ := trace.Collect(w.Build(1), w.Sched(1))
				cfg := core.TrackerConfig{Module: core.Config{N: n, Quantized: quant}, Seed: 7}

				// Untrained binaries: modules learn online and still log, so
				// the debug buffers (and hence the reports) are non-trivial.
				seq := core.NewTracker(core.NewWeightBinary(nIn, 6), cfg)
				par := core.NewTracker(core.NewWeightBinary(nIn, 6), cfg)
				seq.Replay(tr)
				par.ReplayParallel(tr, core.ParallelConfig{Batch: 32})

				correct := deps.NewSeqSet(n)
				var sBuf, pBuf bytes.Buffer
				sRep := ranking.Rank(seq.DebugBuffers(), correct)
				sRep.Write(&sBuf, 0)
				ranking.Rank(par.DebugBuffers(), correct).Write(&pBuf, 0)
				if len(sRep.Ranked) > 0 {
					ranked++
				}
				if !bytes.Equal(sBuf.Bytes(), pBuf.Bytes()) {
					t.Errorf("%s: ranked reports diverge\nseq:\n%s\npar:\n%s",
						w.Name, sBuf.String(), pBuf.String())
				}
			})
		}
	}
}

// TestWorkloadReportsQuantVsFloat pins the quantized pipeline's
// fidelity at the level the programmer sees: on every checked-in
// workload the quantized replay's ranked diagnosis report is
// byte-identical to the float replay's. The quantized network rounds
// activations through the Q-format LUT, so raw verdicts differ in the
// low bits — the property asserted here is that those perturbations
// never reorder or reclassify anything the report surfaces, at both
// the default and a short rate-check cadence (the latter flips modes
// mid-trace, exercising kernel recompiles).
func TestWorkloadReportsQuantVsFloat(t *testing.T) {
	const n = 2
	nIn := deps.InputLen(deps.EncodeDefault, n)
	for _, interval := range []int{0, 100} {
		for _, w := range workloads.Kernels() {
			t.Run(fmt.Sprintf("ci%d/%s", interval, w.Name), func(t *testing.T) {
				tr, _ := trace.Collect(w.Build(1), w.Sched(1))
				mod := core.Config{N: n, CheckInterval: interval}
				fl := core.NewTracker(core.NewWeightBinary(nIn, 6), core.TrackerConfig{Module: mod, Seed: 7})
				mod.Quantized = true
				qu := core.NewTracker(core.NewWeightBinary(nIn, 6), core.TrackerConfig{Module: mod, Seed: 7})
				fl.Replay(tr)
				qu.Replay(tr)

				correct := deps.NewSeqSet(n)
				var fBuf, qBuf bytes.Buffer
				ranking.Rank(fl.DebugBuffers(), correct).Write(&fBuf, 0)
				ranking.Rank(qu.DebugBuffers(), correct).Write(&qBuf, 0)
				if !bytes.Equal(fBuf.Bytes(), qBuf.Bytes()) {
					t.Errorf("%s: quantized report diverges from float\nfloat:\n%s\nquant:\n%s",
						w.Name, fBuf.String(), qBuf.String())
				}
			})
		}
	}
}
