// FuzzLoadCheckpoint: checkpoint loading must never panic on arbitrary
// bytes — a torn or hostile checkpoint file is an expected production
// input — and every image it does accept must round-trip: decode,
// re-encode from the decoded state, decode again, identical state.
package core

import (
	"bytes"
	"testing"

	"act/internal/deps"
	"act/internal/pipeline"
)

// fuzzImage builds a small valid checkpoint image for the seed corpus.
func fuzzImage(tb testing.TB, records int, extra ...pipeline.Section) []byte {
	tb.Helper()
	tr := randTrace(17, 3, records)
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	t := NewTracker(NewWeightBinary(nIn, 6), TrackerConfig{Module: Config{N: 2, CheckInterval: 100}, Seed: 3})
	t.Replay(tr)
	img, err := t.EncodeCheckpoint(tr, records, extra...)
	if err != nil {
		tb.Fatalf("seed image: %v", err)
	}
	return img
}

func FuzzLoadCheckpoint(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ACTK"))
	f.Add([]byte("ACTW\x01\x00\x00\x00"))
	full := fuzzImage(f, 2000, pipeline.Section{Kind: 64, Data: []byte("stage")})
	f.Add(full)
	f.Add(full[:len(full)/2])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add(fuzzImage(f, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, st, extra, err := DecodeCheckpoint(data) // must not panic
		if err != nil {
			return
		}
		// Accepted images round-trip: rebuild the section list from the
		// decoded state and compare the re-parsed result structurally.
		sections := []pipeline.Section{
			{Kind: ckptKindHeader, Data: encodeHeader(hdr)},
			{Kind: ckptKindExtractor, Data: encodeExtractor(st.Extractor)},
		}
		for i := range st.Modules {
			sections = append(sections, pipeline.Section{Kind: ckptKindModule, Data: encodeModule(&st.Modules[i])})
		}
		sections = append(sections, extra...)
		img := pipeline.AppendCheckpoint(nil, sections)
		hdr2, st2, extra2, err := DecodeCheckpoint(img)
		if err != nil {
			t.Fatalf("re-encoded accepted image rejected: %v", err)
		}
		if hdr2 != hdr {
			t.Fatalf("header changed across round-trip: %+v vs %+v", hdr, hdr2)
		}
		if len(st2.Modules) != len(st.Modules) || len(extra2) != len(extra) {
			t.Fatalf("section census changed across round-trip")
		}
		for i := range extra {
			if extra[i].Kind != extra2[i].Kind || !bytes.Equal(extra[i].Data, extra2[i].Data) {
				t.Fatalf("extra section %d changed across round-trip", i)
			}
		}
	})
}
