// Checkpointed replay on the pipeline stage graph.
//
// ReplayCheckpointed is the one replay engine; Replay and
// ReplayParallel (tracker.go, parallel.go) are thin wrappers over it.
// The trace drives an "extract" node inline on the caller's goroutine —
// last-writer resolution cannot be parallelized, and inline placement
// keeps sequential replay free of scheduling overhead — while parallel
// mode adds per-module "classify" workers fed over the deps.Fanout.
//
// At checkpoint boundaries the engine quiesces classification (staged
// buffers flushed sequentially; Flush + Barrier + Wait in parallel
// mode), exports the tracker, and writes an ACTK image atomically. A
// killed run resumes from the last complete image and replays the
// remaining records; because a checkpoint captures every diagnosis
// observable and batching boundaries are invisible to modules, the
// resumed run's ranked report and RCA output are byte-identical to an
// uninterrupted run's.
package core

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"act/internal/deps"
	"act/internal/obs"
	"act/internal/pipeline"
	"act/internal/trace"
)

// DefaultCheckpointInterval is the record spacing between checkpoints
// when CheckpointConfig.Interval is zero. Sized so short test traces
// never checkpoint unless asked to.
const DefaultCheckpointInterval = 1 << 20

// ErrReplayAborted is returned when CheckpointConfig.AbortAfter stops a
// replay — the test hook that simulates a kill at a checkpoint
// boundary. The checkpoint file on disk is complete; a resumed replay
// finishes the trace.
var ErrReplayAborted = errors.New("core: replay aborted after checkpoint (test hook)")

// CheckpointConfig enables checkpoint/resume on a replay. The zero
// value disables it entirely.
type CheckpointConfig struct {
	// Path of the checkpoint file. Empty disables checkpointing.
	Path string
	// Interval is the minimum number of trace records between
	// checkpoints; 0 means DefaultCheckpointInterval.
	Interval int
	// Resume loads Path before replaying, when it holds a complete
	// checkpoint matching this tracker's trace, seed, and configuration.
	// A missing, corrupt, or mismatched file falls back to a fresh
	// replay (ReplayStatus.Reason says why) — a stale checkpoint must
	// never wedge a diagnosis run.
	Resume bool
	// AbortAfter > 0 aborts the replay with ErrReplayAborted immediately
	// after the Nth checkpoint write — the kill-and-resume test hook.
	AbortAfter int
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultCheckpointInterval
	}
	return c
}

// ReplayStatus reports what a checkpointed replay did.
type ReplayStatus struct {
	Resumed     bool   // state was restored from the checkpoint file
	ResumedFrom int    // record cursor the restored state was taken at
	Checkpoints int    // checkpoint images written by this call
	Reason      string // why a requested resume fell back to a fresh replay
	// Extra holds the stage-owned sections (kind >= 64) of the resumed
	// checkpoint — ranked report, RCA verdicts — verbatim. The stage
	// layer decodes them to skip work already completed before the kill.
	Extra []pipeline.Section
}

// ckptRun tracks one replay's checkpoint schedule.
type ckptRun struct {
	cfg  CheckpointConfig
	last int // cursor of the last checkpoint (or the resume point)
	n    int // images written
}

// due reports whether a checkpoint should be taken at cursor. The final
// cursor is excluded — completion writes its own image. It runs once
// per record, so it must stay alloc-free.
//
//act:noalloc
func (r *ckptRun) due(cursor, total int) bool {
	return r.cfg.Path != "" && cursor < total && cursor-r.last >= r.cfg.Interval
}

// write exports the (quiescent) tracker and lands an ACTK image
// atomically, then fires the abort hook when armed.
func (r *ckptRun) write(t *Tracker, tr *trace.Trace, cursor int) error {
	img, err := t.EncodeCheckpoint(tr, cursor)
	if err != nil {
		return err
	}
	if err := pipeline.WriteFile(r.cfg.Path, img); err != nil {
		return err
	}
	r.n++
	r.last = cursor
	if r.cfg.AbortAfter > 0 && r.n >= r.cfg.AbortAfter {
		return ErrReplayAborted
	}
	return nil
}

// tryResume attempts to restore the tracker from path. It is lenient by
// design: any failure — no file, torn image, different trace or
// configuration, non-fresh tracker — yields a fresh start with the
// reason recorded, never an error.
func (t *Tracker) tryResume(path string, tr *trace.Trace) (cursor int, extra []pipeline.Section, resumed bool, reason string) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, "" // cold start, nothing to say
		}
		return 0, nil, false, err.Error()
	}
	cursor, extra, err = t.RestoreCheckpoint(data, tr)
	if err != nil {
		return 0, nil, false, err.Error()
	}
	return cursor, extra, true, ""
}

// ReplayCheckpointed feeds tr through the tracker on the pipeline
// graph, sequentially when par is nil and with per-module classify
// workers otherwise, checkpointing per ck. It must not run concurrently
// with other methods of the same Tracker. Resume requires a fresh
// tracker (no modules yet) — the state in the file replaces nothing.
//
// On success with a checkpoint path configured, a final image at the
// end of the trace is written, so a rerun over the same trace resumes
// straight to completion.
func (t *Tracker) ReplayCheckpointed(tr *trace.Trace, par *ParallelConfig, ck CheckpointConfig) (ReplayStatus, error) {
	sp := obs.StartSpan(statReplayNS)
	defer func() {
		sp.End()
		statReplays.Inc()
	}()

	var st ReplayStatus
	start := 0
	if ck.Resume && ck.Path != "" {
		cursor, extra, resumed, reason := t.tryResume(ck.Path, tr)
		st.Reason = reason
		if resumed {
			st.Resumed, st.ResumedFrom, start = true, cursor, cursor
			st.Extra = extra
			pipeline.ResumeMark()
		}
	}

	run := &ckptRun{cfg: ck.withDefaults(), last: start}
	g := pipeline.New("replay")
	var err error
	if par != nil {
		err = t.replayPar(g, tr, start, *par, run)
	} else {
		err = t.replaySeq(g, tr, start, run)
	}
	if err == nil && run.cfg.Path != "" && !(st.Resumed && start == len(tr.Records)) {
		err = run.write(t, tr, len(tr.Records))
	}
	st.Checkpoints = run.n
	return st, err
}

// replaySeq is the sequential driver: the extract node runs inline and
// classification happens through the per-module staging buffers, same
// as the historical Replay loop. Checkpoint boundaries flush the
// staging buffers first — batch boundaries are invisible to modules, so
// the flush changes no observable.
func (t *Tracker) replaySeq(g *pipeline.Graph, tr *trace.Trace, start int, run *ckptRun) error {
	n := g.Node("extract")
	return g.Run(n, func() error {
		prev := t.ext.OnDep
		t.ext.OnDep = t.stageDep
		defer func() { t.ext.OnDep = prev }()
		recs := tr.Records
		for i := start; i < len(recs); i++ {
			t.OnRecord(recs[i])
			if cursor := i + 1; run.due(cursor, len(recs)) {
				t.flushStaged()
				if err := run.write(t, tr, cursor); err != nil {
					return err
				}
			}
		}
		t.flushStaged()
		return nil
	})
}

// replayPar is the parallel driver: extract inline, one classify worker
// per module over the fan-out. Checkpoint boundaries quiesce the
// workers (Flush + Barrier + Wait) so the export reads settled module
// state; the streams stay up and the workers resume as soon as the
// producer pushes again. On any driver error the fan-out is still
// closed and the workers joined before returning — no goroutine
// outlives the call.
func (t *Tracker) replayPar(g *pipeline.Graph, tr *trace.Trace, start int, cfg ParallelConfig, run *ckptRun) error {
	cls := g.Node("classify")
	fo := deps.NewFanout(deps.FanoutConfig{Batch: cfg.Batch, Depth: cfg.Depth},
		func(tid uint16, s *deps.FanStream) {
			// Runs in the extract stage on a thread's first dependence, so
			// module creation order — and therefore default-weight seeding —
			// matches sequential replay exactly.
			m := t.moduleAt(int(tid))
			g.Go(cls, func() error {
				for {
					batch, ok := s.Next()
					if !ok {
						return nil
					}
					bsp := obs.StartSpan(statReplayBatchNS)
					m.OnDeps(batch)
					bsp.End()
				}
			})
		})
	ext := g.Node("extract")
	err := g.Run(ext, func() error {
		prev := t.ext.OnDep
		t.ext.OnDep = fo.Push
		defer func() { t.ext.OnDep = prev }()
		recs := tr.Records
		for i := start; i < len(recs); i++ {
			t.OnRecord(recs[i])
			if cursor := i + 1; run.due(cursor, len(recs)) {
				fo.Flush()
				bsp := pipeline.BarrierSpan()
				var bwg sync.WaitGroup
				fo.Barrier(&bwg)
				bwg.Wait()
				bsp.End()
				if err := run.write(t, tr, cursor); err != nil {
					return err
				}
			}
		}
		return nil
	})
	fo.Close()
	if werr := g.Wait(); err == nil {
		err = werr
	}
	return err
}

// mustReplay runs a checkpoint-free replay for the legacy wrappers; an
// error is impossible without a checkpoint path, so any is a bug.
func (t *Tracker) mustReplay(tr *trace.Trace, par *ParallelConfig) {
	if _, err := t.ReplayCheckpointed(tr, par, CheckpointConfig{}); err != nil {
		panic(fmt.Sprintf("core: checkpoint-free replay failed: %v", err))
	}
}
