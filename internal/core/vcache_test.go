package core

import (
	"math/rand"
	"reflect"
	"testing"

	"act/internal/deps"
	"act/internal/nn"
)

// validWeights returns a flat weight vector whose network outputs
// sigmoid(bias) for every input: zero weights, explicit output bias.
func flatWithBias(nIn, nHidden int, bias float64) []float64 {
	w := make([]float64, nHidden*(nIn+1)+nHidden+1)
	w[len(w)-1] = bias
	return w
}

// cachedModule builds a testing-mode module with the given verdict-cache
// configuration and an always-valid network.
func cachedModule(t *testing.T, n, cache int, bias float64) *Module {
	t.Helper()
	nIn := deps.InputLen(deps.EncodeDefault, n)
	net := nn.New(nIn, 6, rand.New(rand.NewSource(1)))
	m := NewModule(net, Config{N: n, VerdictCache: cache})
	if err := m.LoadWeights(flatWithBias(nIn, 6, bias)); err != nil {
		t.Fatal(err)
	}
	return m
}

// feedPattern replays the same short dependence pattern `rounds` times,
// returning the predicted-invalid verdicts in order.
func feedPattern(m *Module, rounds int) []bool {
	var verdicts []bool
	for r := 0; r < rounds; r++ {
		for i := 0; i < 8; i++ {
			d := deps.Dep{S: 0x1000 + uint64(i)*16, L: 0x2000 + uint64(i)*16}
			if _, inv := m.OnDep(d); true {
				verdicts = append(verdicts, inv)
			}
		}
	}
	return verdicts
}

// TestVerdictCacheCountsHits: a repeated pattern is served from the
// cache after the first round, and the cached verdicts are identical to
// an uncached module's.
func TestVerdictCacheCountsHits(t *testing.T) {
	off := cachedModule(t, 2, 0, 4)
	on := cachedModule(t, 2, -1, 4)

	vOff := feedPattern(off, 5)
	vOn := feedPattern(on, 5)
	if !reflect.DeepEqual(vOff, vOn) {
		t.Fatal("verdicts differ between cache on and off")
	}
	if !reflect.DeepEqual(off.DebugBuffer(), on.DebugBuffer()) {
		t.Fatal("debug buffers differ between cache on and off")
	}
	if s := off.Stats(); s.CacheHits != 0 || s.CacheMisses != 0 {
		t.Fatalf("disabled cache counted %d hits / %d misses", s.CacheHits, s.CacheMisses)
	}
	s := on.Stats()
	if s.CacheHits == 0 {
		t.Fatal("repeated pattern produced no cache hits")
	}
	// Distinct windows: the 8 of round 1 plus the round-boundary window
	// [d7, d0] first formed entering round 2. Everything else hits.
	if want := s.Deps - 9; s.CacheHits != want {
		t.Fatalf("CacheHits = %d, want %d (all repeats)", s.CacheHits, want)
	}
}

// TestVerdictCacheInvalidatedByWeightUpdate: new weights must flip the
// verdict immediately — a stale cached "valid" would mask the change.
func TestVerdictCacheInvalidatedByWeightUpdate(t *testing.T) {
	m := cachedModule(t, 2, -1, 4)
	feedPattern(m, 3) // cache hot, everything valid
	if s := m.Stats(); s.PredictedInvalid != 0 {
		t.Fatalf("always-valid net flagged %d sequences", s.PredictedInvalid)
	}

	nIn := deps.InputLen(deps.EncodeDefault, 2)
	if err := m.LoadWeights(flatWithBias(nIn, 6, -4)); err != nil { // now always-invalid
		t.Fatal(err)
	}
	verdicts := feedPattern(m, 1)
	for i, inv := range verdicts {
		if !inv {
			t.Fatalf("dep %d served stale cached verdict after weight update", i)
		}
	}
}

// TestVerdictCacheInvalidatedByModeSwitch: ForceMode bumps the
// generation, so verdicts cached before a training episode are not
// trusted after it.
func TestVerdictCacheInvalidatedByModeSwitch(t *testing.T) {
	m := cachedModule(t, 2, -1, 4)
	feedPattern(m, 2)
	hot := m.Stats()
	if hot.CacheHits == 0 {
		t.Fatal("cache never hit during warm-up")
	}
	m.ForceMode(Training)
	m.ForceMode(Testing)
	feedPattern(m, 1)
	after := m.Stats()
	if after.CacheHits != hot.CacheHits {
		t.Fatalf("verdicts cached before the mode switch survived it: %d hits grew to %d",
			hot.CacheHits, after.CacheHits)
	}
	if after.CacheMisses <= hot.CacheMisses {
		t.Fatal("post-switch pattern did not recompute")
	}
}

// TestVerdictCacheInvalidatedByDirectMutation: callers that write the
// network through Network() (the fault injector does) must be able to
// flush the cache explicitly.
func TestVerdictCacheInvalidatedByDirectMutation(t *testing.T) {
	m := cachedModule(t, 2, -1, 4)
	feedPattern(m, 2)

	net := m.Network()
	net.WriteRegister(net.WeightCount()-1, -4) // flip the output bias: now invalid
	m.InvalidateVerdicts()
	for i, inv := range feedPattern(m, 1) {
		if !inv {
			t.Fatalf("dep %d: cached verdict survived InvalidateVerdicts", i)
		}
	}
}

// TestVerdictCacheLRU exercises the cache structure directly: eviction
// order, move-to-front on hit, and generation sync.
func TestVerdictCacheLRU(t *testing.T) {
	c := newVerdictCache(2)
	c.put(1, 0, 0.1)
	c.put(2, 0, 0.2)
	if _, ok := c.get(1, 0); !ok { // 1 becomes most recent
		t.Fatal("miss on resident entry")
	}
	c.put(3, 0, 0.3) // evicts 2, the least recent
	if _, ok := c.get(2, 0); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if v, ok := c.get(1, 0); !ok || v != 0.1 {
		t.Fatalf("get(1) = %v, %v", v, ok)
	}
	if v, ok := c.get(3, 0); !ok || v != 0.3 {
		t.Fatalf("get(3) = %v, %v", v, ok)
	}
	// A new generation empties the cache lazily.
	if _, ok := c.get(1, 1); ok {
		t.Fatal("entry survived a generation bump")
	}
	if c.Len() != 0 {
		t.Fatalf("Len() = %d after generation bump", c.Len())
	}
	c.put(4, 1, 0.4)
	if v, ok := c.get(4, 1); !ok || v != 0.4 {
		t.Fatalf("get(4) = %v, %v", v, ok)
	}
}
