package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"act/internal/deps"
	"act/internal/nn"
	"act/internal/trace"
)

// WeightBinary models the program binary augmented with per-thread
// network topology and weights (Section IV-B/IV-C): the thread-creation
// hook checks for a thread's weights (chkwt), loads them (stwt loop) or
// falls back to default weights that force online training; the
// thread-termination hook reads the registers back (ldwt loop) so one
// execution's learning patches the binary for the next.
//
// All methods are safe for concurrent use: with parallel replay,
// modules can be patched back from worker goroutines while another
// deployment reads initial weights out.
type WeightBinary struct {
	NIn, NHidden int

	mu       sync.RWMutex
	byThread map[int][]float64 // guarded by mu
}

// NewWeightBinary creates a binary image for the given topology.
func NewWeightBinary(nIn, nHidden int) *WeightBinary {
	return &WeightBinary{NIn: nIn, NHidden: nHidden, byThread: make(map[int][]float64)}
}

// Has implements chkwt: does thread tid have stored weights?
func (wb *WeightBinary) Has(tid int) bool {
	wb.mu.RLock()
	defer wb.mu.RUnlock()
	_, ok := wb.byThread[tid]
	return ok
}

// Get returns a copy of thread tid's weights, or nil if absent.
func (wb *WeightBinary) Get(tid int) []float64 {
	wb.mu.RLock()
	defer wb.mu.RUnlock()
	w, ok := wb.byThread[tid]
	if !ok {
		return nil
	}
	return append([]float64(nil), w...)
}

// Patch stores thread tid's weights (the post-run binary patching step).
func (wb *WeightBinary) Patch(tid int, w []float64) {
	cp := append([]float64(nil), w...)
	wb.mu.Lock()
	wb.byThread[tid] = cp
	wb.mu.Unlock()
}

// PatchAll stores the same weights for thread ids 0..n-1, the common
// case after offline training where every thread shares one topology
// and the initial weights.
func (wb *WeightBinary) PatchAll(n int, w []float64) {
	for t := 0; t < n; t++ {
		wb.Patch(t, w)
	}
}

// Threads returns the thread ids with stored weights, ascending.
func (wb *WeightBinary) Threads() []int {
	wb.mu.RLock()
	out := make([]int, 0, len(wb.byThread))
	for t := range wb.byThread {
		out = append(out, t)
	}
	wb.mu.RUnlock()
	sort.Ints(out)
	return out
}

// AlwaysValidBinary returns a weight binary whose network classifies
// every input as valid (zero weights, strongly positive output bias),
// patched for the first nThreads threads. Timing experiments use it to
// model a converged, misprediction-free deployment without running
// offline training.
func AlwaysValidBinary(nIn, nHidden, nThreads int) *WeightBinary {
	wb := NewWeightBinary(nIn, nHidden)
	w := make([]float64, nHidden*(nIn+1)+nHidden+1)
	w[len(w)-1] = 4 // output bias: sigmoid(4) ≈ 0.98
	wb.PatchAll(nThreads, w)
	return wb
}

// MaxTid is the largest thread id a Tracker accepts. Debug Buffer
// entries stamp the logging processor as a 16-bit field (matching the
// trace and wire formats), so larger ids cannot be represented without
// aliasing in the diagnosis reports.
const MaxTid = math.MaxUint16

// Tracker deploys one ACT Module per processor and routes the RAW
// dependence stream to them. Threads are pinned one-to-one to
// processors, matching the simulated machine. The Tracker is the
// functional (timing-free) deployment used for diagnosis experiments;
// the timing simulator wires the same Modules into its cores.
type Tracker struct {
	cfg     Config
	tcfg    TrackerConfig // as passed to NewTracker, for the checkpoint fingerprint
	binary  *WeightBinary
	ext     *deps.Extractor
	modules map[int]*Module
	dense   []*Module // lookup fast path, indexed by tid
	seed    int64

	// mu guards the exporter-facing module list. modules and dense above
	// belong to the replay goroutine alone; all is the copy a concurrent
	// metrics scrape may walk while ReplayParallel is mid-flight. It is
	// appended only on module creation (cold path), so the lock never
	// touches the per-dependence stream.
	mu  sync.Mutex
	all []*Module // guarded by mu

	// stage holds Replay's per-module staging buffers, indexed by tid:
	// sequential replay hands dependences to OnDeps in runs of up to
	// stageBatch so the batched fixed-point kernel amortizes dispatch.
	// Buffers are allocated once per module and reused across Replay
	// calls.
	stage [][]deps.Dep
}

// TrackerConfig bundles deployment parameters.
type TrackerConfig struct {
	Module      Config
	Granularity uint64 // last-writer granule; default word
	FilterStack bool
	Seed        int64 // initialization of default (untrained) weights
}

// NewTracker creates a deployment backed by the given weight binary.
func NewTracker(binary *WeightBinary, cfg TrackerConfig) *Tracker {
	mc := cfg.Module.withDefaults()
	want := deps.InputLen(mc.Encoder, mc.N)
	if binary.NIn != want {
		panic(fmt.Sprintf("core: binary topology input %d, want %d for N=%d", binary.NIn, want, mc.N))
	}
	t := &Tracker{
		cfg:     mc,
		tcfg:    cfg,
		binary:  binary,
		modules: make(map[int]*Module),
		seed:    cfg.Seed,
	}
	t.ext = deps.NewExtractor(deps.ExtractorConfig{
		N:           mc.N,
		Granularity: cfg.Granularity,
		FilterStack: cfg.FilterStack,
	})
	t.ext.OnDep = func(tid uint16, d deps.Dep) {
		t.moduleAt(int(tid)).OnDep(d)
	}
	return t
}

// ModuleOf returns (creating on first use — the pthread_create hook) the
// ACT Module of the processor running thread tid, or an error when tid
// is outside [0, MaxTid]. A thread with stored weights starts in testing
// mode; one without gets random default weights and starts in training
// mode, exactly the fallback the paper describes for threads unseen
// during offline training.
func (t *Tracker) ModuleOf(tid int) (*Module, error) {
	if tid < 0 || tid > MaxTid {
		return nil, fmt.Errorf("core: thread id %d outside [0, %d]", tid, MaxTid)
	}
	return t.moduleAt(tid), nil
}

// Module is ModuleOf for callers with known-good thread ids; it panics
// when tid is out of range. (Earlier versions silently truncated the id
// to 16 bits, aliasing distinct threads onto one module.)
func (t *Tracker) Module(tid int) *Module {
	m, err := t.ModuleOf(tid)
	if err != nil {
		panic(err)
	}
	return m
}

// moduleAt is the range-checked-by-caller lookup: a dense slice indexed
// by tid keeps the per-dependence routing off map hashing.
func (t *Tracker) moduleAt(tid int) *Module {
	if tid < len(t.dense) {
		if m := t.dense[tid]; m != nil {
			return m
		}
	}
	net := nn.New(t.binary.NIn, t.binary.NHidden, rand.New(rand.NewSource(t.seed+int64(tid))))
	m := NewModule(net, t.cfg)
	if w := t.binary.Get(tid); w != nil {
		if err := m.LoadWeights(w); err != nil {
			panic(err) // topology checked in NewTracker; unreachable
		}
	} else {
		m.ForceMode(Training)
	}
	t.modules[tid] = m
	if tid >= len(t.dense) {
		grown := make([]*Module, tid+1)
		copy(grown, t.dense)
		t.dense = grown
	}
	t.dense[tid] = m
	t.mu.Lock()
	t.all = append(t.all, m)
	t.mu.Unlock()
	return m
}

// snapshotModules copies the module list for lock-free iteration.
func (t *Tracker) snapshotModules() []*Module {
	t.mu.Lock()
	out := make([]*Module, len(t.all))
	copy(out, t.all)
	t.mu.Unlock()
	return out
}

// OnRecord feeds one memory-trace record through last-writer tracking;
// loads that close a dependence reach the owning module.
func (t *Tracker) OnRecord(r trace.Record) {
	if r.Store {
		t.ext.Store(r.Tid, r.PC, r.Addr, r.Stack)
	} else {
		t.ext.Load(r.Tid, r.PC, r.Addr, r.Stack)
	}
}

// stageBatch is sequential Replay's per-module staging depth. Each
// module still observes exactly its own dependence stream in order —
// OnDeps makes the batch boundary invisible — so staging changes no
// observable; it only lets the quantized kernel classify runs per call.
const stageBatch = 256

// stageDep buffers one formed dependence, draining the module's buffer
// through OnDeps when full.
func (t *Tracker) stageDep(tid uint16, d deps.Dep) {
	i := int(tid)
	if i >= len(t.stage) {
		grown := make([][]deps.Dep, i+1)
		copy(grown, t.stage)
		t.stage = grown
	}
	b := t.stage[i]
	if b == nil {
		b = make([]deps.Dep, 0, stageBatch)
	}
	b = append(b, d)
	if len(b) == stageBatch {
		t.moduleAt(i).OnDeps(b)
		b = b[:0]
	}
	t.stage[i] = b
}

// flushStaged drains every non-empty staging buffer, ascending tid.
// Flush order across modules is irrelevant to any observable (module
// state is strictly per-processor) but kept deterministic anyway.
func (t *Tracker) flushStaged() {
	for i, b := range t.stage {
		if len(b) > 0 {
			t.moduleAt(i).OnDeps(b)
			t.stage[i] = b[:0]
		}
	}
}

// Replay feeds a whole trace through the tracker sequentially, staging
// formed dependences per module (see stageBatch). See ReplayParallel
// for the pipelined equivalent and ReplayCheckpointed — which this is a
// thin wrapper over — for checkpoint/resume; OnRecord remains the
// unstaged immediate path.
func (t *Tracker) Replay(tr *trace.Trace) {
	t.mustReplay(tr, nil)
}

// DebugBuffers concatenates every module's Debug Buffer, ordered by
// processor then insertion index — the log handed to offline
// postprocessing after a failure. Each entry is stamped with the
// processor that logged it. The order is deterministic for a given
// deployment history, so dedup hashes computed over the result are
// stable across runs.
func (t *Tracker) DebugBuffers() []DebugEntry {
	tids := make([]int, 0, len(t.modules))
	for tid := range t.modules {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	var out []DebugEntry
	for _, tid := range tids {
		buf := t.modules[tid].DebugBuffer()
		for i := range buf {
			buf[i].Proc = uint16(tid)
		}
		out = append(out, buf...)
	}
	// DebugBuffer already yields each module oldest-first; the explicit
	// sort pins the (processor, insertion index) contract even if a
	// module's internal layout changes.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].At < out[j].At
	})
	return out
}

// ResetDebug clears every module's Debug Buffer — the drain step a
// telemetry agent runs after shipping the entries off the box, so the
// next drain only sees new suspicions.
func (t *Tracker) ResetDebug() {
	for _, m := range t.modules {
		m.ResetDebug()
	}
}

// Shutdown reads back every module's weights into the binary (the
// pthread_exit hook plus binary patching), so a subsequent Tracker
// benefits from this execution's online learning.
func (t *Tracker) Shutdown() {
	for tid, m := range t.modules {
		t.binary.Patch(tid, m.SaveWeights())
	}
}

// Stats sums all module counters. Equivalent to StatsSnapshot; kept as
// the established name for quiescent callers.
func (t *Tracker) Stats() Stats {
	return t.StatsSnapshot()
}

// StatsSnapshot sums all module counters race-free: the module list is
// copied under the tracker's lock and each counter is read atomically,
// so a metrics scrape may call it while ReplayParallel is running. Each
// individual counter is exact; the sums across counters are consistent
// with each other only once replay has quiesced.
func (t *Tracker) StatsSnapshot() Stats {
	var s Stats
	for _, m := range t.snapshotModules() {
		s.Add(m.Stats())
	}
	return s
}

// Modules returns the number of deployed ACT Modules. Safe to call
// concurrently with replay.
func (t *Tracker) Modules() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.all)
}

// Generations sums every module's verdict-cache generation — a
// monotonic proxy for "weight-state mutations across the deployment"
// (act_core_weight_generations). Safe to call concurrently with replay.
func (t *Tracker) Generations() uint64 {
	var g uint64
	for _, m := range t.snapshotModules() {
		g += m.Generation()
	}
	return g
}
