package core

import (
	"math"
	"math/rand"
	"testing"

	"act/internal/deps"
	"act/internal/nn"
	"act/internal/trace"
)

func recordOf(tid uint16, pc, addr uint64, store bool) trace.Record {
	return trace.Record{Tid: tid, PC: pc, Addr: addr, Store: store}
}

// trainedNet builds a network that accepts a given set of sequences and
// rejects everything else, by direct training.
func trainedNet(t *testing.T, n int, valid []deps.Sequence, invalid []deps.Sequence) *nn.Network {
	t.Helper()
	in := deps.InputLen(deps.EncodeDefault, n)
	var samples []nn.Sample
	for _, s := range valid {
		samples = append(samples, nn.Sample{X: deps.EncodeDefault(s, nil), Y: nn.TargetValid})
	}
	for _, s := range invalid {
		samples = append(samples, nn.Sample{X: deps.EncodeDefault(s, nil), Y: nn.TargetInvalid})
	}
	net, _ := nn.TrainNew(in, 8, samples, nn.FitConfig{Seed: 3, MaxEpochs: 4000, Patience: 4000})
	if miss := nn.Evaluate(net, samples); miss > 0 {
		t.Fatalf("fixture net failed to memorize (%v miss)", miss)
	}
	return net
}

func seqAt(base uint64, n int) deps.Sequence {
	s := make(deps.Sequence, n)
	for i := range s {
		s[i] = deps.Dep{S: base + uint64(i)*16, L: base + 8 + uint64(i)*16}
	}
	return s
}

func TestModuleFlagsInvalidSequence(t *testing.T) {
	n := 2
	valid := seqAt(0x1000, 4)
	bad := deps.Dep{S: 0xBAD0, L: valid[3].L}
	validWindows := []deps.Sequence{
		{{}, valid[0]}, {valid[0], valid[1]}, {valid[1], valid[2]}, {valid[2], valid[3]},
	}
	badWindow := deps.Sequence{valid[2], bad}
	net := trainedNet(t, n, validWindows, []deps.Sequence{badWindow})

	m := NewModule(net, Config{N: n})
	for _, d := range valid[:3] {
		if _, inv := m.OnDep(d); inv {
			t.Fatalf("valid dep %v flagged", d)
		}
	}
	if _, inv := m.OnDep(bad); !inv {
		t.Fatal("invalid dependence not flagged")
	}
	buf := m.DebugBuffer()
	if len(buf) != 1 || buf[0].Seq[len(buf[0].Seq)-1] != bad {
		t.Fatalf("debug buffer %v", buf)
	}
	if buf[0].Output >= 0.5 {
		t.Fatalf("logged output %v not negative-confidence", buf[0].Output)
	}
}

func TestDebugBufferRing(t *testing.T) {
	// A network rejecting everything fills the ring; oldest entries drop.
	net := nn.New(4, 4, rand.New(rand.NewSource(1)))
	for i := range net.WO {
		net.WO[i] = 0
	}
	net.WO[len(net.WO)-1] = -5 // always invalid
	m := NewModule(net, Config{N: 2, DebugBufSize: 4, CheckInterval: 1 << 30})
	for i := uint64(0); i < 10; i++ {
		m.OnDep(deps.Dep{S: 0x100 + i, L: 0x200 + i})
	}
	buf := m.DebugBuffer()
	if len(buf) != 4 {
		t.Fatalf("ring size %d, want 4", len(buf))
	}
	// Oldest-first: the last entry must be the most recent dependence.
	last := buf[3].Seq[len(buf[3].Seq)-1]
	if last.S != 0x109 {
		t.Fatalf("newest entry %v", last)
	}
	m.ResetDebug()
	if len(m.DebugBuffer()) != 0 {
		t.Fatal("ResetDebug left entries")
	}
}

func TestModeSwitching(t *testing.T) {
	// Always-invalid net: in testing mode the misprediction rate is 100%,
	// so the module must flip to training; online learning then drives
	// the rate down and it flips back.
	net := nn.New(4, 6, rand.New(rand.NewSource(2)))
	for i := range net.WO {
		net.WO[i] = 0
	}
	net.WO[len(net.WO)-1] = -2
	m := NewModule(net, Config{N: 2, CheckInterval: 50, MispredThreshold: 0.05, LearningRate: 0.5})
	if m.Mode() != Testing {
		t.Fatal("module must start in testing mode with weights")
	}
	// A small recurring set of dependences.
	ds := seqAt(0x4000, 4)
	for i := 0; i < 3000 && m.Mode() == Testing; i++ {
		m.OnDep(ds[i%len(ds)])
	}
	if m.Mode() != Training {
		t.Fatal("module never entered training mode at 100% misprediction")
	}
	for i := 0; i < 50_000 && m.Mode() == Training; i++ {
		m.OnDep(ds[i%len(ds)])
	}
	if m.Mode() != Testing {
		t.Fatal("module never returned to testing mode after learning")
	}
	if m.Stats().ModeSwitches < 2 {
		t.Fatalf("mode switches = %d", m.Stats().ModeSwitches)
	}
}

func TestTrainingModeStillLogs(t *testing.T) {
	net := nn.New(4, 4, rand.New(rand.NewSource(3)))
	for i := range net.WO {
		net.WO[i] = 0
	}
	net.WO[len(net.WO)-1] = -5
	m := NewModule(net, Config{N: 2, LearningRate: 1e-9, CheckInterval: 1 << 30})
	m.ForceMode(Training)
	m.OnDep(deps.Dep{S: 1, L: 2})
	m.OnDep(deps.Dep{S: 3, L: 4})
	if len(m.DebugBuffer()) == 0 {
		t.Fatal("training mode must still log predicted-invalid sequences")
	}
	if m.Stats().TrainingDeps != 2 {
		t.Fatalf("training deps = %d", m.Stats().TrainingDeps)
	}
}

func TestSaveLoadWeights(t *testing.T) {
	net := nn.New(4, 4, rand.New(rand.NewSource(4)))
	m := NewModule(net, Config{N: 2})
	w := m.SaveWeights()
	m2 := NewModule(nn.New(4, 4, rand.New(rand.NewSource(99))), Config{N: 2})
	if err := m2.LoadWeights(w); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	if math.Abs(m.Network().Forward(x)-m2.Network().Forward(x)) > 1e-12 {
		t.Fatal("restored weights disagree")
	}
	if err := m2.LoadWeights(w[1:]); err == nil {
		t.Fatal("short weight vector accepted")
	}
}

func TestModuleConfigValidation(t *testing.T) {
	net := nn.New(4, 4, rand.New(rand.NewSource(5)))
	defer func() {
		if recover() == nil {
			t.Fatal("N > IGB size must panic")
		}
	}()
	NewModule(net, Config{N: 9, IGBSize: 5})
}

func TestThresholdSentinels(t *testing.T) {
	mk := func(thr float64) *Module {
		net := nn.New(4, 4, rand.New(rand.NewSource(6)))
		for i := range net.WO {
			net.WO[i] = 0
		}
		net.WO[len(net.WO)-1] = 4 // always valid: rate 0
		return NewModule(net, Config{N: 2, CheckInterval: 20, MispredThreshold: thr})
	}

	// AlwaysTrain: even a 0% misprediction rate must not bring the
	// module back to testing — the zero-value trap this sentinel fixes.
	m := mk(AlwaysTrain)
	m.ForceMode(Training)
	for i := uint64(0); i < 200; i++ {
		m.OnDep(deps.Dep{S: 1 + i%3, L: 9 + i%3})
	}
	if m.Mode() != Training {
		t.Fatal("AlwaysTrain module left training mode")
	}
	if m.Stats().TrainingDeps != 200 {
		t.Fatalf("training deps = %d, want 200", m.Stats().TrainingDeps)
	}

	// A testing AlwaysTrain module flips into training at the first
	// window regardless of its (perfect) rate.
	m = mk(AlwaysTrain)
	for i := uint64(0); i < 40; i++ {
		m.OnDep(deps.Dep{S: 1 + i%3, L: 9 + i%3})
	}
	if m.Mode() != Training {
		t.Fatal("AlwaysTrain module stayed in testing mode")
	}

	// NeverTrain: an always-invalid network (100% misprediction) must
	// stay in testing mode. The breaker is disabled so rollback does not
	// mask the mode decision under test.
	net := nn.New(4, 4, rand.New(rand.NewSource(7)))
	for i := range net.WO {
		net.WO[i] = 0
	}
	net.WO[len(net.WO)-1] = -2
	m = NewModule(net, Config{N: 2, CheckInterval: 20, MispredThreshold: NeverTrain, RecoveryWindows: -1})
	for i := uint64(0); i < 200; i++ {
		m.OnDep(deps.Dep{S: 1 + i%3, L: 9 + i%3})
	}
	if m.Mode() != Testing {
		t.Fatal("NeverTrain module entered training mode")
	}

	// Explicit 0 still means the documented default.
	if got := (Config{}).withDefaults().MispredThreshold; got != DefaultMispredThreshold {
		t.Fatalf("zero threshold defaulted to %v", got)
	}
}

// healthyModule builds a testing-mode module with an accept-everything
// network and pushes it through one healthy window so a post-deployment
// snapshot exists.
func healthyModule(t *testing.T, interval int) *Module {
	t.Helper()
	net := nn.New(4, 6, rand.New(rand.NewSource(8)))
	for h := range net.WH {
		for i := range net.WH[h] {
			net.WH[h][i] = 0.1
		}
	}
	for i := range net.WO {
		net.WO[i] = 0
	}
	net.WO[len(net.WO)-1] = 2 // sigmoid(2) ≈ 0.88: valid, not saturated
	m := NewModule(net, Config{N: 2, CheckInterval: interval, RecoveryWindows: 3})
	for i := uint64(0); i < uint64(interval); i++ {
		if _, inv := m.OnDep(deps.Dep{S: 2 + i%4, L: 100 + i%4}); inv {
			t.Fatal("fixture network rejected a dependence")
		}
	}
	if m.Stats().Snapshots < 2 { // construction + first healthy window
		t.Fatalf("snapshots = %d, want construction + healthy window", m.Stats().Snapshots)
	}
	return m
}

func TestRecoverFromNaNWeights(t *testing.T) {
	m := healthyModule(t, 50)
	good := m.SaveWeights()

	// An SEU leaves a NaN in weight memory: the very next dependence
	// must roll the module back, keep it in testing mode, and count the
	// recovery.
	m.Network().WriteRegister(0, math.NaN())
	m.Network().WriteRegister(len(good)-1, math.Inf(1))
	_, inv := m.OnDep(deps.Dep{S: 2, L: 100})
	if inv {
		t.Fatal("restored weights rejected a known-valid dependence")
	}
	if got := m.Stats().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
	if m.Mode() != Testing {
		t.Fatalf("mode after recovery = %v", m.Mode())
	}
	after := m.SaveWeights()
	for i := range good {
		if after[i] != good[i] {
			t.Fatalf("weight %d not restored: %v vs %v", i, after[i], good[i])
		}
	}
}

func TestRecoverFromDivergedWeights(t *testing.T) {
	const interval = 50
	m := healthyModule(t, interval)
	good := m.SaveWeights()

	// Corrupt the output bias to a huge finite magnitude: every output
	// saturates against 0, the misprediction rate pins at 100%, and
	// learning cannot make progress through the dead sigmoid. Within
	// K = 3 windows the breaker must restore the snapshot and return the
	// module to testing mode.
	m.Network().WO[len(m.Network().WO)-1] = -1e6
	recoveredAt := -1
	for i := 0; i < 5*interval; i++ {
		m.OnDep(deps.Dep{S: 2 + uint64(i)%4, L: 100 + uint64(i)%4})
		if m.Stats().Recoveries > 0 {
			recoveredAt = i
			break
		}
	}
	if recoveredAt < 0 {
		t.Fatal("diverged module never recovered")
	}
	if recoveredAt >= 4*interval {
		t.Fatalf("recovery took %d deps, want within K=3 windows plus slack", recoveredAt)
	}
	if m.Mode() != Testing {
		t.Fatalf("mode after recovery = %v", m.Mode())
	}
	after := m.SaveWeights()
	for i := range good {
		if after[i] != good[i] {
			t.Fatalf("weight %d not restored", i)
		}
	}
	// And the module is functional again.
	if _, inv := m.OnDep(deps.Dep{S: 2, L: 100}); inv {
		t.Fatal("recovered module rejects valid dependences")
	}
}

func TestBreakerSparesLegitimateRetraining(t *testing.T) {
	// An always-invalid network that CAN learn (healthy gradients): the
	// module flips to training, improves every window, and must converge
	// without the breaker yanking it back to the unlearned snapshot.
	net := nn.New(4, 6, rand.New(rand.NewSource(2)))
	for i := range net.WO {
		net.WO[i] = 0
	}
	net.WO[len(net.WO)-1] = -2
	m := NewModule(net, Config{N: 2, CheckInterval: 50, LearningRate: 0.5, RecoveryWindows: 3})
	ds := seqAt(0x4000, 4)
	for i := 0; i < 50_000 && (m.Mode() == Training || i < 3000); i++ {
		m.OnDep(ds[i%len(ds)])
	}
	if m.Mode() != Testing {
		t.Fatal("module never converged back to testing")
	}
	if got := m.Stats().Recoveries; got != 0 {
		t.Fatalf("breaker fired %d times during legitimate retraining", got)
	}
}

func TestRecoveryDisabled(t *testing.T) {
	net := nn.New(4, 4, rand.New(rand.NewSource(9)))
	m := NewModule(net, Config{N: 2, CheckInterval: 10, RecoveryWindows: -1})
	m.Network().WriteRegister(0, math.NaN())
	for i := uint64(0); i < 100; i++ {
		m.OnDep(deps.Dep{S: 1 + i, L: 2 + i})
	}
	if m.Stats().Recoveries != 0 {
		t.Fatal("disabled breaker still recovered")
	}
}

func TestWeightBinary(t *testing.T) {
	wb := NewWeightBinary(4, 4)
	if wb.Has(0) {
		t.Fatal("fresh binary claims weights")
	}
	wb.Patch(2, []float64{1, 2, 3})
	if !wb.Has(2) || wb.Has(1) {
		t.Fatal("chkwt semantics broken")
	}
	got := wb.Get(2)
	got[0] = 99 // must not alias the stored copy
	if wb.Get(2)[0] != 1 {
		t.Fatal("Get aliases internal storage")
	}
	wb.PatchAll(3, []float64{7})
	if th := wb.Threads(); len(th) != 3 || th[0] != 0 || th[2] != 2 {
		t.Fatalf("threads %v, want [0 1 2]", th)
	}
}

func TestTrackerUnseenThreadStartsTraining(t *testing.T) {
	wb := AlwaysValidBinary(4, 10, 1) // only thread 0 has weights
	tk := NewTracker(wb, TrackerConfig{Module: Config{N: 2}})
	if tk.Module(0).Mode() != Testing {
		t.Fatal("thread 0 with weights should start testing")
	}
	if tk.Module(1).Mode() != Training {
		t.Fatal("thread 1 without weights should start training")
	}
}

func TestTrackerShutdownPatchesBinary(t *testing.T) {
	wb := AlwaysValidBinary(4, 10, 1)
	tk := NewTracker(wb, TrackerConfig{Module: Config{N: 2}})
	tk.OnRecord(recordOf(1, 0x10, 0x1000, true))
	tk.OnRecord(recordOf(1, 0x14, 0x1000, false))
	tk.Shutdown()
	if !wb.Has(1) {
		t.Fatal("shutdown did not patch thread 1's learned weights")
	}
}

func TestTeachInvalid(t *testing.T) {
	wb := AlwaysValidBinary(4, 10, 1)
	tk := NewTracker(wb, TrackerConfig{Module: Config{N: 2}})
	m := tk.Module(0)
	bad := deps.Sequence{{S: 0x111, L: 0x222}, {S: 0x333, L: 0x444, Inter: true}}
	if _, inv := m.OnDep(bad[1]); inv {
		t.Skip("already rejected; nothing to teach")
	}
	if !m.TeachInvalid(bad) {
		t.Fatal("TeachInvalid failed to make the network reject the sequence")
	}
	// Short sequences are padded like the IGB would.
	if !m.TeachInvalid(deps.Sequence{{S: 0x999, L: 0xAAA}}) {
		t.Fatal("TeachInvalid with a short sequence failed")
	}
}

func TestPerThreadWeightsDiverge(t *testing.T) {
	// Two untrained threads learn different dependence streams online;
	// after Shutdown the patched binary holds different weights.
	wb := NewWeightBinary(4, 6)
	tk := NewTracker(wb, TrackerConfig{Module: Config{N: 2, CheckInterval: 50}, Seed: 5})
	for i := uint64(0); i < 2000; i++ {
		tk.Module(0).OnDep(deps.Dep{S: 0x100 + i%3, L: 0x200 + i%3})
		tk.Module(1).OnDep(deps.Dep{S: 0x900 + i%7, L: 0xA00 + i%7, Inter: true})
	}
	tk.Shutdown()
	w0, w1 := wb.Get(0), wb.Get(1)
	same := true
	for i := range w0 {
		if w0[i] != w1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("threads with different streams ended with identical weights")
	}
}

func TestAlwaysValidBinary(t *testing.T) {
	wb := AlwaysValidBinary(4, 10, 2)
	tk := NewTracker(wb, TrackerConfig{Module: Config{N: 2}})
	m := tk.Module(0)
	for i := uint64(0); i < 20; i++ {
		if _, inv := m.OnDep(deps.Dep{S: i * 7, L: i * 13}); inv {
			t.Fatal("always-valid binary rejected a dependence")
		}
	}
}

// alwaysInvalidBinary mirrors AlwaysValidBinary with the output bias on
// the reject side: every sequence is predicted invalid and logged.
func alwaysInvalidBinary(nIn, nHidden, nThreads int) *WeightBinary {
	wb := NewWeightBinary(nIn, nHidden)
	w := make([]float64, nHidden*(nIn+1)+nHidden+1)
	w[len(w)-1] = -4 // output bias: sigmoid(-4) ≈ 0.02
	wb.PatchAll(nThreads, w)
	return wb
}

func TestDebugBuffersDeterministicOrder(t *testing.T) {
	feed := func() *Tracker {
		wb := alwaysInvalidBinary(4, 10, 3)
		tk := NewTracker(wb, TrackerConfig{Module: Config{N: 2}})
		// Interleave threads so per-module streams accumulate out of
		// global order.
		for i := 0; i < 12; i++ {
			tid := uint16(2 - i%3)
			tk.OnRecord(recordOf(tid, 0x10+uint64(i)*4, 0x1000+uint64(tid)*8, true))
			tk.OnRecord(recordOf(tid, 0x100+uint64(i)*4, 0x1000+uint64(tid)*8, false))
		}
		return tk
	}
	tk := feed()
	got := tk.DebugBuffers()
	if len(got) == 0 {
		t.Fatal("always-invalid deployment logged nothing")
	}
	for i, e := range got {
		if i > 0 {
			prev := got[i-1]
			if e.Proc < prev.Proc || (e.Proc == prev.Proc && e.At < prev.At) {
				t.Fatalf("entry %d out of (proc, insertion) order: %v after %v", i, e, prev)
			}
		}
	}
	// A fresh identical deployment must produce the identical log, and
	// re-reading must not perturb it.
	again := feed().DebugBuffers()
	if len(again) != len(got) {
		t.Fatalf("rerun length %d, want %d", len(again), len(got))
	}
	for i := range got {
		if got[i].Seq.Key() != again[i].Seq.Key() || got[i].Proc != again[i].Proc || got[i].At != again[i].At {
			t.Fatalf("rerun entry %d differs: %v vs %v", i, got[i], again[i])
		}
	}

	tk.ResetDebug()
	if left := tk.DebugBuffers(); len(left) != 0 {
		t.Fatalf("ResetDebug left %d entries", len(left))
	}
}
