package core

import "act/internal/trace"

// Parallel sharded replay.
//
// Sequential Replay interleaves two jobs of very different character:
// last-writer resolution, which must observe the trace in its single
// global coherence order, and classification, which is per-processor
// state only (a module's verdicts depend exclusively on its own
// thread's dependence order). ReplayParallel splits them: the calling
// goroutine runs the extractor over the trace in order — the stage
// that cannot be parallelized — and fans each formed dependence out to
// its thread's worker over a bounded batch channel, where one goroutine
// per module (mirroring the paper's one AM per processor) runs the
// neural-network classification concurrently.
//
// Because each module still consumes exactly its own dependence stream
// in exactly the sequential order, DebugBuffers, Stats, and the weights
// patched back by Shutdown are bit-identical to a sequential Replay of
// the same trace on an identically configured Tracker.

// ParallelConfig tunes ReplayParallel. The zero value is ready to use.
type ParallelConfig struct {
	// Batch is the number of dependences handed to a worker per channel
	// operation; 0 means 512. Larger batches amortize synchronization,
	// smaller ones reduce worker start latency.
	Batch int
	// Depth is the number of batches buffered per worker before the
	// sequential stage blocks (backpressure); 0 means 4.
	Depth int
}

// ReplayParallel feeds a whole trace through the tracker with the
// two-stage pipeline described above; it is a thin wrapper over
// ReplayCheckpointed with checkpointing disabled. It must not run
// concurrently with other methods of the same Tracker; it returns once
// every worker has drained, so the usual inspect-after-replay sequence
// is unchanged.
func (t *Tracker) ReplayParallel(tr *trace.Trace, cfg ParallelConfig) {
	t.mustReplay(tr, &cfg)
}
