// Kill-and-resume equivalence at the level the programmer sees: for
// every checked-in workload kernel, a diagnosis run killed at random
// checkpoint boundaries (the AbortAfter hook fires immediately after a
// checkpoint image lands — exactly the state a SIGKILL at that instant
// leaves on disk) and resumed on fresh trackers must produce a ranked
// report AND an RCA verdict file byte-identical to an uninterrupted
// run's. Exercised sequentially in float mode and in parallel quantized
// mode, so the fanout Flush/Barrier quiescence path is covered under
// the race detector in CI.
package core_test

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/pipeline/stages"
	"act/internal/rca"
	"act/internal/trace"
	"act/internal/workloads"
)

// runStages executes the diagnosis DAG once on a fresh tracker and
// returns the stage result.
func runStages(t *testing.T, mk func() *core.Tracker, tr *trace.Trace, correct *deps.SeqSet, cfg stages.Config) *stages.Result {
	t.Helper()
	res, err := stages.Run(mk(), tr, correct, cfg)
	if err != nil {
		t.Fatalf("stages.Run: %v", err)
	}
	return res
}

// serialize renders the result's two artifacts in their persisted wire
// forms — the byte streams resume must reproduce exactly.
func serialize(t *testing.T, res *stages.Result) (report, verdicts []byte) {
	t.Helper()
	var rbuf, vbuf bytes.Buffer
	if err := res.Report.Save(&rbuf); err != nil {
		t.Fatalf("report save: %v", err)
	}
	if err := res.RCA.Save(&vbuf); err != nil {
		t.Fatalf("rca save: %v", err)
	}
	return rbuf.Bytes(), vbuf.Bytes()
}

func TestWorkloadKillResume(t *testing.T) {
	const n = 2
	nIn := deps.InputLen(deps.EncodeDefault, n)
	rng := rand.New(rand.NewSource(42))

	for _, mode := range []struct {
		name  string
		quant bool
		par   *core.ParallelConfig
	}{
		{"seq-float", false, nil},
		{"par-quant", true, &core.ParallelConfig{Batch: 32}},
	} {
		for _, w := range workloads.Kernels() {
			t.Run(mode.name+"/"+w.Name, func(t *testing.T) {
				prog := w.Build(1)
				tr, _ := trace.Collect(prog, w.Sched(1))
				cfg := core.TrackerConfig{
					Module: core.Config{N: n, Quantized: mode.quant},
					Seed:   7,
				}
				mk := func() *core.Tracker {
					// Untrained binaries: modules learn online and still
					// log, so reports are non-trivial mid-trace state.
					return core.NewTracker(core.NewWeightBinary(nIn, 6), cfg)
				}
				correct := deps.NewSeqSet(n)
				prov := rca.Provenance{Program: prog, CorrectRuns: 1, Bug: w.Name}

				// Uninterrupted baseline, no checkpointing at all.
				base := runStages(t, mk, tr, correct, stages.Config{Parallel: mode.par, Provenance: prov})
				wantRep, wantRCA := serialize(t, base)

				// Random checkpoint cadence per kernel; kill after the
				// first image, resume and kill after the next, then resume
				// to completion — three process lifetimes over one trace.
				interval := 1 + rng.Intn(len(tr.Records))
				ck := core.CheckpointConfig{
					Path:     filepath.Join(t.TempDir(), "kill.ckpt"),
					Interval: interval,
				}
				killsDone := false
				for kill := 1; kill <= 2 && !killsDone; kill++ {
					kc := ck
					kc.Resume = kill > 1
					kc.AbortAfter = 1
					_, err := stages.Run(mk(), tr, correct, stages.Config{
						Parallel: mode.par, Checkpoint: kc, Provenance: prov,
					})
					switch {
					case errors.Is(err, core.ErrReplayAborted):
						// killed as intended; resume in the next lifetime
					case err == nil:
						// The only checkpoint boundary was the completion
						// image — the "kill" run finished the whole DAG.
						killsDone = true
					default:
						t.Fatalf("killed run %d: %v", kill, err)
					}
				}

				final := runStages(t, mk, tr, correct, stages.Config{
					Parallel:   mode.par,
					Checkpoint: core.CheckpointConfig{Path: ck.Path, Interval: interval, Resume: true},
					Provenance: prov,
				})
				if !final.Replay.Resumed && !killsDone {
					t.Fatalf("final run did not resume (reason %q)", final.Replay.Reason)
				}
				gotRep, gotRCA := serialize(t, final)
				if !bytes.Equal(wantRep, gotRep) {
					t.Errorf("ranked report bytes diverge after kill+resume (interval %d)", interval)
				}
				if !bytes.Equal(wantRCA, gotRCA) {
					t.Errorf("RCA verdict bytes diverge after kill+resume (interval %d)", interval)
				}

				// One more lifetime: everything is in the checkpoint now,
				// so the DAG must serve both artifacts without recomputing.
				again := runStages(t, mk, tr, correct, stages.Config{
					Parallel:   mode.par,
					Checkpoint: core.CheckpointConfig{Path: ck.Path, Interval: interval, Resume: true},
					Provenance: prov,
				})
				if !again.StageResumed {
					t.Fatalf("stage resume did not serve stored results (reason %q)", again.Replay.Reason)
				}
				gotRep, gotRCA = serialize(t, again)
				if !bytes.Equal(wantRep, gotRep) || !bytes.Equal(wantRCA, gotRCA) {
					t.Error("stage-resumed artifacts diverge from baseline")
				}
			})
		}
	}
}
