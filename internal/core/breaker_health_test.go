package core

import (
	"math/rand"
	"testing"

	"act/internal/nn"
)

// TestClassifyWindowStates drives classifyWindow through every
// windowHealth state. The table is the contract behind the breaker's
// //act:exhaustive annotation: each state is reachable, and the
// boundaries (threshold, improvement epsilon, saturation) land on the
// documented side.
func TestClassifyWindowStates(t *testing.T) {
	m := NewModule(nn.New(6, 4, rand.New(rand.NewSource(1))), Config{})
	thr := m.cfg.breakerThreshold()

	cases := []struct {
		name      string
		rate      float64
		lastRate  float64
		saturated bool
		want      windowHealth
	}{
		{"zero rate", 0, 1, false, windowHealthy},
		{"exactly at threshold", thr, 1, false, windowHealthy},
		{"just above threshold, falling fast", thr + 0.001, 1, false, windowImproving},
		{"above threshold, falling slower than eps", 0.5, 0.5 + rateImprovementEps, false, windowStalled},
		{"above threshold, falling faster than eps", 0.5, 0.5 + rateImprovementEps + 0.001, false, windowImproving},
		{"above threshold, flat", 0.5, 0.5, false, windowStalled},
		{"above threshold, rising", 0.6, 0.5, false, windowStalled},
		{"good rate but saturated outputs", 0, 1, true, windowStalled},
		{"improving rate but saturated outputs", 0.2, 1, true, windowStalled},
	}
	for _, tc := range cases {
		m.lastRate = tc.lastRate
		if got := m.classifyWindow(tc.rate, tc.saturated); got != tc.want {
			t.Errorf("%s: classifyWindow(%g, %v) with lastRate=%g = %v, want %v",
				tc.name, tc.rate, tc.saturated, tc.lastRate, got, tc.want)
		}
	}
}

// TestWindowHealthString pins the state names used in diagnostics.
func TestWindowHealthString(t *testing.T) {
	for h, want := range map[windowHealth]string{
		windowHealthy:   "healthy",
		windowImproving: "improving",
		windowStalled:   "stalled",
		windowHealth(9): "windowHealth(9)",
	} {
		if got := h.String(); got != want {
			t.Errorf("windowHealth(%d).String() = %q, want %q", int(h), got, want)
		}
	}
}

// TestBreakerStateTransitions checks the action each health state drives
// in checkRate: healthy resets the counter and snapshots, improving
// holds the counter, stalled increments it and eventually rolls back.
func TestBreakerStateTransitions(t *testing.T) {
	newModule := func() *Module {
		return NewModule(nn.New(6, 4, rand.New(rand.NewSource(7))), Config{
			CheckInterval: 10, RecoveryWindows: 2,
		})
	}

	t.Run("healthy window snapshots and resets", func(t *testing.T) {
		m := newModule()
		m.badWindows = 1
		before := m.Stats().Snapshots
		m.window, m.invalid, m.satWindow = 10, 0, 0
		m.checkRate()
		if m.badWindows != 0 {
			t.Errorf("badWindows = %d after healthy window, want 0", m.badWindows)
		}
		if m.Stats().Snapshots != before+1 {
			t.Errorf("Snapshots = %d, want %d", m.Stats().Snapshots, before+1)
		}
	})

	t.Run("improving window holds the counter", func(t *testing.T) {
		m := newModule()
		m.badWindows = 1
		m.lastRate = 0.9
		m.window, m.invalid = 10, 5 // rate 0.5: above threshold, well below lastRate
		m.checkRate()
		if m.badWindows != 1 {
			t.Errorf("badWindows = %d after improving window, want 1 (held)", m.badWindows)
		}
		if m.Stats().Recoveries != 0 {
			t.Errorf("Recoveries = %d after improving window, want 0", m.Stats().Recoveries)
		}
	})

	t.Run("stalled windows accumulate and roll back", func(t *testing.T) {
		m := newModule()
		for i := 0; i < 2; i++ {
			m.lastRate = 0.5
			m.window, m.invalid = 10, 5 // rate 0.5, flat: stalled
			m.checkRate()
		}
		if m.Stats().Recoveries != 1 {
			t.Errorf("Recoveries = %d after %d stalled windows, want 1", m.Stats().Recoveries, 2)
		}
		if m.badWindows != 0 {
			t.Errorf("badWindows = %d after rollback, want 0", m.badWindows)
		}
	})
}
