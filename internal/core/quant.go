// Fixed-point batched classification (Config.Quantized).
//
// The float path classifies one window at a time: encode the padded
// sequence, run nn.Network.Forward, update the counters. The quantized
// path compiles the live weights to an nn.QNetwork — the same Q-format
// registers nn.Quantize models, executed in int32 — and classifies runs
// of testing-mode dependences in chunks: every window is probed in the
// generation-stamped window memo (production streams repeat a small set
// of hot windows, so most probes hit), and only the missed windows are
// encoded and classified, all of them with one nn.ForwardWindows call.
// The chunk itself is never staged: windows past the first N-1 lie
// entirely inside the caller's batch — in parallel replay, the fan-out
// buffer delivered to the worker — and are sliced from it in place;
// only the history/batch boundary is materialized (see quantWindow).
//
// Staleness follows the verdict cache's generation scheme: a compiled
// kernel is valid for exactly one value of Module.gen, so every online
// training step, mode switch, breaker recovery, rollback, LoadWeights,
// and InvalidateVerdicts orphans it; the next testing-mode
// classification recompiles (~a hundred int16 stores). When the weight
// state cannot compile — non-finite registers after an SEU — the module
// remembers the failure for that generation and classifies in float, so
// the NaN-divergence breaker still sees the poisoned outputs it needs.
//
// The batch boundary is invisible: OnDeps commits per-dependence effects
// (IGB, verdict cache, trajectory, Debug Buffer, Invalid Counter, rate
// windows) in stream order, with the same values per-dependence OnDep
// would produce, and re-checks mode and generation at every window
// boundary so a mid-batch mode switch or recovery falls back to the
// per-dependence path for the remainder. Stats counters are accumulated
// locally and flushed once per chunk — a concurrent metrics scrape may
// lag by at most quantChunk dependences, within the monitoring contract
// (exact counters, cross-counter consistency at quiescence).

package core

import (
	"math/bits"

	"act/internal/deps"
	"act/internal/nn"
)

// quantChunk caps how many dependences one kernel call classifies. It
// bounds the staging slabs and the window between mode/generation
// re-checks; deps.Fanout's default batch is the same size.
const quantChunk = 512

// qmemoBits sizes the window memo at 2^qmemoBits direct-mapped buckets.
// Production dependence streams are dominated by a small set of hot
// windows (the radix bench trace has 13 distinct dependences), so even
// a small table approaches a 100% hit rate; a collision just overwrites
// the bucket and costs one recomputation.
const qmemoBits = 10

// qmemo memoizes the batched kernel: bucket b holds one full window
// (n = N dependences, compared exactly on every probe — never matched
// by hash alone) and the verdict the kernel produced for it, stamped
// with the weight generation + 1 it was computed under (stamp 0 means
// empty). A verdict is a pure function of (generation, window), so
// serving a stamped, key-verified entry is bit-identical to re-running
// the kernel; bumping the generation invalidates every entry at once
// because generations are never reused. This is the batch-path
// counterpart of the verdict cache, but internal, exact-keyed, and
// allocation-free — it exists to skip encode+inference, not to be
// observable, so hits leave no trace in Stats.
type qmemo struct {
	stamp []uint64
	keys  []deps.Dep
	vals  []float64
	n     int
}

// qwindowEqual reports whether the memoized key a equals window b.
//
//act:noalloc
func qwindowEqual(a, b []deps.Dep) bool {
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// qdepHash mixes one dependence into a 64-bit hash.
//
//act:noalloc
func qdepHash(d deps.Dep) uint64 {
	h := d.S*0x9e3779b97f4a7c15 ^ bits.RotateLeft64(d.L*0xbf58476d1ce4e5b9, 31)
	if d.Inter {
		h ^= 0x94d049bb133111eb
	}
	return h
}

// classify runs one testing-mode inference over the encoded window in
// xbuf: fixed-point when enabled and compilable, float otherwise. The
// scalar and batched quantized paths share nn.QNetwork's kernel, so
// their outputs are bit-identical.
//
//act:noalloc
func (m *Module) classify() float64 {
	if m.cfg.Quantized && m.quantReady() {
		return m.qnet.Forward(m.xbuf)
	}
	return m.net.Forward(m.xbuf)
}

// quantReady reports whether a kernel compiled for the current weight
// generation is available, recompiling a stale one on the spot. Compile
// failures are cached per generation: the module keeps answering false
// (float fallback) without re-attempting until the weights change.
func (m *Module) quantReady() bool {
	g := m.gen.Load()
	if m.qnet != nil && m.qgen == g {
		return true
	}
	if m.qbad && m.qbadGen == g {
		return false
	}
	qn, err := nn.Compile(m.net, m.cfg.LUT) //act:alloc-ok-call recompile runs once per weight generation
	if err != nil {
		m.qbad, m.qbadGen = true, g
		return false
	}
	m.qnet, m.qgen = qn, g
	m.qbad = false
	return true
}

// QuantGeneration returns the weight generation the compiled kernel is
// valid for and whether one exists (tests and diagnostics).
func (m *Module) QuantGeneration() (uint64, bool) { return m.qgen, m.qnet != nil }

// OnDeps processes a run of dependences in stream order, classifying
// testing-mode stretches through the batched fixed-point kernel when
// quantization is enabled. Observable effects — Stats, Debug Buffer,
// verdict cache, trajectory, mode, weights — are bit-identical to
// calling OnDep once per dependence; the batch boundary carries no
// semantics, which is what keeps sequential, staged, and parallel
// replays equivalent.
//
//act:noalloc
func (m *Module) OnDeps(ds []deps.Dep) {
	for len(ds) > 0 {
		if m.mode == Testing && m.cfg.Quantized && m.fpd > 0 && m.quantReady() {
			ds = ds[m.onDepsQuant(ds):]
			continue
		}
		m.OnDep(ds[0])
		ds = ds[1:]
	}
}

// onDepsQuant classifies up to quantChunk leading dependences of ds —
// memo hits served directly, all misses with one kernel call — and
// commits their effects, returning how many it consumed (≥ 1). It
// stops early when a completed rate window switches the mode or moves
// the weight generation. Caller guarantees testing mode, a batchable
// encoder (fpd > 0), and a fresh kernel.
//
//act:noalloc
func (m *Module) onDepsQuant(ds []deps.Dep) int {
	n := len(ds)
	if n > quantChunk {
		n = quantChunk
	}
	hist := m.cfg.N - 1

	// Phase A — speculate: probe the window memo for every window and
	// run encode + kernel only for the windows that miss. Reads module
	// state but writes nothing observable (the memo is invisible).
	//
	// Only the history/batch boundary is materialized: bbuf holds the
	// window history followed by the first hist chunk dependences, so
	// the hist straddling windows are contiguous; every later window is
	// sliced from ds itself — the chunk (in parallel replay, the fan-out
	// batch) feeds the kernel without a staging copy.
	wsz := hist + 1
	bb := hist
	if n < bb {
		bb = n
	}
	if cap(m.qdeps) < 2*hist {
		m.qdeps = make([]deps.Dep, 2*hist) //act:alloc-ok grow-once boundary buffer
	}
	bbuf := m.qdeps[:hist+bb]
	m.igbTail(bbuf[:hist])
	copy(bbuf[hist:], ds[:bb])
	if cap(m.qouts) < n {
		m.qouts = make([]float64, quantChunk) //act:alloc-ok grow-once output slab
	}
	outs := m.qouts[:n]

	if m.qmemo.n != wsz {
		//act:alloc-ok one-time memo table
		m.qmemo.stamp = make([]uint64, 1<<qmemoBits)
		//act:alloc-ok one-time memo table
		m.qmemo.keys = make([]deps.Dep, wsz<<qmemoBits)
		//act:alloc-ok one-time memo table
		m.qmemo.vals = make([]float64, 1<<qmemoBits)
		m.qmemo.n = wsz
	}
	if cap(m.qhash) < hist+n {
		m.qhash = make([]uint64, quantChunk+hist) //act:alloc-ok grow-once hash slab
	}
	// hd[i] is the hash of element i of the virtual sequence
	// history+chunk, without assembling that sequence anywhere.
	hd := m.qhash[:hist+n]
	for i := 0; i < hist; i++ {
		hd[i] = qdepHash(bbuf[i])
	}
	for i := 0; i < n; i++ {
		hd[hist+i] = qdepHash(ds[i])
	}
	if cap(m.qmiss) < n {
		m.qmiss = make([]int32, quantChunk) //act:alloc-ok grow-once miss index slab
	}
	missBuf := m.qmiss[:n]
	nm := 0
	stampWant := m.qgen + 1 // quantReady pinned qgen == gen
	for k := 0; k < n; k++ {
		wh := hd[k]
		for i := 1; i < wsz; i++ {
			wh = wh*0x100000001b3 ^ hd[k+i]
		}
		// Fibonacci multiply-shift: the product's high bits avalanche
		// where the chained low bits do not (real dependence windows
		// differ in one position and collide badly on low bits).
		b := (wh * 0x9e3779b97f4a7c15) >> (64 - qmemoBits)
		if m.qmemo.stamp[b] == stampWant && qwindowEqual(m.qmemo.keys[b*uint64(wsz):], quantWindow(bbuf, ds, hist, k)) {
			outs[k] = m.qmemo.vals[b]
		} else {
			missBuf[nm] = int32(k)
			nm++
		}
	}
	miss := missBuf[:nm]

	if len(miss) > 0 {
		// Missed windows are encoded densely, one full window each —
		// up to wsz× the per-dependence encoding of a shared slab, but
		// only on misses, which the memo makes rare in steady state.
		fpd := m.fpd
		nin := wsz * fpd
		if cap(m.qfeat) < quantChunk*nin {
			m.qfeat = make([]float64, quantChunk*nin) //act:alloc-ok grow-once feature slab
		}
		feat := m.qfeat[:len(miss)*nin]
		for j, k := range miss {
			base := j * nin
			win := quantWindow(bbuf, ds, hist, int(k))
			for i := 0; i < wsz; i++ {
				m.cfg.DepEncoder(win[i], feat[base+i*fpd:]) //act:alloc-ok-call registered encoders write in place
			}
		}
		// Kernel outputs land in their own scratch (scattering through
		// outs would clobber memo-served values sitting at low indices)
		// and are stored bucket-wise as they scatter; within-chunk
		// duplicates just overwrite with an identical value.
		if cap(m.qmouts) < len(miss) {
			m.qmouts = make([]float64, quantChunk) //act:alloc-ok grow-once miss output slab
		}
		mouts := m.qmouts[:len(miss)]
		m.qnet.ForwardWindows(feat, nin, mouts)
		for j, ki := range miss {
			k := int(ki)
			out := mouts[j]
			outs[k] = out
			wh := hd[k]
			for i := 1; i < wsz; i++ {
				wh = wh*0x100000001b3 ^ hd[k+i]
			}
			b := (wh * 0x9e3779b97f4a7c15) >> (64 - qmemoBits)
			m.qmemo.stamp[b] = stampWant
			copy(m.qmemo.keys[b*uint64(wsz):(b+1)*uint64(wsz)], quantWindow(bbuf, ds, hist, k))
			m.qmemo.vals[b] = out
		}
	}

	// Phase B — commit, in stream order. Counter deltas accumulate in
	// locals and flush in one atomic add per counter; At indices are
	// reconstructed from the pre-chunk base exactly as OnDep's
	// increment-then-read produces them.
	startGen := m.gen.Load()
	base := m.stats.deps.Load()
	var cSeqs, cInv, cHits, cMiss uint64
	size := m.cfg.IGBSize
	k := 0
	for ; k < n; k++ {
		// IGB push (identical transitions to OnDep's, modulo-free).
		if m.igcnt < size {
			pos := m.ighead + m.igcnt
			if pos >= size {
				pos -= size
			}
			m.igb[pos] = ds[k]
			m.igcnt++
		} else {
			m.igb[m.ighead] = ds[k]
			m.ighead++
			if m.ighead == size {
				m.ighead = 0
			}
		}
		cSeqs++
		out := outs[k]
		win := quantWindow(bbuf, ds, hist, k)
		if m.vc != nil {
			// Same get/put order as OnDep, so LRU state and hit/miss
			// counts match exactly. A hit serves the cached value —
			// bit-equal to outs[k], both pure functions of (gen, window).
			hash := deps.Sequence(win).Hash()
			if v, ok := m.vc.get(hash, startGen); ok {
				cHits++
				out = v
			} else {
				cMiss++
				m.vc.put(hash, startGen, out)
			}
		}
		if out <= m.cfg.SaturationEps || out >= 1-m.cfg.SaturationEps {
			m.satWindow++
		}
		m.pushTraj(out)
		if out < 0.5 {
			cInv++
			m.invalid++
			m.logDebug(deps.Sequence(win), out, base+uint64(k)+1) //act:alloc-ok-call debug-ring capture, only on predicted-invalid
		}
		m.window++
		if m.window >= m.cfg.CheckInterval {
			m.checkRate()
			if m.mode != Testing || m.gen.Load() != startGen {
				k++
				break
			}
		}
	}
	m.stats.deps.Add(uint64(k))
	m.stats.sequences.Add(cSeqs)
	if cInv > 0 {
		m.stats.predictedInvalid.Add(cInv)
	}
	if cHits > 0 {
		m.stats.cacheHits.Add(cHits)
	}
	if cMiss > 0 {
		m.stats.cacheMisses.Add(cMiss)
	}
	return k
}

// quantWindow returns chunk window k — the hist dependences preceding
// ds[k] followed by ds[k] itself — as a contiguous slice without
// copying: the first hist windows straddle the history/batch boundary
// and live in bbuf (window history then ds[:hist], assembled once per
// chunk), every later window is a subslice of the caller's batch. This
// is what lets parallel replay's fan-out buffers feed ForwardWindows
// directly instead of being staged per module.
//
//act:noalloc
func quantWindow(bbuf, ds []deps.Dep, hist, k int) []deps.Dep {
	if k < hist {
		return bbuf[k : k+hist+1]
	}
	return ds[k-hist : k+1]
}

// igbTail copies the last len(dst) IGB entries into dst, zero-padding
// the front while the buffer is still filling — the same window prefix
// OnDep's seqbuf construction produces.
//
//act:noalloc
func (m *Module) igbTail(dst []deps.Dep) {
	h := len(dst)
	size := m.cfg.IGBSize
	if m.igcnt >= h {
		pos := m.ighead + m.igcnt - h
		if pos >= size {
			pos -= size
		}
		for i := 0; i < h; i++ {
			dst[i] = m.igb[pos]
			pos++
			if pos == size {
				pos = 0
			}
		}
		return
	}
	pad := h - m.igcnt
	for i := 0; i < pad; i++ {
		dst[i] = deps.Dep{}
	}
	pos := m.ighead
	for i := 0; i < m.igcnt; i++ {
		dst[pad+i] = m.igb[pos]
		pos++
		if pos == size {
			pos = 0
		}
	}
}
