// Package core implements the ACT Module (AM) of Section III: the
// per-processor unit that tests every RAW dependence sequence online
// against a neural network, logs predicted-invalid sequences to a Debug
// Buffer, tracks its misprediction rate with the Invalid Counter, and
// alternates between online testing and online training modes so the
// classifier adapts to code, input, and platform changes in the field.
//
//act:goleak
package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"act/internal/deps"
	"act/internal/nn"
)

// Mode is the AM's operating mode.
type Mode int

// Operating modes (the paper's Mode flag).
const (
	Testing  Mode = iota // classify sequences, log predicted-invalid ones
	Training             // additionally learn: treat every sequence as valid
)

// String names the mode.
func (m Mode) String() string {
	if m == Testing {
		return "testing"
	}
	return "training"
}

// DefaultMispredThreshold is the Table III mode-switch threshold applied
// when Config.MispredThreshold is zero. The divergence breaker also
// falls back to it when the configured threshold is a sentinel.
const DefaultMispredThreshold = 0.05

// Sentinel values for Config.MispredThreshold. The zero value means
// "use the default", so an explicit request must be out of the [0, 1]
// range a misprediction rate can take.
const (
	// AlwaysTrain (any negative threshold) keeps the module in online
	// training permanently: no rate is ever low enough to switch back
	// to testing.
	AlwaysTrain float64 = -1
	// NeverTrain (any threshold above 1) pins the module in testing
	// mode: no misprediction rate can exceed it.
	NeverTrain float64 = 2
)

// Config parameterizes an ACT Module. The defaults mirror Table III.
type Config struct {
	N             int     // dependences per sequence (network input group)
	IGBSize       int     // Input Generator Buffer entries; default 5
	DebugBufSize  int     // Debug Buffer entries; default 60
	CheckInterval int     // dependences between rate checks; default 1000
	LearningRate  float64 // online backprop rate; default 0.2
	// MispredThreshold is the mode-switch threshold; 0 means the default
	// 0.05. The zero value cannot express "always train", so the
	// sentinels exist: any negative value (AlwaysTrain) locks the module
	// in training mode, any value above 1 (NeverTrain) locks it in
	// testing mode.
	MispredThreshold float64
	// RecoveryWindows is K, the number of consecutive stalled-unhealthy
	// windows (misprediction rate above threshold without improving, or
	// fully saturated outputs) before the breaker restores the
	// last-known-good weight snapshot. Windows in which the rate is
	// still falling do not count: a module legitimately retraining on
	// changed code makes progress, corrupted weights stall. 0 means the
	// default 4; a negative value disables the breaker.
	RecoveryWindows int
	// SaturationEps bounds the "pinned output" detector: a window whose
	// every output is within eps of 0 or 1 counts as unhealthy even when
	// its misprediction rate looks fine, since saturated-valid outputs
	// are what corrupted large-magnitude weights produce. 0 means the
	// default 1e-6.
	SaturationEps float64
	// VerdictCache enables memoization of network verdicts: while the
	// weights are unchanged, a repeated sequence's output is served from
	// an LRU keyed by the sequence's FNV-1a hash instead of re-running
	// the network. 0 (the zero value) disables it — the faithful
	// hardware model computes every sequence — a positive value is the
	// entry capacity, and any negative value enables it at
	// DefaultVerdictCache entries. The cache is invalidated by every
	// weight update, mode switch, and breaker recovery; hits and misses
	// are counted in Stats.
	VerdictCache int
	Encoder      deps.Encoder // feature encoding; default deps.EncodeDefault
	// DepEncoder is the per-dependence form of Encoder, required by the
	// batched fixed-point classification path (see Quantized). It
	// defaults to the per-dependence twin of a built-in Encoder; a
	// custom Encoder without a matching DepEncoder simply disables
	// batching (per-dependence classification still works).
	DepEncoder deps.DepEncoder
	LUT        *nn.SigmoidLUT
	// Quantized enables fixed-point inference: testing-mode
	// classifications run through an nn.QNetwork compiled from the live
	// weights — int16 registers, int32 accumulation, the LUT as the only
	// nonlinearity — recompiled lazily whenever the weight generation
	// moves (training step, recovery, rollback, LoadWeights) and falling
	// back to float inference when compilation is impossible (non-finite
	// weights). Batch entry points (OnDeps, the fanout workers, staged
	// Replay) then classify runs of dependences with one kernel call.
	// Training always runs in float: backpropagation needs the real
	// gradients.
	Quantized bool
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 3
	}
	if c.IGBSize == 0 {
		c.IGBSize = 5
	}
	if c.DebugBufSize == 0 {
		c.DebugBufSize = 60
	}
	if c.MispredThreshold == 0 {
		c.MispredThreshold = DefaultMispredThreshold
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 1000
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.2
	}
	if c.RecoveryWindows == 0 {
		c.RecoveryWindows = 4
	}
	if c.SaturationEps == 0 {
		c.SaturationEps = 1e-6
	}
	if c.VerdictCache < 0 {
		c.VerdictCache = DefaultVerdictCache
	}
	if c.Encoder == nil {
		c.Encoder = deps.EncodeDefault
	}
	if c.DepEncoder == nil {
		c.DepEncoder = deps.PairedDepEncoder(c.Encoder)
	}
	if c.LUT == nil {
		c.LUT = nn.DefaultLUT()
	}
	return c
}

// rateImprovementEps is the minimum per-window misprediction-rate drop
// that counts as training progress for the divergence breaker.
const rateImprovementEps = 0.01

// windowHealth classifies one completed rate window for the divergence
// breaker. The type is annotated //act:exhaustive: adding a fourth
// health state forces every switch over it — above all the breaker
// transition in checkRate — to handle the new state explicitly.
//
//act:exhaustive
type windowHealth int

const (
	// windowHealthy: rate at or below the breaker threshold, outputs
	// not saturated. Resets the breaker and refreshes the snapshot.
	windowHealthy windowHealth = iota
	// windowImproving: rate above threshold but falling by at least
	// rateImprovementEps per window — legitimate retraining on changed
	// code. Holds the breaker counter.
	windowImproving
	// windowStalled: above threshold without progress, or every output
	// pinned against the rails. Counts toward the rollback limit.
	windowStalled
)

// String names the health state (diagnostics and tests).
func (h windowHealth) String() string {
	switch h {
	case windowHealthy:
		return "healthy"
	case windowImproving:
		return "improving"
	case windowStalled:
		return "stalled"
	default:
		return fmt.Sprintf("windowHealth(%d)", int(h))
	}
}

// breakerThreshold is the rate above which a window counts as unhealthy
// for the divergence breaker. When the mode-switch threshold is a
// sentinel (outside [0, 1]), the breaker judges health against the
// default instead — a permanently-training module must still be able to
// detect corrupted weights.
func (c Config) breakerThreshold() float64 {
	if c.MispredThreshold < 0 || c.MispredThreshold > 1 {
		return DefaultMispredThreshold
	}
	return c.MispredThreshold
}

// TrajDepth is how many recent network outputs a module retains as
// Debug Buffer provenance: every logged entry carries the output
// trajectory that led up to it, so offline analysis can tell a verdict
// the network drifted into from one it snapped to.
const TrajDepth = 8

// DebugEntry is one Debug Buffer record: a predicted-invalid dependence
// sequence, the network output that condemned it, and when it happened.
type DebugEntry struct {
	Seq    deps.Sequence
	Output float64
	At     uint64 // dependence index within this module's stream
	Mode   Mode   // mode the module was in when it logged the entry
	Proc   uint16 // processor that logged it; stamped by Tracker.DebugBuffers
	// Traj is the module's recent output trajectory when the entry was
	// logged: the last TrajDepth network outputs on this module's
	// stream, oldest first, ending with the condemning Output. It is
	// diagnosis evidence, not identity — the wire format does not ship
	// it, so entries decoded from telemetry carry a nil trajectory.
	Traj []float64
}

// Stats aggregates a module's activity counters.
type Stats struct {
	Deps             uint64 // dependences processed
	Sequences        uint64 // full-length sequences classified
	PredictedInvalid uint64 // sequences the network rejected
	Updates          uint64 // online backprop weight updates
	ModeSwitches     uint64 // testing<->training transitions
	TrainingDeps     uint64 // dependences processed while training
	Snapshots        uint64 // weight snapshots taken on healthy windows
	Recoveries       uint64 // rollbacks to the last-known-good snapshot
	CacheHits        uint64 // verdicts served from the memoization cache
	CacheMisses      uint64 // testing-mode classifications the cache missed
}

// moduleStats is the live form of Stats: each counter individually
// atomic, so the metrics exporter can read a module mid-ReplayParallel
// without racing the owning worker goroutine. The owner is the sole
// writer, which keeps the atomic adds uncontended (a few ns); readers
// get each counter exactly, and cross-counter consistency only at
// quiescence — the monitoring contract.
type moduleStats struct {
	deps             atomic.Uint64
	sequences        atomic.Uint64
	predictedInvalid atomic.Uint64
	updates          atomic.Uint64
	modeSwitches     atomic.Uint64
	trainingDeps     atomic.Uint64
	snapshots        atomic.Uint64
	recoveries       atomic.Uint64
	cacheHits        atomic.Uint64
	cacheMisses      atomic.Uint64
}

// load materializes the counters as a plain Stats value.
func (s *moduleStats) load() Stats {
	return Stats{
		Deps:             s.deps.Load(),
		Sequences:        s.sequences.Load(),
		PredictedInvalid: s.predictedInvalid.Load(),
		Updates:          s.updates.Load(),
		ModeSwitches:     s.modeSwitches.Load(),
		TrainingDeps:     s.trainingDeps.Load(),
		Snapshots:        s.snapshots.Load(),
		Recoveries:       s.recoveries.Load(),
		CacheHits:        s.cacheHits.Load(),
		CacheMisses:      s.cacheMisses.Load(),
	}
}

// Add accumulates o into s (aggregation across modules).
func (s *Stats) Add(o Stats) {
	s.Deps += o.Deps
	s.Sequences += o.Sequences
	s.PredictedInvalid += o.PredictedInvalid
	s.Updates += o.Updates
	s.ModeSwitches += o.ModeSwitches
	s.TrainingDeps += o.TrainingDeps
	s.Snapshots += o.Snapshots
	s.Recoveries += o.Recoveries
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
}

// Module is one processor's ACT Module. It is not safe for concurrent
// use; in the simulated machine each core owns exactly one.
type Module struct {
	cfg  Config
	net  *nn.Network
	mode Mode

	// Input Generator Buffer, a ring of the last IGBSize dependences:
	// igb is allocated once, ighead indexes the oldest entry, igcnt is
	// the live count. The ring (rather than an appended-and-resliced
	// slice) keeps the per-dependence path allocation-free.
	igb    []deps.Dep
	ighead int
	igcnt  int

	debug []DebugEntry
	dhead int // ring index of oldest debug entry
	dfull bool

	invalid int // Invalid Counter since last rate check
	window  int // dependences since last rate check

	// Snapshot/rollback circuit breaker: snap holds the last-known-good
	// weights, badWindows counts consecutive stalled unhealthy rate
	// windows, satWindow counts saturated outputs in the current window,
	// lastRate is the previous window's misprediction rate.
	snap       []float64
	badWindows int
	satWindow  int
	lastRate   float64

	// Reusable classification buffers: seqbuf holds the padded sequence
	// under test (cloned only when it must outlive the call, i.e. on a
	// Debug Buffer insert), xbuf the encoded feature vector.
	seqbuf deps.Sequence
	xbuf   []float64

	// Verdict memoization: vc caches testing-mode outputs keyed by
	// sequence hash, gen is bumped by every weight mutation and mode
	// switch so stale verdicts are never served. gen is atomic only so
	// the metrics exporter can sample weight-update generations during
	// ReplayParallel; the owning goroutine remains the sole writer.
	vc  *verdictCache
	gen atomic.Uint64

	// Output-trajectory ring: the last TrajDepth network outputs, kept
	// as Debug Buffer provenance. thead indexes the oldest sample, tcnt
	// the live count. A fixed array keeps the per-dependence push off
	// the heap.
	traj  [TrajDepth]float64
	thead int
	tcnt  int

	// Fixed-point inference state (Config.Quantized; see quant.go):
	// qnet is the kernel compiled for weight generation qgen; qbad
	// remembers a failed compile for generation qbadGen so a poisoned
	// weight state falls back to float without retrying per dependence.
	// fpd is the per-dependence feature width (0 disables batching);
	// qdeps/qfeat/qouts are the grow-once batch staging slabs. qmemo is
	// the generation-stamped window memo the batch path consults before
	// encoding (see quant.go); qhash/qmiss are its per-chunk scratch.
	qnet    *nn.QNetwork
	qgen    uint64
	qbad    bool
	qbadGen uint64
	fpd     int
	qdeps   []deps.Dep
	qfeat   []float64
	qouts   []float64
	qmemo   qmemo
	qhash   []uint64
	qmiss   []int32
	qmouts  []float64

	stats moduleStats
}

// NewModule creates an AM operating on the given network (which it
// mutates during online training — pass a clone if the caller keeps the
// original). The network's activation is replaced by the hardware
// sigmoid table.
func NewModule(net *nn.Network, cfg Config) *Module {
	cfg = cfg.withDefaults()
	if cfg.N > cfg.IGBSize {
		panic(fmt.Sprintf("core: sequence length %d exceeds IGB size %d", cfg.N, cfg.IGBSize))
	}
	want := deps.InputLen(cfg.Encoder, cfg.N)
	if net.NIn != want {
		panic(fmt.Sprintf("core: network input width %d, want %d for N=%d", net.NIn, want, cfg.N))
	}
	net.Act = cfg.LUT.Activation()
	m := &Module{
		cfg:      cfg,
		net:      net,
		igb:      make([]deps.Dep, cfg.IGBSize),
		seqbuf:   make(deps.Sequence, cfg.N),
		debug:    make([]DebugEntry, 0, cfg.DebugBufSize),
		lastRate: 1,
	}
	if cfg.VerdictCache > 0 {
		m.vc = newVerdictCache(cfg.VerdictCache)
	}
	if cfg.DepEncoder != nil {
		// Batched classification needs the per-dependence feature width;
		// a DepEncoder that does not tile the network input exactly is
		// ignored (per-dependence classification still works).
		probe := make([]float64, 64)
		if w := cfg.DepEncoder(deps.Dep{}, probe); w > 0 && cfg.N*w == net.NIn {
			m.fpd = w
		}
	}
	// The deployment-time weights are the first known-good state: even
	// an untrained module must have something finite to roll back to
	// when an SEU lands before the first healthy window.
	if m.weightsFinite() {
		m.Snapshot()
	}
	return m
}

// Mode returns the module's current operating mode.
func (m *Module) Mode() Mode { return m.mode }

// Stats returns a copy of the activity counters. Each counter is read
// atomically, so calling this concurrently with the owning goroutine's
// OnDep stream is race-free (see Tracker.StatsSnapshot).
func (m *Module) Stats() Stats { return m.stats.load() }

// Generation returns the verdict-cache generation — a counter bumped by
// every weight mutation, mode switch, and breaker recovery. Safe to
// read concurrently; exported as act_core_weight_generations.
func (m *Module) Generation() uint64 { return m.gen.Load() }

// Config returns the module's (defaulted) configuration.
func (m *Module) Config() Config { return m.cfg }

// Network exposes the underlying network (for weight save/restore).
// A caller that mutates weights through it must call InvalidateVerdicts
// afterwards, or memoized verdicts may be served for the old weights.
func (m *Module) Network() *nn.Network { return m.net }

// InvalidateVerdicts discards any memoized network verdicts — required
// after mutating weights directly through Network() (fault injection,
// external quantization) when a verdict cache is configured.
func (m *Module) InvalidateVerdicts() { m.gen.Add(1) }

// OnDep processes one RAW dependence: it enters the Input Generator
// Buffer, the last N dependences form the network input, and the
// sequence is classified. It returns whether a full sequence was formed
// and, if so, whether it was predicted invalid.
//
// The steady-state path is allocation-free (TestOnDepSteadyStateAllocs
// pins it dynamically; the annotation pins it statically).
//
//act:noalloc
func (m *Module) OnDep(d deps.Dep) (classified, predictedInvalid bool) {
	at := m.stats.deps.Add(1)
	if m.mode == Training {
		m.stats.trainingDeps.Add(1)
	}
	if m.igcnt < m.cfg.IGBSize {
		m.igb[(m.ighead+m.igcnt)%m.cfg.IGBSize] = d
		m.igcnt++
	} else {
		m.igb[m.ighead] = d
		m.ighead = (m.ighead + 1) % m.cfg.IGBSize
	}
	// Pad the front with zero dependences while the IGB is still
	// filling, mirroring the extractor: even the first dependence after
	// deployment is classified. seqbuf is reused across calls; only a
	// Debug Buffer insert clones it.
	seq := m.seqbuf
	if m.igcnt >= m.cfg.N {
		for i := 0; i < m.cfg.N; i++ {
			seq[i] = m.igb[(m.ighead+m.igcnt-m.cfg.N+i)%m.cfg.IGBSize]
		}
	} else {
		pad := m.cfg.N - m.igcnt
		for i := 0; i < pad; i++ {
			seq[i] = deps.Dep{}
		}
		for i := 0; i < m.igcnt; i++ {
			seq[pad+i] = m.igb[(m.ighead+i)%m.cfg.IGBSize]
		}
	}
	m.xbuf = m.cfg.Encoder(seq, m.xbuf) //act:alloc-ok-call registered encoders reuse the destination buffer
	m.stats.sequences.Add(1)

	var out float64
	cached, hashed := false, false
	var hash uint64
	if m.mode == Training {
		// Online training assumes every dependence is correct: a
		// predicted-invalid sequence is a misprediction and drives a
		// backprop step toward "valid". It is still logged, since it
		// might in fact be the bug (Section III-C). Every step mutates
		// the weights, so the verdict cache generation moves with it.
		out = m.net.Train(m.xbuf, nn.TargetValid, m.cfg.LearningRate)
		m.gen.Add(1)
		if out < 0.5 {
			m.stats.updates.Add(1)
		}
	} else if m.vc != nil {
		hash, hashed = seq.Hash(), true
		if v, ok := m.vc.get(hash, m.gen.Load()); ok {
			m.stats.cacheHits.Add(1)
			out = v
			cached = true
		} else {
			m.stats.cacheMisses.Add(1)
			out = m.classify()
		}
	} else {
		out = m.classify()
	}

	// A non-finite output means the weight state itself is poisoned
	// (an SEU or a runaway update): no amount of further training fixes
	// NaN, and NaN compares false against every threshold, so the rate
	// machinery would never notice. Roll back immediately and classify
	// with the restored weights.
	if m.cfg.RecoveryWindows >= 0 && (math.IsNaN(out) || math.IsInf(out, 0)) {
		m.recover()
		out = m.classify()
		cached = false
	}
	if m.vc != nil && hashed && !cached {
		m.vc.put(hash, m.gen.Load(), out)
	}
	if out <= m.cfg.SaturationEps || out >= 1-m.cfg.SaturationEps {
		m.satWindow++
	}
	m.pushTraj(out)

	invalid := out < 0.5
	if invalid {
		m.stats.predictedInvalid.Add(1)
		m.invalid++
		m.logDebug(seq, out, at) //act:alloc-ok-call debug-ring capture, only on predicted-invalid
	}
	m.window++
	if m.window >= m.cfg.CheckInterval {
		m.checkRate()
	}
	return true, invalid
}

// classifyWindow maps a completed window's misprediction rate and
// saturation flag onto the breaker's health state machine.
//
//act:noalloc
func (m *Module) classifyWindow(rate float64, saturated bool) windowHealth {
	switch {
	case rate <= m.cfg.breakerThreshold() && !saturated:
		return windowHealthy
	case rate < m.lastRate-rateImprovementEps && !saturated:
		return windowImproving
	default:
		return windowStalled
	}
}

// checkRate implements the periodic Invalid Counter inspection that
// flips the AM between testing and training, extended with the
// snapshot/rollback circuit breaker: healthy testing windows snapshot
// the weights, K consecutive stalled windows restore them.
//
//act:noalloc
func (m *Module) checkRate() {
	rate := float64(m.invalid) / float64(m.window)
	statWindowRate.Observe(uint64(rate * 1000))
	// A window whose every output was pinned against 0 or 1 is treated
	// as unhealthy regardless of its rate: corrupted large-magnitude
	// weights saturate the sigmoid, often on the "valid" side where the
	// misprediction rate goes quiet.
	saturated := m.satWindow == m.window

	recovered := false
	if m.cfg.RecoveryWindows >= 0 {
		switch m.classifyWindow(rate, saturated) {
		case windowHealthy:
			m.badWindows = 0
			if m.mode == Testing && m.weightsFinite() {
				m.Snapshot()
			}
		case windowImproving:
			// Online training is converging on legitimately changed
			// code. Hold the counter.
		case windowStalled:
			m.badWindows++
			if m.badWindows >= m.cfg.RecoveryWindows {
				m.recover()
				recovered = true
			}
		}
	}
	m.lastRate = rate

	if !recovered {
		switch {
		case m.cfg.MispredThreshold < 0: // AlwaysTrain sentinel
			if m.mode == Testing {
				m.mode = Training
				m.stats.modeSwitches.Add(1)
				m.gen.Add(1)
			}
		case m.mode == Testing:
			if rate > m.cfg.MispredThreshold {
				m.mode = Training
				m.stats.modeSwitches.Add(1)
				m.gen.Add(1)
			}
		case m.mode == Training:
			if rate < m.cfg.MispredThreshold {
				m.mode = Testing
				m.stats.modeSwitches.Add(1)
				m.gen.Add(1)
			}
		}
	}
	m.invalid = 0
	m.window = 0
	m.satWindow = 0
}

// Snapshot records the current weights as the last-known-good state the
// breaker restores on divergence. The module takes one automatically at
// construction, after LoadWeights, and on every healthy testing window.
// At steady state the snapshot buffer is already sized, so the flatten
// re-fills it in place.
//
//act:noalloc
func (m *Module) Snapshot() {
	m.snap = m.net.Flatten(m.snap[:0])
	m.stats.snapshots.Add(1)
}

// recover restores the last-known-good snapshot and returns the module
// to testing mode (unless it is pinned in training by the AlwaysTrain
// sentinel), counting the event in Stats.Recoveries.
//
//act:noalloc
func (m *Module) recover() {
	if m.snap == nil {
		// Nothing known-good to restore (the module was constructed
		// with non-finite weights and never loaded sane ones).
		m.badWindows = 0
		return
	}
	if err := m.net.LoadFlat(m.snap); err != nil {
		panic(err) // snapshot taken from this network; unreachable
	}
	m.stats.recoveries.Add(1)
	m.gen.Add(1)
	m.badWindows = 0
	m.lastRate = 1
	if m.mode != Testing && m.cfg.MispredThreshold >= 0 {
		m.mode = Testing
		m.stats.modeSwitches.Add(1)
	}
}

// weightsFinite reports whether every weight register holds a finite
// value — the precondition for a state to be snapshot-worthy.
//
//act:noalloc
func (m *Module) weightsFinite() bool {
	for i, n := 0, m.net.WeightCount(); i < n; i++ {
		if v := m.net.ReadRegister(i); math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// pushTraj records one network output in the trajectory ring. It runs
// on every classification, so it must stay allocation-free.
//
//act:noalloc
func (m *Module) pushTraj(out float64) {
	if m.tcnt < TrajDepth {
		m.traj[(m.thead+m.tcnt)%TrajDepth] = out
		m.tcnt++
		return
	}
	m.traj[m.thead] = out
	m.thead = (m.thead + 1) % TrajDepth
}

// trajSlice materializes the output trajectory, oldest first. Cold
// path: it runs only on a Debug Buffer insert.
func (m *Module) trajSlice() []float64 {
	out := make([]float64, m.tcnt)
	for i := 0; i < m.tcnt; i++ {
		out[i] = m.traj[(m.thead+i)%TrajDepth]
	}
	return out
}

// logDebug appends to the Debug Buffer, dropping the oldest entry when
// full (it holds only the last few invalid sequences). at is the
// dependence index of the triggering dependence, captured by the caller
// from its own counter increment.
func (m *Module) logDebug(s deps.Sequence, out float64, at uint64) {
	e := DebugEntry{Seq: s.Clone(), Output: out, At: at, Mode: m.mode, Traj: m.trajSlice()}
	if len(m.debug) < m.cfg.DebugBufSize {
		m.debug = append(m.debug, e)
		return
	}
	m.debug[m.dhead] = e
	m.dhead = (m.dhead + 1) % m.cfg.DebugBufSize
	m.dfull = true
}

// DebugBuffer returns the Debug Buffer contents, oldest first.
func (m *Module) DebugBuffer() []DebugEntry {
	if !m.dfull {
		return append([]DebugEntry(nil), m.debug...)
	}
	out := make([]DebugEntry, 0, len(m.debug))
	out = append(out, m.debug[m.dhead:]...)
	out = append(out, m.debug[:m.dhead]...)
	return out
}

// ResetDebug clears the Debug Buffer (e.g. after postprocessing).
func (m *Module) ResetDebug() {
	m.debug = m.debug[:0]
	m.dhead = 0
	m.dfull = false
}

// ForceMode overrides the operating mode (deployment with no stored
// weights starts in training mode; tests use it too).
func (m *Module) ForceMode(mode Mode) {
	if m.mode != mode {
		m.mode = mode
		m.stats.modeSwitches.Add(1)
		m.gen.Add(1)
	}
}

// TeachInvalid feeds a known-buggy sequence back to the network as a
// negative example (Section III-C: when a failure slipped past the
// network and the programmer pinpointed the invalid dependence sequence
// by other means, it is fed back like an offline negative). The sequence
// is trained until rejected or the attempt budget runs out; it returns
// whether the network now rejects it.
func (m *Module) TeachInvalid(s deps.Sequence) bool {
	if len(s) != m.cfg.N {
		padded := make(deps.Sequence, m.cfg.N)
		if len(s) > m.cfg.N {
			copy(padded, s[len(s)-m.cfg.N:])
		} else {
			copy(padded[m.cfg.N-len(s):], s)
		}
		s = padded
	}
	x := m.cfg.Encoder(s, nil)
	for i := 0; i < 5000; i++ {
		if m.net.Forward(x) < 0.5 {
			return true
		}
		m.net.Train(x, nn.TargetInvalid, m.cfg.LearningRate)
		m.stats.updates.Add(1)
		m.gen.Add(1)
	}
	return m.net.Forward(x) < 0.5
}

// SaveWeights reads out the weight registers (the ldwt loop run at
// thread termination or context switch).
func (m *Module) SaveWeights() []float64 {
	out := make([]float64, 0, m.net.WeightCount())
	for i := 0; i < m.net.WeightCount(); i++ {
		out = append(out, m.net.ReadRegister(i))
	}
	return out
}

// LoadWeights writes the weight registers (the stwt loop run at thread
// creation or context-switch restore). Explicitly loaded weights are
// taken as known-good: they become the breaker's rollback snapshot,
// provided they are finite.
func (m *Module) LoadWeights(w []float64) error {
	if len(w) != m.net.WeightCount() {
		return fmt.Errorf("core: weight count %d, want %d", len(w), m.net.WeightCount())
	}
	for i, v := range w {
		m.net.WriteRegister(i, v)
	}
	m.gen.Add(1)
	if m.weightsFinite() {
		m.Snapshot()
	}
	return nil
}
