// Package core implements the ACT Module (AM) of Section III: the
// per-processor unit that tests every RAW dependence sequence online
// against a neural network, logs predicted-invalid sequences to a Debug
// Buffer, tracks its misprediction rate with the Invalid Counter, and
// alternates between online testing and online training modes so the
// classifier adapts to code, input, and platform changes in the field.
package core

import (
	"fmt"

	"act/internal/deps"
	"act/internal/nn"
)

// Mode is the AM's operating mode.
type Mode int

// Operating modes (the paper's Mode flag).
const (
	Testing  Mode = iota // classify sequences, log predicted-invalid ones
	Training             // additionally learn: treat every sequence as valid
)

// String names the mode.
func (m Mode) String() string {
	if m == Testing {
		return "testing"
	}
	return "training"
}

// Config parameterizes an ACT Module. The defaults mirror Table III.
type Config struct {
	N                int          // dependences per sequence (network input group)
	IGBSize          int          // Input Generator Buffer entries; default 5
	DebugBufSize     int          // Debug Buffer entries; default 60
	MispredThreshold float64      // mode-switch threshold; default 0.05
	CheckInterval    int          // dependences between rate checks; default 1000
	LearningRate     float64      // online backprop rate; default 0.2
	Encoder          deps.Encoder // feature encoding; default deps.EncodeDefault
	LUT              *nn.SigmoidLUT
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 3
	}
	if c.IGBSize == 0 {
		c.IGBSize = 5
	}
	if c.DebugBufSize == 0 {
		c.DebugBufSize = 60
	}
	if c.MispredThreshold == 0 {
		c.MispredThreshold = 0.05
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = 1000
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.2
	}
	if c.Encoder == nil {
		c.Encoder = deps.EncodeDefault
	}
	if c.LUT == nil {
		c.LUT = nn.DefaultLUT()
	}
	return c
}

// DebugEntry is one Debug Buffer record: a predicted-invalid dependence
// sequence, the network output that condemned it, and when it happened.
type DebugEntry struct {
	Seq    deps.Sequence
	Output float64
	At     uint64 // dependence index within this module's stream
	Mode   Mode   // mode the module was in when it logged the entry
}

// Stats aggregates a module's activity counters.
type Stats struct {
	Deps             uint64 // dependences processed
	Sequences        uint64 // full-length sequences classified
	PredictedInvalid uint64 // sequences the network rejected
	Updates          uint64 // online backprop weight updates
	ModeSwitches     uint64 // testing<->training transitions
	TrainingDeps     uint64 // dependences processed while training
}

// Module is one processor's ACT Module. It is not safe for concurrent
// use; in the simulated machine each core owns exactly one.
type Module struct {
	cfg  Config
	net  *nn.Network
	mode Mode

	igb   []deps.Dep // Input Generator Buffer, oldest first
	debug []DebugEntry
	dhead int // ring index of oldest debug entry
	dfull bool

	invalid int // Invalid Counter since last rate check
	window  int // dependences since last rate check

	xbuf  []float64
	stats Stats
}

// NewModule creates an AM operating on the given network (which it
// mutates during online training — pass a clone if the caller keeps the
// original). The network's activation is replaced by the hardware
// sigmoid table.
func NewModule(net *nn.Network, cfg Config) *Module {
	cfg = cfg.withDefaults()
	if cfg.N > cfg.IGBSize {
		panic(fmt.Sprintf("core: sequence length %d exceeds IGB size %d", cfg.N, cfg.IGBSize))
	}
	want := deps.InputLen(cfg.Encoder, cfg.N)
	if net.NIn != want {
		panic(fmt.Sprintf("core: network input width %d, want %d for N=%d", net.NIn, want, cfg.N))
	}
	net.Act = cfg.LUT.Activation()
	return &Module{
		cfg:   cfg,
		net:   net,
		debug: make([]DebugEntry, 0, cfg.DebugBufSize),
	}
}

// Mode returns the module's current operating mode.
func (m *Module) Mode() Mode { return m.mode }

// Stats returns a copy of the activity counters.
func (m *Module) Stats() Stats { return m.stats }

// Config returns the module's (defaulted) configuration.
func (m *Module) Config() Config { return m.cfg }

// Network exposes the underlying network (for weight save/restore).
func (m *Module) Network() *nn.Network { return m.net }

// OnDep processes one RAW dependence: it enters the Input Generator
// Buffer, the last N dependences form the network input, and the
// sequence is classified. It returns whether a full sequence was formed
// and, if so, whether it was predicted invalid.
func (m *Module) OnDep(d deps.Dep) (classified, predictedInvalid bool) {
	m.stats.Deps++
	if m.mode == Training {
		m.stats.TrainingDeps++
	}
	m.igb = append(m.igb, d)
	if len(m.igb) > m.cfg.IGBSize {
		m.igb = m.igb[1:]
	}
	// Pad the front with zero dependences while the IGB is still
	// filling, mirroring the extractor: even the first dependence after
	// deployment is classified.
	seq := make(deps.Sequence, m.cfg.N)
	if n := len(m.igb); n >= m.cfg.N {
		copy(seq, m.igb[n-m.cfg.N:])
	} else {
		copy(seq[m.cfg.N-n:], m.igb)
	}
	m.xbuf = m.cfg.Encoder(seq, m.xbuf)
	m.stats.Sequences++

	var out float64
	if m.mode == Training {
		// Online training assumes every dependence is correct: a
		// predicted-invalid sequence is a misprediction and drives a
		// backprop step toward "valid". It is still logged, since it
		// might in fact be the bug (Section III-C).
		out = m.net.Train(m.xbuf, nn.TargetValid, m.cfg.LearningRate)
		if out < 0.5 {
			m.stats.Updates++
		}
	} else {
		out = m.net.Forward(m.xbuf)
	}

	invalid := out < 0.5
	if invalid {
		m.stats.PredictedInvalid++
		m.invalid++
		m.logDebug(seq, out)
	}
	m.window++
	if m.window >= m.cfg.CheckInterval {
		m.checkRate()
	}
	return true, invalid
}

// checkRate implements the periodic Invalid Counter inspection that
// flips the AM between testing and training.
func (m *Module) checkRate() {
	rate := float64(m.invalid) / float64(m.window)
	switch m.mode {
	case Testing:
		if rate > m.cfg.MispredThreshold {
			m.mode = Training
			m.stats.ModeSwitches++
		}
	case Training:
		if rate < m.cfg.MispredThreshold {
			m.mode = Testing
			m.stats.ModeSwitches++
		}
	}
	m.invalid = 0
	m.window = 0
}

// logDebug appends to the Debug Buffer, dropping the oldest entry when
// full (it holds only the last few invalid sequences).
func (m *Module) logDebug(s deps.Sequence, out float64) {
	e := DebugEntry{Seq: s.Clone(), Output: out, At: m.stats.Deps, Mode: m.mode}
	if len(m.debug) < m.cfg.DebugBufSize {
		m.debug = append(m.debug, e)
		return
	}
	m.debug[m.dhead] = e
	m.dhead = (m.dhead + 1) % m.cfg.DebugBufSize
	m.dfull = true
}

// DebugBuffer returns the Debug Buffer contents, oldest first.
func (m *Module) DebugBuffer() []DebugEntry {
	if !m.dfull {
		return append([]DebugEntry(nil), m.debug...)
	}
	out := make([]DebugEntry, 0, len(m.debug))
	out = append(out, m.debug[m.dhead:]...)
	out = append(out, m.debug[:m.dhead]...)
	return out
}

// ResetDebug clears the Debug Buffer (e.g. after postprocessing).
func (m *Module) ResetDebug() {
	m.debug = m.debug[:0]
	m.dhead = 0
	m.dfull = false
}

// ForceMode overrides the operating mode (deployment with no stored
// weights starts in training mode; tests use it too).
func (m *Module) ForceMode(mode Mode) {
	if m.mode != mode {
		m.mode = mode
		m.stats.ModeSwitches++
	}
}

// TeachInvalid feeds a known-buggy sequence back to the network as a
// negative example (Section III-C: when a failure slipped past the
// network and the programmer pinpointed the invalid dependence sequence
// by other means, it is fed back like an offline negative). The sequence
// is trained until rejected or the attempt budget runs out; it returns
// whether the network now rejects it.
func (m *Module) TeachInvalid(s deps.Sequence) bool {
	if len(s) != m.cfg.N {
		padded := make(deps.Sequence, m.cfg.N)
		if len(s) > m.cfg.N {
			copy(padded, s[len(s)-m.cfg.N:])
		} else {
			copy(padded[m.cfg.N-len(s):], s)
		}
		s = padded
	}
	x := m.cfg.Encoder(s, nil)
	for i := 0; i < 5000; i++ {
		if m.net.Forward(x) < 0.5 {
			return true
		}
		m.net.Train(x, nn.TargetInvalid, m.cfg.LearningRate)
		m.stats.Updates++
	}
	return m.net.Forward(x) < 0.5
}

// SaveWeights reads out the weight registers (the ldwt loop run at
// thread termination or context switch).
func (m *Module) SaveWeights() []float64 {
	out := make([]float64, 0, m.net.WeightCount())
	for i := 0; i < m.net.WeightCount(); i++ {
		out = append(out, m.net.ReadRegister(i))
	}
	return out
}

// LoadWeights writes the weight registers (the stwt loop run at thread
// creation or context-switch restore).
func (m *Module) LoadWeights(w []float64) error {
	if len(w) != m.net.WeightCount() {
		return fmt.Errorf("core: weight count %d, want %d", len(w), m.net.WeightCount())
	}
	for i, v := range w {
		m.net.WriteRegister(i, v)
	}
	return nil
}
