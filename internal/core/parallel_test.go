package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"act/internal/deps"
	"act/internal/trace"
)

// randTrace builds a random multi-threaded memory trace over a small
// address pool, dense enough that threads repeatedly read each other's
// stores (inter-thread RAW dependences on every replay).
func randTrace(seed int64, threads, records int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{}
	for i := 0; i < records; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Tid:   uint16(rng.Intn(threads)),
			PC:    0x400000 + uint64(rng.Intn(64))*4,
			Addr:  0x10000 + uint64(rng.Intn(32))*8,
			Store: rng.Intn(3) == 0,
		})
	}
	return tr
}

// equivCase replays one trace sequentially and in parallel on separate,
// identically configured trackers and asserts bit-identical observable
// state: DebugBuffers, Stats, and the weights Shutdown patches back.
func equivCase(t *testing.T, tr *trace.Trace, mkBinary func() *WeightBinary, cfg TrackerConfig, pcfg ParallelConfig) {
	t.Helper()
	seqBin, parBin := mkBinary(), mkBinary()
	seq := NewTracker(seqBin, cfg)
	par := NewTracker(parBin, cfg)

	seq.Replay(tr)
	par.ReplayParallel(tr, pcfg)

	if ss, ps := seq.Stats(), par.Stats(); ss != ps {
		t.Fatalf("stats diverge:\nseq %+v\npar %+v", ss, ps)
	}
	sd, pd := seq.DebugBuffers(), par.DebugBuffers()
	if !reflect.DeepEqual(sd, pd) {
		t.Fatalf("debug buffers diverge: seq %d entries, par %d", len(sd), len(pd))
	}
	seq.Shutdown()
	par.Shutdown()
	if st, pt := seqBin.Threads(), parBin.Threads(); !reflect.DeepEqual(st, pt) {
		t.Fatalf("patched thread sets diverge: %v vs %v", st, pt)
	}
	for _, tid := range seqBin.Threads() {
		if !reflect.DeepEqual(seqBin.Get(tid), parBin.Get(tid)) {
			t.Fatalf("thread %d weights diverge after shutdown", tid)
		}
	}
}

// TestReplayParallelMatchesSequential is the equivalence property test:
// over random traces, parallel replay must be bit-identical to
// sequential replay — with trained modules in testing mode, with
// untrained modules learning online, and with the verdict cache on.
func TestReplayParallelMatchesSequential(t *testing.T) {
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	mixedBinary := func() *WeightBinary {
		wb := AlwaysValidBinary(nIn, 6, 8)
		full := NewWeightBinary(nIn, 6)
		for _, tid := range wb.Threads() {
			if tid%2 == 0 {
				full.Patch(tid, wb.Get(tid))
			}
		}
		return full
	}
	cases := []struct {
		name     string
		mkBinary func() *WeightBinary
		cache    int
		quant    bool
		interval int
	}{
		// Converged deployment: every module in testing mode.
		{"testing", func() *WeightBinary { return AlwaysValidBinary(nIn, 6, 8) }, 0, false, 0},
		// Unseen threads: default weights, online training throughout.
		{"training", func() *WeightBinary { return NewWeightBinary(nIn, 6) }, 0, false, 0},
		// Mixed: half the threads have weights, half train online.
		{"mixed", mixedBinary, 0, false, 0},
		// Verdict memoization on: hit/miss counters must match too.
		{"cache", func() *WeightBinary { return AlwaysValidBinary(nIn, 6, 8) }, -1, false, 0},
		// Fixed-point inference: the batched kernel classifies testing
		// stretches; sequential replay stages, parallel replay batches.
		{"quant", func() *WeightBinary { return AlwaysValidBinary(nIn, 6, 8) }, 0, true, 0},
		// Quantized with the verdict cache layered on top.
		{"quant+cache", func() *WeightBinary { return AlwaysValidBinary(nIn, 6, 8) }, -1, true, 0},
		// Quantized with mode churn: a short rate window forces
		// testing↔training flips mid-replay, so compiled kernels go
		// stale mid-batch and the float fallback engages and re-arms.
		{"quant+churn", mixedBinary, 0, true, 50},
	}
	for _, tc := range cases {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				tr := randTrace(seed, 8, 3000)
				cfg := TrackerConfig{Module: Config{
					N: 2, VerdictCache: tc.cache,
					Quantized: tc.quant, CheckInterval: tc.interval,
				}, Seed: seed}
				// Small batches force many channel hand-offs, including
				// partial final batches.
				equivCase(t, tr, tc.mkBinary, cfg, ParallelConfig{Batch: 7, Depth: 2})
			})
		}
	}
}

// TestReplayParallelRepeated checks that back-to-back ReplayParallel
// calls on one tracker keep accumulating state exactly like repeated
// sequential replays (the fan-out swap must restore the OnDep hook).
func TestReplayParallelRepeated(t *testing.T) {
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	tr := randTrace(9, 4, 1500)
	cfg := TrackerConfig{Module: Config{N: 2}}
	seq := NewTracker(AlwaysValidBinary(nIn, 6, 4), cfg)
	par := NewTracker(AlwaysValidBinary(nIn, 6, 4), cfg)
	for i := 0; i < 3; i++ {
		seq.Replay(tr)
		par.ReplayParallel(tr, ParallelConfig{})
	}
	// A sequential replay after a parallel one must also work.
	seq.Replay(tr)
	par.Replay(tr)
	if ss, ps := seq.Stats(), par.Stats(); ss != ps {
		t.Fatalf("stats diverge after repeated replays:\nseq %+v\npar %+v", ss, ps)
	}
}

// TestWeightBinaryConcurrent exercises Patch/Get/Has/Threads from many
// goroutines; the -race run in CI is the actual assertion.
func TestWeightBinaryConcurrent(t *testing.T) {
	wb := NewWeightBinary(4, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := []float64{float64(g), 1, 2, 3}
			for i := 0; i < 200; i++ {
				tid := (g + i) % 16
				wb.Patch(tid, w)
				if got := wb.Get(tid); got != nil && len(got) != len(w) {
					t.Errorf("Get(%d) returned %d weights, want %d", tid, len(got), len(w))
					return
				}
				wb.Has(tid)
				wb.Threads()
			}
		}(g)
	}
	wg.Wait()
	// Get hands out copies: mutating one must not corrupt the binary.
	a := wb.Get(0)
	a[0] = 999
	if b := wb.Get(0); b[0] == 999 {
		t.Fatal("Get returned a live reference into the binary")
	}
}

// TestTrackerRejectsWideTid pins the tid-widening fix: ids beyond the
// 16-bit wire format are an explicit error, never a silent truncation
// that would alias two threads onto one module.
func TestTrackerRejectsWideTid(t *testing.T) {
	nIn := deps.InputLen(deps.EncodeDefault, 2)
	tr := NewTracker(AlwaysValidBinary(nIn, 6, 2), TrackerConfig{Module: Config{N: 2}})

	if _, err := tr.ModuleOf(-1); err == nil {
		t.Error("ModuleOf(-1) succeeded")
	}
	if _, err := tr.ModuleOf(MaxTid + 1); err == nil {
		t.Error("ModuleOf(65536) succeeded; truncation would alias it onto thread 0")
	}
	if _, err := tr.ModuleOf(70000); err == nil {
		t.Error("ModuleOf(70000) succeeded")
	}
	m0, err := tr.ModuleOf(0)
	if err != nil {
		t.Fatalf("ModuleOf(0): %v", err)
	}
	mMax, err := tr.ModuleOf(MaxTid)
	if err != nil {
		t.Fatalf("ModuleOf(MaxTid): %v", err)
	}
	if m0 == mMax {
		t.Error("distinct tids share a module")
	}
	defer func() {
		if recover() == nil {
			t.Error("Module(70000) did not panic")
		}
	}()
	tr.Module(70000)
}

// TestOnDepSteadyStateAllocs pins the zero-allocation classification
// hot path: a converged testing-mode module classifying dependences must
// not allocate, with or without the verdict cache.
func TestOnDepSteadyStateAllocs(t *testing.T) {
	for _, cache := range []int{0, -1} {
		t.Run(fmt.Sprintf("cache=%d", cache), func(t *testing.T) {
			nIn := deps.InputLen(deps.EncodeDefault, 3)
			wb := AlwaysValidBinary(nIn, 8, 1)
			tr := NewTracker(wb, TrackerConfig{Module: Config{N: 3, VerdictCache: cache}})
			m := tr.Module(0)
			ds := make([]deps.Dep, 64)
			for i := range ds {
				ds[i] = deps.Dep{S: 0x1000 + uint64(i)*16, L: 0x2000 + uint64(i)*16}
			}
			// Warm up: fill the window ring and the verdict cache.
			for _, d := range ds {
				m.OnDep(d)
			}
			if n := testing.AllocsPerRun(100, func() {
				for _, d := range ds {
					m.OnDep(d)
				}
			}); n > 0 {
				t.Fatalf("steady-state OnDep allocates: %.1f allocs per 64 deps", n)
			}
		})
	}
}
