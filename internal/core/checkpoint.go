// Replay checkpoint state: export, restore, and the binary codec for
// the ACTK sections a mid-trace checkpoint carries (see
// internal/pipeline/checkpoint.go for the file framing).
//
// A checkpoint captures everything that determines the remainder of a
// replay: the record cursor, the extractor's last-writer table and
// per-thread windows, and every module's complete adaptive state —
// weights, breaker snapshot, mode, generation, IGB, Debug Buffer (with
// trajectories), trajectory ring, breaker counters, and Stats. Restored
// into a fresh Tracker, replaying the remaining records produces
// observables byte-identical to an uninterrupted run.
//
// Deliberately NOT captured, because they are pure functions of
// (weight generation, window) and rebuild on demand with identical
// values: the compiled quantized kernel, the window memo, and the
// verdict cache's entries. Dropping the verdict cache can shift
// CacheHits/CacheMisses after a resume — those counters are monitoring,
// not diagnosis observables, and no report renders them. Everything a
// ranked report or RCA verdict is derived from survives exactly.
//
// The header section pins the identity of the run: trace fingerprint,
// seed, and a configuration fingerprint. Resume refuses (or, in lenient
// mode, restarts from scratch) when any of them differ — resuming under
// a changed configuration would silently diverge instead of failing.
package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"act/internal/deps"
	"act/internal/pipeline"
	"act/internal/trace"
)

// Checkpoint section kinds owned by core (1..63; see pipeline docs).
const (
	ckptKindHeader    = 1
	ckptKindExtractor = 2
	ckptKindModule    = 3
)

// ckptCodecVersion versions the section payloads, independent of the
// file framing version.
const ckptCodecVersion = 1

// ModuleState is one module's complete resumable state in exported
// form. Ring buffers are exported as their logical content, oldest
// first; restore re-bases them at index zero, which preserves every
// observable (ring position is not one).
type ModuleState struct {
	Tid      int
	Mode     Mode
	Gen      uint64
	Weights  []float64
	Snap     []float64 // breaker's last-known-good weights; nil if never taken
	IGB      []deps.Dep
	Debug    []DebugEntry
	Traj     []float64
	Invalid  int
	Window   int
	SatWind  int
	BadWind  int
	LastRate float64
	Stats    Stats
}

// TrackerState is a whole deployment's resumable state.
type TrackerState struct {
	Extractor deps.ExtractorState
	Modules   []ModuleState // sorted ascending by Tid
}

// exportState captures the module. Cold path: runs once per module per
// checkpoint.
func (m *Module) exportState(tid int) ModuleState {
	st := ModuleState{
		Tid:      tid,
		Mode:     m.mode,
		Gen:      m.gen.Load(),
		Weights:  m.net.Flatten(nil),
		IGB:      make([]deps.Dep, 0, m.igcnt),
		Debug:    m.DebugBuffer(),
		Traj:     m.trajSlice(),
		Invalid:  m.invalid,
		Window:   m.window,
		SatWind:  m.satWindow,
		BadWind:  m.badWindows,
		LastRate: m.lastRate,
		Stats:    m.stats.load(),
	}
	if m.snap != nil {
		st.Snap = append([]float64(nil), m.snap...)
	}
	for i := 0; i < m.igcnt; i++ {
		st.IGB = append(st.IGB, m.igb[(m.ighead+i)%m.cfg.IGBSize])
	}
	return st
}

// restoreState loads an exported state into a freshly created module.
// Counts are assumed validated by the decoder; the weight load is the
// one remaining failure mode (topology mismatch).
func (m *Module) restoreState(st *ModuleState) error {
	if err := m.net.LoadFlat(st.Weights); err != nil {
		return fmt.Errorf("core: module %d: %w", st.Tid, err)
	}
	m.mode = st.Mode
	m.gen.Store(st.Gen)
	if st.Snap == nil {
		m.snap = nil
	} else {
		m.snap = append(m.snap[:0], st.Snap...)
	}
	copy(m.igb, st.IGB)
	m.ighead, m.igcnt = 0, len(st.IGB)
	m.debug = append(m.debug[:0], st.Debug...)
	m.dhead, m.dfull = 0, len(st.Debug) == m.cfg.DebugBufSize
	for i, v := range st.Traj {
		m.traj[i] = v
	}
	m.thead, m.tcnt = 0, len(st.Traj)
	m.invalid = st.Invalid
	m.window = st.Window
	m.satWindow = st.SatWind
	m.badWindows = st.BadWind
	m.lastRate = st.LastRate
	m.stats.store(st.Stats)
	// Derived state (compiled kernel, window memo, verdict cache) is
	// left to rebuild: generation staleness checks already orphan it,
	// and rebuilt values are bit-identical by the purity argument above.
	return nil
}

// store writes the counters back — the restore-side twin of load.
func (s *moduleStats) store(v Stats) {
	s.deps.Store(v.Deps)
	s.sequences.Store(v.Sequences)
	s.predictedInvalid.Store(v.PredictedInvalid)
	s.updates.Store(v.Updates)
	s.modeSwitches.Store(v.ModeSwitches)
	s.trainingDeps.Store(v.TrainingDeps)
	s.snapshots.Store(v.Snapshots)
	s.recoveries.Store(v.Recoveries)
	s.cacheHits.Store(v.CacheHits)
	s.cacheMisses.Store(v.CacheMisses)
}

// ExportState captures the whole deployment, modules in ascending
// thread order (deterministic bytes downstream). The tracker must be
// quiescent: sequential callers are by construction, parallel replay
// checkpoints only after a fanout barrier.
func (t *Tracker) ExportState() TrackerState {
	st := TrackerState{Extractor: t.ext.ExportState()}
	for tid := 0; tid < len(t.dense); tid++ {
		if m := t.dense[tid]; m != nil {
			st.Modules = append(st.Modules, m.exportState(tid))
		}
	}
	return st
}

// fnv64 constants (shared layout with deps.Sequence.Hash).
const (
	ckptFNVOffset uint64 = 14695981039346656037
	ckptFNVPrime  uint64 = 1099511628211
)

func ckptMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= ckptFNVPrime
		x >>= 8
	}
	return h
}

// traceIdentity fingerprints a trace in O(1): provenance, length, and
// three sampled records. Hashing every record would cost a measurable
// slice of the checkpoint budget on the traces checkpointing exists
// for; three samples plus length and seed already separate any two
// distinct checked-in workload executions.
func traceIdentity(tr *trace.Trace) uint64 {
	h := ckptFNVOffset
	for i := 0; i < len(tr.Program); i++ {
		h = (h ^ uint64(tr.Program[i])) * ckptFNVPrime
	}
	h = ckptMix(h, uint64(tr.Seed))
	h = ckptMix(h, tr.Steps)
	h = ckptMix(h, uint64(len(tr.Records)))
	if n := len(tr.Records); n > 0 {
		for _, i := range [3]int{0, n / 2, n - 1} {
			r := tr.Records[i]
			h = ckptMix(h, r.Seq)
			h = ckptMix(h, r.PC)
			h = ckptMix(h, r.Addr)
			x := uint64(r.Tid)
			if r.Store {
				x |= 1 << 16
			}
			if r.Stack {
				x |= 1 << 17
			}
			h = ckptMix(h, x)
		}
	}
	return h
}

// cfgFingerprint hashes every configuration knob that influences replay
// observables. Two deployments with equal fingerprints, seeds, and
// traces replay identically; resume refuses mismatches.
func (t *Tracker) cfgFingerprint() uint64 {
	c := t.cfg
	h := ckptFNVOffset
	for _, x := range [...]uint64{
		uint64(c.N), uint64(c.IGBSize), uint64(c.DebugBufSize),
		uint64(c.CheckInterval), math.Float64bits(c.LearningRate),
		math.Float64bits(c.MispredThreshold), uint64(int64(c.RecoveryWindows)),
		math.Float64bits(c.SaturationEps), uint64(int64(c.VerdictCache)),
		b2u64(c.Quantized), t.tcfg.Granularity, b2u64(t.tcfg.FilterStack),
	} {
		h = ckptMix(h, x)
	}
	return h
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- binary codec ---------------------------------------------------

// ckptAppender accumulates little-endian primitives.
type ckptAppender struct{ b []byte }

func (a *ckptAppender) u8(v byte)  { a.b = append(a.b, v) }
func (a *ckptAppender) u16(v uint16) {
	var t [2]byte
	binary.LittleEndian.PutUint16(t[:], v)
	a.b = append(a.b, t[:]...)
}
func (a *ckptAppender) u32(v uint32) {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	a.b = append(a.b, t[:]...)
}
func (a *ckptAppender) u64(v uint64) {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	a.b = append(a.b, t[:]...)
}
func (a *ckptAppender) f64(v float64) { a.u64(math.Float64bits(v)) }
func (a *ckptAppender) dep(d deps.Dep) {
	a.u64(d.S)
	a.u64(d.L)
	var f byte
	if d.Inter {
		f = 1
	}
	a.u8(f)
}

// ckptReader consumes little-endian primitives with sticky error state:
// after the first failure every read returns zero and the error
// surfaces once at the end. Bounds are checked on every read, so
// arbitrary (fuzzed) input can never index out of range.
type ckptReader struct {
	b   []byte
	off int
	err error
}

func (r *ckptReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("core: checkpoint: "+format, args...)
	}
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("truncated at byte %d (want %d more)", r.off, n)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *ckptReader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}
func (r *ckptReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}
func (r *ckptReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}
func (r *ckptReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}
func (r *ckptReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *ckptReader) dep() deps.Dep {
	s, l := r.u64(), r.u64()
	return deps.Dep{S: s, L: l, Inter: r.u8()&1 != 0}
}

// count reads a u32 element count and bounds it: each element occupies
// at least minSize encoded bytes, so a declared count the remaining
// input cannot hold is corruption, caught before any allocation.
func (r *ckptReader) count(minSize int) int {
	n := int(r.u32())
	if r.err == nil && n*minSize > len(r.b)-r.off {
		r.fail("count %d exceeds remaining %d bytes", n, len(r.b)-r.off)
		return 0
	}
	return n
}

// CheckpointHeader is the decoded header section: the identity of the
// run a checkpoint belongs to and the record cursor it was taken at.
type CheckpointHeader struct {
	Cursor  uint64
	Records uint64
	TraceID uint64
	Seed    int64
	CfgFP   uint64
	Program string
}

func (t *Tracker) header(tr *trace.Trace, cursor int) CheckpointHeader {
	return CheckpointHeader{
		Cursor:  uint64(cursor),
		Records: uint64(len(tr.Records)),
		TraceID: traceIdentity(tr),
		Seed:    t.seed,
		CfgFP:   t.cfgFingerprint(),
		Program: tr.Program,
	}
}

func encodeHeader(h CheckpointHeader) []byte {
	var a ckptAppender
	a.u16(ckptCodecVersion)
	a.u64(h.Cursor)
	a.u64(h.Records)
	a.u64(h.TraceID)
	a.u64(uint64(h.Seed))
	a.u64(h.CfgFP)
	a.u16(uint16(len(h.Program)))
	a.b = append(a.b, h.Program...)
	return a.b
}

func decodeHeader(data []byte) (CheckpointHeader, error) {
	r := ckptReader{b: data}
	var h CheckpointHeader
	if v := r.u16(); r.err == nil && v != ckptCodecVersion {
		return h, fmt.Errorf("core: checkpoint codec version %d, want %d", v, ckptCodecVersion)
	}
	h.Cursor = r.u64()
	h.Records = r.u64()
	h.TraceID = r.u64()
	h.Seed = int64(r.u64())
	h.CfgFP = r.u64()
	h.Program = string(r.take(int(r.u16())))
	if r.err == nil && r.off != len(data) {
		r.fail("%d trailing header bytes", len(data)-r.off)
	}
	return h, r.err
}

func encodeExtractor(st deps.ExtractorState) []byte {
	var a ckptAppender
	a.u64(st.Granularity)
	a.u32(uint32(len(st.Windows)))
	for _, w := range st.Windows {
		a.u16(w.Tid)
		a.u8(byte(len(w.Window)))
		for _, d := range w.Window {
			a.dep(d)
		}
	}
	a.u32(uint32(len(st.Writers)))
	for _, w := range st.Writers {
		a.u64(w.Granule)
		a.u64(w.StorePC)
		a.u16(w.Tid)
	}
	return a.b
}

func decodeExtractor(data []byte) (deps.ExtractorState, error) {
	r := ckptReader{b: data}
	st := deps.ExtractorState{Granularity: r.u64()}
	nw := r.count(3) // tid + len, then per-dep bytes
	for i := 0; i < nw && r.err == nil; i++ {
		w := deps.WindowState{Tid: r.u16()}
		nd := int(r.u8())
		for j := 0; j < nd && r.err == nil; j++ {
			w.Window = append(w.Window, r.dep())
		}
		st.Windows = append(st.Windows, w)
	}
	nl := r.count(18)
	for i := 0; i < nl && r.err == nil; i++ {
		st.Writers = append(st.Writers, deps.LastWriter{Granule: r.u64(), StorePC: r.u64(), Tid: r.u16()})
	}
	if r.err == nil && r.off != len(data) {
		r.fail("%d trailing extractor bytes", len(data)-r.off)
	}
	return st, r.err
}

// encodeModule serializes one module state. Debug entries carry the
// full RCA evidence — including the trajectory the fleet wire format
// deliberately drops — because a resumed run's reports must match the
// uninterrupted run byte-for-byte.
func encodeModule(st *ModuleState) []byte {
	var a ckptAppender
	a.u32(uint32(st.Tid))
	a.u8(byte(st.Mode))
	a.u64(st.Gen)
	a.f64(st.LastRate)
	a.u64(uint64(int64(st.Invalid)))
	a.u64(uint64(int64(st.Window)))
	a.u64(uint64(int64(st.SatWind)))
	a.u64(uint64(int64(st.BadWind)))
	for _, v := range [...]uint64{st.Stats.Deps, st.Stats.Sequences,
		st.Stats.PredictedInvalid, st.Stats.Updates, st.Stats.ModeSwitches,
		st.Stats.TrainingDeps, st.Stats.Snapshots, st.Stats.Recoveries,
		st.Stats.CacheHits, st.Stats.CacheMisses} {
		a.u64(v)
	}
	a.u32(uint32(len(st.Weights)))
	for _, v := range st.Weights {
		a.f64(v)
	}
	if st.Snap == nil {
		a.u8(0)
	} else {
		a.u8(1)
		a.u32(uint32(len(st.Snap)))
		for _, v := range st.Snap {
			a.f64(v)
		}
	}
	a.u32(uint32(len(st.IGB)))
	for _, d := range st.IGB {
		a.dep(d)
	}
	a.u8(byte(len(st.Traj)))
	for _, v := range st.Traj {
		a.f64(v)
	}
	a.u32(uint32(len(st.Debug)))
	for _, e := range st.Debug {
		a.u16(e.Proc)
		a.u64(e.At)
		a.f64(e.Output)
		a.u8(byte(e.Mode))
		a.u8(byte(len(e.Seq)))
		for _, d := range e.Seq {
			a.dep(d)
		}
		a.u8(byte(len(e.Traj)))
		for _, v := range e.Traj {
			a.f64(v)
		}
	}
	return a.b
}

func decodeModule(data []byte) (ModuleState, error) {
	r := ckptReader{b: data}
	var st ModuleState
	st.Tid = int(r.u32())
	st.Mode = Mode(r.u8())
	st.Gen = r.u64()
	st.LastRate = r.f64()
	st.Invalid = int(int64(r.u64()))
	st.Window = int(int64(r.u64()))
	st.SatWind = int(int64(r.u64()))
	st.BadWind = int(int64(r.u64()))
	var sv [10]uint64
	for i := range sv {
		sv[i] = r.u64()
	}
	st.Stats = Stats{Deps: sv[0], Sequences: sv[1], PredictedInvalid: sv[2],
		Updates: sv[3], ModeSwitches: sv[4], TrainingDeps: sv[5],
		Snapshots: sv[6], Recoveries: sv[7], CacheHits: sv[8], CacheMisses: sv[9]}
	nw := r.count(8)
	for i := 0; i < nw && r.err == nil; i++ {
		st.Weights = append(st.Weights, r.f64())
	}
	if r.u8() != 0 {
		ns := r.count(8)
		st.Snap = make([]float64, 0, ns)
		for i := 0; i < ns && r.err == nil; i++ {
			st.Snap = append(st.Snap, r.f64())
		}
	}
	ni := r.count(17)
	for i := 0; i < ni && r.err == nil; i++ {
		st.IGB = append(st.IGB, r.dep())
	}
	nt := int(r.u8())
	if nt > TrajDepth {
		r.fail("trajectory of %d samples exceeds depth %d", nt, TrajDepth)
		nt = 0
	}
	for i := 0; i < nt && r.err == nil; i++ {
		st.Traj = append(st.Traj, r.f64())
	}
	nd := r.count(1)
	for i := 0; i < nd && r.err == nil; i++ {
		var e DebugEntry
		e.Proc = r.u16()
		e.At = r.u64()
		e.Output = r.f64()
		e.Mode = Mode(r.u8())
		ns := int(r.u8())
		for j := 0; j < ns && r.err == nil; j++ {
			e.Seq = append(e.Seq, r.dep())
		}
		et := int(r.u8())
		if et > TrajDepth {
			r.fail("debug entry %d trajectory of %d samples", i, et)
			break
		}
		for j := 0; j < et && r.err == nil; j++ {
			e.Traj = append(e.Traj, r.f64())
		}
		st.Debug = append(st.Debug, e)
	}
	if r.err == nil && r.off != len(data) {
		r.fail("%d trailing module bytes", len(data)-r.off)
	}
	return st, r.err
}

// EncodeCheckpoint serializes the tracker's complete state as an ACTK
// checkpoint image: header (trace and configuration identity, cursor),
// extractor state, one section per module, then any extra sections the
// caller owns (stage results use kinds >= 64). The tracker must be
// quiescent. Identical tracker states encode identical bytes.
func (t *Tracker) EncodeCheckpoint(tr *trace.Trace, cursor int, extra ...pipeline.Section) ([]byte, error) {
	if cursor < 0 || cursor > len(tr.Records) {
		return nil, fmt.Errorf("core: checkpoint cursor %d outside trace of %d records", cursor, len(tr.Records))
	}
	for _, s := range extra {
		if s.Kind < 64 || s.Kind == 0xFF {
			return nil, fmt.Errorf("core: extra checkpoint section kind %d collides with reserved range", s.Kind)
		}
	}
	st := t.ExportState()
	sections := make([]pipeline.Section, 0, 2+len(st.Modules)+len(extra))
	sections = append(sections,
		pipeline.Section{Kind: ckptKindHeader, Data: encodeHeader(t.header(tr, cursor))},
		pipeline.Section{Kind: ckptKindExtractor, Data: encodeExtractor(st.Extractor)})
	for i := range st.Modules {
		sections = append(sections, pipeline.Section{Kind: ckptKindModule, Data: encodeModule(&st.Modules[i])})
	}
	sections = append(sections, extra...)
	return pipeline.AppendCheckpoint(nil, sections), nil
}

// DecodeCheckpoint parses a checkpoint image into its state (without
// touching any tracker) plus the caller-owned extra sections. It never
// panics on arbitrary input (FuzzLoadCheckpoint pins this); every
// structural or semantic defect is an error.
func DecodeCheckpoint(data []byte) (CheckpointHeader, *TrackerState, []pipeline.Section, error) {
	var hdr CheckpointHeader
	secs, err := pipeline.ParseCheckpoint(data)
	if err != nil {
		return hdr, nil, nil, err
	}
	st := &TrackerState{}
	var extra []pipeline.Section
	seenHeader, seenExt := false, false
	for _, s := range secs {
		switch s.Kind {
		case ckptKindHeader:
			if seenHeader {
				return hdr, nil, nil, fmt.Errorf("core: checkpoint with duplicate header")
			}
			seenHeader = true
			if hdr, err = decodeHeader(s.Data); err != nil {
				return hdr, nil, nil, err
			}
		case ckptKindExtractor:
			if seenExt {
				return hdr, nil, nil, fmt.Errorf("core: checkpoint with duplicate extractor state")
			}
			seenExt = true
			if st.Extractor, err = decodeExtractor(s.Data); err != nil {
				return hdr, nil, nil, err
			}
		case ckptKindModule:
			ms, err := decodeModule(s.Data)
			if err != nil {
				return hdr, nil, nil, err
			}
			if n := len(st.Modules); n > 0 && st.Modules[n-1].Tid >= ms.Tid {
				return hdr, nil, nil, fmt.Errorf("core: checkpoint modules out of order (%d then %d)", st.Modules[n-1].Tid, ms.Tid)
			}
			if ms.Tid > MaxTid {
				return hdr, nil, nil, fmt.Errorf("core: checkpoint module tid %d outside [0, %d]", ms.Tid, MaxTid)
			}
			st.Modules = append(st.Modules, ms)
		default:
			extra = append(extra, s)
		}
	}
	if !seenHeader || !seenExt {
		return hdr, nil, nil, fmt.Errorf("core: checkpoint missing header or extractor section")
	}
	if hdr.Cursor > hdr.Records {
		return hdr, nil, nil, fmt.Errorf("core: checkpoint cursor %d beyond %d records", hdr.Cursor, hdr.Records)
	}
	return hdr, st, extra, nil
}

// verifyCheckpoint checks a decoded checkpoint against this tracker and
// trace: same trace identity, same seed, same configuration
// fingerprint, and per-module limits the restore relies on.
func (t *Tracker) verifyCheckpoint(hdr CheckpointHeader, st *TrackerState, tr *trace.Trace) error {
	switch {
	case hdr.Program != tr.Program:
		return fmt.Errorf("core: checkpoint for program %q, replaying %q", hdr.Program, tr.Program)
	case hdr.Records != uint64(len(tr.Records)) || hdr.TraceID != traceIdentity(tr):
		return fmt.Errorf("core: checkpoint is for a different trace (fingerprint mismatch)")
	case hdr.Seed != t.seed:
		return fmt.Errorf("core: checkpoint seed %d, tracker seed %d", hdr.Seed, t.seed)
	case hdr.CfgFP != t.cfgFingerprint():
		return fmt.Errorf("core: checkpoint configuration fingerprint mismatch")
	}
	want := t.binary.NHidden*(t.binary.NIn+1) + t.binary.NHidden + 1
	for i := range st.Modules {
		ms := &st.Modules[i]
		switch {
		case len(ms.Weights) != want:
			return fmt.Errorf("core: module %d checkpoint has %d weights, topology wants %d", ms.Tid, len(ms.Weights), want)
		case ms.Snap != nil && len(ms.Snap) != want:
			return fmt.Errorf("core: module %d snapshot has %d weights, topology wants %d", ms.Tid, len(ms.Snap), want)
		case len(ms.IGB) > t.cfg.IGBSize:
			return fmt.Errorf("core: module %d checkpoint IGB of %d entries, configured size %d", ms.Tid, len(ms.IGB), t.cfg.IGBSize)
		case len(ms.Debug) > t.cfg.DebugBufSize:
			return fmt.Errorf("core: module %d checkpoint Debug Buffer of %d entries, configured size %d", ms.Tid, len(ms.Debug), t.cfg.DebugBufSize)
		case ms.Mode != Testing && ms.Mode != Training:
			return fmt.Errorf("core: module %d checkpoint mode %d", ms.Tid, int(ms.Mode))
		}
	}
	return nil
}

// RestoreCheckpoint validates a checkpoint image against this tracker
// and trace and loads it, returning the record cursor to resume from
// and any caller-owned extra sections. The tracker must be fresh (no
// modules deployed yet); on any validation error it is left untouched.
func (t *Tracker) RestoreCheckpoint(data []byte, tr *trace.Trace) (cursor int, extra []pipeline.Section, err error) {
	if t.Modules() != 0 {
		return 0, nil, fmt.Errorf("core: cannot restore a checkpoint into a tracker with %d deployed modules", t.Modules())
	}
	hdr, st, extra, err := DecodeCheckpoint(data)
	if err != nil {
		return 0, nil, err
	}
	if err := t.verifyCheckpoint(hdr, st, tr); err != nil {
		return 0, nil, err
	}
	if err := t.ext.RestoreState(st.Extractor); err != nil {
		return 0, nil, err
	}
	for i := range st.Modules {
		ms := &st.Modules[i]
		if err := t.moduleAt(ms.Tid).restoreState(ms); err != nil {
			return 0, nil, err // topology verified above; unreachable
		}
	}
	return int(hdr.Cursor), extra, nil
}
