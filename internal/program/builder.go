package program

import (
	"fmt"

	"act/internal/isa"
)

// Builder assembles one thread's instruction sequence. Branch targets are
// symbolic labels resolved at Build time; Mark records named instruction
// positions so experiments can locate known root-cause instructions by
// name instead of hard-coded indices.
type Builder struct {
	code   []isa.Instr
	labels map[string]int
	marks  map[string]int
	fixups []fixup
}

type fixup struct {
	at    int
	label string
}

// NewBuilder returns an empty thread builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int), marks: make(map[string]int)}
}

// Len returns the number of instructions emitted so far, which is also
// the index of the next instruction.
func (b *Builder) Len() int { return len(b.code) }

// Label binds name to the next instruction.
func (b *Builder) Label(name string) {
	if _, ok := b.labels[name]; ok {
		panic(fmtErr("program: duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
}

// Mark names the next instruction so its PC can be recovered from the
// built Program.
func (b *Builder) Mark(name string) { b.marks[name] = len(b.code) }

// Marks returns the recorded mark positions (instruction indexes within
// this thread). Used when splicing separately built code into an
// existing program.
func (b *Builder) Marks() map[string]int {
	m := make(map[string]int, len(b.marks))
	for k, v := range b.marks {
		m[k] = v
	}
	return m
}

func (b *Builder) emit(in isa.Instr) { b.code = append(b.code, in) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Instr{Op: isa.Nop}) }

// Li loads an immediate into rd.
func (b *Builder) Li(rd uint8, imm int64) { b.emit(isa.Instr{Op: isa.Li, Rd: rd, Imm: imm}) }

// LiAddr loads a data address into rd.
func (b *Builder) LiAddr(rd uint8, addr uint64) { b.Li(rd, int64(addr)) }

// Mov copies rs into rd.
func (b *Builder) Mov(rd, rs uint8) { b.emit(isa.Instr{Op: isa.Mov, Rd: rd, Rs1: rs}) }

// Add emits rd <- rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Add, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Addi emits rd <- rs1 + imm.
func (b *Builder) Addi(rd, rs1 uint8, imm int64) {
	b.emit(isa.Instr{Op: isa.Addi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sub emits rd <- rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Sub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd <- rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Mul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd <- rs1 / rs2 (0 when rs2 is 0).
func (b *Builder) Div(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Div, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Rem emits rd <- rs1 % rs2 (0 when rs2 is 0).
func (b *Builder) Rem(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Rem, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd <- rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.And, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Or emits rd <- rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Or, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd <- rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Xor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shl emits rd <- rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Shl, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Shr emits rd <- rs1 >> rs2.
func (b *Builder) Shr(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Shr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Slt emits rd <- (rs1 < rs2).
func (b *Builder) Slt(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Slt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Seq emits rd <- (rs1 == rs2).
func (b *Builder) Seq(rd, rs1, rs2 uint8) {
	b.emit(isa.Instr{Op: isa.Seq, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Load emits rd <- mem[base + off].
func (b *Builder) Load(rd, base uint8, off int64) {
	b.emit(isa.Instr{Op: isa.Load, Rd: rd, Rs1: base, Imm: off})
}

// Store emits mem[base + off] <- val.
func (b *Builder) Store(val, base uint8, off int64) {
	b.emit(isa.Instr{Op: isa.Store, Rs2: val, Rs1: base, Imm: off})
}

// Atomic emits an atomic fetch-and-add: rd <- mem[base+off],
// mem[base+off] <- rd + val.
func (b *Builder) Atomic(rd, val, base uint8, off int64) {
	b.emit(isa.Instr{Op: isa.Atomic, Rd: rd, Rs2: val, Rs1: base, Imm: off})
}

// Beqz branches to label when rs is zero.
func (b *Builder) Beqz(rs uint8, label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	b.emit(isa.Instr{Op: isa.Beqz, Rs1: rs})
}

// Bnez branches to label when rs is non-zero.
func (b *Builder) Bnez(rs uint8, label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	b.emit(isa.Instr{Op: isa.Bnez, Rs1: rs})
}

// Jmp branches unconditionally to label.
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	b.emit(isa.Instr{Op: isa.Jmp})
}

// Lock acquires the lock at address base+off, blocking until available.
func (b *Builder) Lock(base uint8, off int64) {
	b.emit(isa.Instr{Op: isa.Lock, Rs1: base, Imm: off})
}

// Unlock releases the lock at address base+off.
func (b *Builder) Unlock(base uint8, off int64) {
	b.emit(isa.Instr{Op: isa.Unlock, Rs1: base, Imm: off})
}

// Fence emits a full memory fence.
func (b *Builder) Fence() { b.emit(isa.Instr{Op: isa.Fence}) }

// Assert fails the program when rs is zero.
func (b *Builder) Assert(rs uint8) { b.emit(isa.Instr{Op: isa.Assert, Rs1: rs}) }

// Out appends rs to the thread's output stream.
func (b *Builder) Out(rs uint8) { b.emit(isa.Instr{Op: isa.Out, Rs1: rs}) }

// Pause emits a scheduling hint marking a likely preemption point.
func (b *Builder) Pause() { b.emit(isa.Instr{Op: isa.Pause}) }

// Halt stops the thread.
func (b *Builder) Halt() { b.emit(isa.Instr{Op: isa.Halt}) }

// Build resolves labels and returns the finished instruction sequence.
func (b *Builder) Build() ([]isa.Instr, error) {
	for _, f := range b.fixups {
		at, ok := b.labels[f.label]
		if !ok {
			return nil, fmtErr("program: undefined label %q", f.label)
		}
		b.code[f.at].Target = int32(at)
	}
	return b.code, nil
}

// ProgramBuilder assembles a whole multi-threaded Program: an address
// space plus one Builder per thread.
type ProgramBuilder struct {
	name    string
	space   *Space
	threads []*Builder
	init    map[uint64]int64
}

// New returns a ProgramBuilder with a fresh address space.
func New(name string) *ProgramBuilder {
	return &ProgramBuilder{name: name, space: NewSpace(), init: make(map[uint64]int64)}
}

// Space returns the program's data address space.
func (pb *ProgramBuilder) Space() *Space { return pb.space }

// Thread appends a new thread and returns its Builder.
func (pb *ProgramBuilder) Thread() *Builder {
	b := NewBuilder()
	pb.threads = append(pb.threads, b)
	return b
}

// SetInit sets the initial value of a data word.
func (pb *ProgramBuilder) SetInit(addr uint64, v int64) { pb.init[addr] = v }

// Build finalizes every thread and returns the Program. Marks from
// thread t are exposed in Program.Marks under "t<t>.<name>".
func (pb *ProgramBuilder) Build() (*Program, error) {
	p := &Program{
		Name:  pb.name,
		Init:  pb.init,
		Vars:  pb.space.Vars(),
		Marks: make(map[string]uint64),
	}
	for t, b := range pb.threads {
		code, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("thread %d: %w", t, err)
		}
		p.Threads = append(p.Threads, code)
		for name, idx := range b.marks {
			p.Marks[fmt.Sprintf("t%d.%s", t, name)] = isa.PC(t, idx)
		}
	}
	if len(p.Threads) == 0 {
		return nil, fmtErr("program %q has no threads", pb.name)
	}
	return p, nil
}

// MustBuild is Build that panics on error, for use in workload
// constructors whose inputs are static.
func (pb *ProgramBuilder) MustBuild() *Program {
	p, err := pb.Build()
	if err != nil {
		panic(err)
	}
	return p
}
