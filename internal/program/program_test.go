package program

import (
	"strings"
	"testing"

	"act/internal/isa"
)

func TestSpaceAlloc(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("a", 1)
	b := s.Alloc("b", 4)
	if a < DataBase {
		t.Fatalf("first alloc %#x below data base", a)
	}
	if b <= a {
		t.Fatalf("allocations not increasing: a=%#x b=%#x", a, b)
	}
	// Guard word: b must not be adjacent to a's single word.
	if b-a < 2*WordSize {
		t.Fatalf("no guard word between a and b: a=%#x b=%#x", a, b)
	}
	if got := s.Addr("a"); got != a {
		t.Errorf("Addr(a) = %#x, want %#x", got, a)
	}
}

func TestSpaceAllocAdjacent(t *testing.T) {
	s := NewSpace()
	a := s.Alloc("buf", 3)
	over := s.AllocAdjacent("over", 1)
	if over != a+3*WordSize {
		t.Fatalf("adjacent alloc at %#x, want %#x (flush after buf)", over, a+3*WordSize)
	}
}

func TestSpacePanics(t *testing.T) {
	s := NewSpace()
	s.Alloc("x", 1)
	for name, f := range map[string]func(){
		"duplicate": func() { s.Alloc("x", 1) },
		"zero":      func() { s.Alloc("y", 0) },
		"unknown":   func() { s.Addr("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSpaceNamesSorted(t *testing.T) {
	s := NewSpace()
	s.Alloc("c", 1)
	s.Alloc("a", 1)
	s.Alloc("b", 1)
	names := s.Names()
	if len(names) != 3 || names[0] != "c" || names[1] != "a" || names[2] != "b" {
		t.Errorf("Names() = %v, want allocation (address) order [c a b]", names)
	}
}

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder()
	b.Li(1, 3)
	b.Label("loop")
	b.Addi(1, 1, -1)
	b.Bnez(1, "loop")
	b.Halt()
	code, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if code[2].Target != 1 {
		t.Errorf("bnez target = %d, want 1", code[2].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("Build() error = %v, want undefined-label error", err)
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	b.Label("x")
}

func TestProgramBuilderMarks(t *testing.T) {
	pb := New("demo")
	b0 := pb.Thread()
	b0.Li(1, 1)
	b0.Mark("theLoad")
	b0.Load(2, 1, 0)
	b0.Halt()
	b1 := pb.Thread()
	b1.Halt()
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.MarkPC("t0.theLoad"), isa.PC(0, 1); got != want {
		t.Errorf("mark PC = %#x, want %#x", got, want)
	}
	if p.NumThreads() != 2 {
		t.Errorf("NumThreads = %d", p.NumThreads())
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown mark did not panic")
		}
	}()
	p.MarkPC("t9.missing")
}

func TestEmptyProgram(t *testing.T) {
	if _, err := New("empty").Build(); err == nil {
		t.Fatal("empty program built without error")
	}
}

func TestDisasmMentionsEveryInstr(t *testing.T) {
	pb := New("d")
	b := pb.Thread()
	b.Li(1, 7)
	b.Out(1)
	b.Halt()
	p := pb.MustBuild()
	d := p.Disasm()
	for _, frag := range []string{"li r1, 7", "out r1", "halt"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Disasm missing %q:\n%s", frag, d)
		}
	}
}
