// Package program models the multi-threaded workload programs that the
// reproduction runs in place of the paper's native applications. A
// Program is a fixed set of per-thread instruction sequences over the
// tiny ISA plus an initial data-memory image; a Builder assembles a
// thread with symbolic labels, and a Space hands out disjoint data
// addresses for shared and private variables.
package program

import (
	"fmt"
	"sort"

	"act/internal/isa"
)

// WordSize is the size in bytes of a data word. All loads and stores in
// the workload programs are word-sized and word-aligned.
const WordSize = 8

// Program is a complete multi-threaded workload.
type Program struct {
	Name    string
	Threads [][]isa.Instr
	// Init is the initial data-memory image, keyed by byte address.
	Init map[uint64]int64
	// Vars records the named variables for debugging and for locating
	// known root-cause instructions in experiments.
	Vars map[string]Var
	// Marks maps "t<thread>.<name>" to the instruction address recorded
	// with Builder.Mark, so experiments can name root-cause instructions.
	Marks map[string]uint64
}

// MarkPC returns the instruction address recorded under the given mark
// name, panicking if absent (marks are set by static workload code).
func (p *Program) MarkPC(name string) uint64 {
	pc, ok := p.Marks[name]
	if !ok {
		panic(fmtErr("program: unknown mark %q", name))
	}
	return pc
}

// FindMark is MarkPC without the panic: it reports whether the mark
// exists. Useful when a mark is only emitted on some code paths (e.g. a
// bug present only for certain inputs).
func (p *Program) FindMark(name string) (uint64, bool) {
	pc, ok := p.Marks[name]
	return pc, ok
}

// Var is a named region of the data address space.
type Var struct {
	Addr  uint64
	Words int
}

// NumThreads returns the number of threads in the program.
func (p *Program) NumThreads() int { return len(p.Threads) }

// PCOf returns the instruction address of instruction index i in thread t.
func (p *Program) PCOf(t, i int) uint64 { return isa.PC(t, i) }

// Disasm renders a human-readable listing of the program.
func (p *Program) Disasm() string {
	s := fmt.Sprintf("program %s: %d thread(s)\n", p.Name, len(p.Threads))
	for t, code := range p.Threads {
		s += fmt.Sprintf("thread %d:\n", t)
		for i, in := range code {
			s += fmt.Sprintf("  %#x [%3d] %s\n", isa.PC(t, i), i, in)
		}
	}
	return s
}

// Space allocates data addresses. The data segment starts high enough
// that it can never collide with instruction addresses, and a fresh
// guard word is left between allocations so that an out-of-bounds access
// of one word (the ptx/paste overflow workloads) lands on a dedicated,
// observable address rather than inside an unrelated variable —
// except when allocations are made with AllocAdjacent, which packs the
// next variable flush against the previous one to model real overflows.
type Space struct {
	next uint64
	vars map[string]Var
}

// DataBase is the first data address handed out by a Space.
const DataBase = 0x10000000

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{next: DataBase, vars: make(map[string]Var)}
}

// Alloc reserves words data words under the given name and returns the
// base address. Alloc panics if the name was already used; workload
// construction is programmer-controlled, so misuse is a bug.
func (s *Space) Alloc(name string, words int) uint64 {
	if words <= 0 {
		panic(fmtErr("program: Alloc %q with %d words", name, words))
	}
	if _, ok := s.vars[name]; ok {
		panic(fmtErr("program: duplicate variable %q", name))
	}
	base := s.next
	s.next += uint64(words+1) * WordSize // +1 guard word
	s.vars[name] = Var{Addr: base, Words: words}
	return base
}

// AllocAdjacent reserves words data words immediately after the most
// recent allocation with no guard word, so that overflowing the previous
// variable by one word lands on this one.
func (s *Space) AllocAdjacent(name string, words int) uint64 {
	if _, ok := s.vars[name]; ok {
		panic(fmtErr("program: duplicate variable %q", name))
	}
	base := s.next - WordSize // reuse the guard word of the previous alloc
	s.next = base + uint64(words)*WordSize + WordSize
	s.vars[name] = Var{Addr: base, Words: words}
	return base
}

// Addr returns the base address of a named variable, panicking if the
// name is unknown.
func (s *Space) Addr(name string) uint64 {
	v, ok := s.vars[name]
	if !ok {
		panic(fmtErr("program: unknown variable %q", name))
	}
	return v.Addr
}

// Vars returns a copy of the allocation table.
func (s *Space) Vars() map[string]Var {
	m := make(map[string]Var, len(s.vars))
	for k, v := range s.vars {
		m[k] = v
	}
	return m
}

// Names returns the allocated variable names in address order.
func (s *Space) Names() []string {
	names := make([]string, 0, len(s.vars))
	for k := range s.vars {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return s.vars[names[i]].Addr < s.vars[names[j]].Addr })
	return names
}

func fmtErr(format string, args ...any) error { return fmt.Errorf(format, args...) }
