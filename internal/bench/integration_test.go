package bench

import (
	"fmt"
	"testing"

	"act/internal/nnhw"
)

func TestFig8Fig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead + granularity sweeps")
	}
	rows, err := Fig8(Quick, nnhw.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(RenderFig8(rows))
	rows10, err := Fig10(Quick)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(RenderFig10(rows10))
}

func TestTableVQuickOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table V incl. baselines")
	}
	rows, err := TableV(Quick)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(RenderTableV(rows))
	for _, r := range rows {
		if r.Rank == 0 || r.Rank > 8 {
			t.Errorf("%s: ACT rank %d", r.Bug, r.Rank)
		}
	}
}
