package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/trace"
	"act/internal/workloads"
)

// Monitoring-pipeline throughput experiment. Unlike the paper-shaped
// tables, this one measures the reproduction itself: how many trace
// records per second the software AM pipeline sustains, sequentially
// versus with parallel sharded replay, with and without verdict
// memoization. cmd/actbench -exp pipeline prints the rows and, with
// -json, writes them as BENCH_pipeline.json (format in EXPERIMENTS.md)
// so the throughput trajectory is tracked across commits.

// PipelineRow is one measured pipeline configuration.
type PipelineRow struct {
	Config        string  `json:"config"`          // "sequential", "parallel", "+cache" variants
	Threads       int     `json:"threads"`         // worker threads in the replayed trace
	Records       int     `json:"records"`         // trace records replayed per pass
	Deps          uint64  `json:"deps"`            // dependences classified per pass
	Passes        int     `json:"passes"`          // timed replay passes
	RecordsPerSec float64 `json:"records_per_sec"` // throughput over all passes
	NsPerDep      float64 `json:"ns_per_dep"`      // wall time per classified dependence
	AllocsPerDep  float64 `json:"allocs_per_dep"`  // heap allocations per dependence (steady state)
	CacheHitRate  float64 `json:"cache_hit_rate"`  // verdict-cache hits / classifications
	Speedup       float64 `json:"speedup"`         // vs the sequential row of the same run
	GOMAXPROCS    int     `json:"gomaxprocs"`      // parallelism available to the run
}

// PipelineReport is the JSON document actbench -json emits.
type PipelineReport struct {
	Workload string        `json:"workload"`
	Rows     []PipelineRow `json:"rows"`
	// QuantSpeedup is the sequential+quant configuration's records/sec
	// divided by the plain sequential configuration's — the gain from
	// the compiled int16 batch kernel alone, with no parallelism and no
	// verdict cache in either term. It is measured from paired
	// back-to-back float/quant attempts (best ratio of three pairs), so
	// machine-speed drift during the run moves both terms of a pair
	// together instead of skewing the ratio.
	QuantSpeedup float64 `json:"quant_speedup"`
	// QuantFloor is the minimum QuantSpeedup the kernel must sustain;
	// CI greps for QuantOK, so a regression below the floor fails the
	// build rather than silently eroding.
	QuantFloor float64 `json:"quant_floor"`
	QuantOK    bool    `json:"quant_speedup_ok"`
}

// pipelineTrace builds the multi-threaded replay input: the 4-thread
// radix kernel, whose inter-thread histogram merges exercise both
// halves of the extractor.
func pipelineTrace(m Mode) (*trace.Trace, int) {
	w, err := workloads.KernelByName("radix")
	if err != nil {
		panic(err) // built-in kernel; unreachable
	}
	tr, _ := trace.Collect(w.Build(1), w.Sched(1))
	passes := 40
	if m == Full {
		passes = 200
	}
	return tr, passes
}

// pipelineMinDur is the wall-time floor for one timed measurement; see
// runPipeline.
func pipelineMinDur(m Mode) time.Duration {
	if m == Full {
		return 150 * time.Millisecond
	}
	return 25 * time.Millisecond
}

// pipelineTracker deploys a converged always-valid binary (N=3, 6-8-1
// by default) so the measurement isolates steady-state classification:
// testing mode throughout, no Debug Buffer churn.
func pipelineTracker(threads, cache int, quant bool) *core.Tracker {
	cfg := core.Config{N: 3, VerdictCache: cache, Quantized: quant}
	nIn := deps.InputLen(deps.EncodeDefault, 3)
	binary := core.AlwaysValidBinary(nIn, 8, threads)
	return core.NewTracker(binary, core.TrackerConfig{Module: cfg})
}

// runPipeline replays the trace on a fresh tracker for at least
// minPasses passes AND at least minDur of wall time, returning the row
// for one configuration. The duration floor matters more than the pass
// count: the fastest configurations replay this trace in tens of
// microseconds, and a sub-millisecond timing window turns scheduler
// jitter into 2× swings in the ratios CI asserts on.
func runPipeline(tr *trace.Trace, threads, minPasses int, minDur time.Duration, parallel bool, cache int, quant bool) PipelineRow {
	t := pipelineTracker(threads, cache, quant)
	// Warm-up pass: module creation, lazy buffers, map growth.
	t.Replay(tr)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	passes := 0
	for passes < minPasses || time.Since(start) < minDur {
		if parallel {
			t.ReplayParallel(tr, core.ParallelConfig{})
		} else {
			t.Replay(tr)
		}
		passes++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	st := t.Stats()
	deps := st.Deps * uint64(passes) / uint64(passes+1) // exclude the warm-up share
	row := PipelineRow{
		Threads:    threads,
		Records:    len(tr.Records),
		Deps:       deps,
		Passes:     passes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		row.RecordsPerSec = float64(len(tr.Records)) * float64(passes) / secs
	}
	if deps > 0 {
		row.NsPerDep = float64(elapsed.Nanoseconds()) / float64(deps)
		row.AllocsPerDep = float64(ms1.Mallocs-ms0.Mallocs) / float64(deps)
	}
	if cls := st.CacheHits + st.CacheMisses; cls > 0 {
		row.CacheHitRate = float64(st.CacheHits) / float64(cls)
	}
	return row
}

// Pipeline measures the six pipeline configurations on the same trace
// in one run: sequential and parallel replay, each without and with the
// verdict cache, plus both with the quantized int16 batch kernel.
// Speedups are relative to the plain sequential row, and the
// sequential+quant ratio is asserted against QuantFloor.
func Pipeline(m Mode) (*PipelineReport, error) {
	tr, passes := pipelineTrace(m)
	threads := 4
	configs := []struct {
		name     string
		parallel bool
		cache    int
		quant    bool
	}{
		{"sequential", false, 0, false},
		{"parallel", true, 0, false},
		{"sequential+cache", false, -1, false},
		{"parallel+cache", true, -1, false},
		{"sequential+quant", false, 0, true},
		{"parallel+quant", true, 0, true},
	}
	rep := &PipelineReport{Workload: "radix", QuantFloor: 3.0}
	for _, c := range configs {
		// Best of three runs, like the obs experiment: the asserted
		// ratios are about systematic cost, not scheduler jitter.
		var row PipelineRow
		for i := 0; i < 3; i++ {
			r := runPipeline(tr, threads, passes, pipelineMinDur(m), c.parallel, c.cache, c.quant)
			if r.RecordsPerSec > row.RecordsPerSec {
				row = r
			}
		}
		row.Config = c.name
		rep.Rows = append(rep.Rows, row)
	}
	base := rep.Rows[0].RecordsPerSec
	for i := range rep.Rows {
		if base > 0 {
			rep.Rows[i].Speedup = rep.Rows[i].RecordsPerSec / base
		}
	}
	// The asserted ratio comes from paired attempts, not the table rows:
	// each pair times float then quant back to back, so a slow stretch
	// of the machine slows both terms instead of faking a regression.
	for i := 0; i < 3; i++ {
		f := runPipeline(tr, threads, passes, pipelineMinDur(m), false, 0, false)
		q := runPipeline(tr, threads, passes, pipelineMinDur(m), false, 0, true)
		if f.RecordsPerSec > 0 {
			if r := q.RecordsPerSec / f.RecordsPerSec; r > rep.QuantSpeedup {
				rep.QuantSpeedup = r
			}
		}
	}
	rep.QuantOK = rep.QuantSpeedup >= rep.QuantFloor
	return rep, nil
}

// RenderPipeline renders the report as a table.
func RenderPipeline(rep *PipelineReport) string {
	out := make([]string, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		out = append(out, fmt.Sprintf("%s\t%.0f\t%.1f\t%.3f\t%.1f\t%.2fx",
			r.Config, r.RecordsPerSec, r.NsPerDep, r.AllocsPerDep,
			100*r.CacheHitRate, r.Speedup))
	}
	ok := "FAIL"
	if rep.QuantOK {
		ok = "ok"
	}
	return table("Config\tRecords/s\tns/dep\tAllocs/dep\tCacheHit%\tSpeedup", out) +
		fmt.Sprintf("(workload %s, %d threads, GOMAXPROCS=%d; speedup vs sequential\n"+
			" in the same run; parallel gains require GOMAXPROCS > 1)\n"+
			"quant speedup %.2fx (floor %.1fx: %s)\n",
			rep.Workload, rep.Rows[0].Threads, rep.Rows[0].GOMAXPROCS,
			rep.QuantSpeedup, rep.QuantFloor, ok)
}

// MarshalPipeline renders the report as the BENCH_pipeline.json bytes.
func MarshalPipeline(rep *PipelineReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
