package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/trace"
	"act/internal/workloads"
)

// Monitoring-pipeline throughput experiment. Unlike the paper-shaped
// tables, this one measures the reproduction itself: how many trace
// records per second the software AM pipeline sustains, sequentially
// versus with parallel sharded replay, with and without verdict
// memoization. cmd/actbench -exp pipeline prints the rows and, with
// -json, writes them as BENCH_pipeline.json (format in EXPERIMENTS.md)
// so the throughput trajectory is tracked across commits.

// PipelineRow is one measured pipeline configuration.
type PipelineRow struct {
	Config        string  `json:"config"`          // "sequential", "parallel", "+cache" variants
	Threads       int     `json:"threads"`         // worker threads in the replayed trace
	Records       int     `json:"records"`         // trace records replayed per pass
	Deps          uint64  `json:"deps"`            // dependences classified per pass
	Passes        int     `json:"passes"`          // timed replay passes
	RecordsPerSec float64 `json:"records_per_sec"` // throughput over all passes
	NsPerDep      float64 `json:"ns_per_dep"`      // wall time per classified dependence
	AllocsPerDep  float64 `json:"allocs_per_dep"`  // heap allocations per dependence (steady state)
	CacheHitRate  float64 `json:"cache_hit_rate"`  // verdict-cache hits / classifications
	Speedup       float64 `json:"speedup"`         // vs the sequential row of the same run
	GOMAXPROCS    int     `json:"gomaxprocs"`      // parallelism available to the run
}

// PipelineReport is the JSON document actbench -json emits.
type PipelineReport struct {
	Workload string        `json:"workload"`
	Rows     []PipelineRow `json:"rows"`
}

// pipelineTrace builds the multi-threaded replay input: the 4-thread
// radix kernel, whose inter-thread histogram merges exercise both
// halves of the extractor.
func pipelineTrace(m Mode) (*trace.Trace, int) {
	w, err := workloads.KernelByName("radix")
	if err != nil {
		panic(err) // built-in kernel; unreachable
	}
	tr, _ := trace.Collect(w.Build(1), w.Sched(1))
	passes := 8
	if m == Full {
		passes = 40
	}
	return tr, passes
}

// pipelineTracker deploys a converged always-valid binary (N=3, 6-8-1
// by default) so the measurement isolates steady-state classification:
// testing mode throughout, no Debug Buffer churn.
func pipelineTracker(threads, cache int) *core.Tracker {
	cfg := core.Config{N: 3, VerdictCache: cache}
	nIn := deps.InputLen(deps.EncodeDefault, 3)
	binary := core.AlwaysValidBinary(nIn, 8, threads)
	return core.NewTracker(binary, core.TrackerConfig{Module: cfg})
}

// runPipeline replays the trace `passes` times on a fresh tracker,
// returning the row for one configuration.
func runPipeline(tr *trace.Trace, threads, passes int, parallel bool, cache int) PipelineRow {
	t := pipelineTracker(threads, cache)
	// Warm-up pass: module creation, lazy buffers, map growth.
	t.Replay(tr)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for p := 0; p < passes; p++ {
		if parallel {
			t.ReplayParallel(tr, core.ParallelConfig{})
		} else {
			t.Replay(tr)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	st := t.Stats()
	deps := st.Deps * uint64(passes) / uint64(passes+1) // exclude the warm-up share
	row := PipelineRow{
		Threads:    threads,
		Records:    len(tr.Records),
		Deps:       deps,
		Passes:     passes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		row.RecordsPerSec = float64(len(tr.Records)) * float64(passes) / secs
	}
	if deps > 0 {
		row.NsPerDep = float64(elapsed.Nanoseconds()) / float64(deps)
		row.AllocsPerDep = float64(ms1.Mallocs-ms0.Mallocs) / float64(deps)
	}
	if cls := st.CacheHits + st.CacheMisses; cls > 0 {
		row.CacheHitRate = float64(st.CacheHits) / float64(cls)
	}
	return row
}

// Pipeline measures the four pipeline configurations on the same trace
// in one run: sequential and parallel replay, each without and with the
// verdict cache. Speedups are relative to the plain sequential row.
func Pipeline(m Mode) (*PipelineReport, error) {
	tr, passes := pipelineTrace(m)
	threads := 4
	configs := []struct {
		name     string
		parallel bool
		cache    int
	}{
		{"sequential", false, 0},
		{"parallel", true, 0},
		{"sequential+cache", false, -1},
		{"parallel+cache", true, -1},
	}
	rep := &PipelineReport{Workload: "radix"}
	for _, c := range configs {
		row := runPipeline(tr, threads, passes, c.parallel, c.cache)
		row.Config = c.name
		rep.Rows = append(rep.Rows, row)
	}
	base := rep.Rows[0].RecordsPerSec
	for i := range rep.Rows {
		if base > 0 {
			rep.Rows[i].Speedup = rep.Rows[i].RecordsPerSec / base
		}
	}
	return rep, nil
}

// RenderPipeline renders the report as a table.
func RenderPipeline(rep *PipelineReport) string {
	out := make([]string, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		out = append(out, fmt.Sprintf("%s\t%.0f\t%.1f\t%.3f\t%.1f\t%.2fx",
			r.Config, r.RecordsPerSec, r.NsPerDep, r.AllocsPerDep,
			100*r.CacheHitRate, r.Speedup))
	}
	return table("Config\tRecords/s\tns/dep\tAllocs/dep\tCacheHit%\tSpeedup", out) +
		fmt.Sprintf("(workload %s, %d threads, GOMAXPROCS=%d; speedup vs sequential\n"+
			" in the same run; parallel gains require GOMAXPROCS > 1)\n",
			rep.Workload, rep.Rows[0].Threads, rep.Rows[0].GOMAXPROCS)
}

// MarshalPipeline renders the report as the BENCH_pipeline.json bytes.
func MarshalPipeline(rep *PipelineReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
