package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/pipeline"
	"act/internal/trace"
	"act/internal/workloads"
)

// Monitoring-pipeline throughput experiment. Unlike the paper-shaped
// tables, this one measures the reproduction itself: how many trace
// records per second the software AM pipeline sustains, sequentially
// versus with parallel sharded replay, with and without verdict
// memoization. cmd/actbench -exp pipeline prints the rows and, with
// -json, writes them as BENCH_pipeline.json (format in EXPERIMENTS.md)
// so the throughput trajectory is tracked across commits.

// PipelineRow is one measured pipeline configuration.
type PipelineRow struct {
	Config        string  `json:"config"`          // "sequential", "parallel", "+cache" variants
	Threads       int     `json:"threads"`         // worker threads in the replayed trace
	Records       int     `json:"records"`         // trace records replayed per pass
	Deps          uint64  `json:"deps"`            // dependences classified per pass
	Passes        int     `json:"passes"`          // timed replay passes
	RecordsPerSec float64 `json:"records_per_sec"` // throughput over all passes
	NsPerDep      float64 `json:"ns_per_dep"`      // wall time per classified dependence
	AllocsPerDep  float64 `json:"allocs_per_dep"`  // heap allocations per dependence (steady state)
	CacheHitRate  float64 `json:"cache_hit_rate"`  // verdict-cache hits / classifications
	Speedup       float64 `json:"speedup"`         // vs the sequential row of the same run
	GOMAXPROCS    int     `json:"gomaxprocs"`      // parallelism available to the run
}

// PipelineReport is the JSON document actbench -json emits.
type PipelineReport struct {
	Workload string        `json:"workload"`
	Rows     []PipelineRow `json:"rows"`
	// QuantSpeedup is the sequential+quant configuration's records/sec
	// divided by the plain sequential configuration's — the gain from
	// the compiled int16 batch kernel alone, with no parallelism and no
	// verdict cache in either term. It is measured from paired
	// back-to-back float/quant attempts (best ratio of three pairs), so
	// machine-speed drift during the run moves both terms of a pair
	// together instead of skewing the ratio.
	QuantSpeedup float64 `json:"quant_speedup"`
	// QuantFloor is the minimum QuantSpeedup the kernel must sustain;
	// CI greps for QuantOK, so a regression below the floor fails the
	// build rather than silently eroding.
	QuantFloor float64 `json:"quant_floor"`
	QuantOK    bool    `json:"quant_speedup_ok"`
	// Checkpoint overhead at the production cadence. One image costs
	// CkptNsPerImage (encode + atomic fsync'd write, best of several
	// samples); between images the monitor replays CkptInterval records
	// (the core.DefaultCheckpointInterval cadence) at the sequential
	// row's throughput. CkptOverhead is the ratio of the two — the
	// fraction of wall time a checkpointed run spends on images versus a
	// no-checkpoint baseline. The "+ckpt" table rows show the same cost
	// end-to-end at a deliberately absurd cadence (4 images per ~500
	// record pass) to keep the per-image cost visible; the asserted
	// number is the amortized one, because that is what a production run
	// pays. CI greps for CkptOK against the 5% ceiling.
	CkptNsPerImage float64 `json:"ckpt_ns_per_image"`
	CkptBytes      int     `json:"ckpt_bytes"`    // size of one image
	CkptInterval   int     `json:"ckpt_interval"` // records between images
	CkptOverhead   float64 `json:"ckpt_overhead"` // fraction of baseline wall time
	CkptCeil       float64 `json:"ckpt_ceil"`
	CkptOK         bool    `json:"ckpt_overhead_ok"`
}

// pipelineTrace builds the multi-threaded replay input: the 4-thread
// radix kernel, whose inter-thread histogram merges exercise both
// halves of the extractor.
func pipelineTrace(m Mode) (*trace.Trace, int) {
	w, err := workloads.KernelByName("radix")
	if err != nil {
		panic(err) // built-in kernel; unreachable
	}
	tr, _ := trace.Collect(w.Build(1), w.Sched(1))
	passes := 40
	if m == Full {
		passes = 200
	}
	return tr, passes
}

// pipelineMinDur is the wall-time floor for one timed measurement; see
// runPipeline.
func pipelineMinDur(m Mode) time.Duration {
	if m == Full {
		return 150 * time.Millisecond
	}
	return 25 * time.Millisecond
}

// pipelineTracker deploys a converged always-valid binary (N=3, 6-8-1
// by default) so the measurement isolates steady-state classification:
// testing mode throughout, no Debug Buffer churn.
func pipelineTracker(threads, cache int, quant bool) *core.Tracker {
	cfg := core.Config{N: 3, VerdictCache: cache, Quantized: quant}
	nIn := deps.InputLen(deps.EncodeDefault, 3)
	binary := core.AlwaysValidBinary(nIn, 8, threads)
	return core.NewTracker(binary, core.TrackerConfig{Module: cfg})
}

// runPipeline replays the trace on a fresh tracker for at least
// minPasses passes AND at least minDur of wall time, returning the row
// for one configuration. The duration floor matters more than the pass
// count: the fastest configurations replay this trace in tens of
// microseconds, and a sub-millisecond timing window turns scheduler
// jitter into 2× swings in the ratios CI asserts on.
func runPipeline(tr *trace.Trace, threads, minPasses int, minDur time.Duration, parallel bool, cache int, quant bool, ck core.CheckpointConfig) PipelineRow {
	t := pipelineTracker(threads, cache, quant)
	// Warm-up pass: module creation, lazy buffers, map growth.
	t.Replay(tr)

	var par *core.ParallelConfig
	if parallel {
		par = &core.ParallelConfig{}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	passes := 0
	for passes < minPasses || time.Since(start) < minDur {
		if ck.Path != "" {
			if _, err := t.ReplayCheckpointed(tr, par, ck); err != nil {
				panic(err) // temp-dir write failure; not a measurement
			}
		} else if parallel {
			t.ReplayParallel(tr, core.ParallelConfig{})
		} else {
			t.Replay(tr)
		}
		passes++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	st := t.Stats()
	deps := st.Deps * uint64(passes) / uint64(passes+1) // exclude the warm-up share
	row := PipelineRow{
		Threads:    threads,
		Records:    len(tr.Records),
		Deps:       deps,
		Passes:     passes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		row.RecordsPerSec = float64(len(tr.Records)) * float64(passes) / secs
	}
	if deps > 0 {
		row.NsPerDep = float64(elapsed.Nanoseconds()) / float64(deps)
		row.AllocsPerDep = float64(ms1.Mallocs-ms0.Mallocs) / float64(deps)
	}
	if cls := st.CacheHits + st.CacheMisses; cls > 0 {
		row.CacheHitRate = float64(st.CacheHits) / float64(cls)
	}
	return row
}

// Pipeline measures the six pipeline configurations on the same trace
// in one run: sequential and parallel replay, each without and with the
// verdict cache, plus both with the quantized int16 batch kernel.
// Speedups are relative to the plain sequential row, and the
// sequential+quant ratio is asserted against QuantFloor.
func Pipeline(m Mode) (*PipelineReport, error) {
	tr, passes := pipelineTrace(m)
	threads := 4
	ckptDir, err := os.MkdirTemp("", "actbench-ckpt-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(ckptDir)
	// The "+ckpt" rows checkpoint every records/4 records — four fsync'd
	// images per sub-millisecond pass, a cadence no production run would
	// pick — so the table shows the un-amortized cost of an image.
	rowCk := core.CheckpointConfig{
		Path:     filepath.Join(ckptDir, "bench.ckpt"),
		Interval: max(1, len(tr.Records)/4),
	}
	configs := []struct {
		name     string
		parallel bool
		cache    int
		quant    bool
		ck       core.CheckpointConfig
	}{
		{"sequential", false, 0, false, core.CheckpointConfig{}},
		{"parallel", true, 0, false, core.CheckpointConfig{}},
		{"sequential+cache", false, -1, false, core.CheckpointConfig{}},
		{"parallel+cache", true, -1, false, core.CheckpointConfig{}},
		{"sequential+quant", false, 0, true, core.CheckpointConfig{}},
		{"parallel+quant", true, 0, true, core.CheckpointConfig{}},
		{"sequential+ckpt", false, 0, false, rowCk},
		{"parallel+ckpt", true, 0, false, rowCk},
	}
	rep := &PipelineReport{Workload: "radix", QuantFloor: 3.0}
	for _, c := range configs {
		// Best of three runs, like the obs experiment: the asserted
		// ratios are about systematic cost, not scheduler jitter.
		var row PipelineRow
		for i := 0; i < 3; i++ {
			r := runPipeline(tr, threads, passes, pipelineMinDur(m), c.parallel, c.cache, c.quant, c.ck)
			if r.RecordsPerSec > row.RecordsPerSec {
				row = r
			}
		}
		row.Config = c.name
		rep.Rows = append(rep.Rows, row)
	}
	base := rep.Rows[0].RecordsPerSec
	for i := range rep.Rows {
		if base > 0 {
			rep.Rows[i].Speedup = rep.Rows[i].RecordsPerSec / base
		}
	}
	// The asserted ratio comes from paired attempts, not the table rows:
	// each pair times float then quant back to back, so a slow stretch
	// of the machine slows both terms instead of faking a regression.
	for i := 0; i < 3; i++ {
		f := runPipeline(tr, threads, passes, pipelineMinDur(m), false, 0, false, core.CheckpointConfig{})
		q := runPipeline(tr, threads, passes, pipelineMinDur(m), false, 0, true, core.CheckpointConfig{})
		if f.RecordsPerSec > 0 {
			if r := q.RecordsPerSec / f.RecordsPerSec; r > rep.QuantSpeedup {
				rep.QuantSpeedup = r
			}
		}
	}
	rep.QuantOK = rep.QuantSpeedup >= rep.QuantFloor

	if err := measureCkptOverhead(rep, tr, threads); err != nil {
		return nil, err
	}
	return rep, nil
}

// measureCkptOverhead fills the ckpt_* report fields: the best-observed
// cost of producing one complete checkpoint image (EncodeCheckpoint of a
// fully-replayed tracker plus the atomic fsync'd WriteFile) divided by
// the wall time the sequential baseline spends replaying one default
// checkpoint interval's worth of records. Taking the minimum of several
// image samples mirrors the best-of-three rows: the assertion is about
// systematic cost, not about whatever the machine was doing that moment.
func measureCkptOverhead(rep *PipelineReport, tr *trace.Trace, threads int) error {
	dir, err := os.MkdirTemp("", "actbench-ckpt-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "amortized.ckpt")

	t := pipelineTracker(threads, 0, false)
	t.Replay(tr)
	best := time.Duration(0)
	bytes := 0
	for i := 0; i < 20; i++ {
		start := time.Now()
		img, err := t.EncodeCheckpoint(tr, len(tr.Records))
		if err != nil {
			return err
		}
		if err := pipeline.WriteFile(path, img); err != nil {
			return err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
		bytes = len(img)
	}
	rep.CkptNsPerImage = float64(best.Nanoseconds())
	rep.CkptBytes = bytes
	rep.CkptInterval = core.DefaultCheckpointInterval
	rep.CkptCeil = 0.05
	if base := rep.Rows[0].RecordsPerSec; base > 0 {
		intervalNS := float64(rep.CkptInterval) / base * 1e9
		rep.CkptOverhead = rep.CkptNsPerImage / intervalNS
	}
	rep.CkptOK = rep.CkptOverhead > 0 && rep.CkptOverhead <= rep.CkptCeil
	return nil
}

// RenderPipeline renders the report as a table.
func RenderPipeline(rep *PipelineReport) string {
	out := make([]string, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		out = append(out, fmt.Sprintf("%s\t%.0f\t%.1f\t%.3f\t%.1f\t%.2fx",
			r.Config, r.RecordsPerSec, r.NsPerDep, r.AllocsPerDep,
			100*r.CacheHitRate, r.Speedup))
	}
	ok := "FAIL"
	if rep.QuantOK {
		ok = "ok"
	}
	ckOK := "FAIL"
	if rep.CkptOK {
		ckOK = "ok"
	}
	return table("Config\tRecords/s\tns/dep\tAllocs/dep\tCacheHit%\tSpeedup", out) +
		fmt.Sprintf("(workload %s, %d threads, GOMAXPROCS=%d; speedup vs sequential\n"+
			" in the same run; parallel gains require GOMAXPROCS > 1;\n"+
			" +ckpt rows fsync 4 images per pass — see ckpt overhead below\n"+
			" for the production cadence)\n"+
			"quant speedup %.2fx (floor %.1fx: %s)\n"+
			"ckpt overhead %.3f%% (%.0fµs/image, %d B, every %d records; ceil %.0f%%: %s)\n",
			rep.Workload, rep.Rows[0].Threads, rep.Rows[0].GOMAXPROCS,
			rep.QuantSpeedup, rep.QuantFloor, ok,
			100*rep.CkptOverhead, rep.CkptNsPerImage/1e3, rep.CkptBytes,
			rep.CkptInterval, 100*rep.CkptCeil, ckOK)
}

// MarshalPipeline renders the report as the BENCH_pipeline.json bytes.
func MarshalPipeline(rep *PipelineReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
