package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"act/internal/faults"
	"act/internal/nn"
	"act/internal/rca"
	"act/internal/train"
)

// RCA calibration: replay the labeled bug campaigns through the verdict
// engine and report diagnosis accuracy — the quality counterpart of the
// overhead benchmarks. Quick mode covers a class-balanced subset of the
// workloads; full mode replays all eleven real bugs plus the five
// injected-new-code experiments.

// Accuracy floors CI asserts on the quick set. The quick-set results
// are deterministic (every pipeline stage is seeded), so the floors sit
// just below the measured values: kind accuracy and top-1 site 6/7 on
// the quick set, with top-3 perfect. A regression in the classifier,
// the ranking, or the pipeline shows up as a floor violation, not a
// silent drift.
const (
	RCAKindFloor = 0.85 // per-run kind accuracy (quick: measured 6/7 ≈ 0.857)
	RCATop1Floor = 0.85 // top-1 site accuracy (quick: measured 7/7)
	RCATop3Floor = 0.99 // top-3 site accuracy (quick: measured 7/7)
)

// rcaQuickBugs is the class-balanced quick subset: two order, two
// atomicity (one real, one injected new-code), two sequential, plus the
// known-hard mysql3 (atomicity whose window geometry matches an order
// violation; see internal/rca classify.go) so the quick run keeps one
// honest miss in view.
func rcaQuickBugs() []string {
	return []string{"aget", "pbzip2", "apache", "mysql3", "injected-lu", "gzip", "ptx"}
}

// RCAReport is the JSON document actbench -exp rca -json emits
// (BENCH_rca.json, see EXPERIMENTS.md).
type RCAReport struct {
	Bugs  []rca.BugScore  `json:"bugs"`
	Kinds []rca.KindScore `json:"kinds"`

	KindAccuracy     float64 `json:"kind_accuracy"`
	Top1Site         float64 `json:"top1_site"`
	Top3Site         float64 `json:"top3_site"`
	CalibrationError float64 `json:"calibration_error"`

	KindFloor float64 `json:"kind_floor"`
	Top1Floor float64 `json:"top1_floor"`
	Top3Floor float64 `json:"top3_floor"`
	// WithinFloor reports every accuracy metric at or above its floor.
	WithinFloor bool `json:"within_floor"`
}

// RCA runs the calibration harness at the given scale.
func RCA(m Mode) (*RCAReport, error) {
	cfg := rca.HarnessConfig{
		Bugs:    rcaQuickBugs(),
		NewCode: true,
		Campaign: faults.CampaignConfig{
			Seed: 7,
			Train: train.Config{
				Ns:              []int{2},
				Hs:              []int{6},
				RandomNegatives: 2,
				Seed:            1,
				SearchFit:       nn.FitConfig{MaxEpochs: 200, Seed: 1},
				FinalFit:        nn.FitConfig{MaxEpochs: 1500, Seed: 1, Patience: 400},
			},
		},
	}
	if m == Full {
		cfg.Bugs = nil // every real and injected bug
		cfg.Campaign.Train = train.Config{}
	}
	res, err := rca.RunHarness(cfg)
	if err != nil {
		return nil, err
	}
	rep := &RCAReport{
		Bugs:             res.Scores,
		Kinds:            res.Kinds,
		KindAccuracy:     res.KindAccuracy,
		Top1Site:         res.Top1Site,
		Top3Site:         res.Top3Site,
		CalibrationError: res.ECE,
		KindFloor:        RCAKindFloor,
		Top1Floor:        RCATop1Floor,
		Top3Floor:        RCATop3Floor,
	}
	rep.WithinFloor = rep.KindAccuracy >= rep.KindFloor &&
		rep.Top1Site >= rep.Top1Floor &&
		rep.Top3Site >= rep.Top3Floor
	return rep, nil
}

// RenderRCA formats the calibration report as a fixed-width table.
func RenderRCA(rep *RCAReport) string {
	var rows []string
	for _, s := range rep.Bugs {
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%d\t%v\t%v\t%.2f",
			s.Bug, s.TrueName, s.PredName, s.RootRank, s.KindCorrect, s.Top1Site, s.Confidence))
	}
	out := table("Bug\tTrue kind\tPredicted\tRank\tKind ok\tTop-1\tConf", rows)
	var kb strings.Builder
	for _, k := range rep.Kinds {
		fmt.Fprintf(&kb, "  %-20s P=%.2f R=%.2f (tp=%d fp=%d fn=%d)\n",
			k.KindName, k.Precision, k.Recall, k.TP, k.FP, k.FN)
	}
	verdict := "within"
	if !rep.WithinFloor {
		verdict = "BELOW"
	}
	return out + kb.String() +
		fmt.Sprintf("(kind accuracy %.3f, top-1 site %.3f, top-3 %.3f, calibration error %.3f — %s the %.2f/%.2f/%.2f floors)\n",
			rep.KindAccuracy, rep.Top1Site, rep.Top3Site, rep.CalibrationError,
			verdict, rep.KindFloor, rep.Top1Floor, rep.Top3Floor)
}

// MarshalRCA renders the report as the BENCH_rca.json bytes.
func MarshalRCA(rep *RCAReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
