package bench

import (
	"fmt"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/isa"
	"act/internal/mem"
	"act/internal/nnhw"
	"act/internal/sim"
	"act/internal/stats"
	"act/internal/train"
	"act/internal/workloads"
)

// Fig7aRow reports the false-negative rate on synthesized invalid RAW
// dependences for one program (paper average ≈ 0.18%).
type Fig7aRow struct {
	Program string
	FNPct   float64
}

// Fig7a measures, per program, how often the trained network accepts an
// intentionally invalid dependence sequence.
func Fig7a(m Mode) ([]Fig7aRow, error) {
	var rows []Fig7aRow
	for _, w := range workloads.Kernels() {
		res, testTr, err := trainKernel(w, m, m.trainConfig(1))
		if err != nil {
			return nil, fmt.Errorf("fig 7a %s: %w", w.Name, err)
		}
		fn := train.FalseNegativeRate(res, testTr, 0, false)
		rows = append(rows, Fig7aRow{Program: w.Name, FNPct: 100 * fn})
	}
	return rows, nil
}

// RenderFig7a renders the series.
func RenderFig7a(rows []Fig7aRow) string {
	out := make([]string, 0, len(rows)+1)
	var sum float64
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%.3f", r.Program, r.FNPct))
		sum += r.FNPct
	}
	out = append(out, fmt.Sprintf("average\t%.3f", sum/float64(max(1, len(rows)))))
	return table("Program\t%Mispred (invalid deps accepted)", out)
}

// Fig7bRow reports the fraction of a held-out function's dependence
// sequences predicted incorrect (paper average ≈ 6.16%, i.e. ≈ 94%
// accuracy on completely new code).
type Fig7bRow struct {
	Program      string
	IncorrectPct float64
	Sequences    int
}

// Fig7b hides one function (a PC range of a worker thread) from
// training and measures predictions on exactly those sequences in
// held-out traces. Only concurrent programs participate ("they are the
// hardest to predict").
func Fig7b(m Mode) ([]Fig7bRow, error) {
	var rows []Fig7bRow
	for _, w := range workloads.ConcurrentKernels() {
		lo, hi := isa.ThreadBase(1), isa.ThreadBase(1)+96*isa.PCStride
		depIn := func(d deps.Dep) bool { return d.L >= lo && d.L < hi }
		inRange := func(s deps.Sequence) bool {
			for _, d := range s {
				if depIn(d) {
					return true
				}
			}
			return false
		}
		cfg := m.trainConfig(1)
		cfg.Exclude = depIn
		res, testTr, err := trainKernel(w, m, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig 7b %s: %w", w.Name, err)
		}
		// Widen the evaluation set: the held-out function contributes
		// few unique dependences per trace, so measure across extra
		// executions to keep per-program percentages meaningful.
		testTr = append(testTr, collectKernel(w, 8, 20_000)...)
		// The paper reports the percentage of *unique dependences*
		// predicted incorrectly: a dependence counts as incorrect when
		// the majority of the sequences it terminates are rejected.
		type tally struct{ ok, bad int }
		byDep := map[deps.Dep]*tally{}
		for _, t := range testTr {
			e := deps.NewExtractor(deps.ExtractorConfig{N: res.N})
			e.OnSequence = func(_ uint16, s deps.Sequence) {
				if !inRange(s) {
					return
				}
				d := s[len(s)-1]
				if !depIn(d) {
					return
				}
				tl := byDep[d]
				if tl == nil {
					tl = &tally{}
					byDep[d] = tl
				}
				if res.Net.Valid(res.Encoder(s, nil)) {
					tl.ok++
				} else {
					tl.bad++
				}
			}
			for _, r := range t.Records {
				if r.Store {
					e.Store(r.Tid, r.PC, r.Addr, r.Stack)
				} else {
					e.Load(r.Tid, r.PC, r.Addr, r.Stack)
				}
			}
		}
		wrong, total := 0, 0
		for _, tl := range byDep {
			total++
			if tl.bad > tl.ok {
				wrong++
			}
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(wrong) / float64(total)
		}
		rows = append(rows, Fig7bRow{Program: w.Name, IncorrectPct: pct, Sequences: total})
	}
	return rows, nil
}

// RenderFig7b renders the series.
func RenderFig7b(rows []Fig7bRow) string {
	out := make([]string, 0, len(rows)+1)
	var sum float64
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%.2f\t%d", r.Program, r.IncorrectPct, r.Sequences))
		sum += r.IncorrectPct
	}
	out = append(out, fmt.Sprintf("average\t%.2f\t", sum/float64(max(1, len(rows)))))
	return table("Program\t%Incorrect (new-code seqs)\t#Seqs", out)
}

// Fig8Row reports the execution overhead of a trained ACT deployment for
// one program (paper average ≈ 8.2% at the default configuration),
// summarized over several inputs (seeds).
type Fig8Row struct {
	Program     string
	OverheadPct float64       // mean over inputs
	Spread      stats.Summary // distribution over inputs
	NNStalls    int64         // total across inputs
}

// simMemConfig returns the simulated hierarchy scaled to the mode.
func simMemConfig(m Mode) mem.Config {
	if m == Full {
		return mem.Config{} // Table III defaults (32K/512K)
	}
	return mem.Config{LineSize: 64, L1Size: 8 << 10, L1Ways: 2, L2Size: 64 << 10, L2Ways: 4}
}

// deployment is a trained kernel ready for timing runs.
type deployment struct {
	workload workloads.Workload
	n        int
	encoder  deps.Encoder
	binary   *core.WeightBinary
}

// trainDeployments trains every kernel once; overhead sweeps reuse the
// results across design points.
func trainDeployments(m Mode) ([]deployment, error) {
	var out []deployment
	for _, w := range workloads.Kernels() {
		res, _, err := trainKernel(w, m, m.trainConfig(1))
		if err != nil {
			return nil, fmt.Errorf("training %s: %w", w.Name, err)
		}
		p := w.Build(1)
		binary := core.NewWeightBinary(res.Net.NIn, res.Net.NHidden)
		binary.PatchAll(p.NumThreads(), res.Net.Flatten(nil))
		out = append(out, deployment{workload: w, n: res.N, encoder: res.Encoder, binary: binary})
	}
	return out, nil
}

// Fig8 measures per-kernel execution overhead with the default design
// point (1 multiply-add unit, 8-entry FIFO) and trained weights.
func Fig8(m Mode, nnCfg nnhw.Config) ([]Fig8Row, error) {
	ds, err := trainDeployments(m)
	if err != nil {
		return nil, err
	}
	return fig8With(m, nnCfg, ds)
}

func fig8With(m Mode, nnCfg nnhw.Config, ds []deployment) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, d := range ds {
		row, err := overheadFor(d, m, nnCfg)
		if err != nil {
			return nil, fmt.Errorf("fig 8 %s: %w", d.workload.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func overheadFor(d deployment, m Mode, nnCfg nnhw.Config) (Fig8Row, error) {
	seeds := []int64{1, 2, 3}
	if m == Full {
		seeds = []int64{1, 2, 3, 4, 5, 6}
	}
	row := Fig8Row{Program: d.workload.Name}
	var pcts []float64
	for _, seed := range seeds {
		p := d.workload.Build(seed)
		cfg := sim.Config{
			Mem:    simMemConfig(m),
			NNHW:   nnCfg,
			Module: core.Config{N: d.n, Encoder: d.encoder},
			Binary: d.binary,
		}
		ov, _, ra, err := sim.Overhead(p, cfg)
		if err != nil {
			return Fig8Row{}, err
		}
		pcts = append(pcts, 100*ov)
		for _, c := range ra.Cores {
			row.NNStalls += c.NNStalls
		}
	}
	row.Spread = stats.Summarize(pcts)
	row.OverheadPct = row.Spread.Mean
	return row, nil
}

// RenderFig8 renders the series plus the average.
func RenderFig8(rows []Fig8Row) string {
	out := make([]string, 0, len(rows)+1)
	var sum float64
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%.2f ± %.2f\t%d", r.Program, r.OverheadPct, r.Spread.CI95(), r.NNStalls))
		sum += r.OverheadPct
	}
	out = append(out, fmt.Sprintf("average\t%.2f\t", sum/float64(max(1, len(rows)))))
	return table("Program\tOverhead % (±95% CI)\tNN stalls", out)
}

// Fig9Row is one sensitivity design point.
type Fig9Row struct {
	MulAddUnits int
	FIFODepth   int
	NeuronT     int
	AvgOverhead float64
}

// Fig9 sweeps the two hardware knobs of Table III — multiply-add units
// (1, 2, 5, 10) and input-FIFO depth (4, 8, 16) — reporting the average
// overhead across kernels at each point.
func Fig9(m Mode) ([]Fig9Row, error) {
	ds, err := trainDeployments(m)
	if err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, x := range []int{1, 2, 5, 10} {
		for _, f := range []int{4, 8, 16} {
			nnCfg := nnhw.Config{MulAddUnits: x, FIFODepth: f}
			fig8, err := fig8With(m, nnCfg, ds)
			if err != nil {
				return nil, err
			}
			var sum float64
			for _, r := range fig8 {
				sum += r.OverheadPct
			}
			rows = append(rows, Fig9Row{
				MulAddUnits: x, FIFODepth: f,
				NeuronT:     nnCfg.NeuronLatency(),
				AvgOverhead: sum / float64(max(1, len(fig8))),
			})
		}
	}
	return rows, nil
}

// RenderFig9 renders the sweep.
func RenderFig9(rows []Fig9Row) string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d\t%d\t%d\t%.2f", r.MulAddUnits, r.FIFODepth, r.NeuronT, r.AvgOverhead))
	}
	return table("MulAdd\tFIFO\tNeuron T\tAvg overhead %", out)
}

// Fig10Row reports training-quality impact of last-writer granularity.
type Fig10Row struct {
	Granularity uint64 // bytes (8 = word)
	MispredPct  float64
	FNPct       float64
}

// Fig10 assesses false sharing: the same training pipeline run with
// last-writer tracking at word granularity and at cache-line
// granularities. The paper's claim: the increase in misprediction from
// line-granularity tracking is insignificant.
func Fig10(m Mode) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, g := range []uint64{8, 32, 64, 128} {
		var fp, fn float64
		n := 0
		for _, w := range workloads.Kernels() {
			cfg := m.trainConfig(1)
			cfg.Granularity = g
			res, testTr, err := trainKernel(w, m, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig 10 %s g=%d: %w", w.Name, g, err)
			}
			fp += res.Mispred
			fn += train.FalseNegativeRate(res, testTr, g, false)
			n++
		}
		rows = append(rows, Fig10Row{
			Granularity: g,
			MispredPct:  100 * fp / float64(max(1, n)),
			FNPct:       100 * fn / float64(max(1, n)),
		})
	}
	return rows, nil
}

// RenderFig10 renders the sweep.
func RenderFig10(rows []Fig10Row) string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		name := fmt.Sprintf("%dB line", r.Granularity)
		if r.Granularity == 8 {
			name = "word"
		}
		out = append(out, fmt.Sprintf("%s\t%.3f\t%.3f", name, r.MispredPct, r.FNPct))
	}
	return table("Granularity\tAvg %FP\tAvg %FN", out)
}
