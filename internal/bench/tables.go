package bench

import (
	"fmt"

	"act/internal/baseline/aviso"
	"act/internal/baseline/pbi"
	"act/internal/diagnose"
	"act/internal/mem"
	"act/internal/nn"
	"act/internal/trace"
	"act/internal/train"
	"act/internal/workloads"
)

// TableIVRow is one row of Table IV: offline training of the neural
// networks.
type TableIVRow struct {
	Program    string
	Traces     int     // training traces used
	RAWDeps    int     // unique dynamic RAW dependences
	Topology   string  // chosen i-h-1
	MispredPct float64 // held-out false positives, % of dynamic sequences
}

// TableIV trains a network per benchmark program and reports the paper's
// training statistics. The paper's average misprediction is ≈0.45% (as a
// percentage of instructions); ours is reported per dynamic sequence,
// the stricter denominator.
func TableIV(m Mode) ([]TableIVRow, error) {
	var rows []TableIVRow
	for _, w := range workloads.Kernels() {
		res, _, err := trainKernel(w, m, m.trainConfig(1))
		if err != nil {
			return nil, fmt.Errorf("table IV %s: %w", w.Name, err)
		}
		rows = append(rows, TableIVRow{
			Program:    w.Name,
			Traces:     res.TrainTraces,
			RAWDeps:    res.UniqueDeps,
			Topology:   res.Topology(),
			MispredPct: 100 * res.Mispred,
		})
	}
	return rows, nil
}

// RenderTableIV renders the rows plus the average.
func RenderTableIV(rows []TableIVRow) string {
	out := make([]string, 0, len(rows)+1)
	var sum float64
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%d\t%d\t%s\t%.3f", r.Program, r.Traces, r.RAWDeps, r.Topology, r.MispredPct))
		sum += r.MispredPct
	}
	out = append(out, fmt.Sprintf("Average\t\t\t\t%.3f", sum/float64(max(1, len(rows)))))
	return table("Program\t#Traces\t#RAW Dep\tTopology\t%Mispred", out)
}

// TableVRow is one row of Table V: diagnosis of the real bugs, with the
// Aviso and PBI comparison columns.
type TableVRow struct {
	Bug        string
	Desc       string
	Status     string
	TrainRuns  int
	DebugPos   int     // position of the root cause in the debug buffer
	FilterPct  float64 // % of debug entries pruned
	Rank       int     // ACT's final rank (0 = missed)
	AvisoRank  int     // 0 = missed / not applicable
	AvisoFails int     // failure runs Aviso consumed
	PBIRank    int     // 0 = missed
	PBITotal   int     // total predicates PBI reported
}

// TableV diagnoses every real bug with ACT and both baselines.
func TableV(m Mode) ([]TableVRow, error) {
	var rows []TableVRow
	for _, b := range workloads.RealBugs() {
		row, err := tableVRow(b, m)
		if err != nil {
			return nil, fmt.Errorf("table V %s: %w", b.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func tableVRow(b workloads.Bug, m Mode) (TableVRow, error) {
	cfg := diagnoseConfig(m)
	out, err := diagnose.Diagnose(b, cfg)
	if err != nil {
		return TableVRow{}, err
	}
	row := TableVRow{
		Bug: b.Name, Desc: b.Desc, Status: b.Status,
		TrainRuns: cfg.TrainRuns,
		DebugPos:  out.DebugPos, FilterPct: out.FilterPct, Rank: out.Rank,
	}

	// Aviso: feed failure runs until the root constraint emerges.
	maxFail := 10
	nFail := maxFail
	if m == Quick {
		nFail = 5
	}
	fails, err := workloads.CollectOutcome(b, true, nFail, 200_000)
	if err == nil && len(fails) > 0 {
		p := fails[0].Program
		rootS, okS := p.FindMark(b.RootS)
		rootL, okL := p.FindMark(b.RootL)
		if okS && okL {
			row.AvisoRank, row.AvisoFails = aviso.Diagnose(runTraces(fails), rootS, rootL, aviso.Config{}, maxFail)
		}
	}

	// PBI: 15 correct runs + 1 failure, every instruction sampled.
	nCorrect := 15
	if m == Quick {
		nCorrect = 8
	}
	memCfg := mem.Config{LineSize: 64, L1Size: 8 << 10, L1Ways: 2, L2Size: 64 << 10, L2Ways: 4}
	correct, err := workloads.CollectOutcome(b, false, nCorrect, 0)
	if err != nil {
		return row, nil // PBI columns stay zero
	}
	var profiles []*pbi.RunProfile
	for _, r := range correct {
		p, sched := b.Gen(r.Seed)
		profiles = append(profiles, pbi.Profile(p, sched, memCfg))
	}
	if len(fails) > 0 {
		p, sched := b.Gen(fails[0].Seed)
		profiles = append(profiles, pbi.Profile(p, sched, memCfg))
		scored := pbi.Analyze(profiles)
		row.PBITotal = len(scored)
		fp := fails[0].Program
		var pcs []uint64
		if pc, ok := fp.FindMark(b.RootS); ok {
			pcs = append(pcs, pc)
		}
		if pc, ok := fp.FindMark(b.RootL); ok {
			pcs = append(pcs, pc)
		}
		row.PBIRank = pbi.RankOf(scored, pcs...)
	}
	return row, nil
}

func runTraces(runs []workloads.Run) []*trace.Trace {
	out := make([]*trace.Trace, len(runs))
	for i, r := range runs {
		out[i] = r.Trace
	}
	return out
}

// diagnoseConfig returns the diagnosis configuration for the mode.
// Diagnosis always searches N >= 2 — a sequence of one dependence cannot
// carry the context the atomicity-violation signatures live in — and
// samples extra wrong-writer negatives so the network rejects the
// never-observed communication a bug produces.
func diagnoseConfig(m Mode) diagnose.Config {
	if m == Full {
		return diagnose.Config{
			TrainRuns: 15, TestRuns: 5, CorrectSetRuns: 20,
			Train: train.Config{
				Ns:              []int{2, 3, 4, 5},
				RandomNegatives: 3,
				Seed:            1,
			},
			FailSeedBase: 100_000,
		}
	}
	return diagnose.Config{
		TrainRuns: 8, TestRuns: 3, CorrectSetRuns: 10,
		Train: train.Config{
			Ns:              []int{2, 3},
			Hs:              []int{6, 10},
			RandomNegatives: 3,
			Seed:            1,
			SearchFit:       nn.FitConfig{MaxEpochs: 400, Seed: 1},
			FinalFit:        nn.FitConfig{MaxEpochs: 6000, Seed: 1, Patience: 800},
		},
		FailSeedBase: 100_000,
	}
}

// RenderTableV renders the comparison table.
func RenderTableV(rows []TableVRow) string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		aviso := "-"
		if r.AvisoRank > 0 {
			aviso = fmt.Sprintf("%d (%d)", r.AvisoRank, r.AvisoFails)
		}
		pbiCol := fmt.Sprintf("- (%d)", r.PBITotal)
		if r.PBIRank > 0 {
			pbiCol = fmt.Sprintf("%d (%d)", r.PBIRank, r.PBITotal)
		}
		out = append(out, fmt.Sprintf("%s\t%d\t%d\t%.0f\t%d\t%s\t%s\t%s",
			r.Bug, r.TrainRuns, r.DebugPos, r.FilterPct, r.Rank, aviso, pbiCol, r.Status))
	}
	return table("Bug\t#Train\tDebugPos\tFilter%\tACT Rank\tAviso Rank(#fail)\tPBI Rank(total)\tStatus", out)
}

// TableVIRow is one row of Table VI: an injected bug in new code.
type TableVIRow struct {
	Program   string
	Function  string
	FilterPct float64
	Rank      int
}

// TableVI diagnoses the five injected bugs with the injected function's
// dependences withheld from training.
func TableVI(m Mode) ([]TableVIRow, error) {
	var rows []TableVIRow
	for _, ib := range workloads.InjectedBugs() {
		p, _ := ib.Gen(0)
		cfg := diagnoseConfig(m)
		cfg.Exclude = ib.NewCodeFilter(p)
		out, err := diagnose.Diagnose(ib.Bug, cfg)
		if err != nil {
			return nil, fmt.Errorf("table VI %s: %w", ib.Name, err)
		}
		rows = append(rows, TableVIRow{
			Program: ib.Kernel, Function: ib.Func,
			FilterPct: out.FilterPct, Rank: out.Rank,
		})
	}
	return rows, nil
}

// RenderTableVI renders the injected-bug table plus the average filter
// rate (the paper reports 86%).
func RenderTableVI(rows []TableVIRow) string {
	out := make([]string, 0, len(rows)+1)
	var sum float64
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%s\t%.0f\t%d", r.Program, r.Function, r.FilterPct, r.Rank))
		sum += r.FilterPct
	}
	out = append(out, fmt.Sprintf("Avg\t\t%.0f\t", sum/float64(max(1, len(rows)))))
	return table("Program\tFunction\tFilter%\tRank", out)
}
