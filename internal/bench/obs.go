package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"act/internal/core"
	"act/internal/obs"
	"act/internal/trace"
)

// Observability-overhead experiment. The obs subsystem's contract is
// "zero overhead on the hot path": every always-on instrument is one
// relaxed atomic op, and everything a scrape needs is sampled at scrape
// time. This experiment holds that contract to numbers: the same trace
// is replayed with nobody scraping (instrumented baseline — the
// counters still tick, as they always do) and with a scraper rendering
// the full registry in a tight loop, and the throughput delta is the
// cost of observation. cmd/actbench -exp obs prints the rows and, with
// -json, writes BENCH_obs.json; CI asserts OverheadPct stays within
// budget.

// ObsBudgetPct is the acceptance bound: scraped replay throughput must
// stay within this percentage of the unscraped baseline.
const ObsBudgetPct = 5.0

// ObsRow is one measured configuration.
type ObsRow struct {
	Config        string  `json:"config"`          // "baseline" (no scraper) or "scraped"
	Parallel      bool    `json:"parallel"`        // parallel sharded replay
	Records       int     `json:"records"`         // trace records replayed per pass
	Passes        int     `json:"passes"`          // timed replay passes
	Scrapes       uint64  `json:"scrapes"`         // registry renders during the timed window
	RecordsPerSec float64 `json:"records_per_sec"` // throughput over all passes
	NsPerRecord   float64 `json:"ns_per_record"`   // wall time per replayed record
	GOMAXPROCS    int     `json:"gomaxprocs"`
}

// ObsReport is the JSON document actbench -exp obs -json emits.
type ObsReport struct {
	Workload string   `json:"workload"`
	Rows     []ObsRow `json:"rows"`
	// OverheadPct is the scraped row's throughput loss against its
	// baseline, in percent, for the parallel configuration (the worst
	// case: scrapes contend with worker goroutines).
	OverheadPct float64 `json:"overhead_pct"`
	// WithinBudget reports OverheadPct <= ObsBudgetPct.
	WithinBudget bool `json:"within_budget"`
}

// obsScrapeInterval is the background scraper's cadence: 10ms is three
// orders of magnitude hotter than a production Prometheus interval, so
// an overhead within budget here is conservative.
const obsScrapeInterval = 10 * time.Millisecond

// runObs replays the trace `passes` times, optionally with a background
// scraper rendering the full metric surface (the tracker's registry plus
// obs.Default) far more often than a real scraper would.
func runObs(tr *trace.Trace, threads, passes int, parallel, scraped bool) ObsRow {
	t := pipelineTracker(threads, 0, false)
	reg := obs.NewRegistry()
	t.RegisterMetrics(reg)
	t.Replay(tr) // warm-up: module creation, lazy buffers

	var scrapes uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	if scraped {
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.WritePrometheus(io.Discard)
				obs.Default.WritePrometheus(io.Discard)
				scrapes++
				time.Sleep(obsScrapeInterval)
			}
		}()
	} else {
		close(done)
	}

	start := time.Now()
	for p := 0; p < passes; p++ {
		if parallel {
			t.ReplayParallel(tr, core.ParallelConfig{})
		} else {
			t.Replay(tr)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	<-done

	row := ObsRow{
		Parallel:   parallel,
		Records:    len(tr.Records),
		Passes:     passes,
		Scrapes:    scrapes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		row.RecordsPerSec = float64(len(tr.Records)) * float64(passes) / secs
	}
	if n := len(tr.Records) * passes; n > 0 {
		row.NsPerRecord = float64(elapsed.Nanoseconds()) / float64(n)
	}
	return row
}

// Obs measures instrumented replay with and without a live scraper,
// sequentially and in parallel, on the same radix trace the pipeline
// experiment uses. Throughput is noisy at bench scale, so each
// configuration takes the best of three runs before computing the
// overhead — the comparison is about systematic cost, not scheduler
// jitter.
func Obs(m Mode) (*ObsReport, error) {
	tr, passes := pipelineTrace(m)
	// The pipeline experiment's pass counts give a ~1ms timed window on
	// this trace — too short for a cadenced scraper to register at all.
	// Stretch the window well past the scrape interval so the measured
	// delta is the scraper's steady-state duty cycle, not startup noise.
	passes *= 25
	threads := 4
	rep := &ObsReport{Workload: "radix"}
	best := func(parallel, scraped bool) ObsRow {
		var b ObsRow
		for i := 0; i < 3; i++ {
			r := runObs(tr, threads, passes, parallel, scraped)
			if r.RecordsPerSec > b.RecordsPerSec {
				b = r
			}
		}
		return b
	}
	for _, parallel := range []bool{false, true} {
		base := best(parallel, false)
		base.Config = "baseline"
		scr := best(parallel, true)
		scr.Config = "scraped"
		rep.Rows = append(rep.Rows, base, scr)
		if parallel && base.RecordsPerSec > 0 {
			rep.OverheadPct = 100 * (base.RecordsPerSec - scr.RecordsPerSec) / base.RecordsPerSec
		}
	}
	if rep.OverheadPct < 0 {
		rep.OverheadPct = 0 // scraped run came out faster: noise floor
	}
	rep.WithinBudget = rep.OverheadPct <= ObsBudgetPct
	return rep, nil
}

// RenderObs renders the report as a table.
func RenderObs(rep *ObsReport) string {
	out := make([]string, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		mode := "sequential"
		if r.Parallel {
			mode = "parallel"
		}
		out = append(out, fmt.Sprintf("%s\t%s\t%.0f\t%.1f\t%d",
			mode, r.Config, r.RecordsPerSec, r.NsPerRecord, r.Scrapes))
	}
	verdict := "within"
	if !rep.WithinBudget {
		verdict = "OVER"
	}
	return table("Mode\tConfig\tRecords/s\tns/record\tScrapes", out) +
		fmt.Sprintf("(workload %s, GOMAXPROCS=%d; parallel scrape overhead %.2f%%, %s the %.0f%% budget)\n",
			rep.Workload, rep.Rows[0].GOMAXPROCS, rep.OverheadPct, verdict, ObsBudgetPct)
}

// MarshalObs renders the report as the BENCH_obs.json bytes.
func MarshalObs(rep *ObsReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
