// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is a function returning
// structured rows plus a renderer producing the paper-shaped table; the
// cmd/actbench binary and the repository's top-level benchmarks are thin
// wrappers around these functions.
//
// Quick mode trims trace counts and training budgets so the whole
// evaluation regenerates in seconds; full mode uses the paper-scale
// parameters (up to 100 training traces, full topology search).
package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"act/internal/nn"
	"act/internal/trace"
	"act/internal/train"
	"act/internal/vm"
	"act/internal/workloads"
)

// Mode selects the experiment scale.
type Mode int

// Experiment scales.
const (
	Quick Mode = iota // seconds: unit-test and testing.B scale
	Full              // minutes: paper-scale trace counts and budgets
)

// trainCount returns (train, test) trace counts for the mode.
func (m Mode) traceCounts() (int, int) {
	if m == Full {
		return 100, 100
	}
	return 10, 5
}

// trainConfig returns the offline-training configuration for the mode.
func (m Mode) trainConfig(seed int64) train.Config {
	if m == Full {
		return train.Config{Seed: seed}
	}
	return train.Config{
		Ns:        []int{1, 2, 3},
		Hs:        []int{4, 8, 10},
		Seed:      seed,
		SearchFit: nn.FitConfig{MaxEpochs: 300, Seed: seed},
		FinalFit:  nn.FitConfig{MaxEpochs: 3000, Seed: seed, Patience: 500},
	}
}

// collectKernel gathers n traces of a kernel over distinct seeds
// starting at base.
func collectKernel(w workloads.Workload, n int, base int64) []*trace.Trace {
	out := make([]*trace.Trace, 0, n)
	for s := base; s < base+int64(n); s++ {
		tr, res := trace.Collect(w.Build(s), w.Sched(s))
		if res.Failed || res.TimedOut {
			continue
		}
		out = append(out, tr)
	}
	return out
}

// trainKernel runs offline training for one kernel in the given mode.
func trainKernel(w workloads.Workload, m Mode, cfg train.Config) (*train.Result, []*trace.Trace, error) {
	nTrain, nTest := m.traceCounts()
	trainTr := collectKernel(w, nTrain, 0)
	testTr := collectKernel(w, nTest, 10_000)
	res, err := train.Train(trainTr, testTr, cfg)
	return res, testTr, err
}

// table renders rows via tabwriter.
func table(header string, rows []string) string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, header)
	for _, r := range rows {
		fmt.Fprintln(tw, r)
	}
	tw.Flush()
	return sb.String()
}

// defaultSchedOf returns the scheduling of the workload for a seed
// (exposed for experiments that need to re-run with identical inputs).
func defaultSchedOf(w workloads.Workload, seed int64) vm.SchedConfig { return w.Sched(seed) }
