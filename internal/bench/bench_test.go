package bench

import (
	"strings"
	"testing"
)

func TestTableIVQuick(t *testing.T) {
	rows, err := TableIV(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14 kernels", len(rows))
	}
	var sum float64
	for _, r := range rows {
		if r.RAWDeps == 0 {
			t.Errorf("%s: no RAW deps", r.Program)
		}
		if !strings.HasSuffix(r.Topology, "-1") {
			t.Errorf("%s: topology %q", r.Program, r.Topology)
		}
		sum += r.MispredPct
	}
	avg := sum / float64(len(rows))
	t.Logf("Table IV average misprediction: %.3f%%\n%s", avg, RenderTableIV(rows))
	if avg > 5 {
		t.Errorf("average FP %.2f%% too far from the paper's sub-1%% band", avg)
	}
}

func TestFig7aQuick(t *testing.T) {
	rows, err := Fig7a(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rows {
		sum += r.FNPct
	}
	avg := sum / float64(len(rows))
	t.Logf("Fig 7a average FN: %.3f%%\n%s", avg, RenderFig7a(rows))
	if avg > 25 {
		t.Errorf("average FN %.1f%%: invalid deps mostly accepted", avg)
	}
}

func TestFig7bQuick(t *testing.T) {
	rows, err := Fig7b(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for _, r := range rows {
		if r.Sequences == 0 {
			continue
		}
		sum += r.IncorrectPct
		n++
	}
	if n == 0 {
		t.Fatal("no new-code sequences found in any kernel")
	}
	avg := sum / float64(n)
	t.Logf("Fig 7b average incorrect: %.2f%%\n%s", avg, RenderFig7b(rows))
	// The paper reports ≈6% (94% accuracy); hold a generous band.
	if avg > 50 {
		t.Errorf("new-code rejection %.1f%%: adaptivity property lost", avg)
	}
}

func TestTableVIQuick(t *testing.T) {
	rows, err := TableVI(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Rank == 0 || r.Rank > 8 {
			t.Errorf("%s/%s: rank %d outside the paper's band (<=6)", r.Program, r.Function, r.Rank)
		}
	}
	t.Logf("\n%s", RenderTableVI(rows))
}

func TestNNDesign(t *testing.T) {
	rows := NNDesign()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s: pipeline does not beat NPU (%.2fx)", r.Topology, r.Speedup)
		}
	}
	t.Logf("\n%s", RenderNNDesign(rows))
}

func TestRenderersNonEmpty(t *testing.T) {
	if RenderTableIV(nil) == "" || RenderFig8(nil) == "" || RenderFig9(nil) == "" {
		t.Fatal("renderers must emit headers even with no rows")
	}
}
