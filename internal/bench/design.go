package bench

import (
	"fmt"
	"math/rand"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/isa"
	"act/internal/nn"
	"act/internal/nnhw"
	"act/internal/ranking"
	"act/internal/train"
	"act/internal/workloads"
)

// NNDesignRow compares the three-stage pipeline against the fully
// configurable time-multiplexed NPU for one topology.
type NNDesignRow struct {
	Topology     string
	PipeLatency  int // FIFO-to-result, testing mode
	PipeInterval int // steady-state initiation interval
	NPULatency   int
	NPUInterval  int
	Speedup      float64 // NPU interval / pipeline interval
}

// NNDesign justifies contribution 3: for ACT's small i-h-1 topologies
// the dedicated pipeline beats the flexible NPU on throughput, which is
// what bounds load-retirement stalls.
func NNDesign() []NNDesignRow {
	var rows []NNDesignRow
	cfg := nnhw.Config{}
	npu := nnhw.NPU{}
	for _, topo := range [][2]int{{2, 2}, {4, 4}, {6, 6}, {6, 10}, {10, 10}} {
		in, hidden := topo[0], topo[1]
		p := nnhw.NewPipeline(cfg)
		pipeLat := 1 + 2*p.Config().NeuronLatency()
		pipeInt := p.Config().TestingInterval()
		npuLat := npu.InferenceLatency(in, hidden)
		npuInt := npu.Interval(in, hidden)
		rows = append(rows, NNDesignRow{
			Topology:     fmt.Sprintf("%d-%d-1", in, hidden),
			PipeLatency:  pipeLat,
			PipeInterval: pipeInt,
			NPULatency:   npuLat,
			NPUInterval:  npuInt,
			Speedup:      float64(npuInt) / float64(pipeInt),
		})
	}
	return rows
}

// RenderNNDesign renders the comparison.
func RenderNNDesign(rows []NNDesignRow) string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%d\t%d\t%d\t%d\t%.2fx",
			r.Topology, r.PipeLatency, r.PipeInterval, r.NPULatency, r.NPUInterval, r.Speedup))
	}
	return table("Topology\tPipe lat\tPipe int\tNPU lat\tNPU int\tThroughput gain", out)
}

// AblationRow reports one design-choice ablation.
type AblationRow struct {
	Variant string
	FPPct   float64 // held-out false positives
	FNPct   float64 // synthesized invalid sequences accepted
}

// AblationEncoding compares the default two-feature encoding (separate
// store and load features, the source of the similarity property)
// against the one-feature pair-hash encoding that can only memorize.
func AblationEncoding(m Mode) ([]AblationRow, error) {
	encoders := []struct {
		name string
		enc  deps.Encoder
	}{
		{"default (S,L split)", deps.EncodeDefault},
		{"pair hash", deps.EncodePairHash},
	}
	var rows []AblationRow
	for _, e := range encoders {
		fp, fn, err := avgQuality(m, func(c *train.Config) { c.Encoder = e.enc })
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: e.name, FPPct: fp, FNPct: fn})
	}
	return rows, nil
}

// AblationNegatives compares negative-example strategies: the paper's
// before-last-store negatives alone versus added wrong-writer sampling.
func AblationNegatives(m Mode) ([]AblationRow, error) {
	variants := []struct {
		name string
		n    int
	}{
		{"before-last only", -1},
		{"+1 sampled/seq", 1},
		{"+3 sampled/seq", 3},
	}
	var rows []AblationRow
	for _, v := range variants {
		fp, fn, err := avgQuality(m, func(c *train.Config) { c.RandomNegatives = v.n })
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: v.name, FPPct: fp, FNPct: fn})
	}
	return rows, nil
}

// avgQuality trains across kernels with a modified configuration and
// averages held-out FP and FN rates.
func avgQuality(m Mode, mutate func(*train.Config)) (fpPct, fnPct float64, err error) {
	n := 0
	for _, w := range workloads.Kernels() {
		cfg := m.trainConfig(1)
		mutate(&cfg)
		res, testTr, err := trainKernel(w, m, cfg)
		if err != nil {
			return 0, 0, fmt.Errorf("ablation %s: %w", w.Name, err)
		}
		fpPct += 100 * res.Mispred
		fnPct += 100 * train.FalseNegativeRate(res, testTr, cfg.Granularity, false)
		n++
	}
	return fpPct / float64(max(1, n)), fnPct / float64(max(1, n)), nil
}

// RenderAblation renders ablation rows.
func RenderAblation(title string, rows []AblationRow) string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%.3f\t%.3f", r.Variant, r.FPPct, r.FNPct))
	}
	return table(title+"\tAvg %FP\tAvg %FN", out)
}

// ThresholdRow reports mode-switch behaviour at one misprediction
// threshold.
type ThresholdRow struct {
	ThresholdPct float64
	ModeSwitches uint64
	TrainingPct  float64 // fraction of dependences handled in training mode
}

// AblationThreshold sweeps the misprediction threshold that flips the AM
// between testing and training (Table III default: 5%). The deployment
// that exercises the knob is the adaptivity scenario: weights trained
// with one function withheld, deployed on the full program, so the new
// code mispredicts until online learning absorbs it. Low thresholds
// adapt eagerly (more time in training mode); high thresholds tolerate
// the noise and never adapt.
func AblationThreshold(m Mode) ([]ThresholdRow, error) {
	w, err := workloads.KernelByName("lu")
	if err != nil {
		return nil, err
	}
	lo, hi := isa.ThreadBase(1), isa.ThreadBase(1)+48*isa.PCStride
	cfg := m.trainConfig(1)
	cfg.Exclude = func(d deps.Dep) bool { return d.L >= lo && d.L < hi }
	res, _, err := trainKernel(w, m, cfg)
	if err != nil {
		return nil, err
	}
	replays := collectKernel(w, 6, 77_000)
	if len(replays) == 0 {
		return nil, fmt.Errorf("ablation threshold: no traces")
	}
	var rows []ThresholdRow
	for _, th := range []float64{0.005, 0.01, 0.02, 0.05, 0.10, 0.20} {
		mc := core.Config{
			N: res.N, Encoder: res.Encoder,
			MispredThreshold: th, CheckInterval: 100,
		}
		binary := core.NewWeightBinary(res.Net.NIn, res.Net.NHidden)
		binary.PatchAll(8, res.Net.Flatten(nil))
		tk := core.NewTracker(binary, core.TrackerConfig{Module: mc})
		for _, tr := range replays {
			tk.Replay(tr)
		}
		st := tk.Stats()
		pct := 0.0
		if st.Deps > 0 {
			pct = 100 * float64(st.TrainingDeps) / float64(st.Deps)
		}
		rows = append(rows, ThresholdRow{
			ThresholdPct: 100 * th,
			ModeSwitches: st.ModeSwitches,
			TrainingPct:  pct,
		})
	}
	return rows, nil
}

// RenderThreshold renders the sweep.
func RenderThreshold(rows []ThresholdRow) string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%.1f%%\t%d\t%.1f", r.ThresholdPct, r.ModeSwitches, r.TrainingPct))
	}
	return table("Threshold\tMode switches\t%Deps in training", out)
}

// QuantRow reports classification disagreement after fixed-point weight
// quantization at one precision.
type QuantRow struct {
	FracBits     int
	Disagreement float64 // fraction of held-out sequences reclassified
}

// AblationQuantization asks how many fractional bits the hardware's
// weight registers need: each kernel's trained network is quantized to
// signed 16-bit Qm.f and compared against the float network on the
// held-out sequences.
func AblationQuantization(m Mode) ([]QuantRow, error) {
	type heldout struct {
		net *nn.Network
		xs  [][]float64
	}
	var sets []heldout
	for _, w := range workloads.Kernels() {
		res, testTr, err := trainKernel(w, m, m.trainConfig(1))
		if err != nil {
			return nil, fmt.Errorf("quantization %s: %w", w.Name, err)
		}
		var xs [][]float64
		seen := map[string]bool{}
		for _, t := range testTr {
			e := deps.NewExtractor(deps.ExtractorConfig{N: res.N})
			e.OnSequence = func(_ uint16, s deps.Sequence) {
				if k := s.Key(); !seen[k] {
					seen[k] = true
					xs = append(xs, res.Encoder(s, nil))
				}
			}
			for _, r := range t.Records {
				if r.Store {
					e.Store(r.Tid, r.PC, r.Addr, r.Stack)
				} else {
					e.Load(r.Tid, r.PC, r.Addr, r.Stack)
				}
			}
		}
		sets = append(sets, heldout{net: res.Net, xs: xs})
	}
	var rows []QuantRow
	scratch := make(map[*nn.Network]*nn.Network, len(sets))
	for _, bits := range []int{12, 9, 6, 4, 2} {
		var sum float64
		for _, h := range sets {
			if scratch[h.net] == nil {
				scratch[h.net] = h.net.Clone()
			}
			sum += nn.QuantizedDisagreementInto(scratch[h.net], h.net, bits, h.xs)
		}
		rows = append(rows, QuantRow{FracBits: bits, Disagreement: sum / float64(len(sets))})
	}
	return rows, nil
}

// RenderQuantization renders the sweep.
func RenderQuantization(rows []QuantRow) string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("Q%d.%d\t%.4f", 15-r.FracBits, r.FracBits, r.Disagreement))
	}
	return table("Weight format\tAvg disagreement", out)
}

// RankingRow reports one ranking strategy's outcome across bugs.
type RankingRow struct {
	Strategy  string
	AvgRank   float64 // mean root-cause rank over diagnosed bugs
	Diagnosed int     // bugs with the root cause ranked at all
}

// AblationRanking tests the paper's ranking argument (Section III-D)
// directly. A failure's Debug Buffer contains the root cause — the
// sequence that agrees with correct behaviour the longest before
// diverging — and a cascade of post-failure chaos: once execution is off
// the rails, subsequent sequences match correct behaviour barely at all,
// and the network rejects them with high confidence. The paper ranks by
// most-matched; the alternatives rank the chaos first. Scenarios are
// generated at scale from that model (end-to-end diagnoses on this
// substrate prune down to a single candidate, where every ordering is
// trivially identical).
func AblationRanking(m Mode) ([]RankingRow, error) {
	const (
		trials  = 200
		chains  = 20 // correct sequences per scenario
		nseq    = 3
		cascade = 8 // chaos entries following the root
	)
	rng := rand.New(rand.NewSource(42))
	mkDep := func() deps.Dep {
		return deps.Dep{S: rng.Uint64() | 1, L: rng.Uint64() | 1, Inter: rng.Intn(2) == 0}
	}
	strategies := []struct {
		name string
		s    ranking.Strategy
	}{
		{"most matched (paper)", ranking.MostMatched},
		{"most mismatched", ranking.MostMismatched},
		{"NN output only", ranking.OutputOnly},
	}
	sums := make([]int, len(strategies))
	for trial := 0; trial < trials; trial++ {
		correct := deps.NewSeqSet(nseq)
		var chainsList []deps.Sequence
		for i := 0; i < chains; i++ {
			s := deps.Sequence{mkDep(), mkDep(), mkDep()}
			correct.Add(s)
			chainsList = append(chainsList, s)
		}
		// The root: a correct chain whose final dependence went wrong.
		rootSeq := chainsList[rng.Intn(chains)].Clone()
		bad := mkDep()
		rootSeq[nseq-1] = bad
		var debug []core.DebugEntry
		debug = append(debug, core.DebugEntry{Seq: rootSeq, Output: 0.30 + 0.15*rng.Float64()})
		// The cascade: wrong instructions executing — sequences that
		// match correct behaviour at most in their first position, and
		// that the network rejects emphatically.
		for i := 0; i < cascade; i++ {
			s := deps.Sequence{mkDep(), mkDep(), mkDep()}
			if rng.Intn(2) == 0 {
				s[0] = chainsList[rng.Intn(chains)][0]
			}
			debug = append(debug, core.DebugEntry{Seq: s, Output: 0.05 * rng.Float64()})
		}
		match := func(s deps.Sequence) bool { return s[len(s)-1] == bad }
		for i, st := range strategies {
			rep := ranking.RankWith(debug, correct, st.s)
			if r := rep.RankOf(match); r > 0 {
				sums[i] += r
			} else {
				sums[i] += len(debug) + 1 // missed entirely
			}
		}
	}
	var rows []RankingRow
	for i, st := range strategies {
		rows = append(rows, RankingRow{
			Strategy:  st.name,
			AvgRank:   float64(sums[i]) / float64(trials),
			Diagnosed: trials,
		})
	}
	return rows, nil
}

// RenderRanking renders the strategy comparison.
func RenderRanking(rows []RankingRow) string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%s\t%.2f\t%d", r.Strategy, r.AvgRank, r.Diagnosed))
	}
	return table("Ranking strategy\tAvg root rank\tDiagnosed", out)
}
