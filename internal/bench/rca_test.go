package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRCAQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs seven labeled diagnosis pipelines")
	}
	rep, err := RCA(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bugs) != len(rcaQuickBugs()) {
		t.Fatalf("bugs = %d, want %d", len(rep.Bugs), len(rcaQuickBugs()))
	}
	// The floors are the CI gate; the quick set must clear them or the
	// gate is asserting nothing.
	if !rep.WithinFloor {
		t.Errorf("quick calibration below floor: kind=%.3f top1=%.3f top3=%.3f",
			rep.KindAccuracy, rep.Top1Site, rep.Top3Site)
	}
	if rep.CalibrationError < 0 || rep.CalibrationError > 0.5 {
		t.Errorf("calibration error = %.3f", rep.CalibrationError)
	}

	out := RenderRCA(rep)
	for _, want := range []string{"Bug", "kind accuracy", "within"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	data, err := MarshalRCA(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded RCAReport
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("BENCH_rca.json does not parse: %v", err)
	}
	if decoded.WithinFloor != rep.WithinFloor || len(decoded.Bugs) != len(rep.Bugs) {
		t.Error("JSON round trip lost fields")
	}
}
