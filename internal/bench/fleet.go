package bench

import (
	"encoding/json"
	"fmt"
	"time"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/fleet"
	"act/internal/fleet/shard"
	"act/internal/wire"
)

// Sharded-tier benchmark. The fleet tier's contract is graceful
// degradation: losing one of N shard collectors mid-ingest must not
// cost more than a constant factor in ingest throughput or rollup
// latency — the survivors absorb the re-routed traffic and the rollup
// merges the dead shard's last snapshot. This experiment measures both
// sides at 1k and 10k simulated agents on an in-process 4-shard ring:
// the healthy arm routes every agent's evidence by consistent hash,
// the failover arm kills one shard halfway through and re-routes the
// rest to its ring successor. cmd/actbench -exp fleet prints the rows
// and, with -json, writes BENCH_fleet.json; CI asserts DegradationX
// stays within budget.

// FleetBudgetX is the acceptance bound: the failover arm's agents/sec
// and rollup latency must stay within this factor of the healthy arm.
const FleetBudgetX = 2.0

// fleetBenchShards is the ring size; one shard dies in the failover arm.
const fleetBenchShards = 4

// FleetRow is one measured configuration.
type FleetRow struct {
	Agents       int     `json:"agents"`         // simulated agents (one run each)
	Shards       int     `json:"shards"`         // ring size
	Failover     bool    `json:"failover"`       // one shard killed at the halfway mark
	Batches      int     `json:"batches"`        // shard-routed batches ingested
	AgentsPerSec float64 `json:"agents_per_sec"` // ingest throughput over the whole arm
	RollupMs     float64 `json:"rollup_ms"`      // merge all shard states + top-10 ranking
	Sequences    int     `json:"sequences"`      // distinct sequences in the merged rollup
	Completeness float64 `json:"completeness"`   // shards merged / shards expected
	TopSeqLen    int     `json:"top_seq_len"`    // sanity: the top candidate's sequence length
}

// FleetReport is the JSON document actbench -exp fleet -json emits.
type FleetReport struct {
	Shards int        `json:"shards"`
	Rows   []FleetRow `json:"rows"`
	// IngestDegradationX is the worst healthy/failover agents-per-sec
	// ratio across scales; RollupDegradationX the worst failover/healthy
	// rollup-latency ratio.
	IngestDegradationX float64 `json:"ingest_degradation_x"`
	RollupDegradationX float64 `json:"rollup_degradation_x"`
	// WithinBudget reports both degradation factors <= FleetBudgetX.
	WithinBudget bool `json:"within_budget"`
}

// fleetAgentBatch builds agent i's single shipment. Three out of four
// agents are failing runs logging the shared bug sequence, a shared
// noise sequence, and one run-unique sequence; the fourth is a correct
// run logging only the noise, so the rollup's Correct Set prunes it.
func fleetAgentBatch(i int) *wire.Batch {
	seq := func(ids ...uint64) deps.Sequence {
		s := make(deps.Sequence, len(ids))
		for j, id := range ids {
			s[j] = deps.Dep{S: id << 4, L: id<<4 + 1, Inter: true}
		}
		return s
	}
	entry := func(s deps.Sequence, out float64) core.DebugEntry {
		return core.DebugEntry{Seq: s, Output: out, Mode: core.Testing}
	}
	u := uint64(i)
	b := &wire.Batch{Agent: fmt.Sprintf("a%d", i), Run: 1}
	if i%4 == 3 {
		b.Outcome = wire.OutcomeCorrect
		b.Entries = []core.DebugEntry{entry(seq(4, 5, 6), -0.5)}
		return b
	}
	b.Outcome = wire.OutcomeFailing
	b.Entries = []core.DebugEntry{
		entry(seq(1, 2, 3), -1.5),
		entry(seq(4, 5, 6), -0.5),
		entry(seq(1000+u, 2000+u, 3000+u), -2.0),
	}
	return b
}

// runFleetArm ingests `agents` simulated agents into a fresh ring of
// shard collectors, optionally killing one shard at the halfway mark,
// and then rolls the shard states up into one ranked report.
func runFleetArm(agents int, failover bool) FleetRow {
	names := make([]string, fleetBenchShards)
	collectors := make([]*fleet.Collector, fleetBenchShards)
	for i := range names {
		names[i] = fmt.Sprintf("shard%d", i)
		collectors[i] = fleet.NewCollector(fleet.CollectorConfig{})
	}
	ring := shard.NewRing(names, 0)
	alive := make([]bool, fleetBenchShards)
	for i := range alive {
		alive[i] = true
	}
	// The dead shard's evidence survives as the state blob it exported
	// before dying — the same bytes actd snapshots on shutdown.
	var deadState []byte
	deadAt, victim := agents/2, 0

	row := FleetRow{Agents: agents, Shards: fleetBenchShards, Failover: failover}
	sub := make([][]core.DebugEntry, fleetBenchShards)
	start := time.Now()
	for i := 0; i < agents; i++ {
		if failover && i == deadAt {
			deadState = collectors[victim].ExportState()
			alive[victim] = false
		}
		b := fleetAgentBatch(i)
		for s := range sub {
			sub[s] = sub[s][:0]
		}
		for _, e := range b.Entries {
			s := ring.Route(e.Seq.Hash())
			for !alive[s] {
				s = ring.Successor(s)
			}
			sub[s] = append(sub[s], e)
		}
		for s, entries := range sub {
			if len(entries) == 0 {
				continue
			}
			collectors[s].Ingest(&wire.Batch{
				Agent: b.Agent, Run: b.Run, Seq: uint64(s),
				Outcome: b.Outcome, Entries: entries,
			})
			row.Batches++
		}
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		row.AgentsPerSec = float64(agents) / secs
	}

	ru := shard.NewRollup(shard.RollupConfig{Expected: names})
	start = time.Now()
	for i, c := range collectors {
		if alive[i] {
			ru.AddState(names[i], c.ExportState())
		}
	}
	if deadState != nil {
		ru.AddState(names[victim], deadState)
	}
	top := ru.TopK(10)
	row.RollupMs = float64(time.Since(start).Microseconds()) / 1e3
	row.Sequences = ru.Collector().Sequences()
	row.Completeness = ru.Completeness()
	if len(top) > 0 {
		row.TopSeqLen = len(top[0].Entry.Seq)
	}
	return row
}

// Fleet measures sharded ingest and rollup with and without one shard
// failing mid-ingest, at 1k and 10k simulated agents (in-process, so
// both scales are cheap in either mode). Throughput is noisy at bench
// scale, so each configuration keeps the best throughput and the best
// rollup latency over repeated runs before computing the degradation
// factors — the comparison is about systematic cost, not scheduler
// jitter.
func Fleet(m Mode) (*FleetReport, error) {
	scales := []int{1000, 10000}
	tries := 3
	if m == Full {
		tries = 5
	}
	rep := &FleetReport{Shards: fleetBenchShards}
	best := func(agents int, failover bool) FleetRow {
		var b FleetRow
		bestRollup := 0.0
		for i := 0; i < tries; i++ {
			r := runFleetArm(agents, failover)
			if r.AgentsPerSec > b.AgentsPerSec {
				b = r
			}
			if bestRollup == 0 || (r.RollupMs > 0 && r.RollupMs < bestRollup) {
				bestRollup = r.RollupMs
			}
		}
		b.RollupMs = bestRollup
		return b
	}
	for _, agents := range scales {
		healthy := best(agents, false)
		failed := best(agents, true)
		rep.Rows = append(rep.Rows, healthy, failed)
		if failed.AgentsPerSec > 0 {
			if x := healthy.AgentsPerSec / failed.AgentsPerSec; x > rep.IngestDegradationX {
				rep.IngestDegradationX = x
			}
		}
		if healthy.RollupMs > 0 {
			if x := failed.RollupMs / healthy.RollupMs; x > rep.RollupDegradationX {
				rep.RollupDegradationX = x
			}
		}
	}
	if rep.IngestDegradationX < 1 {
		rep.IngestDegradationX = 1 // failover arm came out faster: noise floor
	}
	if rep.RollupDegradationX < 1 {
		rep.RollupDegradationX = 1
	}
	rep.WithinBudget = rep.IngestDegradationX <= FleetBudgetX &&
		rep.RollupDegradationX <= FleetBudgetX
	return rep, nil
}

// RenderFleet renders the report as a table.
func RenderFleet(rep *FleetReport) string {
	out := make([]string, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		arm := "healthy"
		if r.Failover {
			arm = "failover"
		}
		out = append(out, fmt.Sprintf("%d\t%s\t%.0f\t%.2f\t%d\t%.2f",
			r.Agents, arm, r.AgentsPerSec, r.RollupMs, r.Sequences, r.Completeness))
	}
	verdict := "within"
	if !rep.WithinBudget {
		verdict = "OVER"
	}
	return table("Agents\tArm\tAgents/s\tRollup ms\tSequences\tCompleteness", out) +
		fmt.Sprintf("(%d shards, one killed mid-ingest in the failover arm; degradation ingest %.2fx, rollup %.2fx, %s the %.1fx budget)\n",
			rep.Shards, rep.IngestDegradationX, rep.RollupDegradationX, verdict, FleetBudgetX)
}

// MarshalFleet renders the report as the BENCH_fleet.json bytes.
func MarshalFleet(rep *FleetReport) ([]byte, error) {
	return json.MarshalIndent(rep, "", "  ")
}
