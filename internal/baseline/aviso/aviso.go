// Package aviso implements the Aviso-style learning baseline of the
// Table V comparison. Aviso learns scheduling constraints from *failing*
// executions: an event is a shared-memory access (thread, instruction
// address), and a candidate constraint is an ordered cross-thread event
// pair observed shortly before a failure. Candidates are scored by how
// reliably they precede failures and how close to the failure they sit;
// diagnosing a bug means finding a constraint involving the root-cause
// instructions among the top-ranked candidates.
//
// Two properties the paper highlights carry over: Aviso needs the
// failure to recur (often several times) before the constraint emerges,
// and it has nothing to say about single-threaded executions.
package aviso

import (
	"fmt"
	"sort"

	"act/internal/trace"
)

// Config tunes the learner.
type Config struct {
	// Window is how many shared-access events before the failure are
	// mined for constraint pairs; default 100.
	Window int
	// MaxPairGap is the maximum number of events between the two halves
	// of a candidate pair; default 5.
	MaxPairGap int
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 100
	}
	if c.MaxPairGap == 0 {
		c.MaxPairGap = 5
	}
	return c
}

// Constraint is an ordered cross-thread event pair (first must not be
// immediately followed by second).
type Constraint struct {
	FirstPC  uint64
	SecondPC uint64
}

// Candidate is a scored constraint.
type Candidate struct {
	Constraint Constraint
	Score      float64
	Occurrence int // failing runs the pair appeared in
}

// Learner accumulates failing executions.
type Learner struct {
	cfg      Config
	failures int
	scores   map[Constraint]*Candidate
}

// New returns an empty learner.
func New(cfg Config) *Learner {
	return &Learner{cfg: cfg.withDefaults(), scores: make(map[Constraint]*Candidate)}
}

// Failures returns how many failing runs the learner has seen.
func (l *Learner) Failures() int { return l.failures }

// AddFailure mines one failing execution's trace. Only multi-threaded
// traces contribute: Aviso's events are scheduling events.
func (l *Learner) AddFailure(t *trace.Trace) {
	l.failures++
	// The event stream: shared accesses in execution order.
	recs := t.Records
	if len(recs) > 0 {
		start := len(recs) - l.cfg.Window
		if start < 0 {
			start = 0
		}
		recs = recs[start:]
	}
	seen := make(map[Constraint]bool)
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs) && j <= i+l.cfg.MaxPairGap; j++ {
			if recs[i].Tid == recs[j].Tid {
				continue // constraints order events of different threads
			}
			c := Constraint{FirstPC: recs[i].PC, SecondPC: recs[j].PC}
			// Proximity to the failure end of the window scores higher.
			w := float64(j) / float64(len(recs))
			cand, ok := l.scores[c]
			if !ok {
				cand = &Candidate{Constraint: c}
				l.scores[c] = cand
			}
			cand.Score += w
			if !seen[c] {
				cand.Occurrence++
				seen[c] = true
			}
		}
	}
}

// Ranked returns the candidates best first. Pairs that recur across
// failures dominate one-off pairs.
func (l *Learner) Ranked() []Candidate {
	out := make([]Candidate, 0, len(l.scores))
	for _, c := range l.scores {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Occurrence != b.Occurrence {
			return a.Occurrence > b.Occurrence
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		// Deterministic tie-break.
		if a.Constraint.FirstPC != b.Constraint.FirstPC {
			return a.Constraint.FirstPC < b.Constraint.FirstPC
		}
		return a.Constraint.SecondPC < b.Constraint.SecondPC
	})
	return out
}

// RankOf returns the 1-based rank of the first candidate whose pair
// includes both given instruction addresses (in either role), or 0 when
// no such constraint was learned.
func (l *Learner) RankOf(pcA, pcB uint64) int {
	for i, c := range l.Ranked() {
		f, s := c.Constraint.FirstPC, c.Constraint.SecondPC
		if (f == pcA && s == pcB) || (f == pcB && s == pcA) {
			return i + 1
		}
	}
	return 0
}

// Diagnose feeds failing runs one at a time (up to maxFailures) until a
// constraint involving the root-cause pair is learned, returning its
// rank and the failures consumed (rank 0 if never found — e.g. for
// sequential bugs).
func Diagnose(failures []*trace.Trace, rootS, rootL uint64, cfg Config, maxFailures int) (rank, used int) {
	l := New(cfg)
	for i, f := range failures {
		if i >= maxFailures {
			break
		}
		l.AddFailure(f)
		if r := l.RankOf(rootS, rootL); r != 0 {
			return r, l.Failures()
		}
	}
	return 0, l.Failures()
}

// String renders a constraint.
func (c Constraint) String() string {
	return fmt.Sprintf("%#x ↛ %#x", c.FirstPC, c.SecondPC)
}
