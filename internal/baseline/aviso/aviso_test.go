package aviso

import (
	"testing"

	"act/internal/trace"
	"act/internal/workloads"
)

func collectTraces(runs []workloads.Run) []*trace.Trace {
	out := make([]*trace.Trace, len(runs))
	for i, r := range runs {
		out[i] = r.Trace
	}
	return out
}

func failures(t *testing.T, name string, n int) ([]workloads.Run, workloads.Bug) {
	t.Helper()
	b, err := workloads.BugByName(name)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := workloads.CollectOutcome(b, true, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return runs, b
}

func TestDiagnoseApacheEventually(t *testing.T) {
	runs, b := failures(t, "apache", 10)
	p := runs[0].Program
	rootS, rootL := p.MarkPC("t2.freeStore"), p.MarkPC("t1.useLoad")
	rank, used := Diagnose(collectTraces(runs), rootS, rootL, Config{}, 10)
	_ = b
	t.Logf("apache: aviso rank=%d after %d failure(s)", rank, used)
	if rank == 0 {
		t.Fatal("aviso never learned the root constraint")
	}
	if used < 1 {
		t.Fatal("no failures consumed")
	}
}

func TestSequentialBugsOutOfScope(t *testing.T) {
	runs, _ := failures(t, "gzip", 5)
	p := runs[0].Program
	rank, _ := Diagnose(collectTraces(runs), p.MarkPC("t0.S3"), p.MarkPC("t0.S2"), Config{}, 5)
	if rank != 0 {
		t.Fatalf("aviso found a cross-thread constraint in a single-threaded program (rank %d)", rank)
	}
}

func TestMoreFailuresNeverHurt(t *testing.T) {
	runs, _ := failures(t, "mysql2", 10)
	p := runs[0].Program
	rootS, rootL := p.MarkPC("t0.clrDataStore"), p.MarkPC("t1.monUse")
	l := New(Config{})
	found := 0
	for _, r := range runs {
		l.AddFailure(r.Trace)
		if rk := l.RankOf(rootS, rootL); rk != 0 && found == 0 {
			found = l.Failures()
		}
	}
	t.Logf("mysql2: first found after %d failures, final rank %d", found, l.RankOf(rootS, rootL))
	if found == 0 {
		t.Fatal("constraint never learned in 10 failures")
	}
}

func TestRankedDeterministic(t *testing.T) {
	runs, _ := failures(t, "apache", 3)
	a := New(Config{})
	b := New(Config{})
	for _, r := range runs {
		a.AddFailure(r.Trace)
		b.AddFailure(r.Trace)
	}
	ra, rb := a.Ranked(), b.Ranked()
	if len(ra) != len(rb) {
		t.Fatal("nondeterministic candidate counts")
	}
	for i := range ra {
		if ra[i].Constraint != rb[i].Constraint {
			t.Fatalf("rank %d differs: %v vs %v", i, ra[i].Constraint, rb[i].Constraint)
		}
	}
}
