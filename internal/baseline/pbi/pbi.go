// Package pbi implements the PBI-style sampling baseline of the Table V
// comparison. PBI diagnoses production failures with hardware
// performance events: each executed instruction is annotated with a
// cache event (which level/state served the access) or a branch outcome,
// forming predicates (instruction, event). Predicates are scored with
// cooperative-bug-isolation statistics over a population of correct and
// failing runs — Increase(P) = Failure(P) − Context(P) — and the
// top-ranked predicates point at the failure.
//
// As in the paper's comparison, this is an idealized PBI: instead of
// sampling 1-in-1000 instructions it observes every instruction, the
// most favourable configuration a single failure run allows.
package pbi

import (
	"fmt"
	"math"
	"sort"

	"act/internal/isa"
	"act/internal/mem"
	"act/internal/program"
	"act/internal/vm"
)

// Event is the hardware event a predicate tests.
type Event uint8

// Predicate events: where a memory access was served (a proxy for the
// MESI state it found), and branch outcomes.
const (
	EvL1 Event = iota
	EvL2
	EvRemote // served by another core's cache (was Modified elsewhere)
	EvMemory
	EvTaken
	EvNotTaken
	evCount
)

// String names the event.
func (e Event) String() string {
	return [...]string{"L1", "L2", "remote", "memory", "taken", "not-taken"}[e]
}

// Predicate pairs an instruction with an event.
type Predicate struct {
	PC    uint64
	Event Event
}

// String renders the predicate.
func (p Predicate) String() string { return fmt.Sprintf("(%#x, %s)", p.PC, p.Event) }

// RunProfile records which predicates were observed and which were true
// in one execution.
type RunProfile struct {
	observed map[uint64]bool
	truePred map[Predicate]bool
	failed   bool
}

// Profile executes the program once and collects its predicate profile,
// sampling every instruction. Memory events come from replaying the
// access stream through the simulated hierarchy (one core per thread).
func Profile(p *program.Program, sched vm.SchedConfig, memCfg mem.Config) *RunProfile {
	return ProfileSampled(p, sched, memCfg, 1)
}

// ProfileSampled is Profile with PBI's real sampling: only one in every
// `rate` instructions records its predicate (the paper's deployment uses
// rate 1000; the comparison compensates a single failure run by
// sampling every instruction, rate 1). Memory state is still updated by
// every access — sampling affects observation, not the machine.
func ProfileSampled(p *program.Program, sched vm.SchedConfig, memCfg mem.Config, rate int) *RunProfile {
	if memCfg.Cores < p.NumThreads() {
		memCfg.Cores = p.NumThreads()
	}
	if rate < 1 {
		rate = 1
	}
	h := mem.New(memCfg)
	prof := &RunProfile{observed: make(map[uint64]bool), truePred: make(map[Predicate]bool)}
	prev := sched.OnEvent
	count := 0
	sample := func() bool {
		count++
		return count%rate == 0
	}
	record := func(pc uint64, ev Event) {
		if !sample() {
			return
		}
		prof.observed[pc] = true
		prof.truePred[Predicate{PC: pc, Event: ev}] = true
	}
	sched.OnEvent = func(ev vm.Event) {
		switch {
		case ev.Op == isa.Load || ev.Op == isa.Atomic:
			r := h.Access(ev.Tid, ev.Addr, ev.Op == isa.Atomic, ev.PC)
			record(ev.PC, memEvent(r.Level))
		case ev.Op == isa.Store:
			r := h.Access(ev.Tid, ev.Addr, true, ev.PC)
			record(ev.PC, memEvent(r.Level))
		case ev.Op.IsBranch():
			record(ev.PC, branchEvent(ev))
		}
		if prev != nil {
			prev(ev)
		}
	}
	res := vm.Run(p, sched)
	prof.failed = res.Failed
	return prof
}

func memEvent(level mem.Level) Event {
	switch level {
	case mem.L1:
		return EvL1
	case mem.L2:
		return EvL2
	case mem.Remote:
		return EvRemote
	default:
		return EvMemory
	}
}

// branchEvent maps a branch's resolution to its predicate event. The VM
// reports the outcome in Event.Value (1 = taken).
func branchEvent(ev vm.Event) Event {
	if ev.Value != 0 {
		return EvTaken
	}
	return EvNotTaken
}

// Scored is a ranked predicate.
type Scored struct {
	Predicate Predicate
	Increase  float64
	Failure   float64
	Context   float64
}

// Analyze scores every predicate over the run population and returns
// them ranked by Increase (descending), plus the total predicate count
// (the paper's "Total pred." column).
func Analyze(profiles []*RunProfile) []Scored {
	type counts struct {
		fTrue, sTrue int
		fObs, sObs   int
	}
	byPred := make(map[Predicate]*counts)
	for _, r := range profiles {
		for p := range r.truePred {
			c := byPred[p]
			if c == nil {
				c = &counts{}
				byPred[p] = c
			}
			if r.failed {
				c.fTrue++
			} else {
				c.sTrue++
			}
		}
	}
	// Observation counts are per instruction.
	for p, c := range byPred {
		for _, r := range profiles {
			if r.observed[p.PC] {
				if r.failed {
					c.fObs++
				} else {
					c.sObs++
				}
			}
		}
	}
	out := make([]Scored, 0, len(byPred))
	for p, c := range byPred {
		failure := ratio(c.fTrue, c.fTrue+c.sTrue)
		context := ratio(c.fObs, c.fObs+c.sObs)
		out = append(out, Scored{Predicate: p, Increase: failure - context, Failure: failure, Context: context})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if math.Abs(a.Increase-b.Increase) > 1e-12 {
			return a.Increase > b.Increase
		}
		if a.Predicate.PC != b.Predicate.PC {
			return a.Predicate.PC < b.Predicate.PC
		}
		return a.Predicate.Event < b.Predicate.Event
	})
	return out
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// RankOf returns the 1-based rank of the first *positive-Increase*
// predicate attached to one of the given instruction addresses, or 0
// when PBI misses the bug (no positively failure-correlated predicate on
// the root instructions — e.g. the branch outcomes or cache events do
// not differ between correct and failing runs).
func RankOf(scored []Scored, pcs ...uint64) int {
	for i, s := range scored {
		if s.Increase <= 0 {
			break // ranked list's useful portion is the positive prefix
		}
		for _, pc := range pcs {
			if s.Predicate.PC == pc {
				return i + 1
			}
		}
	}
	return 0
}
