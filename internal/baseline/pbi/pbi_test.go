package pbi

import (
	"testing"

	"act/internal/mem"
	"act/internal/vm"
	"act/internal/workloads"
)

// population profiles 15 correct + 1 failing run of a bug, the paper's
// PBI comparison setup.
func population(t *testing.T, name string) ([]*RunProfile, workloads.Bug, *vm.SchedConfig) {
	t.Helper()
	b, err := workloads.BugByName(name)
	if err != nil {
		t.Fatal(err)
	}
	memCfg := mem.Config{LineSize: 64, L1Size: 4 << 10, L1Ways: 2, L2Size: 32 << 10, L2Ways: 4}
	var profiles []*RunProfile
	correct, err := workloads.CollectOutcome(b, false, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range correct {
		p, sched := b.Gen(r.Seed)
		profiles = append(profiles, Profile(p, sched, memCfg))
	}
	fails, err := workloads.CollectOutcome(b, true, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	p, sched := b.Gen(fails[0].Seed)
	profiles = append(profiles, Profile(p, sched, memCfg))
	return profiles, b, &sched
}

func TestProfilesMarkOutcome(t *testing.T) {
	profiles, _, _ := population(t, "apache")
	failed := 0
	for _, p := range profiles {
		if p.failed {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("failing profiles = %d, want 1", failed)
	}
}

func TestAnalyzeRanksApache(t *testing.T) {
	profiles, b, _ := population(t, "apache")
	scored := Analyze(profiles)
	if len(scored) == 0 {
		t.Fatal("no predicates")
	}
	fails, err := workloads.CollectOutcome(b, true, 1, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	p := fails[0].Program
	rank := RankOf(scored, p.MarkPC("t1.useLoad"), p.MarkPC("t2.freeStore"))
	t.Logf("apache: PBI rank %d of %d predicates", rank, len(scored))
	// PBI may or may not isolate the bug from one failure run; the
	// experiment's point is the comparison, but the machinery must at
	// least produce a consistent ranking.
	for i := 1; i < len(scored); i++ {
		if scored[i].Increase > scored[i-1].Increase+1e-12 {
			t.Fatal("ranking not sorted by Increase")
		}
	}
}

func TestBranchPredicates(t *testing.T) {
	profiles, _, _ := population(t, "gzip")
	scored := Analyze(profiles)
	hasBranch := false
	for _, s := range scored {
		if s.Predicate.Event == EvTaken || s.Predicate.Event == EvNotTaken {
			hasBranch = true
			break
		}
	}
	if !hasBranch {
		t.Fatal("no branch predicates collected")
	}
}

func TestIncreaseBounds(t *testing.T) {
	profiles, _, _ := population(t, "mysql2")
	for _, s := range Analyze(profiles) {
		if s.Increase < -1.000001 || s.Increase > 1.000001 {
			t.Fatalf("Increase out of range: %+v", s)
		}
		if s.Failure < 0 || s.Failure > 1 || s.Context < 0 || s.Context > 1 {
			t.Fatalf("probabilities out of range: %+v", s)
		}
	}
}

func TestSamplingReducesObservations(t *testing.T) {
	b, err := workloads.BugByName("mysql2")
	if err != nil {
		t.Fatal(err)
	}
	memCfg := mem.Config{LineSize: 64, L1Size: 4 << 10, L1Ways: 2, L2Size: 32 << 10, L2Ways: 4}
	p, sched := b.Gen(3)
	full := ProfileSampled(p, sched, memCfg, 1)
	p, sched = b.Gen(3)
	sparse := ProfileSampled(p, sched, memCfg, 50)
	if len(sparse.truePred) >= len(full.truePred) {
		t.Fatalf("sampling 1/50 kept %d predicates vs %d at full rate",
			len(sparse.truePred), len(full.truePred))
	}
	if len(sparse.truePred) == 0 {
		t.Fatal("sampling recorded nothing at all")
	}
}

func TestRankOfMissingPC(t *testing.T) {
	profiles, _, _ := population(t, "seq")
	scored := Analyze(profiles)
	if rank := RankOf(scored, 0xdeadbeef); rank != 0 {
		t.Fatalf("rank %d for a PC that never executed", rank)
	}
}
