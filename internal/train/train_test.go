package train

import (
	"testing"

	"act/internal/deps"
	"act/internal/isa"
	"act/internal/nn"
	"act/internal/trace"
	"act/internal/workloads"
)

// collect gathers traces from a kernel across distinct seeds.
func collect(t *testing.T, name string, seeds []int64) []*trace.Trace {
	t.Helper()
	w, err := workloads.KernelByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var out []*trace.Trace
	for _, s := range seeds {
		tr, res := trace.Collect(w.Build(s), w.Sched(s))
		if res.Failed {
			t.Fatalf("%s seed %d failed: %s", name, s, res.Reason)
		}
		out = append(out, tr)
	}
	return out
}

func seedsRange(lo, hi int64) []int64 {
	var s []int64
	for i := lo; i < hi; i++ {
		s = append(s, i)
	}
	return s
}

// testCfg keeps the search cheap for unit tests.
func testCfg() Config {
	return Config{
		Ns:        []int{2, 3},
		Hs:        []int{4, 8},
		SearchFit: nn.FitConfig{MaxEpochs: 120, Seed: 1},
		FinalFit:  nn.FitConfig{MaxEpochs: 800, Seed: 1, Patience: 150},
	}
}

func TestTrainKernelLowFalsePositives(t *testing.T) {
	for _, name := range []string{"mcf", "lu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			trainTr := collect(t, name, seedsRange(0, 8))
			testTr := collect(t, name, seedsRange(100, 104))
			res, err := Train(trainTr, testTr, testCfg())
			if err != nil {
				t.Fatal(err)
			}
			if res.Mispred > 0.05 {
				t.Errorf("false-positive rate %.4f too high (topology %s, %d pos, %d neg)",
					res.Mispred, res.Topology(), res.Positives, res.Negatives)
			}
			if res.UniqueDeps == 0 || res.TotalDeps < res.UniqueDeps {
				t.Errorf("dep counts implausible: unique=%d total=%d", res.UniqueDeps, res.TotalDeps)
			}
			if len(res.Trials) != 4 {
				t.Errorf("trials = %d, want 4", len(res.Trials))
			}
		})
	}
}

func TestTrainDetectsInvalidDeps(t *testing.T) {
	trainTr := collect(t, "mcf", seedsRange(0, 8))
	testTr := collect(t, "mcf", seedsRange(100, 104))
	res, err := Train(trainTr, testTr, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	fn := FalseNegativeRate(res, testTr, 0, false)
	if fn > 0.25 {
		t.Errorf("false-negative rate %.4f: synthesized invalid deps mostly accepted", fn)
	}
}

func TestTrainValidSetPopulated(t *testing.T) {
	trainTr := collect(t, "mcf", seedsRange(0, 6))
	testTr := collect(t, "mcf", seedsRange(100, 103))
	res, err := Train(trainTr, testTr, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainValid == nil || res.TrainValid.Len() == 0 {
		t.Fatal("TrainValid not populated")
	}
	// Every positive training sequence must be in the set.
	if res.Positives == 0 {
		t.Fatal("no positives recorded")
	}
}

func TestTrainPriorDisabled(t *testing.T) {
	trainTr := collect(t, "mcf", seedsRange(0, 6))
	testTr := collect(t, "mcf", seedsRange(100, 103))
	cfg := testCfg()
	cfg.PriorNegatives = -1
	cfg.RandomNegatives = -1
	res, err := Train(trainTr, testTr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With both sampling mechanisms off, negatives are the paper's
	// before-last flavour only — far fewer than with the prior.
	withPrior, err := Train(trainTr, testTr, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Negatives >= withPrior.Negatives {
		t.Errorf("disabled sampling should shrink negatives: %d vs %d",
			res.Negatives, withPrior.Negatives)
	}
}

func TestTrainErrorsWithoutTraces(t *testing.T) {
	tr := collect(t, "mcf", []int64{0})
	if _, err := Train(nil, tr, testCfg()); err == nil {
		t.Error("no training traces accepted")
	}
	if _, err := Train(tr, nil, testCfg()); err == nil {
		t.Error("no test traces accepted")
	}
}

func TestTrainExclusionAdaptivity(t *testing.T) {
	// Hide one "function" (a PC range of thread 1) from training; the
	// trained network should still accept most of its sequences — the
	// similarity property behind Figure 7(b).
	trainTr := collect(t, "lu", seedsRange(0, 8))
	testTr := collect(t, "lu", seedsRange(100, 103))
	lo, hi := isa.ThreadBase(1), isa.ThreadBase(1)+40*isa.PCStride
	depIn := func(d deps.Dep) bool { return d.L >= lo && d.L < hi }
	inRange := func(s deps.Sequence) bool {
		for _, d := range s {
			if depIn(d) {
				return true
			}
		}
		return false
	}
	cfg := testCfg()
	cfg.Exclude = depIn
	res, err := Train(trainTr, testTr, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Evaluate on the excluded sequences from held-out traces.
	var wrong, total int
	ec := deps.ExtractorConfig{N: res.N}
	for _, tr := range testTr {
		e := deps.NewExtractor(ec)
		e.OnSequence = func(_ uint16, s deps.Sequence) {
			if !inRange(s) {
				return
			}
			total++
			if !res.Net.Valid(res.Encoder(s, nil)) {
				wrong++
			}
		}
		for _, r := range tr.Records {
			if r.Store {
				e.Store(r.Tid, r.PC, r.Addr, r.Stack)
			} else {
				e.Load(r.Tid, r.PC, r.Addr, r.Stack)
			}
		}
	}
	if total == 0 {
		t.Fatal("no excluded-region sequences found in test traces")
	}
	rate := float64(wrong) / float64(total)
	t.Logf("new-code incorrect prediction rate: %.4f (%d/%d)", rate, wrong, total)
	if rate > 0.5 {
		t.Errorf("adaptivity broken: %.0f%% of new-code sequences rejected", 100*rate)
	}
}
