// Package train implements ACT's offline training pipeline (Section
// III-B): execution traces from correct runs flow through the input
// generator to become positive and synthesized negative dependence-
// sequence examples, a topology search picks the i-h-1 network with the
// lowest held-out misprediction rate, and the winning weights are
// serialized for embedding in the "program binary".
package train

import (
	"fmt"
	"math/bits"
	"sort"

	"act/internal/deps"
	"act/internal/nn"
	"act/internal/obs"
	"act/internal/trace"
)

// Offline-training instrumentation on the process-wide registry. Fits
// are seconds-scale, so this is well off any hot path; the span
// histogram gives the topology search a latency distribution.
var (
	statFits = obs.Default.Counter("act_train_fits_total",
		"Candidate and final network fits run by the offline pipeline.")
	statFitNS = obs.Default.Histogram("act_train_fit_ns",
		"Duration of one network fit in nanoseconds.")
)

// fitNew wraps nn.TrainNew with the fit counter and span.
func fitNew(nIn, nHidden int, samples []nn.Sample, cfg nn.FitConfig) (*nn.Network, nn.FitResult) {
	sp := obs.StartSpan(statFitNS)
	net, fit := nn.TrainNew(nIn, nHidden, samples, cfg)
	sp.End()
	statFits.Inc()
	return net, fit
}

// Config controls the offline pipeline.
type Config struct {
	// Ns are the candidate sequence lengths; default 1..5 (bounded by
	// the 5-entry Input Generator Buffer).
	Ns []int
	// Hs are the candidate hidden-layer widths; default 1..10 (bounded
	// by the hardware's M).
	Hs []int
	// Encoder converts sequences to features; default deps.EncodeDefault.
	Encoder deps.Encoder
	// Granularity is the last-writer granule in bytes; default word (8).
	Granularity uint64
	// FilterStack drops stack-addressed records, the paper's load
	// filter. Default off (workload programs address data directly).
	FilterStack bool
	// Exclude, when non-nil, withholds matching dependences from
	// training entirely — sequences containing them and the sampling
	// pools alike (the adaptivity experiments hide a function this way).
	Exclude func(deps.Dep) bool
	// RandomNegatives is the number of sampled wrong-writer negatives
	// per observed sequence (default 1; negative disables sampling,
	// leaving only the paper's before-last-store negatives). Sampling
	// gives the network the PSet-style boundary it needs to reject a
	// buggy dependence whose wrong writer never produced a before-last
	// negative; the ablation bench quantifies the capacity trade-off.
	RandomNegatives int
	// PriorNegatives adds uniform-random feature points labeled invalid
	// (a default-invalid prior for never-observed communication). Zero
	// scales with the positives; negative disables.
	PriorNegatives int
	// SearchFit is the cheap fit used to score candidate topologies.
	SearchFit nn.FitConfig
	// FinalFit is the thorough fit used to train the winner.
	FinalFit nn.FitConfig
	// Seed drives weight initialization and shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if len(c.Ns) == 0 {
		c.Ns = []int{1, 2, 3, 4, 5}
	}
	if len(c.Hs) == 0 {
		c.Hs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	}
	if c.Encoder == nil {
		c.Encoder = deps.EncodeDefault
	}
	if c.SearchFit == (nn.FitConfig{}) {
		c.SearchFit = nn.FitConfig{MaxEpochs: 600, Seed: c.Seed, Restarts: 2}
	}
	if c.FinalFit == (nn.FitConfig{}) {
		c.FinalFit = nn.FitConfig{MaxEpochs: 6000, Seed: c.Seed, Patience: 800}
	}
	if c.RandomNegatives == 0 {
		c.RandomNegatives = 1
	} else if c.RandomNegatives < 0 {
		c.RandomNegatives = 0
	}
	return c
}

// Trial records one topology-search candidate. Candidates are scored on
// held-out false positives (valid sequences rejected, dynamic-weighted)
// plus false negatives (synthesized invalid sequences accepted): scoring
// only false positives would crown a degenerate always-valid network.
type Trial struct {
	N, Hidden int
	FP        float64
	FN        float64
	Epochs    int
}

// Score is the selection objective (lower is better).
func (t Trial) Score() float64 { return t.FP + t.FN }

// Result is a trained classifier plus the statistics the paper's Table
// IV reports.
type Result struct {
	Net     *nn.Network
	N       int // sequence length feeding the network
	Encoder deps.Encoder

	TrainTraces int
	UniqueDeps  int     // unique dynamic RAW dependences in training
	TotalDeps   int     // total dynamic RAW dependences in training
	Positives   int     // valid training samples (with replication)
	Negatives   int     // invalid training samples
	Mispred     float64 // held-out false positives / dynamic sequences
	MispredPer  float64 // ... as a fraction of total instructions
	FNRate      float64 // held-out synthesized invalid sequences accepted
	Trials      []Trial
	// TrainValid is the set of sequences observed valid during training
	// (at the chosen N); evaluation helpers use it to avoid mislabeling
	// an infrequent-but-valid sequence as a negative.
	TrainValid *deps.SeqSet
}

// Topology renders the chosen topology as "i-h-1".
func (r *Result) Topology() string { return r.Net.Topology() }

// Train runs the full offline pipeline: dataset generation per candidate
// N, topology search scored on the held-out test traces, and a final
// thorough fit of the winning topology.
func Train(trainTraces, testTraces []*trace.Trace, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(trainTraces) == 0 {
		return nil, fmt.Errorf("train: no training traces")
	}
	if len(testTraces) == 0 {
		return nil, fmt.Errorf("train: no test traces")
	}

	type perN struct {
		samples []nn.Sample
		test    []weighted
		negs    []weighted
		gen     *deps.Generator
		valid   *deps.SeqSet // sequences observed valid in training
	}
	byN := make(map[int]*perN)
	for _, n := range cfg.Ns {
		ec := deps.ExtractorConfig{N: n, Granularity: cfg.Granularity, FilterStack: cfg.FilterStack}
		gen := deps.NewGeneratorFull(deps.GeneratorConfig{
			Extractor:       ec,
			RandomNegatives: cfg.RandomNegatives,
			PriorNegatives:  cfg.PriorNegatives,
			Seed:            cfg.Seed,
			Exclude:         cfg.Exclude,
		}, cfg.Encoder)
		for _, t := range trainTraces {
			gen.Add(t)
		}
		ds := gen.Dataset()
		p := &perN{gen: gen}
		for _, ex := range ds.Examples {
			y := nn.TargetInvalid
			rep := 1
			if ex.Valid {
				y = nn.TargetValid
				// Dynamically hot sequences are replicated (log-scaled)
				// so the fit prioritizes them: the misprediction rate
				// that matters is dynamic, not per unique sequence.
				rep = min(4, 1+bits.Len(uint(ex.Count))/3)
			}
			for r := 0; r < rep; r++ {
				p.samples = append(p.samples, nn.Sample{X: ex.X, Y: y})
			}
		}
		for _, x := range ds.Prior {
			p.samples = append(p.samples, nn.Sample{X: x, Y: nn.TargetInvalid})
		}
		p.valid = deps.CollectSequences(trainTraces, ec)
		p.test = heldOut(testTraces, ec, cfg.Encoder)
		p.negs = heldOutNegs(testTraces, ec, cfg.Encoder, p.valid)
		byN[n] = p
	}

	res := &Result{N: 0, Encoder: cfg.Encoder, TrainTraces: len(trainTraces)}
	best := Trial{FP: 2, FN: 2}
	var bestNet *nn.Network
	for _, n := range cfg.Ns {
		p := byN[n]
		if len(p.samples) == 0 {
			continue
		}
		in := deps.InputLen(cfg.Encoder, n)
		if in > nn.MaxInputs {
			continue
		}
		for _, h := range cfg.Hs {
			net, fit := fitNew(in, h, p.samples, cfg.SearchFit)
			tr := Trial{
				N: n, Hidden: h, Epochs: fit.Epochs,
				FP: dynamicFPRate(net, p.test),
				FN: acceptRate(net, p.negs),
			}
			res.Trials = append(res.Trials, tr)
			if tr.Score() < best.Score() || (tr.Score() == best.Score() && cheaper(tr, best)) {
				best = tr
				bestNet = net
			}
		}
	}
	if best.Score() > 2 {
		return nil, fmt.Errorf("train: no viable topology (no sequences formed?)")
	}

	// Final thorough fit of the winner. Hard (XOR-like) datasets can
	// stall at the paper's learning rate; escalate it until the fit
	// classifies its own training set — and never ship a final net that
	// scores worse than the search winner.
	p := byN[best.N]
	in := deps.InputLen(cfg.Encoder, best.N)
	net, _ := fitNew(in, best.Hidden, p.samples, cfg.FinalFit)
	for _, lr := range []float64{0.5, 0.9} {
		if nn.Evaluate(net, p.samples) <= 0.02 {
			break
		}
		fc := cfg.FinalFit
		fc.LearningRate = lr
		if alt, _ := fitNew(in, best.Hidden, p.samples, fc); nn.Evaluate(alt, p.samples) < nn.Evaluate(net, p.samples) {
			net = alt
		}
	}
	if finalScore := dynamicFPRate(net, p.test) + acceptRate(net, p.negs); finalScore > best.Score() && bestNet != nil {
		net = bestNet
	}
	res.Net = net
	res.N = best.N
	res.TrainValid = p.valid
	res.UniqueDeps = p.gen.UniqueDeps()
	res.TotalDeps = p.gen.TotalDeps()
	res.Positives, res.Negatives = countLabels(p.samples)
	res.Mispred = dynamicFPRate(net, p.test)
	res.MispredPer = perInstruction(net, p.test, testTraces)
	res.FNRate = acceptRate(net, p.negs)
	sort.Slice(res.Trials, func(i, j int) bool {
		a, b := res.Trials[i], res.Trials[j]
		if a.N != b.N {
			return a.N < b.N
		}
		return a.Hidden < b.Hidden
	})
	return res, nil
}

// cheaper prefers smaller networks on misprediction ties.
func cheaper(a, b Trial) bool {
	return a.Hidden*a.N < b.Hidden*b.N
}

func countLabels(samples []nn.Sample) (pos, neg int) {
	for _, s := range samples {
		if s.Y >= 0.5 {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

// weighted is a held-out valid sequence with its dynamic occurrence
// count: misprediction rates are dynamic, so hot sequences dominate.
type weighted struct {
	x     []float64
	count int
}

// heldOut extracts the valid sequences of the test traces with counts.
func heldOut(traces []*trace.Trace, ec deps.ExtractorConfig, enc deps.Encoder) []weighted {
	ec.TrackPrev = false
	uniq := make(map[string]*weighted)
	for _, t := range traces {
		e := deps.NewExtractor(ec)
		e.OnSequence = func(_ uint16, s deps.Sequence) {
			k := s.Key()
			if w, ok := uniq[k]; ok {
				w.count++
				return
			}
			uniq[k] = &weighted{x: enc(s, nil), count: 1}
		}
		feed(e, t)
	}
	out := make([]weighted, 0, len(uniq))
	for _, w := range uniq {
		out = append(out, *w)
	}
	return out
}

// heldOutNegs synthesizes the invalid (before-last-store) sequences of
// the test traces, excluding any that occur as valid in the test traces
// or in the training set (a sequence seen valid anywhere is not a
// negative, it is just infrequent).
func heldOutNegs(traces []*trace.Trace, ec deps.ExtractorConfig, enc deps.Encoder, trainValid *deps.SeqSet) []weighted {
	valid := deps.CollectSequences(traces, ec)
	ec.TrackPrev = true
	uniq := make(map[string]*weighted)
	for _, t := range traces {
		e := deps.NewExtractor(ec)
		e.OnNegative = func(_ uint16, s deps.Sequence) {
			if valid.Contains(s) || (trainValid != nil && trainValid.Contains(s)) {
				return
			}
			k := s.Key()
			if w, ok := uniq[k]; ok {
				w.count++
				return
			}
			uniq[k] = &weighted{x: enc(s, nil), count: 1}
		}
		feed(e, t)
	}
	out := make([]weighted, 0, len(uniq))
	for _, w := range uniq {
		out = append(out, *w)
	}
	return out
}

// acceptRate returns the dynamic-weighted fraction of sequences the
// network accepts as valid (for invalid inputs this is the FN rate).
func acceptRate(net *nn.Network, set []weighted) float64 {
	var acc, total int
	for _, w := range set {
		total += w.count
		if net.Valid(w.x) {
			acc += w.count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(acc) / float64(total)
}

func feed(e *deps.Extractor, t *trace.Trace) {
	for _, r := range t.Records {
		if r.Store {
			e.Store(r.Tid, r.PC, r.Addr, r.Stack)
		} else {
			e.Load(r.Tid, r.PC, r.Addr, r.Stack)
		}
	}
}

// dynamicFPRate returns mispredicted dynamic occurrences over total
// dynamic occurrences for held-out valid sequences.
func dynamicFPRate(net *nn.Network, test []weighted) float64 {
	var wrong, total int
	for _, w := range test {
		total += w.count
		if !net.Valid(w.x) {
			wrong += w.count
		}
	}
	if total == 0 {
		return 1
	}
	return float64(wrong) / float64(total)
}

// perInstruction normalizes mispredicted dynamic occurrences by total
// executed instructions, the unit Table IV reports.
func perInstruction(net *nn.Network, test []weighted, traces []*trace.Trace) float64 {
	var wrong int
	var steps uint64
	for _, w := range test {
		if !net.Valid(w.x) {
			wrong += w.count
		}
	}
	for _, t := range traces {
		steps += t.Steps
	}
	if steps == 0 {
		return 0
	}
	return float64(wrong) / float64(steps)
}

// FalseNegativeRate measures Figure 7(a): synthesize invalid sequences
// from the test traces (before-last-store substitution) and report the
// fraction the network accepts as valid. A synthesized sequence that
// also occurs as a genuinely valid sequence in the same traces is not an
// invalid sequence at all and is skipped.
func FalseNegativeRate(res *Result, testTraces []*trace.Trace, granularity uint64, filterStack bool) float64 {
	ec := deps.ExtractorConfig{N: res.N, Granularity: granularity, FilterStack: filterStack, TrackPrev: true}
	valid := deps.CollectSequences(testTraces, deps.ExtractorConfig{N: res.N, Granularity: granularity, FilterStack: filterStack})
	var wrong, total int
	for _, t := range testTraces {
		e := deps.NewExtractor(ec)
		e.OnNegative = func(_ uint16, s deps.Sequence) {
			if valid.Contains(s) || (res.TrainValid != nil && res.TrainValid.Contains(s)) {
				return
			}
			total++
			if res.Net.Valid(res.Encoder(s, nil)) {
				wrong++
			}
		}
		feed(e, t)
	}
	if total == 0 {
		return 0
	}
	return float64(wrong) / float64(total)
}
