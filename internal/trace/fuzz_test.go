package trace

import (
	"bytes"
	"testing"
)

// FuzzRead drives ReadReport with arbitrary bytes: it must never panic,
// never over-allocate from unvalidated length fields, and never return
// both a nil trace and a nil error. Seeds cover both formats plus the
// truncations and bit flips the fault injector produces.
func FuzzRead(f *testing.F) {
	mk := func(write func(*Trace, *bytes.Buffer) error) []byte {
		tr := bigTrace(16)
		var buf bytes.Buffer
		if err := write(tr, &buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	framed := mk(func(t *Trace, b *bytes.Buffer) error { return t.Write(b) })
	legacy := mk(func(t *Trace, b *bytes.Buffer) error { return t.WriteLegacy(b) })
	f.Add(framed)
	f.Add(legacy)
	f.Add(framed[:len(framed)/2])
	f.Add(legacy[:len(legacy)/2])
	f.Add(framed[:9])
	f.Add([]byte("ACTT"))
	f.Add([]byte{})
	flipped := append([]byte(nil), framed...)
	flipped[40] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, rep, err := ReadReport(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatalf("error %v with non-nil trace", err)
			}
			return
		}
		if tr == nil {
			t.Fatal("nil trace with nil error")
		}
		// Every decoded record consumed at least recordPayload input
		// bytes, so the result is linearly bounded by the input. A
		// violation means a length field was trusted somewhere.
		if len(tr.Records)*recordPayload > len(data) {
			t.Fatalf("%d records from %d input bytes", len(tr.Records), len(data))
		}
		if cap(tr.Records) > maxPreallocRecords && cap(tr.Records) > 2*len(tr.Records) {
			t.Fatalf("capacity %d for %d records: unvalidated preallocation", cap(tr.Records), len(tr.Records))
		}
		if rep == nil {
			t.Fatal("nil report with nil error")
		}
	})
}
