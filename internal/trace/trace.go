// Package trace defines the memory-access trace format that stands in
// for the paper's PIN-collected execution traces. A trace is the ordered
// sequence of retired memory operations of one execution: instruction
// address, effective address, thread, and load/store direction. Offline
// training, the Correct Set used by postprocessing, and the baselines all
// consume this format.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"act/internal/isa"
	"act/internal/program"
	"act/internal/vm"
)

// Record is one retired memory operation.
type Record struct {
	Seq   uint64 // global dynamic instruction number
	PC    uint64 // instruction address
	Addr  uint64 // effective address
	Tid   uint16 // executing thread (== processor: threads are pinned)
	Store bool   // true for the write half, false for the read half
	Stack bool   // addressed through a stack register
}

// Trace is one execution's worth of records plus provenance.
type Trace struct {
	Program string
	Seed    int64
	Steps   uint64 // total dynamic instructions in the execution
	Records []Record
}

// Collect runs the program under the given scheduler configuration and
// returns its memory trace together with the execution result. An Atomic
// instruction contributes two records, the read before the write, which
// is how a read-modify-write interacts with last-writer tracking.
func Collect(p *program.Program, cfg vm.SchedConfig) (*Trace, *vm.Result) {
	tr := &Trace{Program: p.Name, Seed: cfg.Seed}
	prev := cfg.OnEvent
	cfg.OnEvent = func(ev vm.Event) {
		switch ev.Op {
		case isa.Load:
			tr.Records = append(tr.Records, Record{
				Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr, Tid: uint16(ev.Tid), Stack: ev.Stack,
			})
		case isa.Store:
			tr.Records = append(tr.Records, Record{
				Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr, Tid: uint16(ev.Tid), Store: true, Stack: ev.Stack,
			})
		case isa.Atomic:
			tr.Records = append(tr.Records,
				Record{Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr, Tid: uint16(ev.Tid), Stack: ev.Stack},
				Record{Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr, Tid: uint16(ev.Tid), Store: true, Stack: ev.Stack},
			)
		}
		if prev != nil {
			prev(ev)
		}
	}
	res := vm.Run(p, cfg)
	tr.Steps = res.Steps
	return tr, res
}

// FilterStack returns a copy of the trace with stack-addressed records
// removed, implementing the paper's load-filtering optimization.
func (t *Trace) FilterStack() *Trace {
	out := &Trace{Program: t.Program, Seed: t.Seed, Steps: t.Steps, Records: make([]Record, 0, len(t.Records))}
	for _, r := range t.Records {
		if !r.Stack {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// Binary trace format:
//
//	magic "ACTT" | u16 version | u16 reserved
//	u64 seed | u64 steps | u32 name length | name bytes | u64 record count
//	records: u64 seq | u64 pc | u64 addr | u16 tid | u8 flags
//
// flags bit0 = store, bit1 = stack.
const (
	magic   = "ACTT"
	version = 2
)

// Write serializes the trace to w in the binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := make([]byte, 2+2+8+8+4)
	binary.LittleEndian.PutUint16(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(t.Seed))
	binary.LittleEndian.PutUint64(hdr[12:], t.Steps)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(t.Program)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Program); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Records)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	rec := make([]byte, 8+8+8+2+1)
	for _, r := range t.Records {
		binary.LittleEndian.PutUint64(rec[0:], r.Seq)
		binary.LittleEndian.PutUint64(rec[8:], r.PC)
		binary.LittleEndian.PutUint64(rec[16:], r.Addr)
		binary.LittleEndian.PutUint16(rec[24:], r.Tid)
		var flags byte
		if r.Store {
			flags |= 1
		}
		if r.Stack {
			flags |= 2
		}
		rec[26] = flags
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+2+2+8+8+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head[:4]) != magic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	t := &Trace{
		Seed:  int64(binary.LittleEndian.Uint64(head[8:])),
		Steps: binary.LittleEndian.Uint64(head[16:]),
	}
	nameLen := binary.LittleEndian.Uint32(head[24:])
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t.Program = string(name)
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	t.Records = make([]Record, 0, n)
	rec := make([]byte, 27)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		t.Records = append(t.Records, Record{
			Seq:   binary.LittleEndian.Uint64(rec[0:]),
			PC:    binary.LittleEndian.Uint64(rec[8:]),
			Addr:  binary.LittleEndian.Uint64(rec[16:]),
			Tid:   binary.LittleEndian.Uint16(rec[24:]),
			Store: rec[26]&1 != 0,
			Stack: rec[26]&2 != 0,
		})
	}
	return t, nil
}

// Dump writes a human-readable listing of the trace to w.
func (t *Trace) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace of %s seed=%d records=%d\n", t.Program, t.Seed, len(t.Records))
	for _, r := range t.Records {
		dir := "LD"
		if r.Store {
			dir = "ST"
		}
		stack := ""
		if r.Stack {
			stack = " stack"
		}
		fmt.Fprintf(bw, "%10d t%-2d %s pc=%#x addr=%#x%s\n", r.Seq, r.Tid, dir, r.PC, r.Addr, stack)
	}
	return bw.Flush()
}
