// Package trace defines the memory-access trace format that stands in
// for the paper's PIN-collected execution traces. A trace is the ordered
// sequence of retired memory operations of one execution: instruction
// address, effective address, thread, and load/store direction. Offline
// training, the Correct Set used by postprocessing, and the baselines all
// consume this format.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"act/internal/isa"
	"act/internal/program"
	"act/internal/vm"
)

// Record is one retired memory operation.
type Record struct {
	Seq   uint64 // global dynamic instruction number
	PC    uint64 // instruction address
	Addr  uint64 // effective address
	Tid   uint16 // executing thread (== processor: threads are pinned)
	Store bool   // true for the write half, false for the read half
	Stack bool   // addressed through a stack register
}

// Trace is one execution's worth of records plus provenance.
type Trace struct {
	Program string
	Seed    int64
	Steps   uint64 // total dynamic instructions in the execution
	Records []Record
}

// Collect runs the program under the given scheduler configuration and
// returns its memory trace together with the execution result. An Atomic
// instruction contributes two records, the read before the write, which
// is how a read-modify-write interacts with last-writer tracking.
func Collect(p *program.Program, cfg vm.SchedConfig) (*Trace, *vm.Result) {
	tr := &Trace{Program: p.Name, Seed: cfg.Seed}
	prev := cfg.OnEvent
	cfg.OnEvent = func(ev vm.Event) {
		switch ev.Op {
		case isa.Load:
			tr.Records = append(tr.Records, Record{
				Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr, Tid: uint16(ev.Tid), Stack: ev.Stack,
			})
		case isa.Store:
			tr.Records = append(tr.Records, Record{
				Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr, Tid: uint16(ev.Tid), Store: true, Stack: ev.Stack,
			})
		case isa.Atomic:
			tr.Records = append(tr.Records,
				Record{Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr, Tid: uint16(ev.Tid), Stack: ev.Stack},
				Record{Seq: ev.Seq, PC: ev.PC, Addr: ev.Addr, Tid: uint16(ev.Tid), Store: true, Stack: ev.Stack},
			)
		}
		if prev != nil {
			prev(ev)
		}
	}
	res := vm.Run(p, cfg)
	tr.Steps = res.Steps
	return tr, res
}

// FilterStack returns a copy of the trace with stack-addressed records
// removed, implementing the paper's load-filtering optimization.
func (t *Trace) FilterStack() *Trace {
	out := &Trace{Program: t.Program, Seed: t.Seed, Steps: t.Steps, Records: make([]Record, 0, len(t.Records))}
	for _, r := range t.Records {
		if !r.Stack {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// Binary trace formats. Both start with the same prologue:
//
//	magic "ACTT" | u16 version | u16 reserved
//
// The plain format (version 2, the original one) follows with:
//
//	u64 seed | u64 steps | u32 name length | name bytes | u64 record count
//	records: u64 seq | u64 pc | u64 addr | u16 tid | u8 flags
//
// flags bit0 = store, bit1 = stack. The plain format has no redundancy:
// one bad byte used to fail the whole trace. The framed format
// (version 3, written by default — see framed.go) adds a per-section
// CRC32 and self-delimiting record frames so a reader can skip corrupted
// spans and resynchronize.
const (
	magic         = "ACTT"
	versionPlain  = 2 // original format: fixed-size records, no checksums
	versionFramed = 3 // hardened format: CRC'd header, self-delimiting frames
)

// Sentinel errors, distinguishable with errors.Is. Loader retry logic
// treats them as permanent (retrying cannot help a wrong file).
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
)

// maxPreallocRecords caps the capacity preallocated from an on-disk
// record count. A corrupt count field can claim up to 2^32 records
// (~200 GiB of capacity); allocation beyond this cap happens only as
// records are actually read.
const maxPreallocRecords = 64 * 1024

// WriteLegacy serializes the trace in the plain (version 2) format —
// kept so tooling can produce streams for consumers that predate the
// framed format.
func (t *Trace) WriteLegacy(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := make([]byte, 2+2+8+8+4)
	binary.LittleEndian.PutUint16(hdr[0:], versionPlain)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(t.Seed))
	binary.LittleEndian.PutUint64(hdr[12:], t.Steps)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(t.Program)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Program); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Records)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	rec := make([]byte, recordPayload)
	for _, r := range t.Records {
		encodeRecord(rec, r)
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write or WriteLegacy. For framed
// streams it recovers from corruption, returning the partial trace and
// no error; use ReadReport when the caller needs to know what was lost.
func Read(r io.Reader) (*Trace, error) {
	t, _, err := ReadReport(r)
	return t, err
}

// readPlain reads the body of a plain-format stream, after the 8-byte
// prologue has been consumed. Its behavior on well-formed and on
// corrupted streams is unchanged from the original all-or-nothing
// reader, except that the record-slice capacity is no longer
// preallocated from an unvalidated count.
func readPlain(br *bufio.Reader) (*Trace, error) {
	head := make([]byte, 8+8+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	t := &Trace{
		Seed:  int64(binary.LittleEndian.Uint64(head[0:])),
		Steps: binary.LittleEndian.Uint64(head[8:]),
	}
	nameLen := binary.LittleEndian.Uint32(head[16:])
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t.Program = string(name)
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	t.Records = make([]Record, 0, min(n, maxPreallocRecords))
	rec := make([]byte, recordPayload)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		t.Records = append(t.Records, decodeRecord(rec))
	}
	return t, nil
}

// Dump writes a human-readable listing of the trace to w.
func (t *Trace) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace of %s seed=%d records=%d\n", t.Program, t.Seed, len(t.Records))
	for _, r := range t.Records {
		dir := "LD"
		if r.Store {
			dir = "ST"
		}
		stack := ""
		if r.Stack {
			stack = " stack"
		}
		fmt.Fprintf(bw, "%10d t%-2d %s pc=%#x addr=%#x%s\n", r.Seq, r.Tid, dir, r.PC, r.Addr, stack)
	}
	return bw.Flush()
}
