package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Framed format (version 3), the hardened on-disk layout. Production
// traces are collected in the field, where streams get truncated by
// crashes and corrupted in transit; the framed format lets the reader
// localize damage instead of discarding the whole trace.
//
//	magic "ACTT" | u16 version=3 | u16 reserved
//	header section: u32 length | bytes | u32 crc32(bytes)
//	  bytes = u64 seed | u64 steps | u32 name length | name | u64 record count
//	record frames, one per record:
//	  sync 0xA5 0x5A | 27-byte record payload | u32 crc32(payload)
//
// Record payload layout matches the plain format:
// u64 seq | u64 pc | u64 addr | u16 tid | u8 flags. All CRCs are
// IEEE CRC32 in little-endian. Frames are self-delimiting: after a bad
// span the reader scans forward for the next sync pair whose payload
// checksums correctly.
const (
	recordPayload = 27                    // bytes per encoded record
	frameSize     = 2 + recordPayload + 4 // sync + payload + crc
	fixedHeader   = 8 + 8 + 4 + 8         // header bytes besides the name
	sync0, sync1  = 0xA5, 0x5A
)

func encodeRecord(dst []byte, r Record) {
	binary.LittleEndian.PutUint64(dst[0:], r.Seq)
	binary.LittleEndian.PutUint64(dst[8:], r.PC)
	binary.LittleEndian.PutUint64(dst[16:], r.Addr)
	binary.LittleEndian.PutUint16(dst[24:], r.Tid)
	var flags byte
	if r.Store {
		flags |= 1
	}
	if r.Stack {
		flags |= 2
	}
	dst[26] = flags
}

func decodeRecord(b []byte) Record {
	return Record{
		Seq:   binary.LittleEndian.Uint64(b[0:]),
		PC:    binary.LittleEndian.Uint64(b[8:]),
		Addr:  binary.LittleEndian.Uint64(b[16:]),
		Tid:   binary.LittleEndian.Uint16(b[24:]),
		Store: b[26]&1 != 0,
		Stack: b[26]&2 != 0,
	}
}

// CorruptionReport describes the damage a framed read recovered from.
// The zero value means the stream was clean.
type CorruptionReport struct {
	HeaderDamaged bool   // header section failed its CRC or was implausible
	BadSpans      int    // contiguous corrupt byte runs skipped during resync
	SkippedBytes  int64  // total bytes discarded while resynchronizing
	TruncatedTail bool   // stream ended inside a frame or a corrupt run
	Declared      uint64 // record count promised by the header (0 if damaged)
	Recovered     int    // records that survived
	Lost          int    // max(Declared-Recovered, 0)
}

// Corrupt reports whether any damage was observed.
func (r *CorruptionReport) Corrupt() bool {
	return r.HeaderDamaged || r.BadSpans > 0 || r.SkippedBytes > 0 ||
		r.TruncatedTail || r.Lost > 0
}

// String summarizes the report for logs.
func (r *CorruptionReport) String() string {
	if !r.Corrupt() {
		return "clean"
	}
	s := fmt.Sprintf("recovered %d", r.Recovered)
	if r.Declared > 0 {
		s += fmt.Sprintf("/%d", r.Declared)
	}
	s += fmt.Sprintf(" records, %d corrupt spans, %d bytes skipped", r.BadSpans, r.SkippedBytes)
	if r.HeaderDamaged {
		s += ", header damaged"
	}
	if r.TruncatedTail {
		s += ", truncated"
	}
	return s
}

// Write serializes the trace in the framed (version 3) format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var pro [4]byte
	binary.LittleEndian.PutUint16(pro[0:], versionFramed)
	if _, err := bw.Write(pro[:]); err != nil {
		return err
	}
	hdr := make([]byte, fixedHeader+len(t.Program))
	binary.LittleEndian.PutUint64(hdr[0:], uint64(t.Seed))
	binary.LittleEndian.PutUint64(hdr[8:], t.Steps)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(t.Program)))
	copy(hdr[20:], t.Program)
	binary.LittleEndian.PutUint64(hdr[20+len(t.Program):], uint64(len(t.Records)))
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(len(hdr)))
	if _, err := bw.Write(u4[:]); err != nil {
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u4[:], crc32.ChecksumIEEE(hdr))
	if _, err := bw.Write(u4[:]); err != nil {
		return err
	}
	frame := make([]byte, frameSize)
	frame[0], frame[1] = sync0, sync1
	for _, r := range t.Records {
		encodeRecord(frame[2:2+recordPayload], r)
		crc := crc32.ChecksumIEEE(frame[2 : 2+recordPayload])
		binary.LittleEndian.PutUint32(frame[2+recordPayload:], crc)
		if _, err := bw.Write(frame); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadReport deserializes a trace written by Write or WriteLegacy. For
// plain streams it behaves exactly like the original reader (any damage
// is an error). For framed streams corruption is not an error: the
// reader skips damaged spans, resynchronizes on the next checksummed
// frame, and returns the partial trace together with a CorruptionReport
// saying what was lost. The error return is reserved for streams that
// are not traces at all (bad magic, unknown version, unreadable
// prologue).
func ReadReport(r io.Reader) (*Trace, *CorruptionReport, error) {
	br := bufio.NewReader(r)
	pro := make([]byte, 4+2+2)
	if _, err := io.ReadFull(br, pro); err != nil {
		return nil, nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(pro[:4]) != magic {
		return nil, nil, ErrBadMagic
	}
	switch v := binary.LittleEndian.Uint16(pro[4:]); v {
	case versionPlain:
		t, err := readPlain(br)
		if err != nil {
			return nil, nil, err
		}
		return t, &CorruptionReport{Declared: uint64(len(t.Records)), Recovered: len(t.Records)}, nil
	case versionFramed:
		t, rep := readFramed(br)
		return t, rep, nil
	default:
		return nil, nil, fmt.Errorf("%w %d", ErrBadVersion, v)
	}
}

// readFramed reads a framed body after the prologue. It never fails:
// whatever survives checksum verification becomes the partial trace.
func readFramed(br *bufio.Reader) (*Trace, *CorruptionReport) {
	t := &Trace{}
	rep := &CorruptionReport{}

	// The body is consumed whole: traces in this system are in-memory
	// objects anyway, and resynchronization needs random access.
	body, err := io.ReadAll(br)
	if err != nil || len(body) == 0 {
		rep.HeaderDamaged = true
		rep.TruncatedTail = true
		return t, rep
	}

	// Header section: u32 length | bytes | u32 crc. On any damage the
	// frame scan restarts at offset 0 — header bytes cannot masquerade
	// as frames without also beating a CRC32.
	start := 0
	if len(body) >= 4 {
		hlen := int(binary.LittleEndian.Uint32(body[0:]))
		if hlen >= fixedHeader && hlen <= fixedHeader+1<<20 && 4+hlen+4 <= len(body) {
			hbytes := body[4 : 4+hlen]
			crc := binary.LittleEndian.Uint32(body[4+hlen:])
			nameLen := int(binary.LittleEndian.Uint32(hbytes[16:]))
			plausible := fixedHeader+nameLen == hlen
			if crc32.ChecksumIEEE(hbytes) != crc {
				rep.HeaderDamaged = true
			}
			// A damaged header is still salvaged when its internal
			// lengths agree; only its fields are suspect, not the
			// record stream that follows.
			if plausible {
				t.Seed = int64(binary.LittleEndian.Uint64(hbytes[0:]))
				t.Steps = binary.LittleEndian.Uint64(hbytes[8:])
				t.Program = string(hbytes[20 : 20+nameLen])
				rep.Declared = binary.LittleEndian.Uint64(hbytes[20+nameLen:])
				start = 4 + hlen + 4
			} else {
				rep.HeaderDamaged = true
			}
		} else {
			rep.HeaderDamaged = true
		}
	} else {
		rep.HeaderDamaged = true
		rep.TruncatedTail = true
		return t, rep
	}
	if rep.HeaderDamaged {
		rep.Declared = 0
	}

	capHint := min(rep.Declared, maxPreallocRecords)
	if byBytes := uint64(len(body)-start) / frameSize; capHint > byBytes {
		capHint = byBytes
	}
	t.Records = make([]Record, 0, capHint)

	inBadRun := false
	i := start
	for i < len(body) {
		if len(body)-i >= frameSize && body[i] == sync0 && body[i+1] == sync1 {
			payload := body[i+2 : i+2+recordPayload]
			crc := binary.LittleEndian.Uint32(body[i+2+recordPayload:])
			if crc32.ChecksumIEEE(payload) == crc {
				t.Records = append(t.Records, decodeRecord(payload))
				i += frameSize
				inBadRun = false
				continue
			}
		}
		// Corrupt byte: start (or continue) a bad run and resync.
		if !inBadRun {
			rep.BadSpans++
			inBadRun = true
		}
		rep.SkippedBytes++
		i++
	}
	if inBadRun {
		rep.TruncatedTail = true
	}
	rep.Recovered = len(t.Records)
	if rep.Declared > uint64(rep.Recovered) {
		rep.Lost = int(rep.Declared) - rep.Recovered
	}
	return t, rep
}
