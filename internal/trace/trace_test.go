package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"act/internal/program"
	"act/internal/vm"
)

func sampleProgram() *program.Program {
	pb := program.New("sample")
	x := pb.Space().Alloc("x", 1)
	b := pb.Thread()
	b.LiAddr(1, x)
	b.Li(2, 5)
	b.Store(2, 1, 0)
	b.Load(3, 1, 0)
	b.Atomic(4, 2, 1, 0)
	b.Halt()
	return pb.MustBuild()
}

func TestCollect(t *testing.T) {
	p := sampleProgram()
	tr, res := Collect(p, vm.SchedConfig{Seed: 1})
	if res.Failed {
		t.Fatalf("unexpected failure: %s", res.Reason)
	}
	// store, load, atomic(load+store) = 4 records
	if len(tr.Records) != 4 {
		t.Fatalf("records = %d, want 4:\n%+v", len(tr.Records), tr.Records)
	}
	if !tr.Records[0].Store || tr.Records[1].Store {
		t.Error("first record should be store, second load")
	}
	// Atomic: read before write.
	if tr.Records[2].Store || !tr.Records[3].Store {
		t.Error("atomic must produce load then store")
	}
	if tr.Records[2].Seq != tr.Records[3].Seq {
		t.Error("atomic halves must share a sequence number")
	}
	if tr.Program != "sample" {
		t.Errorf("program name %q", tr.Program)
	}
}

func TestRoundTrip(t *testing.T) {
	p := sampleProgram()
	tr, _ := Collect(p, vm.SchedConfig{Seed: 3})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != tr.Program || got.Seed != tr.Seed || got.Steps != tr.Steps {
		t.Errorf("header mismatch: %+v vs %+v", got, tr)
	}
	if tr.Steps == 0 {
		t.Error("collected trace has zero step count")
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d: %+v vs %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, name string, seqs []uint64) bool {
		if len(name) > 100 {
			name = name[:100]
		}
		tr := &Trace{Program: name, Seed: seed}
		for i, s := range seqs {
			tr.Records = append(tr.Records, Record{
				Seq: s, PC: s * 3, Addr: s * 7, Tid: uint16(i % 8),
				Store: i%2 == 0, Stack: i%3 == 0,
			})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Program != name || got.Seed != seed || len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all, definitely")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("AC")); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestFilterStack(t *testing.T) {
	tr := &Trace{Records: []Record{
		{PC: 1, Stack: true},
		{PC: 2},
		{PC: 3, Stack: true},
		{PC: 4},
	}}
	got := tr.FilterStack()
	if len(got.Records) != 2 || got.Records[0].PC != 2 || got.Records[1].PC != 4 {
		t.Fatalf("FilterStack = %+v", got.Records)
	}
	if len(tr.Records) != 4 {
		t.Fatal("FilterStack mutated its receiver")
	}
}

func TestDump(t *testing.T) {
	p := sampleProgram()
	tr, _ := Collect(p, vm.SchedConfig{Seed: 1})
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ST") || !strings.Contains(out, "LD") {
		t.Errorf("dump lacks load/store markers:\n%s", out)
	}
}
