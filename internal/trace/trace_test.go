package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"act/internal/program"
	"act/internal/vm"
)

func sampleProgram() *program.Program {
	pb := program.New("sample")
	x := pb.Space().Alloc("x", 1)
	b := pb.Thread()
	b.LiAddr(1, x)
	b.Li(2, 5)
	b.Store(2, 1, 0)
	b.Load(3, 1, 0)
	b.Atomic(4, 2, 1, 0)
	b.Halt()
	return pb.MustBuild()
}

func TestCollect(t *testing.T) {
	p := sampleProgram()
	tr, res := Collect(p, vm.SchedConfig{Seed: 1})
	if res.Failed {
		t.Fatalf("unexpected failure: %s", res.Reason)
	}
	// store, load, atomic(load+store) = 4 records
	if len(tr.Records) != 4 {
		t.Fatalf("records = %d, want 4:\n%+v", len(tr.Records), tr.Records)
	}
	if !tr.Records[0].Store || tr.Records[1].Store {
		t.Error("first record should be store, second load")
	}
	// Atomic: read before write.
	if tr.Records[2].Store || !tr.Records[3].Store {
		t.Error("atomic must produce load then store")
	}
	if tr.Records[2].Seq != tr.Records[3].Seq {
		t.Error("atomic halves must share a sequence number")
	}
	if tr.Program != "sample" {
		t.Errorf("program name %q", tr.Program)
	}
}

func TestRoundTrip(t *testing.T) {
	p := sampleProgram()
	tr, _ := Collect(p, vm.SchedConfig{Seed: 3})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != tr.Program || got.Seed != tr.Seed || got.Steps != tr.Steps {
		t.Errorf("header mismatch: %+v vs %+v", got, tr)
	}
	if tr.Steps == 0 {
		t.Error("collected trace has zero step count")
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d: %+v vs %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, name string, seqs []uint64) bool {
		if len(name) > 100 {
			name = name[:100]
		}
		tr := &Trace{Program: name, Seed: seed}
		for i, s := range seqs {
			tr.Records = append(tr.Records, Record{
				Seq: s, PC: s * 3, Addr: s * 7, Tid: uint16(i % 8),
				Store: i%2 == 0, Stack: i%3 == 0,
			})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Program != name || got.Seed != seed || len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyRoundTrip(t *testing.T) {
	p := sampleProgram()
	tr, _ := Collect(p, vm.SchedConfig{Seed: 3})
	var buf bytes.Buffer
	if err := tr.WriteLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	got, rep, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt() {
		t.Fatalf("clean legacy stream reported corrupt: %v", rep)
	}
	if got.Program != tr.Program || got.Seed != tr.Seed || got.Steps != tr.Steps ||
		len(got.Records) != len(tr.Records) {
		t.Fatalf("legacy round trip mismatch: %+v vs %+v", got, tr)
	}
	for i := range got.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

// TestLegacyBytesUnchanged pins the plain-format reader to the original
// byte layout: a hand-built version-2 stream must decode to exactly the
// records it encodes.
func TestLegacyBytesUnchanged(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("ACTT")
	buf.Write([]byte{2, 0, 0, 0})                // version 2, reserved
	buf.Write([]byte{7, 0, 0, 0, 0, 0, 0, 0})    // seed = 7
	buf.Write([]byte{42, 0, 0, 0, 0, 0, 0, 0})   // steps = 42
	buf.Write([]byte{2, 0, 0, 0})                // name length
	buf.WriteString("hi")                        // name
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0})    // 1 record
	buf.Write([]byte{9, 0, 0, 0, 0, 0, 0, 0})    // seq
	buf.Write([]byte{0x10, 0, 0, 0, 0, 0, 0, 0}) // pc
	buf.Write([]byte{0x20, 0, 0, 0, 0, 0, 0, 0}) // addr
	buf.Write([]byte{3, 0})                      // tid
	buf.Write([]byte{3})                         // flags: store|stack
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Record{Seq: 9, PC: 0x10, Addr: 0x20, Tid: 3, Store: true, Stack: true}
	if got.Program != "hi" || got.Seed != 7 || got.Steps != 42 ||
		len(got.Records) != 1 || got.Records[0] != want {
		t.Fatalf("legacy decode: %+v", got)
	}
}

// bigTrace builds a deterministic many-record trace for corruption tests.
func bigTrace(n int) *Trace {
	tr := &Trace{Program: "corrupt-me", Seed: 11, Steps: uint64(n)}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, Record{
			Seq: uint64(i), PC: uint64(i * 3), Addr: uint64(i * 7),
			Tid: uint16(i % 4), Store: i%2 == 0, Stack: i%5 == 0,
		})
	}
	return tr
}

func TestFramedRecoversFromRecordCorruption(t *testing.T) {
	const n = 1000
	tr := bigTrace(n)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt ~1% of the record frames: flip one byte inside ten frames
	// spread across the stream.
	headerEnd := 8 + 4 + (8 + 8 + 4 + len(tr.Program) + 8) + 4
	for k := 0; k < 10; k++ {
		frame := headerEnd + (k*100+5)*frameSize
		data[frame+7] ^= 0xFF
	}
	got, rep, err := ReadReport(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("corrupted framed stream must not error: %v", err)
	}
	if !rep.Corrupt() {
		t.Fatal("corruption not reported")
	}
	if rep.BadSpans != 10 || rep.Lost != 10 || rep.Recovered != n-10 {
		t.Fatalf("report %+v, want 10 bad spans, 10 lost, %d recovered", rep, n-10)
	}
	if got.Program != tr.Program || got.Seed != tr.Seed {
		t.Fatalf("header lost: %+v", got)
	}
	if len(got.Records) != n-10 {
		t.Fatalf("recovered %d records, want %d", len(got.Records), n-10)
	}
	// Survivors are intact and in order.
	last := int64(-1)
	for _, r := range got.Records {
		if int64(r.Seq) <= last {
			t.Fatalf("recovered records out of order at seq %d", r.Seq)
		}
		last = int64(r.Seq)
		if r.PC != r.Seq*3 || r.Addr != r.Seq*7 {
			t.Fatalf("recovered record damaged: %+v", r)
		}
	}
}

func TestFramedRecoversFromTruncation(t *testing.T) {
	tr := bigTrace(100)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-frameSize/2] // cut mid-frame
	got, rep, err := ReadReport(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TruncatedTail || rep.Lost != 1 || len(got.Records) != 99 {
		t.Fatalf("truncation: rep=%+v records=%d", rep, len(got.Records))
	}
}

func TestFramedHeaderDamage(t *testing.T) {
	tr := bigTrace(50)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8+4+2] ^= 0x40 // flip a bit inside the seed field
	got, rep, err := ReadReport(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HeaderDamaged {
		t.Fatal("header damage not reported")
	}
	if len(got.Records) != 50 {
		t.Fatalf("records behind a damaged header lost: %d/50", len(got.Records))
	}
}

func TestFramedDuplicateAndReorderSurvive(t *testing.T) {
	// Frames are self-contained, so a duplicated or reordered frame
	// still decodes; the report only flags the count mismatch.
	tr := bigTrace(10)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data = append(data, data[len(data)-frameSize:]...) // duplicate last frame
	got, rep, err := ReadReport(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 11 || rep.Lost != 0 {
		t.Fatalf("duplicate frame: records=%d rep=%+v", len(got.Records), rep)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace at all, definitely")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("AC")); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestFilterStack(t *testing.T) {
	tr := &Trace{Records: []Record{
		{PC: 1, Stack: true},
		{PC: 2},
		{PC: 3, Stack: true},
		{PC: 4},
	}}
	got := tr.FilterStack()
	if len(got.Records) != 2 || got.Records[0].PC != 2 || got.Records[1].PC != 4 {
		t.Fatalf("FilterStack = %+v", got.Records)
	}
	if len(tr.Records) != 4 {
		t.Fatal("FilterStack mutated its receiver")
	}
}

func TestDump(t *testing.T) {
	p := sampleProgram()
	tr, _ := Collect(p, vm.SchedConfig{Seed: 1})
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ST") || !strings.Contains(out, "LD") {
		t.Errorf("dump lacks load/store markers:\n%s", out)
	}
}
