package nn

import (
	"math"
	"math/rand"
	"testing"
)

// lutNet builds a random network wired to the LUT activation, the state
// a deployed module classifies with.
func lutNet(t *testing.T, seed int64, nIn, nHidden int, lut *SigmoidLUT) *Network {
	t.Helper()
	n := New(nIn, nHidden, rand.New(rand.NewSource(seed)))
	n.Act = lut.Activation()
	return n
}

// trainedLutNet nudges the random weights with a few hundred online
// steps so the test covers momentum-free trained magnitudes, not just
// the ±0.5 init range.
func trainedLutNet(t *testing.T, seed int64, nIn, nHidden int, lut *SigmoidLUT) *Network {
	t.Helper()
	n := lutNet(t, seed, nIn, nHidden, lut)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	x := make([]float64, nIn)
	for i := 0; i < 400; i++ {
		for j := range x {
			x[j] = rng.Float64()
		}
		target := TargetValid
		if i%3 == 0 {
			target = TargetInvalid
		}
		n.Train(x, target, 0.2)
	}
	return n
}

// TestCompileTolerance is the tolerance property test: over many random
// and trained networks and random in-range inputs, the fixed-point
// output stays within the compiled ErrorBound of the float output, and
// verdict ordering is preserved for any pair of inputs whose float
// outputs are separated by more than twice the bound.
func TestCompileTolerance(t *testing.T) {
	lut := DefaultLUT()
	for seed := int64(0); seed < 12; seed++ {
		nIn := 1 + int(seed)%MaxInputs
		nHidden := 1 + int(seed*7)%MaxInputs
		n := trainedLutNet(t, seed, nIn, nHidden, lut)
		q, err := Compile(n, lut)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		bound := q.ErrorBound()
		if !(bound > 0) || bound > 0.5 {
			t.Fatalf("seed %d: implausible error bound %v", seed, bound)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		type pt struct{ fout, qout float64 }
		pts := make([]pt, 0, 256)
		x := make([]float64, nIn)
		for i := 0; i < 256; i++ {
			for j := range x {
				x[j] = rng.Float64()
			}
			fout := n.Forward(x)
			qout := q.Forward(x)
			if d := math.Abs(fout - qout); d > bound {
				t.Fatalf("seed %d: |q-f| = %v exceeds bound %v (f=%v q=%v)", seed, d, bound, fout, qout)
			}
			pts = append(pts, pt{fout, qout})
		}
		// Ordering: pairs separated by more than 2·bound in float must
		// keep their order in fixed point.
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				a, b := pts[i], pts[j]
				if math.Abs(a.fout-b.fout) <= 2*bound {
					continue
				}
				if (a.fout < b.fout) != (a.qout < b.qout) {
					t.Fatalf("seed %d: ordering flipped: f(%v,%v) q(%v,%v)", seed, a.fout, b.fout, a.qout, b.qout)
				}
			}
		}
	}
}

// TestCompileAdaptiveFracBits pins the Q-format choice: small weights
// keep maximal precision, larger magnitudes trade fractional bits for
// range, and each compiled weight matches Quantize at the chosen format.
func TestCompileAdaptiveFracBits(t *testing.T) {
	lut := DefaultLUT()
	cases := []struct {
		scale    float64
		wantFrac int
	}{
		{0.4, 15}, // |w| < 1: Q0.15 covers it
		{3.0, 13}, // needs ±4
		{100, 8},  // needs ±128
	}
	for _, c := range cases {
		n := lutNet(t, 9, 4, 4, lut)
		for h := range n.WH {
			for i := range n.WH[h] {
				n.WH[h][i] *= c.scale / 0.5
			}
		}
		// Keep one weight pinned at the scale so the max is deterministic.
		n.WH[0][0] = c.scale
		q, err := Compile(n, lut)
		if err != nil {
			t.Fatalf("scale %v: %v", c.scale, err)
		}
		if q.FracBits != c.wantFrac {
			t.Fatalf("scale %v: FracBits = %d, want %d", c.scale, q.FracBits, c.wantFrac)
		}
		// Register values must equal the Quantize rounding at the same
		// format: compile IS Quantize, executed in integers.
		ref := n.Clone()
		ref.Quantize(q.FracBits)
		flat := ref.Flatten(nil)
		step := math.Ldexp(1, -q.FracBits)
		for i, r := range q.Weights() {
			if got := float64(r) * step; math.Abs(got-flat[i]) > 1e-12 {
				t.Fatalf("scale %v: register %d = %v, Quantize says %v", c.scale, i, got, flat[i])
			}
		}
	}
}

// TestCompileRejects enumerates the weight states that must fall back
// to float inference rather than compile.
func TestCompileRejects(t *testing.T) {
	lut := DefaultLUT()
	if _, err := Compile(nil, lut); err == nil {
		t.Fatal("nil network compiled")
	}
	for _, poison := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 40000} {
		n := lutNet(t, 3, 3, 2, lut)
		n.WO[1] = poison
		if _, err := Compile(n, lut); err == nil {
			t.Fatalf("weight %v compiled", poison)
		}
	}
	bad := lutNet(t, 3, 3, 2, lut)
	bad.WO = bad.WO[:1] // malformed topology
	if _, err := Compile(bad, lut); err == nil {
		t.Fatal("malformed topology compiled")
	}
}

// TestForwardBatchMatchesScalar pins bit-identity of the three entry
// points: scalar Forward, ForwardBatch over independent vectors, and
// ForwardWindows over an overlapping slab.
func TestForwardBatchMatchesScalar(t *testing.T) {
	lut := NewSigmoidLUT(200, 7) // non-power-of-two span: divide path
	for _, l := range []*SigmoidLUT{DefaultLUT(), lut} {
		n := trainedLutNet(t, 42, 6, 8, l)
		q, err := Compile(n, l)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(43))
		const fpd, wins = 2, 97
		slab := make([]float64, (wins-1)*fpd+q.NIn)
		for i := range slab {
			slab[i] = rng.Float64()
		}
		wouts := make([]float64, wins)
		q.ForwardWindows(slab, fpd, wouts)
		xs := make([][]float64, wins)
		for k := range xs {
			xs[k] = slab[k*fpd : k*fpd+q.NIn]
		}
		bouts := make([]float64, wins)
		q.ForwardBatch(xs, bouts)
		for k := range xs {
			s := q.Forward(xs[k])
			if s != wouts[k] || s != bouts[k] {
				t.Fatalf("window %d: scalar %v, windows %v, batch %v", k, s, wouts[k], bouts[k])
			}
		}
	}
}

// TestForwardWindowsEmpty covers the zero-window call.
func TestForwardWindowsEmpty(t *testing.T) {
	q, err := Compile(lutNet(t, 1, 2, 2, DefaultLUT()), DefaultLUT())
	if err != nil {
		t.Fatal(err)
	}
	q.ForwardWindows(nil, 2, nil) // must not panic
}

// TestQuantInClamps pins the input conversion's totality: any float64,
// including NaN and infinities, lands in [0, qOne].
func TestQuantInClamps(t *testing.T) {
	for _, c := range []struct {
		in   float64
		want int16
	}{
		{math.NaN(), 0}, {math.Inf(-1), 0}, {-3, 0}, {0, 0},
		{1, qOne}, {2, qOne}, {math.Inf(1), qOne},
		{0.5, qOne / 2},
	} {
		if got := quantIn(c.in); got != c.want {
			t.Fatalf("quantIn(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestForwardBatchAllocs pins the batch classify loop at zero
// steady-state allocations, the dynamic half of its //act:noalloc
// annotation.
func TestForwardBatchAllocs(t *testing.T) {
	lut := DefaultLUT()
	n := trainedLutNet(t, 7, 6, 8, lut)
	q, err := Compile(n, lut)
	if err != nil {
		t.Fatal(err)
	}
	const fpd, wins = 2, 64
	slab := make([]float64, (wins-1)*fpd+q.NIn)
	for i := range slab {
		slab[i] = float64(i%17) / 17
	}
	outs := make([]float64, wins)
	q.ForwardWindows(slab, fpd, outs) // warm the int16 scratch slab
	if avg := testing.AllocsPerRun(200, func() {
		q.ForwardWindows(slab, fpd, outs)
	}); avg != 0 {
		t.Fatalf("ForwardWindows allocates %v per call at steady state", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		q.Forward(slab[:q.NIn])
	}); avg != 0 {
		t.Fatalf("Forward allocates %v per call at steady state", avg)
	}
}

// FuzzCompile: Compile must never panic, whatever weight garbage an SEU
// or a runaway update left behind — it either produces a kernel within
// tolerance of the float network or reports an error (the float
// fallback signal).
func FuzzCompile(f *testing.F) {
	f.Add(int64(1), 3.0, false)
	f.Add(int64(2), math.NaN(), true)
	f.Add(int64(3), math.Inf(1), true)
	f.Add(int64(4), 1e300, false)
	f.Add(int64(5), -0.0, false)
	f.Fuzz(func(t *testing.T, seed int64, poison float64, spray bool) {
		rng := rand.New(rand.NewSource(seed))
		nIn := 1 + int(uint64(seed)%MaxInputs)
		nHidden := 1 + int(uint64(seed/7)%MaxInputs)
		n := New(nIn, nHidden, rng)
		lut := DefaultLUT()
		n.Act = lut.Activation()
		if spray {
			for h := range n.WH {
				for i := range n.WH[h] {
					if rng.Intn(3) == 0 {
						n.WH[h][i] = poison
					}
				}
			}
		}
		n.WO[rng.Intn(len(n.WO))] = poison
		q, err := Compile(n, lut)
		if err != nil {
			return // float fallback; nothing more to check
		}
		x := make([]float64, nIn)
		for i := range x {
			x[i] = rng.Float64()
		}
		qout := q.Forward(x)
		if math.IsNaN(qout) || qout < 0 || qout > 1 {
			t.Fatalf("compiled kernel produced out-of-range output %v", qout)
		}
		if d := math.Abs(qout - n.Forward(x)); d > q.ErrorBound() {
			t.Fatalf("|q-f| = %v exceeds bound %v", d, q.ErrorBound())
		}
	})
}

// BenchmarkForwardWindows measures the batched kernel per window on the
// deployed 6-8-1 shape (N=3 windows of 2-feature dependences).
func BenchmarkForwardWindows(b *testing.B) {
	lut := DefaultLUT()
	n := trainedLutNet(&testing.T{}, 7, 6, 8, lut)
	q, err := Compile(n, lut)
	if err != nil {
		b.Fatal(err)
	}
	const fpd, wins = 2, 512
	slab := make([]float64, (wins-1)*fpd+q.NIn)
	for i := range slab {
		slab[i] = float64(i%89) / 97
	}
	outs := make([]float64, wins)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ForwardWindows(slab, fpd, outs)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*wins), "ns/window")
}

// BenchmarkFloatForward is the float comparator for the same shape.
func BenchmarkFloatForward(b *testing.B) {
	lut := DefaultLUT()
	n := trainedLutNet(&testing.T{}, 7, 6, 8, lut)
	x := make([]float64, 6)
	for i := range x {
		x[i] = float64(i) / 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward(x)
	}
}
