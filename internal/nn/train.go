package nn

import (
	"math/rand"
)

// Sample is one labelled training input.
type Sample struct {
	X []float64
	Y float64 // training target, typically 0.9 (valid) or 0.1 (invalid)
}

// Targets used when converting boolean labels to regression targets.
// Training toward 0.9/0.1 rather than 1/0 keeps the sigmoid out of its
// flat tails, the standard trick for backprop convergence.
const (
	TargetValid   = 0.9
	TargetInvalid = 0.1
)

// FitConfig controls offline training.
type FitConfig struct {
	LearningRate float64 // default 0.2, the paper's value
	MaxEpochs    int     // default 500
	TargetMSE    float64 // stop when epoch MSE falls below; default 0.005
	Seed         int64   // shuffling and weight init
	Patience     int     // epochs without improvement before stopping; default 50
	Momentum     float64 // classical momentum; default 0.8 (negative disables)
	Restarts     int     // random-init restarts in TrainNew; default 3
}

func (c FitConfig) withDefaults() FitConfig {
	if c.LearningRate == 0 {
		c.LearningRate = 0.2
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 500
	}
	if c.TargetMSE == 0 {
		c.TargetMSE = 0.005
	}
	if c.Patience == 0 {
		c.Patience = 50
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	// Negative momentum means "disabled"; the sentinel is preserved here
	// so withDefaults stays idempotent, and mapped to 0 at point of use.
	if c.Restarts == 0 {
		c.Restarts = 3
	}
	return c
}

// FitResult reports how training went.
type FitResult struct {
	Epochs int
	MSE    float64
}

// Fit trains the network on the samples with epoch-shuffled stochastic
// backpropagation until the MSE target, patience, or epoch budget is
// reached.
func Fit(n *Network, samples []Sample, cfg FitConfig) FitResult {
	cfg = cfg.withDefaults()
	n.Momentum = max(0, cfg.Momentum)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	best := 1e18
	stale := 0
	res := FitResult{MSE: 1}
	for epoch := 1; epoch <= cfg.MaxEpochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sse float64
		for _, i := range order {
			s := samples[i]
			o := n.Train(s.X, s.Y, cfg.LearningRate)
			d := s.Y - o
			sse += d * d
		}
		mse := sse / float64(max(1, len(samples)))
		res.Epochs, res.MSE = epoch, mse
		if mse < cfg.TargetMSE {
			break
		}
		if mse < best-1e-6 {
			best, stale = mse, 0
		} else if stale++; stale >= cfg.Patience {
			break
		}
	}
	return res
}

// Evaluate returns the fraction of samples the network misclassifies
// (output ≥ 0.5 counts as valid; a sample is positive when Y ≥ 0.5).
func Evaluate(n *Network, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	wrong := 0
	for _, s := range samples {
		if n.Valid(s.X) != (s.Y >= 0.5) {
			wrong++
		}
	}
	return float64(wrong) / float64(len(samples))
}

// TrainNew builds a network of the given topology and fits it with
// random-restart: the best of Restarts independent initializations (by
// final MSE) wins. Restarts stop early once a fit reaches the MSE
// target.
func TrainNew(nIn, nHidden int, samples []Sample, cfg FitConfig) (*Network, FitResult) {
	cfg = cfg.withDefaults()
	var bestNet *Network
	var best FitResult
	best.MSE = 1e18
	for r := 0; r < cfg.Restarts; r++ {
		seed := cfg.Seed + int64(nIn)*1000 + int64(nHidden) + int64(r)*7_777_777
		n := New(nIn, nHidden, rand.New(rand.NewSource(seed)))
		c := cfg
		c.Seed = seed
		res := Fit(n, samples, c)
		if res.MSE < best.MSE {
			bestNet, best = n, res
		}
		if best.MSE < cfg.TargetMSE {
			break
		}
	}
	return bestNet, best
}
