package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := New(4, 8, rng)
	worst := n.Quantize(12)
	if worst > math.Ldexp(1, -13)+1e-12 {
		t.Fatalf("rounding error %v exceeds half a step", worst)
	}
	// All weights must now be exact multiples of the step.
	step := math.Ldexp(1, -12)
	for _, w := range n.Flatten(nil) {
		if r := math.Abs(w/step - math.Round(w/step)); r > 1e-9 {
			t.Fatalf("weight %v not on the Q-grid", w)
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New(2, 2, rng)
	n.WO[0] = 1e6
	n.WO[1] = -1e6
	n.Quantize(12)
	limit := math.Ldexp(1, 3) // 2^(15-12)
	if n.WO[0] > limit || n.WO[1] < -limit {
		t.Fatalf("saturation failed: %v %v", n.WO[0], n.WO[1])
	}
}

func TestQuantizedClassificationSurvives(t *testing.T) {
	// Train a small classifier, then check that 12 fractional bits keep
	// its decisions, while 2 bits wreck them.
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 16; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y := TargetInvalid
		if i%2 == 0 {
			y = TargetValid
		}
		samples = append(samples, Sample{X: x, Y: y})
	}
	n, _ := TrainNew(4, 8, samples, FitConfig{Seed: 4, MaxEpochs: 8000, Patience: 8000})
	if Evaluate(n, samples) > 0 {
		t.Skip("fixture did not converge")
	}
	var xs [][]float64
	for _, s := range samples {
		xs = append(xs, s.X)
	}
	// Q6.9: 9 fractional bits with a ±64 range — wide enough for the
	// magnitudes momentum-trained weights reach.
	if d := QuantizedDisagreement(n, 9, xs); d > 0 {
		t.Errorf("9 fractional bits changed %v of decisions", d)
	}
	coarse := QuantizedDisagreement(n, 2, xs)
	fine := QuantizedDisagreement(n, 9, xs)
	if coarse < fine {
		t.Errorf("coarser quantization disagreed less (%v) than finer (%v)", coarse, fine)
	}
}
