// Package nn implements the one-hidden-layer feed-forward neural network
// ACT uses to classify RAW dependence sequences, with backpropagation
// learning — the software twin of the partially configurable hardware
// network of Section IV-A. The package is generic over inputs; feature
// encoding lives with the dependence tracker.
//
// Topologies are i-h-1: i inputs (1 ≤ i ≤ MaxInputs), h hidden neurons
// (1 ≤ h ≤ MaxInputs), one output neuron. The output is a sigmoid in
// (0, 1); outputs ≥ 0.5 classify the sequence as valid. The magnitude of
// (output − 0.5) approximates prediction confidence, and "most negative
// output" in the ranking tie-break means smallest raw output.
package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// MaxInputs is M, the hardware bound on a neuron's fan-in; it also caps
// the hidden-layer width (the pipeline has M hidden neurons plus one
// output neuron: the paper's "total neuron 11" with M = 10).
const MaxInputs = 10

// Activation computes the neuron activation function. The default is the
// exact sigmoid; the hardware model substitutes a quantized lookup table.
type Activation func(float64) float64

// Sigmoid is the exact logistic function.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Network is a one-hidden-layer perceptron. The zero value is unusable;
// use New or Load.
type Network struct {
	NIn     int
	NHidden int
	// WH[h] holds hidden neuron h's weights: NIn input weights then the
	// bias. WO holds the output neuron's weights: NHidden weights then
	// the bias.
	WH  [][]float64
	WO  []float64
	Act Activation
	// Momentum is the classical momentum coefficient applied by Train
	// (0 disables it). Momentum is training state, not part of the
	// serialized weights.
	Momentum float64

	hidden []float64   // scratch: last hidden activations
	vh     [][]float64 // momentum velocity, hidden weights
	vo     []float64   // momentum velocity, output weights
}

// New creates a network with the given topology and small random
// weights.
func New(nIn, nHidden int, rng *rand.Rand) *Network {
	if nIn < 1 || nIn > MaxInputs || nHidden < 1 || nHidden > MaxInputs {
		panic(fmt.Sprintf("nn: invalid topology %d-%d-1", nIn, nHidden))
	}
	n := &Network{NIn: nIn, NHidden: nHidden, Act: Sigmoid}
	n.WH = make([][]float64, nHidden)
	for h := range n.WH {
		w := make([]float64, nIn+1)
		for i := range w {
			w[i] = rng.Float64() - 0.5
		}
		n.WH[h] = w
	}
	n.WO = make([]float64, nHidden+1)
	for i := range n.WO {
		n.WO[i] = rng.Float64() - 0.5
	}
	n.hidden = make([]float64, nHidden)
	return n
}

// Clone returns a deep copy sharing no state.
func (n *Network) Clone() *Network {
	c := &Network{NIn: n.NIn, NHidden: n.NHidden, Act: n.Act}
	c.WH = make([][]float64, n.NHidden)
	for h := range n.WH {
		c.WH[h] = append([]float64(nil), n.WH[h]...)
	}
	c.WO = append([]float64(nil), n.WO...)
	c.hidden = make([]float64, n.NHidden)
	return c
}

// Forward computes the network output for input x (len must be NIn).
// It is on the classification hot path and allocation-free; the panic
// guard below fires only on programmer error.
//
//act:noalloc
func (n *Network) Forward(x []float64) float64 {
	if len(x) != n.NIn {
		//act:alloc-ok topology-mismatch panic, cold guard
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), n.NIn))
	}
	statForward.Inc()
	act := n.Act
	if act == nil {
		act = Sigmoid
	}
	for h, w := range n.WH {
		sum := w[n.NIn] // bias
		for i, xi := range x {
			sum += w[i] * xi
		}
		n.hidden[h] = act(sum) //act:alloc-ok-call activation functions are pure math
	}
	sum := n.WO[n.NHidden]
	for h, hv := range n.hidden {
		sum += n.WO[h] * hv
	}
	return act(sum) //act:alloc-ok-call activation functions are pure math
}

// Valid classifies input x: true when the output is at least 0.5.
func (n *Network) Valid(x []float64) bool { return n.Forward(x) >= 0.5 }

// Train performs one backpropagation step toward target (typically 0.9
// for valid, 0.1 for invalid) with the given learning rate, returning
// the pre-update output. The error terms use the sigmoid derivative
// o·(1−o) exactly as in Section II-A; when Momentum is set, classical
// momentum accelerates convergence on hard (XOR-like) datasets.
//
// Online training runs this per dependence; with Momentum disabled (the
// module default) the body is allocation-free, and with momentum the
// velocity buffers are lazily allocated exactly once.
//
//act:noalloc
func (n *Network) Train(x []float64, target, lr float64) float64 {
	statTrain.Inc()
	o := n.Forward(x)
	errOut := o * (1 - o) * (target - o)
	mu := n.Momentum
	if mu > 0 && n.vh == nil {
		n.vh = make([][]float64, n.NHidden) //act:alloc-ok momentum velocity, lazy one-time init
		for h := range n.vh {
			n.vh[h] = make([]float64, n.NIn+1) //act:alloc-ok momentum velocity, lazy one-time init
		}
		n.vo = make([]float64, n.NHidden+1) //act:alloc-ok momentum velocity, lazy one-time init
	}

	// Hidden-layer error terms are the back-propagated share of the
	// output error, scaled by each hidden activation's derivative.
	for h, hv := range n.hidden {
		errH := hv * (1 - hv) * n.WO[h] * errOut
		w := n.WH[h]
		if mu > 0 {
			v := n.vh[h]
			for i, xi := range x {
				v[i] = mu*v[i] + lr*errH*xi
				w[i] += v[i]
			}
			v[n.NIn] = mu*v[n.NIn] + lr*errH
			w[n.NIn] += v[n.NIn]
		} else {
			for i, xi := range x {
				w[i] += lr * errH * xi
			}
			w[n.NIn] += lr * errH
		}
	}
	if mu > 0 {
		for h, hv := range n.hidden {
			n.vo[h] = mu*n.vo[h] + lr*errOut*hv
			n.WO[h] += n.vo[h]
		}
		n.vo[n.NHidden] = mu*n.vo[n.NHidden] + lr*errOut
		n.WO[n.NHidden] += n.vo[n.NHidden]
	} else {
		for h, hv := range n.hidden {
			n.WO[h] += lr * errOut * hv
		}
		n.WO[n.NHidden] += lr * errOut
	}
	return o
}

// WeightCount returns the total number of weights, which is the length
// of the flattened weight-register array the ldwt/stwt instructions
// address.
func (n *Network) WeightCount() int { return n.NHidden*(n.NIn+1) + n.NHidden + 1 }

// Flatten appends all weights, hidden neurons first, to dst and returns
// it. The layout matches ReadRegisters/WriteRegisters index order.
func (n *Network) Flatten(dst []float64) []float64 {
	for _, w := range n.WH {
		dst = append(dst, w...) //act:alloc-ok callers pass dst preallocated to WeightCount
	}
	return append(dst, n.WO...) //act:alloc-ok callers pass dst preallocated to WeightCount
}

// LoadFlat overwrites all weights from a flattened array produced by
// Flatten. It returns an error on length mismatch.
func (n *Network) LoadFlat(w []float64) error {
	if len(w) != n.WeightCount() {
		return fmt.Errorf("nn: weight count %d, want %d", len(w), n.WeightCount()) //act:alloc-ok length-mismatch error, cold path
	}
	for h := range n.WH {
		copy(n.WH[h], w[:n.NIn+1])
		w = w[n.NIn+1:]
	}
	copy(n.WO, w)
	return nil
}

// ReadRegister returns the weight at flat index i (the ldwt instruction).
func (n *Network) ReadRegister(i int) float64 {
	per := n.NIn + 1
	if h := i / per; h < n.NHidden {
		return n.WH[h][i%per]
	}
	return n.WO[i-n.NHidden*per]
}

// WriteRegister sets the weight at flat index i (the stwt instruction).
func (n *Network) WriteRegister(i int, v float64) {
	per := n.NIn + 1
	if h := i / per; h < n.NHidden {
		n.WH[h][i%per] = v
		return
	}
	n.WO[i-n.NHidden*per] = v
}

// Binary weight-blob format, the stand-in for weights stored in the
// program binary: u32 nIn | u32 nHidden | float64 weights (flat order).
const blobHeader = 8

// MarshalBinary serializes the topology and weights.
func (n *Network) MarshalBinary() ([]byte, error) {
	buf := make([]byte, blobHeader, blobHeader+8*n.WeightCount())
	binary.LittleEndian.PutUint32(buf[0:], uint32(n.NIn))
	binary.LittleEndian.PutUint32(buf[4:], uint32(n.NHidden))
	for _, w := range n.Flatten(nil) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(w))
		buf = append(buf, b[:]...)
	}
	return buf, nil
}

// UnmarshalBinary reconstructs a network serialized by MarshalBinary.
func (n *Network) UnmarshalBinary(data []byte) error {
	if len(data) < blobHeader {
		return errors.New("nn: weight blob too short")
	}
	nIn := int(binary.LittleEndian.Uint32(data[0:]))
	nHidden := int(binary.LittleEndian.Uint32(data[4:]))
	if nIn < 1 || nIn > MaxInputs || nHidden < 1 || nHidden > MaxInputs {
		return fmt.Errorf("nn: invalid topology %d-%d-1 in blob", nIn, nHidden)
	}
	want := nHidden*(nIn+1) + nHidden + 1
	if len(data) != blobHeader+8*want {
		return fmt.Errorf("nn: blob length %d, want %d", len(data), blobHeader+8*want)
	}
	flat := make([]float64, want)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[blobHeader+8*i:]))
	}
	*n = Network{NIn: nIn, NHidden: nHidden, Act: Sigmoid, hidden: make([]float64, nHidden)}
	n.WH = make([][]float64, nHidden)
	for h := range n.WH {
		n.WH[h] = make([]float64, nIn+1)
	}
	n.WO = make([]float64, nHidden+1)
	return n.LoadFlat(flat)
}

// Topology renders the topology as "i-h-1".
func (n *Network) Topology() string { return fmt.Sprintf("%d-%d-1", n.NIn, n.NHidden) }
