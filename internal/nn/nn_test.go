package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if Sigmoid(10) < 0.999 || Sigmoid(-10) > 0.001 {
		t.Error("sigmoid tails wrong")
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := Sigmoid(x)
		return s >= 0 && s <= 1 && Sigmoid(-x)+s > 0.999999 && Sigmoid(-x)+s < 1.000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewTopologyBounds(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {11, 1}, {1, 11}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("topology %v accepted", bad)
				}
			}()
			New(bad[0], bad[1], rand.New(rand.NewSource(1)))
		}()
	}
}

func TestLearnXOR(t *testing.T) {
	// XOR is the classic non-linearly-separable sanity check for a
	// one-hidden-layer backprop implementation.
	samples := []Sample{
		{X: []float64{0.1, 0.1}, Y: 0.1},
		{X: []float64{0.1, 0.9}, Y: 0.9},
		{X: []float64{0.9, 0.1}, Y: 0.9},
		{X: []float64{0.9, 0.9}, Y: 0.1},
	}
	n, res := TrainNew(2, 4, samples, FitConfig{Seed: 3, MaxEpochs: 20000, LearningRate: 0.5, Patience: 20000})
	if miss := Evaluate(n, samples); miss != 0 {
		t.Fatalf("XOR not learned: miss=%v after %d epochs (mse %v)", miss, res.Epochs, res.MSE)
	}
}

func TestLearnPointMemorization(t *testing.T) {
	// The ACT use case: memorize a scatter of "valid" points and reject
	// planted "invalid" points.
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	for i := 0; i < 12; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y := TargetInvalid
		if i%2 == 0 {
			y = TargetValid
		}
		samples = append(samples, Sample{X: x, Y: y})
	}
	n, _ := TrainNew(4, 8, samples, FitConfig{Seed: 11, MaxEpochs: 8000, Patience: 8000})
	if miss := Evaluate(n, samples); miss > 0 {
		t.Fatalf("failed to memorize 12 points: miss=%v", miss)
	}
}

func TestFlattenLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(6, 7, rng)
	flat := a.Flatten(nil)
	if len(flat) != a.WeightCount() {
		t.Fatalf("flat len %d, want %d", len(flat), a.WeightCount())
	}
	b := New(6, 7, rand.New(rand.NewSource(99)))
	if err := b.LoadFlat(flat); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.9, 0.3, 0.7, 0.5, 0.2}
	if a.Forward(x) != b.Forward(x) {
		t.Fatal("loaded network disagrees with source")
	}
	if err := b.LoadFlat(flat[1:]); err == nil {
		t.Fatal("short weight vector accepted")
	}
}

func TestWeightRegisters(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := New(3, 2, rng)
	flat := n.Flatten(nil)
	for i, w := range flat {
		if got := n.ReadRegister(i); got != w {
			t.Fatalf("ReadRegister(%d) = %v, want %v", i, got, w)
		}
	}
	n.WriteRegister(0, 42)
	if n.WH[0][0] != 42 {
		t.Fatal("WriteRegister(0) did not hit WH[0][0]")
	}
	last := n.WeightCount() - 1
	n.WriteRegister(last, -7)
	if n.WO[len(n.WO)-1] != -7 {
		t.Fatal("WriteRegister(last) did not hit output bias")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(4, 9, rng)
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b Network
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if b.Topology() != a.Topology() {
		t.Fatalf("topology %s, want %s", b.Topology(), a.Topology())
	}
	x := []float64{0.2, 0.4, 0.6, 0.8}
	if math.Abs(a.Forward(x)-b.Forward(x)) > 1e-15 {
		t.Fatal("deserialized network disagrees")
	}
	var c Network
	if err := c.UnmarshalBinary(blob[:10]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	blob[0] = 0xFF // corrupt topology
	if err := c.UnmarshalBinary(blob); err == nil {
		t.Fatal("corrupt topology accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(2, 2, rng)
	b := a.Clone()
	x := []float64{0.3, 0.6}
	before := a.Forward(x)
	b.Train(x, 0.9, 0.5)
	if a.Forward(x) != before {
		t.Fatal("training the clone changed the original")
	}
}

func TestTrainMovesTowardTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := New(2, 3, rng)
	x := []float64{0.4, 0.7}
	o0 := n.Forward(x)
	for i := 0; i < 200; i++ {
		n.Train(x, 0.9, 0.2)
	}
	if o1 := n.Forward(x); o1 <= o0 || o1 < 0.8 {
		t.Fatalf("output did not move toward target: %v -> %v", o0, o1)
	}
}

func TestLUT(t *testing.T) {
	l := DefaultLUT()
	if e := l.MaxError(); e > 0.01 {
		t.Fatalf("LUT max error %v too large", e)
	}
	if l.Apply(100) != l.Apply(8) || l.Apply(-100) != l.Apply(-8) {
		t.Error("LUT saturation broken")
	}
	// Coarse tables have larger error than fine ones.
	coarse := NewSigmoidLUT(16, 8)
	if coarse.MaxError() <= l.MaxError() {
		t.Error("coarse LUT unexpectedly at least as accurate as fine LUT")
	}
}

func TestNetworkWithLUTActivation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := New(2, 2, rng)
	exact := n.Forward([]float64{0.5, 0.5})
	n.Act = DefaultLUT().Activation()
	quant := n.Forward([]float64{0.5, 0.5})
	if math.Abs(exact-quant) > 0.05 {
		t.Fatalf("LUT inference diverges: %v vs %v", exact, quant)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	n := New(2, 2, rand.New(rand.NewSource(1)))
	if Evaluate(n, nil) != 0 {
		t.Fatal("empty evaluation should be 0")
	}
}
