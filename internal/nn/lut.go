package nn

import "math"

// SigmoidLUT is the hardware sigmoid table of Section IV-A: the neuron
// computes its weighted sum and looks the activation up in a quantized
// table instead of evaluating exp. The table covers [-Range, Range];
// inputs beyond saturate to the table ends, matching a fixed-size ROM.
type SigmoidLUT struct {
	Range   float64
	Entries int
	table   []float64
}

// NewSigmoidLUT builds a table with the given number of entries over
// [-rng, rng]. The paper-scale default is 256 entries over [-8, 8].
func NewSigmoidLUT(entries int, rng float64) *SigmoidLUT {
	if entries < 2 {
		entries = 2
	}
	if rng <= 0 {
		rng = 8
	}
	l := &SigmoidLUT{Range: rng, Entries: entries, table: make([]float64, entries)}
	for i := range l.table {
		x := -rng + 2*rng*float64(i)/float64(entries-1)
		l.table[i] = Sigmoid(x)
	}
	return l
}

// DefaultLUT is the hardware-default 256-entry table over [-8, 8].
func DefaultLUT() *SigmoidLUT { return NewSigmoidLUT(256, 8) }

// Apply looks up the quantized sigmoid of x. NaN propagates rather than
// indexing the table with garbage: corrupted weights must surface as a
// NaN output the module's divergence breaker can detect, not as a crash
// of the lookup itself.
func (l *SigmoidLUT) Apply(x float64) float64 {
	if math.IsNaN(x) {
		return x
	}
	if x <= -l.Range {
		return l.table[0]
	}
	if x >= l.Range {
		return l.table[l.Entries-1]
	}
	i := int(math.Round((x + l.Range) / (2 * l.Range) * float64(l.Entries-1)))
	return l.table[i]
}

// Activation returns the LUT as an Activation, for plugging into a
// Network to model hardware inference.
func (l *SigmoidLUT) Activation() Activation { return l.Apply }

// MaxError returns the worst-case absolute error of the table against
// the exact sigmoid over its range, sampled at 10x table resolution.
func (l *SigmoidLUT) MaxError() float64 {
	worst := 0.0
	steps := l.Entries * 10
	for i := 0; i <= steps; i++ {
		x := -l.Range + 2*l.Range*float64(i)/float64(steps)
		if e := math.Abs(l.Apply(x) - Sigmoid(x)); e > worst {
			worst = e
		}
	}
	return worst
}
