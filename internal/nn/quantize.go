package nn

import "math"

// Weight quantization. The hardware's weight registers are fixed-point,
// not float64: this models storing weights in signed Qm.f format (f
// fractional bits) and answers the fidelity question of how many bits
// the ACT Module's registers need before classification quality decays.

// Quantize rounds every weight to the nearest multiple of 2^-fracBits,
// saturating at the representable range of a signed 16-bit register
// (the natural register width for the paper's 4-byte weight entries
// holding weight plus metadata). It returns the largest absolute
// rounding error introduced.
func (n *Network) Quantize(fracBits int) float64 {
	step := math.Ldexp(1, -fracBits)
	limit := math.Ldexp(1, 15-fracBits) - step // int16 range in Q-format
	worst := 0.0
	q := func(w float64) float64 {
		v := math.Round(w/step) * step
		if v > limit {
			v = limit
		}
		if v < -limit {
			v = -limit
		}
		if e := math.Abs(v - w); e > worst {
			worst = e
		}
		return v
	}
	for h := range n.WH {
		for i, w := range n.WH[h] {
			n.WH[h][i] = q(w)
		}
	}
	for i, w := range n.WO {
		n.WO[i] = q(w)
	}
	return worst
}

// QuantizedDisagreement returns the fraction of inputs on which the
// quantized copy of the network disagrees with the original's
// classification.
func QuantizedDisagreement(n *Network, fracBits int, inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	qn := n.Clone()
	qn.Quantize(fracBits)
	diff := 0
	for _, x := range inputs {
		if n.Valid(x) != qn.Valid(x) {
			diff++
		}
	}
	return float64(diff) / float64(len(inputs))
}
