package nn

import "math"

// Weight quantization. The hardware's weight registers are fixed-point,
// not float64: this models storing weights in signed Qm.f format (f
// fractional bits) and answers the fidelity question of how many bits
// the ACT Module's registers need before classification quality decays.
// Compile (qnetwork.go) uses the same rounding rules to actually execute
// in integers.

// quantRegister rounds a weight to the nearest multiple of 2^-fracBits
// and saturates to the signed 16-bit register range, returning the raw
// register value (weight · 2^fracBits). It is the single source of the
// Q-format rounding rules shared by Quantize and Compile. The caller
// guarantees w is finite.
func quantRegister(w float64, fracBits int) int16 {
	v := math.Round(math.Ldexp(w, fracBits))
	if v > math.MaxInt16 {
		return math.MaxInt16
	}
	if v < math.MinInt16+1 { // symmetric range: ±32767, matching the old ±limit clamp
		return math.MinInt16 + 1
	}
	return int16(v)
}

// Quantize rounds every weight to the nearest multiple of 2^-fracBits,
// saturating at the representable range of a signed 16-bit register
// (the natural register width for the paper's 4-byte weight entries
// holding weight plus metadata). It returns the largest absolute
// rounding error introduced.
func (n *Network) Quantize(fracBits int) float64 {
	step := math.Ldexp(1, -fracBits)
	worst := 0.0
	q := func(w float64) float64 {
		v := float64(quantRegister(w, fracBits)) * step
		if e := math.Abs(v - w); e > worst {
			worst = e
		}
		return v
	}
	for h := range n.WH {
		for i, w := range n.WH[h] {
			n.WH[h][i] = q(w)
		}
	}
	for i, w := range n.WO {
		n.WO[i] = q(w)
	}
	return worst
}

// QuantizedDisagreement returns the fraction of inputs on which the
// quantized copy of the network disagrees with the original's
// classification.
func QuantizedDisagreement(n *Network, fracBits int, inputs [][]float64) float64 {
	return QuantizedDisagreementInto(nil, n, fracBits, inputs)
}

// QuantizedDisagreementInto is QuantizedDisagreement with a reusable
// scratch network: when scratch has n's topology its weights are
// overwritten in place instead of cloning n per call, so a sweep over
// many fracBits settings allocates one scratch network, not one per
// point. A nil or mismatched scratch falls back to cloning.
func QuantizedDisagreementInto(scratch, n *Network, fracBits int, inputs [][]float64) float64 {
	if len(inputs) == 0 {
		return 0
	}
	qn := scratch
	if qn == nil || qn.NIn != n.NIn || qn.NHidden != n.NHidden {
		qn = n.Clone()
	} else {
		qn.Act = n.Act
		for h := range n.WH {
			copy(qn.WH[h], n.WH[h])
		}
		copy(qn.WO, n.WO)
	}
	qn.Quantize(fracBits)
	diff := 0
	for _, x := range inputs {
		if n.Valid(x) != qn.Valid(x) {
			diff++
		}
	}
	return float64(diff) / float64(len(inputs))
}
