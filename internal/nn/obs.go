package nn

import "act/internal/obs"

// Network instrumentation on the process-wide registry: one relaxed
// atomic add per pass, the only telemetry cheap enough for the
// per-dependence classification path.
var (
	// statForward counts forward passes (classification and the forward
	// half of every training step).
	statForward = obs.Default.Counter("act_nn_forward_total",
		"Network forward passes, including the forward half of training steps.")

	// statTrain counts backpropagation steps.
	statTrain = obs.Default.Counter("act_nn_train_total",
		"Network backpropagation steps.")
)
