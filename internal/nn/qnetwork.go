package nn

import (
	"errors"
	"fmt"
	"math"
)

// Fixed-point batched inference. The hardware ACT Module never touches
// floating point at classification time: weights live in signed Q-format
// registers, the multiply-add tree accumulates integers, and the sigmoid
// is a ROM lookup. QNetwork is that datapath in software — a Network
// compiled down to int16 weights in one cache-linear slice, int32
// accumulation, and the quantized-sigmoid table as the only nonlinearity
// — with a batch entry point so one call classifies a whole run of IGB
// windows and the per-window dispatch overhead amortizes away.
//
// A QNetwork is immutable once compiled. Online training keeps mutating
// the float Network it came from, so callers must treat a compiled
// kernel as valid for exactly one weight generation and recompile (or
// fall back to float inference) when the generation moves; core.Module
// keys this off the same generation counter as its verdict cache.

// QInputFrac is the fixed-point precision of quantized inputs and hidden
// activations: unsigned values in [0, 1] scaled by 2^QInputFrac. The
// choice bounds the int32 accumulator: a product |w|·x is at most
// 2^15 · 2^QInputFrac = 2^26, and a neuron sums at most MaxInputs
// products plus a bias shifted to the same scale, so with QInputFrac=11
// the accumulator stays below (MaxInputs+1) · 2^26 < 2^30 — no overflow
// for any representable weight state.
const QInputFrac = 11

// qOne is 1.0 in input fixed point.
const qOne = 1 << QInputFrac

// QNetwork is a Network compiled to the fixed-point datapath. Create one
// with Compile; the zero value is unusable.
type QNetwork struct {
	NIn      int
	NHidden  int
	FracBits int // weight Q-format: value = register · 2^-FracBits

	// w holds every weight register in Flatten order — NHidden rows of
	// NIn+1 (weights then bias), then the output row of NHidden+1 — one
	// contiguous slice walked strictly sequentially by the kernel.
	w []int16

	// lutOut is the activation table for the output neuron (the exact
	// float values the LUT ROM holds); lutHid is the same table
	// pre-scaled to input fixed point, so hidden activations feed the
	// output accumulator without leaving integers.
	lutOut []float64
	lutHid []int32

	// Activation lookup precompute, in accumulator scale (fractional
	// bits = FracBits + QInputFrac): half is Range, span is 2·Range.
	// When span is a power of two (the default ±8 table with any
	// FracBits) the index computes with a shift instead of a divide.
	half, span int64
	shift      uint
	pow2       bool

	xq    []int16 // scratch: quantized inputs for one Forward call
	slab  []int16 // scratch: quantized feature slab for ForwardWindows
	accs  []int32 // scratch: per-window hidden pre-activations, [window][row]
	bound float64 // conservative |quantized − float| output bound
}

// ErrorBound returns a conservative bound on |q.Forward(x) − n.Forward(x)|
// for the Network n the kernel was compiled from, valid for inputs in
// [0, 1] (the encoder contract). It accounts for weight rounding, input
// and hidden-activation quantization, and the at-most-one-cell index
// shift each can induce in the LUT lookups.
func (q *QNetwork) ErrorBound() float64 { return q.bound }

// Weights returns the register file (tests and diagnostics).
func (q *QNetwork) Weights() []int16 { return append([]int16(nil), q.w...) }

// Compile lowers a float Network onto the fixed-point datapath using the
// given activation table (nil means DefaultLUT). The weight Q-format is
// chosen adaptively: the most fractional bits that still represent the
// largest weight magnitude, rounded by the same rules as
// Network.Quantize. Compile fails — it never panics — when the weight
// state cannot be represented: non-finite weights (an SEU or a runaway
// update), magnitudes beyond the int16 integer range, or a malformed
// topology. Callers treat failure as "keep classifying in float".
func Compile(n *Network, lut *SigmoidLUT) (*QNetwork, error) {
	if n == nil {
		return nil, errors.New("nn: compile of nil network")
	}
	if n.NIn < 1 || n.NHidden < 1 || len(n.WH) != n.NHidden || len(n.WO) != n.NHidden+1 {
		return nil, fmt.Errorf("nn: compile of malformed topology %d-%d-1", n.NIn, n.NHidden)
	}
	for _, row := range n.WH {
		if len(row) != n.NIn+1 {
			return nil, fmt.Errorf("nn: hidden row width %d, want %d", len(row), n.NIn+1)
		}
	}
	if lut == nil {
		lut = DefaultLUT()
	}
	// The entry cap keeps the branchless index numerator,
	// (acc+half)·(Entries−1)+half with |acc| < 2^30 and half ≤ 2^40,
	// comfortably inside int64.
	if lut.Entries < 2 || lut.Entries > 1<<16 || !(lut.Range > 0) || math.IsInf(lut.Range, 0) {
		return nil, fmt.Errorf("nn: compile with malformed LUT (%d entries over ±%v)", lut.Entries, lut.Range)
	}

	// Largest representable-magnitude check and adaptive Q-format: pick
	// the most fractional bits whose saturation limit still covers every
	// weight, so small trained weights keep maximum precision while a
	// drifted large-magnitude state degrades gracefully instead of
	// clipping.
	maxW := 0.0
	scan := func(w float64) error {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return errors.New("nn: compile of non-finite weights")
		}
		if a := math.Abs(w); a > maxW {
			maxW = a
		}
		return nil
	}
	for _, row := range n.WH {
		for _, w := range row {
			if err := scan(w); err != nil {
				return nil, err
			}
		}
	}
	for _, w := range n.WO {
		if err := scan(w); err != nil {
			return nil, err
		}
	}
	frac := 15
	for frac > 0 && maxW > math.Ldexp(1, 15-frac)-math.Ldexp(1, -frac) {
		frac--
	}
	if maxW > math.Ldexp(1, 15)-1 {
		return nil, fmt.Errorf("nn: weight magnitude %g exceeds the int16 register range", maxW)
	}

	q := &QNetwork{
		NIn:      n.NIn,
		NHidden:  n.NHidden,
		FracBits: frac,
		w:        make([]int16, n.WeightCount()),
		lutOut:   lut.table,
		lutHid:   make([]int32, lut.Entries),
		xq:       make([]int16, n.NIn),
	}
	i := 0
	for _, row := range n.WH {
		for _, w := range row {
			q.w[i] = quantRegister(w, frac)
			i++
		}
	}
	for _, w := range n.WO {
		q.w[i] = quantRegister(w, frac)
		i++
	}
	for j, v := range lut.table {
		if !(v >= 0 && v <= 1) { // the sigmoid ROM's codomain; NaN fails too
			return nil, fmt.Errorf("nn: LUT entry %d = %v outside [0, 1]", j, v)
		}
		q.lutHid[j] = int32(v*qOne + 0.5)
	}

	// Index precompute: the accumulator carries FracBits+QInputFrac
	// fractional bits, so Range and 2·Range land at the same scale.
	s := uint(frac + QInputFrac)
	q.half = int64(math.Round(math.Ldexp(lut.Range, int(s))))
	if q.half <= 0 || q.half > 1<<40 {
		return nil, fmt.Errorf("nn: LUT range %v unrepresentable at scale 2^-%d", lut.Range, s)
	}
	q.span = 2 * q.half
	if q.span&(q.span-1) == 0 {
		q.pow2 = true
		for 1<<q.shift < q.span {
			q.shift++
		}
	}
	q.bound = compileBound(n, lut, frac)
	return q, nil
}

// compileBound derives the conservative output-error bound stored in the
// kernel. Error sources, per layer: weight rounding (≤ 2^-(FracBits+1)
// per register), input/hidden quantization (≤ 2^-(QInputFrac+1) per
// value), and the LUT index each perturbed pre-activation resolves to,
// which can move at most round(δ/cell)+1 entries for a pre-activation
// error δ and cell width 2·Range/(Entries−1).
func compileBound(n *Network, lut *SigmoidLUT, frac int) float64 {
	ew := math.Ldexp(1, -(frac + 1))      // weight rounding
	ex := math.Ldexp(1, -(QInputFrac + 1)) // input/hidden quantization
	cell := 2 * lut.Range / float64(lut.Entries-1)
	step := 0.0 // largest adjacent-entry jump in the table
	for i := 1; i < lut.Entries; i++ {
		if d := math.Abs(lut.table[i] - lut.table[i-1]); d > step {
			step = d
		}
	}
	lutErr := func(pre float64) float64 { // value error from a pre-activation error
		return (math.Floor(pre/cell) + 1) * step
	}
	// Hidden layer: inputs are in [0, 1], so each row's pre-activation
	// error is bounded by the row's weight-rounding mass plus its
	// magnitude times the input quantization.
	worstH := 0.0
	for _, row := range n.WH {
		sum := 0.0
		for _, w := range row[:n.NIn] {
			sum += math.Abs(w)
		}
		if d := ew*float64(n.NIn+1) + sum*ex; d > worstH {
			worstH = d
		}
	}
	dh := lutErr(worstH) + ex // value error of any hidden activation
	sumO := 0.0
	for _, w := range n.WO[:n.NHidden] {
		sumO += math.Abs(w)
	}
	preO := ew*float64(n.NHidden+1) + sumO*dh
	return lutErr(preO)
}

// quantIn maps a float input to input fixed point. Inputs follow the
// encoder contract (0, 1); values outside — including NaN — clamp to the
// ends, so the conversion can never overflow int16.
//
//act:noalloc
func quantIn(v float64) int16 {
	if !(v > 0) { // NaN lands here too
		return 0
	}
	if v >= 1 {
		return qOne
	}
	return int16(v*qOne + 0.5)
}

// index resolves an accumulator value (FracBits+QInputFrac fractional
// bits) to a LUT entry: saturate beyond ±Range, round to nearest inside,
// exactly the float Apply's indexing done in integers.
//
// The clamp runs after the raw index computation rather than before it:
// saturation depends on the data, so a pre-test is an unpredictable
// branch paid twice per lookup, while the post-clamp compiles to
// conditional moves. Outside ±Range the raw index is monotonic in the
// accumulator (the >> floors; the / path can truncate toward zero on a
// negative numerator, but every negative numerator clamps to 0 anyway),
// so clamping lands on exactly the entry the saturating pre-test picks.
//
//act:noalloc
func (q *QNetwork) index(acc int32) int32 {
	a := int64(acc)
	last := int64(len(q.lutHid) - 1)
	num := (a+q.half)*last + q.half
	var idx int64
	if q.pow2 {
		idx = num >> q.shift
	} else {
		idx = num / q.span
	}
	if idx < 0 {
		idx = 0
	}
	if idx > last {
		idx = last
	}
	return int32(idx)
}

// classify runs the integer datapath over one quantized input window.
// It is the shared core of Forward, ForwardBatch, and ForwardWindows, so
// the scalar and batched paths are bit-identical by construction.
//
//act:noalloc
func (q *QNetwork) classify(xq []int16) float64 {
	per := q.NIn + 1
	w := q.w
	lut := q.lutHid
	wo := w[q.NHidden*per:]
	off := 0
	var oacc int32
	for h := 0; h < q.NHidden; h++ {
		// Row/input sub-slices of equal length let the compiler drop the
		// per-element bounds checks in the multiply-accumulate loop.
		row := w[off : off+q.NIn]
		x := xq[:len(row)]
		acc := int32(w[off+q.NIn]) << QInputFrac // bias, pre-shifted to accumulator scale
		i := 0
		for ; i+3 < len(row); i += 4 {
			acc += int32(row[i])*int32(x[i]) + int32(row[i+1])*int32(x[i+1]) +
				int32(row[i+2])*int32(x[i+2]) + int32(row[i+3])*int32(x[i+3])
		}
		for ; i < len(row); i++ {
			acc += int32(row[i]) * int32(x[i])
		}
		off += per
		oacc += int32(wo[h]) * lut[q.index(acc)]
	}
	oacc += int32(wo[q.NHidden]) << QInputFrac
	return q.lutOut[q.index(oacc)]
}

// Forward classifies one input vector (len must be NIn) through the
// fixed-point datapath.
//
//act:noalloc
func (q *QNetwork) Forward(x []float64) float64 {
	if len(x) != q.NIn {
		//act:alloc-ok topology-mismatch panic, cold guard
		panic(fmt.Sprintf("nn: input width %d, want %d", len(x), q.NIn))
	}
	statForward.Inc()
	for i, v := range x {
		q.xq[i] = quantIn(v)
	}
	return q.classify(q.xq)
}

// ForwardBatch classifies len(outs) independent input vectors in one
// call, writing the outputs in order. The forward-pass counter is
// batched: one atomic add for the whole call.
//
//act:noalloc
func (q *QNetwork) ForwardBatch(xs [][]float64, outs []float64) {
	if len(xs) != len(outs) {
		//act:alloc-ok batch-shape panic, cold guard
		panic(fmt.Sprintf("nn: batch of %d inputs, %d outputs", len(xs), len(outs)))
	}
	statForward.Add(uint64(len(outs)))
	for k, x := range xs {
		if len(x) != q.NIn {
			//act:alloc-ok topology-mismatch panic, cold guard
			panic(fmt.Sprintf("nn: input width %d, want %d", len(x), q.NIn))
		}
		for i, v := range x {
			q.xq[i] = quantIn(v)
		}
		outs[k] = q.classify(q.xq)
	}
}

// ForwardWindows classifies len(outs) overlapping windows of a feature
// slab: window k's input is feat[k·stride : k·stride+NIn]. This is the
// shape the batched IGB path produces — consecutive dependence windows
// share all but one dependence's features — so the slab is quantized
// once, not once per window. The forward-pass counter is batched.
//
//act:noalloc
func (q *QNetwork) ForwardWindows(feat []float64, stride int, outs []float64) {
	n := len(outs)
	if n == 0 {
		return
	}
	if stride <= 0 || (n-1)*stride+q.NIn > len(feat) {
		//act:alloc-ok slab-shape panic, cold guard
		panic(fmt.Sprintf("nn: slab of %d too short for %d windows at stride %d", len(feat), n, stride))
	}
	statForward.Add(uint64(n))
	need := (n-1)*stride + q.NIn
	if cap(q.slab) < need {
		q.slab = make([]int16, need) //act:alloc-ok grow-once slab scratch
	}
	slab := q.slab[:need]
	for i := 0; i < need; i++ {
		slab[i] = quantIn(feat[i])
	}

	// Batched evaluation runs in two passes so each loop stays small
	// enough for the register allocator: a one-window-at-a-time loop
	// keeps the whole QNetwork live and spills every variable to the
	// stack. Pass one is pure multiply-accumulate — for each hidden row
	// the slab is walked window by window, the row reloaded once, the
	// pre-activations stored to a [window][row] scratch. Pass two turns
	// pre-activations into outputs: branchless LUT indexing, output-row
	// accumulation, final table read. The arithmetic is identical to
	// classify, instruction for instruction per value
	// (TestForwardBatchMatchesScalar pins the bit-equality).
	nin, nh := q.NIn, q.NHidden
	per := nin + 1
	w := q.w
	if cap(q.accs) < n*nh {
		q.accs = make([]int32, n*nh) //act:alloc-ok grow-once pre-activation scratch
	}
	accs := q.accs[: n*nh : n*nh]
	for h := 0; h < nh; h++ {
		off := h * per
		row := w[off : off+nin : off+nin]
		bias := int32(w[off+nin]) << QInputFrac
		// Cursor-stepped indexing: ai walks the scratch at stride nh, xo
		// walks the slab at the window stride, so the loop carries adds
		// instead of per-iteration multiplies.
		ai, xo := h, 0
		switch nin {
		case 6:
			// The deployed shape (N=3 windows of 2-feature dependences):
			// row weights live in registers, one load+MAC per input.
			w0, w1, w2 := int32(row[0]), int32(row[1]), int32(row[2])
			w3, w4, w5 := int32(row[3]), int32(row[4]), int32(row[5])
			for k := 0; k < n; k++ {
				x := slab[xo : xo+6 : xo+6]
				accs[ai] = bias +
					w0*int32(x[0]) + w1*int32(x[1]) + w2*int32(x[2]) +
					w3*int32(x[3]) + w4*int32(x[4]) + w5*int32(x[5])
				ai += nh
				xo += stride
			}
		case 4:
			w0, w1, w2, w3 := int32(row[0]), int32(row[1]), int32(row[2]), int32(row[3])
			for k := 0; k < n; k++ {
				x := slab[xo : xo+4 : xo+4]
				accs[ai] = bias +
					w0*int32(x[0]) + w1*int32(x[1]) + w2*int32(x[2]) + w3*int32(x[3])
				ai += nh
				xo += stride
			}
		case 2:
			w0, w1 := int32(row[0]), int32(row[1])
			for k := 0; k < n; k++ {
				x := slab[xo : xo+2 : xo+2]
				accs[ai] = bias + w0*int32(x[0]) + w1*int32(x[1])
				ai += nh
				xo += stride
			}
		default:
			for k := 0; k < n; k++ {
				x := slab[xo : xo+nin]
				acc := bias
				for i, wv := range row {
					acc += int32(wv) * int32(x[i])
				}
				accs[ai] = acc
				ai += nh
				xo += stride
			}
		}
	}

	// Pass two is specialized on the index mode: the power-of-two span
	// (any FracBits with the default ±8 table) indexes with a shift, the
	// general case with a divide. Specializing whole loops keeps the
	// mode test out of the per-lookup path.
	wo := w[nh*per : nh*per+nh+1]
	lutH, lutO := q.lutHid, q.lutOut
	half := q.half
	last := int64(len(lutH) - 1)
	obias := int32(wo[nh]) << QInputFrac
	if q.pow2 {
		shift := q.shift
		ai := 0
		for k := 0; k < n; k++ {
			oacc := obias
			for h := 0; h < nh; h++ {
				// Branchless index: see the comment on QNetwork.index.
				num := (int64(accs[ai])+half)*last + half
				ai++
				idx := num >> shift
				if idx < 0 {
					idx = 0
				}
				if idx > last {
					idx = last
				}
				oacc += int32(wo[h]) * lutH[idx]
			}
			num := (int64(oacc)+half)*last + half
			idx := num >> shift
			if idx < 0 {
				idx = 0
			}
			if idx > last {
				idx = last
			}
			outs[k] = lutO[idx]
		}
		return
	}
	span := q.span
	ai := 0
	for k := 0; k < n; k++ {
		oacc := obias
		for h := 0; h < nh; h++ {
			num := (int64(accs[ai])+half)*last + half
			ai++
			idx := num / span
			if idx < 0 {
				idx = 0
			}
			if idx > last {
				idx = last
			}
			oacc += int32(wo[h]) * lutH[idx]
		}
		num := (int64(oacc)+half)*last + half
		idx := num / span
		if idx < 0 {
			idx = 0
		}
		if idx > last {
			idx = last
		}
		outs[k] = lutO[idx]
	}
}
