package deps

import "reflect"

// Feature encoding of dependence sequences for the neural network.
//
// The paper feeds the network "the sequence of past few RAW dependences"
// where each dependence is a pair of instruction addresses plus an
// inter/intra-thread label, and limits the network to M = 10 inputs, so
// with sequences up to N = 5 each dependence gets two input features.
// The default encoder spends them as:
//
//   - f1: a normalized hash of the store address S. Keeping S in its own
//     dimension is what gives the network the paper's similarity
//     property (Section II-C): new code that consumes data produced by
//     known stores lands near trained points, while negative examples —
//     which by construction have the wrong S — move along exactly this
//     axis.
//   - f2: a normalized hash of the load address L folded into half the
//     range, with the inter/intra label selecting the half.
const FeaturesPerDep = 2

// Encoder converts a dependence sequence into a feature vector. dst is
// reused when large enough. Implementations must be pure.
type Encoder func(s Sequence, dst []float64) []float64

// EncodeDefault is the production encoder described above. On the
// classification hot path dst arrives pre-sized, so the grow-once make
// below never runs at steady state.
//
//act:noalloc
func EncodeDefault(s Sequence, dst []float64) []float64 {
	need := len(s) * FeaturesPerDep
	if cap(dst) < need {
		dst = make([]float64, need) //act:alloc-ok grow-once when dst is undersized
	}
	dst = dst[:need]
	for i, d := range s {
		dst[2*i] = norm(mix(d.S))
		f2 := norm(mix(d.L)) / 2
		if d.Inter {
			f2 += 0.5
		}
		dst[2*i+1] = f2
	}
	return dst
}

// EncodePairHash is the ablation encoder: one feature per dependence, a
// hash of the (S, L, label) triple. It can only memorize exact pairs, so
// it forfeits the similarity property; the ablation bench quantifies the
// cost.
//
//act:noalloc
func EncodePairHash(s Sequence, dst []float64) []float64 {
	if cap(dst) < len(s) {
		dst = make([]float64, len(s)) //act:alloc-ok grow-once when dst is undersized
	}
	dst = dst[:len(s)]
	for i, d := range s {
		h := mix(d.S*0x9e3779b97f4a7c15 ^ d.L)
		if d.Inter {
			h = mix(h + 1)
		}
		dst[i] = norm(h)
	}
	return dst
}

// InputLen returns the network input width for sequences of length n
// under the given encoder.
func InputLen(enc Encoder, n int) int {
	probe := make(Sequence, n)
	return len(enc(probe, nil))
}

// DepEncoder is the per-dependence form of an Encoder, for encoders
// whose sequence features are position-independent functions of each
// dependence alone (both built-ins are). It writes one dependence's
// features into dst and returns how many it wrote — a constant for a
// given encoder. The batched classification path encodes each
// dependence once into a slab and reads consecutive windows as
// overlapping slices, instead of re-encoding every window; a
// (Encoder, DepEncoder) pair must therefore agree exactly:
//
//	enc(s, nil) == concat(depEnc(s[0]), depEnc(s[1]), ...)
//
// Implementations must be pure.
type DepEncoder func(d Dep, dst []float64) int

// DepEncodeDefault is EncodeDefault for a single dependence.
//
//act:noalloc
func DepEncodeDefault(d Dep, dst []float64) int {
	dst[0] = norm(mix(d.S))
	f2 := norm(mix(d.L)) / 2
	if d.Inter {
		f2 += 0.5
	}
	dst[1] = f2
	return FeaturesPerDep
}

// DepEncodePairHash is EncodePairHash for a single dependence.
//
//act:noalloc
func DepEncodePairHash(d Dep, dst []float64) int {
	h := mix(d.S*0x9e3779b97f4a7c15 ^ d.L)
	if d.Inter {
		h = mix(h + 1)
	}
	dst[0] = norm(h)
	return 1
}

// PairedDepEncoder returns the per-dependence form of a built-in
// sequence encoder, or nil when enc has no known per-dependence
// equivalent (a custom encoder must supply its own DepEncoder to enable
// batched classification).
func PairedDepEncoder(enc Encoder) DepEncoder {
	switch fnPointer(enc) {
	case fnPointer(EncodeDefault):
		return DepEncodeDefault
	case fnPointer(EncodePairHash):
		return DepEncodePairHash
	}
	return nil
}

// fnPointer identifies a function value (func values are not comparable;
// their code pointers are). Cold path: PairedDepEncoder runs once per
// deployment.
func fnPointer(v any) uintptr { return reflect.ValueOf(v).Pointer() }

// mix is splitmix64's finalizer: a cheap, well-distributed 64-bit hash.
//
//act:noalloc
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// norm maps a hash into (0.05, 0.95): keeping features away from the
// sigmoid's flat tails speeds up backpropagation.
//
//act:noalloc
func norm(h uint64) float64 {
	return 0.05 + 0.9*float64(h>>11)/float64(uint64(1)<<53)
}
