package deps

import (
	"testing"
	"testing/quick"

	"act/internal/trace"
)

// TestExtractorDeterminism: identical record streams produce identical
// dependence and sequence streams.
func TestExtractorDeterminism(t *testing.T) {
	f := func(ops []uint32, n uint8) bool {
		nn := 1 + int(n)%5
		run := func() []string {
			e := NewExtractor(ExtractorConfig{N: nn, TrackPrev: true})
			var keys []string
			e.OnSequence = func(_ uint16, s Sequence) { keys = append(keys, "+"+s.Key()) }
			e.OnNegative = func(_ uint16, s Sequence) { keys = append(keys, "-"+s.Key()) }
			for _, op := range ops {
				tid := uint16(op >> 30)
				pc := uint64(op&0xffff) * 4
				addr := uint64(op>>16&0x3f) * 8
				if op&1 == 0 {
					e.Store(tid, pc, addr, false)
				} else {
					e.Load(tid, pc, addr, false)
				}
			}
			return keys
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSequencesAlwaysFullLength: every emitted sequence has exactly N
// entries (front-padded when necessary) and ends with a real dependence.
func TestSequencesAlwaysFullLength(t *testing.T) {
	f := func(ops []uint32, n uint8) bool {
		nn := 1 + int(n)%5
		e := NewExtractor(ExtractorConfig{N: nn})
		ok := true
		e.OnSequence = func(_ uint16, s Sequence) {
			if len(s) != nn || s[len(s)-1] == (Dep{}) {
				ok = false
			}
		}
		for _, op := range ops {
			pc := uint64(op&0xffff) * 4
			addr := uint64(op>>16&0x3f) * 8
			if op&1 == 0 {
				e.Store(0, pc, addr, false)
			} else {
				e.Load(0, pc, addr, false)
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchCountBounds: 0 <= MatchCount(s) <= len(s), and members match
// fully.
func TestMatchCountBounds(t *testing.T) {
	f := func(seqs [][3]uint64, probe [3]uint64) bool {
		ss := NewSeqSet(3)
		var members []Sequence
		for _, v := range seqs {
			s := Sequence{{S: v[0], L: v[0] + 1}, {S: v[1], L: v[1] + 1}, {S: v[2], L: v[2] + 1}}
			ss.Add(s)
			members = append(members, s)
		}
		p := Sequence{{S: probe[0], L: probe[0] + 1}, {S: probe[1], L: probe[1] + 1}, {S: probe[2], L: probe[2] + 1}}
		if m := ss.MatchCount(p); m < 0 || m > len(p) {
			return false
		}
		for _, s := range members {
			if ss.MatchCount(s) != len(s) || !ss.Contains(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEncoderInRange: every encoder output lies strictly inside (0, 1)
// for arbitrary dependences.
func TestEncoderInRange(t *testing.T) {
	f := func(s1, l1, s2, l2 uint64, i1, i2 bool) bool {
		seq := Sequence{{S: s1, L: l1, Inter: i1}, {S: s2, L: l2, Inter: i2}}
		for _, enc := range []Encoder{EncodeDefault, EncodePairHash} {
			for _, v := range enc(seq, nil) {
				if v <= 0 || v >= 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratorNeverConflicts: no sequence appears as both positive and
// negative in a finalized dataset, and the prior points collide with no
// positive.
func TestGeneratorNeverConflicts(t *testing.T) {
	f := func(ops []uint32) bool {
		g := NewGeneratorFull(GeneratorConfig{
			Extractor:       ExtractorConfig{N: 2},
			RandomNegatives: 2,
			Seed:            7,
		}, nil)
		tr := opsToTrace(ops)
		g.Add(tr)
		ds := g.Dataset()
		pos := map[string]bool{}
		for _, ex := range ds.Examples {
			if ex.Valid {
				pos[ex.Seq.Key()] = true
			}
		}
		for _, ex := range ds.Examples {
			if !ex.Valid && pos[ex.Seq.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func opsToTrace(ops []uint32) *trace.Trace {
	tr := &trace.Trace{}
	for i, op := range ops {
		tr.Records = append(tr.Records, trace.Record{
			Seq: uint64(i), Tid: uint16(op >> 30),
			PC:    uint64(op&0xffff) * 4,
			Addr:  uint64(op>>16&0x3f) * 8,
			Store: op&1 == 0,
		})
	}
	return tr
}
