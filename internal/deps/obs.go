package deps

import "act/internal/obs"

// Fanout instrumentation on the process-wide registry. Every update is
// amortized per batch (hundreds of dependences), not per dependence, so
// the hand-off hot path gains at most one relaxed atomic op per channel
// operation it already performs.
var (
	// statFanoutBatches counts batches delivered to workers (full ones
	// from Push plus the final partial flushes from Close).
	statFanoutBatches = obs.Default.Counter("act_fanout_batches_total",
		"Dependence batches delivered from the sequential stage to workers.")

	// statFanoutRecycled counts batch buffers reused through a stream's
	// free list — the complement of "allocated fresh".
	statFanoutRecycled = obs.Default.Counter("act_fanout_recycled_total",
		"Batch buffers recycled through per-stream free lists.")

	// statFanoutInflight is the number of delivered-but-unconsumed
	// batches across all streams: queue depth, the backpressure signal.
	statFanoutInflight = obs.Default.Gauge("act_fanout_inflight_batches",
		"Batches delivered to workers and not yet consumed (all streams).")
)
