package deps

import (
	"testing"
)

// Figure 2(c) of the paper: T1 does I1: p=malloc, later I2: p=NULL;
// T2 does J1: if(p!=NULL), J2: p->... Valid sequences end with I1→J2
// after I1→J1; the buggy interleaving yields (I1→J1, I2→J2).
const (
	i1 = uint64(0x1000)
	i2 = uint64(0x1004)
	j1 = uint64(0x2000)
	j2 = uint64(0x2004)
	pv = uint64(0x10000000) // address of p
)

func TestConcurrencyBugSequences(t *testing.T) {
	e := NewExtractor(ExtractorConfig{N: 2})
	var seqs []Sequence
	e.OnSequence = func(_ uint16, s Sequence) { seqs = append(seqs, s) }

	// Correct interleaving: I1; J1; J2; I2.
	e.Store(1, i1, pv, false)
	d1, ok := e.Load(2, j1, pv, false)
	if !ok || d1.S != i1 || !d1.Inter {
		t.Fatalf("dep 1 = %+v ok=%v", d1, ok)
	}
	d2, _ := e.Load(2, j2, pv, false)
	if d2.S != i1 {
		t.Fatalf("dep 2 = %+v", d2)
	}
	// Two sequences: the first padded (startup), the second full.
	if len(seqs) != 2 {
		t.Fatalf("sequences = %d, want 2", len(seqs))
	}
	pad := Sequence{{}, {S: i1, L: j1, Inter: true}}
	if seqs[0].Key() != pad.Key() {
		t.Fatalf("startup sequence %v, want padded %v", seqs[0], pad)
	}
	want := Sequence{{S: i1, L: j1, Inter: true}, {S: i1, L: j2, Inter: true}}
	if seqs[1].Key() != want.Key() {
		t.Fatalf("sequence %v, want %v", seqs[1], want)
	}

	// Buggy interleaving: I1; J1; I2; J2 — the sequence the NN must flag.
	e.Reset()
	seqs = nil
	e.Store(1, i1, pv, false)
	e.Load(2, j1, pv, false)
	e.Store(1, i2, pv, false)
	e.Load(2, j2, pv, false)
	bad := Sequence{{S: i1, L: j1, Inter: true}, {S: i2, L: j2, Inter: true}}
	if len(seqs) != 2 || seqs[1].Key() != bad.Key() {
		t.Fatalf("buggy sequence %v, want %v", seqs, bad)
	}
}

func TestIntraVsInterLabel(t *testing.T) {
	e := NewExtractor(ExtractorConfig{N: 1})
	e.Store(3, 0x10, 0x100, false)
	d, _ := e.Load(3, 0x14, 0x100, false)
	if d.Inter {
		t.Error("same-thread dependence labelled inter")
	}
	d, _ = e.Load(4, 0x18, 0x100, false)
	if !d.Inter {
		t.Error("cross-thread dependence labelled intra")
	}
}

func TestNoDepWithoutWriter(t *testing.T) {
	e := NewExtractor(ExtractorConfig{N: 1})
	if _, ok := e.Load(0, 0x14, 0x999, false); ok {
		t.Error("dependence formed with no known writer")
	}
}

func TestStackFilter(t *testing.T) {
	e := NewExtractor(ExtractorConfig{N: 1, FilterStack: true})
	e.Store(0, 0x10, 0x100, true)
	if _, ok := e.Load(0, 0x14, 0x100, false); ok {
		t.Error("stack store should have been filtered")
	}
	e.Store(0, 0x10, 0x100, false)
	if _, ok := e.Load(0, 0x14, 0x100, true); ok {
		t.Error("stack load should have been filtered")
	}
}

func TestGranularityFalseSharing(t *testing.T) {
	// At word granularity, a store to word 0 and a load of word 1 are
	// unrelated. At 64-byte line granularity they alias.
	word := NewExtractor(ExtractorConfig{N: 1})
	word.Store(0, 0x10, 0x1000, false)
	if _, ok := word.Load(1, 0x14, 0x1008, false); ok {
		t.Error("word granularity aliased distinct words")
	}
	line := NewExtractor(ExtractorConfig{N: 1, Granularity: 64})
	line.Store(0, 0x10, 0x1000, false)
	d, ok := line.Load(1, 0x14, 0x1008, false)
	if !ok || d.S != 0x10 {
		t.Error("line granularity failed to alias words in one line")
	}
}

func TestBadGranularityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two granularity")
		}
	}()
	NewExtractor(ExtractorConfig{N: 1, Granularity: 48})
}

func TestNegativeExamples(t *testing.T) {
	e := NewExtractor(ExtractorConfig{N: 1, TrackPrev: true})
	var negs []Sequence
	e.OnNegative = func(_ uint16, s Sequence) { negs = append(negs, s) }
	e.Store(0, 0xA, 0x100, false) // before-last writer
	e.Store(0, 0xB, 0x100, false) // last writer
	e.Load(0, 0xC, 0x100, false)
	if len(negs) != 1 {
		t.Fatalf("negatives = %d, want 1", len(negs))
	}
	if negs[0][0].S != 0xA {
		t.Fatalf("negative uses S=%#x, want before-last store 0xA", negs[0][0].S)
	}
}

func TestNegativeSkippedWhenSameStorePC(t *testing.T) {
	// A loop storing from the same PC must not generate negatives equal
	// to positives.
	e := NewExtractor(ExtractorConfig{N: 1, TrackPrev: true})
	var negs int
	e.OnNegative = func(uint16, Sequence) { negs++ }
	for i := 0; i < 5; i++ {
		e.Store(0, 0xA, 0x100, false)
		e.Load(0, 0xC, 0x100, false)
	}
	if negs != 0 {
		t.Fatalf("negatives = %d, want 0 (same-PC before-last store)", negs)
	}
}

func TestWindowSliding(t *testing.T) {
	e := NewExtractor(ExtractorConfig{N: 3})
	var got []Sequence
	e.OnSequence = func(_ uint16, s Sequence) { got = append(got, s) }
	for i := uint64(0); i < 5; i++ {
		e.Store(0, 0x100+i, 0x1000+8*i, false)
		e.Load(0, 0x200+i, 0x1000+8*i, false)
	}
	if len(got) != 5 {
		t.Fatalf("sequences = %d, want 5 (2 padded + 3 full)", len(got))
	}
	// The first two are front-padded.
	if got[0][0] != (Dep{}) || got[0][1] != (Dep{}) || got[1][0] != (Dep{}) {
		t.Errorf("startup sequences not padded: %v, %v", got[0], got[1])
	}
	// The last sequence must contain deps 2,3,4 in order.
	last := got[4]
	for k, wantS := range []uint64{0x102, 0x103, 0x104} {
		if last[k].S != wantS {
			t.Errorf("last seq dep %d: S=%#x, want %#x", k, last[k].S, wantS)
		}
	}
}

func TestWindowsPerThread(t *testing.T) {
	// Dependences belong to the processor executing the load; windows
	// must not mix threads.
	e := NewExtractor(ExtractorConfig{N: 2})
	var byTid = map[uint16]int{}
	e.OnSequence = func(tid uint16, s Sequence) { byTid[tid]++ }
	for i := uint64(0); i < 3; i++ {
		e.Store(0, 0x100, 0x1000, false)
		e.Load(1, 0x200, 0x1000, false)
		e.Store(0, 0x104, 0x2000, false)
		e.Load(2, 0x204, 0x2000, false)
	}
	if byTid[1] != 3 || byTid[2] != 3 {
		t.Fatalf("per-thread sequences = %v, want 3 each for t1,t2", byTid)
	}
}

func TestSequenceKeyUniqueness(t *testing.T) {
	a := Sequence{{S: 1, L: 2}}
	b := Sequence{{S: 1, L: 2, Inter: true}}
	c := Sequence{{S: 2, L: 1}}
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Fatal("distinct sequences share a key")
	}
	if a.Key() != (Sequence{{S: 1, L: 2}}).Key() {
		t.Fatal("equal sequences have different keys")
	}
}

func TestSeqSetMatchCount(t *testing.T) {
	// The worked example from Section III-D: Correct Set contains
	// (A1,A2,A3) and (B1,B2,B3); debug sequences (A1,A2,A4) matches 2,
	// (A1,A5,A6) matches 1, (B1,B2,B3) matches 3 (pruned).
	A := func(i uint64) Dep { return Dep{S: 0xA00 + i, L: 0xA80 + i} }
	B := func(i uint64) Dep { return Dep{S: 0xB00 + i, L: 0xB80 + i} }
	ss := NewSeqSet(3)
	ss.Add(Sequence{A(1), A(2), A(3)})
	ss.Add(Sequence{B(1), B(2), B(3)})

	if got := ss.MatchCount(Sequence{A(1), A(2), A(4)}); got != 2 {
		t.Errorf("(A1,A2,A4) match = %d, want 2", got)
	}
	if got := ss.MatchCount(Sequence{A(1), A(5), A(6)}); got != 1 {
		t.Errorf("(A1,A5,A6) match = %d, want 1", got)
	}
	if !ss.Contains(Sequence{B(1), B(2), B(3)}) {
		t.Error("(B1,B2,B3) should be in the correct set")
	}
	if got := ss.MatchCount(Sequence{B(1), B(2), B(3)}); got != 3 {
		t.Errorf("full member match = %d, want 3", got)
	}
	if got := ss.MatchCount(Sequence{A(9), A(8), A(7)}); got != 0 {
		t.Errorf("alien sequence match = %d, want 0", got)
	}
}

func TestEncodeDefault(t *testing.T) {
	s := Sequence{{S: 0x1000, L: 0x2000}, {S: 0x1000, L: 0x2000, Inter: true}}
	x := EncodeDefault(s, nil)
	if len(x) != 4 {
		t.Fatalf("feature width = %d, want 4", len(x))
	}
	for i, v := range x {
		if v <= 0 || v >= 1 {
			t.Errorf("feature %d = %v out of (0,1)", i, v)
		}
	}
	// Same S: identical f1. Different label: different f2 halves.
	if x[0] != x[2] {
		t.Error("same store address must map to the same S feature")
	}
	if x[1] >= 0.5 || x[3] < 0.5 {
		t.Errorf("label halves wrong: intra=%v inter=%v", x[1], x[3])
	}
	// Deterministic.
	y := EncodeDefault(s, nil)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestEncodePairHash(t *testing.T) {
	s := Sequence{{S: 1, L: 2}, {S: 3, L: 4, Inter: true}}
	x := EncodePairHash(s, nil)
	if len(x) != 2 {
		t.Fatalf("width = %d, want 2", len(x))
	}
	// Label must change the hash.
	s2 := Sequence{{S: 1, L: 2, Inter: true}, {S: 3, L: 4, Inter: true}}
	y := EncodePairHash(s2, nil)
	if x[0] == y[0] {
		t.Error("label ignored by pair-hash encoding")
	}
}

func TestInputLen(t *testing.T) {
	if got := InputLen(EncodeDefault, 5); got != 10 {
		t.Errorf("InputLen(default,5) = %d, want 10", got)
	}
	if got := InputLen(EncodePairHash, 5); got != 5 {
		t.Errorf("InputLen(pairhash,5) = %d, want 5", got)
	}
}
