package deps

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestFanoutFlushBarrierQuiesce drives the checkpoint quiesce protocol:
// Flush pushes every partial batch out, Barrier injects a token per
// stream, and once the WaitGroup clears every dependence pushed before
// the barrier has been consumed and the workers are parked — yet the
// streams stay open and keep flowing afterwards.
func TestFanoutFlushBarrierQuiesce(t *testing.T) {
	const threads, perRound, rounds = 4, 37, 3 // 37 % batch != 0: partials at every flush

	var mu sync.Mutex
	consumed := make(map[uint16]int)
	var workers sync.WaitGroup
	fo := NewFanout(FanoutConfig{Batch: 16, Depth: 2}, func(tid uint16, s *FanStream) {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				batch, ok := s.Next()
				if !ok {
					return
				}
				mu.Lock()
				consumed[tid] += len(batch)
				mu.Unlock()
			}
		}()
	})

	pushed := 0
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRound; i++ {
			for tid := uint16(0); tid < threads; tid++ {
				fo.Push(tid, Dep{S: uint64(pushed), L: uint64(pushed) + 1})
			}
			pushed++
		}

		fo.Flush()
		var bwg sync.WaitGroup
		if n := fo.Barrier(&bwg); n != threads {
			t.Fatalf("round %d: Barrier reached %d streams, want %d", round, n, threads)
		}
		bwg.Wait()

		// Quiesced: every dependence pushed so far has been consumed.
		mu.Lock()
		for tid := uint16(0); tid < threads; tid++ {
			if consumed[tid] != pushed {
				t.Fatalf("round %d: tid %d consumed %d deps at barrier, want %d",
					round, tid, consumed[tid], pushed)
			}
		}
		mu.Unlock()
	}

	fo.Close()
	workers.Wait()
	for tid := uint16(0); tid < threads; tid++ {
		if consumed[tid] != pushed {
			t.Fatalf("tid %d consumed %d deps after close, want %d", tid, consumed[tid], pushed)
		}
	}
}

// TestFanoutBarrierPublishesState checks the memory-ordering claim the
// checkpoint writer relies on: a value the worker writes while
// processing a batch is visible to the producer after Flush+Barrier+Wait
// without any additional synchronization.
func TestFanoutBarrierPublishesState(t *testing.T) {
	var state [2]uint64 // written by workers, read by producer at barriers
	var workers sync.WaitGroup
	fo := NewFanout(FanoutConfig{Batch: 8, Depth: 2}, func(tid uint16, s *FanStream) {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				batch, ok := s.Next()
				if !ok {
					return
				}
				for _, d := range batch {
					state[tid] += d.S // plain write: Barrier must publish it
				}
			}
		}()
	})

	var want [2]uint64
	for i := 0; i < 100; i++ {
		for tid := uint16(0); tid < 2; tid++ {
			fo.Push(tid, Dep{S: uint64(i)})
			want[tid] += uint64(i)
		}
		if i%33 == 0 {
			fo.Flush()
			var bwg sync.WaitGroup
			fo.Barrier(&bwg)
			bwg.Wait()
			if state != want {
				t.Fatalf("at push %d: state %v after barrier, want %v", i, state, want)
			}
		}
	}
	fo.Close()
	workers.Wait()
	if state != want {
		t.Fatalf("final state %v, want %v", state, want)
	}
}

// TestFanoutBarrierSkipsIdleStreams: Barrier only tokens streams that
// exist, and a flush with nothing staged delivers nothing.
func TestFanoutBarrierSkipsIdleStreams(t *testing.T) {
	var delivered atomic.Int64
	var workers sync.WaitGroup
	fo := NewFanout(FanoutConfig{Batch: 4, Depth: 1}, func(tid uint16, s *FanStream) {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				batch, ok := s.Next()
				if !ok {
					return
				}
				delivered.Add(int64(len(batch)))
			}
		}()
	})

	var bwg sync.WaitGroup
	if n := fo.Barrier(&bwg); n != 0 {
		t.Fatalf("Barrier on an empty fanout reached %d streams", n)
	}
	bwg.Wait()

	fo.Push(3, Dep{S: 1}) // only tid 3 ever exists
	fo.Flush()
	if n := fo.Barrier(&bwg); n != 1 {
		t.Fatalf("Barrier reached %d streams, want 1", n)
	}
	bwg.Wait()
	if got := delivered.Load(); got != 1 {
		t.Fatalf("delivered %d deps, want 1", got)
	}

	// A second Flush with nothing staged must not emit an empty batch.
	fo.Flush()
	fo.Close()
	workers.Wait()
	if got := delivered.Load(); got != 1 {
		t.Fatalf("idle flush delivered extra deps: total %d, want 1", got)
	}
}
