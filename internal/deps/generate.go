package deps

import (
	"math/rand"
	"sort"

	"act/internal/trace"
)

// Example is one labelled training/testing input for the neural network.
type Example struct {
	X     []float64 // encoded features
	Valid bool      // true for observed sequences, false for synthesized
	Seq   Sequence  // the underlying dependence sequence
	Tid   uint16    // processor the sequence belongs to
	Count int       // dynamic occurrences folded into this example
}

// Dataset is a deduplicated set of examples produced by the input
// generator, ready for neural-network training. Prior holds the
// default-invalid prior points (feature vectors with no underlying
// dependence sequence).
type Dataset struct {
	N        int
	Examples []Example
	Prior    [][]float64
}

// Positives returns the number of valid examples.
func (d *Dataset) Positives() int {
	n := 0
	for _, e := range d.Examples {
		if e.Valid {
			n++
		}
	}
	return n
}

// Negatives returns the number of invalid examples.
func (d *Dataset) Negatives() int { return len(d.Examples) - d.Positives() }

// DynamicCount returns the total dynamic sequence occurrences folded
// into the dataset (the sum of example counts).
func (d *Dataset) DynamicCount() int {
	n := 0
	for _, e := range d.Examples {
		n += e.Count
	}
	return n
}

// Generator is the paper's Input Generator: it replays execution traces
// through an Extractor, groups dependences into sequences, synthesizes
// negative examples from before-last writers, and accumulates a
// deduplicated Dataset. A sequence observed as valid anywhere is never
// also emitted as a negative (conflicts resolve in favour of valid).
//
// Beyond the paper's before-last-store negatives, the Generator can
// sample additional wrong-writer negatives: for each observed sequence,
// variants whose final dependence is rewired to another store
// instruction observed in the traces. This teaches the network the
// PSet-style boundary — for a given load, only its observed writers are
// valid — which is what lets online testing condemn a buggy dependence
// whose wrong writer never produced a before-last negative.
type Generator struct {
	cfg      ExtractorConfig
	enc      Encoder
	randNeg  int
	priorNeg int
	seed     int64
	exclude  func(Dep) bool
	pos      map[string]*Example
	neg      map[string]*Example
	deps     map[Dep]int // unique dynamic dependences with counts
	stores   map[uint64]uint16
	order    []string // positive keys in first-seen order (determinism)
}

// GeneratorConfig extends the extractor configuration with negative-
// sampling controls.
type GeneratorConfig struct {
	Extractor ExtractorConfig
	// RandomNegatives is the number of wrong-writer negatives sampled
	// per observed sequence (0 disables sampling).
	RandomNegatives int
	// Seed drives the deterministic sampling.
	Seed int64
	// Exclude withholds matching dependences entirely: sequences
	// containing one are not emitted, and the dependence's endpoints do
	// not enter the negative-sampling pools. This is the paper's
	// "remove all dependences from a chosen function" — the training
	// must not know the function's instructions exist at all.
	Exclude func(Dep) bool
	// PriorNegatives adds this many uniform-random feature points
	// labeled invalid, a default-invalid prior: communication the
	// training never observed starts out suspect, and online learning
	// in the field whitelists the legitimate new patterns. Zero picks a
	// default proportional to the positives; negative disables.
	PriorNegatives int
}

// NewGenerator returns a Generator with before-last-store negatives
// only. TrackPrev is forced on.
func NewGenerator(cfg ExtractorConfig, enc Encoder) *Generator {
	return NewGeneratorFull(GeneratorConfig{Extractor: cfg}, enc)
}

// NewGeneratorFull returns a Generator with full configuration.
func NewGeneratorFull(cfg GeneratorConfig, enc Encoder) *Generator {
	cfg.Extractor.TrackPrev = true
	if enc == nil {
		enc = EncodeDefault
	}
	return &Generator{
		cfg:      cfg.Extractor,
		enc:      enc,
		randNeg:  cfg.RandomNegatives,
		priorNeg: cfg.PriorNegatives,
		seed:     cfg.Seed,
		exclude:  cfg.Exclude,
		pos:      make(map[string]*Example),
		neg:      make(map[string]*Example),
		deps:     make(map[Dep]int),
		stores:   make(map[uint64]uint16),
	}
}

// excluded reports whether any dependence of the sequence is withheld.
func (g *Generator) excluded(s Sequence) bool {
	if g.exclude == nil {
		return false
	}
	for _, d := range s {
		if d != (Dep{}) && g.exclude(d) {
			return true
		}
	}
	return false
}

// Add replays one trace through the generator. Last-writer state resets
// per trace (each trace is an independent execution).
func (g *Generator) Add(t *trace.Trace) {
	e := NewExtractor(g.cfg)
	e.OnDep = func(tid uint16, d Dep) {
		if g.exclude != nil && g.exclude(d) {
			return
		}
		g.deps[d]++
	}
	e.OnSequence = func(tid uint16, s Sequence) {
		if g.excluded(s) {
			return
		}
		k := s.Key()
		if ex, ok := g.pos[k]; ok {
			ex.Count++
			return
		}
		g.pos[k] = &Example{X: g.enc(s, nil), Valid: true, Seq: s, Tid: tid, Count: 1}
		g.order = append(g.order, k)
	}
	e.OnNegative = func(tid uint16, s Sequence) {
		if g.excluded(s) {
			return
		}
		k := s.Key()
		if ex, ok := g.neg[k]; ok {
			ex.Count++
			return
		}
		g.neg[k] = &Example{X: g.enc(s, nil), Valid: false, Seq: s, Tid: tid, Count: 1}
	}
	for _, r := range t.Records {
		if r.Store {
			g.stores[r.PC] = r.Tid
			e.Store(r.Tid, r.PC, r.Addr, r.Stack)
		} else {
			e.Load(r.Tid, r.PC, r.Addr, r.Stack)
		}
	}
}

// UniqueDeps returns the number of unique dynamic RAW dependences seen.
func (g *Generator) UniqueDeps() int { return len(g.deps) }

// TotalDeps returns the total dynamic RAW dependences seen.
func (g *Generator) TotalDeps() int {
	n := 0
	for _, c := range g.deps {
		n += c
	}
	return n
}

// Dataset finalizes and returns the deduplicated dataset in a
// deterministic order (positives first-seen, then negatives by key).
// Negatives that collide with an observed valid sequence are dropped.
func (g *Generator) Dataset() *Dataset {
	g.sampleNegatives()
	d := &Dataset{N: g.cfg.N}
	d.Prior = g.priorExamples()
	for _, k := range g.order {
		d.Examples = append(d.Examples, *g.pos[k])
	}
	negKeys := make([]string, 0, len(g.neg))
	for k := range g.neg {
		if _, ok := g.pos[k]; ok {
			continue
		}
		negKeys = append(negKeys, k)
	}
	sort.Strings(negKeys)
	for _, k := range negKeys {
		d.Examples = append(d.Examples, *g.neg[k])
	}
	return d
}

// sampleNegatives synthesizes wrong-writer negatives of two flavours,
// for each observed sequence:
//
//   - same-load: the final dependence's S is rewired to another store
//     observed in the traces (a load fed by the wrong writer);
//   - wrong-pair: the final dependence is replaced outright with an
//     unobserved (S, L) pairing of observed endpoints, teaching the
//     network that a never-seen communication pair is invalid in any
//     context.
//
// Candidates are enumerated in a per-sequence shuffled order so small
// programs get full coverage (coverage-first, not sampling with
// replacement).
func (g *Generator) sampleNegatives() {
	if g.randNeg <= 0 || len(g.stores) < 2 {
		return
	}
	pcs := make([]uint64, 0, len(g.stores))
	for pc := range g.stores {
		// Excluded (new-code) instructions must not enter the sampling
		// pool either.
		if g.exclude != nil && g.exclude(Dep{S: pc, L: pc}) {
			continue
		}
		pcs = append(pcs, pc)
	}
	if len(pcs) < 2 {
		return
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	loadSet := make(map[uint64]struct{})
	validPair := make(map[[2]uint64]struct{}, len(g.deps))
	for d := range g.deps {
		loadSet[d.L] = struct{}{}
		validPair[[2]uint64{d.S, d.L}] = struct{}{}
	}
	loads := make([]uint64, 0, len(loadSet))
	for l := range loadSet {
		loads = append(loads, l)
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i] < loads[j] })

	rng := rand.New(rand.NewSource(g.seed + 0x5eed))
	emit := func(ex *Example, d Dep) bool {
		neg := ex.Seq.Clone()
		neg[len(neg)-1] = d
		k := neg.Key()
		if _, ok := g.pos[k]; ok {
			return false
		}
		if _, ok := g.neg[k]; ok {
			return false
		}
		g.neg[k] = &Example{X: g.enc(neg, nil), Valid: false, Seq: neg, Tid: ex.Tid, Count: 1}
		return true
	}
	for _, key := range g.order {
		ex := g.pos[key]
		last := ex.Seq[len(ex.Seq)-1]
		// Flavour 1: same load, wrong writer. A writer observed feeding
		// this load elsewhere is not wrong — multi-writer loads (e.g. a
		// shared histogram updated by several threads) must not have
		// their other legitimate writers poisoned into negatives.
		made := 0
		for _, pi := range rng.Perm(len(pcs)) {
			if made >= g.randNeg {
				break
			}
			spc := pcs[pi]
			if spc == last.S {
				continue
			}
			if _, ok := validPair[[2]uint64{spc, last.L}]; ok {
				continue
			}
			if emit(ex, Dep{S: spc, L: last.L, Inter: g.stores[spc] != ex.Tid}) {
				made++
			}
		}
		// Flavour 2: an unobserved pairing of observed endpoints.
		made = 0
		for tries := 0; made < g.randNeg && tries < 6*g.randNeg; tries++ {
			spc := pcs[rng.Intn(len(pcs))]
			lpc := loads[rng.Intn(len(loads))]
			if _, ok := validPair[[2]uint64{spc, lpc}]; ok {
				continue
			}
			if emit(ex, Dep{S: spc, L: lpc, Inter: g.stores[spc] != ex.Tid}) {
				made++
			}
		}
	}
}

// priorExamples synthesizes the default-invalid prior points: uniform
// random feature vectors far (in feature space) from every positive, so
// the prior does not contradict observed-valid behaviour.
func (g *Generator) priorExamples() [][]float64 {
	n := g.priorNeg
	if n < 0 {
		return nil
	}
	if n == 0 {
		n = min(64, max(8, len(g.pos)))
	}
	width := InputLen(g.enc, g.cfg.N)
	rng := rand.New(rand.NewSource(g.seed + 0x9101))
	out := make([][]float64, 0, n)
	for tries := 0; len(out) < n && tries < 20*n; tries++ {
		x := make([]float64, width)
		for i := range x {
			x[i] = 0.05 + 0.9*rng.Float64()
		}
		// Reject points too close to a positive: the prior must default
		// the empty space to invalid without fighting the data.
		tooClose := false
		for _, k := range g.order {
			if l1Close(x, g.pos[k].X, 0.08) {
				tooClose = true
				break
			}
		}
		if !tooClose {
			out = append(out, x)
		}
	}
	return out
}

// l1Close reports whether two points are within eps in every coordinate.
func l1Close(a, b []float64, eps float64) bool {
	for i := range a {
		d := a[i] - b[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

// SeqSet is a set of dependence sequences with prefix-match queries: the
// Correct Set of the paper's offline postprocessing.
type SeqSet struct {
	n    int
	full map[string]struct{}
	pre  map[string]struct{} // every proper prefix of every member
}

// NewSeqSet returns an empty set for sequences of length n.
func NewSeqSet(n int) *SeqSet {
	return &SeqSet{n: n, full: make(map[string]struct{}), pre: make(map[string]struct{})}
}

// Add inserts a sequence and all its prefixes.
func (ss *SeqSet) Add(s Sequence) {
	ss.full[s.Key()] = struct{}{}
	for i := 1; i < len(s); i++ {
		ss.pre[s[:i].Key()] = struct{}{}
	}
}

// Len returns the number of distinct full sequences.
func (ss *SeqSet) Len() int { return len(ss.full) }

// Contains reports whether the exact sequence is in the set.
func (ss *SeqSet) Contains(s Sequence) bool {
	_, ok := ss.full[s.Key()]
	return ok
}

// MatchCount returns the length of the longest prefix of s that matches
// a prefix of some member sequence — the paper's "number of matched RAW
// dependences" used for ranking.
func (ss *SeqSet) MatchCount(s Sequence) int {
	if ss.Contains(s) {
		return len(s)
	}
	for i := len(s) - 1; i >= 1; i-- {
		if _, ok := ss.pre[s[:i].Key()]; ok {
			return i
		}
		if _, ok := ss.full[s[:i].Key()]; ok {
			return i
		}
	}
	return 0
}

// CollectSequences builds a SeqSet of every sequence occurring in the
// given traces — the Correct Set when the traces come from correct runs.
func CollectSequences(traces []*trace.Trace, cfg ExtractorConfig) *SeqSet {
	ss := NewSeqSet(cfg.N)
	for _, t := range traces {
		e := NewExtractor(cfg)
		e.OnSequence = func(_ uint16, s Sequence) { ss.Add(s) }
		for _, r := range t.Records {
			if r.Store {
				e.Store(r.Tid, r.PC, r.Addr, r.Stack)
			} else {
				e.Load(r.Tid, r.PC, r.Addr, r.Stack)
			}
		}
	}
	return ss
}
