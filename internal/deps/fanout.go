package deps

// Fanout is the hand-off between the two stages of parallel replay.
//
// Last-writer resolution must observe the memory trace in its single
// global (coherence) order — a store by one thread changes which writer
// every later load sees, on any thread. Classification, by contrast, is
// per-processor state only: a module's verdict depends exclusively on
// the order of its own thread's dependences. Fanout exploits exactly
// that split: the sequential stage pushes each formed dependence into
// its thread's stream, and one worker per thread drains the stream
// concurrently. Per-thread order is preserved, so the parallel replay
// is bit-identical to the sequential one.
//
// Dependences travel in batches over bounded channels: batching
// amortizes the channel synchronization to a few operations per
// hundreds of dependences, and the bound provides backpressure — a slow
// worker stalls the producer instead of growing an unbounded queue.
// Batch buffers are recycled through a per-stream free list, so the
// steady state allocates nothing.
//
// Push and Close must be called from a single goroutine (the sequential
// stage); each FanStream must be consumed by a single goroutine.

// FanoutConfig tunes the hand-off.
type FanoutConfig struct {
	Batch int // dependences per batch; 0 means 512
	Depth int // batches buffered per thread; 0 means 4
}

func (c FanoutConfig) withDefaults() FanoutConfig {
	if c.Batch <= 0 {
		c.Batch = 512
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	return c
}

// FanStream is one thread's batch stream, consumed by its worker.
type FanStream struct {
	ch   chan []Dep
	free chan []Dep
	last []Dep
}

// Next returns the next batch, blocking until the producer delivers one;
// ok is false once the stream is closed and drained. The returned slice
// is valid only until the following Next call — its backing array is
// recycled to the producer.
func (s *FanStream) Next() (batch []Dep, ok bool) {
	if s.last != nil {
		s.free <- s.last[:0]
		s.last = nil
	}
	b, ok := <-s.ch
	if ok {
		s.last = b
		statFanoutInflight.Dec()
	}
	return b, ok
}

// fanShard is the producer side of one thread's stream.
type fanShard struct {
	stream *FanStream
	cur    []Dep
}

// Fanout splits a globally ordered dependence stream into per-thread
// bounded batch streams.
type Fanout struct {
	cfg    FanoutConfig
	shards []*fanShard // indexed by tid
	onNew  func(tid uint16, s *FanStream)
}

// NewFanout creates a fan-out. onNew fires in the producer goroutine the
// first time a thread produces a dependence, before that dependence is
// delivered — the caller starts the thread's worker there.
func NewFanout(cfg FanoutConfig, onNew func(tid uint16, s *FanStream)) *Fanout {
	return &Fanout{cfg: cfg.withDefaults(), onNew: onNew}
}

// Push appends one dependence to tid's stream, delivering a batch (and
// blocking on backpressure) whenever one fills.
func (f *Fanout) Push(tid uint16, d Dep) {
	i := int(tid)
	if i >= len(f.shards) {
		grown := make([]*fanShard, i+1)
		copy(grown, f.shards)
		f.shards = grown
	}
	sh := f.shards[i]
	if sh == nil {
		st := &FanStream{
			ch:   make(chan []Dep, f.cfg.Depth),
			free: make(chan []Dep, f.cfg.Depth+2),
		}
		// Buffer census: one being filled (cur), up to Depth in flight in
		// ch, one held by the consumer until its next Next call, and the
		// rest parked in free — Depth+2 in total. free is sized to hold
		// all of them: once the stream is closed and drained, the consumer
		// hands every buffer back, so a smaller capacity would block the
		// final free-list send in Next forever.
		for b := 0; b < f.cfg.Depth+1; b++ {
			st.free <- make([]Dep, 0, f.cfg.Batch)
		}
		sh = &fanShard{stream: st, cur: make([]Dep, 0, f.cfg.Batch)}
		f.shards[i] = sh
		if f.onNew != nil {
			f.onNew(tid, st)
		}
	}
	sh.cur = append(sh.cur, d)
	if len(sh.cur) == f.cfg.Batch {
		statFanoutInflight.Inc()
		statFanoutBatches.Inc()
		sh.stream.ch <- sh.cur
		sh.cur = <-sh.stream.free
		statFanoutRecycled.Inc()
	}
}

// Close flushes every thread's partial batch and closes the streams;
// workers observe ok == false from Next once drained.
func (f *Fanout) Close() {
	for _, sh := range f.shards {
		if sh == nil {
			continue
		}
		if len(sh.cur) > 0 {
			statFanoutInflight.Inc()
			statFanoutBatches.Inc()
			sh.stream.ch <- sh.cur
			sh.cur = nil
		}
		close(sh.stream.ch)
	}
}
