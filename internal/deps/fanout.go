package deps

import "sync"

// Fanout is the hand-off between the two stages of parallel replay.
//
// Last-writer resolution must observe the memory trace in its single
// global (coherence) order — a store by one thread changes which writer
// every later load sees, on any thread. Classification, by contrast, is
// per-processor state only: a module's verdict depends exclusively on
// the order of its own thread's dependences. Fanout exploits exactly
// that split: the sequential stage pushes each formed dependence into
// its thread's stream, and one worker per thread drains the stream
// concurrently. Per-thread order is preserved, so the parallel replay
// is bit-identical to the sequential one.
//
// Dependences travel in batches over bounded channels: batching
// amortizes the channel synchronization to a few operations per
// hundreds of dependences, and the bound provides backpressure — a slow
// worker stalls the producer instead of growing an unbounded queue.
// Batch buffers are recycled through a per-stream free list, so the
// steady state allocates nothing.
//
// Push and Close must be called from a single goroutine (the sequential
// stage); each FanStream must be consumed by a single goroutine.
//
// Flush and Barrier extend the protocol for checkpointing: Flush pushes
// every partial batch out, Barrier injects a token per stream that each
// consumer acknowledges only after draining everything delivered before
// it. Flush + Barrier + WaitGroup.Wait therefore quiesces the whole
// fan-out — every formed dependence classified, every worker parked —
// without tearing the streams down, which is exactly the stable point a
// mid-trace checkpoint snapshots.

// FanoutConfig tunes the hand-off.
type FanoutConfig struct {
	Batch int // dependences per batch; 0 means 512
	Depth int // batches buffered per thread; 0 means 4
}

func (c FanoutConfig) withDefaults() FanoutConfig {
	if c.Batch <= 0 {
		c.Batch = 512
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	return c
}

// fanItem is one channel delivery: either a dependence batch or a
// barrier token. A barrier carries the producer's WaitGroup; the
// consumer acknowledges it only after every earlier batch on the stream
// has been fully processed, which is what makes Barrier a quiescence
// point (see Fanout.Barrier).
type fanItem struct {
	buf []Dep
	bar *sync.WaitGroup
}

// FanStream is one thread's batch stream, consumed by its worker.
type FanStream struct {
	ch   chan fanItem
	free chan []Dep
	last []Dep
}

// Next returns the next batch, blocking until the producer delivers one;
// ok is false once the stream is closed and drained. The returned slice
// is valid only until the following Next call — its backing array is
// recycled to the producer. Barrier tokens are handled transparently:
// Next acknowledges them and keeps waiting for the next real batch, so
// worker loops never see them.
func (s *FanStream) Next() (batch []Dep, ok bool) {
	for {
		if s.last != nil {
			s.free <- s.last[:0]
			s.last = nil
		}
		it, ok := <-s.ch
		if !ok {
			return nil, false
		}
		if it.bar != nil {
			// The channel is FIFO and the previous batch was completed
			// before this Next call, so acknowledging here orders the
			// barrier after every batch delivered before it.
			it.bar.Done()
			continue
		}
		s.last = it.buf
		statFanoutInflight.Dec()
		return it.buf, true
	}
}

// fanShard is the producer side of one thread's stream.
type fanShard struct {
	stream *FanStream
	cur    []Dep
}

// Fanout splits a globally ordered dependence stream into per-thread
// bounded batch streams.
type Fanout struct {
	cfg    FanoutConfig
	shards []*fanShard // indexed by tid
	onNew  func(tid uint16, s *FanStream)
}

// NewFanout creates a fan-out. onNew fires in the producer goroutine the
// first time a thread produces a dependence, before that dependence is
// delivered — the caller starts the thread's worker there.
func NewFanout(cfg FanoutConfig, onNew func(tid uint16, s *FanStream)) *Fanout {
	return &Fanout{cfg: cfg.withDefaults(), onNew: onNew}
}

// Push appends one dependence to tid's stream, delivering a batch (and
// blocking on backpressure) whenever one fills.
func (f *Fanout) Push(tid uint16, d Dep) {
	i := int(tid)
	if i >= len(f.shards) {
		grown := make([]*fanShard, i+1)
		copy(grown, f.shards)
		f.shards = grown
	}
	sh := f.shards[i]
	if sh == nil {
		st := &FanStream{
			// ch is sized Depth+1 so Barrier's token never blocks behind a
			// full data queue held by a worker that is itself blocked — the
			// extra slot is reserved for control traffic.
			ch:   make(chan fanItem, f.cfg.Depth+1),
			free: make(chan []Dep, f.cfg.Depth+2),
		}
		// Buffer census: one being filled (cur), up to Depth in flight in
		// ch, one held by the consumer until its next Next call, and the
		// rest parked in free — Depth+2 in total. free is sized to hold
		// all of them: once the stream is closed and drained, the consumer
		// hands every buffer back, so a smaller capacity would block the
		// final free-list send in Next forever.
		for b := 0; b < f.cfg.Depth+1; b++ {
			st.free <- make([]Dep, 0, f.cfg.Batch)
		}
		sh = &fanShard{stream: st, cur: make([]Dep, 0, f.cfg.Batch)}
		f.shards[i] = sh
		if f.onNew != nil {
			f.onNew(tid, st)
		}
	}
	sh.cur = append(sh.cur, d)
	if len(sh.cur) == f.cfg.Batch {
		statFanoutInflight.Inc()
		statFanoutBatches.Inc()
		sh.stream.ch <- fanItem{buf: sh.cur}
		sh.cur = <-sh.stream.free
		statFanoutRecycled.Inc()
	}
}

// Flush delivers every thread's partial batch without closing the
// streams, so a checkpoint sees all dependences formed so far. Like
// Push, producer-goroutine only.
func (f *Fanout) Flush() {
	for _, sh := range f.shards {
		if sh == nil || len(sh.cur) == 0 {
			continue
		}
		statFanoutInflight.Inc()
		statFanoutBatches.Inc()
		sh.stream.ch <- fanItem{buf: sh.cur}
		sh.cur = <-sh.stream.free
		statFanoutRecycled.Inc()
	}
}

// Barrier enqueues a barrier token on every active stream and returns
// the number of tokens sent, each accounted in wg before its send. A
// consumer acknowledges its token only after processing every batch
// delivered before it, so once wg.Wait returns, every dependence pushed
// before the Barrier call has been fully classified and the workers are
// parked in channel receives — the producer may safely read module
// state (the WaitGroup's Done/Wait pair publishes it). Call Flush first
// or partial batches will quiesce unclassified in the producer.
func (f *Fanout) Barrier(wg *sync.WaitGroup) int {
	n := 0
	for _, sh := range f.shards {
		if sh == nil {
			continue
		}
		wg.Add(1)
		sh.stream.ch <- fanItem{bar: wg}
		n++
	}
	return n
}

// Close flushes every thread's partial batch and closes the streams;
// workers observe ok == false from Next once drained.
func (f *Fanout) Close() {
	for _, sh := range f.shards {
		if sh == nil {
			continue
		}
		if len(sh.cur) > 0 {
			statFanoutInflight.Inc()
			statFanoutBatches.Inc()
			sh.stream.ch <- fanItem{buf: sh.cur}
			sh.cur = nil
		}
		close(sh.stream.ch)
	}
}
