// Package deps implements RAW (read-after-write) data-communication
// tracking: extracting dependences from memory traces, grouping them into
// the N-long sequences the neural network classifies, synthesizing the
// negative examples used for offline training, and encoding sequences as
// neural-network input vectors.
//
// A RAW dependence S→L pairs the instruction address S of the store that
// last wrote a memory granule with the instruction address L of a load
// reading it. The dependence belongs to the processor executing L; each
// dependence is labelled inter- or intra-thread. Sequences are the last N
// dependences observed by one processor, oldest first.
//
//act:goleak
package deps

import (
	"fmt"
	"sort"
)

// Dep is one RAW dependence.
type Dep struct {
	S     uint64 // store instruction address (last writer)
	L     uint64 // load instruction address
	Inter bool   // writer executed on a different thread than the reader
}

// String renders the dependence in the paper's S→L notation.
func (d Dep) String() string {
	kind := "intra"
	if d.Inter {
		kind = "inter"
	}
	return fmt.Sprintf("%#x→%#x(%s)", d.S, d.L, kind)
}

// Sequence is an ordered group of N consecutive RAW dependences from one
// processor, oldest first, newest (the dependence under test) last.
type Sequence []Dep

// Key returns a canonical map key for the sequence.
func (s Sequence) Key() string {
	b := make([]byte, 0, len(s)*17)
	for _, d := range s {
		for i := 0; i < 8; i++ {
			b = append(b, byte(d.S>>(8*i)))
		}
		for i := 0; i < 8; i++ {
			b = append(b, byte(d.L>>(8*i)))
		}
		if d.Inter {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return string(b)
}

// FNV-1a constants (64-bit).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvU64 folds the 8 little-endian bytes of x into h.
//
//act:noalloc
func fnvU64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// Hash returns a fixed-size FNV-1a digest of the sequence over the same
// byte layout as Key, without allocating. It is the identity used on the
// classification hot path (verdict memoization) and by ranking and fleet
// deduplication; Key remains for code that needs a collision-free string.
//
//act:noalloc
func (s Sequence) Hash() uint64 {
	h := fnvOffset
	for _, d := range s {
		h = fnvU64(h, d.S)
		h = fnvU64(h, d.L)
		if d.Inter {
			h = (h ^ 1) * fnvPrime
		} else {
			h *= fnvPrime
		}
	}
	return h
}

// Clone returns a copy of the sequence.
func (s Sequence) Clone() Sequence {
	c := make(Sequence, len(s))
	copy(c, s)
	return c
}

func (s Sequence) String() string {
	out := "("
	for i, d := range s {
		if i > 0 {
			out += ", "
		}
		out += d.String()
	}
	return out + ")"
}

// writer identifies the thread and instruction of a store.
type writer struct {
	pc  uint64
	tid uint16
}

// lwTable is the last-writer index: an open-addressed hash table from
// address granule to writer. The extractor probes it twice per trace
// record (lookup on loads, upsert on stores), which made Go's generic
// map the single largest cost on the replay hot path; a flat
// Fibonacci-hashed, linear-probed table with no tombstones (the
// last-writer workload never deletes) cuts that to a multiply and, in
// the common case, one cache line. Granule 0 — a legal key — gets a
// dedicated slot so the keys array can use 0 as the empty marker.
type lwTable struct {
	keys    []uint64
	vals    []writer
	shift   uint // 64 - log2(len(keys))
	used    int
	zero    writer
	hasZero bool
}

// lwInitBits sizes a fresh table at 2^lwInitBits slots.
const lwInitBits = 10

func newLWTable() *lwTable {
	return &lwTable{keys: make([]uint64, 1<<lwInitBits), vals: make([]writer, 1<<lwInitBits), shift: 64 - lwInitBits}
}

//act:noalloc
func (t *lwTable) get(g uint64) (writer, bool) {
	if g == 0 {
		return t.zero, t.hasZero
	}
	keys := t.keys
	mask := uint64(len(keys) - 1)
	i := (g * 0x9e3779b97f4a7c15) >> t.shift
	for {
		k := keys[i&mask]
		if k == g {
			return t.vals[i&mask], true
		}
		if k == 0 {
			return writer{}, false
		}
		i++
	}
}

// put inserts or overwrites. The grow branch is the only allocation
// and runs O(log n) times over a table's life.
//
//act:noalloc
func (t *lwTable) put(g uint64, w writer) {
	if g == 0 {
		t.zero, t.hasZero = w, true
		return
	}
	keys := t.keys
	mask := uint64(len(keys) - 1)
	i := (g * 0x9e3779b97f4a7c15) >> t.shift
	for {
		k := keys[i&mask]
		if k == g {
			t.vals[i&mask] = w
			return
		}
		if k == 0 {
			keys[i&mask] = g
			t.vals[i&mask] = w
			t.used++
			if t.used*4 > len(keys)*3 {
				t.grow() //act:alloc-ok amortized table growth
			}
			return
		}
		i++
	}
}

func (t *lwTable) grow() {
	old, oldVals := t.keys, t.vals
	t.keys = make([]uint64, 2*len(old))
	t.vals = make([]writer, 2*len(old))
	t.shift--
	mask := uint64(len(t.keys) - 1)
	for j, k := range old {
		if k == 0 {
			continue
		}
		i := (k * 0x9e3779b97f4a7c15) >> t.shift
		for t.keys[i&mask] != 0 {
			i++
		}
		t.keys[i&mask] = k
		t.vals[i&mask] = oldVals[j]
	}
}

func (t *lwTable) reset() {
	clear(t.keys)
	t.used = 0
	t.hasZero = false
}

// ringWin is one thread's fixed-capacity dependence window, kept as a
// ring so the steady-state hot path never reallocates or shifts.
type ringWin struct {
	buf  []Dep // capacity n, allocated once
	head int   // index of the oldest entry
	cnt  int   // live entries, <= len(buf)
}

//act:noalloc
func (w *ringWin) push(d Dep) {
	n := len(w.buf)
	if w.cnt < n {
		w.buf[(w.head+w.cnt)%n] = d
		w.cnt++
		return
	}
	w.buf[w.head] = d
	w.head = (w.head + 1) % n
}

// fill writes the window into seq (len == cap of the ring), oldest
// first, front-padded with zero dependences while the window is filling.
//
//act:noalloc
func (w *ringWin) fill(seq Sequence) {
	n := len(w.buf)
	pad := n - w.cnt
	for i := range seq[:pad] {
		seq[i] = Dep{}
	}
	for i := 0; i < w.cnt; i++ {
		seq[pad+i] = w.buf[(w.head+i)%n]
	}
}

// Extractor turns an ordered stream of memory records into RAW
// dependences and sequences. Granularity controls the address granule at
// which the last writer is tracked: the word size models the paper's
// precise per-word extension, a cache-line size models the cheap
// line-granularity mode whose false sharing the evaluation measures.
type Extractor struct {
	n           int
	granularity uint64
	filterStack bool
	trackPrev   bool

	// last is the open-addressed last-writer table (see lwTable); prev
	// stays a plain map because before-last tracking is an offline
	// training feature that never touches the replay hot path.
	last *lwTable
	prev map[uint64]writer
	wins []*ringWin // per-thread windows, indexed by tid

	// OnDep, if set, observes every formed dependence before windowing.
	OnDep func(tid uint16, d Dep)
	// OnSequence observes every full-length positive sequence.
	OnSequence func(tid uint16, s Sequence)
	// OnNegative observes every synthesized invalid sequence (offline
	// training only; requires TrackPrev).
	OnNegative func(tid uint16, s Sequence)
}

// ExtractorConfig configures an Extractor.
type ExtractorConfig struct {
	N           int    // sequence length; must be >= 1
	Granularity uint64 // bytes per last-writer granule; 0 means 8 (word)
	FilterStack bool   // drop stack-addressed records
	TrackPrev   bool   // keep before-last writers to form negative examples
}

// NewExtractor returns an extractor for the given configuration.
func NewExtractor(cfg ExtractorConfig) *Extractor {
	if cfg.N < 1 {
		panic(fmt.Sprintf("deps: invalid sequence length %d", cfg.N))
	}
	g := cfg.Granularity
	if g == 0 {
		g = 8
	}
	if g&(g-1) != 0 {
		panic(fmt.Sprintf("deps: granularity %d is not a power of two", g))
	}
	e := &Extractor{
		n:           cfg.N,
		granularity: g,
		filterStack: cfg.FilterStack,
		trackPrev:   cfg.TrackPrev,
		last:        newLWTable(),
	}
	if cfg.TrackPrev {
		e.prev = make(map[uint64]writer)
	}
	return e
}

// N returns the configured sequence length.
func (e *Extractor) N() int { return e.n }

// Reset clears all last-writer and window state (e.g. between traces)
// while keeping the configuration and callbacks.
func (e *Extractor) Reset() {
	e.last.reset()
	if e.prev != nil {
		clear(e.prev)
	}
	e.wins = nil
}

// win returns (creating on first use) tid's window ring.
func (e *Extractor) win(tid uint16) *ringWin {
	i := int(tid)
	if i >= len(e.wins) {
		grown := make([]*ringWin, i+1)
		copy(grown, e.wins)
		e.wins = grown
	}
	w := e.wins[i]
	if w == nil {
		w = &ringWin{buf: make([]Dep, e.n)}
		e.wins[i] = w
	}
	return w
}

// granule maps an address to its tracking granule.
//
//act:noalloc
func (e *Extractor) granule(addr uint64) uint64 { return addr &^ (e.granularity - 1) }

// Store records a store by tid at instruction pc to addr.
func (e *Extractor) Store(tid uint16, pc, addr uint64, stack bool) {
	if e.filterStack && stack {
		return
	}
	g := e.granule(addr)
	if e.trackPrev {
		if w, ok := e.last.get(g); ok {
			e.prev[g] = w
		}
	}
	e.last.put(g, writer{pc: pc, tid: tid})
}

// Load records a load by tid at instruction pc from addr, forming a
// dependence if a last writer is known. It returns the dependence and
// whether one was formed.
func (e *Extractor) Load(tid uint16, pc, addr uint64, stack bool) (Dep, bool) {
	if e.filterStack && stack {
		return Dep{}, false
	}
	g := e.granule(addr)
	w, ok := e.last.get(g)
	if !ok {
		return Dep{}, false
	}
	d := Dep{S: w.pc, L: pc, Inter: w.tid != tid}
	if e.OnDep != nil {
		e.OnDep(tid, d)
	}
	win := e.win(tid)
	win.push(d)
	// A window shorter than N (execution start, or right after a thread's
	// first dependences) is padded at the front with zero dependences, so
	// even a processor's very first dependence is classified — a failure
	// in early execution must still reach the Debug Buffer.
	//
	// The padded sequence is materialized only for the offline callbacks:
	// the online replay path consumes OnDep alone (each module keeps its
	// own Input Generator Buffer), so building it per load would be a
	// wasted allocation on the hot path. Callbacks receive a fresh slice
	// they may retain.
	if e.OnSequence != nil || (e.trackPrev && e.OnNegative != nil) {
		seq := make(Sequence, e.n)
		win.fill(seq)
		if e.OnSequence != nil {
			e.OnSequence(tid, seq)
		}
		if e.trackPrev && e.OnNegative != nil {
			// The store before the last store to the same granule, when
			// it is a different instruction, yields an invalid variant
			// of this sequence: same history, wrong final writer.
			if pw, ok := e.prev[g]; ok && pw.pc != w.pc {
				neg := seq.Clone()
				neg[len(neg)-1] = Dep{S: pw.pc, L: pc, Inter: pw.tid != tid}
				e.OnNegative(tid, neg)
			}
		}
	}
	return d, true
}

// LastWriter is one last-writer table entry in exported form.
type LastWriter struct {
	Granule uint64
	StorePC uint64
	Tid     uint16
}

// WindowState is one thread's current dependence window in exported
// form, oldest first, at most N entries.
type WindowState struct {
	Tid    uint16
	Window []Dep
}

// ExtractorState is the extractor's complete resumable state: which
// writer last touched every granule, and each thread's partial
// dependence window. It is what a replay checkpoint must carry so that
// dependences formed after a resume are identical to an uninterrupted
// run. The before-last (TrackPrev) map is deliberately not part of it:
// it is an offline-training feature that replay never enables.
type ExtractorState struct {
	Granularity uint64
	Writers     []LastWriter  // sorted ascending by granule
	Windows     []WindowState // sorted ascending by tid
}

// ExportState captures the extractor's state deterministically: writers
// sorted by granule, windows by thread id, so identical extractor states
// export identical values (and, downstream, identical checkpoint bytes).
func (e *Extractor) ExportState() ExtractorState {
	st := ExtractorState{Granularity: e.granularity}
	if e.last.hasZero {
		st.Writers = append(st.Writers, LastWriter{Granule: 0, StorePC: e.last.zero.pc, Tid: e.last.zero.tid})
	}
	for i, g := range e.last.keys {
		if g != 0 {
			st.Writers = append(st.Writers, LastWriter{Granule: g, StorePC: e.last.vals[i].pc, Tid: e.last.vals[i].tid})
		}
	}
	sort.Slice(st.Writers, func(i, j int) bool { return st.Writers[i].Granule < st.Writers[j].Granule })
	for tid, w := range e.wins {
		if w == nil || w.cnt == 0 {
			continue
		}
		ws := WindowState{Tid: uint16(tid), Window: make([]Dep, w.cnt)}
		for i := 0; i < w.cnt; i++ {
			ws.Window[i] = w.buf[(w.head+i)%len(w.buf)]
		}
		st.Windows = append(st.Windows, ws)
	}
	return st
}

// RestoreState resets the extractor and loads a previously exported
// state. It fails when the state was captured at a different granularity
// or a window exceeds the configured sequence length — resuming under a
// changed configuration would silently form different dependences.
func (e *Extractor) RestoreState(st ExtractorState) error {
	if st.Granularity != e.granularity {
		return fmt.Errorf("deps: checkpoint granularity %d, extractor has %d", st.Granularity, e.granularity)
	}
	e.Reset()
	for _, w := range st.Writers {
		e.last.put(w.Granule, writer{pc: w.StorePC, tid: w.Tid})
	}
	for _, ws := range st.Windows {
		if len(ws.Window) > e.n {
			return fmt.Errorf("deps: checkpoint window of %d deps for tid %d, extractor N=%d", len(ws.Window), ws.Tid, e.n)
		}
		win := e.win(ws.Tid)
		for _, d := range ws.Window {
			win.push(d)
		}
	}
	return nil
}

// Window returns a copy of tid's current dependence window (most recent
// last). The window may be shorter than N early in an execution.
func (e *Extractor) Window(tid uint16) Sequence {
	if int(tid) >= len(e.wins) || e.wins[tid] == nil {
		return make(Sequence, 0)
	}
	w := e.wins[tid]
	out := make(Sequence, w.cnt)
	for i := 0; i < w.cnt; i++ {
		out[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	return out
}
