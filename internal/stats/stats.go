// Package stats provides the small set of descriptive statistics the
// experiment harness reports: means, standard deviations, confidence
// intervals and rate summaries over repeated (re-seeded) runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary; an empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean (0 for samples smaller than 2).
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci95 [min, max]".
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f] (n=%d)", s.Mean, s.CI95(), s.Min, s.Max, s.N)
}

// Rate is a counted proportion with a convenience constructor, used for
// misprediction and hit rates.
type Rate struct {
	Num, Den int
}

// Value returns the proportion (0 when the denominator is 0).
func (r Rate) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Pct returns the proportion in percent.
func (r Rate) Pct() float64 { return 100 * r.Value() }

// Wilson95 returns the Wilson-score 95% confidence interval for the
// proportion — well-behaved near 0 and 1 where rates like misprediction
// live.
func (r Rate) Wilson95() (lo, hi float64) {
	if r.Den == 0 {
		return 0, 0
	}
	const z = 1.96
	n := float64(r.Den)
	p := r.Value()
	z2 := z * z
	den := 1 + z2/n
	center := (p + z2/(2*n)) / den
	half := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / den
	return math.Max(0, center-half), math.Min(1, center+half)
}

// GeoMean returns the geometric mean of strictly positive samples, the
// conventional average for speedups; non-positive inputs return 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
