package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 || s.Median != 4.5 || s.N != 8 {
		t.Errorf("summary %+v", s)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.String() != "n=0" {
		t.Errorf("empty: %+v", s)
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.StdDev != 0 || one.CI95() != 0 || one.Median != 3 {
		t.Errorf("singleton: %+v", one)
	}
}

func TestSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRate(t *testing.T) {
	r := Rate{Num: 3, Den: 1000}
	if r.Value() != 0.003 || r.Pct() != 0.3 {
		t.Errorf("rate %v", r)
	}
	lo, hi := r.Wilson95()
	if lo < 0 || hi > 1 || lo > r.Value() || hi < r.Value() {
		t.Errorf("wilson [%v, %v] around %v", lo, hi, r.Value())
	}
	if (Rate{}).Value() != 0 {
		t.Error("zero denominator")
	}
	lo, hi = Rate{Num: 0, Den: 10}.Wilson95()
	if lo != 0 || hi <= 0 {
		t.Errorf("wilson at p=0: [%v, %v]", lo, hi)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Error("degenerate geomean")
	}
}
