package cpu

import (
	"testing"

	"act/internal/mem"
	"act/internal/program"
	"act/internal/vm"
)

func machine(t *testing.T, build func(b *program.Builder)) (*vm.VM, *mem.Hierarchy) {
	t.Helper()
	pb := program.New("cpu-test")
	b := pb.Thread()
	build(b)
	p, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return vm.New(p), mem.New(mem.Config{Cores: 1, LineSize: 64, L1Size: 1 << 10, L1Ways: 2, L2Size: 4 << 10, L2Ways: 2})
}

// runCore cycles the core to completion, bounded.
func runCore(t *testing.T, c *Core) {
	t.Helper()
	for i := 0; !c.Done(); i++ {
		if i > 1_000_000 {
			t.Fatal("core wedged")
		}
		c.Cycle()
	}
}

func TestIndependentOpsDualIssue(t *testing.T) {
	// 40 independent immediates: a 2-wide core should sustain IPC near 2.
	mach, hier := machine(t, func(b *program.Builder) {
		for i := 0; i < 40; i++ {
			b.Li(uint8(1+i%20), int64(i))
		}
		b.Halt()
	})
	c := New(0, Config{}, mach, 0, hier, nil)
	runCore(t, c)
	st := c.Stats()
	ipc := float64(st.Instructions) / float64(st.Cycles)
	if ipc < 1.5 {
		t.Fatalf("IPC %.2f for independent ops, want near 2", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// A multiply chain: each result feeds the next, so the scoreboard
	// must hold issue for MulLat cycles per link.
	const n = 30
	mach, hier := machine(t, func(b *program.Builder) {
		b.Li(1, 1)
		b.Li(2, 3)
		for i := 0; i < n; i++ {
			b.Mul(1, 1, 2)
		}
		b.Halt()
	})
	c := New(0, Config{}, mach, 0, hier, nil)
	runCore(t, c)
	st := c.Stats()
	if st.Cycles < int64(n*Config{}.withDefaults().MulLat) {
		t.Fatalf("chain of %d muls finished in %d cycles: scoreboard broken", n, st.Cycles)
	}
}

func TestLoadLatencyRespected(t *testing.T) {
	// A load followed by a dependent add: the add must wait for the
	// cold-miss latency.
	mach, hier := machine(t, func(b *program.Builder) {
		b.Li(1, 0x10000000)
		b.Store(1, 1, 0) // warm nothing: cold store is the miss
		b.Load(2, 1, 0)
		b.Addi(3, 2, 1)
		b.Halt()
	})
	c := New(0, Config{}, mach, 0, hier, nil)
	runCore(t, c)
	// Default memory round trip is 300 cycles plus 30 bus cycles; the
	// cold store alone costs that much before the dependent ops finish.
	if c.Stats().Cycles < 330 {
		t.Fatalf("cycles %d below the memory fill latency", c.Stats().Cycles)
	}
}

type stubHook struct {
	offered  int
	accepted int
	budget   int // accept this many, then refuse forever
	ticks    int
}

func (h *stubHook) OnLoadComplete(vm.Event, mem.Result) bool { return true }
func (h *stubHook) TryAccept() bool {
	h.offered++
	if h.accepted < h.budget {
		h.accepted++
		return true
	}
	return false
}
func (h *stubHook) Tick() { h.ticks++ }

func TestNNStallBlocksRetirement(t *testing.T) {
	mach, hier := machine(t, func(b *program.Builder) {
		b.Li(1, 0x10000000)
		b.Store(1, 1, 0)
		b.Load(2, 1, 0)
		b.Load(3, 1, 8)
		b.Halt()
	})
	h := &stubHook{budget: 1}
	c := New(0, Config{}, mach, 0, hier, h)
	for i := 0; i < 5000 && !c.Done(); i++ {
		c.Cycle()
	}
	if c.Done() {
		t.Fatal("core retired a load the NN FIFO refused")
	}
	if c.Stats().NNStalls == 0 {
		t.Fatal("no NN stalls counted")
	}
	if h.ticks == 0 {
		t.Fatal("hook never ticked")
	}
}

func TestQuiesceAndStall(t *testing.T) {
	mach, hier := machine(t, func(b *program.Builder) {
		for i := 0; i < 10; i++ {
			b.Li(1, int64(i))
		}
		b.Halt()
	})
	c := New(0, Config{}, mach, 0, hier, nil)
	c.Cycle()
	c.AddStall(100)
	before := c.Stats().Instructions
	for i := 0; i < 50; i++ {
		c.Cycle()
	}
	if c.Stats().Instructions != before {
		t.Fatal("core made progress during a stall")
	}
	c.Quiesce()
	if !c.Drained() {
		t.Fatal("Quiesce left the ROB occupied")
	}
	runCore(t, c)
	if c.Thread() != 0 {
		t.Fatal("thread changed unexpectedly")
	}
	c.SetThread(0)
}
