// Package cpu models the out-of-order core timing of Table III: a
// 2-issue/3-retire pipeline with a 140-entry reorder buffer. The
// functional execution comes from the VM (instructions execute when
// issued); this package accounts for when they complete and retire, and
// implements the one architectural interaction ACT adds — a load whose
// RAW dependence the neural network's input FIFO cannot yet accept is
// held at the head of the ROB until the FIFO drains (Section III-C).
package cpu

import (
	"act/internal/isa"
	"act/internal/mem"
	"act/internal/vm"
)

// Config sets the core's widths and latencies.
type Config struct {
	IssueWidth  int // default 2
	RetireWidth int // default 3
	ROBSize     int // default 140

	ALULat    int // default 1
	MulLat    int // default 3
	DivLat    int // default 12
	BranchLat int // default 1
	SyncLat   int // lock/unlock/fence overhead; default 2
}

func (c Config) withDefaults() Config {
	if c.IssueWidth == 0 {
		c.IssueWidth = 2
	}
	if c.RetireWidth == 0 {
		c.RetireWidth = 3
	}
	if c.ROBSize == 0 {
		c.ROBSize = 140
	}
	if c.ALULat == 0 {
		c.ALULat = 1
	}
	if c.MulLat == 0 {
		c.MulLat = 3
	}
	if c.DivLat == 0 {
		c.DivLat = 12
	}
	if c.BranchLat == 0 {
		c.BranchLat = 1
	}
	if c.SyncLat == 0 {
		c.SyncLat = 2
	}
	return c
}

// ACTHook is the per-core ACT Module attachment. A nil hook models the
// baseline machine without ACT.
type ACTHook interface {
	// OnLoadComplete delivers a finished load's last-writer observation.
	// It returns true when a dependence was formed and the load must be
	// accepted by the neural network's input FIFO before retiring.
	OnLoadComplete(ev vm.Event, r mem.Result) bool
	// TryAccept asks the input FIFO to take the pending input; false
	// stalls retirement this cycle.
	TryAccept() bool
	// Tick advances the neural hardware one cycle.
	Tick()
}

// entry is one ROB slot.
type entry struct {
	completeAt int64
	needAccept bool // load waiting for NN FIFO acceptance
	accepted   bool
}

// Stats counts core activity.
type Stats struct {
	Cycles       int64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	NNStalls     int64 // retire cycles lost to a full NN input FIFO
	ROBStalls    int64 // issue cycles lost to a full ROB
	IdleCycles   int64 // cycles with nothing to issue (blocked/halted thread)
}

// Core drives one hardware thread. Exec produces the next functional
// instruction (the VM step); Mem provides memory timing and last-writer
// metadata.
type Core struct {
	ID   int
	cfg  Config
	mach *vm.VM
	tid  int
	hier *mem.Hierarchy
	hook ACTHook

	rob      []entry
	head     int
	count    int
	now      int64
	stallTo  int64              // context-switch/migration stall deadline
	regReady [isa.NumRegs]int64 // scoreboard: cycle each register's value is available
	srcBuf   []uint8
	st       Stats
}

// New builds a core for thread tid of the given VM.
func New(id int, cfg Config, mach *vm.VM, tid int, hier *mem.Hierarchy, hook ACTHook) *Core {
	cfg = cfg.withDefaults()
	return &Core{
		ID: id, cfg: cfg, mach: mach, tid: tid, hier: hier, hook: hook,
		rob: make([]entry, cfg.ROBSize),
	}
}

// Stats returns a copy of the counters.
func (c *Core) Stats() Stats { return c.st }

// Thread returns the hardware thread the core currently runs.
func (c *Core) Thread() int { return c.tid }

// SetThread migrates a (drained) core to another thread. Callers model
// the OS cost separately with AddStall.
func (c *Core) SetThread(tid int) { c.tid = tid }

// Drained reports whether the ROB holds no in-flight instructions — the
// precondition for a context switch.
func (c *Core) Drained() bool { return c.count == 0 }

// AddStall keeps the core from issuing or retiring for the given number
// of cycles — the weight save/restore sequence (ldwt/stwt loops) plus
// pipeline flush of a context switch or migration.
func (c *Core) AddStall(cycles int64) {
	if until := c.now + cycles; until > c.stallTo {
		c.stallTo = until
	}
}

// Quiesce models the OS waiting out the in-flight instructions at a
// context switch: the ROB empties (their functional effects are already
// applied) and the scoreboard resets; the caller charges the time via
// AddStall.
func (c *Core) Quiesce() {
	c.head = 0
	c.count = 0
	for i := range c.regReady {
		c.regReady[i] = 0
	}
}

// Done reports whether the thread has finished and the ROB drained.
func (c *Core) Done() bool {
	return c.count == 0 && c.mach.Status(c.tid) != vm.Running && c.mach.Status(c.tid) != vm.Blocked
}

// latencyFor returns the execution latency of a non-memory instruction.
func (c *Core) latencyFor(op isa.Op) int {
	switch {
	case op == isa.Mul:
		return c.cfg.MulLat
	case op == isa.Div || op == isa.Rem:
		return c.cfg.DivLat
	case op.IsBranch():
		return c.cfg.BranchLat
	case op.IsSync():
		return c.cfg.SyncLat
	default:
		return c.cfg.ALULat
	}
}

// Cycle advances the core one clock: tick the NN hardware, retire, then
// issue. It returns the number of instructions retired.
func (c *Core) Cycle() int {
	c.now++
	c.st.Cycles++
	if c.hook != nil {
		c.hook.Tick()
	}
	if c.now < c.stallTo {
		return 0
	}

	// Retire in order, up to RetireWidth.
	retired := 0
	for retired < c.cfg.RetireWidth && c.count > 0 {
		e := &c.rob[c.head]
		if e.completeAt > c.now {
			break
		}
		if e.needAccept && !e.accepted {
			if !c.hook.TryAccept() {
				c.st.NNStalls++
				break
			}
			e.accepted = true
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		retired++
		c.st.Instructions++
	}

	// Issue up to IssueWidth new instructions, respecting operand
	// readiness (scoreboard): a dependent instruction waits for its
	// producer to complete.
	issued := 0
	for issued < c.cfg.IssueWidth {
		if c.count == len(c.rob) {
			c.st.ROBStalls++
			break
		}
		next, can := c.mach.Peek(c.tid)
		if !can {
			if issued == 0 && retired == 0 {
				c.st.IdleCycles++
			}
			break
		}
		ready := true
		c.srcBuf = next.SrcRegs(c.srcBuf[:0])
		for _, r := range c.srcBuf {
			if c.regReady[r] > c.now {
				ready = false
				break
			}
		}
		if !ready {
			break
		}
		ev, ok := c.mach.StepThread(c.tid)
		if !ok {
			break
		}
		e := entry{}
		switch ev.Op {
		case isa.Load:
			c.st.Loads++
			r := c.hier.Access(c.ID, ev.Addr, false, ev.PC)
			e.completeAt = c.now + int64(r.Cycles)
			if c.hook != nil && c.hook.OnLoadComplete(ev, r) {
				e.needAccept = true
			}
		case isa.Store:
			c.st.Stores++
			r := c.hier.Access(c.ID, ev.Addr, true, ev.PC)
			e.completeAt = c.now + int64(r.Cycles)
		case isa.Atomic:
			c.st.Loads++
			c.st.Stores++
			// Read-modify-write: the read observes the previous writer,
			// then the write claims the line.
			rl := c.hier.Access(c.ID, ev.Addr, false, ev.PC)
			c.hier.Access(c.ID, ev.Addr, true, ev.PC)
			e.completeAt = c.now + int64(rl.Cycles) + int64(c.cfg.SyncLat)
			if c.hook != nil && c.hook.OnLoadComplete(ev, rl) {
				e.needAccept = true
			}
		default:
			e.completeAt = c.now + int64(c.latencyFor(ev.Op))
		}
		if rd, hasDest := next.DestReg(); hasDest {
			c.regReady[rd] = e.completeAt
		}
		c.rob[(c.head+c.count)%len(c.rob)] = e
		c.count++
		issued++
	}
	return retired
}
