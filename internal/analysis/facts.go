// Fact layer: per-function summaries published by passes and consumed
// across package boundaries. The intraprocedural PR-4 passes shared
// only one whole-program fact (the //act:exhaustive enum set); the
// interprocedural passes need richer currency — "this function is
// alloc-free", "this function acquires these lock classes in this
// order" — produced while analyzing one package and read while
// analyzing its importers. Facts are keyed by the stable qualified
// function name (types.Func.FullName), so they survive serialization:
// Encode/Decode round-trips the whole set deterministically, which is
// what an external cache (or a future sharded lint) would persist
// between runs.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// Facts is cross-package knowledge shared by every pass in a run:
// enum annotations harvested at load time plus the per-function
// summaries the interprocedural passes publish as they go.
type Facts struct {
	// ExhaustiveEnums holds the fully qualified names
	// ("pkgpath.TypeName") of types annotated //act:exhaustive anywhere
	// in the loaded program.
	ExhaustiveEnums map[string]bool
	// Funcs holds published per-function summaries, keyed by the
	// qualified name from FuncName.
	Funcs map[string]*FuncFact
}

// NewFacts returns an empty fact set.
func NewFacts() *Facts {
	return &Facts{
		ExhaustiveEnums: make(map[string]bool),
		Funcs:           make(map[string]*FuncFact),
	}
}

// FuncFact is one function's exported summary. Zero values are the
// conservative defaults: not proven alloc-free, no known lock
// behavior.
type FuncFact struct {
	Name string `json:"name"`
	// AllocFree reports that the function (transitively) performs no
	// heap allocation; AllocWhy carries the first obstacle otherwise.
	AllocFree bool   `json:"alloc_free"`
	AllocWhy  string `json:"alloc_why,omitempty"`
	// Acquires lists the lock classes the function may acquire,
	// directly or through its callees (sorted).
	Acquires []string `json:"acquires,omitempty"`
	// LockEdges lists the acquisition-order edges observed inside the
	// function: To was acquired while From was held.
	LockEdges []LockEdge `json:"lock_edges,omitempty"`
}

// LockEdge records that lock class To was acquired while From was
// held, with the source position of the inner acquisition.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	At   string `json:"at,omitempty"`
}

// Func returns the published fact for a qualified name, or nil.
func (f *Facts) Func(name string) *FuncFact { return f.Funcs[name] }

// PublishFunc records fn's summary, replacing any earlier version.
func (f *Facts) PublishFunc(fact *FuncFact) { f.Funcs[fact.Name] = fact }

// FuncName returns the stable qualified name used as a fact key:
// "pkgpath.Func" for functions, "(pkgpath.Recv).Method" or
// "(*pkgpath.Recv).Method" for methods. Generic instances are
// normalized to their origin so call sites and declarations agree.
func FuncName(fn *types.Func) string { return fn.Origin().FullName() }

// factsWire is the serialized form: deterministic by construction
// (sorted slices, no maps with interesting key order).
type factsWire struct {
	Version int         `json:"version"`
	Enums   []string    `json:"enums,omitempty"`
	Funcs   []*FuncFact `json:"funcs,omitempty"`
}

const factsVersion = 1

// Encode serializes the fact set deterministically: equal sets encode
// to identical bytes regardless of publication order.
func (f *Facts) Encode() ([]byte, error) {
	w := factsWire{Version: factsVersion}
	for name := range f.ExhaustiveEnums {
		w.Enums = append(w.Enums, name)
	}
	sort.Strings(w.Enums)
	for _, fact := range f.Funcs {
		c := *fact
		c.Acquires = append([]string(nil), fact.Acquires...)
		sort.Strings(c.Acquires)
		c.LockEdges = append([]LockEdge(nil), fact.LockEdges...)
		sort.Slice(c.LockEdges, func(i, j int) bool {
			a, b := c.LockEdges[i], c.LockEdges[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.At < b.At
		})
		w.Funcs = append(w.Funcs, &c)
	}
	sort.Slice(w.Funcs, func(i, j int) bool { return w.Funcs[i].Name < w.Funcs[j].Name })
	return json.MarshalIndent(w, "", "\t")
}

// DecodeFacts parses bytes produced by Encode.
func DecodeFacts(data []byte) (*Facts, error) {
	var w factsWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %w", err)
	}
	if w.Version != factsVersion {
		return nil, fmt.Errorf("analysis: facts version %d, want %d", w.Version, factsVersion)
	}
	f := NewFacts()
	for _, name := range w.Enums {
		f.ExhaustiveEnums[name] = true
	}
	for _, fact := range w.Funcs {
		if fact.Name == "" {
			return nil, fmt.Errorf("analysis: facts entry with empty name")
		}
		f.Funcs[fact.Name] = fact
	}
	return f, nil
}

// Merge folds other's facts into f, with other winning conflicts —
// the shape a sharded run uses to combine per-package exports.
func (f *Facts) Merge(other *Facts) {
	for name := range other.ExhaustiveEnums {
		f.ExhaustiveEnums[name] = true
	}
	for name, fact := range other.Funcs {
		f.Funcs[name] = fact
	}
}
