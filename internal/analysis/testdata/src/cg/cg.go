// Package cg is the call-graph smoke fixture.
package cg

type S struct{ n int }

func (s *S) bump() { s.n++ }

func helper() int { return 1 }

func caller(s *S, f func()) {
	helper()
	s.bump()
	f()
}

// withLit's literal body is excluded from withLit's own calls; the
// invocation of g is a dynamic site.
func withLit() {
	g := func() { helper() }
	g()
}
