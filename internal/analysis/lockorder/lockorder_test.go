package lockorder_test

import (
	"testing"

	"act/internal/analysis/analysistest"
	"act/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", lockorder.Analyzer)
}

// TestLockorderCrossPackage pins the fact-merged behavior: package q
// establishes an acquisition order and exports lock summaries, package
// p closes cycles against them across the import edge.
func TestLockorderCrossPackage(t *testing.T) {
	analysistest.RunRoot(t, "testdata/src", lockorder.Analyzer, "p")
}
