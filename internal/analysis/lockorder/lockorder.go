// Package lockorder implements the actlint pass that builds a
// whole-program lock-acquisition-order graph and reports cycles — the
// static face of the deadlock class the runtime tracker diagnoses
// after the fact. The fleet/shard/obs layers are mutex-heavy and call
// across package boundaries while holding locks; an AB/BA inversion
// between two of those packages deadlocks only under the right
// interleaving, which no test schedule is guaranteed to produce. The
// acquisition order, by contrast, is a static property.
//
// Locks are abstracted to classes, lockdep-style: a mutex struct field
// is "pkgpath.Type.field", a package-level mutex is "pkgpath.var", a
// named type with an embedded sync.Mutex is "pkgpath.Type". All
// instances of a class share its node — two different shard lanes are
// the same class — so the graph stays small and the verdicts
// instance-independent. Local mutex variables have no useful class and
// are ignored.
//
// Per function, a source-order walk tracks the held set: Lock, RLock,
// TryLock and TryRLock push their class (recording an edge from every
// held class), Unlock and RUnlock pop it, and a deferred unlock keeps
// the class held to the end of the body. The //act:locked <mu>
// annotation (shared with guardedby) seeds the held set, so *Locked
// helpers contribute their edges under the caller's lock. Each
// function's edges and transitively-acquired classes are published as
// facts; at a static call site the caller adds (held × callee's
// acquires) — this is how an order established in one package merges
// with acquisitions made in another.
//
// Reported, on the merged graph:
//
//   - acquisition-order cycles (potential deadlocks), each rendered
//     once with its full class path and the source position of every
//     participating acquisition;
//   - blocking-while-holding hazards: a channel send or a
//     sync.WaitGroup.Wait reached while any lock class is held.
//
// Same-class edges (lock A held while another instance of A is
// acquired) are deliberately not reported: ordered same-class
// acquisition over shard/lane arrays is routine and instance identity
// is out of scope for a class-level graph.
//
// The //act:lockorder-ok <reason> waiver on (or directly above) a line
// suppresses the edge or hazard that line creates, keeping the excuse
// visible in review next to the code.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"act/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "reports lock-acquisition-order cycles and blocking-while-holding hazards",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	st := pass.Prog.Scratch("lockorder", func() any { return build(pass.Prog) }).(*state)

	// Hazards are reported by the package that contains them.
	for _, h := range st.hazards {
		if h.pkg == pass.Pkg {
			pass.Reportf(h.pos, "%s while holding %s (waive with //act:lockorder-ok)", h.what, strings.Join(h.held, ", "))
		}
	}

	// Each cycle is reported once, anchored at the smallest analyzed
	// position among its edges, so exactly one of the analyzed
	// packages claims it.
	analyzed := make(map[*types.Package]bool, len(pass.Prog.Pkgs))
	for _, p := range pass.Prog.Pkgs {
		analyzed[p.Types] = true
	}
	for _, cyc := range st.cycles {
		anchor := anchorEdge(cyc, analyzed)
		if anchor == nil || anchor.pkg != pass.Pkg {
			continue
		}
		pass.Reportf(anchor.pos, "lock-order cycle (potential deadlock): %s", renderCycle(st, cyc))
	}
	return nil
}

// edge is one observed acquisition order: to was acquired while from
// was held, at pos (inside pkg).
type edge struct {
	from, to string
	pos      token.Pos
	pkg      *types.Package
}

// hazard is a blocking operation reached with locks held.
type hazard struct {
	what string
	pos  token.Pos
	pkg  *types.Package
	held []string
}

// state is the whole-program result: the merged class graph, detected
// cycles, and hazards.
type state struct {
	prog    *analysis.Program
	edges   map[[2]string]*edge // first-seen representative per (from,to)
	hazards []hazard
	cycles  [][]*edge
}

// harvest is one function's direct lock behavior plus its call sites
// annotated with the held set.
type harvest struct {
	node     *analysis.FuncNode
	acquires map[string]bool
	edges    []*edge
	calls    []callUnder
	hazards  []hazard
}

type callUnder struct {
	callee *types.Func
	pos    token.Pos
	held   []string
}

func build(prog *analysis.Program) *state {
	st := &state{prog: prog, edges: make(map[[2]string]*edge)}
	cg := prog.CallGraph()

	// Deterministic function order: packages in load order, then
	// declaration order within each.
	var nodes []*analysis.FuncNode
	for _, pkg := range prog.All {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					if n := cg.Node(fn); n != nil {
						nodes = append(nodes, n)
					}
				}
			}
		}
	}

	harvests := make(map[*types.Func]*harvest, len(nodes))
	for _, n := range nodes {
		harvests[n.Fn] = harvestFunc(prog, n)
	}

	// Transitive acquires: fixpoint over the call graph (cycles in the
	// graph converge because the sets only grow).
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			h := harvests[n.Fn]
			for _, c := range h.calls {
				callee := harvests[c.callee]
				if callee == nil {
					continue
				}
				for cls := range callee.acquires {
					if !h.acquires[cls] {
						h.acquires[cls] = true
						changed = true
					}
				}
			}
		}
	}

	// Merge: direct edges, plus held × callee-acquires at call sites.
	addEdge := func(e *edge) {
		key := [2]string{e.from, e.to}
		if _, ok := st.edges[key]; !ok {
			st.edges[key] = e
		}
	}
	for _, n := range nodes {
		h := harvests[n.Fn]
		for _, e := range h.edges {
			addEdge(e)
		}
		for _, c := range h.calls {
			callee := harvests[c.callee]
			if callee == nil {
				continue
			}
			acq := sortedKeys(callee.acquires)
			for _, held := range c.held {
				for _, cls := range acq {
					if cls == held {
						continue
					}
					addEdge(&edge{from: held, to: cls, pos: c.pos, pkg: n.Pkg.Types})
				}
			}
		}
		st.hazards = append(st.hazards, h.hazards...)
		publish(prog.Facts, prog.Fset, n.Fn, h)
	}

	st.cycles = findCycles(st.edges)
	return st
}

// publish exports the function's lock summary as a fact.
func publish(facts *analysis.Facts, fset *token.FileSet, fn *types.Func, h *harvest) {
	if len(h.acquires) == 0 && len(h.edges) == 0 {
		return
	}
	name := analysis.FuncName(fn)
	fact := facts.Func(name)
	if fact == nil {
		fact = &analysis.FuncFact{Name: name}
		facts.PublishFunc(fact)
	}
	fact.Acquires = sortedKeys(h.acquires)
	for _, e := range h.edges {
		fact.LockEdges = append(fact.LockEdges, analysis.LockEdge{
			From: e.from, To: e.to, At: shortPos(fset, e.pos),
		})
	}
}

// harvestFunc walks one function body in source order, tracking the
// held set.
func harvestFunc(prog *analysis.Program, node *analysis.FuncNode) *harvest {
	info := node.Pkg.Info
	fset := prog.Fset
	h := &harvest{node: node, acquires: make(map[string]bool)}
	waived := waivedLines(fset, fileOf(node.Pkg, node.Decl))

	var held []string
	// //act:locked <mu> seeds the held set with the receiver's guard.
	if arg, ok := analysis.DirectiveArg(node.Decl.Doc, "act:locked"); ok && arg != "" {
		if recv := receiverNamed(node.Fn); recv != nil {
			cls := qualifyNamed(recv) + "." + arg
			held = append(held, cls)
			h.acquires[cls] = true
		}
	}

	// Deferred calls never release within the body.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs at its own time, under its own
			// locks; its calls are not this function's acquisitions.
			return false
		case *ast.SendStmt:
			if len(held) > 0 && !waived[fset.Position(n.Pos()).Line] {
				h.hazards = append(h.hazards, hazard{
					what: "channel send", pos: n.Pos(), pkg: node.Pkg.Types,
					held: append([]string(nil), held...),
				})
			}
		case *ast.CallExpr:
			line := fset.Position(n.Pos()).Line
			if cls, op := lockCall(info, n); op != opNone && cls != "" {
				switch op {
				case opAcquire:
					if !waived[line] {
						for _, f := range held {
							if f != cls {
								h.edges = append(h.edges, &edge{from: f, to: cls, pos: n.Pos(), pkg: node.Pkg.Types})
							}
						}
					}
					held = append(held, cls)
					h.acquires[cls] = true
				case opRelease:
					if !deferred[n] {
						held = removeLast(held, cls)
					}
				}
				return true
			}
			if isWaitCall(info, n) {
				if len(held) > 0 && !waived[line] {
					h.hazards = append(h.hazards, hazard{
						what: "sync.WaitGroup.Wait", pos: n.Pos(), pkg: node.Pkg.Types,
						held: append([]string(nil), held...),
					})
				}
				return true
			}
			if site, ok := analysis.ResolveCall(info, n); ok && !site.Dynamic && len(held) > 0 {
				h.calls = append(h.calls, callUnder{
					callee: site.Callee, pos: n.Pos(),
					held: append([]string(nil), held...),
				})
			}
		}
		return true
	})
	return h
}

// waivedLines collects //act:lockorder-ok lines (own line + next).
func waivedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	if f == nil {
		return out
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "act:lockorder-ok") {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

// lockCall recognizes sync mutex method calls, returning the lock
// class of the receiver expression and the operation.
func lockCall(info *types.Info, call *ast.CallExpr) (string, lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn := methodOf(info, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	var op lockOp
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = opAcquire
	case "Unlock", "RUnlock":
		op = opRelease
	default:
		return "", opNone
	}
	return lockClassOf(info, sel.X), op
}

// isWaitCall recognizes sync.WaitGroup.Wait.
func isWaitCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := methodOf(info, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Wait" {
		return false
	}
	recv := receiverNamed(fn)
	return recv != nil && recv.Obj().Name() == "WaitGroup"
}

func methodOf(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	if s, ok := info.Selections[sel]; ok && (s.Kind() == types.MethodVal || s.Kind() == types.MethodExpr) {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// lockClassOf abstracts a mutex receiver expression to its class:
//
//	x.mu        → pkg.OwnerType.mu  (struct field)
//	pkgvar      → pkg.pkgvar        (package-level var)
//	s           → pkg.S             (embedded sync.Mutex receiver)
//	local       → ""                (no class)
func lockClassOf(info *types.Info, expr ast.Expr) string {
	e := ast.Unparen(expr)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if named := namedOf(info.TypeOf(e.X)); named != nil {
				return qualifyNamed(named) + "." + e.Sel.Name
			}
			return ""
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && packageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			if packageLevel(v) {
				return v.Pkg().Path() + "." + v.Name()
			}
			// Receiver or local of a named type embedding the mutex.
			if named := namedOf(v.Type()); named != nil {
				if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() != "sync" {
					return qualifyNamed(named)
				}
			}
		}
	}
	return ""
}

func packageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func qualifyNamed(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// receiverNamed returns the named type of fn's receiver (deref'd), or
// nil for plain functions.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

func removeLast(held []string, cls string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == cls {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// findCycles detects acquisition-order cycles on the merged class
// graph: for each strongly connected component with more than one
// class, it extracts one deterministic representative cycle starting
// from the smallest class and always preferring the smallest next
// class.
func findCycles(edges map[[2]string]*edge) [][]*edge {
	succ := make(map[string][]string)
	for key := range edges {
		succ[key[0]] = append(succ[key[0]], key[1])
	}
	for _, s := range succ {
		sort.Strings(s)
	}

	sccs := tarjan(succ)
	var cycles [][]*edge
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[string]bool, len(scc))
		for _, c := range scc {
			inSCC[c] = true
		}
		sort.Strings(scc)
		path := cyclePath(scc[0], succ, inSCC)
		var cyc []*edge
		for i := range path {
			from, to := path[i], path[(i+1)%len(path)]
			cyc = append(cyc, edges[[2]string{from, to}])
		}
		cycles = append(cycles, cyc)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i][0].from < cycles[j][0].from })
	return cycles
}

// cyclePath walks from start back to start inside the SCC, greedily
// taking the smallest in-SCC successor not yet on the path.
func cyclePath(start string, succ map[string][]string, inSCC map[string]bool) []string {
	path := []string{start}
	onPath := map[string]bool{start: true}
	cur := start
	for {
		next := ""
		for _, s := range succ[cur] {
			if s == start && len(path) > 1 {
				return path
			}
			if inSCC[s] && !onPath[s] {
				next = s
				break
			}
		}
		if next == "" {
			// Dead end off the greedy path (possible in dense SCCs):
			// backtrack by restarting with the direct 2-cycle if one
			// exists, else give up on a longer representative.
			for _, s := range succ[start] {
				if inSCC[s] {
					for _, back := range succ[s] {
						if back == start {
							return []string{start, s}
						}
					}
				}
			}
			return path
		}
		path = append(path, next)
		onPath[next] = true
		cur = next
	}
}

// tarjan computes strongly connected components of the class graph.
func tarjan(succ map[string][]string) [][]string {
	var (
		index    = make(map[string]int)
		low      = make(map[string]int)
		onStack  = make(map[string]bool)
		stack    []string
		counter  int
		out      [][]string
		strongly func(v string)
	)
	var nodes []string
	seen := make(map[string]bool)
	for from, tos := range succ {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	strongly = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, ok := index[w]; !ok {
				strongly(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			out = append(out, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongly(v)
		}
	}
	return out
}

// anchorEdge picks the reporting anchor for a cycle: the edge with the
// smallest position among edges owned by analyzed packages.
func anchorEdge(cyc []*edge, analyzed map[*types.Package]bool) *edge {
	var best *edge
	for _, e := range cyc {
		if e == nil || !analyzed[e.pkg] {
			continue
		}
		if best == nil || e.pos < best.pos {
			best = e
		}
	}
	return best
}

// renderCycle prints "A → B (at x.go:12) → A (at y.go:30)"; the last
// hop's target closes the cycle back at the first class.
func renderCycle(st *state, cyc []*edge) string {
	var b strings.Builder
	for i, e := range cyc {
		if e == nil {
			continue
		}
		if i == 0 {
			b.WriteString(e.from)
		}
		fmt.Fprintf(&b, " → %s (at %s)", e.to, shortPos(st.prog.Fset, e.pos))
	}
	return b.String()
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	if !p.IsValid() {
		return "?"
	}
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// fileOf finds the *ast.File containing decl.
func fileOf(pkg *analysis.Package, decl *ast.FuncDecl) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= decl.Pos() && decl.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}
