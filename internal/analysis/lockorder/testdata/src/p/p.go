// Package p is the analyzed side of the cross-package lockorder
// fixture: its inverted acquisitions close cycles against the edges
// package q established, merged through facts.
package p

import (
	"sync"

	"q"
)

// Inverted closes the AB/BA cycle across the import edge: q's
// XThenY ordered MuX before MuY.
func Inverted(pr *q.Pair) {
	pr.MuY.Lock()
	pr.MuX.Lock() // want `lock-order cycle \(potential deadlock\): q\.Pair\.MuX → q\.Pair\.MuY \(at q\.go:\d+\) → q\.Pair\.MuX \(at p\.go:\d+\)`
	pr.MuX.Unlock()
	pr.MuY.Unlock()
}

// Local is p's own lock class.
type Local struct {
	mu sync.Mutex
}

// HoldAndFill acquires q.Store.Mu through the callee's fact while
// holding p.Local.mu.
func (l *Local) HoldAndFill(st *q.Store) {
	l.mu.Lock()
	st.Fill() // want `lock-order cycle \(potential deadlock\): p\.Local\.mu → q\.Store\.Mu \(at p\.go:\d+\) → p\.Local\.mu \(at p\.go:\d+\)`
	l.mu.Unlock()
}

// StoreThenLocal closes the second cycle in the other direction.
func (l *Local) StoreThenLocal(st *q.Store) {
	st.Mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	st.Mu.Unlock()
}

// Aligned follows q's canonical order: no diagnostic.
func Aligned(pr *q.Pair) {
	pr.MuX.Lock()
	pr.MuY.Lock()
	pr.MuY.Unlock()
	pr.MuX.Unlock()
}
