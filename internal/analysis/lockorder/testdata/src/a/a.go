// Package a is the lockorder golden package: acquisition-order cycles
// within one package, blocking-while-holding hazards, waivers, and the
// class-abstraction negative cases.
package a

import "sync"

// S carries the classic AB/BA inversion.
type S struct {
	mu1 sync.Mutex
	mu2 sync.Mutex
}

func (s *S) ab() {
	s.mu1.Lock()
	s.mu2.Lock() // want `lock-order cycle \(potential deadlock\): a\.S\.mu1 → a\.S\.mu2 \(at a\.go:\d+\) → a\.S\.mu1 \(at a\.go:\d+\)`
	s.mu2.Unlock()
	s.mu1.Unlock()
}

func (s *S) ba() {
	s.mu2.Lock()
	s.mu1.Lock() // the inversion: second half of the cycle
	s.mu1.Unlock()
	s.mu2.Unlock()
}

// sendUnder blocks on a channel send with the lock held.
func (s *S) sendUnder(ch chan int) {
	s.mu1.Lock()
	ch <- 1 // want `channel send while holding a\.S\.mu1`
	s.mu1.Unlock()
}

// sendAfter releases first: no hazard.
func (s *S) sendAfter(ch chan int) {
	s.mu1.Lock()
	s.mu1.Unlock()
	ch <- 1
}

// sendWaived declares the send non-blocking.
func (s *S) sendWaived(ch chan int) {
	s.mu1.Lock()
	ch <- 1 //act:lockorder-ok buffered channel sized to the fan-out, never blocks
	s.mu1.Unlock()
}

// waitUnder parks on a WaitGroup with the lock held (deferred unlock
// keeps it held to the end of the body).
func (s *S) waitUnder(wg *sync.WaitGroup) {
	s.mu1.Lock()
	defer s.mu1.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while holding a\.S\.mu1`
}

// transfer locks two instances of the same class: no self-edge, no
// diagnostic (class-level analysis is instance-blind by design).
func transfer(a, b *S) {
	a.mu1.Lock()
	b.mu1.Lock()
	b.mu1.Unlock()
	a.mu1.Unlock()
}

// T exercises held × callee-acquires propagation through a call.
type T struct {
	x sync.Mutex
	y sync.Mutex
}

func (t *T) takeY() {
	t.y.Lock()
	t.y.Unlock()
}

func (t *T) xThenCallY() {
	t.x.Lock()
	t.takeY() // want `lock-order cycle \(potential deadlock\): a\.T\.x → a\.T\.y \(at a\.go:\d+\) → a\.T\.x \(at a\.go:\d+\)`
	t.x.Unlock()
}

func (t *T) yThenX() {
	t.y.Lock()
	t.x.Lock()
	t.x.Unlock()
	t.y.Unlock()
}

// G exercises //act:locked seeding: the helper's acquisition happens
// under the caller-held guard.
type G struct {
	mu  sync.Mutex
	aux sync.Mutex
}

// lockedHelper runs with g.mu held by contract.
//
//act:locked mu
func (g *G) lockedHelper() {
	g.aux.Lock() // want `lock-order cycle \(potential deadlock\): a\.G\.aux → a\.G\.mu \(at a\.go:\d+\) → a\.G\.aux \(at a\.go:\d+\)`
	g.aux.Unlock()
}

func (g *G) other() {
	g.aux.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	g.aux.Unlock()
}

// E embeds the mutex: the class is the named type itself.
type E struct {
	sync.Mutex
	n int
}

func sendEmbedded(e *E, ch chan int) {
	e.Lock()
	ch <- e.n // want `channel send while holding a\.E`
	e.Unlock()
}

// globalMu is a package-level lock class.
var globalMu sync.Mutex

func underGlobal(ch chan int) {
	globalMu.Lock()
	defer globalMu.Unlock()
	ch <- 0 // want `channel send while holding a\.globalMu`
}

// tryThenOrdered: TryLock acquisitions participate in the order graph
// like any other; a consistent order draws no diagnostic.
func (t *T) tryThenOrdered() {
	if t.x.TryLock() {
		defer t.x.Unlock()
		t.takeY() // consistent with xThenCallY: x before y
	}
}

// localOnly locks a local mutex: no class, no edges, no diagnostics.
func localOnly(ch chan int) {
	var mu sync.Mutex
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
