// Package q is the dependency side of the cross-package lockorder
// fixture: it establishes one acquisition order (MuX before MuY) and
// exports a helper whose lock behavior travels to importers as a fact.
package q

import "sync"

// Pair's canonical order is MuX before MuY.
type Pair struct {
	MuX sync.Mutex
	MuY sync.Mutex
}

// XThenY establishes the q-side ordering edge.
func (p *Pair) XThenY() {
	p.MuX.Lock()
	p.MuY.Lock()
	p.MuY.Unlock()
	p.MuX.Unlock()
}

// Store is a second, independent lock class for the fact-propagation
// cycle.
type Store struct {
	Mu sync.Mutex
}

// Fill acquires Store.Mu; importers calling it under their own locks
// inherit the edge through the published fact.
func (s *Store) Fill() {
	s.Mu.Lock()
	s.Mu.Unlock()
}
