// Package analysis is a self-contained static-analysis framework for
// the ACT codebase: a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface the actlint pass suite
// needs. The toolchain this repository builds under ships only the
// standard library, so instead of importing x/tools the framework
// loads and type-checks packages itself (see load.go) and hands each
// analyzer a Pass with the same shape the upstream API would: the file
// set, the package's syntax trees, its *types.Package and *types.Info,
// and a Report callback.
//
// ACT's motivation applies to its own implementation: the monitor's
// correctness rests on invariants — the zero-allocation classification
// path, the guarded-by-mutex discipline on shared state, exhaustive
// handling of enumerated fault and frame kinds, unmixed atomic/plain
// access — that dynamic tests catch one execution at a time. The
// analyzers in the subpackages turn those invariants into properties
// checked on every build of every future change.
//
// Annotation grammar (all forms are ordinary comments, so the code
// builds identically with or without the linter):
//
//	//act:noalloc            on a function: its body must contain no
//	                         heap-allocating construct, and every call
//	                         it makes must be proven alloc-free through
//	                         the call graph (noalloc pass)
//	//act:alloc-ok <reason>  on or directly above a line inside a
//	                         noalloc function: waives that whole line,
//	                         constructs and calls (used for guarded
//	                         grow-once paths and cold panic guards)
//	//act:alloc-ok-call <r>  same placement: waives only that line's
//	                         calls from the transitive alloc-free
//	                         proof (dynamic dispatch, cold-path
//	                         logging) while construct checks remain
//	// guarded by <mu>       on a struct field: accesses require the
//	                         sibling mutex field <mu> (guardedby pass)
//	//act:locked <mu>        on a function: callers hold the receiver's
//	                         <mu>; the function may touch fields <mu>
//	                         guards (guardedby pass), and the lockorder
//	                         pass seeds its held-set with <mu>
//	//act:exhaustive         on a defined type: every switch over it
//	                         must cover all declared constants or have
//	                         an explicit default (exhaustive pass)
//	//act:lockorder-ok <r>   on or above a line: waives that line's
//	                         blocking-while-holding hazard (lockorder
//	                         pass)
//	//act:goleak             in a package doc comment: every go
//	                         statement in the package needs a provable
//	                         termination path (goleak pass)
//	//act:goroutine-bounded  on or above a go statement, or on the
//	                         spawned function's doc: declares the
//	                         goroutine deliberately long-running or
//	                         externally bounded (goleak pass)
//
// The atomicmix pass needs no annotations: any field whose address
// reaches a sync/atomic call is atomic everywhere, by definition. The
// interprocedural passes (noalloc, lockorder, goleak) share the
// program call graph (callgraph.go) and publish per-function
// summaries through the facts layer (facts.go), so their conclusions
// cross package boundaries.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, printed in diagnostics
	Doc  string // one-paragraph description
	Run  func(*Pass) error
}

// Pass carries everything an analyzer sees for one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // the package's parsed sources, with comments
	Pkg      *types.Package
	Info     *types.Info
	// Facts is shared, whole-program knowledge: enum annotations
	// harvested at load time plus per-function summaries published by
	// interprocedural passes (see facts.go) — the stand-in for
	// x/tools' cross-package fact mechanism.
	Facts *Facts
	// Prog is the whole loaded program. Interprocedural passes reach
	// through it for the call graph and for dependency packages that
	// were loaded but not matched by the analysis patterns.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes the analyzers over every loaded package and returns all
// diagnostics sorted by file/line/column (then analyzer and message)
// for stable CI diffs, with exact duplicates collapsed. Analyzer
// errors (not findings — internal failures) abort the run.
func (prog *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    prog.Facts,
				Prog:     prog,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	return dedupSort(diags), nil
}

// dedupSort orders diagnostics by position, analyzer, and message, and
// collapses duplicates: the same message at the same position is one
// finding even when several passes (or one whole-program pass invoked
// once per package) report it independently. The survivor is the
// first analyzer alphabetically, keeping output byte-stable across
// runs and package orderings.
func dedupSort(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Message != diags[j].Message {
			return diags[i].Message < diags[j].Message
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			prev := out[len(out)-1]
			if prev.Pos.Filename == d.Pos.Filename && prev.Pos.Line == d.Pos.Line &&
				prev.Pos.Column == d.Pos.Column && prev.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// HasDirective reports whether the comment group contains a comment
// whose text (after "//") starts with the given act: directive, e.g.
// HasDirective(doc, "act:noalloc"). Directive comments have no space
// after "//", so they are invisible to godoc but survive gofmt.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	_, ok := DirectiveArg(doc, directive)
	return ok
}

// DirectiveArg returns the argument text following a directive comment
// ("//act:locked mu" yields "mu") and whether the directive is present.
func DirectiveArg(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, directive+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// ExprString renders a (simple) expression as source text — the
// guardedby pass uses it to compare lock-holder paths like "a" or
// "t.binary". It intentionally handles only the shapes that appear in
// selector bases; anything else renders as "?", which never matches.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return ExprString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ExprString(e.X)
		}
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	}
	return "?"
}
