// Package analysis is a self-contained static-analysis framework for
// the ACT codebase: a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis API surface the actlint pass suite
// needs. The toolchain this repository builds under ships only the
// standard library, so instead of importing x/tools the framework
// loads and type-checks packages itself (see load.go) and hands each
// analyzer a Pass with the same shape the upstream API would: the file
// set, the package's syntax trees, its *types.Package and *types.Info,
// and a Report callback.
//
// ACT's motivation applies to its own implementation: the monitor's
// correctness rests on invariants — the zero-allocation classification
// path, the guarded-by-mutex discipline on shared state, exhaustive
// handling of enumerated fault and frame kinds, unmixed atomic/plain
// access — that dynamic tests catch one execution at a time. The
// analyzers in the subpackages turn those invariants into properties
// checked on every build of every future change.
//
// Annotation grammar (all forms are ordinary comments, so the code
// builds identically with or without the linter):
//
//	//act:noalloc            on a function: its body must contain no
//	                         heap-allocating construct (noalloc pass)
//	//act:alloc-ok <reason>  on or directly above a line inside a
//	                         noalloc function: waives that one line
//	                         (used for guarded grow-once paths)
//	// guarded by <mu>       on a struct field: accesses require the
//	                         sibling mutex field <mu> (guardedby pass)
//	//act:locked <mu>        on a function: callers hold the receiver's
//	                         <mu>; the function may touch fields <mu>
//	                         guards (guardedby pass)
//	//act:exhaustive         on a defined type: every switch over it
//	                         must cover all declared constants or have
//	                         an explicit default (exhaustive pass)
//
// The atomicmix pass needs no annotations: any field whose address
// reaches a sync/atomic call is atomic everywhere, by definition.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, printed in diagnostics
	Doc  string // one-paragraph description
	Run  func(*Pass) error
}

// Pass carries everything an analyzer sees for one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // the package's parsed sources, with comments
	Pkg      *types.Package
	Info     *types.Info
	// Facts is shared, whole-program knowledge harvested at load time
	// (annotated enum types, for now) — the stand-in for x/tools'
	// cross-package fact mechanism.
	Facts *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Facts is cross-package knowledge gathered while loading: the fully
// qualified names ("pkgpath.TypeName") of types annotated
// //act:exhaustive anywhere in the loaded program.
type Facts struct {
	ExhaustiveEnums map[string]bool
}

// Run executes the analyzers over every loaded package and returns all
// diagnostics sorted by position. Analyzer errors (not findings —
// internal failures) abort the run.
func (prog *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Facts:    prog.Facts,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// HasDirective reports whether the comment group contains a comment
// whose text (after "//") starts with the given act: directive, e.g.
// HasDirective(doc, "act:noalloc"). Directive comments have no space
// after "//", so they are invisible to godoc but survive gofmt.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	_, ok := DirectiveArg(doc, directive)
	return ok
}

// DirectiveArg returns the argument text following a directive comment
// ("//act:locked mu" yields "mu") and whether the directive is present.
func DirectiveArg(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive {
			return "", true
		}
		if rest, ok := strings.CutPrefix(text, directive+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// ExprString renders a (simple) expression as source text — the
// guardedby pass uses it to compare lock-holder paths like "a" or
// "t.binary". It intentionally handles only the shapes that appear in
// selector bases; anything else renders as "?", which never matches.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return ExprString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ExprString(e.X)
		}
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return ExprString(e.Fun) + "()"
	}
	return "?"
}
