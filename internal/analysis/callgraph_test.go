package analysis

import "testing"

// TestCallGraphSmoke loads a tiny fixture and checks the resolution
// rules the interprocedural passes build on: static function and
// method calls carry their callee, func-value calls are dynamic, and
// function-literal interiors belong to the literal, not the host.
func TestCallGraphSmoke(t *testing.T) {
	prog, err := LoadRoot("testdata/src", []string{"cg"})
	if err != nil {
		t.Fatalf("LoadRoot: %v", err)
	}
	cg := prog.CallGraph()

	nodeByName := func(name string) *FuncNode {
		t.Helper()
		for fn, node := range cg.Nodes {
			if FuncName(fn) == name {
				return node
			}
		}
		t.Fatalf("no call-graph node named %s", name)
		return nil
	}

	caller := nodeByName("cg.caller")
	if len(caller.Calls) != 3 {
		t.Fatalf("caller: got %d call sites, want 3: %+v", len(caller.Calls), caller.Calls)
	}
	var sawHelper, sawBump, sawDynamic bool
	for _, site := range caller.Calls {
		switch {
		case site.Dynamic:
			sawDynamic = true
			if site.Desc == "" {
				t.Error("dynamic site has no description")
			}
		case site.Callee.Name() == "helper":
			sawHelper = true
		case site.Callee.Name() == "bump":
			sawBump = true
		}
	}
	if !sawHelper || !sawBump || !sawDynamic {
		t.Errorf("caller sites: helper=%v bump=%v dynamic=%v, want all true", sawHelper, sawBump, sawDynamic)
	}

	withLit := nodeByName("cg.withLit")
	if len(withLit.Calls) != 1 || !withLit.Calls[0].Dynamic {
		t.Errorf("withLit: got %+v, want exactly one dynamic site (helper belongs to the literal)", withLit.Calls)
	}

	if cg.Node(nil) != nil {
		t.Error("Node(nil): want nil")
	}
}
