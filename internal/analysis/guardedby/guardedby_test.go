package guardedby_test

import (
	"testing"

	"act/internal/analysis/analysistest"
	"act/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", guardedby.Analyzer)
}
