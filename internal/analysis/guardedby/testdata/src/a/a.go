// Package a is the guardedby golden package.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	ok int
}

// Inc locks the guard before touching n: no diagnostic.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads n without the lock.
func (c *counter) Peek() int {
	return c.n // want `c\.n is guarded by c\.mu, but Peek neither locks it`
}

// PeekLocked declares the caller holds the guard: no diagnostic.
//
//act:locked mu
func (c *counter) PeekLocked() int {
	return c.n
}

// WrongDecl declares a different guard; the access still reports.
//
//act:locked other
func (c *counter) WrongDecl() int {
	return c.n // want `c\.n is guarded by c\.mu`
}

// Free accesses the unguarded field without locking: no diagnostic.
func (c *counter) Free() int {
	return c.ok
}

// Closure inherits the lock context of the enclosing function.
func (c *counter) Closure() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	get := func() int { return c.n }
	return get
}

// ClosureUnlocked: the literal's own body never locks and neither does
// the enclosing function.
func (c *counter) ClosureUnlocked() func() int {
	return func() int {
		return c.n // want `c\.n is guarded by c\.mu`
	}
}

type rw struct {
	mu   sync.RWMutex
	data map[string]int // guarded by mu
}

// Get uses the read lock, which also sanctions the access.
func (r *rw) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[k]
}

// Len forgets the lock.
func (r *rw) Len() int {
	return len(r.data) // want `r\.data is guarded by r\.mu`
}

type badGuard struct {
	flag bool
	v    int // guarded by flag // want `guard "flag" is not a sibling mutex field`
}

// gate mirrors the obs.Health shape: a lifecycle struct whose hook list
// and draining flag share one mutex.
type gate struct {
	mu       sync.Mutex
	hooks    []func() // guarded by mu
	draining bool     // guarded by mu
}

// Shutdown snapshots the hooks under the lock before running them: no
// diagnostic on the guarded reads.
func (g *gate) Shutdown() {
	g.mu.Lock()
	g.draining = true
	hooks := make([]func(), len(g.hooks))
	copy(hooks, g.hooks)
	g.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// isDraining forgets the lock on the flag read.
func (g *gate) isDraining() bool {
	return g.draining // want `g\.draining is guarded by g\.mu`
}

// addHook forgets the lock on the slice append (read and write).
func (g *gate) addHook(fn func()) {
	g.hooks = append(g.hooks, fn) // want `g\.hooks is guarded by g\.mu` `g\.hooks is guarded by g\.mu`
}

// TryInc guards the access with a conditional TryLock and a deferred
// unlock: sanctioned like a plain Lock.
func (c *counter) TryInc() {
	if c.mu.TryLock() {
		defer c.mu.Unlock()
		c.n++
	}
}

// TryLen does the same with the read variant.
func (r *rw) TryLen() int {
	if r.mu.TryRLock() {
		defer r.mu.RUnlock()
		return len(r.data)
	}
	return 0
}

// inner/outer mirror the shape that produced the alias false positive:
// the guarded struct lives one selector deep and methods take a
// pointer shorthand before a run of accesses.
type inner struct {
	mu   sync.Mutex
	data int // guarded by mu
}

type outer struct {
	in inner
}

// AliasLocked locks and accesses through the alias: no diagnostic.
func (o *outer) AliasLocked() {
	c := &o.in
	c.mu.Lock()
	c.data++
	c.mu.Unlock()
}

// AliasMixed locks the full path but accesses through the alias: both
// normalize to the same base, no diagnostic.
func (o *outer) AliasMixed() {
	c := &o.in
	o.in.mu.Lock()
	c.data++
	o.in.mu.Unlock()
}

// AliasUnlocked still reports, with the path spelled out.
func (o *outer) AliasUnlocked() int {
	c := &o.in
	return c.data // want `o\.in\.data is guarded by o\.in\.mu`
}
