// Package guardedby implements the actlint pass that enforces the
// "// guarded by <mu>" discipline on struct fields. The WeightBinary
// race fixed in an earlier PR is the motivating shape: a field the
// documentation says is mutex-protected, silently read on a new code
// path without the lock. -race catches that only on an execution that
// actually races; this pass catches the access pattern itself.
//
// A field is annotated with a trailing comment naming a sibling mutex
// field:
//
//	type Agent struct {
//		mu    sync.Mutex
//		queue []*wire.Batch // guarded by mu
//	}
//
// Every selector access x.queue must then occur in a function that
// either locks the same receiver's guard (a call to x.mu.Lock or
// x.mu.RLock appears in the function or in an enclosing function
// literal chain) or is annotated //act:locked mu, declaring that its
// callers hold the guard — the convention for the *Locked helper
// methods. The check is deliberately flow-insensitive: it proves the
// lock is acquired somewhere in the function, not that it is held at
// the access. That is the same cheap contract Clang's GUARDED_BY
// provides without a full lockset analysis, and it is exactly the
// level at which the PR-3 race would have been flagged.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"act/internal/analysis"
)

// Analyzer is the guardedby pass.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "reports accesses to '// guarded by mu' fields outside the guarding lock",
	Run:  run,
}

var guardRx = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardedField records one annotated field and its guard's name.
type guardedField struct {
	structType *types.Named
	guard      string
}

func run(pass *analysis.Pass) error {
	guarded := collect(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collect finds annotated fields, validating that the named guard is a
// sibling field of a mutex-like type.
func collect(pass *analysis.Pass) map[*types.Var]guardedField {
	out := make(map[*types.Var]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			def, ok := pass.Info.Defs[ts.Name]
			if !ok {
				return true
			}
			named, ok := def.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				if !hasMutexField(st, guard) {
					pass.Reportf(field.Pos(), "guard %q is not a sibling mutex field of %s", guard, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[v] = guardedField{structType: named, guard: guard}
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the guard name from a field's doc or
// trailing comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRx.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// hasMutexField reports whether the struct literally declares a field
// with the guard's name whose type name contains "Mutex" or "Locker".
func hasMutexField(st *ast.StructType, guard string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name == guard {
				s := analysis.ExprString(field.Type)
				return regexp.MustCompile(`Mutex|Locker`).MatchString(s)
			}
		}
	}
	return false
}

// funcContext is the lock knowledge of one function body (FuncDecl or
// FuncLit): the set of "<base>.<guard>" paths it locks, plus any
// //act:locked declaration on the declaration it belongs to.
type funcContext struct {
	locked map[string]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[*types.Var]guardedField) {
	recv := receiverName(fd)
	declared, hasDecl := analysis.DirectiveArg(fd.Doc, "act:locked")
	aliases := collectAliases(fd.Body)

	// Context stack: the FuncDecl's body, plus one entry per enclosing
	// FuncLit while walking. An access is sanctioned if any enclosing
	// body locks (or declares held) the right guard path.
	var stack []*funcContext
	push := func(body ast.Node) {
		ctx := &funcContext{locked: map[string]bool{}}
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if path, ok := lockPath(call); ok {
					ctx.locked[resolveAlias(path, aliases)] = true
				}
			}
			return true
		})
		stack = append(stack, ctx)
	}
	push(fd.Body)

	sanctioned := func(base, guard string) bool {
		want := base + "." + guard
		for _, ctx := range stack {
			if ctx.locked[want] {
				return true
			}
		}
		// //act:locked declares the receiver's guard held on entry.
		return hasDecl && declared == guard && base == recv
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			push(n.Body)
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			gf, ok := guarded[v]
			if !ok {
				return true
			}
			base := resolveAlias(analysis.ExprString(n.X), aliases)
			if !sanctioned(base, gf.guard) {
				pass.Reportf(n.Pos(), "%s.%s is guarded by %s.%s, but %s neither locks it nor declares //act:locked %s",
					base, v.Name(), base, gf.guard, fd.Name.Name, gf.guard)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// receiverName returns the receiver identifier of a method ("" for
// functions and anonymous receivers).
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// lockPath recognizes x.mu.Lock() / RLock() / TryLock() / TryRLock()
// calls, returning the "x.mu" path. The Try variants are accepted on
// the same flow-insensitive terms as Lock: the idiomatic shape guards
// the access with the conditional and a deferred Unlock. Unlock is
// deliberately not accepted: a function that only unlocks does not
// hold the guard.
func lockPath(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return analysis.ExprString(sel.X), true
	}
	return "", false
}

// collectAliases maps local names introduced by `c := &s.inner` (the
// pointer shorthand methods take before a run of accesses) to the
// aliased selector path. The map lets lock paths and access bases
// written through the alias normalize to the same spelling as paths
// written out in full.
func collectAliases(body ast.Node) map[string]string {
	out := make(map[string]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = ast.Unparen(u.X)
			}
			switch rhs.(type) {
			case *ast.SelectorExpr, *ast.Ident:
				if path := analysis.ExprString(rhs); path != "" && path != id.Name {
					out[id.Name] = path
				}
			}
		}
		return true
	})
	return out
}

// resolveAlias rewrites the leading segment of a dotted path through
// the alias map to a fixpoint, bounded so accidental alias cycles
// cannot loop.
func resolveAlias(path string, aliases map[string]string) string {
	for range 8 {
		head, rest, _ := strings.Cut(path, ".")
		target, ok := aliases[head]
		if !ok {
			return path
		}
		if rest == "" {
			path = target
		} else {
			path = target + "." + rest
		}
	}
	return path
}
