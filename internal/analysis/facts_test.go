package analysis

import (
	"bytes"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

func sampleFacts() *Facts {
	f := NewFacts()
	f.ExhaustiveEnums["act/internal/wire.FrameKind"] = true
	f.ExhaustiveEnums["act/internal/core.Verdict"] = true
	f.PublishFunc(&FuncFact{
		Name:      "act/internal/core.classify",
		AllocFree: true,
		Acquires:  []string{"core.Monitor.mu"},
		LockEdges: []LockEdge{
			{From: "core.Monitor.mu", To: "core.ring.mu", At: "monitor.go:41"},
		},
	})
	f.PublishFunc(&FuncFact{
		Name:     "act/internal/fleet.(*Collector).Run",
		AllocWhy: "make allocates",
	})
	return f
}

func TestFactsRoundTrip(t *testing.T) {
	f := sampleFacts()
	data, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeFacts(data)
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	if !reflect.DeepEqual(got.ExhaustiveEnums, f.ExhaustiveEnums) {
		t.Errorf("enums: got %v, want %v", got.ExhaustiveEnums, f.ExhaustiveEnums)
	}
	if len(got.Funcs) != len(f.Funcs) {
		t.Fatalf("funcs: got %d entries, want %d", len(got.Funcs), len(f.Funcs))
	}
	for name, want := range f.Funcs {
		if !reflect.DeepEqual(got.Funcs[name], want) {
			t.Errorf("fact %s: got %+v, want %+v", name, got.Funcs[name], want)
		}
	}
}

// TestFactsEncodeDeterministic pins the property an external cache
// depends on: equal sets encode to identical bytes regardless of the
// order facts were published or how slices were ordered.
func TestFactsEncodeDeterministic(t *testing.T) {
	a := sampleFacts()

	b := NewFacts()
	b.PublishFunc(&FuncFact{Name: "act/internal/fleet.(*Collector).Run", AllocWhy: "make allocates"})
	b.PublishFunc(&FuncFact{
		Name:      "act/internal/core.classify",
		AllocFree: true,
		Acquires:  []string{"core.Monitor.mu"},
		LockEdges: []LockEdge{
			{From: "core.Monitor.mu", To: "core.ring.mu", At: "monitor.go:41"},
		},
	})
	b.ExhaustiveEnums["act/internal/core.Verdict"] = true
	b.ExhaustiveEnums["act/internal/wire.FrameKind"] = true

	ea, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode a: %v", err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode b: %v", err)
	}
	if !bytes.Equal(ea, eb) {
		t.Errorf("publication order changed the encoding:\n%s\nvs\n%s", ea, eb)
	}
}

func TestDecodeFactsRejectsBadInput(t *testing.T) {
	if _, err := DecodeFacts([]byte("not json")); err == nil {
		t.Error("malformed JSON: want error")
	}
	if _, err := DecodeFacts([]byte(`{"version": 99}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("wrong version: want version error, got %v", err)
	}
	if _, err := DecodeFacts([]byte(`{"version": 1, "funcs": [{"name": ""}]}`)); err == nil {
		t.Error("empty fact name: want error")
	}
}

func TestFactsMerge(t *testing.T) {
	base := NewFacts()
	base.ExhaustiveEnums["p.A"] = true
	base.PublishFunc(&FuncFact{Name: "p.f", AllocFree: true})
	base.PublishFunc(&FuncFact{Name: "p.g"})

	other := NewFacts()
	other.ExhaustiveEnums["q.B"] = true
	other.PublishFunc(&FuncFact{Name: "p.g", AllocFree: true}) // conflict: other wins
	other.PublishFunc(&FuncFact{Name: "q.h"})

	base.Merge(other)
	if !base.ExhaustiveEnums["p.A"] || !base.ExhaustiveEnums["q.B"] {
		t.Errorf("merged enums incomplete: %v", base.ExhaustiveEnums)
	}
	if got := base.Func("p.g"); got == nil || !got.AllocFree {
		t.Errorf("conflict resolution: got %+v, want other's AllocFree=true", got)
	}
	if base.Func("p.f") == nil || base.Func("q.h") == nil {
		t.Error("merge dropped a non-conflicting fact")
	}
}

func TestDedupSort(t *testing.T) {
	at := func(file string, line, col int) token.Position {
		return token.Position{Filename: file, Line: line, Column: col}
	}
	in := []Diagnostic{
		{Analyzer: "noalloc", Pos: at("b.go", 10, 2), Message: "m1"},
		{Analyzer: "lockorder", Pos: at("a.go", 5, 1), Message: "m2"},
		// Same position and message from two passes: one survives,
		// first analyzer name in sort order wins.
		{Analyzer: "zpass", Pos: at("a.go", 5, 1), Message: "m2"},
		{Analyzer: "noalloc", Pos: at("a.go", 5, 1), Message: "different message stays"},
		{Analyzer: "noalloc", Pos: at("a.go", 2, 9), Message: "m3"},
	}
	out := dedupSort(in)
	if len(out) != 4 {
		t.Fatalf("got %d diagnostics, want 4: %v", len(out), out)
	}
	wantOrder := []string{"m3", "different message stays", "m2", "m1"}
	for i, want := range wantOrder {
		if out[i].Message != want {
			t.Errorf("position %d: got %q, want %q", i, out[i].Message, want)
		}
	}
	for _, d := range out {
		if d.Message == "m2" && d.Analyzer != "lockorder" {
			t.Errorf("dedup kept analyzer %q, want first-sorted \"lockorder\"", d.Analyzer)
		}
	}
}
