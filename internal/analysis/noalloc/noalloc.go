// Package noalloc implements the actlint pass that turns the monitor's
// zero-allocation guarantee into a compile-time property. Functions
// annotated //act:noalloc — the OnDep classification path, the ring
// IGB and extractor windows, sequence encoding and hashing, the
// quantized kernel — must not contain heap-allocating constructs, and
// (since the interprocedural upgrade) must not call anything that is
// not itself provably alloc-free. The dynamic side of the contract
// (TestOnDepSteadyStateAllocs, BenchmarkClassifySteadyState) proves the
// composed path allocates nothing at run time; this pass pins it
// statically, on every change, without needing the right benchmark to
// run.
//
// Flagged constructs (intraprocedural, unchanged from PR 4):
//
//   - make, new, and append calls (append may grow its backing array)
//   - slice, map, and pointer-to-composite literals
//   - function literals (closures capture their environment on the heap)
//   - method values (they allocate a bound-method closure)
//   - go statements
//   - string concatenation and string<->[]byte/[]rune conversions
//   - boxing a non-pointer value into an interface, either by explicit
//     conversion or by passing it to an interface-typed parameter
//
// Interprocedural rule: every call inside an //act:noalloc function
// must target a function proven alloc-free. The proof walks the
// program call graph: a function is alloc-free when its body has no
// flagged construct (waived lines excluded) and every call it makes is
// alloc-free in turn. Each verdict is published as an AllocFree fact,
// so the result is visible across package boundaries — an annotated
// function in internal/core calling a helper in internal/deps is
// checked against the helper's real body, not trusted. Diagnostics for
// transitive failures print the offending call chain down to the
// allocating construct.
//
// What cannot be proven is reported, not guessed:
//
//   - dynamic calls (func values, func-typed fields, interface
//     methods) have no static callee;
//   - calls outside the loaded program (standard library) have no
//     syntax to inspect. A small allowlist covers the alloc-free
//     packages the hot path leans on (math, math/bits, sync/atomic,
//     and sync's mutex lock/unlock methods); everything else needs a
//     waiver.
//
// Waivers, visible in review next to the code they excuse:
//
//	//act:alloc-ok <reason>       waives construct findings on the line
//	                              (the guarded grow-once idiom)
//	//act:alloc-ok-call <reason>  waives call findings on the line —
//	                              the declared cold path (debug-buffer
//	                              inserts, recovery) or a dynamic call
//	                              whose every target is annotated
//
// Both waivers also apply inside helpers reached transitively: a
// helper with a waived grow line still counts as alloc-free, exactly
// matching the trust the dynamic allocation tests extend.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"act/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reports heap-allocating constructs and calls to unproven functions inside //act:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ck := pass.Prog.Scratch("noalloc", func() any { return newChecker(pass.Prog, pass.Facts) }).(*checker)
	for _, f := range pass.Files {
		waived, waivedCalls := waivedLines(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, "act:noalloc") {
				continue
			}
			checkAnnotated(pass, ck, fd, waived, waivedCalls)
		}
	}
	return nil
}

// waivedLines collects the lines excused by //act:alloc-ok (construct
// findings) and //act:alloc-ok-call (call findings) comments: each
// waiver covers its own line and the one after it, so it can sit at
// the end of the offending line or on its own line directly above.
func waivedLines(fset *token.FileSet, f *ast.File) (constructs, calls map[int]bool) {
	constructs = make(map[int]bool)
	calls = make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			line := fset.Position(c.Pos()).Line
			switch {
			case strings.HasPrefix(text, "act:alloc-ok-call"):
				calls[line] = true
				calls[line+1] = true
			case strings.HasPrefix(text, "act:alloc-ok"):
				// The broad waiver covers the whole line: its
				// allocating constructs and its calls. alloc-ok-call
				// stays narrow so construct checks survive on lines
				// that only need the call excused.
				constructs[line] = true
				constructs[line+1] = true
				calls[line] = true
				calls[line+1] = true
			}
		}
	}
	return constructs, calls
}

// checkAnnotated reports every violation inside one //act:noalloc
// function: allocating constructs, and calls that are not provably
// alloc-free.
func checkAnnotated(pass *analysis.Pass, ck *checker, fd *ast.FuncDecl, waived, waivedCalls map[int]bool) {
	scanConstructs(pass.Info, pass.Pkg, fd.Body, func(pos token.Pos, format string, args ...interface{}) {
		if waived[pass.Fset.Position(pos).Line] {
			return
		}
		args = append(args, fd.Name.Name)
		pass.Reportf(pos, format+" in //act:noalloc function %s", args...)
	})

	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	node := pass.Prog.CallGraph().Node(fn)
	if node == nil {
		return
	}
	for _, site := range node.Calls {
		if waivedCalls[pass.Fset.Position(site.Pos).Line] {
			continue
		}
		switch {
		case site.Dynamic:
			pass.Reportf(site.Pos, "cannot prove alloc-free: %s in //act:noalloc function %s (waive with //act:alloc-ok-call)",
				site.Desc, fd.Name.Name)
		default:
			res := ck.allocFree(site.Callee)
			if !res.free {
				pass.Reportf(site.Pos, "call to %s is not alloc-free in //act:noalloc function %s: %s",
					displayName(site.Callee, pass.Pkg), fd.Name.Name, ck.chain(site.Callee, pass.Pkg))
			}
		}
	}
}

// checker computes and memoizes the AllocFree fact for every function
// the annotated set reaches, whole-program, publishing each verdict.
type checker struct {
	prog  *analysis.Program
	facts *analysis.Facts
	memo  map[*types.Func]*result
	// active marks functions currently on the evaluation stack:
	// recursive calls assume the in-progress function is alloc-free,
	// which is sound for the final verdict of the evaluation root —
	// any real obstacle in the cycle is still found by the traversal —
	// but results that leaned on the assumption are not memoized (see
	// tainted).
	active map[*types.Func]bool
}

// result is one function's verdict with the witness for rendering the
// offending chain: either a leaf reason at pos, or a call edge via the
// callee that fails.
type result struct {
	free   bool
	pos    token.Pos
	reason string      // leaf obstacle ("make allocates"); "" when free or via != nil
	via    *types.Func // failing callee when the obstacle is a call
	desc   string      // dynamic-call description when via == nil and reason == ""
}

func newChecker(prog *analysis.Program, facts *analysis.Facts) *checker {
	return &checker{
		prog:   prog,
		facts:  facts,
		memo:   make(map[*types.Func]*result),
		active: make(map[*types.Func]bool),
	}
}

// allowPkgs are standard-library packages every exported function of
// which is allocation-free.
var allowPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// allowedExternal reports whether a call outside the loaded program is
// known alloc-free.
func allowedExternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if allowPkgs[pkg.Path()] {
		return true
	}
	if pkg.Path() == "sync" {
		switch fn.Name() {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			return true
		}
	}
	// Clock reads return values and touch no heap; the obs hot-path
	// instrumentation depends on them.
	if pkg.Path() == "time" {
		switch fn.Name() {
		case "Now", "Since", "Sub", "Unix", "UnixNano":
			return true
		}
	}
	return false
}

// allocFree computes fn's verdict, memoized.
func (ck *checker) allocFree(fn *types.Func) *result {
	res, _ := ck.eval(fn)
	return res
}

// eval returns fn's verdict and whether it leaned on an optimistic
// in-progress assumption (in which case a free verdict is not cached).
func (ck *checker) eval(fn *types.Func) (*result, bool) {
	if res, ok := ck.memo[fn]; ok {
		return res, false
	}
	if ck.active[fn] {
		return &result{free: true}, true // optimistic: cycles alone don't allocate
	}

	node := ck.prog.CallGraph().Node(fn)
	if node == nil {
		if allowedExternal(fn) {
			res := &result{free: true}
			ck.memo[fn] = res
			return res, false
		}
		res := &result{free: false, pos: fn.Pos(), reason: "outside the analyzed program, not allowlisted"}
		ck.memo[fn] = res
		return res, false
	}

	ck.active[fn] = true
	defer delete(ck.active, fn)

	res, tainted := ck.evalBody(node)
	if !res.free || !tainted {
		ck.memo[fn] = res
		ck.publish(fn, res, node)
	}
	return res, tainted
}

func (ck *checker) evalBody(node *analysis.FuncNode) (*result, bool) {
	fset := ck.prog.Fset
	waived, waivedCalls := waivedLines(fset, fileOf(node.Pkg, node.Decl))

	// Constructs first: a concrete obstacle beats chasing calls.
	var obstacle *result
	scanConstructs(node.Pkg.Info, node.Pkg.Types, node.Decl.Body, func(pos token.Pos, format string, args ...interface{}) {
		if obstacle != nil || waived[fset.Position(pos).Line] {
			return
		}
		obstacle = &result{free: false, pos: pos, reason: fmt.Sprintf(format, args...)}
	})
	if obstacle != nil {
		return obstacle, false
	}

	tainted := false
	for _, site := range node.Calls {
		if waivedCalls[fset.Position(site.Pos).Line] {
			continue
		}
		if site.Dynamic {
			return &result{free: false, pos: site.Pos, desc: site.Desc}, false
		}
		sub, subTainted := ck.eval(site.Callee)
		tainted = tainted || subTainted
		if !sub.free {
			return &result{free: false, pos: site.Pos, via: site.Callee}, tainted
		}
	}
	return &result{free: true}, tainted
}

// publish exports the verdict as a cross-package fact.
func (ck *checker) publish(fn *types.Func, res *result, node *analysis.FuncNode) {
	fact := &analysis.FuncFact{Name: analysis.FuncName(fn), AllocFree: res.free}
	if !res.free {
		fact.AllocWhy = ck.chain(fn, node.Pkg.Types)
	}
	if prev := ck.facts.Func(fact.Name); prev != nil {
		// Another pass may already have published lock facts; merge.
		prev.AllocFree = fact.AllocFree
		prev.AllocWhy = fact.AllocWhy
		return
	}
	ck.facts.PublishFunc(fact)
}

// chain renders the offending call chain from fn down to the concrete
// obstacle: "logDebug → growBuf: make allocates (core.go:712)".
func (ck *checker) chain(fn *types.Func, from *types.Package) string {
	var hops []string
	seen := make(map[*types.Func]bool)
	for {
		if seen[fn] {
			hops = append(hops, "...")
			break
		}
		seen[fn] = true
		res := ck.memo[fn]
		if res == nil {
			hops = append(hops, "unproven")
			break
		}
		switch {
		case res.via != nil:
			hops = append(hops, displayName(res.via, from))
			fn = res.via
			continue
		case res.reason != "":
			hops = append(hops, fmt.Sprintf("%s (%s)", res.reason, shortPos(ck.prog.Fset, res.pos)))
		default:
			hops = append(hops, fmt.Sprintf("cannot prove alloc-free: %s (%s)", res.desc, shortPos(ck.prog.Fset, res.pos)))
		}
		break
	}
	return strings.Join(hops, " → ")
}

// displayName renders fn compactly relative to the reporting package:
// "helper", "(*Network).Flatten", or "nn.(*Network).Flatten".
func displayName(fn *types.Func, from *types.Package) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if n, ok := t.(*types.Named); ok {
			name = "(" + ptr + n.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != from {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	if !p.IsValid() {
		return "external"
	}
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// fileOf finds the *ast.File containing decl (for its comment map).
func fileOf(pkg *analysis.Package, decl *ast.FuncDecl) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= decl.Pos() && decl.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}

// scanConstructs walks body reporting each heap-allocating construct.
// It is shared by the per-annotated-function reporting and the
// interprocedural fact computation.
func scanConstructs(info *types.Info, pkg *types.Package, body ast.Node, report func(token.Pos, string, ...interface{})) {
	// Selector expressions in call position are method calls, not
	// method values; collect them first so the walk below can tell the
	// two apart.
	calledFuns := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calledFuns[call.Fun] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates")
			return false // its body is the closure's problem, not this function's line set
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n.X)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			if !calledFuns[n] {
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					report(n.Pos(), "method value %s allocates a closure", n.Sel.Name)
				}
			}
		case *ast.CallExpr:
			checkCall(info, pkg, report, n)
		}
		return true
	})
}

func checkCall(info *types.Info, pkg *types.Package, report func(token.Pos, string, ...interface{}), call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	// Explicit conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		if boxes(from, to) {
			report(call.Pos(), "conversion to interface %s boxes its operand", types.TypeString(to, types.RelativeTo(pkg)))
		}
		if stringConv(from, to) {
			report(call.Pos(), "string conversion copies its operand")
		}
		return
	}

	// Implicit interface boxing at call arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(info.TypeOf(arg), pt) {
			report(arg.Pos(), "argument boxed into interface %s allocates", types.TypeString(pt, types.RelativeTo(pkg)))
		}
	}
}

// boxes reports whether assigning a value of type from to type to heap-
// boxes it: a concrete non-pointer value stored in an interface. (A
// pointer, channel, map, func or unsafe pointer fits the interface's
// data word directly; nil has no representation to box.)
func boxes(from, to types.Type) bool {
	if from == nil || to == nil || !types.IsInterface(to) || types.IsInterface(from) {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := from.Underlying().(*types.Basic)
		if b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// stringConv reports string<->[]byte/[]rune conversions, which copy.
func stringConv(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
