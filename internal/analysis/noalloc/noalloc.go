// Package noalloc implements the actlint pass that turns the monitor's
// zero-allocation guarantee into a compile-time property. Functions
// annotated //act:noalloc — the OnDep classification path, the ring
// IGB and extractor windows, sequence encoding and hashing — must not
// contain heap-allocating constructs. The dynamic side of the contract
// (TestOnDepSteadyStateAllocs, BenchmarkClassifySteadyState) proves the
// composed path allocates nothing at run time; this pass pins each
// annotated function so a regression is flagged at lint time, on every
// change, without needing the right benchmark to run.
//
// Flagged constructs:
//
//   - make, new, and append calls (append may grow its backing array)
//   - slice, map, and pointer-to-composite literals
//   - function literals (closures capture their environment on the heap)
//   - method values (they allocate a bound-method closure)
//   - go statements
//   - string concatenation and string<->[]byte/[]rune conversions
//   - boxing a non-pointer value into an interface, either by explicit
//     conversion or by passing it to an interface-typed parameter
//
// The check is intraprocedural: calls to unannotated functions are
// trusted (the dynamic tests cover composition). A deliberate guarded
// grow-once line — "if cap too small: make" — is waived with an
// //act:alloc-ok comment on or directly above the line, keeping the
// waiver visible in review next to the code it excuses.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"act/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "reports heap-allocating constructs inside //act:noalloc functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		waived := waivedLines(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, "act:noalloc") {
				continue
			}
			check(pass, fd, waived)
		}
	}
	return nil
}

// waivedLines collects the lines excused by //act:alloc-ok comments: the
// comment's own line and the one after it (so the waiver can sit at the
// end of the offending line or on its own line directly above).
func waivedLines(pass *analysis.Pass, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "act:alloc-ok") {
				line := pass.Fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

func check(pass *analysis.Pass, fd *ast.FuncDecl, waived map[int]bool) {
	report := func(pos token.Pos, format string, args ...interface{}) {
		if waived[pass.Fset.Position(pos).Line] {
			return
		}
		args = append(args, fd.Name.Name)
		pass.Reportf(pos, format+" in //act:noalloc function %s", args...)
	}

	// Selector expressions in call position are method calls, not
	// method values; collect them first so the walk below can tell the
	// two apart.
	calledFuns := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calledFuns[call.Fun] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates")
			return false // its body is the closure's problem, not this function's line set
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.Info.TypeOf(n.X)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			if !calledFuns[n] {
				if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					report(n.Pos(), "method value %s allocates a closure", n.Sel.Name)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, report, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, report func(token.Pos, string, ...interface{}), call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	// Explicit conversions: T(x).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type
		from := pass.Info.TypeOf(call.Args[0])
		if boxes(from, to) {
			report(call.Pos(), "conversion to interface %s boxes its operand", types.TypeString(to, types.RelativeTo(pass.Pkg)))
		}
		if stringConv(from, to) {
			report(call.Pos(), "string conversion copies its operand")
		}
		return
	}

	// Implicit interface boxing at call arguments.
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass.Info.TypeOf(arg), pt) {
			report(arg.Pos(), "argument boxed into interface %s allocates", types.TypeString(pt, types.RelativeTo(pass.Pkg)))
		}
	}
}

// boxes reports whether assigning a value of type from to type to heap-
// boxes it: a concrete non-pointer value stored in an interface. (A
// pointer, channel, map, func or unsafe pointer fits the interface's
// data word directly; nil has no representation to box.)
func boxes(from, to types.Type) bool {
	if from == nil || to == nil || !types.IsInterface(to) || types.IsInterface(from) {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := from.Underlying().(*types.Basic)
		if b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// stringConv reports string<->[]byte/[]rune conversions, which copy.
func stringConv(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
