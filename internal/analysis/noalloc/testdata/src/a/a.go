// Package a is the noalloc golden package: positive cases (flagged
// constructs inside //act:noalloc functions) and negative cases (the
// same constructs unannotated, and allocation-free bodies annotated).
package a

import "fmt"

type ring struct {
	buf  []uint64
	head int
}

//act:noalloc
func bad(r *ring, xs []int) {
	s := make([]int, 4)        // want `make allocates`
	p := new(ring)             // want `new allocates`
	xs = append(xs, 1)         // want `append may grow its backing array`
	m := map[int]int{}         // want `map literal allocates`
	t := []byte{1, 2}          // want `slice literal allocates`
	q := &ring{}               // want `address of composite literal allocates`
	go bad(r, xs)              // want `go statement allocates a goroutine`
	f := func() {}             // want `function literal allocates`
	_, _, _, _, _, _, _ = s, p, m, t, q, f, xs
}

//act:noalloc
func badStrings(s string, b []byte) string {
	x := s + "suffix" // want `string concatenation allocates`
	y := string(b)    // want `string conversion copies its operand`
	z := []byte(s)    // want `string conversion copies its operand`
	_ = z
	_ = y
	return x
}

//act:noalloc
func badBoxing(n int, r *ring) {
	i := (interface{})(n) // want `conversion to interface interface\{\} boxes its operand`
	fmt.Println(n)        // want `argument boxed into interface`
	sink(r.head)          // want `argument boxed into interface`
	_ = i
}

//act:noalloc
func badMethodValue(r *ring) func() int {
	return r.len // want `method value len allocates a closure`
}

func (r *ring) len() int { return len(r.buf) }

func sink(v interface{}) { _ = v }

//act:noalloc
func good(r *ring, x uint64) uint64 {
	r.buf[r.head] = x
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	var acc uint64
	for _, v := range r.buf {
		acc ^= v
	}
	return acc
}

//act:noalloc
func goodPointerBox(r *ring) {
	sink(r) // pointers fit the interface word: no box, no diagnostic
	sink(nil)
}

//act:noalloc
func goodVariadicPassthrough(args []interface{}) {
	fmt.Println(args...) // slice passed through, no per-arg boxing
}

//act:noalloc
func goodWaived(r *ring, n int) {
	if cap(r.buf) < n {
		r.buf = make([]uint64, n) //act:alloc-ok grow-once on resize
	}
	//act:alloc-ok guarded lazy init
	r.buf = append(r.buf[:0], 0)
}

// goodIntConversions mirrors the quantized kernel's inner loop:
// numeric conversions between integer widths are pure register moves,
// so none of them may draw a diagnostic even in a hot loop — only
// string([]byte) / []byte(string) conversions copy.
//
//act:noalloc
func goodIntConversions(accs []int32, outs []int16) int64 {
	var total int64
	for i, a := range accs {
		w := int64(a)*3 + int64(int32(i))
		idx := int32(w >> 4)
		if idx < 0 {
			idx = 0
		}
		outs[i] = int16(idx)
		total += int64(uint16(outs[i]))
	}
	return total
}

// unannotated allocates freely without diagnostics.
func unannotated() []int {
	s := make([]int, 8)
	return append(s, 1)
}
