// Package a is the noalloc golden package: positive cases (flagged
// constructs inside //act:noalloc functions) and negative cases (the
// same constructs unannotated, and allocation-free bodies annotated).
package a

import "fmt"

type ring struct {
	buf  []uint64
	head int
}

//act:noalloc
func bad(r *ring, xs []int) {
	s := make([]int, 4) // want `make allocates`
	p := new(ring)      // want `new allocates`
	xs = append(xs, 1)  // want `append may grow its backing array`
	m := map[int]int{}  // want `map literal allocates`
	t := []byte{1, 2}   // want `slice literal allocates`
	q := &ring{}        // want `address of composite literal allocates`
	go bad(r, xs)       // want `go statement allocates a goroutine` `call to bad is not alloc-free`
	f := func() {}      // want `function literal allocates`
	_, _, _, _, _, _, _ = s, p, m, t, q, f, xs
}

//act:noalloc
func badStrings(s string, b []byte) string {
	x := s + "suffix" // want `string concatenation allocates`
	y := string(b)    // want `string conversion copies its operand`
	z := []byte(s)    // want `string conversion copies its operand`
	_ = z
	_ = y
	return x
}

//act:noalloc
func badBoxing(n int, r *ring) {
	i := (interface{})(n) // want `conversion to interface interface\{\} boxes its operand`
	fmt.Println(n)        // want `argument boxed into interface` `call to fmt\.Println is not alloc-free`
	sink(r.head)          // want `argument boxed into interface`
	_ = i
}

//act:noalloc
func badMethodValue(r *ring) func() int {
	return r.len // want `method value len allocates a closure`
}

func (r *ring) len() int { return len(r.buf) }

func sink(v interface{}) { _ = v }

//act:noalloc
func good(r *ring, x uint64) uint64 {
	r.buf[r.head] = x
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	var acc uint64
	for _, v := range r.buf {
		acc ^= v
	}
	return acc
}

//act:noalloc
func goodPointerBox(r *ring) {
	sink(r) // pointers fit the interface word: no box, no diagnostic
	sink(nil)
}

//act:noalloc
func goodVariadicPassthrough(args []interface{}) {
	// The slice passes through with no per-arg boxing; the call itself
	// is external and needs the call waiver.
	fmt.Println(args...) //act:alloc-ok-call stdout logging is off the hot path
}

//act:noalloc
func goodWaived(r *ring, n int) {
	if cap(r.buf) < n {
		r.buf = make([]uint64, n) //act:alloc-ok grow-once on resize
	}
	//act:alloc-ok guarded lazy init
	r.buf = append(r.buf[:0], 0)
}

// goodIntConversions mirrors the quantized kernel's inner loop:
// numeric conversions between integer widths are pure register moves,
// so none of them may draw a diagnostic even in a hot loop — only
// string([]byte) / []byte(string) conversions copy.
//
//act:noalloc
func goodIntConversions(accs []int32, outs []int16) int64 {
	var total int64
	for i, a := range accs {
		w := int64(a)*3 + int64(int32(i))
		idx := int32(w >> 4)
		if idx < 0 {
			idx = 0
		}
		outs[i] = int16(idx)
		total += int64(uint16(outs[i]))
	}
	return total
}

// unannotated allocates freely without diagnostics.
func unannotated() []int {
	s := make([]int, 8)
	return append(s, 1)
}

// ---- interprocedural cases ----

// growBuf is unannotated but reached from annotated callers: its make
// is the leaf obstacle the chain diagnostics point at.
func growBuf(n int) []int {
	return make([]int, n)
}

// fill is a clean helper: loops and arithmetic only.
func fill(dst []int, v int) {
	for i := range dst {
		dst[i] = v
	}
}

// viaHelper calls an allocating helper directly.
//
//act:noalloc
func viaHelper(n int) []int {
	return growBuf(n) // want `call to growBuf is not alloc-free in //act:noalloc function viaHelper: make allocates`
}

// chained reaches the allocation two hops down.
func middle(n int) []int { return growBuf(n) }

//act:noalloc
func chained(n int) []int {
	return middle(n) // want `call to middle is not alloc-free in //act:noalloc function chained: growBuf → make allocates`
}

// cleanCalls proves through alloc-free helpers: no diagnostic.
//
//act:noalloc
func cleanCalls(dst []int) {
	fill(dst, 7)
	fill(dst, 9)
}

// waivedCall declares the helper call a cold path.
//
//act:noalloc
func waivedCall(n int) []int {
	return growBuf(n) //act:alloc-ok-call declared cold path
}

// selfRecursive proves through its own recursion without looping the
// checker.
//
//act:noalloc
func selfRecursive(n int) int {
	if n <= 0 {
		return 0
	}
	return selfRecursive(n-1) + 1
}

// mutualA and mutualB recurse through each other; still alloc-free.
//
//act:noalloc
func mutualA(n int) int {
	if n <= 0 {
		return 0
	}
	return mutualB(n - 1)
}

//act:noalloc
func mutualB(n int) int {
	if n <= 0 {
		return 1
	}
	return mutualA(n - 1)
}

// recursiveAlloc recurses and allocates: the cycle does not hide the
// obstacle.
func recursiveAlloc(n int) []int {
	if n == 0 {
		return nil
	}
	s := recursiveAlloc(n - 1)
	return append(s, n)
}

//act:noalloc
func callsRecursiveAlloc(n int) []int {
	return recursiveAlloc(n) // want `call to recursiveAlloc is not alloc-free in //act:noalloc function callsRecursiveAlloc: append may grow its backing array`
}

// dynamicCall cannot be proven: the target is a func value.
//
//act:noalloc
func dynamicCall(f func(int) int, n int) int {
	return f(n) // want `cannot prove alloc-free: call through func value f in //act:noalloc function dynamicCall`
}

// dynamicWaived declares every possible target annotated.
//
//act:noalloc
func dynamicWaived(f func(int) int, n int) int {
	return f(n) //act:alloc-ok-call all registered targets are //act:noalloc
}

// helperWithWaiver has a waived grow line, so it still counts as
// alloc-free for its callers.
func helperWithWaiver(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //act:alloc-ok grow-once on resize
	}
	return buf[:n]
}

//act:noalloc
func callsWaivedHelper(buf []int, n int) []int {
	return helperWithWaiver(buf, n)
}
