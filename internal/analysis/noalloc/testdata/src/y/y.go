// Package y is the dependency side of the cross-package noalloc
// fixture: helpers whose alloc-free verdicts are published as facts
// and consumed by package x across the import edge.
package y

// Grow allocates: callers annotated //act:noalloc must not reach it.
func Grow(n int) []int {
	return grow(n)
}

// grow is the unexported leaf the chain diagnostic names.
func grow(n int) []int {
	return make([]int, n)
}

// Sum is provably alloc-free.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Reset has a waived grow-once line, so it still proves alloc-free.
func Reset(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //act:alloc-ok grow-once on resize
	}
	return buf[:n]
}
