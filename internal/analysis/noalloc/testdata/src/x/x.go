// Package x is the annotated side of the cross-package noalloc
// fixture: //act:noalloc functions whose callees live in package y,
// checked through y's published AllocFree facts.
package x

import "y"

//act:noalloc
func hot(buf []int) int {
	return y.Sum(buf) // proven through the import edge: no diagnostic
}

//act:noalloc
func cold(n int) []int {
	return y.Grow(n) // want `call to y\.Grow is not alloc-free in //act:noalloc function cold: y\.grow → make allocates \(y\.go:\d+\)`
}

//act:noalloc
func waived(n int) []int {
	return y.Grow(n) //act:alloc-ok-call startup-only path
}

//act:noalloc
func viaWaivedHelper(buf []int, n int) []int {
	return y.Reset(buf, n) // y's own waiver carries across the edge
}
