package noalloc_test

import (
	"testing"

	"act/internal/analysis/analysistest"
	"act/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", noalloc.Analyzer)
}
