package noalloc_test

import (
	"testing"

	"act/internal/analysis/analysistest"
	"act/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", noalloc.Analyzer)
}

// TestNoallocCrossPackage pins the interprocedural behavior across an
// import edge: package x's annotated functions are checked against the
// real bodies of package y's helpers via published AllocFree facts.
func TestNoallocCrossPackage(t *testing.T) {
	analysistest.RunRoot(t, "testdata/src", noalloc.Analyzer, "x")
}
