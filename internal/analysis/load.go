package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is a loaded, type-checked set of packages plus the shared
// file set and cross-package facts.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // the packages matched by the load patterns
	// All is every module-local package the load reached — the matched
	// set plus its transitive module-local dependencies, in completion
	// (dependency-first) order. Whole-program layers (the call graph,
	// interprocedural facts) are built over All so an analyzed package
	// can consume summaries of packages it imports even when those were
	// not themselves matched by the patterns.
	All   []*Package
	Facts *Facts

	cg      *CallGraph     // built on first CallGraph() call
	scratch map[string]any // per-analyzer whole-program state, see Scratch
}

// Scratch returns a per-program slot for the named analyzer, creating
// it with mk on first use. Interprocedural passes run once per
// analyzed package but compute whole-program results (bottom-up fact
// sweeps over the call graph); the slot lets the first invocation
// compute and the rest reuse.
func (prog *Program) Scratch(name string, mk func() any) any {
	if prog.scratch == nil {
		prog.scratch = make(map[string]any)
	}
	if v, ok := prog.scratch[name]; ok {
		return v
	}
	v := mk()
	prog.scratch[name] = v
	return v
}

// Package is one type-checked package with its syntax retained.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader resolves imports three ways: module-local packages are parsed
// and type-checked recursively from source (keeping their syntax, so
// annotations in dependency packages are visible), the standard
// library goes through go/importer's source importer, and everything
// else is an error — the module has no third-party dependencies, and
// the linter should say so loudly rather than guess.
type loader struct {
	fset    *token.FileSet
	std     types.ImporterFrom
	modPath string // module path from go.mod; "" = no module-local imports
	modDir  string
	srcRoot string // GOPATH-style fixture root: import "b" → srcRoot/b
	cache   map[string]*Package
	loading map[string]bool
	loaded  []*Package // completion order: dependencies before dependents
	facts   *Facts
}

func newLoader(modPath, modDir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		modPath: modPath,
		modDir:  modDir,
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
		facts:   NewFacts(),
	}
}

// Import implements types.Importer for the chained resolution above.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.srcRoot != "" {
		// Fixture mode: a bare import like "b" resolves to a sibling
		// directory under the testdata src root, retaining its syntax so
		// cross-package analyses see annotations in the dependency too.
		dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			pkg, err := l.loadDir(dir, path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.std.ImportFrom(path, l.modDir, 0)
}

// loadPath loads a module-local import path via its directory.
func (l *loader) loadPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	return l.loadDir(filepath.Join(l.modDir, filepath.FromSlash(rel)), path)
}

// loadDir parses and type-checks the package in dir under the given
// import path, memoized.
func (l *loader) loadDir(dir, path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	l.loaded = append(l.loaded, p)
	l.harvestFacts(p)
	return p, nil
}

// harvestFacts records //act:exhaustive-annotated type declarations.
// It runs for every loaded package — including dependencies of the
// analyzed set — so a switch in one package over an enum declared in
// another is still checked against the defining package's annotation.
func (l *loader) harvestFacts(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if HasDirective(gd.Doc, "act:exhaustive") || HasDirective(ts.Doc, "act:exhaustive") {
					l.facts.ExhaustiveEnums[p.Path+"."+ts.Name.Name] = true
				}
			}
		}
	}
}

// Load type-checks the packages matched by patterns inside the module
// rooted at modDir. Patterns are module-relative: "./..." (everything),
// "./sub/..." (a subtree) or "./sub" (one package). Directories named
// testdata, hidden directories, and _test.go files are excluded —
// analyzers see exactly what ships in the binary.
func Load(modDir string, patterns []string) (*Program, error) {
	modPath, err := modulePath(modDir)
	if err != nil {
		return nil, err
	}
	l := newLoader(modPath, modDir)

	var dirs []string
	seen := make(map[string]bool)
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./...":
			if err := walkPackageDirs(modDir, addDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(modDir, filepath.FromSlash(strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/...")))
			if err := walkPackageDirs(root, addDir); err != nil {
				return nil, err
			}
		default:
			addDir(filepath.Join(modDir, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		}
	}
	sort.Strings(dirs)

	prog := &Program{Fset: l.fset, Facts: l.facts}
	for _, dir := range dirs {
		rel, err := filepath.Rel(modDir, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue // e.g. a directory holding only test files
			}
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	prog.All = l.loaded
	return prog, nil
}

// LoadDir type-checks a single directory as a standalone package (all
// imports resolve to the standard library) — the analysistest entry
// point for golden-file packages under testdata.
func LoadDir(dir string) (*Program, error) {
	l := newLoader("", dir)
	pkg, err := l.loadDir(dir, filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	return &Program{Fset: l.fset, Pkgs: []*Package{pkg}, All: l.loaded, Facts: l.facts}, nil
}

// LoadRoot type-checks the named packages inside a GOPATH-style fixture
// tree: srcRoot/<pkg> holds each package's sources, and an import of a
// bare path like "b" resolves to srcRoot/b (anything without a matching
// directory falls through to the standard library). This is the
// analysistest entry point for cross-package golden fixtures — the
// loaded dependencies keep their syntax, so fact-producing passes see
// annotations on both sides of the import edge.
func LoadRoot(srcRoot string, pkgs []string) (*Program, error) {
	l := newLoader("", srcRoot)
	l.srcRoot = srcRoot
	prog := &Program{Fset: l.fset, Facts: l.facts}
	for _, name := range pkgs {
		pkg, err := l.loadDir(filepath.Join(srcRoot, filepath.FromSlash(name)), name)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	prog.All = l.loaded
	return prog, nil
}

// walkPackageDirs calls add for every directory under root that can
// contain a package, skipping VCS, testdata, and hidden directories.
func walkPackageDirs(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				add(path)
				break
			}
		}
		return nil
	})
}

// modulePath reads the module path from go.mod in modDir.
func modulePath(modDir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: cannot find module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", modDir)
}
