// Package goleak implements the actlint pass that requires every go
// statement in an opted-in package to have a provable termination
// path. A package opts in with //act:goleak in its package doc
// comment; from then on a spawned goroutine must either fall off the
// end of its body, exit every infinite for loop (a return inside a
// done-channel select case is the canonical shape), iterate a bounded
// or channel-draining loop, or carry an explicit
// //act:goroutine-bounded waiver.
//
// The check is interprocedural over the program call graph: when the
// go statement spawns a named module-local function, that function's
// body — and the bodies of the static callees it unconditionally
// reaches — are scanned for infinite for loops with no reachable
// exit. Dynamic call targets (interface methods, func values) and
// external functions are skipped: the pass only reports what it can
// prove from source, never what it merely cannot see.
//
// Termination evidence inside an infinite for loop: a return
// statement, a break that targets the loop (unlabeled at loop depth,
// or labeled with the loop's label), a goto, or a call to panic or
// os.Exit. A //act:goroutine-bounded comment on the go statement's
// line (or the line above) waives the site; the same directive on a
// spawned function's doc comment marks the function itself as
// deliberately long-running.
package goleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"act/internal/analysis"
)

// Analyzer is the goleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "reports go statements in //act:goleak packages whose goroutines have no provable termination path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	optedIn := false
	for _, f := range pass.Files {
		if analysis.HasDirective(f.Doc, "act:goleak") {
			optedIn = true
			break
		}
	}
	if !optedIn {
		return nil
	}
	ck := pass.Prog.Scratch("goleak", func() any {
		return &checker{prog: pass.Prog, memo: make(map[*types.Func]*leakResult)}
	}).(*checker)

	for _, f := range pass.Files {
		waived := waivedLines(pass.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if waived[pass.Fset.Position(gs.Pos()).Line] {
				return true
			}
			checkSpawn(pass, ck, gs)
			return true
		})
	}
	return nil
}

// checkSpawn validates one go statement's spawn target.
func checkSpawn(pass *analysis.Pass, ck *checker, gs *ast.GoStmt) {
	// go func() { ... }(): scan the literal's body directly.
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		scan := scanBody(pass.Info, lit.Body)
		res := ck.judge(scan)
		if res != nil {
			pass.Reportf(gs.Pos(), "goroutine may never terminate: %s (add an exit path or waive with //act:goroutine-bounded)",
				res.describe(pass.Fset, "function literal", pass.Pkg))
		}
		return
	}
	site, ok := analysis.ResolveCall(pass.Info, gs.Call)
	if !ok || site.Dynamic || site.Callee == nil {
		return // dynamic spawn target: nothing provable, skip
	}
	node := pass.Prog.CallGraph().Node(site.Callee)
	if node == nil {
		return // external function: no source to scan, skip
	}
	res := ck.eval(node.Fn)
	if res != nil {
		pass.Reportf(gs.Pos(), "goroutine may never terminate: %s (add an exit path or waive with //act:goroutine-bounded)",
			res.describe(pass.Fset, displayName(node.Fn, pass.Pkg), pass.Pkg))
	}
}

// leakResult describes why one function (or literal body) never
// terminates: either its own infinite loop, or an unconditional-by-
// assumption call into a function that never terminates.
type leakResult struct {
	pos token.Pos     // offending infinite for loop
	via []*types.Func // call chain from the spawn target, outermost first
	fn  *types.Func   // function owning pos (nil for a literal body)
}

func (r *leakResult) describe(fset *token.FileSet, root string, from *types.Package) string {
	var b strings.Builder
	b.WriteString(root)
	for _, hop := range r.via {
		b.WriteString(" → ")
		b.WriteString(displayName(hop, from))
	}
	p := fset.Position(r.pos)
	fmt.Fprintf(&b, ": infinite for loop with no reachable exit (%s:%d)", filepath.Base(p.Filename), p.Line)
	return b.String()
}

// checker memoizes per-function termination results across the whole
// program. In-progress functions are optimistically assumed
// terminating, so recursive loops converge (a function that never
// returns only via self-recursion is out of scope).
type checker struct {
	prog *analysis.Program
	memo map[*types.Func]*leakResult
}

// inProgressMark is the memo sentinel for a function currently on the
// evaluation stack.
var inProgressMark = &leakResult{}

// eval returns nil when fn provably terminates (or nothing can be
// proven), or a leakResult pinpointing the infinite loop it reaches.
func (ck *checker) eval(fn *types.Func) *leakResult {
	fn = fn.Origin()
	if res, ok := ck.memo[fn]; ok {
		if res == inProgressMark {
			return nil // optimistic: break recursion
		}
		return res
	}
	node := ck.prog.CallGraph().Node(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return nil
	}
	if analysis.HasDirective(node.Decl.Doc, "act:goroutine-bounded") {
		ck.memo[fn] = nil
		return nil
	}
	ck.memo[fn] = inProgressMark
	res := ck.judge(scanBody(node.Pkg.Info, node.Decl.Body))
	if res != nil && res.fn == nil {
		res.fn = fn
	}
	ck.memo[fn] = res
	return res
}

// judge resolves a body scan into a verdict: a direct infinite loop
// wins; otherwise the first static callee that never terminates taints
// the caller, with the chain extended one hop.
func (ck *checker) judge(scan bodyScan) *leakResult {
	if scan.loopPos.IsValid() {
		return &leakResult{pos: scan.loopPos}
	}
	for _, callee := range scan.calls {
		if sub := ck.eval(callee); sub != nil {
			via := append([]*types.Func{callee}, sub.via...)
			return &leakResult{pos: sub.pos, via: via, fn: sub.fn}
		}
	}
	return nil
}

// bodyScan is the termination-relevant summary of one function body:
// the first infinite for loop with no reachable exit, and the static
// module-local callees (deduplicated, in source order).
type bodyScan struct {
	loopPos token.Pos
	calls   []*types.Func
}

// scanBody walks one body, skipping nested function literals (their
// code only runs if separately invoked or spawned — spawns inside get
// their own go statements and their own reports).
func scanBody(info *types.Info, body *ast.BlockStmt) bodyScan {
	var scan bodyScan
	seen := make(map[*types.Func]bool)
	var walk func(n ast.Node, label string)
	walk = func(n ast.Node, label string) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.LabeledStmt:
			walk(n.Stmt, n.Label.Name)
			return
		case *ast.GoStmt:
			// The spawned callee never blocks this body; it gets its
			// own go-statement report. Arguments still run here.
			for _, arg := range n.Call.Args {
				walk(arg, "")
			}
			return
		case *ast.ForStmt:
			if n.Cond == nil && !scan.loopPos.IsValid() && !loopHasExit(n, label) {
				scan.loopPos = n.For
			}
		case *ast.CallExpr:
			if site, ok := analysis.ResolveCall(info, n); ok && !site.Dynamic && site.Callee != nil {
				callee := site.Callee.Origin()
				if !seen[callee] {
					seen[callee] = true
					scan.calls = append(scan.calls, callee)
				}
			}
		}
		for _, child := range childNodes(n) {
			walk(child, "")
		}
	}
	walk(body, "")
	return scan
}

// loopHasExit reports whether an infinite for loop's body contains a
// statement that escapes it: return, a break targeting this loop,
// goto, or a terminal call (panic, os.Exit, runtime.Goexit).
func loopHasExit(loop *ast.ForStmt, label string) bool {
	found := false
	// depth counts enclosing break targets between the statement and
	// our loop: an unlabeled break only escapes at depth zero.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if found || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			switch n.Tok {
			case token.BREAK:
				if n.Label == nil && depth == 0 {
					found = true
				}
				if n.Label != nil && label != "" && n.Label.Name == label {
					found = true
				}
			case token.GOTO:
				found = true // may jump past the loop; assume it does
			}
			return
		case *ast.CallExpr:
			if isTerminalCall(n) {
				found = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, child := range childNodes(n) {
				walk(child, depth+1)
			}
			return
		}
		for _, child := range childNodes(n) {
			walk(child, depth)
		}
	}
	for _, stmt := range loop.Body.List {
		walk(stmt, 0)
	}
	return found
}

// childNodes returns n's direct AST children, letting the walkers
// above control descent per node kind.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}

// isTerminalCall recognizes calls that never return, syntactically:
// the panic builtin, os.Exit, runtime.Goexit, and log.Fatal*.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
				return true
			}
		}
	}
	return false
}

// waivedLines collects the lines covered by //act:goroutine-bounded
// comments: the comment's own line and the next, so both trailing and
// preceding placement work.
func waivedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), "act:goroutine-bounded") {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

// displayName renders a function for diagnostics: package-qualified
// unless it lives in the reporting package.
func displayName(fn *types.Func, from *types.Package) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if n, ok := t.(*types.Named); ok {
			name = "(" + ptr + n.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil && fn.Pkg() != from {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
