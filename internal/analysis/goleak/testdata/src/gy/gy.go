// Package gy is the dependency side of the goleak cross-package
// fixture: it exports a pump with no exit and a well-behaved drain.
package gy

// Pump spins forever: spawning it from another package leaks.
func Pump(ch chan int) {
	for {
		ch <- 0
	}
}

// Drain terminates when ch closes.
func Drain(ch chan int) {
	for v := range ch {
		_ = v
	}
}
