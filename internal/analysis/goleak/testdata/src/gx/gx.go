// Package gx spawns dependency-package functions: the termination
// scan follows the call graph across the import edge.
//
//act:goleak
package gx

import "gy"

func spawnPump(ch chan int) {
	go gy.Pump(ch) // want `goroutine may never terminate: gy\.Pump: infinite for loop with no reachable exit \(gy\.go:\d+\)`
}

func spawnDrain(ch chan int) {
	go gy.Drain(ch)
}

// viaLocal reaches the dependency leak one hop deep.
func viaLocal(ch chan int) {
	gy.Pump(ch)
}

func spawnViaLocal(ch chan int) {
	go viaLocal(ch) // want `goroutine may never terminate: viaLocal → gy\.Pump: infinite for loop with no reachable exit \(gy\.go:\d+\)`
}
