// Package g is the goleak golden package: leaky spawns, the accepted
// termination shapes, and both waiver placements.
//
//act:goleak
package g

import "fmt"

// leakyLoop spins forever with no exit: any spawn of it leaks.
func leakyLoop() {
	for {
	}
}

func spawnNamed() {
	go leakyLoop() // want `goroutine may never terminate: leakyLoop: infinite for loop with no reachable exit \(g\.go:\d+\)`
}

func spawnLiteral(work func()) {
	go func() { // want `goroutine may never terminate: function literal: infinite for loop with no reachable exit \(g\.go:\d+\)`
		for {
			work()
		}
	}()
}

// runner reaches the leak one call deep: the chain names the hop.
func runner() {
	leakyLoop()
}

func spawnTransitive() {
	go runner() // want `goroutine may never terminate: runner → leakyLoop: infinite for loop with no reachable exit \(g\.go:\d+\)`
}

func spawnLiteralTransitive() {
	go func() { // want `goroutine may never terminate: function literal → leakyLoop: infinite for loop with no reachable exit \(g\.go:\d+\)`
		leakyLoop()
	}()
}

// spawnSelectDone is the canonical done-channel worker: clean.
func spawnSelectDone(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// spawnLabeledBreak exits the loop through a labeled break: clean.
func spawnLabeledBreak(done chan struct{}, ch chan int) {
	go func() {
	drain:
		for {
			select {
			case <-done:
				break drain
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// spawnSelectOnlyBreak: an unlabeled break inside select exits the
// select, not the loop — still a leak.
func spawnSelectOnlyBreak(ch chan int) {
	go func() { // want `goroutine may never terminate: function literal: infinite for loop with no reachable exit \(g\.go:\d+\)`
		for {
			select {
			case <-ch:
				break
			}
		}
	}()
}

// spawnDrain ranges over the channel: terminates on close, clean.
func spawnDrain(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// spawnBounded iterates a conditioned loop: clean.
func spawnBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
	}()
}

// spawnPanicExit escapes through panic: accepted as termination.
func spawnPanicExit(ch chan int) {
	go func() {
		for {
			if _, ok := <-ch; !ok {
				panic("closed")
			}
		}
	}()
}

// spawnDynamic spawns through a func value: nothing provable, skipped.
func spawnDynamic(f func()) {
	go f()
}

// spawnExternal spawns a stdlib function: no source to scan, skipped.
func spawnExternal() {
	go fmt.Println("done")
}

// spawnWaived carries the site waiver.
func spawnWaived() {
	go leakyLoop() //act:goroutine-bounded process-lifetime daemon
}

// daemon is deliberately long-running; the doc directive marks it.
//
//act:goroutine-bounded
func daemon() {
	for {
	}
}

func spawnDaemon() {
	go daemon()
}
