package goleak_test

import (
	"testing"

	"act/internal/analysis/analysistest"
	"act/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata/src/g", goleak.Analyzer)
}

// TestGoleakCrossPackage pins the interprocedural scan across an
// import edge: the leaky loop lives in the dependency package.
func TestGoleakCrossPackage(t *testing.T) {
	analysistest.RunRoot(t, "testdata/src", goleak.Analyzer, "gx")
}
