// Package a is the atomicmix golden package.
package a

import "sync/atomic"

type stats struct {
	hits   uint64
	misses uint64
	plain  int
}

var global int64

// Record touches hits atomically: this marks hits as an atomic field.
func (s *stats) Record() {
	atomic.AddUint64(&s.hits, 1)
}

// Hits loads it atomically too: no diagnostic.
func (s *stats) Hits() uint64 {
	return atomic.LoadUint64(&s.hits)
}

// Mixed reads hits with a plain load.
func (s *stats) Mixed() uint64 {
	return s.hits // want `plain access to hits, which is accessed with sync/atomic`
}

// MixedWrite stores it plainly.
func (s *stats) MixedWrite() {
	s.hits = 0 // want `plain access to hits`
}

// Misses is only ever accessed plainly: no diagnostic.
func (s *stats) Misses() uint64 {
	s.misses++
	return s.misses
}

// PlainOnly never goes near atomics.
func (s *stats) PlainOnly() int {
	s.plain++
	return s.plain
}

// Bump uses the package-level variable atomically...
func Bump() {
	atomic.AddInt64(&global, 1)
}

// ...so a bare read of it reports.
func Read() int64 {
	return global // want `plain access to global`
}

// CompareAndSwap operands are sanctioned accesses.
func (s *stats) CAS(old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&s.hits, old, new)
}
