// Package atomicmix implements the actlint pass that forbids mixing
// sync/atomic and plain access to the same variable. A counter updated
// with atomic.AddUint64 in one place and read with a bare load in
// another is a data race the memory model gives no meaning to — and
// one of the hardest to catch dynamically, because -race only sees it
// when both paths run concurrently in the same execution. The pass
// needs no annotations: any field or package-level variable whose
// address reaches a sync/atomic call anywhere in the package is
// atomic, by definition, and every plain access to it elsewhere in the
// package is reported.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"act/internal/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "reports plain accesses to variables also accessed via sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// First pass: every variable whose address is taken in the first
	// argument of a sync/atomic call, plus the sanctioned AST nodes
	// (the operands inside those calls, which must not be re-reported).
	atomicVars := make(map[*types.Var]token.Pos)
	sanctioned := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				target := ast.Unparen(un.X)
				if v := varOf(pass, target); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = call.Pos()
					}
					sanctioned[target] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}

	// Second pass: any other access to those variables is a plain
	// (non-atomic) read or write.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sanctioned[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if v, ok := sel.Obj().(*types.Var); ok {
					if _, atomicUse := atomicVars[v]; atomicUse {
						pass.Reportf(n.Pos(), "plain access to %s, which is accessed with sync/atomic elsewhere in this package", v.Name())
					}
				}
			case *ast.Ident:
				v, ok := pass.Info.Uses[n].(*types.Var)
				if !ok || v.IsField() {
					return true // fields report via their SelectorExpr
				}
				if _, atomicUse := atomicVars[v]; atomicUse {
					pass.Reportf(n.Pos(), "plain access to %s, which is accessed with sync/atomic elsewhere in this package", v.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicCall recognizes atomic.XxxUint64-style calls from sync/atomic.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return true
		}
	}
	return false
}

// varOf resolves the variable an &-operand denotes: a struct field
// selector or a plain identifier. Anything else (index expressions,
// pointer chases through interfaces) is out of scope.
func varOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}
