package atomicmix_test

import (
	"testing"

	"act/internal/analysis/analysistest"
	"act/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", atomicmix.Analyzer)
}
