package exhaustive_test

import (
	"testing"

	"act/internal/analysis/analysistest"
	"act/internal/analysis/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", exhaustive.Analyzer)
}
