// Package a is the exhaustive golden package.
package a

// State is an annotated enum: switches over it must be total.
//
//act:exhaustive
type State int

const (
	Idle State = iota
	Running
	Halted
)

// Aliased shares Running's value; covering either name covers the member.
const Aliased State = 1

// Plain is not annotated; incomplete switches are fine.
type Plain int

const (
	PA Plain = iota
	PB
)

func full(s State) string {
	switch s {
	case Idle:
		return "idle"
	case Running:
		return "running"
	case Halted:
		return "halted"
	}
	return ""
}

func withDefault(s State) string {
	switch s {
	case Idle:
		return "idle"
	default:
		return "other"
	}
}

func missing(s State) string {
	switch s { // want `switch over State is missing cases Halted \(and has no default\)`
	case Idle:
		return "idle"
	case Running:
		return "running"
	}
	return ""
}

func multiValueCase(s State) string {
	switch s {
	case Idle, Halted:
		return "stopped"
	case Aliased: // value 1 == Running: covers that member
		return "running"
	}
	return ""
}

func missingTwo(s State) string {
	switch s { // want `switch over State is missing cases Halted, Running \(and has no default\)`
	case Idle:
		return "idle"
	}
	return ""
}

func plainSwitch(p Plain) string {
	switch p {
	case PA:
		return "a"
	}
	return ""
}

func untagged(s State) string {
	switch {
	case s == Idle:
		return "idle"
	}
	return ""
}
