// Package exhaustive implements the actlint pass that keeps switches
// over the project's enumerated types total. The monitor's enums —
// fault kinds, wire outcomes, breaker window states, operating modes —
// grow as the system grows, and a switch written against yesterday's
// constant list silently ignores today's new member. The pass makes
// that a lint failure instead: a switch over a type annotated
// //act:exhaustive must either cover every declared constant of the
// type or carry an explicit default clause (the author's signed
// statement that the remainder is intentional).
//
// The annotation lives on the type declaration; the constants are
// every package-level constant of that exact type in the defining
// package. Cross-package switches are checked too — the loader
// harvests annotations from every package it type-checks, and the
// defining package's scope provides the constant list even when the
// switch lives elsewhere.
package exhaustive

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"act/internal/analysis"
)

// Analyzer is the exhaustive pass.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "reports non-exhaustive switches over //act:exhaustive enum types",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tagType := pass.Info.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	qualified := obj.Pkg().Path() + "." + obj.Name()
	if !pass.Facts.ExhaustiveEnums[qualified] {
		return
	}

	// Every declared constant of the enum type, keyed by value so
	// aliases (two names, one value) count as one member; the member's
	// reported name is its first-declared constant.
	members := make(map[string]*types.Const)
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		if prev, ok := members[key]; !ok || c.Pos() < prev.Pos() {
			members[key] = c
		}
	}
	if len(members) == 0 {
		return // annotated but constant-free: nothing to enforce
	}

	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
				covered[exactOf(tv.Value)] = true
			}
		}
	}
	if hasDefault {
		return
	}

	var missing []string
	for key, c := range members {
		if !covered[key] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "switch over %s is missing cases %s (and has no default)",
		obj.Name(), strings.Join(missing, ", "))
}

// exactOf normalizes a constant value to the representation used for
// member keys.
func exactOf(v constant.Value) string { return v.ExactString() }
