// Call-graph layer: the whole-program structure the interprocedural
// passes walk. Built once per loaded Program, over every module-local
// package the load reached (Program.All), so an edge from an analyzed
// package into a dependency that merely rode along is still present.
//
// Resolution policy, in the spirit of "cheap and honest":
//
//   - direct calls to package-level functions resolve statically;
//   - method calls resolve statically when the receiver's static type
//     is concrete — embedding-promoted methods resolve to the method
//     actually declared, and generic instances normalize to their
//     origin;
//   - calls through interfaces, func-typed values and fields, and
//     immediately-invoked literals are recorded as dynamic call sites
//     with a human-readable description. No points-to guessing: a
//     pass that needs a guarantee treats a dynamic site as "cannot
//     prove" and asks for an annotation instead.
//
// Function literals are not nodes: the calls inside a literal belong
// to the literal's lifetime, not the enclosing function's body, so the
// walk does not descend into them. Passes that care about literal
// bodies (goleak, on goroutine bodies) walk those explicitly.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CallSite is one call expression inside a function body.
type CallSite struct {
	Pos    token.Pos
	Call   *ast.CallExpr
	Callee *types.Func // nil when Dynamic
	// Dynamic marks a call whose target cannot be resolved statically;
	// Desc then says why ("interface method (io.Writer).Write", "call
	// through func value enc", ...).
	Dynamic bool
	Desc    string
}

// FuncNode is one declared function or method with its outgoing calls.
type FuncNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []CallSite
}

// CallGraph maps every declared module-local function to its node.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
}

// Node returns the node for fn (normalizing generic instances), or nil
// for functions outside the loaded program (stdlib, interface methods).
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn.Origin()]
}

// CallGraph builds (once) and returns the program's call graph.
func (prog *Program) CallGraph() *CallGraph {
	if prog.cg == nil {
		prog.cg = buildCallGraph(prog)
	}
	return prog.cg
}

func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range prog.All {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				collectCalls(pkg.Info, fd.Body, &node.Calls)
				g.Nodes[fn] = node
			}
		}
	}
	return g
}

// collectCalls appends every call site in body (not descending into
// function literals) to out.
func collectCalls(info *types.Info, body ast.Node, out *[]CallSite) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if site, ok := ResolveCall(info, call); ok {
			*out = append(*out, site)
		}
		return true
	})
}

// ResolveCall classifies one call expression: a static call to a known
// function, a dynamic call, or not a call at all (a conversion or a
// builtin, which the construct-level checks own). The boolean is false
// in the last case.
func ResolveCall(info *types.Info, call *ast.CallExpr) (CallSite, bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation syntax f[T](...) wraps the callee; an
	// index into a func-typed collection unwraps to its base, which
	// resolves as a (dynamic) func value below either way.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return CallSite{}, false // conversion, not a call
	}

	dynamic := func(desc string) (CallSite, bool) {
		return CallSite{Pos: call.Pos(), Call: call, Dynamic: true, Desc: desc}, true
	}
	static := func(fn *types.Func) (CallSite, bool) {
		fn = fn.Origin()
		return CallSite{Pos: call.Pos(), Call: call, Callee: fn, Desc: FuncName(fn)}, true
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			return CallSite{}, false
		case *types.Func:
			return static(obj)
		case *types.Var:
			return dynamic("call through func value " + fun.Name)
		case nil:
			// Defs instead of Uses should not happen in call position;
			// be conservative.
			return dynamic("unresolved call " + fun.Name)
		default:
			return dynamic("call through " + fun.Name)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					return dynamic("interface method " + FuncName(fn))
				}
				return static(fn)
			case types.FieldVal:
				return dynamic("call through func-typed field " + fun.Sel.Name)
			}
		}
		// Package-qualified: pkg.Fun.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return static(obj)
		case *types.Builtin:
			return CallSite{}, false
		case *types.Var:
			return dynamic("call through func value " + fun.Sel.Name)
		}
		return dynamic("unresolved call " + fun.Sel.Name)
	case *ast.FuncLit:
		return dynamic("immediately invoked function literal")
	}
	return dynamic("indirect call")
}
