// Package analysistest runs an analyzer over a golden package and
// checks its diagnostics against expectations written in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x.f = 1 // want `not guarded`
//
// A "want" comment holds one or more backquoted or double-quoted
// regular expressions; each must be matched by a distinct diagnostic
// reported on that line, and every diagnostic must match a want.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"act/internal/analysis"
)

// wantRx extracts the expectation patterns from a comment: everything
// after "want", as a sequence of `...` or "..." strings.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads dir (a package directory, conventionally
// testdata/src/<name>), applies the analyzer, and reports mismatches
// between diagnostics and want comments on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	prog, err := analysis.LoadDir(abs)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	check(t, prog, a)
}

// RunRoot loads the named packages from a GOPATH-style fixture tree
// (srcRoot is conventionally testdata/src; an import of "b" resolves
// to srcRoot/b), applies the analyzer to each named package, and
// checks want comments across every loaded file — including files of
// dependency packages that were pulled in through import edges, so a
// cross-package fixture can pin where the fact-producing side of an
// interprocedural diagnostic lives.
func RunRoot(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	prog, err := analysis.LoadRoot(abs, pkgs)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", srcRoot, err)
	}
	check(t, prog, a)
}

// check applies the analyzer and matches diagnostics against the want
// comments in every loaded file.
func check(t *testing.T, prog *analysis.Program, a *analysis.Analyzer) {
	t.Helper()
	diags, err := prog.Run([]*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range prog.All {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, prog.Fset, c)...)
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// parseWants extracts the expectations from one comment.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimPrefix(c.Text, "//")
	idx := strings.Index(text, "want ")
	if idx < 0 {
		return nil
	}
	pos := fset.Position(c.Pos())
	var out []*expectation
	for _, m := range wantRx.FindAllStringSubmatch(text[idx+len("want "):], -1) {
		pat := m[1]
		if pat == "" {
			pat = m[2]
		}
		rx, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: rx})
	}
	return out
}
