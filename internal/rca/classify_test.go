package rca

import (
	"reflect"
	"strings"
	"testing"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/isa"
	"act/internal/program"
	"act/internal/ranking"
)

// seqOf builds a window from (thread, idx) endpoint pairs: each triple
// is {storeThread, storeIdx, loadThread, loadIdx}.
func dep(st, si, lt, li int) deps.Dep {
	return deps.Dep{S: isa.PC(st, si), L: isa.PC(lt, li), Inter: st != lt}
}

func TestClassifyShapes(t *testing.T) {
	cases := []struct {
		name  string
		seq   deps.Sequence
		kind  DefectKind
		scope Scope
	}{
		{"empty", deps.Sequence{{}, {}, {}}, KindUnknown, ScopeUnknown},
		{"sequential", deps.Sequence{{}, dep(1, 4, 1, 9), dep(1, 9, 1, 12)}, KindSequential, ScopeIntra},
		{
			// Lone remote store into the reader: order-violation shape.
			"order",
			deps.Sequence{{}, dep(1, 3, 1, 5), dep(0, 40, 1, 8)},
			KindOrder, ScopeInter,
		},
		{
			// Check-then-use: two close local loads fed by two close
			// stores of one remote thread.
			"atomicity",
			deps.Sequence{dep(0, 20, 1, 8), dep(0, 24, 1, 11)},
			KindAtomicity, ScopeInter,
		},
		{
			// Same remote thread but stores a code region apart: two
			// unrelated communications, not one broken atomic region.
			"far-stores-order",
			deps.Sequence{dep(0, 20, 1, 8), dep(0, 60, 1, 11)},
			KindOrder, ScopeInter,
		},
		{
			// Distinct remote writers racing into a check/use pair (the
			// apache refcount shape): atomicity regardless of store
			// distance.
			"two-writer-atomicity",
			deps.Sequence{dep(0, 9, 1, 10), dep(2, 15, 1, 13)},
			KindAtomicity, ScopeInter,
		},
		{
			// Loads from distinct program phases (the pbzip2 shape):
			// consecutive communications, not one atomic-intent region.
			"far-loads-order",
			deps.Sequence{dep(0, 11, 1, 5), dep(0, 26, 1, 12)},
			KindOrder, ScopeInter,
		},
		{
			// Same load PC twice (a loop re-reading one flag) is not a
			// check/use pair.
			"same-load-order",
			deps.Sequence{dep(0, 20, 1, 8), dep(0, 24, 1, 8)},
			KindOrder, ScopeInter,
		},
	}
	for _, tc := range cases {
		kind, scope, _ := classify(tc.seq)
		if kind != tc.kind || scope != tc.scope {
			t.Errorf("%s: got %v/%v, want %v/%v", tc.name, kind, scope, tc.kind, tc.scope)
		}
	}
}

// buggyProg is a two-thread program with marks and a lock near thread
// 0's store region.
func buggyProg() *program.Program {
	t0 := make([]isa.Instr, 30)
	t1 := make([]isa.Instr, 30)
	t0[18] = isa.Instr{Op: isa.Lock}
	t0[22] = isa.Instr{Op: isa.Unlock}
	return &program.Program{
		Name:    "synthetic",
		Threads: [][]isa.Instr{t0, t1},
		Marks: map[string]uint64{
			"t0.pub":   isa.PC(0, 19),
			"t0.ret":   isa.PC(0, 21),
			"t1.check": isa.PC(1, 8),
		},
	}
}

func testReport() *ranking.Report {
	// Candidate 0: atomicity shape on thread 1 with stores at t0 idx
	// 20/21 (inside the lock region); candidate 1: sequential.
	return &ranking.Report{
		Total:  5,
		Pruned: 3,
		Ranked: []ranking.Candidate{
			{
				Entry: core.DebugEntry{
					Seq:    deps.Sequence{dep(0, 20, 1, 8), dep(0, 21, 1, 11)},
					Output: 0.1, At: 40, Proc: 1,
					Traj: []float64{0.8, 0.6, 0.1},
				},
				Matches: 1,
			},
			{
				Entry: core.DebugEntry{
					Seq:    deps.Sequence{{}, dep(1, 4, 1, 9)},
					Output: 0.4, At: 12, Proc: 1,
				},
			},
		},
	}
}

func TestAnalyze(t *testing.T) {
	rep := testReport()
	debug := []core.DebugEntry{
		{Seq: deps.Sequence{{}, dep(0, 2, 1, 3)}, At: 37, Proc: 1}, // pruned neighbor of candidate 0
		rep.Ranked[1].Entry,
		rep.Ranked[0].Entry,
		{Seq: deps.Sequence{{}, dep(0, 2, 1, 3)}, At: 90, Proc: 1}, // too far away
	}
	rpt := Analyze(rep, Provenance{
		Program:     buggyProg(),
		Debug:       debug,
		CorrectRuns: 10,
		Bug:         "synthetic",
	})
	if len(rpt.Verdicts) != 2 {
		t.Fatalf("verdicts = %d, want 2", len(rpt.Verdicts))
	}
	v := rpt.Verdicts[0]
	if v.Kind != KindAtomicity || v.Scope != ScopeInter {
		t.Fatalf("top verdict %v/%v, want atomicity/inter", v.Kind, v.Scope)
	}
	if !v.LockAdjacent {
		t.Error("stores sit between Lock/Unlock; want lock-adjacent")
	}
	if v.Site.Thread != 1 || v.Site.StorePC != isa.PC(0, 21) || v.Site.LoadPC != isa.PC(1, 11) {
		t.Errorf("site = %+v", v.Site)
	}
	if v.Site.StoreSym != "ret" && v.Site.StoreSym != "t0.ret" {
		// The mark map stores full "t0.ret" names; symbolize returns them
		// verbatim.
		t.Errorf("store sym = %q", v.Site.StoreSym)
	}
	if v.Evidence.PrunedNeighbors != 1 {
		t.Errorf("pruned neighbors = %d, want 1", v.Evidence.PrunedNeighbors)
	}
	if len(v.Evidence.Trajectory) != 3 {
		t.Errorf("trajectory = %v", v.Evidence.Trajectory)
	}
	if v.Confidence <= rpt.Verdicts[1].Confidence {
		t.Errorf("top confidence %.3f not above runner-up %.3f", v.Confidence, rpt.Verdicts[1].Confidence)
	}
	if rpt.Verdicts[1].Kind != KindSequential {
		t.Errorf("runner-up kind = %v, want sequential", rpt.Verdicts[1].Kind)
	}

	// Determinism: same inputs, same verdicts.
	again := Analyze(rep, Provenance{Program: buggyProg(), Debug: debug, CorrectRuns: 10, Bug: "synthetic"})
	if !reflect.DeepEqual(rpt, again) {
		t.Error("Analyze is not deterministic for identical inputs")
	}
}

func TestAnalyzeWithoutProvenance(t *testing.T) {
	rep := testReport()
	rpt := Analyze(rep, Provenance{})
	v := rpt.Verdicts[0]
	if v.Kind != KindAtomicity {
		t.Errorf("kind = %v without provenance, want atomicity", v.Kind)
	}
	if v.LockAdjacent || v.Site.StoreSym != "" || v.Evidence.PrunedNeighbors != 0 {
		t.Errorf("provenance-free verdict leaked provenance fields: %+v", v)
	}
}

func TestSymbolize(t *testing.T) {
	p := buggyProg()
	if got := symbolize(p, isa.PC(0, 19)); got != "t0.pub" {
		t.Errorf("exact mark: %q", got)
	}
	if got := symbolize(p, isa.PC(0, 25)); got != "t0.ret+4" {
		t.Errorf("offset mark: %q", got)
	}
	if got := symbolize(p, isa.PC(1, 2)); got != "" {
		t.Errorf("before any mark: %q", got)
	}
}

func TestAnalyzeLimit(t *testing.T) {
	rep := testReport()
	rpt := Analyze(rep, Provenance{Limit: 1})
	if len(rpt.Verdicts) != 1 {
		t.Fatalf("verdicts = %d, want 1", len(rpt.Verdicts))
	}
}

func TestReportWrite(t *testing.T) {
	rep := testReport()
	rpt := Analyze(rep, Provenance{Program: buggyProg(), Bug: "synthetic", CorrectRuns: 10})
	var sb strings.Builder
	rpt.Write(&sb, 0)
	out := sb.String()
	for _, want := range []string{"atomicity-violation", "lock-adjacent", "conf=", "trajectory:", "correct set from 10 run(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestCalibrationError(t *testing.T) {
	// Perfectly calibrated at the bin level: all 0.9-confidence, 90% correct.
	conf := make([]float64, 10)
	correct := make([]bool, 10)
	for i := range conf {
		conf[i] = 0.9
		correct[i] = i != 0
	}
	if ece := CalibrationError(conf, correct, 5); ece > 1e-9 {
		t.Errorf("calibrated set ECE = %f", ece)
	}
	// Fully miscalibrated: certain but always wrong.
	for i := range conf {
		correct[i] = false
	}
	if ece := CalibrationError(conf, correct, 5); ece < 0.89 {
		t.Errorf("miscalibrated set ECE = %f, want ~0.9", ece)
	}
	if CalibrationError(nil, nil, 5) != 0 {
		t.Error("empty set should have 0 ECE")
	}
}

func TestKindOfClass(t *testing.T) {
	cases := map[string]DefectKind{
		"order": KindOrder, "atomicity": KindAtomicity,
		"semantic": KindSequential, "overflow": KindSequential,
		"???": KindUnknown,
	}
	for class, want := range cases {
		if got := KindOfClass(class); got != want {
			t.Errorf("KindOfClass(%q) = %v, want %v", class, got, want)
		}
	}
}
