package rca

import (
	"act/internal/core"
	"act/internal/deps"
	"act/internal/isa"
	"act/internal/program"
	"act/internal/ranking"
)

// Classification geometry, in instruction indices. These are tuned
// against the calibration harness (harness.go): in the real-bug
// workloads an atomicity violation's check and use loads sit within a
// few instructions of each other (apache, mysql2, and the injected
// bugs all land at ΔL=3), while an order violation's consecutive
// communications are loads from distinct program phases (pbzip2:
// ΔL=7, same-thread stores 15 apart). Widening loadRadius trades
// order recall for atomicity recall; the harness makes the trade
// measurable.
const (
	// loadRadius bounds how far apart two local loads may sit and still
	// count as the check/use pair of one atomic-intent region.
	loadRadius = 5
	// storeRadius bounds how far apart two remote stores from the SAME
	// remote thread may sit and still look like one interleaving
	// update (memcached's item/flags stores sit 13 apart; pbzip2's
	// order-violation stores 15). Stores from different remote threads
	// (apache: concurrent workers hitting one refcount) are exempt —
	// distinct writers racing into a check/use pair is the atomicity
	// footprint itself.
	storeRadius = 13
	// lockRadius is how many instructions around a suspected site are
	// scanned for synchronization ops when program provenance is known.
	lockRadius = 6
	// markRadius is how far back from a PC the symbolizer will walk to
	// the nearest program mark before giving up.
	markRadius = 64
	// neighborWindow is how close (in dependence indices) another Debug
	// Buffer entry must be to count as a pruned near-miss neighbor.
	neighborWindow = 8
)

// Provenance is the diagnosis context surrounding a ranked report.
// Every field is optional: Analyze degrades gracefully — no Program
// means PC-only sites and no lock adjacency, no Debug slice means no
// pruned-neighbor counts. A rollup node working from wire-decoded
// entries alone still gets kind, scope, site addresses, and confidence.
type Provenance struct {
	// Program is the workload the failing run executed, used for mark
	// symbolization and lock adjacency.
	Program *program.Program
	// Debug is the full Debug Buffer the report was ranked from,
	// including entries pruning later removed.
	Debug []core.DebugEntry
	// CorrectRuns is how many correct executions built the Correct Set.
	CorrectRuns int
	// Bug names the workload or campaign, for the report header.
	Bug string
	// Limit caps how many ranked candidates receive verdicts; 0 means
	// a default of 10. Verdict 1 is always the top-ranked candidate.
	Limit int
}

// DefaultLimit is how many candidates receive verdicts when Provenance
// does not say otherwise.
const DefaultLimit = 10

// Report is a full RCA report: the ranked evidence plus one verdict per
// leading candidate.
type Report struct {
	// Bug names the diagnosed workload or campaign.
	Bug string `json:"bug,omitempty"`
	// CorrectRuns is how many correct executions backed the pruning.
	CorrectRuns int `json:"correct_runs,omitempty"`
	// Ranked is the underlying ranking report the verdicts index into.
	// Serialized in the binary form (Save), not in JSON.
	Ranked *ranking.Report `json:"-"`
	// Total/Pruned mirror the ranking counts for JSON consumers.
	Total  int `json:"total"`
	Pruned int `json:"pruned"`
	// Verdicts covers the leading candidates, best first.
	Verdicts []Verdict `json:"verdicts"`
}

// Top returns the leading verdict, or nil for an empty report.
func (r *Report) Top() *Verdict {
	if len(r.Verdicts) == 0 {
		return nil
	}
	return &r.Verdicts[0]
}

// Analyze derives a verdict for each leading candidate of rep. It is
// pure and deterministic: the same report and provenance always yield
// the same verdicts, so reports can be regenerated and diffed.
func Analyze(rep *ranking.Report, prov Provenance) *Report {
	limit := prov.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	out := &Report{
		Bug:         prov.Bug,
		CorrectRuns: prov.CorrectRuns,
		Ranked:      rep,
		Total:       rep.Total,
		Pruned:      rep.Pruned,
	}
	n := len(rep.Ranked)
	if n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		out.Verdicts = append(out.Verdicts, verdictFor(rep, i, prov))
	}
	return out
}

// verdictFor builds the verdict for ranked candidate i.
func verdictFor(rep *ranking.Report, i int, prov Provenance) Verdict {
	c := rep.Ranked[i]
	kind, scope, pivot := classify(c.Entry.Seq)
	v := Verdict{
		Rank:      i + 1,
		Kind:      kind,
		KindName:  kind.String(),
		Scope:     scope,
		ScopeName: scope.String(),
		Site:      siteOf(c.Entry, pivot, prov.Program),
		Evidence: Evidence{
			Window:          evWindow(c.Entry.Seq),
			Trajectory:      c.Entry.Traj,
			Matched:         c.Matches,
			Runs:            c.Runs,
			PrunedNeighbors: prunedNeighbors(rep, c.Entry, prov.Debug),
		},
	}
	if prov.Program != nil && (kind == KindOrder || kind == KindAtomicity) {
		v.LockAdjacent = lockAdjacent(prov.Program, pivot)
	}
	v.Confidence = confidence(rep, i, kind)
	return v
}

// classify derives the defect shape of one dependence window and
// returns the pivot: the newest usable dependence, which names the
// suspected site. Zero dependences (S==L==0) are front-padding from
// early execution and carry no signal.
//
// The shape test follows the interleaving-pattern argument from the
// concurrency-bug ML literature: an atomicity violation leaves a
// check-then-use footprint — two distinct loads close together in the
// reader, both fed remotely, the remote stores either from different
// writers or from one nearby code region (the update that slipped into
// the atomic-intent region) — while an order violation's remote store
// arrives without that local load pairing.
func classify(seq deps.Sequence) (DefectKind, Scope, deps.Dep) {
	pivot := deps.Dep{}
	pivotAt := -1
	any := false
	for i, d := range seq {
		if d.S == 0 && d.L == 0 {
			continue
		}
		any = true
		if d.Inter {
			pivot, pivotAt = d, i
		}
	}
	if !any {
		return KindUnknown, ScopeUnknown, deps.Dep{}
	}
	if pivotAt < 0 {
		// No communication crossed threads anywhere in the window:
		// whatever failed, it failed sequentially.
		for i := len(seq) - 1; i >= 0; i-- {
			if seq[i].S != 0 || seq[i].L != 0 {
				return KindSequential, ScopeIntra, seq[i]
			}
		}
	}
	pt := isa.ThreadOf(pivot.S)
	pl, ps := isa.IndexOf(pivot.L), isa.IndexOf(pivot.S)
	for i, d := range seq {
		if i == pivotAt || !d.Inter || (d.S == 0 && d.L == 0) {
			continue
		}
		// The check/use pair: a different load, nearby. Both loads run
		// on the window's own thread by construction.
		if d.L == pivot.L || abs(isa.IndexOf(d.L)-pl) > loadRadius {
			continue
		}
		if isa.ThreadOf(d.S) != pt || abs(isa.IndexOf(d.S)-ps) <= storeRadius {
			return KindAtomicity, ScopeInter, pivot
		}
	}
	return KindOrder, ScopeInter, pivot
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// siteOf localizes the suspected component from the pivot dependence.
func siteOf(e core.DebugEntry, pivot deps.Dep, prog *program.Program) Site {
	if pivot.S == 0 && pivot.L == 0 {
		return Site{Proc: e.Proc}
	}
	s := Site{
		Proc:    e.Proc,
		Thread:  isa.ThreadOf(pivot.L),
		StorePC: pivot.S,
		LoadPC:  pivot.L,
	}
	if prog != nil {
		s.StoreSym = symbolize(prog, pivot.S)
		s.LoadSym = symbolize(prog, pivot.L)
	}
	return s
}

// symbolize names the nearest mark at or before pc in the same thread,
// within markRadius instructions. Marks live in a map; ties (several
// marks on one PC) break toward the lexicographically smallest name so
// the result never depends on map iteration order.
func symbolize(prog *program.Program, pc uint64) string {
	t := isa.ThreadOf(pc)
	bestName := ""
	var bestPC uint64
	for name, mpc := range prog.Marks {
		if isa.ThreadOf(mpc) != t || mpc > pc {
			continue
		}
		if isa.IndexOf(pc)-isa.IndexOf(mpc) > markRadius {
			continue
		}
		if bestName == "" || mpc > bestPC || (mpc == bestPC && name < bestName) {
			bestName, bestPC = name, mpc
		}
	}
	if bestName == "" {
		return ""
	}
	if d := isa.IndexOf(pc) - isa.IndexOf(bestPC); d > 0 {
		return fmtSymOffset(bestName, d)
	}
	return bestName
}

func fmtSymOffset(name string, d int) string {
	// Small positive offsets only (bounded by markRadius); avoid fmt to
	// keep this trivially allocation-cheap for bulk symbolization.
	buf := make([]byte, 0, len(name)+4)
	buf = append(buf, name...)
	buf = append(buf, '+')
	if d >= 10 {
		buf = append(buf, byte('0'+d/10))
	}
	buf = append(buf, byte('0'+d%10))
	return string(buf)
}

// lockAdjacent scans the instructions around the pivot's store and load
// for synchronization ops.
func lockAdjacent(prog *program.Program, pivot deps.Dep) bool {
	return syncNear(prog, pivot.S) || syncNear(prog, pivot.L)
}

func syncNear(prog *program.Program, pc uint64) bool {
	t := isa.ThreadOf(pc)
	if t < 0 || t >= len(prog.Threads) {
		return false
	}
	code := prog.Threads[t]
	idx := isa.IndexOf(pc)
	lo, hi := idx-lockRadius, idx+lockRadius
	if lo < 0 {
		lo = 0
	}
	if hi >= len(code) {
		hi = len(code) - 1
	}
	for i := lo; i <= hi; i++ {
		if code[i].Op.IsSync() {
			return true
		}
	}
	return false
}

// evWindow copies a sequence into its JSON-friendly evidence form,
// dropping the front padding.
func evWindow(seq deps.Sequence) []EvDep {
	out := make([]EvDep, 0, len(seq))
	for _, d := range seq {
		if d.S == 0 && d.L == 0 && len(out) == 0 {
			continue
		}
		out = append(out, EvDep{S: d.S, L: d.L, Inter: d.Inter})
	}
	return out
}

// prunedNeighbors counts Debug Buffer entries from the same processor
// logged within neighborWindow dependences of the candidate that did
// not survive into the ranked report: near-misses the Correct Set
// eliminated around the survivor.
func prunedNeighbors(rep *ranking.Report, e core.DebugEntry, debug []core.DebugEntry) int {
	if len(debug) == 0 {
		return 0
	}
	n := 0
	for _, d := range debug {
		if d.Proc != e.Proc || d.At == e.At {
			continue
		}
		delta := int64(d.At) - int64(e.At)
		if delta < -neighborWindow || delta > neighborWindow {
			continue
		}
		if !survived(rep, d) {
			n++
		}
	}
	return n
}

// survived reports whether a debug entry made it into the ranked set.
func survived(rep *ranking.Report, d core.DebugEntry) bool {
	h := d.Seq.Hash()
	for _, c := range rep.Ranked {
		if c.Entry.Proc == d.Proc && c.Entry.At == d.At && c.Entry.Seq.Hash() == h {
			return true
		}
	}
	return false
}
