package rca

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// engineReport builds a report the way production does: Analyze over a
// ranked report with full provenance.
func engineReport() *Report {
	return Analyze(testReport(), Provenance{
		Program:     buggyProg(),
		CorrectRuns: 10,
		Bug:         "synthetic",
	})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rpt := engineReport()
	var buf bytes.Buffer
	if err := rpt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Traj lives on the verdicts, not in the embedded ranking body: the
	// loaded ranking candidates legitimately lack it.
	want := *rpt
	for i := range want.Ranked.Ranked {
		want.Ranked.Ranked[i].Entry.Traj = nil
	}
	if !reflect.DeepEqual(&want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", &want, got)
	}
}

// TestSaveByteIdentical is the acceptance criterion: saving, loading,
// and saving again yields byte-identical output for engine reports.
func TestSaveByteIdentical(t *testing.T) {
	rpt := engineReport()
	var first bytes.Buffer
	if err := rpt.Save(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := loaded.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("save/load/save not byte-identical: %d vs %d bytes",
			first.Len(), second.Len())
	}
}

func TestLoadRejectsDamage(t *testing.T) {
	rpt := engineReport()
	var buf bytes.Buffer
	if err := rpt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x40
	if _, err := Load(bytes.NewReader(flip)); !errors.Is(err, ErrVerdictCRC) {
		t.Errorf("bit flip: err = %v, want CRC failure", err)
	}

	if _, err := Load(bytes.NewReader(good[:10])); err == nil {
		t.Error("truncated file accepted")
	}

	wrongMagic := append([]byte(nil), good...)
	copy(wrongMagic, "ACTR")
	if _, err := Load(bytes.NewReader(wrongMagic)); !errors.Is(err, ErrVerdictMagic) {
		t.Errorf("wrong magic: err = %v", err)
	}

	wrongVer := append([]byte(nil), good...)
	wrongVer[4] = 9
	if _, err := Load(bytes.NewReader(wrongVer)); !errors.Is(err, ErrVerdictVersion) {
		t.Errorf("wrong version: err = %v", err)
	}
}

func TestSaveRejectsBadRank(t *testing.T) {
	rpt := engineReport()
	rpt.Verdicts[0].Rank = 99
	var buf bytes.Buffer
	if err := rpt.Save(&buf); err == nil {
		t.Error("verdict rank outside ranked set accepted")
	}
}
