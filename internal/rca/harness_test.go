package rca

import (
	"reflect"
	"testing"

	"act/internal/faults"
	"act/internal/nn"
	"act/internal/train"
)

// tinyHarness replays two labeled bugs — one atomicity, one order — on
// the minimal training budget, mirroring the faults tinyCampaign.
func tinyHarness() HarnessConfig {
	return HarnessConfig{
		Bugs: []string{"apache", "pbzip2"},
		Campaign: faults.CampaignConfig{
			Seed: 7,
			Train: train.Config{
				Ns:              []int{2},
				Hs:              []int{6},
				RandomNegatives: 2,
				Seed:            1,
				SearchFit:       nn.FitConfig{MaxEpochs: 200, Seed: 1},
				FinalFit:        nn.FitConfig{MaxEpochs: 1500, Seed: 1, Patience: 400},
			},
		},
	}
}

func TestHarnessDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("harness runs the full train+deploy pipeline")
	}
	a, err := RunHarness(tinyHarness())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHarness(tinyHarness())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different harness results:\n%+v\nvs\n%+v", a, b)
	}

	if len(a.Scores) != 2 {
		t.Fatalf("scores = %d, want 2", len(a.Scores))
	}
	for _, s := range a.Scores {
		if s.DebugLen == 0 {
			t.Errorf("%s: empty debug buffer", s.Bug)
		}
		if s.RootRank == 0 {
			t.Errorf("%s: root cause not ranked", s.Bug)
		}
		if s.Confidence <= 0 || s.Confidence > 1 {
			t.Errorf("%s: confidence %f outside (0,1]", s.Bug, s.Confidence)
		}
	}
	if a.Scores[0].TrueKind != KindAtomicity || a.Scores[1].TrueKind != KindOrder {
		t.Errorf("ground truth kinds: %v/%v", a.Scores[0].TrueKind, a.Scores[1].TrueKind)
	}
	// The clean baselines diagnose these bugs at rank 1 (campaign
	// tests depend on it); the kinds must then classify correctly, or
	// the calibration metrics are meaningless.
	if !a.Scores[0].KindCorrect || !a.Scores[1].KindCorrect {
		t.Errorf("kind predictions: %+v", a.Scores)
	}
	if a.Top1Site != 1 || a.KindAccuracy != 1 {
		t.Errorf("top1 = %.2f, kind accuracy = %.2f, want 1", a.Top1Site, a.KindAccuracy)
	}
	if a.ECE < 0 || a.ECE > 1 {
		t.Errorf("ECE = %f", a.ECE)
	}
}
