package rca

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzLoadRCA throws arbitrary bytes at the verdict-file loader,
// mirroring ranking's FuzzLoad invariants: Load never panics, and any
// input it accepts must round-trip — saving the loaded report and
// loading it again yields the same report. Damaged inputs must come
// back as errors, not as garbage verdicts.
func FuzzLoadRCA(f *testing.F) {
	seeds := []*Report{
		Analyze(testReport(), Provenance{}),
		engineReport(),
		Analyze(testReport(), Provenance{Limit: 1, Bug: "x", CorrectRuns: 3}),
	}
	for _, r := range seeds {
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			f.Fatalf("seed save: %v", err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 12 {
			flipped := append([]byte(nil), buf.Bytes()...)
			flipped[buf.Len()/2] ^= 0x40
			f.Add(flipped)
			f.Add(buf.Bytes()[:buf.Len()-5])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("ACTV"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			t.Fatalf("re-saving accepted report: %v", err)
		}
		r2, err := Load(&buf)
		if err != nil {
			t.Fatalf("re-loading re-saved report: %v", err)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round-trip mismatch:\nfirst:  %+v\nsecond: %+v", r, r2)
		}
	})
}
