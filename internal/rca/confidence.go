package rca

import "act/internal/ranking"

// Confidence scoring. A verdict's raw score combines the signals the
// pipeline already computed — rank position, Correct-Set agreement,
// network-output margin, cross-run support — and a fixed piecewise-
// linear calibration map squashes the raw score toward the empirical
// correctness rate the calibration harness measures for scores in that
// region. The map is data-derived but checked in as a constant: a
// confidence must mean the same thing in every build, and the harness's
// expected-calibration-error metric is the regression test that keeps
// the constant honest.

// Raw-score weights. They sum to 1 so the raw score stays in [0, 1].
const (
	wRank   = 0.35 // 1/rank: the ranking strategy's own opinion
	wMatch  = 0.30 // matched prefix fraction: how long behaviour looked correct
	wMargin = 0.25 // how far below threshold the condemning output fell
	wRuns   = 0.10 // cross-run support (saturating)
)

// rawScore computes the uncalibrated score for ranked candidate i.
func rawScore(rank, matches, seqLen, runs int, output float64) float64 {
	s := wRank / float64(rank)
	if seqLen > 0 {
		f := float64(matches) / float64(seqLen)
		if f > 1 {
			f = 1
		}
		s += wMatch * f
	}
	// The network condemns below 0.5; an output of 0.0 is maximal
	// margin, 0.5 is a coin flip.
	m := (0.5 - output) / 0.5
	if m < 0 {
		m = 0
	} else if m > 1 {
		m = 1
	}
	s += wMargin * m
	s += wRuns * float64(runs) / float64(runs+2)
	return s
}

// calibTable maps raw-score knots to calibrated probabilities. Between
// knots the map interpolates linearly; outside, it clamps. The knots
// come from the harness run over all campaigns (EXPERIMENTS.md): raw
// scores near the top of the range correspond to top-1 verdicts that
// are nearly always correct, mid-range scores to roughly coin-flip
// accuracy, and the low range to deep-ranked candidates that rarely
// name the true site.
var calibTable = [...][2]float64{
	{0.00, 0.05},
	{0.20, 0.12},
	{0.40, 0.45},
	{0.55, 0.78},
	{0.70, 0.85},
	{0.85, 0.90},
	{1.00, 0.93},
}

// calibrate maps a raw score through the calibration table.
func calibrate(raw float64) float64 {
	t := calibTable[:]
	if raw <= t[0][0] {
		return t[0][1]
	}
	for i := 1; i < len(t); i++ {
		if raw <= t[i][0] {
			x0, y0 := t[i-1][0], t[i-1][1]
			x1, y1 := t[i][0], t[i][1]
			return y0 + (y1-y0)*(raw-x0)/(x1-x0)
		}
	}
	return t[len(t)-1][1]
}

// confidence scores ranked candidate i of rep. Unknown-kind verdicts
// (nothing classifiable in the window) are capped low regardless of
// rank: a verdict that cannot say what or where has no business being
// confident.
func confidence(rep *ranking.Report, i int, kind DefectKind) float64 {
	c := rep.Ranked[i]
	raw := rawScore(i+1, c.Matches, len(c.Entry.Seq), c.Runs, c.Entry.Output)
	conf := calibrate(raw)
	if kind == KindUnknown && conf > 0.2 {
		conf = 0.2
	}
	return conf
}

// CalibrationError computes the expected calibration error (ECE) of a
// set of (confidence, was-correct) observations over nbins equal-width
// bins: the support-weighted mean |accuracy − mean confidence| per bin.
// 0 is perfectly calibrated; the harness tracks it as a regression
// metric for calibTable.
func CalibrationError(conf []float64, correct []bool, nbins int) float64 {
	if len(conf) == 0 || len(conf) != len(correct) || nbins <= 0 {
		return 0
	}
	sums := make([]float64, nbins)
	hits := make([]float64, nbins)
	cnts := make([]float64, nbins)
	for i, c := range conf {
		b := int(c * float64(nbins))
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		sums[b] += c
		cnts[b]++
		if correct[i] {
			hits[b]++
		}
	}
	ece := 0.0
	total := float64(len(conf))
	for b := 0; b < nbins; b++ {
		if cnts[b] == 0 {
			continue
		}
		acc := hits[b] / cnts[b]
		avg := sums[b] / cnts[b]
		d := acc - avg
		if d < 0 {
			d = -d
		}
		ece += (cnts[b] / total) * d
	}
	return ece
}
