package rca

import (
	"fmt"
	"io"
)

// Write renders the report as the human-readable verdict listing
// actdiag and actrollup print. limit caps the verdicts shown; 0 shows
// all of them.
func (r *Report) Write(w io.Writer, limit int) {
	hdr := "rca"
	if r.Bug != "" {
		hdr += " " + r.Bug
	}
	fmt.Fprintf(w, "%s: %d entries, %d pruned, %d verdict(s)", hdr, r.Total, r.Pruned, len(r.Verdicts))
	if r.CorrectRuns > 0 {
		fmt.Fprintf(w, ", correct set from %d run(s)", r.CorrectRuns)
	}
	fmt.Fprintln(w)
	for i, v := range r.Verdicts {
		if limit > 0 && i >= limit {
			fmt.Fprintf(w, "... %d more\n", len(r.Verdicts)-limit)
			break
		}
		v.write(w)
	}
}

// write renders one verdict as an indented block.
func (v *Verdict) write(w io.Writer) {
	lock := ""
	if v.LockAdjacent {
		lock = ", lock-adjacent"
	}
	fmt.Fprintf(w, "%3d. %s (%s%s) conf=%.2f\n", v.Rank, v.Kind, v.Scope, lock, v.Confidence)
	fmt.Fprintf(w, "     site: %s\n", v.Site)
	fmt.Fprintf(w, "     evidence: matched=%d", v.Evidence.Matched)
	if v.Evidence.Runs > 0 {
		fmt.Fprintf(w, " runs=%d", v.Evidence.Runs)
	}
	fmt.Fprintf(w, " pruned-neighbors=%d window=%d dep(s)\n",
		v.Evidence.PrunedNeighbors, len(v.Evidence.Window))
	if len(v.Evidence.Trajectory) > 0 {
		fmt.Fprintf(w, "     trajectory:")
		for _, o := range v.Evidence.Trajectory {
			fmt.Fprintf(w, " %.3f", o)
		}
		fmt.Fprintln(w)
	}
}
