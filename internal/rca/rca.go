// Package rca turns ranked Debug Buffer sequences into structured,
// evidence-backed root-cause verdicts. The paper's postprocessing stops
// at "top-ranked sequence = root cause"; a ranked list is not a
// diagnosis. For each surviving candidate this package derives a
// defect-shape classification from the dependence pattern (inter- vs
// intra-thread, order- vs atomicity-violation shape, lock adjacency), a
// suspected component (thread, instruction addresses, nearest program
// marks), a calibrated confidence, and attached evidence: the dependence
// window itself, the network-output trajectory that condemned it, and
// how many near-miss neighbors the correct runs eliminated around it.
//
// Everything here is deterministic: the same ranked report and
// provenance always produce byte-identical verdicts, so a report can be
// regenerated, diffed, and shipped. The calibration harness
// (harness.go) replays the injected-bug campaigns — where ground-truth
// kind and site are known — and scores verdict accuracy, which CI
// asserts alongside overhead budgets.
package rca

import "fmt"

// DefectKind is the defect-shape classification of one candidate. It is
// derived purely from the candidate's dependence window, so the same
// window always classifies the same way. Annotated //act:exhaustive:
// every switch over a DefectKind must take a position on all kinds, so
// a new shape cannot be added without the renderer, the serializer, and
// the harness scorer each handling it.
//
//act:exhaustive
type DefectKind int

const (
	// KindUnknown: the window carries no usable dependences (all
	// padding) — nothing to classify.
	KindUnknown DefectKind = iota
	// KindOrder: an order violation — the suspected load received a
	// remote store outside the intended ordering, without the local
	// check-then-use context an atomicity violation leaves behind.
	KindOrder
	// KindAtomicity: an atomicity violation — the window shows a local
	// check and a nearby local use whose values came from adjacent
	// remote stores of the same thread: the remote update landed inside
	// a region the reader assumed atomic.
	KindAtomicity
	// KindSequential: every dependence in the window is intra-thread —
	// single-thread corruption (semantic or overflow bugs), not a
	// communication race.
	KindSequential
)

// kindNames maps kinds to their serialized and rendered names.
var kindNames = [...]string{
	KindUnknown:    "unknown",
	KindOrder:      "order-violation",
	KindAtomicity:  "atomicity-violation",
	KindSequential: "sequential",
}

// String names the kind as reports print it.
func (k DefectKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Kinds lists every defect kind in declaration order.
func Kinds() []DefectKind {
	return []DefectKind{KindUnknown, KindOrder, KindAtomicity, KindSequential}
}

// KindOfClass maps a workload bug class (workloads.Bug.Class) onto the
// kind a correct verdict must carry — the ground-truth side of the
// calibration harness. The classifier cannot see addresses, so the
// sequential classes ("semantic", "overflow") collapse into one kind.
func KindOfClass(class string) DefectKind {
	switch class {
	case "order":
		return KindOrder
	case "atomicity":
		return KindAtomicity
	case "semantic", "overflow":
		return KindSequential
	}
	return KindUnknown
}

// Scope says whether the suspected dependence crossed threads.
// Annotated //act:exhaustive like DefectKind.
//
//act:exhaustive
type Scope int

const (
	// ScopeUnknown: no usable dependence to inspect.
	ScopeUnknown Scope = iota
	// ScopeIntra: the suspected store and load ran on the same thread.
	ScopeIntra
	// ScopeInter: the suspected store came from another thread.
	ScopeInter
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case ScopeIntra:
		return "intra-thread"
	case ScopeInter:
		return "inter-thread"
	default:
		return "unknown"
	}
}

// Site is the suspected component: where the defect lives. Instruction
// addresses are always present; the symbolic names require program
// provenance and stay empty without it (e.g. verdicts computed on a
// rollup node from wire entries alone).
type Site struct {
	Proc    uint16 `json:"proc"`     // processor/module that logged the candidate
	Thread  int    `json:"thread"`   // thread executing the suspected load
	StorePC uint64 `json:"store_pc"` // suspected store instruction
	LoadPC  uint64 `json:"load_pc"`  // suspected load instruction
	// StoreSym/LoadSym name the nearest program mark at or before the
	// instruction, "mark" exactly at it or "mark+k" k instructions past
	// it — the analog of symbolizing an address against debug info.
	StoreSym string `json:"store_sym,omitempty"`
	LoadSym  string `json:"load_sym,omitempty"`
}

// String renders the site in the paper's S→L notation with symbols when
// known.
func (s Site) String() string {
	out := fmt.Sprintf("t%d %#x→%#x", s.Thread, s.StorePC, s.LoadPC)
	if s.StoreSym != "" || s.LoadSym != "" {
		out += fmt.Sprintf(" (%s→%s)", orPC(s.StoreSym, s.StorePC), orPC(s.LoadSym, s.LoadPC))
	}
	return out
}

func orPC(sym string, pc uint64) string {
	if sym != "" {
		return sym
	}
	return fmt.Sprintf("%#x", pc)
}

// Evidence is why the system believes a verdict: the raw material an
// operator checks before acting on it.
type Evidence struct {
	// Window is the dependence window that formed the candidate —
	// shared with the underlying ranked entry, oldest dependence first.
	Window []EvDep `json:"window"`
	// Trajectory is the module's recent network outputs when the entry
	// was logged, oldest first, ending with the condemning output. Nil
	// when the provenance (e.g. wire-decoded entries) did not carry it.
	Trajectory []float64 `json:"trajectory,omitempty"`
	// Matched counts the leading dependences of the window that agree
	// with the Correct Set — the paper's ranking signal.
	Matched int `json:"matched"`
	// Runs counts distinct failing runs that logged this sequence
	// (fleet aggregation); 0 in single-run reports.
	Runs int `json:"runs,omitempty"`
	// PrunedNeighbors counts Debug Buffer entries logged by the same
	// module within a few dependences of this one that the correct runs
	// eliminated: near-misses whose absence from the final ranking is
	// itself evidence the survivor is the anomaly.
	PrunedNeighbors int `json:"pruned_neighbors"`
}

// EvDep is one dependence of an evidence window, JSON-friendly.
type EvDep struct {
	S     uint64 `json:"s"`
	L     uint64 `json:"l"`
	Inter bool   `json:"inter,omitempty"`
}

// Verdict is one candidate's structured diagnosis.
type Verdict struct {
	// Rank is the candidate's 1-based position in the underlying ranked
	// report.
	Rank int        `json:"rank"`
	Kind DefectKind `json:"-"`
	// KindName mirrors Kind for JSON consumers.
	KindName string `json:"kind"`
	Scope    Scope  `json:"-"`
	// ScopeName mirrors Scope for JSON consumers.
	ScopeName string `json:"scope"`
	// LockAdjacent reports synchronization (lock/unlock/atomic)
	// instructions within a few instructions of the suspected store or
	// load — a race next to a lock usually means the wrong lock, or the
	// right lock around the wrong region.
	LockAdjacent bool     `json:"lock_adjacent"`
	Site         Site     `json:"site"`
	Confidence   float64  `json:"confidence"`
	Evidence     Evidence `json:"evidence"`
}
