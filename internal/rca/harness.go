package rca

import (
	"fmt"
	"sort"
	"strings"

	"act/internal/faults"
	"act/internal/workloads"
)

// Calibration harness: replay the injected-bug and real-bug campaigns —
// where the true defect class and root-cause site are known — and score
// the verdicts the engine emits against that ground truth. The harness
// is what makes diagnosis *accuracy* a tracked metric: per-kind
// precision/recall, top-1/top-3 site accuracy, and the expected
// calibration error of the confidence scores, all deterministic for a
// fixed config so CI can assert floors.

// HarnessConfig selects the labeled campaigns to replay.
type HarnessConfig struct {
	// Bugs are workload names (real bugs or "injected-<kernel>").
	// Empty means every real and injected bug.
	Bugs []string
	// Campaign parameterizes each bug's pipeline (training budgets,
	// correct-set size, failure seed); zero values take the faults
	// package defaults.
	Campaign faults.CampaignConfig
	// NewCode withholds the injected function from training for
	// injected-* bugs, the Table VI deployment scenario.
	NewCode bool
}

// AllHarnessBugs lists every labeled workload the harness can replay.
func AllHarnessBugs() []string {
	var out []string
	for _, b := range workloads.RealBugs() {
		out = append(out, b.Name)
	}
	for _, ib := range workloads.InjectedBugs() {
		out = append(out, ib.Name)
	}
	return out
}

// BugScore is one bug's verdict scorecard.
type BugScore struct {
	Bug   string `json:"bug"`
	Class string `json:"class"`
	// TrueKind/PredKind are the ground-truth and predicted defect
	// shapes. The prediction is read from the verdict covering the true
	// root cause when it was ranked (and within the verdict limit),
	// otherwise from the top verdict — a misranked site should not
	// excuse a wrong shape, nor hide a right one.
	TrueKind DefectKind `json:"-"`
	PredKind DefectKind `json:"-"`
	TrueName string     `json:"true_kind"`
	PredName string     `json:"pred_kind"`
	// RootRank is the true site's rank in the report (0 = missed).
	RootRank    int  `json:"root_rank"`
	DebugLen    int  `json:"debug_len"`
	Candidates  int  `json:"candidates"`
	KindCorrect bool `json:"kind_correct"`
	Top1Site    bool `json:"top1_site"`
	Top3Site    bool `json:"top3_site"`
	// Confidence is the top verdict's calibrated confidence; its
	// paired correctness label for the ECE is Top1Site && KindCorrect.
	Confidence float64 `json:"confidence"`
}

// KindScore is one defect kind's precision/recall over a harness run.
type KindScore struct {
	Kind      DefectKind `json:"-"`
	KindName  string     `json:"kind"`
	TP        int        `json:"tp"`
	FP        int        `json:"fp"`
	FN        int        `json:"fn"`
	Precision float64    `json:"precision"`
	Recall    float64    `json:"recall"`
}

// HarnessResult aggregates a full calibration run.
type HarnessResult struct {
	Scores []BugScore  `json:"bugs"`
	Kinds  []KindScore `json:"kinds"`
	// KindAccuracy is the fraction of bugs whose predicted kind matched.
	KindAccuracy float64 `json:"kind_accuracy"`
	// Top1Site/Top3Site are the fractions of bugs whose true site was
	// ranked first / within the top three.
	Top1Site float64 `json:"top1_site"`
	Top3Site float64 `json:"top3_site"`
	// ECE is the expected calibration error of the top-verdict
	// confidences against top-1 correctness, over 5 bins.
	ECE float64 `json:"calibration_error"`
}

// RunHarness replays each configured bug's pipeline, analyzes the
// ranked report, and scores the verdicts.
func RunHarness(cfg HarnessConfig) (*HarnessResult, error) {
	bugs := cfg.Bugs
	if len(bugs) == 0 {
		bugs = AllHarnessBugs()
	}
	res := &HarnessResult{}
	var confs []float64
	var correct []bool
	for _, name := range bugs {
		s, conf, ok, err := scoreBug(name, cfg)
		if err != nil {
			return nil, err
		}
		res.Scores = append(res.Scores, s)
		if ok {
			confs = append(confs, conf)
			correct = append(correct, s.Top1Site && s.KindCorrect)
		}
	}
	res.finish(confs, correct)
	return res, nil
}

// scoreBug runs one labeled pipeline and scores its report. The third
// return reports whether a top verdict existed (an empty ranking
// contributes no calibration pair).
func scoreBug(name string, cfg HarnessConfig) (BugScore, float64, bool, error) {
	ccfg := cfg.Campaign
	b, err := workloads.BugByName(name)
	if err != nil {
		return BugScore{}, 0, false, err
	}
	if cfg.NewCode && strings.HasPrefix(name, "injected-") {
		ib, err := workloads.InjectedBugByName(strings.TrimPrefix(name, "injected-"))
		if err != nil {
			return BugScore{}, 0, false, err
		}
		p, _ := ib.Gen(0)
		ccfg.Train.Exclude = ib.NewCodeFilter(p)
		b = ib.Bug
	}
	pipe, err := faults.BuildPipeline(b, ccfg)
	if err != nil {
		return BugScore{}, 0, false, fmt.Errorf("rca harness: %s: %w", name, err)
	}
	debug, _ := pipe.Deploy(nil, nil)
	rep := pipe.Rank(debug)
	rpt := Analyze(rep, Provenance{
		Program:     pipe.Fail.Program,
		Debug:       debug,
		CorrectRuns: pipe.CorrectSetRuns,
		Bug:         name,
	})

	rank := rep.RankOf(b.Matcher(pipe.Fail.Program))
	s := BugScore{
		Bug:        name,
		Class:      b.Class,
		TrueKind:   KindOfClass(b.Class),
		RootRank:   rank,
		DebugLen:   len(debug),
		Candidates: len(rep.Ranked),
		Top1Site:   rank == 1,
		Top3Site:   rank >= 1 && rank <= 3,
	}
	pred := KindUnknown
	if rank >= 1 && rank <= len(rpt.Verdicts) {
		pred = rpt.Verdicts[rank-1].Kind
	} else if top := rpt.Top(); top != nil {
		pred = top.Kind
	}
	s.PredKind = pred
	s.TrueName, s.PredName = s.TrueKind.String(), s.PredKind.String()
	s.KindCorrect = pred == s.TrueKind
	top := rpt.Top()
	if top == nil {
		return s, 0, false, nil
	}
	s.Confidence = top.Confidence
	return s, top.Confidence, true, nil
}

// finish computes the aggregate metrics from the per-bug scores.
func (r *HarnessResult) finish(confs []float64, correct []bool) {
	if len(r.Scores) == 0 {
		return
	}
	perKind := map[DefectKind]*KindScore{}
	at := func(k DefectKind) *KindScore {
		ks, ok := perKind[k]
		if !ok {
			ks = &KindScore{Kind: k, KindName: k.String()}
			perKind[k] = ks
		}
		return ks
	}
	nKind, n1, n3 := 0, 0, 0
	for _, s := range r.Scores {
		if s.KindCorrect {
			nKind++
			at(s.TrueKind).TP++
		} else {
			at(s.PredKind).FP++
			at(s.TrueKind).FN++
		}
		if s.Top1Site {
			n1++
		}
		if s.Top3Site {
			n3++
		}
	}
	total := float64(len(r.Scores))
	r.KindAccuracy = float64(nKind) / total
	r.Top1Site = float64(n1) / total
	r.Top3Site = float64(n3) / total
	for _, ks := range perKind {
		if ks.TP+ks.FP > 0 {
			ks.Precision = float64(ks.TP) / float64(ks.TP+ks.FP)
		}
		if ks.TP+ks.FN > 0 {
			ks.Recall = float64(ks.TP) / float64(ks.TP+ks.FN)
		}
		r.Kinds = append(r.Kinds, *ks)
	}
	sort.Slice(r.Kinds, func(i, j int) bool { return r.Kinds[i].Kind < r.Kinds[j].Kind })
	r.ECE = CalibrationError(confs, correct, 5)
}
