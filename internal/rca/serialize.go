package rca

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"act/internal/ranking"
)

// Verdict-file persistence. An RCA report is the artifact collectors
// ship upward, so it needs the same treatment ranking reports got: a
// framed, checksummed, versioned binary form that round-trips exactly.
// The ranking body embeds via ranking.AppendReport/DecodeReport; each
// verdict then references its candidate by rank, so dependence windows
// are stored once (inside the ranking body) and reconstructed on load.
//
//	magic "ACTV" | u16 version=1 | u16 reserved
//	u8 bug-name length | bug name
//	u32 correct runs
//	u32 ranking-body length | ranking body (ranking.AppendReport)
//	u32 verdict count
//	per verdict:
//	  u32 rank | u8 kind | u8 scope | u8 lock-adjacent
//	  u16 proc | u32 thread | u64 store PC | u64 load PC
//	  u8 store-sym length | store sym | u8 load-sym length | load sym
//	  f64 confidence
//	  u32 matched | u32 runs | u32 pruned neighbors
//	  u8 trajectory length | f64 per sample
//	u32 crc32(everything after the magic/version prologue)
//
// Trajectories are serialized per verdict because the embedded ranking
// body (the wire entry codec) deliberately does not carry them.

const (
	verdictMagic   = "ACTV"
	verdictVersion = 1
)

// Verdict-file errors.
var (
	ErrVerdictMagic   = errors.New("rca: not a verdict file")
	ErrVerdictVersion = errors.New("rca: unsupported verdict-file version")
	ErrVerdictCRC     = errors.New("rca: verdict body fails its checksum")
)

// appendBody serializes everything between the prologue and the CRC.
func (r *Report) appendBody(dst []byte) ([]byte, error) {
	var tmp [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		dst = append(dst, tmp[:4]...)
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		dst = append(dst, tmp[:]...)
	}
	str8 := func(s string) error {
		if len(s) > 255 {
			return fmt.Errorf("rca: string %q exceeds 255 bytes", s[:16]+"…")
		}
		dst = append(dst, byte(len(s)))
		dst = append(dst, s...)
		return nil
	}
	if err := str8(r.Bug); err != nil {
		return nil, err
	}
	u32(uint32(r.CorrectRuns))
	ranked := r.Ranked
	if ranked == nil {
		ranked = &ranking.Report{Total: r.Total, Pruned: r.Pruned}
	}
	body := ranked.AppendReport(nil)
	u32(uint32(len(body)))
	dst = append(dst, body...)
	u32(uint32(len(r.Verdicts)))
	for i, v := range r.Verdicts {
		if v.Rank < 1 || v.Rank > len(ranked.Ranked) {
			return nil, fmt.Errorf("rca: verdict %d has rank %d outside ranked set of %d", i, v.Rank, len(ranked.Ranked))
		}
		u32(uint32(v.Rank))
		dst = append(dst, byte(v.Kind), byte(v.Scope), b2u8(v.LockAdjacent))
		binary.LittleEndian.PutUint16(tmp[:2], v.Site.Proc)
		dst = append(dst, tmp[:2]...)
		u32(uint32(v.Site.Thread))
		u64(v.Site.StorePC)
		u64(v.Site.LoadPC)
		if err := str8(v.Site.StoreSym); err != nil {
			return nil, err
		}
		if err := str8(v.Site.LoadSym); err != nil {
			return nil, err
		}
		u64(math.Float64bits(v.Confidence))
		u32(uint32(v.Evidence.Matched))
		u32(uint32(v.Evidence.Runs))
		u32(uint32(v.Evidence.PrunedNeighbors))
		if len(v.Evidence.Trajectory) > 255 {
			return nil, fmt.Errorf("rca: verdict %d trajectory of %d samples exceeds 255", i, len(v.Evidence.Trajectory))
		}
		dst = append(dst, byte(len(v.Evidence.Trajectory)))
		for _, o := range v.Evidence.Trajectory {
			u64(math.Float64bits(o))
		}
	}
	return dst, nil
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Save writes the report in the framed verdict format. Save is
// canonical for engine-produced reports: saving, loading, and saving
// again yields byte-identical output.
func (r *Report) Save(w io.Writer) error {
	body, err := r.appendBody(make([]byte, 0, 256+len(r.Verdicts)*128))
	if err != nil {
		return err
	}
	out := append([]byte(verdictMagic), 0, 0, 0, 0)
	binary.LittleEndian.PutUint16(out[4:], verdictVersion)
	out = append(out, body...)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], crc32.ChecksumIEEE(body))
	out = append(out, tmp[:]...)
	_, err = w.Write(out)
	return err
}

// Load reads a report written by Save, verifying the checksum and every
// enum and rank reference. Verdict windows are reconstructed from the
// embedded ranking body; trajectories come from the verdict records.
func Load(rd io.Reader) (*Report, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	if len(data) < 8+1+4+4+4+4 {
		return nil, fmt.Errorf("%w (only %d bytes)", ErrVerdictMagic, len(data))
	}
	if string(data[:4]) != verdictMagic {
		return nil, ErrVerdictMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != verdictVersion {
		return nil, fmt.Errorf("%w %d", ErrVerdictVersion, v)
	}
	body, sum := data[8:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrVerdictCRC
	}
	return decodeBody(body)
}

func decodeBody(body []byte) (*Report, error) {
	off := 0
	need := func(n int, what string) error {
		if len(body)-off < n {
			return fmt.Errorf("rca: verdict file truncated in %s", what)
		}
		return nil
	}
	rdU32 := func() uint32 {
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v
	}
	rdU64 := func() uint64 {
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v
	}
	rdStr8 := func(what string) (string, error) {
		if err := need(1, what); err != nil {
			return "", err
		}
		n := int(body[off])
		off++
		if err := need(n, what); err != nil {
			return "", err
		}
		s := string(body[off : off+n])
		off += n
		return s, nil
	}

	r := &Report{}
	var err error
	if r.Bug, err = rdStr8("bug name"); err != nil {
		return nil, err
	}
	if err := need(8, "header"); err != nil {
		return nil, err
	}
	r.CorrectRuns = int(rdU32())
	rlen := int(rdU32())
	if err := need(rlen, "ranking body"); err != nil {
		return nil, err
	}
	ranked, n, err := ranking.DecodeReport(body[off : off+rlen])
	if err != nil {
		return nil, err
	}
	if n != rlen {
		return nil, fmt.Errorf("rca: %d trailing bytes in ranking body", rlen-n)
	}
	off += rlen
	// Network outputs are probabilities; NaN is corruption the entry
	// codec cannot flag on its own (any 8 bytes decode as a float).
	// Reject it here so accepted files always round-trip exactly —
	// NaN compares unequal to itself and would poison diffing.
	for i, c := range ranked.Ranked {
		if math.IsNaN(c.Entry.Output) {
			return nil, fmt.Errorf("rca: candidate %d has NaN output", i)
		}
	}
	r.Ranked = ranked
	r.Total, r.Pruned = ranked.Total, ranked.Pruned

	if err := need(4, "verdict count"); err != nil {
		return nil, err
	}
	count := int(rdU32())
	for i := 0; i < count; i++ {
		if err := need(4+3+2+4+8+8, "verdict"); err != nil {
			return nil, err
		}
		var v Verdict
		v.Rank = int(rdU32())
		if v.Rank < 1 || v.Rank > len(ranked.Ranked) {
			return nil, fmt.Errorf("rca: verdict %d rank %d outside ranked set of %d", i, v.Rank, len(ranked.Ranked))
		}
		v.Kind = DefectKind(body[off])
		v.Scope = Scope(body[off+1])
		la := body[off+2]
		off += 3
		if v.Kind < KindUnknown || v.Kind > KindSequential {
			return nil, fmt.Errorf("rca: verdict %d has invalid kind %d", i, int(v.Kind))
		}
		if v.Scope < ScopeUnknown || v.Scope > ScopeInter {
			return nil, fmt.Errorf("rca: verdict %d has invalid scope %d", i, int(v.Scope))
		}
		if la > 1 {
			return nil, fmt.Errorf("rca: verdict %d has invalid lock-adjacent flag %d", i, la)
		}
		v.KindName, v.ScopeName = v.Kind.String(), v.Scope.String()
		v.LockAdjacent = la == 1
		v.Site.Proc = binary.LittleEndian.Uint16(body[off:])
		off += 2
		v.Site.Thread = int(rdU32())
		v.Site.StorePC = rdU64()
		v.Site.LoadPC = rdU64()
		if v.Site.StoreSym, err = rdStr8("store sym"); err != nil {
			return nil, err
		}
		if v.Site.LoadSym, err = rdStr8("load sym"); err != nil {
			return nil, err
		}
		if err := need(8+12+1, "verdict evidence"); err != nil {
			return nil, err
		}
		v.Confidence = math.Float64frombits(rdU64())
		if math.IsNaN(v.Confidence) || v.Confidence < 0 || v.Confidence > 1 {
			return nil, fmt.Errorf("rca: verdict %d has confidence outside [0,1]", i)
		}
		v.Evidence.Matched = int(rdU32())
		v.Evidence.Runs = int(rdU32())
		v.Evidence.PrunedNeighbors = int(rdU32())
		tn := int(body[off])
		off++
		if err := need(8*tn, "trajectory"); err != nil {
			return nil, err
		}
		if tn > 0 {
			v.Evidence.Trajectory = make([]float64, tn)
			for j := 0; j < tn; j++ {
				o := math.Float64frombits(rdU64())
				if math.IsNaN(o) {
					return nil, fmt.Errorf("rca: verdict %d trajectory sample %d is NaN", i, j)
				}
				v.Evidence.Trajectory[j] = o
			}
		}
		// The window is stored once, in the ranking body.
		v.Evidence.Window = evWindow(ranked.Ranked[v.Rank-1].Entry.Seq)
		r.Verdicts = append(r.Verdicts, v)
	}
	if off != len(body) {
		return nil, fmt.Errorf("rca: %d trailing bytes after verdicts", len(body)-off)
	}
	return r, nil
}
