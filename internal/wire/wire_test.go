package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"act/internal/core"
	"act/internal/deps"
)

func testBatch(run, seq uint64, n int) *Batch {
	rng := rand.New(rand.NewSource(int64(run*1000 + seq)))
	b := &Batch{
		Agent:   "host-7",
		Run:     run,
		Seq:     seq,
		Outcome: OutcomeFailing,
		Stats:   core.Stats{Deps: 12345, Sequences: 12000, PredictedInvalid: uint64(n), Updates: 7},
	}
	for i := 0; i < n; i++ {
		e := core.DebugEntry{
			Output: rng.Float64() / 2,
			At:     uint64(100 + i),
			Mode:   core.Testing,
			Proc:   uint16(i % 4),
			Seq: deps.Sequence{
				{S: rng.Uint64(), L: rng.Uint64(), Inter: i%2 == 0},
				{S: rng.Uint64(), L: rng.Uint64()},
				{S: rng.Uint64(), L: rng.Uint64(), Inter: true},
			},
		}
		b.Entries = append(b.Entries, e)
	}
	return b
}

func TestBatchRoundTrip(t *testing.T) {
	want := testBatch(3, 9, 17)
	p, err := EncodeBatch(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestEmptyBatchRoundTrip(t *testing.T) {
	want := &Batch{Agent: "", Run: 1, Seq: 0, Outcome: OutcomeUnknown}
	p, err := EncodeBatch(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Run != 1 || len(got.Entries) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	var want []*Batch
	for i := 0; i < 5; i++ {
		b := testBatch(1, uint64(i), i*3)
		want = append(want, b)
		if err := wr.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf, 0)
	for i, w := range want {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !reflect.DeepEqual(w, got) {
			t.Fatalf("batch %d mismatch", i)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if rep := rd.Report(); rep.Corrupt() || rep.Frames != 5 {
		t.Fatalf("clean stream reported %+v", rep)
	}
}

// encodeStream serializes batches into one wire stream.
func encodeStream(batches ...*Batch) []byte {
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	for _, b := range batches {
		if err := wr.WriteBatch(b); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// readAll drains a stream, returning the surviving batches.
func readAll(t *testing.T, data []byte) ([]*Batch, StreamReport) {
	t.Helper()
	rd := NewReader(bytes.NewReader(data), 0)
	var out []*Batch
	for {
		b, err := rd.Next()
		if err == io.EOF {
			return out, rd.Report()
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, b)
	}
}

func TestResyncAfterCorruptFrame(t *testing.T) {
	b0, b1, b2 := testBatch(1, 0, 4), testBatch(1, 1, 4), testBatch(1, 2, 4)
	data := encodeStream(b0, b1, b2)

	// Find and damage the middle frame: flip a byte well inside it.
	frames := frameOffsets(data)
	if len(frames) != 3 {
		t.Fatalf("found %d frames", len(frames))
	}
	data[frames[1]+10] ^= 0xFF

	got, rep := readAll(t, data)
	if len(got) != 2 {
		t.Fatalf("recovered %d batches, want 2", len(got))
	}
	if got[0].Seq != 0 || got[1].Seq != 2 {
		t.Fatalf("survivors %d and %d, want 0 and 2", got[0].Seq, got[1].Seq)
	}
	if rep.BadSpans == 0 || rep.SkippedBytes == 0 {
		t.Fatalf("no damage reported: %+v", rep)
	}
}

func TestTruncatedTail(t *testing.T) {
	data := encodeStream(testBatch(1, 0, 4), testBatch(1, 1, 4))
	got, rep := readAll(t, data[:len(data)-7]) // cut inside the last frame
	if len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("got %d batches", len(got))
	}
	if !rep.Truncated {
		t.Fatalf("truncation not reported: %+v", rep)
	}
}

func TestGarbagePrefixBetweenFrames(t *testing.T) {
	s0 := encodeStream(testBatch(1, 0, 2))
	s1 := encodeStream(testBatch(1, 1, 2)) // second stream minus prologue
	junk := []byte{sync0, sync1, 0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x11}
	data := append(append(append([]byte{}, s0...), junk...), s1[prologueLen:]...)
	got, rep := readAll(t, data)
	if len(got) != 2 {
		t.Fatalf("recovered %d batches, want 2", len(got))
	}
	if rep.SkippedBytes == 0 {
		t.Fatalf("junk not counted: %+v", rep)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	huge := AppendFrame(AppendPrologue(nil), MsgBatch, make([]byte, 100))
	// Forge the declared length far past the cap; reader must not stall.
	huge[prologueLen+3] = 0xFF
	huge[prologueLen+4] = 0xFF
	huge[prologueLen+5] = 0xFF
	huge[prologueLen+6] = 0x7F
	rd := NewReader(bytes.NewReader(huge), 1<<10)
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestUnknownFrameTypeSkipped(t *testing.T) {
	data := AppendPrologue(nil)
	data = AppendFrame(data, 42, []byte("future message"))
	var err error
	p, err := EncodeBatch(nil, testBatch(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	data = AppendFrame(data, MsgBatch, p)
	got, rep := readAll(t, data)
	if len(got) != 1 {
		t.Fatalf("recovered %d batches, want 1", len(got))
	}
	if rep.Unknown != 1 || rep.Corrupt() {
		t.Fatalf("report %+v", rep)
	}
}

func TestBadMagic(t *testing.T) {
	rd := NewReader(bytes.NewReader([]byte("NOTW\x01\x00\x00\x00")), 0)
	if _, err := rd.Next(); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestBatchKeyDistinguishes(t *testing.T) {
	a := &Batch{Agent: "a", Run: 1, Seq: 2}
	keys := map[uint64]bool{a.Key(): true}
	for _, b := range []*Batch{
		{Agent: "a", Run: 1, Seq: 3},
		{Agent: "a", Run: 2, Seq: 2},
		{Agent: "b", Run: 1, Seq: 2},
	} {
		if keys[b.Key()] {
			t.Fatalf("key collision for %+v", b)
		}
		keys[b.Key()] = true
	}
	dup := &Batch{Agent: "a", Run: 1, Seq: 2, Entries: testBatch(1, 1, 1).Entries}
	if dup.Key() != a.Key() {
		t.Fatal("key must depend only on (agent, run, seq)")
	}
	if a.RunKey() != dup.RunKey() {
		t.Fatal("run key mismatch for same run")
	}
	if a.RunKey() == (&Batch{Agent: "a", Run: 2}).RunKey() {
		t.Fatal("run key must distinguish runs")
	}
}

// frameOffsets scans a clean stream for frame starts (test helper; it
// trusts the stream was produced by Writer, so sync bytes inside
// payloads do not occur at scan positions).
func frameOffsets(data []byte) []int {
	var out []int
	i := prologueLen
	for i+frameHdr <= len(data) {
		if data[i] != sync0 || data[i+1] != sync1 {
			break
		}
		out = append(out, i)
		plen := int(uint32(data[i+3]) | uint32(data[i+4])<<8 | uint32(data[i+5])<<16 | uint32(data[i+6])<<24)
		i += frameHdr + plen + frameTail
	}
	return out
}

// TestStateFrameRoundTrip: a mixed stream of MsgState and MsgBatch
// frames survives the frame-level reader — what a rollup node consumes
// when a shard daemon pushes its state alongside directly-shipped
// batches — and a damaged state frame is skipped without derailing the
// frames after it.
func TestStateFrameRoundTrip(t *testing.T) {
	state := []byte("opaque-collector-state-bytes")
	payload, err := EncodeStateMsg(nil, "shard1", state)
	if err != nil {
		t.Fatal(err)
	}
	b := testBatch(3, 0, 2)

	var buf bytes.Buffer
	wr := NewWriter(&buf)
	if err := wr.WriteFrame(MsgState, payload); err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteBatch(b); err != nil {
		t.Fatal(err)
	}

	rd := NewReader(bytes.NewReader(buf.Bytes()), 0)
	typ, p, err := rd.NextFrame()
	if err != nil || typ != MsgState {
		t.Fatalf("first frame: type %v, err %v", typ, err)
	}
	shard, got, err := DecodeStateMsg(p)
	if err != nil || shard != "shard1" || !bytes.Equal(got, state) {
		t.Fatalf("state round trip: shard %q, state %q, err %v", shard, got, err)
	}
	typ, p, err = rd.NextFrame()
	if err != nil || typ != MsgBatch {
		t.Fatalf("second frame: type %v, err %v", typ, err)
	}
	rt, err := DecodeBatch(p)
	if err != nil || !reflect.DeepEqual(rt, b) {
		t.Fatalf("batch after state frame damaged: %v", err)
	}
	if _, _, err := rd.NextFrame(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}

	// A bit flip inside the state frame fails its CRC; the reader
	// resyncs and still delivers the batch behind it.
	data := append([]byte(nil), buf.Bytes()...)
	offs := frameOffsets(data)
	data[offs[0]+frameHdr+4] ^= 0x20
	rd = NewReader(bytes.NewReader(data), 0)
	typ, p, err = rd.NextFrame()
	if err != nil || typ != MsgBatch {
		t.Fatalf("frame after damaged state: type %v, err %v", typ, err)
	}
	if _, err := DecodeBatch(p); err != nil {
		t.Fatal(err)
	}
	if rep := rd.Report(); rep.BadSpans == 0 || rep.SkippedBytes == 0 {
		t.Fatalf("damage not surfaced: %+v", rep)
	}

	// Truncated payloads are decode errors, not panics or aliasing bugs.
	if _, _, err := DecodeStateMsg(payload[:1]); err == nil {
		t.Fatal("1-byte state payload accepted")
	}
	if _, _, err := DecodeStateMsg(payload[:2+3]); err == nil {
		t.Fatal("truncated shard name accepted")
	}
}

func FuzzReaderNeverPanics(f *testing.F) {
	f.Add(encodeStream(testBatch(1, 0, 3)))
	f.Add([]byte("ACTW\x01\x00\x00\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data), 1<<16)
		for i := 0; i < 1000; i++ {
			if _, err := rd.Next(); err != nil {
				return
			}
		}
	})
}
