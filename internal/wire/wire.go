// Package wire is the fleet-telemetry encoding: a versioned, CRC-framed
// binary format for shipping Debug Buffer entries and monitor statistics
// from production agents to a central collector. It reuses the
// sync-byte/skip-and-resync discipline of trace format v3 (see
// internal/trace): every frame is self-delimiting and individually
// checksummed, so a torn TCP segment, a crash mid-write, or a corrupted
// spool file costs only the damaged frames, never the stream.
//
// Stream layout:
//
//	prologue: magic "ACTW" | u16 version=1 | u16 reserved
//	frames:   sync 0xB7 0x7B | u8 type | u32 payload length | payload |
//	          u32 crc32(type | length | payload)
//
// All integers are little-endian; CRCs are IEEE CRC32. The CRC covers
// the type and length bytes too, so a corrupted length cannot trick the
// reader into swallowing a valid successor frame.
//
// The only payload type today is a Batch (type 1): one agent's drained
// Debug Buffer entries plus a monitor-stats snapshot, tagged with the
// agent's identity, a run id, a per-run batch sequence number (the
// collector's dedup key) and the run's outcome. Unknown frame types are
// skipped whole, so the format can grow without breaking old collectors.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"act/internal/core"
	"act/internal/deps"
)

// Format constants.
const (
	Magic   = "ACTW"
	Version = 1

	sync0, sync1 = 0xB7, 0x7B

	prologueLen = 4 + 2 + 2
	frameHdr    = 2 + 1 + 4 // sync pair, type byte, payload length
	frameTail   = 4         // crc32

	// DefaultMaxPayload caps a frame's payload. The reader rejects
	// larger declared lengths outright (a corrupted length field would
	// otherwise stall resynchronization behind a bogus multi-gigabyte
	// read), and writers split their entries so no batch exceeds it.
	DefaultMaxPayload = 256 << 10

	// maxSeqLen bounds a serialized sequence; real sequences are N<=5.
	maxSeqLen = 255
)

// MsgType discriminates frame payloads. The type is annotated
// //act:exhaustive: actlint requires every switch over it to either
// cover all declared frame types or carry an explicit default, so a
// new frame type cannot be added without every dispatch site taking a
// position on it.
//
//act:exhaustive
type MsgType byte

// Frame types.
const (
	// MsgBatch is a drained Debug Buffer batch plus a stats snapshot.
	MsgBatch MsgType = 1
	// MsgState is one collector shard's exported aggregate state,
	// forwarded up the rollup tier: u16 shard-name length | name |
	// state bytes (the fleet collector's snapshot encoding). Collectors
	// that predate the rollup tier skip it as an unknown frame.
	MsgState MsgType = 2
)

// Outcome labels the run a batch was drained from. Agents start Unknown,
// flip to Failing when the monitored program crashes or to Correct when
// it exits clean; the collector's cross-run ranking weighs entries by
// how many failing versus correct runs logged them. Annotated
// //act:exhaustive: every switch over an Outcome must take a position
// on all three labels (or default explicitly).
//
//act:exhaustive
type Outcome uint8

// Run outcomes.
const (
	OutcomeUnknown Outcome = iota
	OutcomeCorrect
	OutcomeFailing
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeCorrect:
		return "correct"
	case OutcomeFailing:
		return "failing"
	default:
		return "unknown"
	}
}

// Batch is one shipment: the entries an agent drained from its Debug
// Buffers since the previous batch, plus a cumulative stats snapshot.
type Batch struct {
	Agent   string  // agent identity (host, pod, ...)
	Run     uint64  // one monitored execution; unique per agent
	Seq     uint64  // batch sequence number within the run, from 0
	Outcome Outcome // the run's outcome as known at drain time
	Stats   core.Stats
	Entries []core.DebugEntry
}

// Key returns the batch's dedup hash: FNV-1a over (agent, run, sequence
// number). An at-least-once transport re-delivers whole batches — after
// a retry, a replayed spool, a duplicated segment — and the collector
// drops every key it has already ingested.
func (b *Batch) Key() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(b.Agent); i++ {
		h = (h ^ uint64(b.Agent[i])) * prime64
	}
	var tmp [16]byte
	binary.LittleEndian.PutUint64(tmp[0:], b.Run)
	binary.LittleEndian.PutUint64(tmp[8:], b.Seq)
	for _, c := range tmp {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// RunKey hashes (agent, run) alone — the collector's per-run identity
// for cross-run occurrence counting.
func (b *Batch) RunKey() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(b.Agent); i++ {
		h = (h ^ uint64(b.Agent[i])) * prime64
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], b.Run)
	for _, c := range tmp {
		h = (h ^ uint64(c)) * prime64
	}
	return h
}

// AppendEntry serializes one Debug Buffer entry:
// u16 proc | u64 at | f64 output | u8 mode | u8 seqlen | deps, each
// u64 S | u64 L | u8 flags (bit 0 = inter-thread).
func AppendEntry(dst []byte, e core.DebugEntry) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], e.Proc)
	dst = append(dst, tmp[:2]...)
	binary.LittleEndian.PutUint64(tmp[:], e.At)
	dst = append(dst, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(e.Output))
	dst = append(dst, tmp[:]...)
	dst = append(dst, byte(e.Mode), byte(len(e.Seq)))
	for _, d := range e.Seq {
		binary.LittleEndian.PutUint64(tmp[:], d.S)
		dst = append(dst, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], d.L)
		dst = append(dst, tmp[:]...)
		var flags byte
		if d.Inter {
			flags |= 1
		}
		dst = append(dst, flags)
	}
	return dst
}

// entryFixed is the encoded size of an entry before its dependences.
const entryFixed = 2 + 8 + 8 + 1 + 1

// depSize is the encoded size of one dependence.
const depSize = 8 + 8 + 1

// DecodeEntry reads one entry from b, returning it and the bytes
// consumed. The decoded entry shares nothing with b.
func DecodeEntry(b []byte) (core.DebugEntry, int, error) {
	var e core.DebugEntry
	if len(b) < entryFixed {
		return e, 0, fmt.Errorf("wire: entry truncated at %d bytes", len(b))
	}
	e.Proc = binary.LittleEndian.Uint16(b[0:])
	e.At = binary.LittleEndian.Uint64(b[2:])
	e.Output = math.Float64frombits(binary.LittleEndian.Uint64(b[10:]))
	e.Mode = core.Mode(b[18])
	n := int(b[19])
	if len(b) < entryFixed+n*depSize {
		return e, 0, fmt.Errorf("wire: entry with %d deps truncated at %d bytes", n, len(b))
	}
	e.Seq = make(deps.Sequence, n)
	off := entryFixed
	for i := 0; i < n; i++ {
		e.Seq[i] = deps.Dep{
			S:     binary.LittleEndian.Uint64(b[off:]),
			L:     binary.LittleEndian.Uint64(b[off+8:]),
			Inter: b[off+16]&1 != 0,
		}
		off += depSize
	}
	return e, off, nil
}

// EntrySize returns the encoded size of an entry.
func EntrySize(e core.DebugEntry) int { return entryFixed + len(e.Seq)*depSize }

// AppendStats serializes the stats snapshot as eight u64 counters.
func AppendStats(dst []byte, s core.Stats) []byte {
	var tmp [8]byte
	for _, v := range [...]uint64{s.Deps, s.Sequences, s.PredictedInvalid,
		s.Updates, s.ModeSwitches, s.TrainingDeps, s.Snapshots, s.Recoveries} {
		binary.LittleEndian.PutUint64(tmp[:], v)
		dst = append(dst, tmp[:]...)
	}
	return dst
}

// statsSize is the encoded size of a Stats snapshot.
const statsSize = 8 * 8

// DecodeStats reads a stats snapshot.
func DecodeStats(b []byte) (core.Stats, int, error) {
	if len(b) < statsSize {
		return core.Stats{}, 0, fmt.Errorf("wire: stats truncated at %d bytes", len(b))
	}
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }
	return core.Stats{
		Deps: u(0), Sequences: u(1), PredictedInvalid: u(2), Updates: u(3),
		ModeSwitches: u(4), TrainingDeps: u(5), Snapshots: u(6), Recoveries: u(7),
	}, statsSize, nil
}

// EncodeBatch serializes a batch payload:
// u16 agent length | agent | u64 run | u64 seq | u8 outcome | stats |
// u32 entry count | entries.
func EncodeBatch(dst []byte, b *Batch) ([]byte, error) {
	if len(b.Agent) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: agent name %d bytes long", len(b.Agent))
	}
	for i, e := range b.Entries {
		if len(e.Seq) > maxSeqLen {
			return nil, fmt.Errorf("wire: entry %d sequence length %d exceeds %d", i, len(e.Seq), maxSeqLen)
		}
	}
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(b.Agent)))
	dst = append(dst, tmp[:2]...)
	dst = append(dst, b.Agent...)
	binary.LittleEndian.PutUint64(tmp[:], b.Run)
	dst = append(dst, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], b.Seq)
	dst = append(dst, tmp[:]...)
	dst = append(dst, byte(b.Outcome))
	dst = AppendStats(dst, b.Stats)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(b.Entries)))
	dst = append(dst, tmp[:4]...)
	for _, e := range b.Entries {
		dst = AppendEntry(dst, e)
	}
	return dst, nil
}

// DecodeBatch parses a batch payload. The result shares no memory with
// the input, so callers may decode out of a transient read buffer.
func DecodeBatch(p []byte) (*Batch, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("wire: batch payload %d bytes", len(p))
	}
	alen := int(binary.LittleEndian.Uint16(p))
	off := 2
	if len(p) < off+alen+8+8+1+statsSize+4 {
		return nil, fmt.Errorf("wire: batch truncated at %d bytes", len(p))
	}
	b := &Batch{Agent: string(p[off : off+alen])}
	off += alen
	b.Run = binary.LittleEndian.Uint64(p[off:])
	b.Seq = binary.LittleEndian.Uint64(p[off+8:])
	b.Outcome = Outcome(p[off+16])
	off += 17
	s, n, err := DecodeStats(p[off:])
	if err != nil {
		return nil, err
	}
	b.Stats = s
	off += n
	count := int(binary.LittleEndian.Uint32(p[off:]))
	off += 4
	if count > len(p)-off { // each entry takes at least one byte
		return nil, fmt.Errorf("wire: batch declares %d entries in %d bytes", count, len(p)-off)
	}
	if count > 0 {
		b.Entries = make([]core.DebugEntry, 0, count)
	}
	for i := 0; i < count; i++ {
		e, n, err := DecodeEntry(p[off:])
		if err != nil {
			return nil, fmt.Errorf("wire: entry %d: %w", i, err)
		}
		b.Entries = append(b.Entries, e)
		off += n
	}
	if off != len(p) {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch", len(p)-off)
	}
	return b, nil
}

// AppendFrame wraps a payload in a checksummed frame.
func AppendFrame(dst []byte, typ MsgType, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, sync0, sync1, byte(typ))
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(payload)))
	dst = append(dst, tmp[:]...)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start+2:]) // type | length | payload
	binary.LittleEndian.PutUint32(tmp[:], crc)
	return append(dst, tmp[:]...)
}

// AppendPrologue writes the stream prologue.
func AppendPrologue(dst []byte) []byte {
	dst = append(dst, Magic...)
	var tmp [4]byte
	binary.LittleEndian.PutUint16(tmp[0:], Version)
	return append(dst, tmp[:]...)
}

// EncodeStateMsg serializes a MsgState payload: a shard's name plus its
// opaque exported aggregate state (the fleet collector's snapshot
// encoding, checksummed internally).
func EncodeStateMsg(dst []byte, shard string, state []byte) ([]byte, error) {
	if len(shard) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: shard name %d bytes long", len(shard))
	}
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(shard)))
	dst = append(dst, tmp[:]...)
	dst = append(dst, shard...)
	return append(dst, state...), nil
}

// DecodeStateMsg parses a MsgState payload. The returned state aliases
// p; copy it if the frame buffer will be reused.
func DecodeStateMsg(p []byte) (shard string, state []byte, err error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("wire: state payload %d bytes", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+n {
		return "", nil, fmt.Errorf("wire: state payload truncated at %d bytes", len(p))
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}
