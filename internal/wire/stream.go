package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Stream errors. ErrBadMagic and ErrBadVersion mean the peer is not
// speaking this protocol at all — permanent failures no retry fixes.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
)

// IsProtocolError reports whether err marks a peer that does not speak
// this protocol — the permanent class in retry classification.
func IsProtocolError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrBadVersion)
}

// Writer emits a wire stream: the prologue once, then one frame per
// batch. A Writer is created per connection (or per spool file); it is
// not safe for concurrent use.
type Writer struct {
	w        io.Writer
	buf      []byte
	payload  []byte
	prologue bool // already written
}

// NewWriter returns a Writer that emits the prologue before its first
// frame.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// NewRawWriter returns a Writer that emits frames only — for appending
// to a stream (e.g. a spool file) whose prologue already exists.
func NewRawWriter(w io.Writer) *Writer { return &Writer{w: w, prologue: true} }

// WriteBatch frames and writes one batch.
func (wr *Writer) WriteBatch(b *Batch) error {
	var err error
	wr.payload, err = EncodeBatch(wr.payload[:0], b)
	if err != nil {
		return err
	}
	return wr.WriteFrame(MsgBatch, wr.payload)
}

// WriteFrame frames and writes one payload of the given type — the
// generic form behind WriteBatch, used for non-batch frames (a shard's
// MsgState push). The prologue is emitted before the first frame.
func (wr *Writer) WriteFrame(typ MsgType, payload []byte) error {
	wr.buf = wr.buf[:0]
	if !wr.prologue {
		wr.buf = AppendPrologue(wr.buf)
	}
	wr.buf = AppendFrame(wr.buf, typ, payload)
	if _, err := wr.w.Write(wr.buf); err != nil {
		return err
	}
	wr.prologue = true
	return nil
}

// StreamReport counts what a Reader survived — the transport-level
// counterpart of trace.CorruptionReport.
type StreamReport struct {
	Frames       int   // frames that decoded cleanly
	BadSpans     int   // contiguous corrupt byte runs skipped during resync
	SkippedBytes int64 // bytes discarded while resynchronizing
	Unknown      int   // well-formed frames of unknown type (skipped)
	Truncated    bool  // stream ended inside a frame
}

// Corrupt reports whether any damage was observed.
func (r *StreamReport) Corrupt() bool {
	return r.BadSpans > 0 || r.SkippedBytes > 0 || r.Truncated
}

// String summarizes the report for logs.
func (r *StreamReport) String() string {
	s := fmt.Sprintf("%d frames", r.Frames)
	if r.Corrupt() {
		s += fmt.Sprintf(", %d corrupt spans, %d bytes skipped", r.BadSpans, r.SkippedBytes)
		if r.Truncated {
			s += ", truncated"
		}
	}
	return s
}

// Reader consumes a wire stream with skip-and-resync recovery: a frame
// that fails its CRC costs one resynchronization scan, not the
// connection. Frames larger than the payload cap are treated as
// corruption — the cap is the per-connection memory bound.
type Reader struct {
	br         *bufio.Reader
	maxPayload int
	rep        StreamReport
	payload    []byte // NextFrame's reusable payload copy
	prologue   bool   // already consumed
	inBad      bool
}

// NewReader wraps r. maxPayload caps accepted frame payloads; 0 means
// DefaultMaxPayload.
func NewReader(r io.Reader, maxPayload int) *Reader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &Reader{
		// The buffer must hold a whole frame: resync peeks at full
		// frames before consuming them.
		br:         bufio.NewReaderSize(r, maxPayload+frameHdr+frameTail),
		maxPayload: maxPayload,
	}
}

// Report returns the damage counters accumulated so far.
func (rd *Reader) Report() StreamReport { return rd.rep }

// skip discards n bytes as corruption.
func (rd *Reader) skip(n int) {
	rd.br.Discard(n)
	rd.rep.SkippedBytes += int64(n)
	if !rd.inBad {
		rd.rep.BadSpans++
		rd.inBad = true
	}
}

// Next returns the next cleanly-decoded batch. At end of stream it
// returns io.EOF; a stream ending inside a frame additionally sets
// Truncated in the report. Corrupt spans are skipped silently (they are
// counted in the report); protocol-level errors (wrong magic, unknown
// version) are returned as errors. Frames of other types — including
// types this reader does not know — are skipped whole and counted as
// Unknown, so a batch-only consumer survives a newer peer.
func (rd *Reader) Next() (*Batch, error) {
	for {
		typ, payload, err := rd.NextFrame()
		if err != nil {
			return nil, err
		}
		switch typ {
		case MsgBatch:
			b, derr := DecodeBatch(payload)
			if derr != nil {
				rd.rep.Unknown++
				continue
			}
			return b, nil
		case MsgState:
			rd.rep.Unknown++
		default:
			rd.rep.Unknown++
		}
	}
}

// NextFrame returns the next CRC-valid frame: its type and payload.
// The payload is only valid until the following NextFrame (or Next)
// call — decode or copy before advancing. Dispatching consumers (a
// rollup node taking both batches and shard-state pushes) read frames
// directly; Next wraps this for batch-only consumers.
func (rd *Reader) NextFrame() (MsgType, []byte, error) {
	if !rd.prologue {
		pro := make([]byte, prologueLen)
		if _, err := io.ReadFull(rd.br, pro); err != nil {
			rd.rep.Truncated = true
			return 0, nil, eofOf(err)
		}
		if string(pro[:4]) != Magic {
			return 0, nil, ErrBadMagic
		}
		if v := binary.LittleEndian.Uint16(pro[4:]); v != Version {
			return 0, nil, fmt.Errorf("%w %d", ErrBadVersion, v)
		}
		rd.prologue = true
	}
	for {
		b, err := rd.br.Peek(2)
		if err != nil {
			if len(b) > 0 {
				rd.rep.Truncated = true
				rd.rep.SkippedBytes += int64(len(b))
				rd.br.Discard(len(b))
			}
			return 0, nil, eofOf(err)
		}
		if b[0] != sync0 || b[1] != sync1 {
			rd.skip(1)
			continue
		}
		hdr, err := rd.br.Peek(frameHdr)
		if err != nil {
			rd.rep.Truncated = true
			return 0, nil, eofOf(err)
		}
		plen := int(binary.LittleEndian.Uint32(hdr[3:]))
		if plen > rd.maxPayload {
			rd.skip(1)
			continue
		}
		frame, err := rd.br.Peek(frameHdr + plen + frameTail)
		if err != nil {
			// Not enough bytes left for the declared frame: on a live
			// connection Peek blocks until they arrive, so an error here
			// is a genuine end-of-stream inside a frame.
			rd.rep.Truncated = true
			return 0, nil, eofOf(err)
		}
		body := frame[2 : frameHdr+plen]
		crc := binary.LittleEndian.Uint32(frame[frameHdr+plen:])
		if crc32.ChecksumIEEE(body) != crc {
			rd.skip(1)
			continue
		}
		// Copy the payload out of the bufio window so it survives the
		// Discard; the buffer is reused across calls.
		typ := MsgType(body[0])
		rd.payload = append(rd.payload[:0], body[5:]...)
		rd.br.Discard(frameHdr + plen + frameTail)
		rd.rep.Frames++
		rd.inBad = false
		return typ, rd.payload, nil
	}
}

// eofOf normalizes bufio's short-read errors to io.EOF; other errors
// (timeouts, resets) pass through for the caller to classify.
func eofOf(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return io.EOF
	}
	return err
}
