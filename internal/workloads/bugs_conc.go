package workloads

import (
	"act/internal/deps"
	"act/internal/program"
	"act/internal/vm"
)

// Concurrency-bug programs. Each models the communication structure of
// the original application's bug: the same binary produces correct runs
// and failure runs depending on interleaving (seed-controlled), the race
// window is a Pause hint taken with a seed-dependent probability, and
// the invalid RAW dependence sequence the failure produces mirrors the
// original root cause.

// Apache models the Apache atomicity violation on a connection object's
// reference counter: a worker checks the count and then uses the object
// (non-atomically) while the releaser decrements and frees it in the
// window — a use-after-free crash.
func Apache() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		rounds := 10
		pb := program.New("apache")
		sp := pb.Space()
		data := sp.Alloc("data", 1)
		ref := sp.Alloc("ref", 1)
		round := sp.Alloc("round", 1)
		ack1 := sp.Alloc("ack1", 1)
		ack2 := sp.Alloc("ack2", 1)

		t0 := pb.Thread() // main: per-round object init + round barrier
		t0.LiAddr(1, data)
		t0.LiAddr(2, ref)
		t0.LiAddr(3, round)
		t0.LiAddr(4, ack1)
		t0.LiAddr(5, ack2)
		t0.Li(rK, 0)
		t0.Label("round")
		t0.Addi(rT1, rK, 100) // per-round magic value
		t0.Mark("dataInit")
		t0.Store(rT1, 1, 0)
		t0.Li(rT1, 1)
		t0.Mark("refInit")
		t0.Store(rT1, 2, 0)
		t0.Addi(rT1, rK, 1)
		t0.Store(rT1, 3, 0) // round = k+1: release the workers
		// wait for both acks
		t0.Label("wack1")
		t0.Load(rT2, 4, 0)
		t0.Pause()
		t0.Addi(rT1, rK, 1)
		t0.Slt(rT3, rT2, rT1)
		t0.Bnez(rT3, "wack1")
		t0.Label("wack2")
		t0.Load(rT2, 5, 0)
		t0.Pause()
		t0.Addi(rT1, rK, 1)
		t0.Slt(rT3, rT2, rT1)
		t0.Bnez(rT3, "wack2")
		t0.Addi(rK, rK, 1)
		t0.Li(rT1, int64(rounds))
		t0.Slt(rT2, rK, rT1)
		t0.Bnez(rT2, "round")
		t0.Halt()

		t1 := pb.Thread() // user: check ref then use data
		t1.LiAddr(1, data)
		t1.LiAddr(2, ref)
		t1.LiAddr(3, round)
		t1.LiAddr(4, ack1)
		t1.Li(rK, 0)
		t1.Label("round")
		t1.Label("wait")
		t1.Load(rT2, 3, 0)
		t1.Pause()
		t1.Addi(rT1, rK, 1)
		t1.Slt(rT3, rT2, rT1)
		t1.Bnez(rT3, "wait")
		t1.Mark("chkLoad")
		t1.Load(rT2, 2, 0) // if (obj->ref)
		t1.Beqz(rT2, "skip")
		t1.Pause() // the atomicity-violation window
		t1.Mark("useLoad")
		t1.Load(rT3, 1, 0) // use obj->data
		t1.Addi(rT1, rK, 100)
		t1.Seq(rT2, rT3, rT1)
		t1.Assert(rT2) // crash on freed data
		t1.Label("skip")
		t1.Addi(rT1, rK, 1)
		t1.Store(rT1, 4, 0)
		t1.Addi(rK, rK, 1)
		t1.Li(rT1, int64(rounds))
		t1.Slt(rT2, rK, rT1)
		t1.Bnez(rT2, "round")
		t1.Halt()

		t2 := pb.Thread() // releaser: decrement ref, free at zero
		t2.LiAddr(1, data)
		t2.LiAddr(2, ref)
		t2.LiAddr(3, round)
		t2.LiAddr(5, ack2)
		t2.Li(rK, 0)
		t2.Label("round")
		t2.Label("wait")
		t2.Load(rT2, 3, 0)
		t2.Pause()
		t2.Addi(rT1, rK, 1)
		t2.Slt(rT3, rT2, rT1)
		t2.Bnez(rT3, "wait")
		t2.Mark("decLoad")
		t2.Load(rT2, 2, 0)
		t2.Addi(rT2, rT2, -1)
		t2.Mark("decStore")
		t2.Store(rT2, 2, 0)
		t2.Bnez(rT2, "nofree")
		t2.Li(rT1, 0)
		t2.Mark("freeStore")
		t2.Store(rT1, 1, 0) // free(obj): poison data
		t2.Label("nofree")
		t2.Addi(rT1, rK, 1)
		t2.Store(rT1, 5, 0)
		t2.Addi(rK, rK, 1)
		t2.Li(rT1, int64(rounds))
		t2.Slt(rT2, rK, rT1)
		t2.Bnez(rT2, "round")
		t2.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 60, PausePct: int(8 + seed%25)}
	}
	return Bug{
		Name: "apache", Desc: "Atom. vio. on ref. counter", Status: "Crash",
		Class: "atomicity", Threads: 3, Gen: gen,
		RootS: "t2.freeStore", RootL: "t1.useLoad",
	}
}

// MySQL2 models the MySQL thd->proc_info atomicity violation: a monitor
// thread (SHOW PROCESSLIST) checks proc_info non-NULL and then
// dereferences it while the owner clears it in the window.
func MySQL2() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		rounds := 14
		polls := 20
		pb := program.New("mysql2")
		sp := pb.Space()
		proc := sp.Alloc("proc", 1)
		procData := sp.Alloc("procData", 1)

		t0 := pb.Thread() // query executor: publish/clear proc_info
		t0.LiAddr(1, proc)
		t0.LiAddr(2, procData)
		t0.Li(rK, 0)
		t0.Label("round")
		t0.Addi(rT1, rK, 500)
		t0.Mark("setDataStore")
		t0.Store(rT1, 2, 0) // proc_info string content
		t0.Li(rT1, 1)
		t0.Mark("setStore")
		t0.Store(rT1, 1, 0) // proc_info = <state>
		// run the query stage (private work)
		t0.Li(rI, 12)
		t0.Label("work")
		t0.Addi(rI, rI, -1)
		t0.Bnez(rI, "work")
		t0.Li(rT1, 0)
		t0.Mark("clrDataStore")
		t0.Store(rT1, 2, 0) // free the string...
		t0.Li(rT1, 0)
		t0.Mark("clrStore")
		t0.Store(rT1, 1, 0) // ...then proc_info = NULL (wrong order: the bug)
		t0.Addi(rK, rK, 1)
		t0.Li(rT1, int64(rounds))
		t0.Slt(rT2, rK, rT1)
		t0.Bnez(rT2, "round")
		t0.Halt()

		t1 := pb.Thread() // monitor: poll proc_info, dereference if set
		t1.LiAddr(1, proc)
		t1.LiAddr(2, procData)
		t1.Li(rK, 0)
		t1.Label("poll")
		t1.Mark("monChk")
		t1.Load(rT2, 1, 0) // if (thd->proc_info)
		t1.Beqz(rT2, "skip")
		t1.Pause() // the race window
		t1.Mark("monUse")
		t1.Load(rT3, 2, 0) // dereference
		t1.Assert(rT3)     // crash on cleared string
		t1.Label("skip")
		t1.Li(rI, 7)
		t1.Label("gap")
		t1.Addi(rI, rI, -1)
		t1.Bnez(rI, "gap")
		t1.Addi(rK, rK, 1)
		t1.Li(rT1, int64(polls))
		t1.Slt(rT2, rK, rT1)
		t1.Bnez(rT2, "poll")
		t1.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 50, PausePct: int(5 + seed%20)}
	}
	return Bug{
		Name: "mysql2", Desc: "Atom. vio. on thd proc-info", Status: "Crash",
		Class: "atomicity", Threads: 2, Gen: gen,
		RootS: "t0.clrDataStore", RootL: "t1.monUse",
	}
}

// Memcached models the item-data atomicity violation: the writer updates
// an item's length and payload non-atomically through two code paths
// (initial set vs. replace); a torn read pairs one path's length with
// the other path's payload, corrupting the response.
func Memcached() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		rounds := 12
		reads := 24
		pb := program.New("memcached")
		sp := pb.Space()
		length := sp.Alloc("len", 1)
		payload := sp.Alloc("payload", 1)
		bad := sp.Alloc("bad", 1)

		t0 := pb.Thread() // writer: alternate set/replace paths
		t0.LiAddr(1, length)
		t0.LiAddr(2, payload)
		t0.Li(rK, 0)
		t0.Label("round")
		t0.Li(rT1, 2)
		t0.Rem(rT1, rK, rT1)
		t0.Bnez(rT1, "replace")
		// set path
		t0.Addi(rT1, rK, 10)
		t0.Mark("lenStoreA")
		t0.Store(rT1, 1, 0)
		t0.Pause() // the torn-update window
		t0.Li(rT2, 3)
		t0.Mul(rT1, rT1, rT2)
		t0.Addi(rT1, rT1, 1)
		t0.Mark("dataStoreA")
		t0.Store(rT1, 2, 0)
		t0.Jmp("next")
		t0.Label("replace")
		t0.Addi(rT1, rK, 10)
		t0.Mark("lenStoreB")
		t0.Store(rT1, 1, 0)
		t0.Pause()
		t0.Li(rT2, 3)
		t0.Mul(rT1, rT1, rT2)
		t0.Addi(rT1, rT1, 1)
		t0.Mark("dataStoreB")
		t0.Store(rT1, 2, 0)
		t0.Label("next")
		// Long think time between item updates: a suspended reader can
		// straddle at most one update, so every torn observation pairs
		// adjacent (cross-path) generations.
		t0.Li(rI, 40)
		t0.Label("work")
		t0.Addi(rI, rI, -1)
		t0.Bnez(rI, "work")
		t0.Addi(rK, rK, 1)
		t0.Li(rT1, int64(rounds))
		t0.Slt(rT2, rK, rT1)
		t0.Bnez(rT2, "round")
		t0.Halt()

		t1 := pb.Thread() // reader: get item, verify payload matches length
		t1.LiAddr(1, length)
		t1.LiAddr(2, payload)
		t1.LiAddr(3, bad)
		t1.Li(rK, 0)
		t1.Label("get")
		t1.Mark("lenLoad")
		t1.Load(rT2, 1, 0)
		t1.Mark("dataLoad")
		t1.Load(rT3, 2, 0)
		t1.Beqz(rT2, "skip") // item not yet written
		t1.Li(rT1, 3)
		t1.Mul(rT2, rT2, rT1)
		t1.Addi(rT2, rT2, 1)
		t1.Seq(rT1, rT2, rT3)
		t1.Bnez(rT1, "skip")
		t1.Li(rT1, 1)
		t1.Store(rT1, 3, 0) // corrupted response observed
		t1.Label("skip")
		t1.Li(rI, 4)
		t1.Label("gap")
		t1.Addi(rI, rI, -1)
		t1.Bnez(rI, "gap")
		t1.Addi(rK, rK, 1)
		t1.Li(rT1, int64(reads))
		t1.Slt(rT2, rK, rT1)
		t1.Bnez(rT2, "get")
		// completion check: any corrupted response is the ill effect
		t1.Load(rT2, 3, 0)
		t1.Li(rT1, 0)
		t1.Seq(rT3, rT2, rT1)
		t1.Mark("illEffect")
		t1.Assert(rT3)
		t1.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 45, PausePct: int(6 + seed%22)}
	}
	rootMatch := func(p *program.Program) func(seq deps.Sequence) bool {
		lenA, lenB := p.MarkPC("t0.lenStoreA"), p.MarkPC("t0.lenStoreB")
		dataA, dataB := p.MarkPC("t0.dataStoreA"), p.MarkPC("t0.dataStoreB")
		lenLoad, dataLoad := p.MarkPC("t1.lenLoad"), p.MarkPC("t1.dataLoad")
		return func(seq deps.Sequence) bool {
			// The torn read: an adjacent get pairs one update path's
			// length with the other path's payload.
			for i := 0; i+1 < len(seq); i++ {
				a, b := seq[i], seq[i+1]
				if a.L != lenLoad || b.L != dataLoad {
					continue
				}
				if (a.S == lenA && b.S == dataB) || (a.S == lenB && b.S == dataA) {
					return true
				}
			}
			return false
		}
	}
	return Bug{
		Name: "memcached", Desc: "Atom. vio. on item data", Status: "Comp.",
		Class: "atomicity", Threads: 2, Gen: gen, RootMatch: rootMatch,
		RootS: "t0.lenStoreA", RootL: "t1.lenLoad",
	}
}

// Aget models the order violation on bwritten: the SIGINT handler saves
// the download-progress counter without waiting for the downloader
// threads, so an early signal persists a stale value and the resume log
// is corrupt.
func Aget() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		chunks := 20
		pb := program.New("aget")
		sp := pb.Space()
		bwritten := sp.Alloc("bwritten", 1)
		done := sp.Alloc("done", 1)
		finished := sp.Alloc("finished", 1)
		saved := sp.Alloc("saved", 1)

		for w := 0; w < 2; w++ { // downloader threads
			t := pb.Thread()
			t.LiAddr(1, bwritten)
			t.LiAddr(2, done)
			t.LiAddr(3, finished)
			t.Li(rK, int64(chunks))
			t.Label("chunk")
			t.Li(rI, 5+int64(w)) // receive the chunk (private work)
			t.Label("recv")
			t.Addi(rI, rI, -1)
			t.Bnez(rI, "recv")
			t.Li(rT1, 1)
			t.Mark("updAtomic")
			t.Atomic(rT2, rT1, 1, 0) // bwritten += chunk
			t.Addi(rK, rK, -1)
			t.Bnez(rK, "chunk")
			t.Li(rT1, 1)
			t.Atomic(rT2, rT1, 2, 0) // done++
			if w == 0 {
				// thread 0 doubles as main: join, finalize stats, exit
				t.Label("join")
				t.Load(rT2, 2, 0)
				t.Pause()
				t.Li(rT1, 2)
				t.Slt(rT3, rT2, rT1)
				t.Bnez(rT3, "join")
				t.Load(rT1, 1, 0)
				t.Mark("finalizeStore")
				t.Store(rT1, 1, 0) // final stats write-back
				t.Li(rT1, 1)
				t.Store(rT1, 3, 0) // finished = 1
			}
			t.Halt()
		}

		t2 := pb.Thread() // signal handler: save_log()
		t2.LiAddr(1, bwritten)
		t2.LiAddr(3, finished)
		t2.LiAddr(4, saved)
		// The signal arrival time is the "input": some signals arrive
		// mid-download, some after completion.
		delay := 40 + (seed%7)*110
		t2.Li(rI, delay)
		t2.Label("idle")
		t2.Addi(rI, rI, -1)
		t2.Pause()
		t2.Bnez(rI, "idle")
		t2.Mark("saveLoad")
		t2.Load(rT1, 1, 0) // read bwritten — without waiting (the bug)
		t2.Mark("saveStore")
		t2.Store(rT1, 4, 0) // persist resume log
		// Ill-effect check at exit: the saved log must match the final
		// counter once the download has finished.
		t2.Label("fin")
		t2.Load(rT2, 3, 0)
		t2.Pause()
		t2.Beqz(rT2, "fin")
		t2.Load(rT2, 1, 0)
		t2.Load(rT3, 4, 0)
		t2.Seq(rT1, rT2, rT3)
		t2.Mark("illEffect")
		t2.Assert(rT1)
		t2.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 35}
	}
	rootMatch := func(p *program.Program) func(seq deps.Sequence) bool {
		upd0, upd1 := p.MarkPC("t0.updAtomic"), p.MarkPC("t1.updAtomic")
		save := p.MarkPC("t2.saveLoad")
		return func(seq deps.Sequence) bool {
			// The root cause: save_log reading bwritten straight from a
			// downloader's in-flight update instead of the finalize path.
			for _, d := range seq {
				if d.L == save && (d.S == upd0 || d.S == upd1) {
					return true
				}
			}
			return false
		}
	}
	return Bug{
		Name: "aget", Desc: "Order. vio. on bwritten", Status: "Comp.",
		Class: "order", Threads: 3, Gen: gen, RootMatch: rootMatch,
		RootS: "t0.updAtomic", RootL: "t2.saveLoad",
	}
}

// PBzip2 models the order violation between the main thread and the
// consumers: main frees the compression FIFO after a bounded wait
// instead of joining the consumers, so a slow consumer dereferences
// freed memory and crashes.
func PBzip2() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		q := 10
		pb := program.New("pbzip2")
		sp := pb.Space()
		fifo := sp.Alloc("fifo", q)
		prodCnt := sp.Alloc("prodCnt", 1)
		consDone := sp.Alloc("consDone", 1)

		t0 := pb.Thread() // main: produce blocks, then free the FIFO
		t0.LiAddr(1, fifo)
		t0.LiAddr(2, prodCnt)
		t0.LiAddr(3, consDone)
		t0.Li(rI, 0)
		t0.Li(rT3, int64(q))
		t0.Label("prod")
		t0.Li(rT2, 8)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, 1)
		t0.Addi(rT2, rI, 100)
		t0.Mark("prodStore")
		t0.Store(rT2, rT1, 0) // fifo[i] = block
		t0.Addi(rT2, rI, 1)
		t0.Store(rT2, 2, 0) // prodCnt = i+1
		t0.Addi(rI, rI, 1)
		t0.Slt(rT2, rI, rT3)
		t0.Bnez(rT2, "prod")
		// Bounded wait for the consumer — the missing-join bug: the
		// patience is an "input" (system load); short patience frees
		// too early.
		patience := 5 + (seed%6)*50
		t0.Li(rI, patience)
		t0.Label("waitc")
		t0.Load(rT2, 3, 0)
		t0.Pause()
		t0.Bnez(rT2, "freeok")
		t0.Addi(rI, rI, -1)
		t0.Bnez(rI, "waitc")
		t0.Label("freeok")
		// free(fifo): poison every slot
		t0.Li(rI, 0)
		t0.Label("free")
		t0.Li(rT2, 8)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, 1)
		t0.Li(rT2, 0)
		t0.Mark("freeStore")
		t0.Store(rT2, rT1, 0)
		t0.Addi(rI, rI, 1)
		t0.Slt(rT2, rI, rT3)
		t0.Bnez(rT2, "free")
		t0.Halt()

		t1 := pb.Thread() // consumer: drain the FIFO slowly
		t1.LiAddr(1, fifo)
		t1.LiAddr(2, prodCnt)
		t1.LiAddr(3, consDone)
		t1.Li(rI, 0)
		t1.Li(rT3, int64(q))
		t1.Label("cons")
		t1.Label("avail")
		t1.Load(rT2, 2, 0)
		t1.Pause()
		t1.Slt(rT1, rI, rT2)
		t1.Beqz(rT1, "avail")
		t1.Li(rT2, 8)
		t1.Mul(rT1, rI, rT2)
		t1.Add(rT1, rT1, 1)
		t1.Mark("consLoad")
		t1.Load(rT2, rT1, 0) // fifo[i]
		t1.Addi(rT4, rI, 100)
		t1.Seq(rT4, rT2, rT4)
		t1.Assert(rT4) // crash on freed block
		// decompress (private work)
		t1.Li(rJ, 14)
		t1.Label("unzip")
		t1.Addi(rJ, rJ, -1)
		t1.Bnez(rJ, "unzip")
		t1.Addi(rI, rI, 1)
		t1.Slt(rT2, rI, rT3)
		t1.Bnez(rT2, "cons")
		t1.Li(rT2, 1)
		t1.Store(rT2, 3, 0) // consDone = 1
		t1.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 30}
	}
	return Bug{
		Name: "pbzip2", Desc: "Order. vio. between threads", Status: "Crash",
		Class: "order", Threads: 2, Gen: gen,
		RootS: "t0.freeStore", RootL: "t1.consLoad",
	}
}
