package workloads

import (
	"act/internal/program"
	"act/internal/vm"
)

// Sequential bugs: the failure depends on the synthesized input (derived
// from the seed), not on thread interleaving — gzip's and seq's semantic
// bugs and the ptx/paste buffer overflows of Table V.

// Gzip models the get_method file-descriptor semantic bug of Figure
// 2(d): processing "-" (stdin) reuses the ifd variable, so when "-"
// appears after a normal file, get_method receives the previous file's
// descriptor instead of stdin's and the wrong stream is processed. The
// buggy RAW dependence is S3→S2: get_method's stdin path reading an ifd
// written by open_input_file.
func Gzip() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		nArgs := 6
		// The input: a list of "files" where 0 encodes "-". Roughly a
		// third of the inputs put "-" first (correct), a third have no
		// "-" at all (correct), a third bury it in the middle (failure).
		dashPos := int(seed % int64(nArgs*2))
		pb := program.New("gzip")
		sp := pb.Space()
		args := sp.Alloc("args", nArgs)
		ifd := sp.Alloc("ifd", 1)
		processed := sp.Alloc("processed", nArgs)
		for i := 0; i < nArgs; i++ {
			v := int64(i + 1) // normal file: fd source i+1
			if i == dashPos {
				v = 0 // "-": stdin
			}
			pb.SetInit(args+uint64(i)*8, v)
		}

		b := pb.Thread()
		b.LiAddr(1, args)
		b.LiAddr(2, ifd)
		b.LiAddr(3, processed)
		// S1: ifd = 0 (stdin descriptor)
		b.Li(rT1, 0)
		b.Mark("S1")
		b.Store(rT1, 2, 0)
		b.Li(rI, 0)
		b.Li(rT3, int64(nArgs))
		b.Label("loop")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 1)
		b.Load(rT4, rT1, 0) // arg[i]
		b.Bnez(rT4, "file")
		// "-": process stdin — S2: get_method(ifd)
		b.Mark("S2")
		b.Load(rJ, 2, 0)
		// get_method on a non-stdin descriptor here is the ill effect:
		// stdin silently not processed.
		b.Li(rT2, 0)
		b.Seq(rT2, rJ, rT2)
		b.Mark("illEffect")
		b.Assert(rT2)
		b.Jmp("record")
		b.Label("file")
		// normal file — S3: ifd = open_input_file(...)
		b.Mark("S3")
		b.Store(rT4, 2, 0)
		// S4: get_method(ifd)
		b.Mark("S4")
		b.Load(rJ, 2, 0)
		b.Label("record")
		// process the stream (uses the descriptor)
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 3)
		b.Store(rJ, rT1, 0)
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "loop")
		b.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 50}
	}
	return Bug{
		Name: "gzip", Desc: "Semantic bug for get_method wrong file descriptor seq", Status: "Comp.",
		Class: "semantic", Threads: 1, Gen: gen,
		RootS: "t0.S3", RootL: "t0.S2",
	}
}

// Seq models the coreutils seq terminator semantic bug: under a rarely
// used format the option parser writes the separator into the
// terminator's slot (an off-by-one in the format buffer), so
// print_numbers emits the separator where the terminator belongs.
func Seq() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		count := 8
		customFormat := seed%3 == 1 // the rarely used format
		pb := program.New("seq")
		sp := pb.Space()
		fmtbuf := sp.Alloc("fmtbuf", 2) // [separator, terminator]
		nums := sp.Alloc("nums", count)
		optfmt := sp.Alloc("optfmt", 1) // the command line: 1 = custom format
		for i := 0; i < count; i++ {
			pb.SetInit(nums+uint64(i)*8, int64(10+i))
		}
		if customFormat {
			pb.SetInit(optfmt, 1)
		}
		const sepVal, termVal = 44, 10 // ',' and '\n'

		b := pb.Thread()
		b.LiAddr(1, fmtbuf)
		b.LiAddr(2, nums)
		b.LiAddr(3, optfmt)
		// option parsing
		b.Li(rT1, sepVal)
		b.Mark("sepStore")
		b.Store(rT1, 1, 0) // fmtbuf[0] = separator
		b.Load(rT2, 3, 0)  // which format did the user ask for?
		b.Beqz(rT2, "stdfmt")
		// the bug: the custom-format path writes the separator at the
		// terminator's offset and never sets the terminator
		b.Li(rT1, sepVal)
		b.Mark("sepStoreBug")
		b.Store(rT1, 1, 8)
		b.Jmp("parsed")
		b.Label("stdfmt")
		b.Li(rT1, termVal)
		b.Mark("termStore")
		b.Store(rT1, 1, 8) // fmtbuf[1] = terminator
		b.Label("parsed")
		// print_numbers
		b.Li(rI, 0)
		b.Li(rT3, int64(count))
		b.Label("print")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 2)
		b.Load(rT4, rT1, 0)
		b.Out(rT4)
		b.Addi(rT1, rI, 1)
		b.Slt(rT2, rT1, rT3)
		b.Beqz(rT2, "last")
		b.Mark("sepLoad")
		b.Load(rT4, 1, 0) // separator between numbers
		b.Out(rT4)
		b.Jmp("cont")
		b.Label("last")
		b.Mark("termLoad")
		b.Load(rT4, 1, 8) // terminator after the last number
		b.Out(rT4)
		// the ill effect: terminator must be '\n'
		b.Li(rT2, termVal)
		b.Seq(rT2, rT4, rT2)
		b.Mark("illEffect")
		b.Assert(rT2)
		b.Label("cont")
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "print")
		b.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 50}
	}
	return Bug{
		Name: "seq", Desc: "Semantic bug for wrong terminator in print numbers", Status: "Comp.",
		Class: "semantic", Threads: 1, Gen: gen,
		RootS: "t0.sepStoreBug", RootL: "t0.termLoad",
	}
}

// Ptx models the GNU ptx buffer overflow of Figure 2(e): a scan that
// advances two positions for escaped characters walks past the end of
// the string buffer when the input ends with an odd run of backslashes,
// so the copy loop's load depends on whatever instruction last wrote the
// adjacent memory.
func Ptx() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		n := 12
		pb := program.New("ptx")
		sp := pb.Space()
		str := sp.Alloc("string", n)
		next := sp.AllocAdjacent("next", 1) // whatever lives after string
		dst := sp.Alloc("dst", n+2)
		const backslash, letter = 92, 7

		b := pb.Thread()
		b.LiAddr(1, str)
		b.LiAddr(2, dst)
		b.LiAddr(4, next)
		// S1: unrelated code writes the word after the buffer
		b.Li(rT1, 999)
		b.Mark("S1")
		b.Store(rT1, 4, 0)
		// S2: initialize string; input ends with an odd or even run of
		// backslashes depending on the seed
		tail := 1 + int(seed%4) // 1..4 trailing backslashes; odd = overflow
		b.Li(rI, 0)
		b.Li(rT3, int64(n))
		b.Label("init")
		b.Li(rT4, letter)
		b.Li(rT2, int64(n-tail))
		b.Slt(rT2, rI, rT2)
		b.Bnez(rT2, "plain")
		b.Li(rT4, backslash)
		b.Label("plain")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 1)
		b.Mark("S2")
		b.Store(rT4, rT1, 0)
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "init")
		// copy loop: S3: *x++ = *string++, and for an escape a second
		// *x++ = *string++ without re-checking the bound (the bug)
		b.Li(rI, 0) // src index
		b.Li(rJ, 0) // dst index
		b.Label("copy")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 1)
		b.Mark("S3")
		b.Load(rT4, rT1, 0) // *string
		b.Li(rT2, 8)
		b.Mul(rT1, rJ, rT2)
		b.Add(rT1, rT1, 2)
		b.Store(rT4, rT1, 0) // *x++
		b.Addi(rJ, rJ, 1)
		// escape? copy the escaped character too, unchecked
		b.Li(rT2, backslash)
		b.Seq(rT2, rT4, rT2)
		b.Beqz(rT2, "advance")
		b.Addi(rI, rI, 1)
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 1)
		b.Mark("escLoad")
		b.Load(rT4, rT1, 0) // may read past the end of string
		// reading past the buffer returns the unrelated word — the
		// visible corruption
		b.Li(rT2, 999)
		b.Seq(rT2, rT4, rT2)
		b.Li(rT1, 1)
		b.Sub(rT2, rT1, rT2) // 0 iff corrupted
		b.Mark("illEffect")
		b.Assert(rT2)
		b.Li(rT2, 8)
		b.Mul(rT1, rJ, rT2)
		b.Add(rT1, rT1, 2)
		b.Store(rT4, rT1, 0)
		b.Addi(rJ, rJ, 1)
		b.Label("advance")
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "copy")
		b.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 50}
	}
	return Bug{
		Name: "ptx", Desc: "Buffer overflow of string in get_method func.", Status: "Comp.",
		Class: "overflow", Threads: 1, Gen: gen,
		RootS: "t0.S1", RootL: "t0.escLoad",
	}
}

// Paste models the coreutils paste collapse_escapes over-read: the
// delimiter-list scanner consumes two characters for a backslash, so a
// list ending in a lone backslash sends the read index past the buffer
// into the adjacent allocation and paste crashes on the garbage
// delimiter.
func Paste() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		k := 6
		pb := program.New("paste")
		sp := pb.Space()
		delims := sp.Alloc("delims", k)
		post := sp.AllocAdjacent("post", 1)
		out := sp.Alloc("out", k+2)
		const backslash = 92

		b := pb.Thread()
		b.LiAddr(1, delims)
		b.LiAddr(2, out)
		b.LiAddr(4, post)
		// unrelated allocation after the delimiter buffer
		b.Li(rT1, 31337)
		b.Mark("postStore")
		b.Store(rT1, 4, 0)
		// build the delimiter list from the "command line"; a trailing
		// backslash (seed-dependent input) is the failing case
		trailing := seed%3 == 2
		lastChar := sp.Alloc("lastChar", 1)
		if trailing {
			pb.SetInit(lastChar, backslash)
		} else {
			pb.SetInit(lastChar, 45)
		}
		b.LiAddr(5, lastChar)
		b.Li(rI, 0)
		b.Li(rT3, int64(k))
		b.Label("init")
		b.Addi(rT4, rI, 40)
		b.Li(rT2, int64(k-1))
		b.Seq(rT2, rI, rT2)
		b.Beqz(rT2, "plain")
		b.Load(rT4, 5, 0) // final character comes from the input
		b.Label("plain")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 1)
		b.Mark("delimStore")
		b.Store(rT4, rT1, 0)
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "init")
		// collapse_escapes: walk the list, consuming two chars per escape
		b.Li(rI, 0)
		b.Li(rJ, 0)
		b.Label("collapse")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 1)
		b.Mark("collapseLoad")
		b.Load(rT4, rT1, 0)
		// a delimiter read from beyond the list crashes paste
		b.Li(rT2, 31337)
		b.Seq(rT2, rT4, rT2)
		b.Li(rT1, 1)
		b.Sub(rT2, rT1, rT2)
		b.Mark("crash")
		b.Assert(rT2)
		b.Li(rT2, backslash)
		b.Seq(rT2, rT4, rT2)
		b.Beqz(rT2, "plainc")
		// escape: read the escaped char (one past; may be out of bounds)
		b.Addi(rI, rI, 1)
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 1)
		b.Mark("escLoad")
		b.Load(rT4, rT1, 0)
		b.Li(rT2, 31337)
		b.Seq(rT2, rT4, rT2)
		b.Li(rT1, 1)
		b.Sub(rT2, rT1, rT2)
		b.Assert(rT2)
		b.Label("plainc")
		// emit collapsed delimiter
		b.Li(rT2, 8)
		b.Mul(rT1, rJ, rT2)
		b.Add(rT1, rT1, 2)
		b.Store(rT4, rT1, 0)
		b.Addi(rJ, rJ, 1)
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "collapse")
		b.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 50}
	}
	return Bug{
		Name: "paste", Desc: "collapse escapes reads out of buffer of string", Status: "Crash",
		Class: "overflow", Threads: 1, Gen: gen,
		RootS: "t0.postStore", RootL: "t0.escLoad",
	}
}
