package workloads

import (
	"act/internal/program"
)

// Register conventions used by the kernel builders.
const (
	rA  = 1 // primary base address
	rB  = 2 // secondary base address
	rC  = 3 // tertiary base address
	rT1 = 10
	rT2 = 11
	rT3 = 12
	rT4 = 13
	rI  = 20 // loop index
	rJ  = 21 // inner index
	rK  = 22 // phase index
	rS  = 23 // LCG state
)

// spinWait emits a wait loop: load flag word at base+off until non-zero,
// pausing between polls so the scheduler rotates to the producer.
func spinWait(b *program.Builder, base uint8, off int64, label string) {
	b.Label(label)
	b.Load(rT4, base, off)
	b.Pause()
	b.Beqz(rT4, label)
}

// LU is the SPLASH-2 LU-decomposition stand-in: a pivot-producing thread
// and workers that consume each pivot row — the classic producer-
// consumer RAW pattern plus a flag handshake per phase.
func LU() Workload {
	const workers = 2
	build := func(seed int64) *program.Program {
		n := 6 + int(seed%3) // matrix dimension varies with the input
		pb := program.New("lu")
		mat := pb.Space().Alloc("mat", n*n)
		flag := pb.Space().Alloc("flag", n)
		priv := make([]uint64, workers)
		for w := range priv {
			priv[w] = pb.Space().Alloc("priv"+string(rune('0'+w)), n)
		}

		t0 := pb.Thread()
		t0.LiAddr(rA, mat)
		t0.LiAddr(rB, flag)
		t0.Li(rK, 0)
		t0.Li(rT3, int64(n))
		t0.Label("phase")
		t0.Li(rJ, 0)
		t0.Label("row")
		// mat[k*n+j] = k + j (values are irrelevant; the stores are the point)
		t0.Mul(rT1, rK, rT3)
		t0.Add(rT1, rT1, rJ)
		t0.Li(rT2, 8)
		t0.Mul(rT1, rT1, rT2)
		t0.Add(rT1, rT1, rA)
		t0.Add(rT2, rK, rJ)
		t0.Mark("pivotStore")
		t0.Store(rT2, rT1, 0)
		t0.Addi(rJ, rJ, 1)
		t0.Slt(rT2, rJ, rT3)
		t0.Bnez(rT2, "row")
		// flag[k] = 1
		t0.Li(rT2, 8)
		t0.Mul(rT1, rK, rT2)
		t0.Add(rT1, rT1, rB)
		t0.Li(rT2, 1)
		t0.Store(rT2, rT1, 0)
		t0.Addi(rK, rK, 1)
		t0.Slt(rT2, rK, rT3)
		t0.Bnez(rT2, "phase")
		t0.Halt()

		for w := 0; w < workers; w++ {
			tw := pb.Thread()
			tw.LiAddr(rA, mat)
			tw.LiAddr(rB, flag)
			tw.LiAddr(rC, priv[w])
			tw.Li(rK, 0)
			tw.Li(rT3, int64(n))
			tw.Label("phase")
			// wait for flag[k]
			tw.Li(rT2, 8)
			tw.Mul(rT1, rK, rT2)
			tw.Add(rT1, rT1, rB)
			tw.Label("spin")
			tw.Load(rT4, rT1, 0)
			tw.Pause()
			tw.Beqz(rT4, "spin")
			// consume pivot row: sum mat[k*n+j]
			tw.Li(rJ, 0)
			tw.Li(rT4, 0)
			tw.Label("consume")
			tw.Mul(rT1, rK, rT3)
			tw.Add(rT1, rT1, rJ)
			tw.Li(rT2, 8)
			tw.Mul(rT1, rT1, rT2)
			tw.Add(rT1, rT1, rA)
			tw.Mark("pivotLoad")
			tw.Load(rT2, rT1, 0)
			tw.Add(rT4, rT4, rT2)
			tw.Addi(rJ, rJ, 1)
			tw.Slt(rT2, rJ, rT3)
			tw.Bnez(rT2, "consume")
			// priv[k] = sum (intra-thread chain across phases)
			tw.Li(rT2, 8)
			tw.Mul(rT1, rK, rT2)
			tw.Add(rT1, rT1, rC)
			tw.Store(rT4, rT1, 0)
			tw.Load(rT2, rT1, 0)
			// trailing update: scale row k+1+w with the pivot sum, as the
			// real LU updates the submatrix. These stores overwrite cells
			// t0 later rewrites, so matrix cells gain multiple static
			// writers (the source of realistic negative examples).
			tw.Addi(rJ, rK, int64(1+w))
			tw.Slt(rT2, rJ, rT3)
			tw.Beqz(rT2, "skipupd")
			tw.Li(rJ, 0)
			tw.Label("upd")
			tw.Addi(rT1, rK, int64(1+w))
			tw.Mul(rT1, rT1, rT3)
			tw.Add(rT1, rT1, rJ)
			tw.Li(rT2, 8)
			tw.Mul(rT1, rT1, rT2)
			tw.Add(rT1, rT1, rA)
			tw.Mark("blockStore")
			tw.Store(rT4, rT1, 0)
			tw.Addi(rJ, rJ, 1)
			tw.Slt(rT2, rJ, rT3)
			tw.Bnez(rT2, "upd")
			tw.Label("skipupd")
			tw.Addi(rK, rK, 1)
			tw.Slt(rT2, rK, rT3)
			tw.Bnez(rT2, "phase")
			tw.Halt()
		}
		return pb.MustBuild()
	}
	return Workload{Name: "lu", Suite: "splash2", Threads: 1 + workers, Build: build, Sched: defaultSched}
}

// FFT is the SPLASH-2 FFT stand-in: staged all-to-all exchanges where
// each stage's loads depend on both threads' previous-stage stores,
// separated by flag barriers.
func FFT() Workload {
	const nThreads = 2
	build := func(seed int64) *program.Program {
		n := 8 + 2*int(seed%2) // elements, split between two threads
		stages := 3
		pb := program.New("fft")
		data := pb.Space().Alloc("data", n)
		done := pb.Space().Alloc("done", stages*nThreads)
		half := n / 2

		for t := 0; t < nThreads; t++ {
			b := pb.Thread()
			b.LiAddr(rA, data)
			b.LiAddr(rB, done)
			// initialize own half
			b.Li(rI, int64(t*half))
			b.Li(rT3, int64((t+1)*half))
			b.Label("init")
			b.Li(rT2, 8)
			b.Mul(rT1, rI, rT2)
			b.Add(rT1, rT1, rA)
			b.Store(rI, rT1, 0)
			b.Addi(rI, rI, 1)
			b.Slt(rT2, rI, rT3)
			b.Bnez(rT2, "init")

			for s := 0; s < stages; s++ {
				lbl := func(base string) string { return base + string(rune('0'+s)) }
				// signal stage start: done[s*T+t] = 1
				b.Li(rT1, int64((s*nThreads+t)*8))
				b.Add(rT1, rT1, rB)
				b.Li(rT2, 1)
				b.Store(rT2, rT1, 0)
				// wait for partner's signal
				b.Li(rT1, int64((s*nThreads+(1-t))*8))
				b.Add(rT1, rT1, rB)
				spinWait(b, rT1, 0, lbl("wait"))
				// butterfly: for own half, read partner element, combine, write own
				b.Li(rI, int64(t*half))
				b.Li(rT3, int64((t+1)*half))
				b.Label(lbl("bfly"))
				// partner index = (i + half) % n
				b.Addi(rT1, rI, int64(half))
				b.Li(rT2, int64(n))
				b.Rem(rT1, rT1, rT2)
				b.Li(rT2, 8)
				b.Mul(rT1, rT1, rT2)
				b.Add(rT1, rT1, rA)
				b.Mark(lbl("xload"))
				b.Load(rT2, rT1, 0) // inter-thread load of partner data
				// own element
				b.Li(rT4, 8)
				b.Mul(rT1, rI, rT4)
				b.Add(rT1, rT1, rA)
				b.Load(rT4, rT1, 0)
				b.Add(rT2, rT2, rT4)
				b.Store(rT2, rT1, 0)
				b.Addi(rI, rI, 1)
				b.Slt(rT2, rI, rT3)
				b.Bnez(rT2, lbl("bfly"))
			}
			b.Halt()
		}
		return pb.MustBuild()
	}
	return Workload{Name: "fft", Suite: "splash2", Threads: nThreads, Build: build, Sched: defaultSched}
}

// Radix is the SPLASH-2 radix-sort stand-in: threads atomically build a
// shared histogram; a final thread consumes it once all are done.
func Radix() Workload {
	const nThreads = 4
	build := func(seed int64) *program.Program {
		items := 40 + 8*int(seed%3)
		buckets := 8
		pb := program.New("radix")
		hist := pb.Space().Alloc("hist", buckets)
		doneCnt := pb.Space().Alloc("done", 1)
		sum := pb.Space().Alloc("sum", buckets)

		for t := 0; t < nThreads-1; t++ {
			b := pb.Thread()
			b.LiAddr(rA, hist)
			b.LiAddr(rB, doneCnt)
			b.Li(rS, int64(seed)+int64(t)*7919+1)
			b.Li(rI, int64(items))
			b.Label("loop")
			lcgStep(b, rS, rT1, rT2, rT3, int64(buckets))
			b.Li(rT2, 8)
			b.Mul(rT1, rT1, rT2)
			b.Add(rT1, rT1, rA)
			b.Li(rT2, 1)
			b.Mark("histAdd")
			b.Atomic(rT3, rT2, rT1, 0)
			b.Addi(rI, rI, -1)
			b.Bnez(rI, "loop")
			b.Li(rT2, 1)
			b.Atomic(rT3, rT2, rB, 0) // done++
			b.Halt()
		}

		// Reducer thread waits for all workers then prefix-sums.
		b := pb.Thread()
		b.LiAddr(rA, hist)
		b.LiAddr(rB, doneCnt)
		b.LiAddr(rC, sum)
		b.Label("spin")
		b.Load(rT4, rB, 0)
		b.Pause()
		b.Li(rT2, int64(nThreads-1))
		b.Slt(rT1, rT4, rT2)
		b.Bnez(rT1, "spin")
		b.Li(rI, 0)
		b.Li(rT3, int64(buckets))
		b.Li(rT4, 0)
		b.Label("prefix")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, rA)
		b.Mark("histRead")
		b.Load(rT2, rT1, 0)
		b.Add(rT4, rT4, rT2)
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, rC)
		b.Store(rT4, rT1, 0)
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "prefix")
		b.Out(rT4)
		b.Halt()
		return pb.MustBuild()
	}
	return Workload{Name: "radix", Suite: "splash2", Threads: nThreads, Build: build, Sched: defaultSched}
}

// Ocean is the SPLASH-2 ocean stand-in: a red-black stencil where each
// thread sweeps its grid partition reading the neighbour partition's
// boundary row written in the previous sweep.
func Ocean() Workload {
	const nThreads = 2
	build := func(seed int64) *program.Program {
		cols := 8
		rowsPer := 3 + int(seed%2)
		sweeps := 3
		pb := program.New("ocean")
		grid := pb.Space().Alloc("grid", nThreads*rowsPer*cols)

		for t := 0; t < nThreads; t++ {
			b := pb.Thread()
			b.LiAddr(rA, grid)
			base := int64(t * rowsPer * cols)
			// neighbour boundary row: the other partition's row adjacent
			// to this partition (its first row for t=0, last for t=1)
			nbr := int64((1-t)*rowsPer*cols) + int64((rowsPer-1)*cols)*b2i64(t == 1)
			b.Li(rK, 0)
			b.Label("sweep")
			b.Li(rI, 0)
			b.Li(rT3, int64(rowsPer*cols))
			b.Label("cell")
			// own cell address
			b.Li(rT2, 8)
			b.Mul(rT1, rI, rT2)
			b.Addi(rT1, rT1, base*8)
			b.Add(rT1, rT1, rA)
			b.Load(rT2, rT1, 0) // own previous value (intra-thread)
			// neighbour boundary cell (i % cols into the boundary row)
			b.Li(rT4, int64(cols))
			b.Rem(rT4, rI, rT4)
			b.Li(rJ, 8)
			b.Mul(rT4, rT4, rJ)
			b.Addi(rT4, rT4, nbr*8)
			b.Add(rT4, rT4, rA)
			b.Mark("nbrLoad")
			b.Load(rT4, rT4, 0) // inter-thread boundary read
			b.Add(rT2, rT2, rT4)
			// Red and black sweeps store from different instructions, so
			// each cell accumulates two static writers across sweeps.
			b.Li(rT4, 2)
			b.Rem(rT4, rK, rT4)
			b.Bnez(rT4, "black")
			b.Mark("redStore")
			b.Store(rT2, rT1, 0)
			b.Jmp("stored")
			b.Label("black")
			b.Mark("blackStore")
			b.Store(rT2, rT1, 0)
			b.Label("stored")
			b.Addi(rI, rI, 1)
			b.Slt(rT2, rI, rT3)
			b.Bnez(rT2, "cell")
			b.Pause()
			b.Addi(rK, rK, 1)
			b.Li(rT2, int64(sweeps))
			b.Slt(rT1, rK, rT2)
			b.Bnez(rT1, "sweep")
			b.Halt()
		}
		return pb.MustBuild()
	}
	return Workload{Name: "ocean", Suite: "splash2", Threads: nThreads, Build: build, Sched: defaultSched}
}

// Barnes is the SPLASH-2 Barnes-Hut stand-in: one thread builds a shared
// body array, then all threads make irregular (pseudo-random) reads of
// it while accumulating privately — read-mostly irregular sharing.
func Barnes() Workload {
	const nThreads = 2
	build := func(seed int64) *program.Program {
		bodies := 16 + 4*int(seed%2)
		visits := 60
		pb := program.New("barnes")
		body := pb.Space().Alloc("body", bodies)
		ready := pb.Space().Alloc("ready", 1)
		acc := pb.Space().Alloc("acc", nThreads)

		t0 := pb.Thread()
		t0.LiAddr(rA, body)
		t0.LiAddr(rB, ready)
		t0.Li(rI, 0)
		t0.Li(rT3, int64(bodies))
		t0.Label("build")
		t0.Li(rT2, 8)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, rA)
		t0.Mark("bodyStore")
		t0.Store(rI, rT1, 0)
		t0.Addi(rI, rI, 1)
		t0.Slt(rT2, rI, rT3)
		t0.Bnez(rT2, "build")
		// Perturbation pass: rewrite every body from a second static
		// store before publishing, as the real code recomputes positions.
		t0.Li(rI, 0)
		t0.Label("perturb")
		t0.Li(rT2, 8)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, rA)
		t0.Load(rT2, rT1, 0)
		t0.Addi(rT2, rT2, 5)
		t0.Mark("bodyPerturb")
		t0.Store(rT2, rT1, 0)
		t0.Addi(rI, rI, 1)
		t0.Slt(rT2, rI, rT3)
		t0.Bnez(rT2, "perturb")
		t0.Li(rT2, 1)
		t0.Store(rT2, rB, 0)
		// t0 also traverses
		emitTraversal(t0, acc, 0, bodies, visits, seed+11)
		t0.Halt()

		t1 := pb.Thread()
		t1.LiAddr(rA, body)
		t1.LiAddr(rB, ready)
		spinWait(t1, rB, 0, "wait")
		emitTraversal(t1, acc, 1, bodies, visits, seed+23)
		t1.Halt()
		return pb.MustBuild()
	}
	return Workload{Name: "barnes", Suite: "splash2", Threads: nThreads, Build: build, Sched: defaultSched}
}

// emitTraversal emits a pseudo-random walk over the body array (base in
// rA) accumulating into acc[t]. Callers must have rA set.
func emitTraversal(b *program.Builder, acc uint64, t, bodies, visits int, seed int64) {
	b.LiAddr(rC, acc+uint64(t)*8)
	b.Li(rS, seed)
	b.Li(rI, int64(visits))
	b.Label("walk")
	lcgStep(b, rS, rT1, rT2, rT3, int64(bodies))
	b.Li(rT2, 8)
	b.Mul(rT1, rT1, rT2)
	b.Add(rT1, rT1, rA)
	b.Mark("bodyLoad")
	b.Load(rT2, rT1, 0)
	b.Load(rT3, rC, 0)
	b.Add(rT3, rT3, rT2)
	b.Store(rT3, rC, 0)
	b.Addi(rI, rI, -1)
	b.Bnez(rI, "walk")
}

func b2i64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
