package workloads

import (
	"testing"

	"act/internal/deps"
)

func TestRealBugsBothOutcomesReachable(t *testing.T) {
	for _, b := range RealBugs() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			rate := FailureRate(b, 60, 0)
			t.Logf("failure rate: %.2f", rate)
			if rate == 0 {
				t.Fatal("bug never fails")
			}
			if rate == 1 {
				t.Fatal("bug always fails: no correct runs to train on")
			}
		})
	}
}

func TestInjectedBugsBothOutcomesReachable(t *testing.T) {
	for _, b := range InjectedBugs() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			rate := FailureRate(b.Bug, 40, 0)
			t.Logf("failure rate: %.2f", rate)
			if rate == 0 || rate == 1 {
				t.Fatalf("failure rate %v: need both outcomes", rate)
			}
		})
	}
}

// TestFailingRunContainsRootDep checks that a failing execution's trace
// actually produces the dependence sequence the diagnosis must find.
func TestFailingRunContainsRootDep(t *testing.T) {
	var all []Bug
	all = append(all, RealBugs()...)
	for _, ib := range InjectedBugs() {
		all = append(all, ib.Bug)
	}
	for _, b := range all {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			runs, err := CollectOutcome(b, true, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, run := range runs {
				match := b.Matcher(run.Program)
				found := false
				e := deps.NewExtractor(deps.ExtractorConfig{N: 3})
				e.OnSequence = func(_ uint16, s deps.Sequence) {
					if match(s) {
						found = true
					}
				}
				for _, r := range run.Trace.Records {
					if r.Store {
						e.Store(r.Tid, r.PC, r.Addr, r.Stack)
					} else {
						e.Load(r.Tid, r.PC, r.Addr, r.Stack)
					}
				}
				if !found {
					t.Errorf("seed %d: failing trace lacks the root-cause sequence", run.Seed)
				}
			}
		})
	}
}

// TestCorrectRunLacksRootDep checks the converse: correct executions
// must not contain the root-cause sequence (otherwise it could not be an
// invariant violation).
func TestCorrectRunLacksRootDep(t *testing.T) {
	for _, b := range RealBugs() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			runs, err := CollectOutcome(b, false, 5, 1000)
			if err != nil {
				t.Fatal(err)
			}
			for _, run := range runs {
				match := b.Matcher(run.Program)
				e := deps.NewExtractor(deps.ExtractorConfig{N: 3})
				found := false
				e.OnSequence = func(_ uint16, s deps.Sequence) {
					if match(s) {
						found = true
					}
				}
				for _, r := range run.Trace.Records {
					if r.Store {
						e.Store(r.Tid, r.PC, r.Addr, r.Stack)
					} else {
						e.Load(r.Tid, r.PC, r.Addr, r.Stack)
					}
				}
				if found {
					t.Errorf("seed %d: correct trace contains the root-cause sequence", run.Seed)
				}
			}
		})
	}
}

func TestCollectOutcome(t *testing.T) {
	b := Gzip()
	fails, err := CollectOutcome(b, true, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range fails {
		if !r.Result.Failed {
			t.Error("collected non-failing run as failure")
		}
	}
	oks, err := CollectOutcome(b, false, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range oks {
		if r.Result.Failed {
			t.Error("collected failing run as correct")
		}
	}
}

func TestBugByName(t *testing.T) {
	for _, name := range []string{"apache", "gzip", "injected-lu"} {
		if _, err := BugByName(name); err != nil {
			t.Errorf("BugByName(%q): %v", name, err)
		}
	}
	if _, err := BugByName("no-such-bug"); err == nil {
		t.Error("unknown bug accepted")
	}
}
