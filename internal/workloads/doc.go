package workloads

// The bug catalogue and its real-world counterparts.
//
// Table V (real bugs). Each program models the communication structure
// of a documented bug in the named application:
//
//   - aget: the downloader's SIGINT handler persists the shared
//     `bwritten` progress counter without synchronizing with the
//     worker threads — an order violation; an early signal saves a stale
//     resume offset and the resume log is corrupt.
//   - apache: a connection object's reference counter is checked and the
//     object used non-atomically while another thread decrements the
//     count and frees the object — use-after-free crash (the classic
//     atomicity violation of the paper's Figure 2(c) family).
//   - memcached: an item's length and payload are updated through two
//     code paths without making the pair atomic; a get can return a torn
//     item (one path's length, the other's payload).
//   - mysql1: two session threads claim the same binlog slot because the
//     position fetch is unsynchronized; interleaved id/stamp stores leave
//     a torn (or silently lost) log entry, discovered by the recovery
//     scan.
//   - mysql2: SHOW PROCESSLIST reads thd->proc_info after a non-NULL
//     check while the owner clears it in the window — NULL dereference.
//   - mysql3: the join cache's record count is published before the
//     payload and the two refill paths fill different extents; a
//     concurrent scan iterates out of step with the contents (the
//     paper's out-of-bound loop).
//   - pbzip2: the main thread frees the block FIFO after a bounded wait
//     instead of joining the consumers — use-after-free crash in a slow
//     consumer.
//   - gzip: the paper's own Figure 2(d): processing "-" reuses the ifd
//     descriptor variable, so stdin inherits the previous file's
//     descriptor (buggy dependence S3→S2).
//   - seq: a rarely used format's parsing writes the separator into the
//     terminator slot; print_numbers ends the output with the wrong
//     character.
//   - ptx: the paper's Figure 2(e): the escape-copying loop steps past
//     the end of `string` on an odd run of trailing backslashes and the
//     load observes whatever instruction last wrote the adjacent word.
//   - paste: collapse_escapes consumes two characters per backslash, so
//     a delimiter list ending in a lone backslash reads past the buffer
//     and paste crashes on the garbage delimiter.
//
// Table VI (injected bugs). An atomicity violation
// (publish / check-then-use / retract-in-the-window) is spliced into new
// code appended to barnes (TouchArray), ocean (VListInteraction),
// fluidanimate (ComputeDensities-MT), lu (TouchA) and swaptions
// (worker); training never sees the function (NewCodeFilter).
//
// Outcome labelling. "Crash" bugs assert at the faulting access; "Comp."
// bugs run to completion and assert on the ill effect (corrupt log,
// wrong output) at the end — standing in for the user noticing the
// corruption. Whether a given execution fails depends on the seed:
// through the interleaving (Pause race windows taken with seed-dependent
// probability) for the concurrency bugs, through the synthesized input
// for the sequential ones.
