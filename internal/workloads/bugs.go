package workloads

import (
	"fmt"

	"act/internal/deps"
	"act/internal/program"
	"act/internal/trace"
	"act/internal/vm"
)

// Bug is one of the evaluation's buggy applications. A single generator
// produces every execution; whether a run fails depends on the seed —
// through the interleaving for concurrency bugs, through the synthesized
// input for sequential bugs — exactly as outcomes depend on timing and
// input in the original applications.
type Bug struct {
	Name    string
	Desc    string // Table V description
	Status  string // "Crash" or "Comp." (completes with ill effects)
	Class   string // "order", "atomicity", "semantic", "overflow"
	Threads int
	// Gen builds the program and scheduling for one execution.
	Gen func(seed int64) (*program.Program, vm.SchedConfig)
	// RootS and RootL name the marks of the root-cause dependence: the
	// store whose value the load at RootL must not (or must) see.
	RootS, RootL string
	// RootMatch, when set, overrides the default root-cause recognizer
	// (bugs whose root cause is a relationship between dependences, not
	// a single store-load pair, need one).
	RootMatch func(p *program.Program) func(deps.Sequence) bool
}

// Matcher returns the root-cause recognizer for a built instance of the
// bug program: a predicate over dependence sequences that is true for
// the sequence a correct diagnosis must surface.
func (b Bug) Matcher(p *program.Program) func(deps.Sequence) bool {
	if b.RootMatch != nil {
		return b.RootMatch(p)
	}
	s, okS := p.FindMark(b.RootS)
	l, okL := p.FindMark(b.RootL)
	if !okS || !okL {
		// The buggy code path is absent from this build (input-dependent
		// bugs): the root cause cannot occur.
		return func(deps.Sequence) bool { return false }
	}
	return func(seq deps.Sequence) bool {
		for _, d := range seq {
			if d.S == s && d.L == l {
				return true
			}
		}
		return false
	}
}

// RealBugs returns the eleven Table V bug applications.
func RealBugs() []Bug {
	return []Bug{
		Aget(), Apache(), Memcached(), MySQL1(), MySQL2(), MySQL3(),
		PBzip2(), Gzip(), Seq(), Ptx(), Paste(),
	}
}

// BugByName returns the named bug program.
func BugByName(name string) (Bug, error) {
	for _, b := range RealBugs() {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range InjectedBugs() {
		if b.Name == name {
			return b.Bug, nil
		}
	}
	return Bug{}, fmt.Errorf("workloads: unknown bug %q", name)
}

// Run is one collected execution of a bug program.
type Run struct {
	Seed    int64
	Program *program.Program
	Trace   *trace.Trace
	Result  *vm.Result
}

// CollectOutcome runs the bug generator over successive seeds starting
// at seedBase, keeping executions whose failure status matches wantFail,
// until n are collected. It gives up after maxTries seeds.
func CollectOutcome(b Bug, wantFail bool, n int, seedBase int64) ([]Run, error) {
	const maxTriesPerRun = 200
	var out []Run
	seed := seedBase
	for tries := 0; len(out) < n; tries++ {
		if tries > maxTriesPerRun*n {
			return out, fmt.Errorf("workloads: %s: only %d/%d runs with fail=%v after %d tries",
				b.Name, len(out), n, wantFail, tries)
		}
		p, sched := b.Gen(seed)
		tr, res := trace.Collect(p, sched)
		if res.Failed == wantFail && !res.TimedOut {
			out = append(out, Run{Seed: seed, Program: p, Trace: tr, Result: res})
		}
		seed++
	}
	return out, nil
}

// FailureRate estimates the fraction of executions that fail over the
// first n seeds — used to sanity-check that bugs are rare but reachable.
func FailureRate(b Bug, n int, seedBase int64) float64 {
	fails := 0
	for i := 0; i < n; i++ {
		p, sched := b.Gen(seedBase + int64(i))
		res := vm.Run(p, sched)
		if res.Failed {
			fails++
		}
	}
	return float64(fails) / float64(n)
}
