// Package workloads provides the benchmark programs of the evaluation:
// SPLASH-2- and PARSEC-like parallel kernels, SPEC- and coreutils-like
// sequential programs, and the eleven real-bug plus five injected-bug
// programs of Tables V and VI. Each workload is a synthetic program in
// the reproduction's ISA whose data-communication structure mirrors the
// original application's; the bug programs additionally reproduce the
// original failure mechanism (atomicity violation, order violation,
// semantic error, buffer overflow) under a controllable interleaving.
package workloads

import (
	"fmt"

	"act/internal/program"
	"act/internal/vm"
)

// Workload is a failure-free benchmark used for training-quality,
// adaptivity, and overhead experiments.
type Workload struct {
	Name    string
	Suite   string // "splash2", "parsec", "spec", "coreutils"
	Threads int
	// Build constructs the program for one input; the seed varies array
	// sizes and access patterns the way different inputs would.
	Build func(seed int64) *program.Program
	// Sched returns the scheduler configuration for one execution.
	Sched func(seed int64) vm.SchedConfig
}

// defaultSched is the scheduling most workloads use: moderate bursts,
// interleaving varied by seed.
func defaultSched(seed int64) vm.SchedConfig {
	return vm.SchedConfig{Seed: seed, MeanBurst: 40}
}

// Kernels returns the failure-free benchmark suite.
func Kernels() []Workload {
	return []Workload{
		LU(), FFT(), Radix(), Ocean(), Barnes(),
		Canneal(), Fluidanimate(), Swaptions(), Streamcluster(), Dedup(),
		Bzip2(), MCF(), GCC(), Sort(),
	}
}

// KernelByName returns the named kernel.
func KernelByName(name string) (Workload, error) {
	for _, w := range Kernels() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown kernel %q", name)
}

// ConcurrentKernels returns only the multi-threaded kernels (the
// adaptivity experiment uses these: "the hardest to predict").
func ConcurrentKernels() []Workload {
	var out []Workload
	for _, w := range Kernels() {
		if w.Threads > 1 {
			out = append(out, w)
		}
	}
	return out
}

// lcgStep emits in-program pseudo-random state advance:
// state = (state*a + c) % m, leaving the new state in rState and
// state % bound in rOut. Uses rTmp1, rTmp2 as scratch.
func lcgStep(b *program.Builder, rState, rOut, rTmp1, rTmp2 uint8, bound int64) {
	b.Li(rTmp1, 1103515245)
	b.Mul(rState, rState, rTmp1)
	b.Addi(rState, rState, 12345)
	b.Li(rTmp1, 1<<31)
	b.Rem(rState, rState, rTmp1)
	// keep state positive: state = state*state's sign fix via And mask
	b.Li(rTmp2, 0x7fffffff)
	b.And(rState, rState, rTmp2)
	b.Li(rTmp1, bound)
	b.Rem(rOut, rState, rTmp1)
}
