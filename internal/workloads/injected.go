package workloads

import (
	"fmt"

	"act/internal/deps"
	"act/internal/isa"
	"act/internal/program"
	"act/internal/vm"
)

// InjectedBug is a Table VI experiment: a communication bug injected
// into *new* code — a function appended to a kernel whose dependences
// are withheld from training, modelling a buggy function added after the
// program shipped.
type InjectedBug struct {
	Bug
	Kernel string // base kernel the code is injected into
	Func   string // the injected function's name (Table VI's column)
}

// InjectedBugs returns the five Table VI experiments.
func InjectedBugs() []InjectedBug {
	specs := []struct{ kernel, fn string }{
		{"barnes", "TouchArray"},
		{"ocean", "VListInteraction"},
		{"fluidanimate", "ComputeDensities-MT"},
		{"lu", "TouchA"},
		{"swaptions", "worker"},
	}
	out := make([]InjectedBug, 0, len(specs))
	for _, s := range specs {
		out = append(out, injectedInto(s.kernel, s.fn))
	}
	return out
}

// InjectedBugByName returns the injected bug for the given kernel.
func InjectedBugByName(kernel string) (InjectedBug, error) {
	for _, b := range InjectedBugs() {
		if b.Kernel == kernel {
			return b, nil
		}
	}
	return InjectedBug{}, fmt.Errorf("workloads: no injected bug for kernel %q", kernel)
}

// NewCodeFilter returns a predicate for dependences that belong to the
// injected code of a built instance: either endpoint in the appended
// region. Training withholds these; that is what makes the code "new".
func (ib InjectedBug) NewCodeFilter(p *program.Program) func(deps.Dep) bool {
	lo0 := p.MarkPC("t0.injStart")
	lo1 := p.MarkPC("t1.injStart")
	in := func(pc uint64) bool {
		t := isa.ThreadOf(pc)
		return (t == 0 && pc >= lo0) || (t == 1 && pc >= lo1)
	}
	return func(d deps.Dep) bool { return in(d.L) || in(d.S) }
}

// injectedInto builds the Table VI bug for one kernel: an atomicity
// violation (publish/check-then-use/retract) spliced into threads 0 and
// 1 after the kernel's own work, with a handshake so both threads are in
// the new code together.
func injectedInto(kernel, fn string) InjectedBug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		w, err := KernelByName(kernel)
		if err != nil {
			panic(err)
		}
		p := w.Build(seed)

		// Fresh shared variables above every existing allocation.
		top := uint64(program.DataBase)
		for _, v := range p.Vars {
			if end := v.Addr + uint64(v.Words+2)*8; end > top {
				top = end
			}
		}
		iflag := top + 64
		idata := iflag + 8
		istart := idata + 8
		bready := istart + 8

		// Thread 0: the owner — publishes the object repeatedly.
		a := program.NewBuilder()
		a.Mark("injStart")
		a.LiAddr(1, iflag)
		a.LiAddr(2, idata)
		a.LiAddr(3, istart)
		a.LiAddr(4, bready)
		a.Li(rT1, 1)
		a.Store(rT1, 3, 0) // istart = 1
		a.Label("waitb")
		a.Load(rT2, 4, 0)
		a.Pause()
		a.Beqz(rT2, "waitb")
		a.Li(rK, 12) // publish/retract cycles
		a.Label("cycle")
		a.Addi(rT1, rK, 700)
		a.Mark("injData")
		a.Store(rT1, 2, 0) // data = valid payload
		a.Li(rT1, 1)
		a.Mark("injSet")
		a.Store(rT1, 1, 0) // flag = published
		a.Li(rI, 9)
		a.Label("hold")
		a.Addi(rI, rI, -1)
		a.Bnez(rI, "hold")
		a.Li(rT1, 0)
		a.Mark("injClear")
		a.Store(rT1, 2, 0) // retract payload first (the injected bug:
		a.Li(rT1, 0)       // wrong order, like freeing before unlinking)
		a.Mark("injUnset")
		a.Store(rT1, 1, 0)
		a.Addi(rK, rK, -1)
		a.Bnez(rK, "cycle")
		a.Halt()

		// Thread 1: the user — check-then-use with a window.
		b := program.NewBuilder()
		b.Mark("injStart")
		b.LiAddr(1, iflag)
		b.LiAddr(2, idata)
		b.LiAddr(3, istart)
		b.LiAddr(4, bready)
		b.Label("waita")
		b.Load(rT2, 3, 0)
		b.Pause()
		b.Beqz(rT2, "waita")
		b.Li(rT1, 1)
		b.Store(rT1, 4, 0) // bready = 1
		b.Li(rK, 30)       // polls
		b.Label("poll")
		b.Mark("injChk")
		b.Load(rT2, 1, 0) // if (flag)
		b.Beqz(rT2, "skip")
		b.Pause() // the race window
		b.Mark("injUse")
		b.Load(rT3, 2, 0) // use data
		b.Assert(rT3)     // crash on retracted payload
		b.Label("skip")
		b.Li(rI, 4)
		b.Label("gap")
		b.Addi(rI, rI, -1)
		b.Bnez(rI, "gap")
		b.Addi(rK, rK, -1)
		b.Bnez(rK, "poll")
		b.Halt()

		mustAppend(p, 0, a)
		mustAppend(p, 1, b)
		sched := w.Sched(seed)
		sched.PausePct = int(6 + seed%20)
		return p, sched
	}
	return InjectedBug{
		Bug: Bug{
			Name: "injected-" + kernel, Desc: "Injected atom. vio. in " + fn,
			Status: "Crash", Class: "atomicity", Threads: 0, Gen: gen,
			RootS: "t0.injClear", RootL: "t1.injUse",
		},
		Kernel: kernel, Func: fn,
	}
}

// mustAppend splices separately built code onto the end of thread t,
// replacing the trailing Halt; branch targets and marks are rebased.
func mustAppend(p *program.Program, t int, b *program.Builder) {
	snippet, err := b.Build()
	if err != nil {
		panic(err)
	}
	code := p.Threads[t]
	if n := len(code); n > 0 && code[n-1].Op == isa.Halt {
		code = code[:n-1]
	}
	base := int32(len(code))
	for _, in := range snippet {
		if in.Op.IsBranch() {
			in.Target += base
		}
		code = append(code, in)
	}
	p.Threads[t] = code
	for name, idx := range b.Marks() {
		p.Marks[fmt.Sprintf("t%d.%s", t, name)] = isa.PC(t, int(base)+idx)
	}
}
