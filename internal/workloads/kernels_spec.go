package workloads

import (
	"act/internal/program"
)

// Bzip2 is the SPEC INT bzip2 stand-in: a sequential run-length-style
// pass over an input buffer with loop-carried state held in memory —
// the intra-thread dependence chains typical of compression inner loops.
func Bzip2() Workload {
	build := func(seed int64) *program.Program {
		n := 60 + 10*int(seed%3)
		pb := program.New("bzip2")
		in := pb.Space().Alloc("in", n)
		out := pb.Space().Alloc("out", n)
		state := pb.Space().Alloc("state", 2) // [prev, runLen]
		for i := 0; i < n; i++ {
			// Repetitive input with seed-dependent period to exercise
			// both branch directions of the run-length test.
			period := 3 + int(seed%4)
			pb.SetInit(in+uint64(i)*8, int64(i/period%5))
		}

		b := pb.Thread()
		b.LiAddr(rA, in)
		b.LiAddr(rB, out)
		b.LiAddr(rC, state)
		b.Li(rI, 0)
		b.Li(rT3, int64(n))
		b.Label("loop")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, rA)
		b.Mark("inLoad")
		b.Load(rT2, rT1, 0) // cur = in[i]
		b.Mark("prevLoad")
		b.Load(rT4, rC, 0) // prev
		b.Seq(rJ, rT2, rT4)
		b.Beqz(rJ, "newrun")
		// same as prev: runLen++
		b.Load(rT4, rC, 8)
		b.Addi(rT4, rT4, 1)
		b.Store(rT4, rC, 8)
		b.Jmp("emit")
		b.Label("newrun")
		// flush: out[i] = runLen, reset
		b.Load(rT4, rC, 8)
		b.Li(rJ, 8)
		b.Mul(rK, rI, rJ)
		b.Add(rK, rK, rB)
		b.Mark("outStore")
		b.Store(rT4, rK, 0)
		b.Li(rT4, 1)
		b.Store(rT4, rC, 8)
		b.Label("emit")
		b.Store(rT2, rC, 0) // prev = cur
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "loop")
		b.Load(rT4, rC, 8)
		b.Out(rT4)
		b.Halt()
		return pb.MustBuild()
	}
	return Workload{Name: "bzip2", Suite: "spec", Threads: 1, Build: build, Sched: defaultSched}
}

// MCF is the SPEC INT mcf stand-in: sequential pointer chasing over a
// linked structure built earlier in the run — loads whose last writers
// are the list-construction stores.
func MCF() Workload {
	build := func(seed int64) *program.Program {
		nodes := 16 + 4*int(seed%3)
		rounds := 4
		pb := program.New("mcf")
		// node i occupies two words: [val, next-index]
		heap := pb.Space().Alloc("heap", nodes*2)

		b := pb.Thread()
		b.LiAddr(rA, heap)
		// Build: node i -> next = (i*7+seed)%nodes (a seeded permutation walk)
		b.Li(rI, 0)
		b.Li(rT3, int64(nodes))
		b.Label("build")
		b.Li(rT2, 16)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, rA)
		b.Mark("valStore")
		b.Store(rI, rT1, 0) // val = i
		b.Li(rT2, 7)
		b.Mul(rT4, rI, rT2)
		b.Addi(rT4, rT4, seed%13+1)
		b.Rem(rT4, rT4, rT3)
		b.Mark("nextStore")
		b.Store(rT4, rT1, 8) // next = walk(i)
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "build")

		// Traverse: follow next pointers, summing vals.
		b.Li(rK, 0) // current node
		b.Li(rJ, int64(rounds*nodes))
		b.Li(rT4, 0) // sum
		b.Label("chase")
		b.Li(rT2, 16)
		b.Mul(rT1, rK, rT2)
		b.Add(rT1, rT1, rA)
		b.Mark("valLoad")
		b.Load(rT2, rT1, 0)
		b.Add(rT4, rT4, rT2)
		// Relax the node's potential: revisited nodes now depend on this
		// store instead of the build-phase one.
		b.Addi(rT2, rT2, 1)
		b.Mark("valUpdate")
		b.Store(rT2, rT1, 0)
		b.Mark("nextLoad")
		b.Load(rK, rT1, 8) // current = current.next
		b.Addi(rJ, rJ, -1)
		b.Bnez(rJ, "chase")
		b.Out(rT4)
		b.Halt()
		return pb.MustBuild()
	}
	return Workload{Name: "mcf", Suite: "spec", Threads: 1, Build: build, Sched: defaultSched}
}
