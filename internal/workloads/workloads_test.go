package workloads

import (
	"testing"

	"act/internal/deps"
	"act/internal/trace"
	"act/internal/vm"
)

func TestKernelsRunClean(t *testing.T) {
	for _, w := range Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				p := w.Build(seed)
				if p.NumThreads() != w.Threads {
					t.Fatalf("threads = %d, want %d", p.NumThreads(), w.Threads)
				}
				res := vm.Run(p, w.Sched(seed))
				if res.Failed {
					t.Fatalf("seed %d failed: %s", seed, res.Reason)
				}
				if res.TimedOut {
					t.Fatalf("seed %d timed out after %d steps", seed, res.Steps)
				}
				if res.Steps < 100 {
					t.Fatalf("seed %d trivially short: %d steps", seed, res.Steps)
				}
			}
		})
	}
}

func TestKernelsProduceDeps(t *testing.T) {
	for _, w := range Kernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tr, _ := trace.Collect(w.Build(1), w.Sched(1))
			gen := deps.NewGenerator(deps.ExtractorConfig{N: 3}, nil)
			gen.Add(tr)
			if gen.TotalDeps() < 20 {
				t.Fatalf("only %d dynamic deps", gen.TotalDeps())
			}
			ds := gen.Dataset()
			if ds.Positives() < 5 {
				t.Fatalf("only %d unique sequences", ds.Positives())
			}
			if w.Threads > 1 {
				// Multi-threaded kernels must communicate.
				inter := false
				for _, ex := range ds.Examples {
					for _, d := range ex.Seq {
						if d.Inter {
							inter = true
						}
					}
				}
				if !inter {
					t.Fatal("no inter-thread dependences in a parallel kernel")
				}
			}
		})
	}
}

func TestKernelsVaryWithSeed(t *testing.T) {
	// Different seeds (inputs) must produce at least somewhat different
	// dynamic behaviour, or the "multiple executions" of the paper's
	// training methodology would be meaningless.
	w, err := KernelByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	tr0, _ := trace.Collect(w.Build(0), w.Sched(0))
	tr1, _ := trace.Collect(w.Build(1), w.Sched(1))
	if len(tr0.Records) == len(tr1.Records) {
		t.Log("same record count; checking contents")
		same := true
		for i := range tr0.Records {
			if tr0.Records[i] != tr1.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 0 and 1 produced identical traces")
		}
	}
}

func TestConcurrentKernels(t *testing.T) {
	for _, w := range ConcurrentKernels() {
		if w.Threads < 2 {
			t.Errorf("%s listed as concurrent with %d threads", w.Name, w.Threads)
		}
	}
	if len(ConcurrentKernels()) < 5 {
		t.Error("too few concurrent kernels")
	}
}

func TestKernelByNameUnknown(t *testing.T) {
	if _, err := KernelByName("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}
