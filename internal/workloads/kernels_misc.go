package workloads

import (
	"act/internal/program"
)

// GCC is the SPEC INT gcc stand-in: a sequential, branch-heavy token
// state machine over an input stream, with a state table that is read
// and updated as tokens are consumed — irregular intra-thread RAW
// chains steered by data-dependent branches.
func GCC() Workload {
	build := func(seed int64) *program.Program {
		tokens := 50 + 10*int(seed%3)
		states := 6
		pb := program.New("gcc")
		sp := pb.Space()
		input := sp.Alloc("input", tokens)
		stab := sp.Alloc("stab", states)  // state table: visit counts
		cur := sp.Alloc("cur", 1)         // current state
		emitted := sp.Alloc("emitted", 1) // output counter
		for i := 0; i < tokens; i++ {
			pb.SetInit(input+uint64(i)*8, (int64(i)*7+seed)%4)
		}

		b := pb.Thread()
		b.LiAddr(1, input)
		b.LiAddr(2, stab)
		b.LiAddr(3, cur)
		b.LiAddr(4, emitted)
		// parser init
		b.Li(rT1, 0)
		b.Mark("stateInit")
		b.Store(rT1, 3, 0)
		b.Li(rI, 0)
		b.Li(rT3, int64(tokens))
		b.Label("token")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 1)
		b.Load(rT4, rT1, 0) // tok = input[i]
		b.Mark("stateLoad")
		b.Load(rJ, 3, 0) // s = cur
		// branchy transition: keywords advance, operators reset,
		// identifiers self-loop, literals skip-advance
		b.Beqz(rT4, "reset")
		b.Li(rT2, 1)
		b.Seq(rT2, rT4, rT2)
		b.Bnez(rT2, "selfloop")
		b.Li(rT2, 2)
		b.Seq(rT2, rT4, rT2)
		b.Bnez(rT2, "skipadv")
		// keyword: s = (s + 1) % states
		b.Addi(rJ, rJ, 1)
		b.Li(rT2, int64(states))
		b.Rem(rJ, rJ, rT2)
		b.Mark("advStore")
		b.Store(rJ, 3, 0)
		b.Jmp("account")
		b.Label("reset")
		b.Li(rJ, 0)
		b.Mark("resetStore")
		b.Store(rJ, 3, 0)
		b.Jmp("account")
		b.Label("selfloop")
		// identifier: emit in place
		b.Load(rT2, 4, 0)
		b.Addi(rT2, rT2, 1)
		b.Store(rT2, 4, 0)
		b.Jmp("account")
		b.Label("skipadv")
		b.Addi(rJ, rJ, 2)
		b.Li(rT2, int64(states))
		b.Rem(rJ, rJ, rT2)
		b.Mark("skipStore")
		b.Store(rJ, 3, 0)
		b.Label("account")
		// stab[s]++
		b.Li(rT2, 8)
		b.Mul(rT1, rJ, rT2)
		b.Add(rT1, rT1, 2)
		b.Mark("stabLoad")
		b.Load(rT2, rT1, 0)
		b.Addi(rT2, rT2, 1)
		b.Mark("stabStore")
		b.Store(rT2, rT1, 0)
		b.Addi(rI, rI, 1)
		b.Slt(rT2, rI, rT3)
		b.Bnez(rT2, "token")
		b.Load(rT4, 4, 0)
		b.Out(rT4)
		b.Halt()
		return pb.MustBuild()
	}
	return Workload{Name: "gcc", Suite: "spec", Threads: 1, Build: build, Sched: defaultSched}
}

// Dedup is the PARSEC dedup stand-in: a three-stage pipeline (chunker →
// hasher → writer) over bounded queues, the classic hand-off pattern
// where each stage's loads depend on the previous stage's stores.
func Dedup() Workload {
	const nThreads = 3
	build := func(seed int64) *program.Program {
		items := 16 + 4*int(seed%3)
		qcap := items + 1
		pb := program.New("dedup")
		sp := pb.Space()
		q1 := sp.Alloc("q1", qcap) // chunker -> hasher
		q1n := sp.Alloc("q1n", 1)
		q2 := sp.Alloc("q2", qcap) // hasher -> writer
		q2n := sp.Alloc("q2n", 1)
		out := sp.Alloc("out", qcap)

		// Stage 1: chunker produces items into q1.
		t0 := pb.Thread()
		t0.LiAddr(1, q1)
		t0.LiAddr(2, q1n)
		t0.Li(rS, seed*5+3)
		t0.Li(rI, 0)
		t0.Li(rT3, int64(items))
		t0.Label("chunk")
		lcgStep(t0, rS, rT4, rT1, rT2, 997)
		t0.Li(rT2, 8)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, 1)
		t0.Mark("chunkStore")
		t0.Store(rT4, rT1, 0) // q1[i] = chunk
		t0.Addi(rT2, rI, 1)
		t0.Store(rT2, 2, 0) // q1n = i+1
		t0.Addi(rI, rI, 1)
		t0.Slt(rT2, rI, rT3)
		t0.Bnez(rT2, "chunk")
		t0.Halt()

		// Stage 2: hasher consumes q1, produces q2.
		t1 := pb.Thread()
		t1.LiAddr(1, q1)
		t1.LiAddr(2, q1n)
		t1.LiAddr(3, q2)
		t1.LiAddr(4, q2n)
		t1.Li(rI, 0)
		t1.Li(rT3, int64(items))
		t1.Label("hash")
		t1.Label("avail")
		t1.Load(rT2, 2, 0)
		t1.Pause()
		t1.Slt(rT1, rI, rT2)
		t1.Beqz(rT1, "avail")
		t1.Li(rT2, 8)
		t1.Mul(rT1, rI, rT2)
		t1.Add(rT1, rT1, 1)
		t1.Mark("hashLoad")
		t1.Load(rT4, rT1, 0) // chunk
		// "hash": a little arithmetic
		t1.Li(rT2, 2654435761)
		t1.Mul(rT4, rT4, rT2)
		t1.Li(rT2, 1<<20)
		t1.Rem(rT4, rT4, rT2)
		t1.Li(rT2, 8)
		t1.Mul(rT1, rI, rT2)
		t1.Add(rT1, rT1, 3)
		t1.Mark("hashStore")
		t1.Store(rT4, rT1, 0) // q2[i] = digest
		t1.Addi(rT2, rI, 1)
		t1.Store(rT2, 4, 0) // q2n = i+1
		t1.Addi(rI, rI, 1)
		t1.Slt(rT2, rI, rT3)
		t1.Bnez(rT2, "hash")
		t1.Halt()

		// Stage 3: writer consumes q2 and deduplicates against a tiny
		// recent-digest window.
		t2 := pb.Thread()
		t2.LiAddr(3, q2)
		t2.LiAddr(4, q2n)
		t2.LiAddr(5, out)
		t2.Li(rI, 0)
		t2.Li(rK, 0) // written count
		t2.Li(rT3, int64(items))
		t2.Label("write")
		t2.Label("avail")
		t2.Load(rT2, 4, 0)
		t2.Pause()
		t2.Slt(rT1, rI, rT2)
		t2.Beqz(rT1, "avail")
		t2.Li(rT2, 8)
		t2.Mul(rT1, rI, rT2)
		t2.Add(rT1, rT1, 3)
		t2.Mark("writeLoad")
		t2.Load(rT4, rT1, 0)
		// dedup check against the previous output
		t2.Li(rJ, 0)
		t2.Beqz(rK, "fresh")
		t2.Addi(rJ, rK, -1)
		t2.Li(rT2, 8)
		t2.Mul(rJ, rJ, rT2)
		t2.Add(rJ, rJ, 5)
		t2.Mark("dedupLoad")
		t2.Load(rJ, rJ, 0)
		t2.Seq(rJ, rJ, rT4)
		t2.Bnez(rJ, "skip")
		t2.Label("fresh")
		t2.Li(rT2, 8)
		t2.Mul(rT1, rK, rT2)
		t2.Add(rT1, rT1, 5)
		t2.Mark("writeStore")
		t2.Store(rT4, rT1, 0)
		t2.Addi(rK, rK, 1)
		t2.Label("skip")
		t2.Addi(rI, rI, 1)
		t2.Slt(rT2, rI, rT3)
		t2.Bnez(rT2, "write")
		t2.Out(rK)
		t2.Halt()
		return pb.MustBuild()
	}
	return Workload{Name: "dedup", Suite: "parsec", Threads: nThreads, Build: build, Sched: defaultSched}
}

// Sort is the coreutils sort stand-in: a sequential bottom-up merge sort
// over an array, alternating between two buffers — dense, phase-shifting
// intra-thread communication.
func Sort() Workload {
	build := func(seed int64) *program.Program {
		n := 16 + 8*int(seed%2)
		pb := program.New("sort")
		sp := pb.Space()
		a := sp.Alloc("a", n)
		bbuf := sp.Alloc("b", n)
		for i := 0; i < n; i++ {
			pb.SetInit(a+uint64(i)*8, (int64(i)*131+seed*17)%1000)
		}

		b := pb.Thread()
		b.LiAddr(1, a)
		b.LiAddr(2, bbuf)
		// Bottom-up merge with width doubling; src/dst swap via registers
		// r5 (src base) and r6 (dst base).
		b.Mov(5, 1)
		b.Mov(6, 2)
		b.Li(rK, 1) // width
		b.Label("pass")
		b.Li(rI, 0) // output index
		b.Li(25, 0) // left cursor
		b.Add(26, 25, rK)
		b.Label("merge")
		// pick from left run if its head is smaller (bounds simplified:
		// cursor clamping via Slt chains)
		b.Li(rT2, 8)
		b.Mul(rT1, 25, rT2)
		b.Add(rT1, rT1, 5)
		b.Mark("leftLoad")
		b.Load(rT3, rT1, 0)
		b.Li(rT2, 8)
		b.Mul(rT1, 26, rT2)
		b.Add(rT1, rT1, 5)
		b.Mark("rightLoad")
		b.Load(rT4, rT1, 0)
		b.Slt(rJ, rT4, rT3)
		b.Bnez(rJ, "takeRight")
		b.Mov(rT4, rT3)
		b.Addi(25, 25, 1)
		b.Jmp("emit")
		b.Label("takeRight")
		b.Addi(26, 26, 1)
		b.Label("emit")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 6)
		b.Mark("emitStore")
		b.Store(rT4, rT1, 0)
		b.Addi(rI, rI, 1)
		b.Li(rT2, int64(n))
		b.Slt(rT1, rI, rT2)
		b.Bnez(rT1, "merge")
		// swap src/dst, double the width
		b.Mov(rT1, 5)
		b.Mov(5, 6)
		b.Mov(6, rT1)
		b.Add(rK, rK, rK)
		b.Li(rT2, int64(n))
		b.Slt(rT1, rK, rT2)
		b.Bnez(rT1, "pass")
		// Output phase: bucket the merged values (data-dependent
		// indexing) and verify neighbouring order — the summary lines
		// sort prints at the end.
		hist := sp.Alloc("hist", 4)
		b.LiAddr(7, hist)
		b.Li(rI, 0)
		b.Label("bucket")
		b.Li(rT2, 8)
		b.Mul(rT1, rI, rT2)
		b.Add(rT1, rT1, 5) // final buffer is the last src
		b.Mark("resultLoad")
		b.Load(rT4, rT1, 0)
		b.Li(rT2, 250)
		b.Div(rT3, rT4, rT2)
		b.Li(rT2, 4)
		b.Rem(rT3, rT3, rT2)
		b.Li(rT2, 8)
		b.Mul(rT3, rT3, rT2)
		b.Add(rT3, rT3, 7)
		b.Mark("histLoad")
		b.Load(rT2, rT3, 0)
		b.Addi(rT2, rT2, 1)
		b.Mark("histStore")
		b.Store(rT2, rT3, 0)
		b.Addi(rI, rI, 1)
		b.Li(rT2, int64(n))
		b.Slt(rT1, rI, rT2)
		b.Bnez(rT1, "bucket")
		b.Load(rT4, 7, 0)
		b.Out(rT4)
		b.Halt()
		return pb.MustBuild()
	}
	return Workload{Name: "sort", Suite: "coreutils", Threads: 1, Build: build, Sched: defaultSched}
}
