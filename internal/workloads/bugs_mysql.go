package workloads

import (
	"act/internal/deps"
	"act/internal/program"
	"act/internal/vm"
)

// MySQL1 models the binlog atomicity violation that loses logged data:
// two session threads append to the log buffer with an unsynchronized
// position fetch, so both can claim the same slot and interleave their
// id/stamp stores — one entry is lost and the surviving slot can be torn
// (id from one thread, stamp from the other). The recovery-time log scan
// discovers the corruption after the run completes.
func MySQL1() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		appends := 8
		slots := 2*appends + 2
		pb := program.New("mysql1")
		sp := pb.Space()
		pos := sp.Alloc("pos", 1)
		logv := sp.Alloc("log", slots*2) // per slot: [id, stamp]
		doneCnt := sp.Alloc("done", 1)

		for a := 1; a <= 2; a++ { // session threads append entries
			t := pb.Thread()
			t.LiAddr(1, pos)
			t.LiAddr(2, logv)
			t.LiAddr(3, doneCnt)
			t.Li(rK, int64(appends))
			t.Label("append")
			t.Mark("posLoad")
			t.Load(rI, 1, 0) // my_pos = pos        (no lock: the bug)
			t.Pause()        //                      window 1
			t.Addi(rT1, rI, 1)
			t.Mark("posStore")
			t.Store(rT1, 1, 0) // pos = my_pos + 1
			// write entry into slot my_pos
			t.Li(rT2, 16)
			t.Mul(rT1, rI, rT2)
			t.Add(rT1, rT1, 2)
			t.Li(rT2, int64(a))
			t.Mark("idStore")
			t.Store(rT2, rT1, 0) // slot.id = my thread tag
			t.Pause()            //                      window 2
			t.Li(rJ, 4)          // serialize the entry body (widens the window)
			t.Label("body")
			t.Addi(rJ, rJ, -1)
			t.Bnez(rJ, "body")
			t.Li(rT2, int64(a))
			t.Mark("stampStore")
			t.Store(rT2, rT1, 8) // slot.stamp = my thread tag
			// prepare next statement (private work)
			t.Li(rJ, 5)
			t.Label("work")
			t.Addi(rJ, rJ, -1)
			t.Bnez(rJ, "work")
			t.Addi(rK, rK, -1)
			t.Bnez(rK, "append")
			t.Li(rT1, 1)
			t.Atomic(rT2, rT1, 3, 0)
			t.Halt()
		}

		t0 := pb.Thread() // recovery scan after both sessions finish
		t0.LiAddr(1, pos)
		t0.LiAddr(2, logv)
		t0.LiAddr(3, doneCnt)
		t0.Label("join")
		t0.Load(rT2, 3, 0)
		t0.Pause()
		t0.Li(rT1, 2)
		t0.Slt(rT3, rT2, rT1)
		t0.Bnez(rT3, "join")
		t0.Load(rT3, 1, 0) // final pos
		t0.Li(rT4, 1)      // consistency accumulator
		t0.Li(rI, 0)
		t0.Label("scan")
		t0.Slt(rT1, rI, rT3)
		t0.Beqz(rT1, "checkcount")
		t0.Li(rT2, 16)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, 2)
		t0.Mark("chkIdLoad")
		t0.Load(rJ, rT1, 0)
		t0.Mark("chkStampLoad")
		t0.Load(rK, rT1, 8)
		t0.Seq(rT2, rJ, rK) // entry self-consistent?
		t0.Mul(rT4, rT4, rT2)
		t0.Addi(rI, rI, 1)
		t0.Jmp("scan")
		t0.Label("checkcount")
		// A torn entry (id and stamp from different sessions) is the
		// visible corruption. A cleanly overwritten (silently lost)
		// entry is not noticed — as in production.
		t0.Mark("illEffect")
		t0.Assert(rT4)
		t0.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 55, PausePct: int(4 + seed%18)}
	}
	rootMatch := func(p *program.Program) func(deps.Sequence) bool {
		id1, st1 := p.MarkPC("t0.idStore"), p.MarkPC("t0.stampStore")
		id2, st2 := p.MarkPC("t1.idStore"), p.MarkPC("t1.stampStore")
		chkID, chkSt := p.MarkPC("t2.chkIdLoad"), p.MarkPC("t2.chkStampLoad")
		return func(seq deps.Sequence) bool {
			// The root cause is a torn log entry: the scan's *adjacent*
			// id/stamp reads of one slot come from different sessions.
			for i := 0; i+1 < len(seq); i++ {
				a, b := seq[i], seq[i+1]
				if a.L != chkID || b.L != chkSt {
					continue
				}
				if (a.S == id1 && b.S == st2) || (a.S == id2 && b.S == st1) {
					return true
				}
			}
			return false
		}
	}
	return Bug{
		Name: "mysql1", Desc: "Atom. vio. causing a loss of logged data", Status: "Comp.",
		Class: "atomicity", Threads: 3, Gen: gen, RootMatch: rootMatch,
		RootS: "t0.stampStore", RootL: "t2.chkStampLoad",
	}
}

// MySQL3 models the join-init-cache atomicity violation: the cache
// refill writes the record count before the payload, and the two refill
// paths (small and large join) fill different extents. A scan that reads
// the count from one path while the payload is still the other path's
// iterates out of step with the contents and crashes.
func MySQL3() Bug {
	gen := func(seed int64) (*program.Program, vm.SchedConfig) {
		const ka, kb = 4, 8
		rounds := 10
		scans := 16
		pb := program.New("mysql3")
		sp := pb.Space()
		records := sp.Alloc("records", 1)
		buf := sp.Alloc("buf", kb)

		t0 := pb.Thread() // cache refill; the join type rarely changes
		t0.LiAddr(1, records)
		t0.LiAddr(2, buf)
		// allocate the cache: calloc zeroes the buffer
		t0.Li(rI, 0)
		t0.Label("alloc")
		t0.Li(rT2, 8)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, 2)
		t0.Li(rT2, 0)
		t0.Mark("allocStore")
		t0.Store(rT2, rT1, 0)
		t0.Addi(rI, rI, 1)
		t0.Li(rT2, kb)
		t0.Slt(rT1, rI, rT2)
		t0.Bnez(rT1, "alloc")
		t0.Li(rK, 0)
		t0.Label("round")
		// path selection: the large-join path runs only when
		// (3k + seed) % 5 == 0, so most refills repeat the same path and
		// are invisible to a concurrent scan — only a path *switch*
		// racing a scan can crash.
		t0.Li(rT2, 3)
		t0.Mul(rT1, rK, rT2)
		t0.Addi(rT1, rT1, seed%5)
		t0.Li(rT2, 5)
		t0.Rem(rT1, rT1, rT2)
		t0.Beqz(rT1, "big")
		// small-join path: records = ka, fill buf[0..ka) with ka
		t0.Li(rT1, ka)
		t0.Mark("recStoreA")
		t0.Store(rT1, 1, 0)
		t0.Pause() // count published before payload: the window
		t0.Li(rI, 0)
		t0.Label("fillA")
		t0.Li(rT2, 8)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, 2)
		t0.Li(rT2, ka)
		t0.Mark("fillStoreA")
		t0.Store(rT2, rT1, 0)
		t0.Addi(rI, rI, 1)
		t0.Li(rT2, ka)
		t0.Slt(rT1, rI, rT2)
		t0.Bnez(rT1, "fillA")
		t0.Jmp("next")
		t0.Label("big")
		// large-join path: records = kb, fill buf[0..kb) with kb
		t0.Li(rT1, kb)
		t0.Mark("recStoreB")
		t0.Store(rT1, 1, 0)
		t0.Pause()
		t0.Li(rI, 0)
		t0.Label("fillB")
		t0.Li(rT2, 8)
		t0.Mul(rT1, rI, rT2)
		t0.Add(rT1, rT1, 2)
		t0.Li(rT2, kb)
		t0.Mark("fillStoreB")
		t0.Store(rT2, rT1, 0)
		t0.Addi(rI, rI, 1)
		t0.Li(rT2, kb)
		t0.Slt(rT1, rI, rT2)
		t0.Bnez(rT1, "fillB")
		t0.Label("next")
		// prepare the next join (private work keeps refills apart)
		t0.Li(rJ, 40)
		t0.Label("prep")
		t0.Addi(rJ, rJ, -1)
		t0.Bnez(rJ, "prep")
		t0.Addi(rK, rK, 1)
		t0.Li(rT1, int64(rounds))
		t0.Slt(rT2, rK, rT1)
		t0.Bnez(rT2, "round")
		t0.Halt()

		t1 := pb.Thread() // join scan: re-read the count each iteration
		t1.LiAddr(1, records)
		t1.LiAddr(2, buf)
		t1.Li(rK, 0)
		t1.Label("scan")
		t1.Li(rI, 0)
		t1.Label("iter")
		t1.Mark("recLoad")
		t1.Load(rT3, 1, 0) // cache->records (unsynchronized: the bug)
		t1.Beqz(rT3, "skip")
		t1.Slt(rT1, rI, rT3)
		t1.Beqz(rT1, "skip")
		t1.Li(rT2, 8)
		t1.Mul(rT1, rI, rT2)
		t1.Add(rT1, rT1, 2)
		t1.Mark("bufLoad")
		t1.Load(rT2, rT1, 0)
		t1.Seq(rT4, rT2, rT3) // payload must match the count's path
		t1.Assert(rT4)        // out-of-step iteration: crash
		t1.Addi(rI, rI, 1)
		t1.Jmp("iter")
		t1.Label("skip")
		t1.Li(rJ, 25)
		t1.Label("gap")
		t1.Addi(rJ, rJ, -1)
		t1.Bnez(rJ, "gap")
		t1.Addi(rK, rK, 1)
		t1.Li(rT1, int64(scans))
		t1.Slt(rT2, rK, rT1)
		t1.Bnez(rT2, "scan")
		t1.Halt()

		return pb.MustBuild(), vm.SchedConfig{Seed: seed, MeanBurst: 90, PausePct: int(3 + seed%12)}
	}
	rootMatch := func(p *program.Program) func(deps.Sequence) bool {
		recA, recB := p.MarkPC("t0.recStoreA"), p.MarkPC("t0.recStoreB")
		fillA, fillB := p.MarkPC("t0.fillStoreA"), p.MarkPC("t0.fillStoreB")
		recLoad, bufLoad := p.MarkPC("t1.recLoad"), p.MarkPC("t1.bufLoad")
		return func(seq deps.Sequence) bool {
			// The root cause pairs a count with a payload that the
			// count's refill path did not write: the other path's fill,
			// or the allocator's zeroes on the first-refill race.
			for i := 0; i+1 < len(seq); i++ {
				a, b := seq[i], seq[i+1]
				if a.L != recLoad || b.L != bufLoad {
					continue
				}
				if (a.S == recA || a.S == recB) &&
					!(a.S == recA && b.S == fillA) && !(a.S == recB && b.S == fillB) {
					return true
				}
			}
			return false
		}
	}
	return Bug{
		Name: "mysql3", Desc: "Atom. vio. in join-init-cache causing out of bound loop", Status: "Crash",
		Class: "atomicity", Threads: 2, Gen: gen, RootMatch: rootMatch,
		RootS: "t0.recStoreB", RootL: "t1.recLoad",
	}
}
