package workloads

import (
	"act/internal/program"
)

// Canneal is the PARSEC canneal stand-in: threads repeatedly pick two
// pseudo-random elements and swap them under a lock — migratory sharing
// with lock-serialized read-modify-write pairs.
func Canneal() Workload {
	const nThreads = 2
	build := func(seed int64) *program.Program {
		elems := 12 + 4*int(seed%2)
		swaps := 40
		pb := program.New("canneal")
		arr := pb.Space().Alloc("elems", elems)
		lk := pb.Space().Alloc("lock", 1)

		for t := 0; t < nThreads; t++ {
			b := pb.Thread()
			b.LiAddr(rA, arr)
			b.LiAddr(rB, lk)
			b.Li(rS, seed+int64(t)*104729+3)
			b.Li(rI, int64(swaps))
			b.Label("swap")
			lcgStep(b, rS, rJ, rT2, rT3, int64(elems))
			lcgStep(b, rS, rK, rT2, rT3, int64(elems))
			b.Li(rT2, 8)
			b.Mul(rJ, rJ, rT2)
			b.Add(rJ, rJ, rA) // &elems[a]
			b.Mul(rK, rK, rT2)
			b.Add(rK, rK, rA) // &elems[b]
			b.Lock(rB, 0)
			b.Mark("swapLoadA")
			b.Load(rT1, rJ, 0)
			b.Load(rT2, rK, 0)
			b.Mark("swapStoreA")
			b.Store(rT2, rJ, 0)
			b.Store(rT1, rK, 0)
			b.Unlock(rB, 0)
			b.Addi(rI, rI, -1)
			b.Bnez(rI, "swap")
			b.Halt()
		}
		return pb.MustBuild()
	}
	return Workload{Name: "canneal", Suite: "parsec", Threads: nThreads, Build: build, Sched: defaultSched}
}

// Fluidanimate is the PARSEC fluidanimate stand-in: threads accumulate
// densities into cells of their own region and, occasionally, a
// neighbouring region's boundary cell, each accumulation lock-protected
// per cell group.
func Fluidanimate() Workload {
	const nThreads = 3
	build := func(seed int64) *program.Program {
		cellsPer := 6
		iters := 30 + 5*int(seed%2)
		total := nThreads * cellsPer
		pb := program.New("fluidanimate")
		cells := pb.Space().Alloc("cells", total)
		locks := pb.Space().Alloc("locks", nThreads)

		for t := 0; t < nThreads; t++ {
			b := pb.Thread()
			b.LiAddr(rA, cells)
			b.LiAddr(rB, locks)
			b.Li(rS, seed+int64(t)*7+1)
			b.Li(rI, int64(iters))
			b.Label("iter")
			// pick a cell: mostly in own region, every 4th in neighbour's
			lcgStep(b, rS, rJ, rT2, rT3, int64(cellsPer))
			b.Li(rT2, 4)
			b.Rem(rT1, rI, rT2)
			b.Li(rK, int64(t)) // region = own
			b.Bnez(rT1, "own")
			b.Li(rK, int64((t+1)%nThreads)) // region = neighbour
			b.Label("own")
			b.Li(rT2, int64(cellsPer))
			b.Mul(rT1, rK, rT2)
			b.Add(rJ, rJ, rT1) // cell index
			// lock region rK
			b.Li(rT2, 8)
			b.Mul(rT1, rK, rT2)
			b.Add(rT1, rT1, rB)
			b.Lock(rT1, 0)
			b.Li(rT2, 8)
			b.Mul(rJ, rJ, rT2)
			b.Add(rJ, rJ, rA)
			b.Mark("densLoad")
			b.Load(rT2, rJ, 0)
			b.Addi(rT2, rT2, 3)
			b.Mark("densStore")
			b.Store(rT2, rJ, 0)
			b.Unlock(rT1, 0)
			b.Addi(rI, rI, -1)
			b.Bnez(rI, "iter")
			b.Halt()
		}
		return pb.MustBuild()
	}
	return Workload{Name: "fluidanimate", Suite: "parsec", Threads: nThreads, Build: build, Sched: defaultSched}
}

// Swaptions is the PARSEC swaptions stand-in: overwhelmingly
// thread-private Monte-Carlo accumulation with one lock-protected
// reduction at the end — the low-communication end of the spectrum.
func Swaptions() Workload {
	const nThreads = 2
	build := func(seed int64) *program.Program {
		paths := 80 + 20*int(seed%2)
		pb := program.New("swaptions")
		priv := pb.Space().Alloc("priv", nThreads)
		total := pb.Space().Alloc("total", 1)
		lk := pb.Space().Alloc("lock", 1)

		for t := 0; t < nThreads; t++ {
			b := pb.Thread()
			b.LiAddr(rA, priv+uint64(t)*8)
			b.LiAddr(rB, total)
			b.LiAddr(rC, lk)
			b.Li(rS, seed+int64(t)*31+7)
			b.Li(rI, int64(paths))
			b.Label("path")
			lcgStep(b, rS, rT1, rT2, rT3, 1000)
			b.Mark("privLoad")
			b.Load(rT2, rA, 0)
			b.Add(rT2, rT2, rT1)
			b.Store(rT2, rA, 0)
			// Every 8th path checkpoints the accumulator from a second
			// static store, giving it multiple writers.
			b.Li(rT3, 8)
			b.Rem(rT3, rI, rT3)
			b.Bnez(rT3, "nockpt")
			b.Load(rT3, rA, 0)
			b.Mark("ckptStore")
			b.Store(rT3, rA, 0)
			b.Label("nockpt")
			b.Addi(rI, rI, -1)
			b.Bnez(rI, "path")
			// reduction
			b.Lock(rC, 0)
			b.Load(rT1, rA, 0)
			b.Mark("reduceLoad")
			b.Load(rT2, rB, 0)
			b.Add(rT2, rT2, rT1)
			b.Store(rT2, rB, 0)
			b.Unlock(rC, 0)
			b.Halt()
		}
		return pb.MustBuild()
	}
	return Workload{Name: "swaptions", Suite: "parsec", Threads: nThreads, Build: build, Sched: defaultSched}
}

// Streamcluster is the PARSEC streamcluster stand-in: one thread
// publishes a read-only point set; workers stream over it computing
// distances and update a shared best-so-far under a lock.
func Streamcluster() Workload {
	const nThreads = 2
	build := func(seed int64) *program.Program {
		points := 20 + 4*int(seed%3)
		pb := program.New("streamcluster")
		pts := pb.Space().Alloc("pts", points)
		ready := pb.Space().Alloc("ready", 1)
		best := pb.Space().Alloc("best", 1)
		lk := pb.Space().Alloc("lock", 1)
		pb.SetInit(best, 1<<30)

		t0 := pb.Thread()
		t0.LiAddr(rA, pts)
		t0.LiAddr(rB, ready)
		t0.Li(rS, seed*3+5)
		t0.Li(rI, 0)
		t0.Li(rT3, int64(points))
		t0.Label("pub")
		lcgStep(t0, rS, rT1, rT2, rT4, 512)
		t0.Li(rT2, 8)
		t0.Mul(rT4, rI, rT2)
		t0.Add(rT4, rT4, rA)
		t0.Mark("ptStore")
		t0.Store(rT1, rT4, 0)
		t0.Addi(rI, rI, 1)
		t0.Slt(rT2, rI, rT3)
		t0.Bnez(rT2, "pub")
		t0.Li(rT2, 1)
		t0.Store(rT2, rB, 0)
		emitScan(t0, pts, best, lk, points, 0)
		t0.Halt()

		t1 := pb.Thread()
		t1.LiAddr(rA, pts)
		t1.LiAddr(rB, ready)
		spinWait(t1, rB, 0, "wait")
		emitScan(t1, pts, best, lk, points, 1)
		t1.Halt()
		return pb.MustBuild()
	}
	return Workload{Name: "streamcluster", Suite: "parsec", Threads: nThreads, Build: build, Sched: defaultSched}
}

// emitScan emits a streaming pass over the points with lock-protected
// best updates every few points.
func emitScan(b *program.Builder, pts, best, lk uint64, points, t int) {
	b.LiAddr(rA, pts)
	b.LiAddr(rC, best)
	b.Li(rK, int64(t)) // offset the phase per thread
	b.Li(rI, 0)
	b.Li(rT3, int64(points))
	b.Label("scan")
	b.Li(rT2, 8)
	b.Mul(rT1, rI, rT2)
	b.Add(rT1, rT1, rA)
	b.Mark("ptLoad")
	b.Load(rT2, rT1, 0)
	// every 5th point, update best under lock
	b.Add(rT4, rI, rK)
	b.Li(rT1, 5)
	b.Rem(rT4, rT4, rT1)
	b.Bnez(rT4, "skip")
	b.LiAddr(rT4, lk)
	b.Lock(rT4, 0)
	b.Mark("bestLoad")
	b.Load(rT1, rC, 0)
	b.Add(rT1, rT1, rT2)
	b.Mark("bestStore")
	b.Store(rT1, rC, 0) // cost accumulation; both threads' stores hit it
	b.LiAddr(rT4, lk)
	b.Unlock(rT4, 0)
	b.Label("skip")
	b.Addi(rI, rI, 1)
	b.Slt(rT2, rI, rT3)
	b.Bnez(rT2, "scan")
}
