package diagnose

import (
	"testing"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/ranking"
)

// seq builds a window ending in the dependence S→L.
func seq(pad int, s, l uint64) deps.Sequence {
	out := make(deps.Sequence, pad)
	return append(out, deps.Dep{S: s, L: l, Inter: true})
}

func rootMatch(s, l uint64) func(deps.Sequence) bool {
	return func(sq deps.Sequence) bool {
		for _, d := range sq {
			if d.S == s && d.L == l {
				return true
			}
		}
		return false
	}
}

func TestDebugPos(t *testing.T) {
	match := rootMatch(0x100, 0x200)

	if got := debugPos(nil, match); got != 0 {
		t.Errorf("empty buffer: pos = %d, want 0", got)
	}
	if got := debugPos([]core.DebugEntry{{Seq: seq(1, 9, 9)}}, match); got != 0 {
		t.Errorf("no match: pos = %d, want 0", got)
	}

	// Single match in the middle: position counts from the newest end.
	buf := []core.DebugEntry{
		{Seq: seq(1, 9, 9), At: 1},
		{Seq: seq(1, 0x100, 0x200), At: 2},
		{Seq: seq(1, 8, 8), At: 3},
	}
	if got := debugPos(buf, match); got != 2 {
		t.Errorf("middle match: pos = %d, want 2", got)
	}

	// Multiple matches: the newest must win. The buffer logs the same
	// buggy communication repeatedly as execution spirals; the entry
	// closest to the failure is the one the paper's postprocessing (and
	// DebugPos) reports.
	buf = []core.DebugEntry{
		{Seq: seq(1, 0x100, 0x200), At: 1}, // oldest occurrence
		{Seq: seq(1, 7, 7), At: 2},
		{Seq: seq(1, 0x100, 0x200), At: 3}, // newest occurrence
	}
	if got := debugPos(buf, match); got != 1 {
		t.Errorf("newest of multiple matches: pos = %d, want 1", got)
	}
}

// TestRootPresentButPruned pins the Outcome shape for the edge case
// where the root cause reached the Debug Buffer but the Correct Set
// contains its sequence (e.g. one benign occurrence of the same
// communication): DebugPos must stay positive while Rank goes to 0 —
// the two columns must be able to disagree, or present-but-pruned is
// indistinguishable from never-logged.
func TestRootPresentButPruned(t *testing.T) {
	root := seq(1, 0x100, 0x200)
	match := rootMatch(0x100, 0x200)
	debug := []core.DebugEntry{
		{Seq: seq(1, 5, 6), At: 1},
		{Seq: root, At: 2},
	}

	correct := deps.NewSeqSet(2)
	correct.Add(root.Clone())
	rep := ranking.Rank(debug, correct)

	pos, rank := debugPos(debug, match), rep.RankOf(match)
	if pos != 1 {
		t.Errorf("DebugPos = %d, want 1 (root is the newest entry)", pos)
	}
	if rank != 0 {
		t.Errorf("Rank = %d, want 0 (root pruned by the Correct Set)", rank)
	}
	if rep.Pruned == 0 {
		t.Error("report does not count the pruned root")
	}

	// Control: without the root in the Correct Set it survives and ranks.
	rep = ranking.Rank(debug, deps.NewSeqSet(2))
	if rep.RankOf(match) == 0 {
		t.Error("control: root should rank when not pruned")
	}
}
