// Package diagnose runs ACT's end-to-end failure-diagnosis pipeline on a
// bug workload: offline training on correct executions, deployment of
// per-processor ACT Modules, one production failure, and offline
// postprocessing that prunes and ranks the Debug Buffer — without ever
// reproducing the failure. It is the engine behind Tables V and VI.
package diagnose

import (
	"fmt"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/pipeline/stages"
	"act/internal/ranking"
	"act/internal/rca"
	"act/internal/trace"
	"act/internal/train"
	"act/internal/workloads"
)

// Config parameterizes a diagnosis experiment.
type Config struct {
	// TrainRuns is the number of correct executions used for offline
	// training (the paper uses up to 15 execution profiles). Default 10.
	TrainRuns int
	// TestRuns is the number of held-out correct executions used for
	// topology selection. Default 4.
	TestRuns int
	// CorrectSetRuns is the number of fresh correct executions collected
	// by postprocessing for pruning (the paper re-runs ~20 times).
	// Default 20.
	CorrectSetRuns int
	// Train overrides pieces of the offline-training configuration.
	Train train.Config
	// Module overrides the ACT Module configuration (N is set from the
	// topology search result).
	Module core.Config
	// Exclude withholds matching dependences from training (Table VI's
	// new-code experiments).
	Exclude func(deps.Dep) bool
	// FailSeedBase is where the search for a failing execution starts.
	FailSeedBase int64
	// MaxFailures is how many distinct production failures to diagnose
	// before giving up (each is analyzed independently, never
	// reproduced); default 3. A deployment occasionally accepts one
	// occurrence of a buggy sequence — the next failure of the same bug
	// is then diagnosed instead.
	MaxFailures int
	// Checkpoint configures checkpoint/resume for the failing trace's
	// replay and the downstream ranking/RCA stages (actdiag -ckpt /
	// -resume). A checkpoint left by an earlier attempt over a different
	// failing trace is ignored automatically.
	Checkpoint core.CheckpointConfig
	// Parallel replays the failing trace with per-module classification
	// workers; nil replays sequentially. Observables are identical.
	Parallel *core.ParallelConfig
	// Strategy orders the ranked candidates (default ranking.MostMatched).
	Strategy ranking.Strategy
}

func (c Config) withDefaults() Config {
	if c.TrainRuns == 0 {
		c.TrainRuns = 10
	}
	if c.TestRuns == 0 {
		c.TestRuns = 4
	}
	if c.CorrectSetRuns == 0 {
		c.CorrectSetRuns = 20
	}
	if c.MaxFailures == 0 {
		c.MaxFailures = 3
	}
	return c
}

// Outcome reports one diagnosed failure, with the columns of Table V.
type Outcome struct {
	Bug      workloads.Bug
	Training *train.Result

	FailSeed      int64
	FailuresTried int     // production failures analyzed before success
	DebugLen      int     // entries in the Debug Buffer at failure
	DebugPos      int     // 1-based position (newest first) of the root cause in the buffer
	FilterPct     float64 // % of entries removed by pruning
	Rank          int     // final rank of the root cause (0 = not found)
	Candidates    int     // survivors after pruning
	Report        *ranking.Report
	// RCA is the structured verdict report derived from Report with
	// full provenance (program marks, Debug Buffer, trajectories).
	RCA *rca.Report
	// Replay reports checkpoint/resume activity on the diagnosed
	// failure's replay (zero without Config.Checkpoint).
	Replay core.ReplayStatus
	// StageResumed reports that ranking and RCA came from a checkpoint's
	// stage sections instead of being recomputed.
	StageResumed bool
}

// Diagnose runs the full pipeline for one bug.
func Diagnose(b workloads.Bug, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()

	// Offline training on correct executions (the program's test suite).
	correct, err := workloads.CollectOutcome(b, false, cfg.TrainRuns+cfg.TestRuns, 0)
	if err != nil {
		return nil, fmt.Errorf("diagnose %s: collecting training runs: %w", b.Name, err)
	}
	trainTraces := tracesOf(correct[:cfg.TrainRuns])
	testTraces := tracesOf(correct[cfg.TrainRuns:])
	tc := cfg.Train
	tc.Exclude = cfg.Exclude
	tr, err := train.Train(trainTraces, testTraces, tc)
	if err != nil {
		return nil, fmt.Errorf("diagnose %s: offline training: %w", b.Name, err)
	}

	// Offline postprocessing support: fresh correct runs build the
	// Correct Set once; the failure is never reproduced.
	pruneRuns, err := workloads.CollectOutcome(b, false, cfg.CorrectSetRuns, 50_000)
	if err != nil {
		return nil, fmt.Errorf("diagnose %s: collecting correct-set runs: %w", b.Name, err)
	}
	correctSet := deps.CollectSequences(tracesOf(pruneRuns), deps.ExtractorConfig{N: tr.N})

	// Production failures: each failing execution drives a fresh
	// deployment once; its Debug Buffer is pruned and ranked. If one
	// occurrence slipped past the network, the bug's next failure is
	// diagnosed instead.
	var out *Outcome
	seedBase := cfg.FailSeedBase
	for attempt := 1; attempt <= cfg.MaxFailures; attempt++ {
		fails, err := workloads.CollectOutcome(b, true, 1, seedBase)
		if err != nil {
			if out != nil {
				return out, nil
			}
			return nil, fmt.Errorf("diagnose %s: no failing execution found: %w", b.Name, err)
		}
		fail := fails[0]
		seedBase = fail.Seed + 1

		mc := cfg.Module
		mc.N = tr.N
		mc.Encoder = tr.Encoder
		binary := core.NewWeightBinary(tr.Net.NIn, tr.Net.NHidden)
		binary.PatchAll(fail.Program.NumThreads(), tr.Net.Flatten(nil))
		tracker := core.NewTracker(binary, core.TrackerConfig{Module: mc})
		sres, err := stages.Run(tracker, fail.Trace, correctSet, stages.Config{
			Parallel:   cfg.Parallel,
			Checkpoint: cfg.Checkpoint,
			Strategy:   cfg.Strategy,
			Provenance: rca.Provenance{
				Program:     fail.Program,
				CorrectRuns: cfg.CorrectSetRuns,
				Bug:         b.Name,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("diagnose %s: replaying failure: %w", b.Name, err)
		}
		debug, rep := sres.Debug, sres.Report
		match := b.Matcher(fail.Program)
		out = &Outcome{
			Bug:           b,
			Training:      tr,
			FailSeed:      fail.Seed,
			FailuresTried: attempt,
			DebugLen:      len(debug),
			DebugPos:      debugPos(debug, match),
			FilterPct:     rep.FilterPct(),
			Rank:          rep.RankOf(match),
			Candidates:    len(rep.Ranked),
			Report:        rep,
			RCA:           sres.RCA,
			Replay:        sres.Replay,
			StageResumed:  sres.StageResumed,
		}
		if out.Rank > 0 {
			break
		}
	}
	return out, nil
}

// tracesOf extracts the traces from collected runs.
func tracesOf(runs []workloads.Run) []*trace.Trace {
	out := make([]*trace.Trace, len(runs))
	for i, r := range runs {
		out[i] = r.Trace
	}
	return out
}

// debugPos returns the 1-based position, newest entry first, of the
// first root-cause sequence in the Debug Buffer (0 if absent).
func debugPos(debug []core.DebugEntry, match func(deps.Sequence) bool) int {
	for i := len(debug) - 1; i >= 0; i-- {
		if match(debug[i].Seq) {
			return len(debug) - i
		}
	}
	return 0
}
