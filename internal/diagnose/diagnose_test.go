package diagnose

import (
	"testing"

	"act/internal/nn"
	"act/internal/train"
	"act/internal/workloads"
)

// fastCfg keeps unit-test diagnosis cheap; the bench harness uses the
// full configuration.
func fastCfg() Config {
	return Config{
		TrainRuns: 8, TestRuns: 3, CorrectSetRuns: 10,
		Train: train.Config{
			Ns:              []int{2, 3},
			Hs:              []int{6, 10},
			RandomNegatives: 3,
			SearchFit:       nn.FitConfig{MaxEpochs: 400, Seed: 1},
			FinalFit:        nn.FitConfig{MaxEpochs: 6000, Seed: 1, Patience: 800},
		},
		FailSeedBase: 100_000,
	}
}

func TestDiagnoseApache(t *testing.T) {
	b, err := workloads.BugByName("apache")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Diagnose(b, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("apache: debugLen=%d pos=%d filter=%.0f%% rank=%d (of %d) topo=%s",
		out.DebugLen, out.DebugPos, out.FilterPct, out.Rank, out.Candidates, out.Training.Topology())
	if out.DebugPos == 0 {
		t.Fatal("root cause never reached the debug buffer")
	}
	if out.Rank == 0 {
		t.Fatal("root cause pruned away or unranked")
	}
	if out.Rank > 10 {
		t.Errorf("rank %d too deep", out.Rank)
	}
}

func TestDiagnoseAllRealBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table V sweep")
	}
	for _, b := range workloads.RealBugs() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			out, err := Diagnose(b, fastCfg())
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-10s debugLen=%-3d pos=%-3d filter=%3.0f%% rank=%d/%d",
				b.Name, out.DebugLen, out.DebugPos, out.FilterPct, out.Rank, out.Candidates)
			if out.DebugPos == 0 {
				t.Error("root cause never reached the debug buffer")
			}
			if out.Rank == 0 {
				t.Error("root cause pruned away or unranked")
			} else if out.Rank > 10 {
				t.Errorf("rank %d deeper than the paper's worst (8)", out.Rank)
			}
		})
	}
}

func TestDiagnoseInjectedBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table VI sweep")
	}
	for _, ib := range workloads.InjectedBugs() {
		ib := ib
		t.Run(ib.Name, func(t *testing.T) {
			// Table VI: the injected function is new code — its
			// dependences are withheld from training.
			p, _ := ib.Gen(0)
			cfg := fastCfg()
			cfg.Exclude = ib.NewCodeFilter(p)
			out, err := Diagnose(ib.Bug, cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-22s debugLen=%-3d pos=%-3d filter=%3.0f%% rank=%d/%d",
				ib.Name, out.DebugLen, out.DebugPos, out.FilterPct, out.Rank, out.Candidates)
			if out.Rank == 0 || out.Rank > 10 {
				t.Errorf("rank = %d, want 1..10", out.Rank)
			}
		})
	}
}

func TestDiagnoseGzip(t *testing.T) {
	b, err := workloads.BugByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Diagnose(b, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("gzip: debugLen=%d pos=%d filter=%.0f%% rank=%d", out.DebugLen, out.DebugPos, out.FilterPct, out.Rank)
	if out.Rank == 0 || out.Rank > 10 {
		t.Fatalf("rank = %d, want 1..10", out.Rank)
	}
}
