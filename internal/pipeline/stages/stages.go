// Package stages runs the offline diagnosis DAG for one production
// failure on the pipeline graph engine: checkpointed replay of the
// failing trace (internal/core), Debug Buffer collection, pruning and
// ranking against the Correct Set (internal/ranking), and root-cause
// analysis (internal/rca), each a named node with act_pipeline_*
// latency series.
//
// The stage layer owns the checkpoint section kinds >= 64. After RCA
// completes it rewrites the checkpoint with the ranked report and the
// RCA verdict file embedded, so a diagnosis killed after the expensive
// replay — or even after ranking — resumes past the finished stages:
//
//	no checkpoint          → full replay, rank, RCA
//	mid-trace checkpoint   → resume replay at the cursor, rank, RCA
//	completed replay image → skip replay, rank, RCA
//	image with stage state → decode report + verdicts, done
//
// Both stage sections are written together and only served together:
// the ranking wire form deliberately drops output trajectories
// (provenance, not identity), so re-deriving RCA from a decoded report
// would lose evidence — the stored verdict file is the original
// computation's bytes, byte-identical by construction.
package stages

import (
	"bytes"
	"fmt"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/pipeline"
	"act/internal/ranking"
	"act/internal/rca"
	"act/internal/trace"
)

// Stage-owned checkpoint section kinds (64..254; 1..63 belong to core).
const (
	// SectionRankedReport holds a ranking report body
	// (ranking.AppendReport form).
	SectionRankedReport byte = 64
	// SectionRCA holds a complete RCA verdict file (ACTV form).
	SectionRCA byte = 65
)

// Config parameterizes one diagnosis DAG execution.
type Config struct {
	// Parallel enables per-module classification workers during replay;
	// nil replays sequentially. Either way the observables are
	// identical.
	Parallel *core.ParallelConfig
	// Checkpoint configures replay checkpointing and resume; the zero
	// value disables both.
	Checkpoint core.CheckpointConfig
	// Strategy orders the ranked candidates (default ranking.MostMatched).
	Strategy ranking.Strategy
	// Provenance annotates the RCA verdicts (program marks, bug name,
	// correct-run count). Provenance.Debug is filled in by Run.
	Provenance rca.Provenance
}

// Result is one diagnosis DAG execution's output.
type Result struct {
	Debug  []core.DebugEntry // the failure's combined Debug Buffer
	Report *ranking.Report
	RCA    *rca.Report
	Replay core.ReplayStatus
	// StageResumed reports that ranking and RCA were served from the
	// checkpoint's stage sections rather than recomputed.
	StageResumed bool
}

// Run executes the DAG on a fresh tracker. With checkpointing enabled
// the result is byte-identical — report and verdict files included —
// whether the run completes in one call or is killed and resumed any
// number of times.
func Run(t *core.Tracker, tr *trace.Trace, correct *deps.SeqSet, cfg Config) (*Result, error) {
	res := &Result{}
	var err error
	res.Replay, err = t.ReplayCheckpointed(tr, cfg.Parallel, cfg.Checkpoint)
	if err != nil {
		return nil, err
	}

	g := pipeline.New("diagnose")
	collect, rank, analyze := g.Node("collect"), g.Node("rank"), g.Node("rca")

	if err := g.Run(collect, func() error {
		res.Debug = t.DebugBuffers()
		return nil
	}); err != nil {
		return nil, err
	}

	if rep, verdicts, ok := decodeStageSections(res.Replay.Extra); ok {
		res.Report, res.RCA, res.StageResumed = rep, verdicts, true
		return res, nil
	}

	if err := g.Run(rank, func() error {
		res.Report = ranking.RankWith(res.Debug, correct, cfg.Strategy)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := g.Run(analyze, func() error {
		prov := cfg.Provenance
		prov.Debug = res.Debug
		res.RCA = rca.Analyze(res.Report, prov)
		return nil
	}); err != nil {
		return nil, err
	}

	if cfg.Checkpoint.Path != "" {
		if err := persistStageState(t, tr, cfg.Checkpoint.Path, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// decodeStageSections serves ranking and RCA from a resumed
// checkpoint's stage sections. Lenient like replay resume: anything
// short of both sections decoding cleanly means recompute.
func decodeStageSections(extra []pipeline.Section) (*ranking.Report, *rca.Report, bool) {
	var rep *ranking.Report
	var verdicts *rca.Report
	for _, s := range extra {
		switch s.Kind {
		case SectionRankedReport:
			r, _, err := ranking.DecodeReport(s.Data)
			if err != nil {
				return nil, nil, false
			}
			rep = r
		case SectionRCA:
			v, err := rca.Load(bytes.NewReader(s.Data))
			if err != nil {
				return nil, nil, false
			}
			verdicts = v
		}
	}
	return rep, verdicts, rep != nil && verdicts != nil
}

// persistStageState rewrites the checkpoint at path with the stage
// results embedded, atomically replacing the replay-only completion
// image ReplayCheckpointed left behind.
func persistStageState(t *core.Tracker, tr *trace.Trace, path string, res *Result) error {
	var vbuf bytes.Buffer
	if err := res.RCA.Save(&vbuf); err != nil {
		return fmt.Errorf("stages: encoding verdicts: %w", err)
	}
	img, err := t.EncodeCheckpoint(tr, len(tr.Records),
		pipeline.Section{Kind: SectionRankedReport, Data: res.Report.AppendReport(nil)},
		pipeline.Section{Kind: SectionRCA, Data: vbuf.Bytes()},
	)
	if err != nil {
		return err
	}
	return pipeline.WriteFile(path, img)
}
