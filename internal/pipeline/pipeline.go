// Package pipeline is the deterministic stage-graph engine the
// diagnosis flow executes on. Each stage of the paper's pipeline —
// trace decode, dependence extraction, per-module classification,
// pruning/ranking, RCA — is a named Node; data moves between nodes over
// bounded typed Edges; a Graph tracks the spawned workers, propagates
// the first error, and exposes per-node latency and queue-depth metrics
// (act_pipeline_*).
//
// The engine makes two deliberate departures from a conventional
// worker-pool scheduler:
//
//   - The driver node runs inline on the caller's goroutine (Graph.Run).
//     Sequential replay through the graph is therefore exactly the old
//     loop — no goroutine hop, no channel per record — which is what
//     keeps the quantized-kernel speedup the bench asserts from being
//     diluted by scheduling overhead on microsecond-scale traces.
//   - Nodes may be spawned while the graph is running (Graph.Go): the
//     per-module classification nodes only exist once their thread
//     produces a dependence, mirroring the paper's one-AM-per-processor
//     deployment hook.
//
// The checkpoint layer (checkpoint.go) gives graph executions a
// CRC-framed on-disk representation of stage-boundary state, so a
// killed run resumes mid-trace; the core and stages packages define
// what goes in the sections.
//
//act:goleak
package pipeline

import (
	"fmt"
	"sync"

	"act/internal/obs"
)

// Graph is one execution of the stage graph. It is cheap to construct;
// a fresh Graph per run keeps error state unshared.
type Graph struct {
	name string

	wg sync.WaitGroup

	mu   sync.Mutex
	err  error         // first failure, guarded by mu
	done chan struct{} // closed on first failure, signals senders to stop
}

// New creates an empty graph. name prefixes error messages
// ("replay/classify: ...").
func New(name string) *Graph {
	return &Graph{name: name, done: make(chan struct{})}
}

// Node is one named stage. Creating a Node does not start anything —
// the caller either runs work through it inline (Graph.Run) or spawns
// workers on it (Graph.Go). Several workers may share one Node: the
// per-module classification workers are all the "classify" stage.
type Node struct {
	g    *Graph
	name string
	lat  *obs.Histogram
}

// Node registers a named stage and its latency histogram
// (act_pipeline_<name>_ns on the process-wide registry; registration is
// idempotent, so graphs built per replay share the series).
func (g *Graph) Node(name string) *Node {
	statNodes.Inc()
	return &Node{
		g:    g,
		name: name,
		lat:  obs.Default.Histogram("act_pipeline_"+name+"_ns", "pipeline stage latency per unit of work, stage "+name),
	}
}

// Span starts a latency measurement against the node's stage histogram.
// Drivers wrap a whole stage execution; batch workers wrap one batch,
// so the histogram reads as per-unit-of-work latency. It sits on the
// replay hot path, so it must stay alloc-free.
//
//act:noalloc
func (n *Node) Span() obs.Span { return obs.StartSpan(n.lat) }

// Run executes fn as the node's work on the calling goroutine — the
// driver placement. The error, if any, is recorded as the graph's
// failure and returned.
func (g *Graph) Run(n *Node, fn func() error) error {
	sp := n.Span()
	err := fn()
	sp.End()
	if err != nil {
		err = fmt.Errorf("%s/%s: %w", g.name, n.name, err)
		g.fail(err)
	}
	return err
}

// Go spawns one worker goroutine on the node. The worker's error, if
// any, becomes the graph's failure. Wait blocks until every spawned
// worker has returned.
func (g *Graph) Go(n *Node, fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.fail(fmt.Errorf("%s/%s: %w", g.name, n.name, err))
		}
	}()
}

// fail records the first error and signals cancellation; later errors
// are dropped (they are almost always downstream echoes of the first).
func (g *Graph) fail(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err == nil {
		g.err = err
		close(g.done)
	}
}

// Done returns a channel closed on the graph's first failure. Senders
// select on it so a dead consumer cannot wedge them.
func (g *Graph) Done() <-chan struct{} { return g.done }

// Err returns the first recorded failure, if any.
func (g *Graph) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Wait blocks until every spawned worker has returned, then reports the
// graph's first failure. Drivers call it after closing their outgoing
// edges.
func (g *Graph) Wait() error {
	g.wg.Wait()
	return g.Err()
}

// Edge is a bounded typed channel between two stages. The bound
// provides backpressure — a slow consumer stalls its producer instead
// of growing an unbounded queue — and the shared queue-depth gauge
// (act_pipeline_queue_depth) exposes how much work sits between stages.
type Edge[T any] struct {
	g  *Graph
	ch chan T
}

// NewEdge creates an edge with the given buffer depth (minimum 1).
func NewEdge[T any](g *Graph, depth int) *Edge[T] {
	if depth < 1 {
		depth = 1
	}
	return &Edge[T]{g: g, ch: make(chan T, depth)}
}

// Send delivers one item, blocking on backpressure. It returns false —
// without delivering — once the graph has failed, so producers feeding
// a dead consumer unwind instead of blocking forever.
func (e *Edge[T]) Send(v T) bool {
	select {
	case e.ch <- v:
		statQueueDepth.Inc()
		return true
	case <-e.g.done:
		return false
	}
}

// Recv returns the next item; ok is false once the edge is closed and
// drained. A failed upstream closes its edges on unwind, so consumers
// need no separate cancellation path.
func (e *Edge[T]) Recv() (v T, ok bool) {
	v, ok = <-e.ch
	if ok {
		statQueueDepth.Dec()
	}
	return v, ok
}

// Close marks the edge complete; consumers drain what is buffered and
// then observe ok == false.
func (e *Edge[T]) Close() { close(e.ch) }
