package pipeline

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestGraphEdgePipeline(t *testing.T) {
	g := New("test")
	edge := NewEdge[int](g, 4)
	sum, done := 0, make(chan struct{})
	g.Go(g.Node("consume"), func() error {
		defer close(done)
		for {
			v, ok := edge.Recv()
			if !ok {
				return nil
			}
			sum += v
		}
	})
	drv := g.Node("produce")
	if err := g.Run(drv, func() error {
		for i := 1; i <= 100; i++ {
			if !edge.Send(i) {
				return fmt.Errorf("send rejected at %d", i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	edge.Close()
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	<-done
	if sum != 5050 {
		t.Fatalf("consumer saw sum %d, want 5050", sum)
	}
}

func TestGraphFailureUnblocksSenders(t *testing.T) {
	g := New("test")
	edge := NewEdge[int](g, 1)
	if !edge.Send(1) { // fills the buffer before any failure exists
		t.Fatal("Send failed on a healthy graph")
	}
	boom := errors.New("boom")
	g.Go(g.Node("dead"), func() error { return boom })
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want wrapped boom", err)
	}
	// The consumer is gone and the buffer is full; Send must return
	// false instead of blocking forever.
	if edge.Send(2) {
		t.Fatal("Send succeeded against a failed graph")
	}
	if err := g.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v", err)
	}
}

func TestGraphRunWrapsError(t *testing.T) {
	g := New("replay")
	base := errors.New("disk full")
	err := g.Run(g.Node("extract"), func() error { return base })
	if !errors.Is(err, base) {
		t.Fatalf("err = %v", err)
	}
	if want := "replay/extract: disk full"; err.Error() != want {
		t.Fatalf("err = %q, want %q", err.Error(), want)
	}
}

func TestCheckpointFraming(t *testing.T) {
	sections := []Section{
		{Kind: 1, Data: []byte("header")},
		{Kind: 64, Data: nil},
		{Kind: 200, Data: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	img := AppendCheckpoint(nil, sections)
	got, err := ParseCheckpoint(img)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != len(sections) {
		t.Fatalf("parsed %d sections, want %d", len(got), len(sections))
	}
	for i, s := range sections {
		if got[i].Kind != s.Kind || !bytes.Equal(got[i].Data, s.Data) {
			t.Fatalf("section %d mismatch", i)
		}
	}
}

func TestParseCheckpointRejectsDamage(t *testing.T) {
	img := AppendCheckpoint(nil, []Section{{Kind: 1, Data: []byte("payload")}})
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrCkptMagic},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrCkptMagic},
		{"bad version", func(b []byte) []byte { b[4] = 9; return b }, ErrCkptVersion},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }, ErrCkptCorrupt},
		{"missing terminator", func(b []byte) []byte { return b[:len(b)-9] }, ErrCkptCorrupt},
		{"payload flip", func(b []byte) []byte { b[14] ^= 1; return b }, ErrCkptCorrupt},
		{"length flip", func(b []byte) []byte { b[10] ^= 1; return b }, ErrCkptCorrupt},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }, ErrCkptCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mut(append([]byte(nil), img...))
			if _, err := ParseCheckpoint(mut); !errors.Is(err, tc.want) {
				t.Fatalf("ParseCheckpoint = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	img1 := AppendCheckpoint(nil, []Section{{Kind: 1, Data: []byte("one")}})
	img2 := AppendCheckpoint(nil, []Section{{Kind: 1, Data: []byte("two")}})
	if err := WriteFile(path, img1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, img2); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img2) {
		t.Fatal("replaced file does not hold the new image")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after writes, want 1", len(entries))
	}
}
