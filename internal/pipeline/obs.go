package pipeline

import "act/internal/obs"

// Package-level instruments on the process-wide registry, following the
// act_fanout_* precedent: always-on, registered at init, zero cost when
// nobody scrapes. Per-stage latency histograms are registered lazily by
// Graph.Node under act_pipeline_<stage>_ns.
var (
	statNodes = obs.Default.Counter("act_pipeline_nodes_total",
		"pipeline stage nodes registered")
	statQueueDepth = obs.Default.Gauge("act_pipeline_queue_depth",
		"items buffered across all pipeline edges")
	statCkptWrites = obs.Default.Counter("act_pipeline_checkpoints_total",
		"checkpoint files written")
	statCkptBytes = obs.Default.Counter("act_pipeline_checkpoint_bytes_total",
		"checkpoint bytes written")
	statResumes = obs.Default.Counter("act_pipeline_resumes_total",
		"replays resumed from a checkpoint")
	statBarrierNS = obs.Default.Histogram("act_pipeline_barrier_ns",
		"time to quiesce the classification workers at a checkpoint boundary")
)

// ResumeMark counts one successful resume-from-checkpoint
// (act_pipeline_resumes_total); core calls it when a replay actually
// restores state rather than starting fresh.
func ResumeMark() { statResumes.Inc() }

// BarrierSpan measures one worker-quiescence window
// (act_pipeline_barrier_ns) around a parallel checkpoint.
func BarrierSpan() obs.Span { return obs.StartSpan(statBarrierNS) }
