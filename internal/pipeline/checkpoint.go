// CRC-framed checkpoint files (format "ACTK").
//
// A checkpoint is a flat sequence of typed sections, each individually
// checksummed, closed by a terminator frame:
//
//	prologue:   magic "ACTK" | u16 version=1 | u16 reserved
//	section:    u8 kind | u32 length | payload |
//	            u32 crc32(kind | length | payload)
//	terminator: u8 0xFF | u32 0 | u32 crc32(0xFF | 0)
//
// All integers are little-endian; CRCs are IEEE CRC32 and cover the
// kind and length bytes, so a corrupted length cannot smuggle garbage
// past the check. The terminator distinguishes a complete file from one
// truncated mid-write, and trailing bytes after it are rejected — a
// checkpoint is all-or-nothing.
//
// Section kinds are owned by the layers above: core uses the 1..63
// range for replay state (header, extractor, modules), stages uses
// 64..254 for stage results (ranked report, RCA verdicts). This package
// only frames and checksums.
//
// WriteFile is atomic (temp file + rename): a crash mid-checkpoint
// leaves the previous complete checkpoint in place, never a torn one.
package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Checkpoint format constants.
const (
	CkptMagic   = "ACTK"
	CkptVersion = 1

	ckptPrologueLen = 4 + 2 + 2
	ckptFrameHdr    = 1 + 4 // kind byte, payload length
	ckptFrameTail   = 4     // crc32

	// ckptTerminator marks the end of a complete checkpoint.
	ckptTerminator = 0xFF

	// ckptMaxSection caps a declared section length; a corrupted length
	// field must not provoke a multi-gigabyte allocation.
	ckptMaxSection = 1 << 30
)

// Checkpoint parse errors. ErrCkptCorrupt covers truncation, CRC
// mismatch, oversized sections, and trailing garbage — everything a
// torn or bit-flipped file can present.
var (
	ErrCkptMagic   = errors.New("pipeline: not a checkpoint file (bad magic)")
	ErrCkptVersion = errors.New("pipeline: unsupported checkpoint version")
	ErrCkptCorrupt = errors.New("pipeline: corrupt checkpoint")
)

// Section is one typed span of a checkpoint.
type Section struct {
	Kind byte
	Data []byte
}

// AppendCheckpoint serializes a complete checkpoint (prologue, the
// sections in order, terminator) onto dst.
func AppendCheckpoint(dst []byte, sections []Section) []byte {
	dst = append(dst, CkptMagic...)
	var tmp [4]byte
	binary.LittleEndian.PutUint16(tmp[:2], CkptVersion)
	binary.LittleEndian.PutUint16(tmp[2:], 0)
	dst = append(dst, tmp[:]...)
	for _, s := range sections {
		dst = appendSection(dst, s.Kind, s.Data)
	}
	return appendSection(dst, ckptTerminator, nil)
}

// appendSection frames one section.
func appendSection(dst []byte, kind byte, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, kind)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(payload)))
	dst = append(dst, tmp[:]...)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	binary.LittleEndian.PutUint32(tmp[:], crc)
	return append(dst, tmp[:]...)
}

// ParseCheckpoint validates a checkpoint image and returns its sections
// in file order. Section data aliases the input. Any structural damage
// — bad magic, wrong version, truncation, CRC mismatch, a missing
// terminator, trailing bytes — yields an error wrapping one of the
// sentinel errors above; a parsed checkpoint is therefore known whole.
func ParseCheckpoint(data []byte) ([]Section, error) {
	if len(data) < ckptPrologueLen || string(data[:4]) != CkptMagic {
		return nil, ErrCkptMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != CkptVersion {
		return nil, fmt.Errorf("%w: %d", ErrCkptVersion, v)
	}
	var out []Section
	off := ckptPrologueLen
	for {
		if len(data)-off < ckptFrameHdr+ckptFrameTail {
			return nil, fmt.Errorf("%w: truncated at byte %d", ErrCkptCorrupt, off)
		}
		kind := data[off]
		n := int(binary.LittleEndian.Uint32(data[off+1:]))
		if n > ckptMaxSection || len(data)-off < ckptFrameHdr+n+ckptFrameTail {
			return nil, fmt.Errorf("%w: section kind %d declares %d bytes", ErrCkptCorrupt, kind, n)
		}
		body := data[off : off+ckptFrameHdr+n]
		want := binary.LittleEndian.Uint32(data[off+ckptFrameHdr+n:])
		if crc32.ChecksumIEEE(body) != want {
			return nil, fmt.Errorf("%w: crc mismatch in section kind %d", ErrCkptCorrupt, kind)
		}
		off += ckptFrameHdr + n + ckptFrameTail
		if kind == ckptTerminator {
			if off != len(data) {
				return nil, fmt.Errorf("%w: %d trailing bytes", ErrCkptCorrupt, len(data)-off)
			}
			return out, nil
		}
		out = append(out, Section{Kind: kind, Data: body[ckptFrameHdr:]})
	}
}

// WriteFile writes a checkpoint image atomically: the bytes land in a
// temp file in the same directory, are synced, and replace path with
// one rename. A kill at any instant leaves either the previous
// checkpoint or the new one — never a torn file (a torn temp file is
// ignored by resume since it is never renamed into place).
func WriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	statCkptWrites.Inc()
	statCkptBytes.Add(uint64(len(data)))
	return nil
}
