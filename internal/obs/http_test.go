package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	health := NewHealth()
	health.SetReady("collector", true)
	r1 := NewRegistry()
	r1.Counter("act_test_a_total", "a").Add(5)
	r2 := NewRegistry()
	r2.Gauge("act_test_b", "b").Set(-1)

	srv := httptest.NewServer(Handler(health, r1, r2))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"act_health_ready 1\n",
		"act_health_draining 0\n",
		"act_test_a_total 5\n",
		"act_test_b -1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
}

func TestHandlerHealthzFlips(t *testing.T) {
	health := NewHealth()
	health.SetReady("agent", true)
	srv := httptest.NewServer(Handler(health, NewRegistry()))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("/healthz ready: code=%d body=%q", code, body)
	}

	health.SetReady("agent", false)
	if code, body := get(t, srv, "/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "agent: not-ready") {
		t.Fatalf("/healthz not-ready: code=%d body=%q", code, body)
	}

	health.SetReady("agent", true)
	health.Shutdown()
	code, body := get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/healthz draining: code=%d body=%q", code, body)
	}
	if _, mbody := get(t, srv, "/metrics"); !strings.Contains(mbody, "act_health_draining 1\n") {
		t.Errorf("/metrics draining gauge not set:\n%s", mbody)
	}
}

func TestHandlerNilHealth(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, NewRegistry()))
	defer srv.Close()
	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok\n") {
		t.Fatalf("nil-health /healthz: code=%d body=%q", code, body)
	}
	if code, _ := get(t, srv, "/metrics"); code != http.StatusOK {
		t.Fatalf("nil-health /metrics status = %d", code)
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}

func TestStartServer(t *testing.T) {
	health := NewHealth()
	srv, err := StartServer("127.0.0.1:0", health, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz over StartServer: %d", resp.StatusCode)
	}
}
