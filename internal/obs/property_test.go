package obs

import (
	"math/rand"
	"testing"
)

// Property tests for HistSnapshot: the algebra the parallel pipeline
// relies on when per-shard histograms are merged and summarized in
// arbitrary order.

func randomSnapshot(rng *rand.Rand) HistSnapshot {
	var h Histogram
	n := rng.Intn(200)
	for i := 0; i < n; i++ {
		// A uniform shift makes every bucket reachable, not just the
		// top few a raw Uint64 would hit.
		h.Observe(rng.Uint64() >> uint(rng.Intn(64)))
	}
	return h.Snapshot()
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		s := randomSnapshot(rng)
		prev := uint64(0)
		for q := 0.0; q <= 1.0; q += 0.01 {
			cur := s.Quantile(q)
			if cur < prev {
				t.Fatalf("trial %d: Quantile(%g) = %d < Quantile(previous) = %d",
					trial, q, cur, prev)
			}
			prev = cur
		}
		// The extremes: q=1 lands in the last non-empty bucket, whose
		// upper edge bounds the maximum observation.
		if s.Count > 0 && s.Quantile(1) < s.Quantile(0) {
			t.Fatalf("trial %d: max quantile below min quantile", trial)
		}
		// Out-of-range q clamps rather than misbehaving.
		if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
			t.Fatalf("trial %d: out-of-range q not clamped", trial)
		}
	}
}

func TestMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a, b, c := randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)
		if ab, ba := a.Merge(b), b.Merge(a); ab != ba {
			t.Fatalf("trial %d: Merge not commutative", trial)
		}
		if l, r := a.Merge(b).Merge(c), a.Merge(b.Merge(c)); l != r {
			t.Fatalf("trial %d: Merge not associative", trial)
		}
		var zero HistSnapshot
		if a.Merge(zero) != a {
			t.Fatalf("trial %d: zero snapshot is not the Merge identity", trial)
		}
	}
}

func TestMergeEquivalentToCombinedStream(t *testing.T) {
	// Merging two snapshots must equal the snapshot of one histogram
	// that observed both streams.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		var h1, h2, both Histogram
		for i := 0; i < 100; i++ {
			v := rng.Uint64() >> uint(rng.Intn(64))
			if i%2 == 0 {
				h1.Observe(v)
			} else {
				h2.Observe(v)
			}
			both.Observe(v)
		}
		if got, want := h1.Snapshot().Merge(h2.Snapshot()), both.Snapshot(); got != want {
			t.Fatalf("trial %d: merged snapshot differs from combined stream", trial)
		}
	}
}

func TestQuantileUpperBoundsObservations(t *testing.T) {
	// Every quantile is an upper bound: at least ceil(q*count)
	// observations are <= Quantile(q).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		n := 1 + rng.Intn(300)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() >> uint(rng.Intn(64))
			h.Observe(vals[i])
		}
		s := h.Snapshot()
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			bound := s.Quantile(q)
			le := 0
			for _, v := range vals {
				if v <= bound {
					le++
				}
			}
			need := int(q*float64(n) + 0.9999)
			if le < need {
				t.Fatalf("trial %d: only %d/%d observations <= Quantile(%g)=%d, need %d",
					trial, le, n, q, bound, need)
			}
		}
	}
}

func TestBucketUpperEdges(t *testing.T) {
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
	if BucketUpper(1) != 1 {
		t.Errorf("BucketUpper(1) = %d, want 1", BucketUpper(1))
	}
	if BucketUpper(10) != 1023 {
		t.Errorf("BucketUpper(10) = %d, want 1023", BucketUpper(10))
	}
	if BucketUpper(HistBuckets-1) != ^uint64(0) {
		t.Errorf("BucketUpper(last) != MaxUint64")
	}
	// Every observation lands in the bucket whose range contains it.
	for _, v := range []uint64{0, 1, 2, 3, 4, 255, 256, 1 << 40, ^uint64(0)} {
		var h Histogram
		h.Observe(v)
		s := h.Snapshot()
		for i, b := range s.Buckets {
			if b == 0 {
				continue
			}
			if v > BucketUpper(i) {
				t.Errorf("value %d landed in bucket %d with upper %d", v, i, BucketUpper(i))
			}
			if i > 0 && v <= BucketUpper(i-1) {
				t.Errorf("value %d landed in bucket %d but fits bucket %d", v, i, i-1)
			}
		}
	}
}
