package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHealthReadiness(t *testing.T) {
	h := NewHealth()
	if !h.Ready() {
		t.Fatalf("empty gate not ready")
	}
	h.SetReady("collector", false)
	if h.Ready() {
		t.Fatalf("ready with a not-ready component")
	}
	h.SetReady("collector", true)
	if !h.Ready() {
		t.Fatalf("not ready after component became ready")
	}
	h.SetReady("spool", true)
	ok, lines := h.Status()
	if !ok {
		t.Fatalf("not ready with all components ready")
	}
	if got := strings.Join(lines, "\n"); !strings.Contains(got, "collector: ready") ||
		!strings.Contains(got, "spool: ready") {
		t.Errorf("status lines missing components: %q", got)
	}
	if h.Draining() {
		t.Fatalf("draining before Shutdown")
	}
}

func TestHealthShutdownHooksLIFOOnce(t *testing.T) {
	h := NewHealth()
	var order []string
	h.OnShutdown("persist", func() { order = append(order, "persist") })
	h.OnShutdown("stop-accepting", func() { order = append(order, "stop-accepting") })
	h.Shutdown()
	if len(order) != 2 || order[0] != "stop-accepting" || order[1] != "persist" {
		t.Fatalf("hook order = %v, want [stop-accepting persist]", order)
	}
	if !h.Draining() || h.Ready() {
		t.Fatalf("gate not draining after Shutdown")
	}
	// Second Shutdown must not re-run hooks.
	h.Shutdown()
	if len(order) != 2 {
		t.Fatalf("hooks ran again on repeated Shutdown: %v", order)
	}
	// A hook registered after the drain never runs.
	h.OnShutdown("late", func() { order = append(order, "late") })
	h.Shutdown()
	if len(order) != 2 {
		t.Fatalf("late hook ran: %v", order)
	}
	ok, lines := h.Status()
	if ok {
		t.Fatalf("status ok while draining")
	}
	if got := strings.Join(lines, "\n"); !strings.Contains(got, "draining") {
		t.Errorf("status missing draining marker: %q", got)
	}
}

func TestHealthConcurrentShutdown(t *testing.T) {
	// Signal handler and serve-loop failure can race into Shutdown: the
	// hooks run once, and every caller returns only after they finish.
	h := NewHealth()
	var mu sync.Mutex
	runs := 0
	h.OnShutdown("flush", func() {
		mu.Lock()
		runs++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Shutdown()
			// By the time any Shutdown returns, the hook has completed.
			mu.Lock()
			r := runs
			mu.Unlock()
			if r != 1 {
				t.Errorf("hook ran %d times", r)
			}
		}()
	}
	wg.Wait()
}
