package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Health is the readiness and shutdown gate the daemons route their
// lifecycle through. Components report readiness with SetReady; the
// /healthz endpoint serves 200 only while every component is ready and
// no shutdown has begun. Shutdown hooks registered with OnShutdown run
// exactly once, in reverse registration order (like defers), when
// Shutdown is called — that is where actd snapshots its aggregate and
// actagent flushes a mid-ship spool, so a SIGTERM can no longer lose
// evidence that a clean exit would have kept.
//
// All methods are safe for concurrent use. Shutdown is idempotent:
// concurrent callers block until the first caller's hooks finish, so
// "signal handler and serve-loop failure both shut down" is safe.
type Health struct {
	mu       sync.Mutex
	ready    map[string]bool // guarded by mu
	order    []string        // guarded by mu; component registration order
	hooks    []namedHook     // guarded by mu
	draining bool            // guarded by mu
	done     chan struct{}   // guarded by mu; closed once hooks finish
}

type namedHook struct {
	name string
	fn   func()
}

// NewHealth creates a gate with no components: it reports ready until
// the first SetReady(name, false) or Shutdown.
func NewHealth() *Health {
	return &Health{ready: make(map[string]bool)}
}

// SetReady sets a component's readiness, registering the component on
// first use. Typical shape: SetReady("collector", false) at startup,
// SetReady("collector", true) once the listener is accepting.
func (h *Health) SetReady(component string, ready bool) {
	h.mu.Lock()
	if _, seen := h.ready[component]; !seen {
		h.order = append(h.order, component)
	}
	h.ready[component] = ready
	h.mu.Unlock()
}

// Ready reports whether every registered component is ready and no
// shutdown has begun.
func (h *Health) Ready() bool {
	ok, _ := h.Status()
	return ok
}

// Draining reports whether Shutdown has begun.
func (h *Health) Draining() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.draining
}

// Status returns overall readiness plus one line per component (and a
// draining marker), the /healthz response body.
func (h *Health) Status() (ok bool, lines []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ok = !h.draining
	for _, name := range h.order {
		state := "ready"
		if !h.ready[name] {
			state = "not-ready"
			ok = false
		}
		lines = append(lines, fmt.Sprintf("%s: %s", name, state))
	}
	sort.Strings(lines)
	if h.draining {
		lines = append(lines, "draining")
	}
	return ok, lines
}

// OnShutdown registers a hook to run when Shutdown is called. Hooks run
// in reverse registration order, so "stop accepting" (registered last)
// precedes "persist state" (registered first). A hook registered after
// Shutdown has begun never runs — the drain already happened.
func (h *Health) OnShutdown(name string, fn func()) {
	h.mu.Lock()
	h.hooks = append(h.hooks, namedHook{name: name, fn: fn})
	h.mu.Unlock()
}

// Shutdown marks the gate draining (flipping /healthz to 503, so load
// balancers stop routing before the hooks begin) and runs the
// registered hooks, newest first. The first caller runs the hooks;
// every other caller blocks until they complete, then returns.
func (h *Health) Shutdown() {
	h.mu.Lock()
	if h.draining {
		done := h.done
		h.mu.Unlock()
		<-done
		return
	}
	h.draining = true
	h.done = make(chan struct{})
	done := h.done
	hooks := make([]namedHook, len(h.hooks))
	copy(hooks, h.hooks)
	h.mu.Unlock()

	for i := len(hooks) - 1; i >= 0; i-- {
		hooks[i].fn()
	}
	close(done)
}
