package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metricKind discriminates the registry's metric entries. The type is
// annotated //act:exhaustive so adding a kind forces every switch over
// it — above all the text renderer — to handle the new kind explicitly.
//
//act:exhaustive
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindLabeledGaugeFunc
)

// LabeledValue is one sample of a labeled series: the label value and
// the gauge reading for it. A labeled-gauge sampler returns one per
// member (one per shard, one per breaker, ...).
type LabeledValue struct {
	Label string
	Value float64
}

// metric is one registered series.
type metric struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	cfn        func() uint64
	gfn        func() float64
	labelKey   string
	lfn        func() []LabeledValue
}

// Registry is a named set of metrics rendered together in Prometheus
// text format. Registration normally happens once at startup; lookups
// during registration are idempotent, so two packages asking for the
// same counter share it. All methods are safe for concurrent use, and
// WritePrometheus may run concurrently with hot-path updates — values
// are read atomically per series.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*metric // guarded by mu
	all  []*metric          // guarded by mu; registration order
}

// Default is the process-wide registry. Library packages register
// their always-on instruments here at init (act_nn_*, act_fanout_*,
// act_replay_*, …); daemons mount it next to their component-specific
// registries via Handler.
var Default = NewRegistry()

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*metric)}
}

// validName reports whether name fits the Prometheus series-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register installs (or re-finds) a metric. Registering the same name
// with a different kind panics: that is a wiring bug, caught at init.
func (r *Registry) register(m *metric) *metric {
	if !validName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byID[m.name]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", m.name))
		}
		// Func-backed metrics rebind to the newest closure (a daemon
		// re-pointing the gauge at a fresh component); instrument-backed
		// metrics are shared.
		prev.cfn, prev.gfn, prev.lfn = m.cfn, m.gfn, m.lfn
		if m.labelKey != "" {
			prev.labelKey = m.labelKey
		}
		return prev
	}
	r.byID[m.name] = m
	r.all = append(r.all, m)
	return m
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(&metric{name: name, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.register(&metric{name: name, help: help, kind: kindHistogram, hist: &Histogram{}})
	return m.hist
}

// AddHistogram registers an existing histogram instance — the shape
// used by components that own their instrument (a collector's ingest
// span) and expose it on a registry after the fact.
func (r *Registry) AddHistogram(name, help string, h *Histogram) {
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — the zero-hot-path-cost bridge to counters a component
// already keeps (core.Stats, fleet.AgentStats). fn must be safe to
// call concurrently. Re-registering a name rebinds it to the new fn.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, cfn: fn})
}

// GaugeFunc registers a gauge sampled from fn at scrape time. fn must
// be safe to call concurrently. Re-registering a name rebinds it.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, gfn: fn})
}

// LabeledGaugeFunc registers a gauge family sampled from fn at scrape
// time and rendered one line per returned member as
// name{labelKey="label"} value — how per-shard series (ring breaker
// states, per-shard queue depths) share one metric name. fn must be
// safe to call concurrently; label values are escaped on render.
// Re-registering a name rebinds it to the new fn.
func (r *Registry) LabeledGaugeFunc(name, help, labelKey string, fn func() []LabeledValue) {
	if !validName(labelKey) {
		panic(fmt.Sprintf("obs: invalid label key %q", labelKey))
	}
	r.register(&metric{name: name, help: help, kind: kindLabeledGaugeFunc, labelKey: labelKey, lfn: fn})
}

// snapshotMetrics copies the metric list so rendering runs without the
// registry lock (sampled funcs may themselves take component locks).
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.all))
	copy(out, r.all)
	r.mu.Unlock()
	return out
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by name for deterministic
// scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshotMetrics()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	for _, m := range metrics {
		if err := writeMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writeMetric(w io.Writer, m *metric) error {
	if m.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
			return err
		}
	}
	var err error
	switch m.kind {
	case kindCounter:
		_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.counter.Value())
	case kindCounterFunc:
		_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.cfn())
	case kindGauge:
		_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m.name, m.name, m.gauge.Value())
	case kindGaugeFunc:
		_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", m.name, m.name, m.gfn())
	case kindLabeledGaugeFunc:
		if _, err = fmt.Fprintf(w, "# TYPE %s gauge\n", m.name); err != nil {
			return err
		}
		for _, lv := range m.lfn() {
			if _, err = fmt.Fprintf(w, "%s{%s=%q} %g\n", m.name, m.labelKey, lv.Label, lv.Value); err != nil {
				return err
			}
		}
	case kindHistogram:
		err = writeHistogram(w, m.name, m.hist.Snapshot())
	}
	return err
}

// writeHistogram renders one histogram with cumulative le buckets. Only
// buckets up to the highest non-empty one are emitted (plus +Inf), so a
// fresh histogram costs one line, not 65.
func writeHistogram(w io.Writer, name string, s HistSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	last := -1
	for i, b := range s.Buckets {
		if b > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last && i < HistBuckets-1; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, s.Count, name, s.Sum, name, s.Count)
	return err
}
