// Package obs is the reproduction's observability subsystem: lock-free
// counters, gauges, and log-bucketed histograms cheap enough to live on
// the classification hot path, a span API for timing pipeline stages,
// a registry that renders everything in Prometheus text format, and an
// HTTP endpoint (/metrics, /healthz, /debug/pprof) the daemons mount
// behind -metrics-listen.
//
// ACT's value proposition is low-overhead production monitoring, so its
// own telemetry is held to the same standard: every hot-path instrument
// is a single relaxed atomic operation on memory owned by the writing
// core, annotated //act:noalloc and pinned by TestCounterHotPathAllocs.
// Aggregation (bucket walks, quantiles, text rendering) happens only at
// scrape time, on the scraper's goroutine. See DESIGN.md §12 for the
// metric taxonomy and naming scheme.
//
//act:goleak
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//act:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//act:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
//
//act:noalloc
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depths, in-flight
// batches). The zero value is ready to use; all methods are safe for
// concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//act:noalloc
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative d subtracts).
//
//act:noalloc
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
//
//act:noalloc
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
//
//act:noalloc
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
//
//act:noalloc
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of histogram buckets: one per possible
// bit length of a uint64 observation (0 through 64). Bucket i counts
// observations v with bits.Len64(v) == i, i.e. 0, 1, [2,3], [4,7], …
// — log2 bucketing, so the histogram spans nanoseconds to hours in 65
// fixed slots with no configuration.
const HistBuckets = 65

// Histogram is a log2-bucketed histogram of uint64 observations
// (typically span durations in nanoseconds). The zero value is ready to
// use; Observe is lock-free and allocation-free, and all methods are
// safe for concurrent use. Bucket counts, the total count, and the sum
// are each individually atomic; a concurrent snapshot may be torn
// across them by in-flight observations, which monitoring tolerates by
// construction.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one observation.
//
//act:noalloc
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Snapshot returns a point-in-time copy of the histogram, the unit of
// merging and quantile estimation.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram's state.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [HistBuckets]uint64
}

// Merge returns the element-wise sum of two snapshots — the histogram
// that would have resulted from observing both input streams. Merge is
// commutative and associative (property-tested), so per-shard
// histograms can be combined in any grouping order.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	for i := range s.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return out
}

// BucketUpper returns the inclusive upper bound of bucket i: the
// largest observation the bucket can hold.
func BucketUpper(i int) uint64 {
	if i >= HistBuckets-1 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile returns an upper bound on the q-th quantile (0 ≤ q ≤ 1) of
// the observed values: the upper edge of the bucket containing the
// ceil(q·Count)-th smallest observation. Log2 bucketing bounds the
// relative error at 2x. Out-of-range q is clamped; an empty snapshot
// reports 0.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return math.MaxUint64
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Span is an in-flight timing of one pipeline stage: a replay shard's
// batch, an NN fit, a collector merge. Start with StartSpan, stop with
// End; the elapsed nanoseconds land in the span's histogram. A Span is
// a small value — starting and ending one performs no allocation and
// no synchronization beyond the histogram's atomic adds.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan begins timing against h. A nil histogram yields a no-op
// span, so call sites need no conditional instrumentation.
//
//act:noalloc
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End stops the span and records the elapsed nanoseconds. End on the
// zero Span is a no-op.
//
//act:noalloc
func (s Span) End() {
	if s.h == nil {
		return
	}
	d := time.Since(s.t0)
	if d < 0 {
		d = 0
	}
	s.h.Observe(uint64(d))
}
