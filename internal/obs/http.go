package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability endpoint:
//
//	/metrics       every given registry in Prometheus text format,
//	               plus act_health_ready / act_health_draining gauges
//	/healthz       200 "ok" while the gate is ready, 503 otherwise,
//	               with one line per component
//	/debug/pprof/  the standard Go profiler endpoints
//
// health may be nil (a metrics-only mount); /healthz then always
// reports ready.
func Handler(health *Health, regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeHealthGauges(w, health)
		for _, reg := range regs {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		ok, lines := true, []string(nil)
		if health != nil {
			ok, lines = health.Status()
		}
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if ok {
			fmt.Fprintln(w, "ok")
		} else {
			fmt.Fprintln(w, "unavailable")
		}
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeHealthGauges renders the gate's state as scrapeable series, so
// dashboards get readiness without a second probe.
func writeHealthGauges(w http.ResponseWriter, health *Health) {
	ready, draining := 1, 0
	if health != nil {
		if !health.Ready() {
			ready = 0
		}
		if health.Draining() {
			draining = 1
		}
	}
	fmt.Fprintf(w, "# HELP act_health_ready 1 while every component is ready and not draining.\n"+
		"# TYPE act_health_ready gauge\nact_health_ready %d\n", ready)
	fmt.Fprintf(w, "# HELP act_health_draining 1 once shutdown has begun.\n"+
		"# TYPE act_health_draining gauge\nact_health_draining %d\n", draining)
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr and serves Handler(health, regs...) in
// the background — what the daemons mount behind -metrics-listen.
func StartServer(addr string, health *Health, regs ...*Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           Handler(health, regs...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately; in-flight scrapes are abandoned
// (the next scrape re-reads every counter anyway).
func (s *Server) Close() error { return s.srv.Close() }
