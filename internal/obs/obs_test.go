package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Counter.Value() = %d, want 42", got)
	}

	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Errorf("Gauge.Value() = %d, want 7", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 1010 {
		t.Errorf("Sum = %d, want 1010", s.Sum)
	}
	// bits.Len64 bucketing: 0→b0, 1→b1, {2,3}→b2, 4→b3, 1000→b10.
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1} {
		if s.Buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want)
		}
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	// Quantile returns the containing bucket's upper edge: within 2x of
	// the exact value, never below it.
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		exact := uint64(q * 100)
		if exact == 0 {
			exact = 1
		}
		got := s.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%g) = %d, below exact %d", q, got, exact)
		}
		if got >= 2*exact {
			t.Errorf("Quantile(%g) = %d, not within 2x of exact %d", q, got, exact)
		}
	}
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}

func TestSpanObserves(t *testing.T) {
	var h Histogram
	sp := StartSpan(&h)
	time.Sleep(time.Millisecond)
	sp.End()
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("span count = %d, want 1", s.Count)
	}
	if s.Sum < uint64(time.Millisecond) {
		t.Errorf("span sum = %dns, want >= 1ms", s.Sum)
	}
	// nil histogram and zero span are no-ops.
	StartSpan(nil).End()
	var zero Span
	zero.End()
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help")
	if a != b {
		t.Errorf("re-registering a counter name returned a different instance")
	}
	if g1, g2 := r.Gauge("g", ""), r.Gauge("g", ""); g1 != g2 {
		t.Errorf("re-registering a gauge name returned a different instance")
	}
	if h1, h2 := r.Histogram("h", ""), r.Histogram("h", ""); h1 != h2 {
		t.Errorf("re-registering a histogram name returned a different instance")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Errorf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "with-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "a counter").Add(3)
	r.Gauge("a_gauge", "a gauge").Set(-2)
	r.Histogram("c_ns", "a histogram").Observe(5)
	r.CounterFunc("d_total", "sampled", func() uint64 { return 7 })
	r.GaugeFunc("e_ratio", "sampled gauge", func() float64 { return 0.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge -2\n",
		"# TYPE b_total counter\nb_total 3\n",
		"# TYPE c_ns histogram\n",
		"c_ns_bucket{le=\"+Inf\"} 1\n",
		"c_ns_sum 5\n",
		"c_ns_count 1\n",
		"d_total 7\n",
		"e_ratio 0.5\n",
		"# HELP b_total a counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: a_gauge before b_total before c_ns.
	if ia, ib := strings.Index(out, "a_gauge"), strings.Index(out, "b_total"); ia > ib {
		t.Errorf("metrics not sorted by name:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", "")
	h.Observe(1) // bucket 1, upper 1
	h.Observe(2) // bucket 2, upper 3
	h.Observe(3) // bucket 2
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"lat_ns_bucket{le=\"0\"} 0\n",
		"lat_ns_bucket{le=\"1\"} 1\n",
		"lat_ns_bucket{le=\"3\"} 3\n",
		"lat_ns_bucket{le=\"+Inf\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCounterHotPathAllocs pins the zero-allocation contract of every
// instrument a hot path may touch, mirroring TestOnDepSteadyStateAllocs
// in core: the //act:noalloc annotations are the static half, this is
// the dynamic half.
func TestCounterHotPathAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"Span", func() { StartSpan(&h).End() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
