package loader

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"act/internal/trace"
)

func writtenTrace(t *testing.T, n int) ([]byte, *trace.Trace) {
	t.Helper()
	tr := &trace.Trace{Program: "retry-fixture", Seed: 4, Steps: uint64(n)}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Seq: uint64(i), PC: uint64(i * 5), Addr: uint64(i * 9), Tid: uint16(i % 2), Store: i%2 == 0,
		})
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tr
}

// noSleep fails the test if the retry loop actually sleeps — used where
// no retries are expected — or records the schedule.
func sleepRecorder(t *testing.T) (func(time.Duration), *[]time.Duration) {
	t.Helper()
	var waits []time.Duration
	return func(d time.Duration) { waits = append(waits, d) }, &waits
}

func TestLoadTraceMissingFileFailsFast(t *testing.T) {
	sleep, waits := sleepRecorder(t)
	_, _, err := LoadTrace(filepath.Join(t.TempDir(), "nope.trace"), RetryConfig{Sleep: sleep})
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want not-exist", err)
	}
	if len(*waits) != 0 {
		t.Fatalf("missing file was retried %d times", len(*waits))
	}
}

func TestLoadTraceBadMagicFailsFast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.trace")
	if err := os.WriteFile(path, []byte("this is not a trace, promise"), 0o644); err != nil {
		t.Fatal(err)
	}
	sleep, waits := sleepRecorder(t)
	_, _, err := LoadTrace(path, RetryConfig{Sleep: sleep})
	if !errors.Is(err, trace.ErrBadMagic) {
		t.Fatalf("err = %v, want bad magic", err)
	}
	if len(*waits) != 0 {
		t.Fatalf("bad magic was retried %d times", len(*waits))
	}
}

func TestLoadTraceTruncatedYieldsPartial(t *testing.T) {
	data, tr := writtenTrace(t, 100)
	path := filepath.Join(t.TempDir(), "cut.trace")
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep, err := LoadTrace(path, RetryConfig{})
	if err != nil {
		t.Fatalf("mid-record truncation must degrade, not fail: %v", err)
	}
	if !rep.TruncatedTail || len(got.Records) != len(tr.Records)-1 {
		t.Fatalf("partial result: rep=%+v records=%d", rep, len(got.Records))
	}
}

func TestLoadTraceChecksumMismatchYieldsPartial(t *testing.T) {
	data, _ := writtenTrace(t, 100)
	data = append([]byte(nil), data...)
	data[len(data)-1500] ^= 0xFF // inside some record frame
	path := filepath.Join(t.TempDir(), "flip.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep, err := LoadTrace(path, RetryConfig{})
	if err != nil {
		t.Fatalf("checksum mismatch must degrade, not fail: %v", err)
	}
	if !rep.Corrupt() || rep.BadSpans == 0 {
		t.Fatalf("corruption unreported: %+v", rep)
	}
	if len(got.Records) < 90 {
		t.Fatalf("recovered only %d/100 records", len(got.Records))
	}
}

// flakyOpener fails the first n opens with a transient error.
type flakyOpener struct {
	fails int
	data  []byte
	opens int
}

func (f *flakyOpener) open() (io.ReadCloser, error) {
	f.opens++
	if f.opens <= f.fails {
		return nil, errors.New("loader test: transient I/O error")
	}
	return io.NopCloser(bytes.NewReader(f.data)), nil
}

func TestLoadTraceRetriesTransient(t *testing.T) {
	data, tr := writtenTrace(t, 10)
	fo := &flakyOpener{fails: 2, data: data}
	sleep, waits := sleepRecorder(t)
	got, rep, err := LoadTraceFrom(fo.open, RetryConfig{Sleep: sleep})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt() || len(got.Records) != len(tr.Records) {
		t.Fatalf("recovered trace wrong: rep=%v records=%d", rep, len(got.Records))
	}
	if fo.opens != 3 || len(*waits) != 2 {
		t.Fatalf("opens=%d waits=%d, want 3 opens after 2 transient failures", fo.opens, len(*waits))
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	fo := &flakyOpener{fails: 100}
	sleep, waits := sleepRecorder(t)
	_, _, err := LoadTraceFrom(fo.open, RetryConfig{
		Attempts: 6, BaseDelay: 40 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Sleep: sleep,
	})
	if err == nil {
		t.Fatal("ever-failing opener succeeded")
	}
	want := []time.Duration{40 * time.Millisecond, 80 * time.Millisecond,
		100 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond}
	if len(*waits) != len(want) {
		t.Fatalf("waits %v", *waits)
	}
	for i, w := range want {
		if (*waits)[i] != w {
			t.Fatalf("wait %d = %v, want %v (schedule %v)", i, (*waits)[i], w, *waits)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var waits []time.Duration
	calls := 0
	err := Do(RetryConfig{
		Attempts: 5,
		Sleep:    func(d time.Duration) { waits = append(waits, d) },
	}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient blip")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(waits) != 2 {
		t.Fatalf("calls=%d waits=%d", calls, len(waits))
	}
}

func TestDoFailsFastOnPermanent(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Do(RetryConfig{
		Attempts:  5,
		Sleep:     func(time.Duration) {},
		Transient: func(err error) bool { return !errors.Is(err, perm) },
	}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}
