package loader

import (
	"testing"
	"testing/quick"

	"act/internal/deps"
	"act/internal/trace"
)

func TestResolve(t *testing.T) {
	l, err := NewLayout([]Module{
		{ID: 0, Base: 0x400000, Size: 0x1000},
		{ID: 3, Base: 0x7f0000, Size: 0x2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id, off, ok := l.Resolve(0x400010); !ok || id != 0 || off != 0x10 {
		t.Fatalf("resolve main: %d %#x %v", id, off, ok)
	}
	if id, off, ok := l.Resolve(0x7f1fff); !ok || id != 3 || off != 0x1fff {
		t.Fatalf("resolve lib: %d %#x %v", id, off, ok)
	}
	for _, pc := range []uint64{0x3fffff, 0x401000, 0x7f2000, 0} {
		if _, _, ok := l.Resolve(pc); ok {
			t.Errorf("pc %#x resolved but is outside every module", pc)
		}
	}
}

func TestOverlapRejected(t *testing.T) {
	_, err := NewLayout([]Module{
		{ID: 0, Base: 0x1000, Size: 0x1000},
		{ID: 1, Base: 0x1800, Size: 0x1000},
	})
	if err == nil {
		t.Fatal("overlapping modules accepted")
	}
}

func TestCanonicalStableAcrossLayouts(t *testing.T) {
	// The same (module, offset) resolves to the same canonical identity
	// under any randomized layout — the property that keeps last-writer
	// invariants valid across ASLR'd executions.
	sizes := map[uint16]uint64{0: 0x4000, 1: 0x2000, 2: 0x1000}
	f := func(seedA, seedB int64, id16 uint16, off uint16) bool {
		id := id16 % 3
		offset := uint64(off) % sizes[id]
		a := Randomized(seedA, sizes)
		b := Randomized(seedB, sizes)
		var pcA, pcB uint64
		for _, m := range a.mods {
			if m.ID == id {
				pcA = m.Base + offset
			}
		}
		for _, m := range b.mods {
			if m.ID == id {
				pcB = m.Base + offset
			}
		}
		idA, offA, okA := a.Resolve(pcA)
		idB, offB, okB := b.Resolve(pcB)
		return okA && okB && Canonical(idA, offA) == Canonical(idB, offB)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestASLRBreaksRawPCsButNotCanonical: the end-to-end motivation. A
// "library" store feeds a load; across two executions with different
// load addresses, raw-PC dependences differ but canonicalized ones are
// identical.
func TestASLRBreaksRawPCsButNotCanonical(t *testing.T) {
	sizes := map[uint16]uint64{0: 0x1000, 7: 0x1000}
	mkTrace := func(seed int64) (*trace.Trace, *Layout) {
		l := Randomized(seed, sizes)
		var libBase uint64
		for _, m := range l.mods {
			if m.ID == 7 {
				libBase = m.Base
			}
		}
		// The library's store at offset 0x20 and load at offset 0x24.
		return &trace.Trace{Records: []trace.Record{
			{Seq: 0, PC: libBase + 0x20, Addr: 0x10000000, Tid: 0, Store: true},
			{Seq: 1, PC: libBase + 0x24, Addr: 0x10000000, Tid: 0},
		}}, l
	}
	depsOf := func(tr *trace.Trace) deps.Dep {
		var got deps.Dep
		e := deps.NewExtractor(deps.ExtractorConfig{N: 1})
		e.OnDep = func(_ uint16, d deps.Dep) { got = d }
		for _, r := range tr.Records {
			if r.Store {
				e.Store(r.Tid, r.PC, r.Addr, r.Stack)
			} else {
				e.Load(r.Tid, r.PC, r.Addr, r.Stack)
			}
		}
		return got
	}

	trA, la := mkTrace(1)
	trB, lb := mkTrace(2)
	if depsOf(trA) == depsOf(trB) {
		t.Skip("layouts happened to coincide; unusual but possible")
	}
	ca, unkA := la.Canonicalize(trA)
	cb, unkB := lb.Canonicalize(trB)
	if unkA != 0 || unkB != 0 {
		t.Fatalf("unknown PCs: %d, %d", unkA, unkB)
	}
	da, db := depsOf(ca), depsOf(cb)
	if da != db {
		t.Fatalf("canonicalized deps differ: %v vs %v", da, db)
	}
	if da.S != Canonical(7, 0x20) || da.L != Canonical(7, 0x24) {
		t.Fatalf("canonical dep %v", da)
	}
}

func TestCanonicalizePreservesUnknown(t *testing.T) {
	l := Randomized(1, map[uint16]uint64{0: 0x1000})
	tr := &trace.Trace{Records: []trace.Record{
		{PC: 0x1, Addr: 0x10000000, Store: true}, // outside every module
	}}
	out, unknown := l.Canonicalize(tr)
	if unknown != 1 || out.Records[0].PC != 0x1 {
		t.Fatalf("unknown handling: %d, %+v", unknown, out.Records[0])
	}
}
