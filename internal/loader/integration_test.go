package loader

import (
	"testing"

	"act/internal/trace"
	"act/internal/train"
	"act/internal/workloads"
)

// shift relocates every instruction address in a trace by delta — the
// effect of the loader mapping the (single-module) program at a
// different base in this execution.
func shift(t *trace.Trace, delta uint64) *trace.Trace {
	out := &trace.Trace{Program: t.Program, Seed: t.Seed, Steps: t.Steps,
		Records: make([]trace.Record, len(t.Records))}
	for i, r := range t.Records {
		r.PC += delta
		out.Records[i] = r
	}
	return out
}

// TestASLRTrainingEndToEnd: with per-run randomized load addresses, raw
// PCs carry no cross-run invariants — training collapses. Canonicalizing
// through the layout restores them. This is the system-level consequence
// of Section V's library-id+offset encoding.
func TestASLRTrainingEndToEnd(t *testing.T) {
	w, err := workloads.KernelByName("mcf")
	if err != nil {
		t.Fatal(err)
	}

	// The program's code fits one module; every run maps it elsewhere.
	const modSize = 1 << 22
	sizes := map[uint16]uint64{0: modSize}
	collect := func(seed int64) (*trace.Trace, *Layout) {
		tr, _ := trace.Collect(w.Build(seed), w.Sched(seed))
		l := Randomized(seed*31+7, sizes)
		base := l.mods[0].Base
		// Relocate the run: raw PCs = canonical PCs + (base - original).
		return shift(tr, base-0x400000), l
	}

	var rawTrain, rawTest, canTrain, canTest []*trace.Trace
	for s := int64(0); s < 8; s++ {
		tr, l := collect(s)
		rawTrain = append(rawTrain, tr)
		c, unknown := l.Canonicalize(tr)
		if unknown != 0 {
			t.Fatalf("seed %d: %d PCs outside the module", s, unknown)
		}
		canTrain = append(canTrain, c)
	}
	for s := int64(100); s < 104; s++ {
		tr, l := collect(s)
		rawTest = append(rawTest, tr)
		c, _ := l.Canonicalize(tr)
		canTest = append(canTest, c)
	}

	cfg := train.Config{Ns: []int{2}, Hs: []int{8}, Seed: 1}

	canon, err := train.Train(canTrain, canTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if canon.Mispred > 0.05 {
		t.Fatalf("canonicalized training FP %.3f: invariants should survive ASLR", canon.Mispred)
	}

	raw, err := train.Train(rawTrain, rawTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("FP raw=%.3f canonical=%.3f", raw.Mispred, canon.Mispred)
	if raw.Mispred <= canon.Mispred {
		t.Fatalf("raw PCs trained as well as canonical ones (%.3f vs %.3f): ASLR should break raw-PC invariants",
			raw.Mispred, canon.Mispred)
	}
}
