package loader

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"time"

	"act/internal/trace"
)

// Trace ingest with retry. Production traces arrive over flaky
// transports — NFS mounts, log shippers, crash-dump collectors — where
// reads fail transiently. The loader retries those with capped
// exponential backoff, but fails fast on permanent problems (a missing
// file, a stream that is not a trace at all): retrying cannot turn a
// wrong file into a right one. Corruption inside a framed trace is not
// an error at all — the trace reader already degrades to a partial
// trace plus a CorruptionReport.

// RetryConfig bounds the retry loop. The zero value gives 4 attempts
// starting at 10ms, doubling, capped at 250ms per wait.
type RetryConfig struct {
	Attempts  int           // total attempts; default 4
	BaseDelay time.Duration // wait before the second attempt; default 10ms
	MaxDelay  time.Duration // backoff cap; default 250ms
	// Sleep replaces time.Sleep, letting tests observe the backoff
	// schedule without waiting it out.
	Sleep func(time.Duration)
	// Transient classifies errors worth retrying. The default treats
	// everything as transient except a missing file, bad magic, and an
	// unsupported version.
	Transient func(error) bool
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts <= 0 {
		c.Attempts = 4
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 10 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 250 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.Transient == nil {
		c.Transient = TransientDefault
	}
	return c
}

// TransientDefault is the default retry classification: permanent
// failures are those a retry cannot fix.
func TransientDefault(err error) bool {
	return !errors.Is(err, trace.ErrBadMagic) &&
		!errors.Is(err, trace.ErrBadVersion) &&
		!errors.Is(err, fs.ErrNotExist) &&
		!errors.Is(err, fs.ErrPermission)
}

// Do runs op under the retry policy: transient failures are retried
// with capped exponential backoff, permanent ones fail fast with the
// error they produced. It is the generic engine behind LoadTraceFrom,
// and the fleet agent drives its collector connection with the same
// policy — one classification of what a retry can and cannot fix.
func Do(cfg RetryConfig, op func() error) error {
	cfg = cfg.withDefaults()
	delay := cfg.BaseDelay
	var lastErr error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			cfg.Sleep(delay)
			delay *= 2
			if delay > cfg.MaxDelay {
				delay = cfg.MaxDelay
			}
		}
		if lastErr = op(); lastErr == nil {
			return nil
		}
		if !cfg.Transient(lastErr) {
			break
		}
	}
	return lastErr
}

// LoadTraceFrom reads a trace from successive readers produced by open,
// retrying transient failures under the config. Each attempt gets a
// fresh reader (a half-consumed stream cannot be resumed). The returned
// report is non-nil whenever the trace is.
func LoadTraceFrom(open func() (io.ReadCloser, error), cfg RetryConfig) (*trace.Trace, *trace.CorruptionReport, error) {
	var t *trace.Trace
	var rep *trace.CorruptionReport
	err := Do(cfg, func() error {
		r, err := open()
		if err != nil {
			return err
		}
		defer r.Close()
		t, rep, err = trace.ReadReport(r)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return t, rep, nil
}

// LoadTrace reads the trace file at path with retry on transient
// failures. Corrupted framed traces come back as a partial trace plus a
// report, not an error.
func LoadTrace(path string, cfg RetryConfig) (*trace.Trace, *trace.CorruptionReport, error) {
	return LoadTraceFrom(func() (io.ReadCloser, error) { return os.Open(path) }, cfg)
}
