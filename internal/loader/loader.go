// Package loader handles dynamically loaded code (Section V): when a
// library is mapped at a different base address in every execution
// (ASLR), raw instruction addresses are useless as invariants — the same
// store appears at a different PC each run. ACT's fix is to store the
// last-writer address "in the form of a library id and an offset into
// the library"; this package implements that canonicalization for
// traces.
//
// A Layout describes where each module (main binary or library) was
// mapped in one execution. Canonicalize rewrites a trace's instruction
// addresses into the stable encoding id:offset, so training and
// deployment agree across executions no matter where the loader put the
// code.
package loader

import (
	"fmt"
	"math/rand"
	"sort"

	"act/internal/trace"
)

// Module is one mapped code region.
type Module struct {
	ID   uint16 // library id (0 = main binary)
	Base uint64 // load address in this execution
	Size uint64 // region size in bytes
}

// Layout is the memory map of one execution.
type Layout struct {
	mods []Module // sorted by Base
}

// NewLayout builds a layout from modules; bases must not overlap.
func NewLayout(mods []Module) (*Layout, error) {
	sorted := append([]Module(nil), mods...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Base+sorted[i-1].Size > sorted[i].Base {
			return nil, fmt.Errorf("loader: modules %d and %d overlap", sorted[i-1].ID, sorted[i].ID)
		}
	}
	return &Layout{mods: sorted}, nil
}

// Randomized returns a layout for the given module ids and sizes with
// ASLR-style bases drawn deterministically from the seed. Bases are
// 4 KiB aligned and non-overlapping.
func Randomized(seed int64, sizes map[uint16]uint64) *Layout {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]uint16, 0, len(sizes))
	for id := range sizes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Shuffle the mapping order, then pack with random gaps.
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	base := uint64(0x400000)
	var mods []Module
	for _, id := range ids {
		base += uint64(rng.Intn(1<<12)) << 12 // random gap, page aligned
		mods = append(mods, Module{ID: id, Base: base, Size: sizes[id]})
		base += (sizes[id] + 0xfff) &^ 0xfff
	}
	l, err := NewLayout(mods)
	if err != nil {
		panic(err) // construction guarantees non-overlap
	}
	return l
}

// Resolve maps a raw instruction address to (module id, offset). The
// second result is false for addresses outside every module.
func (l *Layout) Resolve(pc uint64) (uint16, uint64, bool) {
	i := sort.Search(len(l.mods), func(i int) bool { return l.mods[i].Base > pc })
	if i == 0 {
		return 0, 0, false
	}
	m := l.mods[i-1]
	if pc >= m.Base+m.Size {
		return 0, 0, false
	}
	return m.ID, pc - m.Base, true
}

// Canonical encodes (module id, offset) as a single stable 64-bit
// instruction identity: the id in the top 16 bits. Offsets are bounded
// by module sizes, far below 2^48.
func Canonical(id uint16, offset uint64) uint64 {
	return uint64(id)<<48 | offset
}

// Canonicalize rewrites every instruction address in the trace to its
// stable id:offset form under the layout. Addresses outside all modules
// (JIT stubs, trampolines) are left untouched; the count of such records
// is returned alongside the rewritten trace.
func (l *Layout) Canonicalize(t *trace.Trace) (*trace.Trace, int) {
	out := &trace.Trace{Program: t.Program, Seed: t.Seed, Steps: t.Steps,
		Records: make([]trace.Record, len(t.Records))}
	unknown := 0
	for i, r := range t.Records {
		if id, off, ok := l.Resolve(r.PC); ok {
			r.PC = Canonical(id, off)
		} else {
			unknown++
		}
		out.Records[i] = r
	}
	return out, unknown
}
