package faults

import (
	"bytes"
	"fmt"
	"strings"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/fleet"
	"act/internal/ranking"
	"act/internal/wire"
)

// Network campaign: the fleet transport's counterpart of the trace
// campaign. An agent's batches cross a real network to reach the
// collector, so the evaluation must show that transport damage — a
// frame corrupted in flight, a connection cut mid-batch, a batch
// delivered twice by at-least-once retry — changes nothing about the
// ranked diagnosis. Each arm re-encodes the same batch traffic with one
// fault injected, replays it through a fresh collector together with
// the redelivery the agent would perform, and compares the ranked
// output against the fault-free run. Everything draws from the
// injector's seed, so an arm is reproducible bit for bit.

// NetKind enumerates the injectable transport fault classes.
type NetKind int

const (
	// NetCorrupt flips one bit inside a frame in flight; the frame
	// fails its CRC, the collector resyncs past it, and the agent
	// (seeing the write error) redelivers the batch.
	NetCorrupt NetKind = iota
	// NetCut ends the connection mid-frame; the agent reconnects and
	// resends everything not yet acknowledged.
	NetCut
	// NetDup delivers one batch twice, as at-least-once retry does when
	// the ack is lost; the collector's sequence-hash dedup drops it.
	NetDup
)

var netKindNames = map[NetKind]string{
	NetCorrupt: "net-corrupt",
	NetCut:     "net-cut",
	NetDup:     "net-dup",
}

// String names the kind as the campaign tables print it.
func (k NetKind) String() string {
	if s, ok := netKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("netkind(%d)", int(k))
}

// AllNetKinds lists every transport fault class in table order.
func AllNetKinds() []NetKind { return []NetKind{NetCorrupt, NetCut, NetDup} }

// ParseNetKinds resolves a comma-separated kind list ("all" for all).
func ParseNetKinds(s string) ([]NetKind, error) {
	if s == "" || s == "all" {
		return AllNetKinds(), nil
	}
	var out []NetKind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for k, n := range netKindNames {
			if n == name {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown net kind %q", name)
		}
	}
	return out, nil
}

// NetRow is one experimental arm: the batch traffic under one fault.
type NetRow struct {
	Kind      NetKind
	Victim    int // index of the damaged/duplicated batch
	Streams   int // connections the delivery took
	BadSpans  int
	Skipped   int64 // bytes discarded during resync
	Dups      uint64
	Truncated bool
	Unchanged bool // ranked output identical to the fault-free run
}

// NetResult is a full network campaign.
type NetResult struct {
	Baseline *ranking.Report
	Rows     []NetRow
}

// UnchangedRate returns the fraction of arms whose ranked output
// matched the fault-free run — the campaign's headline number.
func (r *NetResult) UnchangedRate() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if row.Unchanged {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}

// Render formats the campaign as a fixed-width table.
func (r *NetResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %6s %7s | %8s %7s %5s %5s | %9s\n",
		"fault", "victim", "streams", "badspans", "skipped", "dups", "trunc", "unchanged")
	line := strings.Repeat("-", 78)
	sb.WriteString(line + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %6d %7d | %8d %7d %5d %5v | %9v\n",
			row.Kind, row.Victim, row.Streams, row.BadSpans, row.Skipped,
			row.Dups, row.Truncated, row.Unchanged)
	}
	return sb.String()
}

// NetCampaignConfig parameterizes a network campaign.
type NetCampaignConfig struct {
	Kinds     []NetKind             // default AllNetKinds()
	Seed      int64                 // default 1
	Collector fleet.CollectorConfig // per-arm collector config (no snapshot path)
}

func (c NetCampaignConfig) withDefaults() NetCampaignConfig {
	if len(c.Kinds) == 0 {
		c.Kinds = AllNetKinds()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Collector.SnapshotPath = "" // arms must not share state through disk
	return c
}

// RunNetCampaign delivers the batch traffic once cleanly and once per
// fault kind, modelling the agent's at-least-once redelivery, and
// reports whether each arm's ranked output matched the baseline.
func RunNetCampaign(batches []*wire.Batch, cfg NetCampaignConfig) (*NetResult, error) {
	cfg = cfg.withDefaults()
	if len(batches) == 0 {
		return nil, fmt.Errorf("faults: net campaign needs batch traffic")
	}

	base := fleet.NewCollector(cfg.Collector)
	if _, err := base.IngestStream(bytes.NewReader(mustEncodeStream(batches))); err != nil {
		return nil, fmt.Errorf("faults: clean delivery failed: %w", err)
	}
	res := &NetResult{Baseline: base.Report()}
	want := rankedSeqKeys(res.Baseline)

	for ki, kind := range cfg.Kinds {
		in := New(cfg.Seed + int64(ki)*10_000)
		victim := in.rng.Intn(len(batches))
		c := fleet.NewCollector(cfg.Collector)

		row := NetRow{Kind: kind, Victim: victim}
		streams, err := in.netStreams(kind, batches, victim)
		if err != nil {
			return nil, err
		}
		row.Streams = len(streams)
		for _, s := range streams {
			rep, err := c.IngestStream(bytes.NewReader(s))
			if err != nil {
				return nil, fmt.Errorf("faults: %s delivery failed: %w", kind, err)
			}
			row.BadSpans += rep.BadSpans
			row.Skipped += rep.SkippedBytes
			row.Truncated = row.Truncated || rep.Truncated
		}
		row.Dups = c.Stats().DupBatches
		row.Unchanged = sameSeqKeys(rankedSeqKeys(c.Report()), want)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// SyntheticFleetTraffic builds deterministic batch traffic for
// transport campaigns: failRuns failing runs that all log one bug
// sequence (output -1.5) plus shared noise and one unique sequence per
// run (output -2.0, so only cross-run weighting puts the bug first),
// and correctRuns correct runs logging just the noise — which the
// collector's cross-run Correct Set then prunes.
func SyntheticFleetTraffic(failRuns, correctRuns int) []*wire.Batch {
	seq := func(ids ...uint64) deps.Sequence {
		s := make(deps.Sequence, len(ids))
		for i, id := range ids {
			s[i] = deps.Dep{S: id << 4, L: id<<4 + 1, Inter: true}
		}
		return s
	}
	entry := func(s deps.Sequence, out float64) core.DebugEntry {
		return core.DebugEntry{Seq: s, Output: out, Mode: core.Testing}
	}
	bug, noise := seq(1, 2, 3), seq(4, 5, 6)
	var batches []*wire.Batch
	for i := 0; i < failRuns; i++ {
		u := uint64(i)
		batches = append(batches, &wire.Batch{
			Agent: "f", Run: 101 + u, Outcome: wire.OutcomeFailing,
			Entries: []core.DebugEntry{
				entry(bug, -1.5),
				entry(noise, -0.5),
				entry(seq(10+u, 20+u, 30+u), -2.0),
			},
		})
	}
	for i := 0; i < correctRuns; i++ {
		batches = append(batches, &wire.Batch{
			Agent: "c", Run: 201 + uint64(i), Outcome: wire.OutcomeCorrect,
			Entries: []core.DebugEntry{entry(noise, -0.5)},
		})
	}
	return batches
}

// netStreams builds the wire streams one fault scenario produces: the
// damaged first connection, then the redelivery connection(s) the
// agent's retry would open.
func (in *Injector) netStreams(kind NetKind, batches []*wire.Batch, victim int) ([][]byte, error) {
	offs, data, err := encodeStreamOffsets(batches)
	if err != nil {
		return nil, err
	}
	vStart, vEnd := offs[victim], offs[victim+1]
	if victim == 0 {
		// The first batch's span includes the stream prologue; damage
		// there is a protocol error, not frame damage — aim past it.
		vStart += len(wire.AppendPrologue(nil))
	}

	switch kind {
	case NetCorrupt:
		// Flip one bit inside the victim frame (past its sync bytes so
		// the reader walks into the frame before the CRC rejects it),
		// then redeliver the victim on a fresh connection.
		out := append([]byte(nil), data...)
		span := vEnd - vStart - 2
		i := vStart + 2 + in.rng.Intn(span)
		out[i] ^= 1 << uint(in.rng.Intn(8))
		redeliver, err := mustEncodeStreamErr(batches[victim : victim+1])
		if err != nil {
			return nil, err
		}
		return [][]byte{out, redeliver}, nil
	case NetCut:
		// Cut inside the victim frame; the agent reconnects and resends
		// from the first unacknowledged batch to the end.
		cut := vStart + 1 + in.rng.Intn(vEnd-vStart-1)
		redeliver, err := mustEncodeStreamErr(batches[victim:])
		if err != nil {
			return nil, err
		}
		return [][]byte{data[:cut], redeliver}, nil
	case NetDup:
		// The whole traffic arrives, then the victim again: a lost ack.
		redeliver, err := mustEncodeStreamErr(batches[victim : victim+1])
		if err != nil {
			return nil, err
		}
		return [][]byte{data, redeliver}, nil
	}
	return nil, fmt.Errorf("faults: unknown net kind %d", int(kind))
}

// encodeStreamOffsets encodes batches into one wire stream and returns
// the byte offset where each batch's frame starts (plus the final
// length), so faults can target one frame precisely.
func encodeStreamOffsets(batches []*wire.Batch) ([]int, []byte, error) {
	var buf bytes.Buffer
	wr := wire.NewWriter(&buf)
	offs := make([]int, 0, len(batches)+1)
	for _, b := range batches {
		offs = append(offs, buf.Len())
		if err := wr.WriteBatch(b); err != nil {
			return nil, nil, err
		}
	}
	offs = append(offs, buf.Len())
	return offs, buf.Bytes(), nil
}

func mustEncodeStreamErr(batches []*wire.Batch) ([]byte, error) {
	_, data, err := encodeStreamOffsets(batches)
	return data, err
}

// mustEncodeStream is the baseline path, where encoding our own batches
// cannot fail for reasons an arm should survive.
func mustEncodeStream(batches []*wire.Batch) []byte {
	_, data, err := encodeStreamOffsets(batches)
	if err != nil {
		panic(err)
	}
	return data
}

func rankedSeqKeys(rep *ranking.Report) []string {
	out := make([]string, len(rep.Ranked))
	for i, c := range rep.Ranked {
		out[i] = c.Entry.Seq.Key()
	}
	return out
}

func sameSeqKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
