package faults

import "testing"

// TestFleetCampaignNoEvidenceLost: across seeds, every lossless arm
// (kill with snapshot, partition, restart) produces a rollup report
// byte-identical to the never-failed single-collector run, and the
// lossy arm still produces an annotated report. Run under -race in CI,
// this is the tentpole invariant of the sharded tier.
func TestFleetCampaignNoEvidenceLost(t *testing.T) {
	sawFault := false
	for _, seed := range []int64{1, 7, 1234} {
		res, err := RunFleetCampaign(FleetCampaignConfig{Seed: seed, Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := res.Violations(); n != 0 {
			t.Fatalf("seed %d: %d invariant violation(s):\n%s", seed, n, res.Render())
		}
		if len(res.Rows) != len(AllFleetKinds()) {
			t.Fatalf("seed %d: %d arms, want %d", seed, len(res.Rows), len(AllFleetKinds()))
		}
		for _, row := range res.Rows {
			if row.Kind != FleetLose && !row.Identical {
				t.Fatalf("seed %d: lossless arm %s not byte-identical:\n%s",
					seed, row.Kind, res.Render())
			}
			if row.Kind == FleetLose && row.Completeness != 2.0/3.0 {
				t.Fatalf("seed %d: lose arm completeness = %v", seed, row.Completeness)
			}
			if row.Reroutes > 0 || row.DialFails > 0 || row.TimeoutFails > 0 || row.Replayed > 0 {
				sawFault = true
			}
		}
	}
	if !sawFault {
		t.Fatal("no arm across any seed exercised failover; the campaign is injecting nothing")
	}
}

func TestParseFleetKinds(t *testing.T) {
	ks, err := ParseFleetKinds("all")
	if err != nil || len(ks) != 4 {
		t.Fatalf("all: %v %v", ks, err)
	}
	ks, err = ParseFleetKinds("shard-kill, shard-lose")
	if err != nil || len(ks) != 2 || ks[0] != FleetKill || ks[1] != FleetLose {
		t.Fatalf("pair: %v %v", ks, err)
	}
	if _, err := ParseFleetKinds("shard-nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
