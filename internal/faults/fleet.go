package faults

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/fleet"
	"act/internal/fleet/shard"
	"act/internal/loader"
	"act/internal/ranking"
	"act/internal/wire"
)

// Fleet-topology campaign: the sharded tier's counterpart of the
// network campaign. Traffic flows through real routers and real shard
// collectors on loopback TCP, in rounds; between rounds the campaign
// waits for every shipped batch to be ingested and drops all router
// connections, then injects one topology fault at a seeded round
// boundary — kill a shard (state snapshotted, like a crash with its
// disk intact), partition it (alive but unreachable for a window),
// restart it (down one round, back with its snapshot reloaded), or
// lose it outright (dead, disk gone). The invariant checker asserts
// the merged rollup report is byte-identical to a never-failed
// single-collector run over the same traffic — except for the lossy
// arm, whose contract is graceful degradation: a report still comes
// out, annotated with exactly whose evidence is missing.

// FleetKind enumerates the injectable fleet-topology fault classes.
//
//act:exhaustive
type FleetKind int

const (
	// FleetKill stops a shard for good after snapshotting its state —
	// a crashed process whose disk survives. The rollup merges the
	// snapshot; nothing may be lost.
	FleetKill FleetKind = iota
	// FleetPartition makes a shard unreachable (dials time out) for a
	// window of rounds, then heals it. Nothing may be lost.
	FleetPartition
	// FleetRestart kills a shard and brings it back one round later on
	// a new listener, reloading its snapshot. Nothing may be lost.
	FleetRestart
	// FleetLose kills a shard and destroys its state — disk and all.
	// Evidence it alone held is gone; the contract is that the rollup
	// still produces a report and the completeness annotations say
	// exactly which shard's evidence is missing.
	FleetLose
)

var fleetKindNames = map[FleetKind]string{
	FleetKill:      "shard-kill",
	FleetPartition: "shard-partition",
	FleetRestart:   "shard-restart",
	FleetLose:      "shard-lose",
}

// String names the kind as the campaign tables print it.
func (k FleetKind) String() string {
	if s, ok := fleetKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fleetkind(%d)", int(k))
}

// AllFleetKinds lists every fleet fault class in table order.
func AllFleetKinds() []FleetKind {
	return []FleetKind{FleetKill, FleetPartition, FleetRestart, FleetLose}
}

// ParseFleetKinds resolves a comma-separated kind list ("all" for all).
func ParseFleetKinds(s string) ([]FleetKind, error) {
	if s == "" || s == "all" {
		return AllFleetKinds(), nil
	}
	var out []FleetKind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for k, n := range fleetKindNames {
			if n == name {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown fleet kind %q", name)
		}
	}
	return out, nil
}

// FleetRow is one experimental arm: the fleet under one topology fault.
type FleetRow struct {
	Kind         FleetKind
	Victim       string // shard that took the fault
	Round        int    // round boundary where it was injected
	Reroutes     uint64 // lane deliveries that failed over
	Spooled      uint64 // batches that had to spool (no shard reachable)
	Replayed     uint64 // spooled batches replayed
	DialFails    uint64 // classified dial failures across routers
	TimeoutFails uint64 // classified timeout failures across routers
	Merged       int    // shards whose state reached the rollup
	Completeness float64
	Produced     bool // a rollup report came out
	Identical    bool // report bytes == never-failed single-collector run
	Violated     bool // the arm's invariant did not hold
}

// FleetResult is a full fleet-topology campaign.
type FleetResult struct {
	Baseline *ranking.Report
	Shards   int
	Rows     []FleetRow
}

// Violations counts arms whose invariant did not hold — the campaign's
// pass/fail line.
func (r *FleetResult) Violations() int {
	n := 0
	for _, row := range r.Rows {
		if row.Violated {
			n++
		}
	}
	return n
}

// Render formats the campaign as a fixed-width table.
func (r *FleetResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-15s %-8s %5s | %8s %7s %8s %5s %5s | %6s %5s %9s %8s\n",
		"fault", "victim", "round", "reroutes", "spooled", "replayed", "dialf", "tmof",
		"merged", "compl", "identical", "violated")
	sb.WriteString(strings.Repeat("-", 112) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-15s %-8s %5d | %8d %7d %8d %5d %5d | %6d %5.2f %9v %8v\n",
			row.Kind, row.Victim, row.Round, row.Reroutes, row.Spooled, row.Replayed,
			row.DialFails, row.TimeoutFails, row.Merged, row.Completeness,
			row.Identical, row.Violated)
	}
	return sb.String()
}

// FleetCampaignConfig parameterizes a fleet campaign.
type FleetCampaignConfig struct {
	Kinds       []FleetKind // default AllFleetKinds()
	Seed        int64       // default 1
	Shards      int         // shard collectors per arm; default 3
	Rounds      int         // traffic rounds per arm; default 3
	FailRuns    int         // failing runs in the traffic; default 3
	CorrectRuns int         // correct runs in the traffic; default 2
	Dir         string      // scratch dir for snapshots and spools; default a temp dir
}

func (c FleetCampaignConfig) withDefaults() FleetCampaignConfig {
	if len(c.Kinds) == 0 {
		c.Kinds = AllFleetKinds()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Rounds < 2 {
		c.Rounds = 3
	}
	if c.FailRuns <= 0 {
		c.FailRuns = 3
	}
	if c.CorrectRuns <= 0 {
		c.CorrectRuns = 2
	}
	return c
}

// fleetRun is one monitored execution's worth of traffic.
type fleetRun struct {
	name    string
	run     uint64
	outcome wire.Outcome
	entries []core.DebugEntry
}

// fleetRunsTraffic mirrors SyntheticFleetTraffic's scenario as per-run
// entry streams: every failing run logs the bug sequence, shared noise,
// and one unique sequence (more negative than the bug, so only
// cross-run weighting ranks the bug first); correct runs log the noise,
// which cross-run pruning then removes.
func fleetRunsTraffic(failRuns, correctRuns int) []fleetRun {
	seq := func(ids ...uint64) deps.Sequence {
		s := make(deps.Sequence, len(ids))
		for i, id := range ids {
			s[i] = deps.Dep{S: id << 4, L: id<<4 + 1, Inter: true}
		}
		return s
	}
	entry := func(s deps.Sequence, out float64) core.DebugEntry {
		return core.DebugEntry{Seq: s, Output: out, Mode: core.Testing}
	}
	bug, noise := seq(1, 2, 3), seq(4, 5, 6)
	var runs []fleetRun
	for i := 0; i < failRuns; i++ {
		u := uint64(i)
		runs = append(runs, fleetRun{
			name: fmt.Sprintf("f%d", i), run: 101 + u, outcome: wire.OutcomeFailing,
			entries: []core.DebugEntry{
				entry(bug, -1.5),
				entry(noise, -0.5),
				entry(seq(10+u, 20+u, 30+u), -2.0),
			},
		})
	}
	for i := 0; i < correctRuns; i++ {
		runs = append(runs, fleetRun{
			name: fmt.Sprintf("c%d", i), run: 201 + uint64(i), outcome: wire.OutcomeCorrect,
			entries: []core.DebugEntry{entry(noise, -0.5)},
		})
	}
	return runs
}

// shardSlot is one logical shard's mutable topology state: where it
// currently listens and whether the network lets routers reach it.
// Router dials resolve through the slot, so a campaign can kill,
// partition and re-home a shard without the routers knowing.
type shardSlot struct {
	mu        sync.Mutex
	addr      string // guarded by mu
	reachable bool   // guarded by mu
	timeouts  bool   // guarded by mu; unreachable dials report a timeout, not a refusal
}

func (s *shardSlot) set(addr string, reachable, timeouts bool) {
	s.mu.Lock()
	s.addr, s.reachable, s.timeouts = addr, reachable, timeouts
	s.mu.Unlock()
}

func (s *shardSlot) dial() (net.Conn, error) {
	s.mu.Lock()
	addr, reachable, timeouts := s.addr, s.reachable, s.timeouts
	s.mu.Unlock()
	if !reachable {
		if timeouts {
			return nil, &timeoutError{}
		}
		return nil, &net.OpError{Op: "dial", Net: "tcp",
			Err: errors.New("connection refused (injected)")}
	}
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// timeoutError models a dial that hit a partition: net.Error with
// Timeout() true, which loader.TransientDefault retries and the
// router classifies as a timeout failure.
type timeoutError struct{}

func (*timeoutError) Error() string   { return "dial timeout (injected partition)" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// liveShard is one running shard collector.
type liveShard struct {
	name      string
	collector *fleet.Collector
	listener  net.Listener
	snapPath  string
	slot      *shardSlot
	dead      bool
}

func startFleetShard(name, snapPath string) (*liveShard, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := fleet.NewCollector(fleet.CollectorConfig{SnapshotPath: snapPath})
	go c.Serve(ln)
	return &liveShard{
		name: name, collector: c, listener: ln, snapPath: snapPath,
		slot: &shardSlot{},
	}, nil
}

func (s *liveShard) stop() {
	s.collector.Shutdown()
	s.listener.Close()
	s.dead = true
}

// RunFleetCampaign runs the traffic through the sharded tier once per
// fault kind and checks each arm's invariant. It is deterministic for
// a given seed: victims and injection rounds come from the seeded rng,
// faults land only at quiescent round boundaries, and the rollup merge
// is order-independent, so the final report does not depend on
// scheduling.
func RunFleetCampaign(cfg FleetCampaignConfig) (*FleetResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "actfleet")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	}

	runs := fleetRunsTraffic(cfg.FailRuns, cfg.CorrectRuns)

	// The never-failed reference: every run's full traffic into one
	// collector.
	base := fleet.NewCollector(fleet.CollectorConfig{})
	for _, r := range runs {
		base.Ingest(&wire.Batch{Agent: r.name, Run: r.run, Outcome: r.outcome, Entries: r.entries})
	}
	res := &FleetResult{Baseline: base.Report(), Shards: cfg.Shards}
	var want bytes.Buffer
	if err := res.Baseline.Save(&want); err != nil {
		return nil, err
	}

	for ki, kind := range cfg.Kinds {
		in := New(cfg.Seed + int64(ki)*10_000)
		row, err := runFleetArm(kind, in, runs, cfg, ki, want.Bytes())
		if err != nil {
			return nil, fmt.Errorf("faults: %s arm: %w", kind, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runFleetArm(kind FleetKind, in *Injector, runs []fleetRun, cfg FleetCampaignConfig, arm int, want []byte) (FleetRow, error) {
	armDir := filepath.Join(cfg.Dir, fmt.Sprintf("arm%d", arm))
	if err := os.MkdirAll(armDir, 0o755); err != nil {
		return FleetRow{}, err
	}

	// Start the shard tier.
	shards := make([]*liveShard, cfg.Shards)
	names := make(map[string]string, cfg.Shards)
	for i := range shards {
		name := fmt.Sprintf("shard%d", i)
		s, err := startFleetShard(name, filepath.Join(armDir, name+".snap"))
		if err != nil {
			return FleetRow{}, err
		}
		s.slot.set(s.listener.Addr().String(), true, false)
		shards[i] = s
		// The router hands its configured address to Dial; the campaign
		// dials through the slot table, so the "address" is the name.
		names[name] = name
		defer s.stop()
	}
	slotOf := make(map[string]*shardSlot, len(shards))
	for _, s := range shards {
		slotOf[s.name] = s.slot
	}

	victim := shards[in.rng.Intn(len(shards))]
	injectAt := 1 + in.rng.Intn(cfg.Rounds-1) // some traffic before and after
	row := FleetRow{Kind: kind, Victim: victim.name, Round: injectAt}

	// One router (and source) per run, alive across all rounds so the
	// global batch counter keeps dedup keys unique.
	type runner struct {
		src    *campaignSource
		router *shard.Router
	}
	runners := make([]runner, len(runs))
	for i, r := range runs {
		src := &campaignSource{}
		spoolDir := filepath.Join(armDir, "spool-"+r.name)
		if err := os.MkdirAll(spoolDir, 0o755); err != nil {
			return FleetRow{}, err
		}
		rt, err := shard.NewRouter(src, shard.RouterConfig{
			Shards:   names,
			Name:     r.name,
			Run:      r.run,
			Retry:    loader.RetryConfig{Attempts: 2, Sleep: func(time.Duration) {}},
			SpoolDir: spoolDir,
			Breaker: shard.BreakerConfig{
				Threshold: 1,
				BaseDelay: time.Microsecond,
				MaxDelay:  time.Millisecond,
				Rand:      func() float64 { return 0.5 },
			},
			Dial: dialBySlot(slotOf),
		})
		if err != nil {
			return FleetRow{}, err
		}
		rt.SetOutcome(r.outcome)
		runners[i] = runner{src: src, router: rt}
	}
	// delivered counts the batches the routers believe some shard has —
	// the quiesce target.
	delivered := func() uint64 {
		var n uint64
		for i := range runners {
			st := runners[i].router.Stats()
			n += st.Shipped + st.Replayed
		}
		return n
	}

	healAt := -1 // round at which a partition heals / a restart returns

	for round := 0; round < cfg.Rounds; round++ {
		if round == injectAt {
			switch kind {
			case FleetKill:
				if err := victim.collector.Snapshot(""); err != nil {
					return FleetRow{}, err
				}
				victim.stop()
				victim.slot.set("", false, false)
			case FleetPartition:
				victim.slot.set(victim.listener.Addr().String(), false, true)
				healAt = injectAt + 1
			case FleetRestart:
				if err := victim.collector.Snapshot(""); err != nil {
					return FleetRow{}, err
				}
				victim.stop()
				victim.slot.set("", false, false)
				healAt = injectAt + 1
			case FleetLose:
				victim.stop()
				os.Remove(victim.snapPath)
				victim.slot.set("", false, false)
			}
		}
		if round == healAt {
			switch kind {
			case FleetPartition:
				victim.slot.set(victim.listener.Addr().String(), true, false)
			case FleetRestart:
				// Back from the crash: a fresh listener, the snapshot
				// reloaded from disk.
				s, err := startFleetShard(victim.name, victim.snapPath)
				if err != nil {
					return FleetRow{}, err
				}
				reborn := *s
				reborn.slot = victim.slot
				*victim = reborn // the arm-end defer now stops the reborn shard
				victim.slot.set(victim.listener.Addr().String(), true, false)
			case FleetKill, FleetLose:
				// Never heal.
			}
		}

		// Feed this round's slice of every run and flush.
		for i, r := range runs {
			runners[i].src.push(roundSlice(r.entries, round, cfg.Rounds)...)
			runners[i].router.Flush() // failures spool or fail over; checked at the end
		}
		// Quiesce: every batch a router believes delivered must be in
		// some shard before the next fault lands.
		if err := waitFleetQuiesce(shards, delivered()); err != nil {
			return FleetRow{}, err
		}
		for i := range runners {
			runners[i].router.DropConnections()
		}
	}

	for i := range runners {
		runners[i].router.Close()
	}
	if err := waitFleetQuiesce(shards, delivered()); err != nil {
		return FleetRow{}, err
	}
	for i := range runners {
		st := runners[i].router.Stats()
		row.Reroutes += st.Reroutes
		row.Spooled += st.Spooled
		row.Replayed += st.Replayed
		row.DialFails += st.DialFailures
		row.TimeoutFails += st.TimeoutFails
	}

	// Roll up: live shards export state directly; a killed shard's
	// snapshot is read off disk; a lost shard has nothing.
	expected := make([]string, len(shards))
	for i, s := range shards {
		expected[i] = s.name
	}
	ru := shard.NewRollup(shard.RollupConfig{Expected: expected})
	for _, s := range shards {
		if !s.dead {
			if err := ru.AddState(s.name, s.collector.ExportState()); err != nil {
				return FleetRow{}, err
			}
			continue
		}
		state, err := os.ReadFile(s.snapPath)
		if err != nil {
			ru.MarkUnreachable(s.name, "dead, no snapshot")
			continue
		}
		if err := ru.AddState(s.name, state); err != nil {
			return FleetRow{}, err
		}
	}

	rr := ru.Report()
	row.Produced = rr != nil && rr.Report != nil
	row.Merged = ru.MergedShards()
	row.Completeness = rr.Completeness
	var got bytes.Buffer
	if row.Produced {
		if err := rr.Report.Save(&got); err != nil {
			return FleetRow{}, err
		}
	}
	row.Identical = bytes.Equal(got.Bytes(), want)

	switch kind {
	case FleetKill, FleetPartition, FleetRestart:
		// Lossless arms: the merged report must be byte-identical and
		// every shard's state accounted for.
		row.Violated = !row.Identical || row.Completeness != 1
	case FleetLose:
		// Lossy arm: graceful degradation — a report still comes out
		// and the annotations blame exactly the lost shard.
		wantCompl := float64(len(shards)-1) / float64(len(shards))
		row.Violated = !row.Produced || row.Completeness != wantCompl
	}
	return row, nil
}

// dialBySlot resolves a logical shard name through the campaign's slot
// table. The router passes the configured address; the campaign keys
// slots by shard name, so addresses are the names themselves.
func dialBySlot(slots map[string]*shardSlot) func(string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		slot, ok := slots[addr]
		if !ok {
			return nil, &net.OpError{Op: "dial", Net: "tcp",
				Err: fmt.Errorf("unknown shard %q", addr)}
		}
		return slot.dial()
	}
}

// roundSlice returns round r's contiguous share of entries.
func roundSlice(entries []core.DebugEntry, r, rounds int) []core.DebugEntry {
	n := len(entries)
	lo, hi := r*n/rounds, (r+1)*n/rounds
	return entries[lo:hi]
}

// campaignSource is a push-fed fleet.Source.
type campaignSource struct {
	mu      sync.Mutex
	pending []core.DebugEntry
	stats   core.Stats
}

func (s *campaignSource) push(es ...core.DebugEntry) {
	if len(es) == 0 {
		return
	}
	s.mu.Lock()
	s.pending = append(s.pending, es...)
	s.stats.PredictedInvalid += uint64(len(es))
	s.mu.Unlock()
}

func (s *campaignSource) Drain() ([]core.DebugEntry, core.Stats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.pending
	s.pending = nil
	return out, s.stats
}

// waitFleetQuiesce blocks until the shards have ingested (or deduped)
// every batch the routers shipped, bounded by a generous deadline.
func waitFleetQuiesce(shards []*liveShard, delivered uint64) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var got uint64
		for _, s := range shards {
			st := s.collector.Stats()
			got += st.Batches + st.DupBatches
		}
		if got >= delivered {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("faults: fleet quiesce timed out (delivered %d)", delivered)
}
