package faults

import (
	"reflect"
	"strings"
	"testing"

	"act/internal/nn"
	"act/internal/train"
)

// tinyCampaign is the smallest config that exercises the full pipeline:
// one bug, a handful of kinds, one rate, minimal training budget.
func tinyCampaign() CampaignConfig {
	return CampaignConfig{
		Bugs:  []string{"apache"},
		Kinds: []Kind{RecordDrop, DepStale, WeightSEU},
		Rates: []float64{0.01},
		Seed:  7,
		Train: train.Config{
			Ns:              []int{2},
			Hs:              []int{6},
			RandomNegatives: 2,
			Seed:            1,
			SearchFit:       nn.FitConfig{MaxEpochs: 200, Seed: 1},
			FinalFit:        nn.FitConfig{MaxEpochs: 1500, Seed: 1, Patience: 400},
		},
	}
}

func TestCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign runs the full train+deploy pipeline")
	}
	a, err := RunCampaign(tinyCampaign())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(tinyCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different campaigns:\n%s\nvs\n%s", a.Render(), b.Render())
	}

	// The clean baseline must diagnose the bug, or degradation numbers
	// mean nothing.
	if len(a.Baselines) != 1 || !a.Baselines[0].Detected {
		t.Fatalf("baseline failed to diagnose: %+v", a.Baselines)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(a.Rows))
	}
	for _, row := range a.Rows {
		if row.DebugLen == 0 && row.Kind != TraceTruncate {
			t.Errorf("%v: empty debug buffer", row.Kind)
		}
	}
	out := a.Render()
	for _, want := range []string{"apache", "(baseline)", "rec-drop", "dep-stale", "weight-seu"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}

func TestParseKinds(t *testing.T) {
	all, err := ParseKinds("all")
	if err != nil || len(all) != len(AllKinds()) {
		t.Fatalf("all: %v %v", all, err)
	}
	got, err := ParseKinds("trace-bits, weight-seu")
	if err != nil || len(got) != 2 || got[0] != TraceBits || got[1] != WeightSEU {
		t.Fatalf("parse: %v %v", got, err)
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range AllKinds() {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
