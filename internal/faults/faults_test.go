package faults

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"act/internal/nn"
	"act/internal/trace"
)

func sampleTrace(n int) *trace.Trace {
	tr := &trace.Trace{Program: "sample", Seed: 5, Steps: uint64(n)}
	for i := 0; i < n; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Seq: uint64(i), PC: uint64(0x400000 + i), Addr: uint64(0x10000000 + 8*i),
			Tid: uint16(i % 2), Store: i%2 == 0,
		})
	}
	return tr
}

func TestInjectorDeterministic(t *testing.T) {
	tr := sampleTrace(500)
	run := func() ([]byte, *trace.Trace, int, uint) {
		in := New(42)
		data, _ := in.FlipBits(make([]byte, 256), 0.1)
		dropped, _ := in.DropRecords(tr, 0.05)
		net := nn.New(4, 4, rand.New(rand.NewSource(1)))
		reg, bit := in.FlipWeightBit(net)
		return data, dropped, reg, bit
	}
	d1, t1, r1, b1 := run()
	d2, t2, r2, b2 := run()
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(t1, t2) || r1 != r2 || b1 != b2 {
		t.Fatal("same seed produced different faults")
	}
}

func TestDropKinds(t *testing.T) {
	tr := sampleTrace(1000)
	in := New(7)
	loads, dl := in.DropLoads(tr, 0.5)
	for _, r := range loads.Records {
		if !r.Store && dl == 0 {
			break
		}
	}
	if dl == 0 {
		t.Fatal("no loads dropped at rate 0.5")
	}
	stores := 0
	for _, r := range loads.Records {
		if r.Store {
			stores++
		}
	}
	if stores != 500 {
		t.Fatalf("DropLoads touched stores: %d left, want 500", stores)
	}

	st, ds := in.DropStores(tr, 0.5)
	if ds == 0 {
		t.Fatal("no stores dropped")
	}
	loadsLeft := 0
	for _, r := range st.Records {
		if !r.Store {
			loadsLeft++
		}
	}
	if loadsLeft != 500 {
		t.Fatalf("DropStores touched loads: %d left, want 500", loadsLeft)
	}
	if len(tr.Records) != 1000 {
		t.Fatal("injector mutated its input trace")
	}
}

func TestDuplicateAndSwap(t *testing.T) {
	tr := sampleTrace(100)
	in := New(3)
	dup, nd := in.DuplicateRecords(tr, 0.2)
	if nd == 0 || len(dup.Records) != 100+nd {
		t.Fatalf("duplicates: %d inserted, %d records", nd, len(dup.Records))
	}
	sw, ns := in.SwapRecords(tr, 0.5)
	if ns == 0 || len(sw.Records) != 100 {
		t.Fatalf("swaps: %d, %d records", ns, len(sw.Records))
	}
}

func TestAliasToLine(t *testing.T) {
	tr := sampleTrace(64)
	in := New(9)
	out, n := in.AliasToLine(tr, 1.0, 64)
	if n != 64 {
		t.Fatalf("aliased %d, want all", n)
	}
	for _, r := range out.Records {
		if r.Addr%64 != 0 {
			t.Fatalf("address %#x not line aligned", r.Addr)
		}
	}
}

func TestFlipWeightBitChangesOneWeight(t *testing.T) {
	net := nn.New(4, 4, rand.New(rand.NewSource(2)))
	before := net.Flatten(nil)
	in := New(11)
	reg, _ := in.FlipWeightBit(net)
	after := net.Flatten(nil)
	diffs := 0
	for i := range before {
		bi, ai := math.Float64bits(before[i]), math.Float64bits(after[i])
		if bi != ai {
			diffs++
			if i != reg {
				t.Fatalf("weight %d changed, reported %d", i, reg)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d weights changed, want exactly 1", diffs)
	}
}

func TestCorruptStreamRoundTrip(t *testing.T) {
	tr := sampleTrace(2000)
	// Clean pass: everything survives.
	got, rep, err := New(1).CorruptStream(tr, 0)
	if err != nil || rep.Corrupt() || len(got.Records) != 2000 {
		t.Fatalf("clean stream: err=%v rep=%v records=%d", err, rep, len(got.Records))
	}
	// A light bit-flip rate (~0.03% of bytes ≈ 1% of 33-byte frames)
	// yields a partial trace plus a report, never an error.
	got, rep, err = New(1).CorruptStream(tr, 0.0003)
	if err != nil {
		t.Fatalf("corrupted stream errored: %v", err)
	}
	if !rep.Corrupt() {
		t.Fatal("no corruption reported")
	}
	if len(got.Records) == 0 || len(got.Records) > 2000+rep.BadSpans {
		t.Fatalf("recovered %d records", len(got.Records))
	}
	if float64(len(got.Records)) < 0.95*2000 {
		t.Fatalf("lost too much: %d/2000 (report %v)", len(got.Records), rep)
	}
}
