package faults

import (
	"bytes"
	"fmt"
	"strings"

	"act/internal/core"
	"act/internal/deps"
	"act/internal/nn"
	"act/internal/ranking"
	"act/internal/trace"
	"act/internal/train"
	"act/internal/workloads"
)

// Campaign: sweep fault kind × rate across the bug workloads and
// measure what each fault costs in diagnosis capability — the
// robustness counterpart of the overhead benchmarks. Per bug, the clean
// pipeline (offline training, correct set, one production failure) runs
// once; each experimental arm then replays the same failure under
// injected faults and re-ranks the Debug Buffer. Everything is seeded,
// so a campaign is reproducible bit for bit.

// Kind enumerates the injectable fault classes. Annotated
// //act:exhaustive: the arm dispatcher (and any other switch over a
// Kind) must handle every class, so adding a tenth fault cannot
// silently produce arms that inject nothing.
//
//act:exhaustive
type Kind int

const (
	// TraceBits flips bits in the serialized failing trace before
	// ingest; the framed reader recovers what it can.
	TraceBits Kind = iota
	// TraceTruncate cuts the serialized trace short, as a crash during
	// collection would.
	TraceTruncate
	// RecordDrop removes records from the stream.
	RecordDrop
	// RecordDup duplicates records in place.
	RecordDup
	// RecordReorder swaps adjacent records.
	RecordReorder
	// DepDrop removes loads: dependences the tracker never observes.
	DepDrop
	// DepStale removes stores: the granule's last-writer metadata goes
	// stale, as after an SRAM-table eviction.
	DepStale
	// FalseShare aliases addresses to their cache line, colliding
	// unrelated words in last-writer tracking.
	FalseShare
	// WeightSEU flips one random weight bit in the record's module with
	// the given per-record probability.
	WeightSEU
)

var kindNames = map[Kind]string{
	TraceBits:     "trace-bits",
	TraceTruncate: "trace-trunc",
	RecordDrop:    "rec-drop",
	RecordDup:     "rec-dup",
	RecordReorder: "rec-reorder",
	DepDrop:       "dep-drop",
	DepStale:      "dep-stale",
	FalseShare:    "false-share",
	WeightSEU:     "weight-seu",
}

// String names the kind as the campaign tables print it.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// AllKinds lists every fault class in table order.
func AllKinds() []Kind {
	return []Kind{TraceBits, TraceTruncate, RecordDrop, RecordDup,
		RecordReorder, DepDrop, DepStale, FalseShare, WeightSEU}
}

// ParseKinds resolves a comma-separated kind list ("all" for all).
func ParseKinds(s string) ([]Kind, error) {
	if s == "" || s == "all" {
		return AllKinds(), nil
	}
	var out []Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for k, n := range kindNames {
			if n == name {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faults: unknown kind %q", name)
		}
	}
	return out, nil
}

// CampaignConfig parameterizes a sweep. Rates are per-record fault
// probabilities (for TraceBits the equivalent per-byte rate is derived;
// for TraceTruncate the rate is the maximum fraction cut).
type CampaignConfig struct {
	Bugs  []string  // bug workload names; default {"apache"}
	Kinds []Kind    // default AllKinds()
	Rates []float64 // default {0.001, 0.01, 0.05}
	Seed  int64     // master seed; default 1

	TrainRuns, TestRuns, CorrectSetRuns int          // default 8/3/10
	Train                               train.Config // offline-training overrides
	FailSeedBase                        int64        // default 100_000
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.Bugs) == 0 {
		c.Bugs = []string{"apache"}
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0.001, 0.01, 0.05}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TrainRuns == 0 {
		c.TrainRuns = 8
	}
	if c.TestRuns == 0 {
		c.TestRuns = 3
	}
	if c.CorrectSetRuns == 0 {
		c.CorrectSetRuns = 10
	}
	if len(c.Train.Ns) == 0 {
		c.Train = train.Config{
			Ns:              []int{2, 3},
			Hs:              []int{6, 10},
			RandomNegatives: 3,
			Seed:            1,
			SearchFit:       nn.FitConfig{MaxEpochs: 400, Seed: 1},
			FinalFit:        nn.FitConfig{MaxEpochs: 6000, Seed: 1, Patience: 800},
		}
	}
	if c.FailSeedBase == 0 {
		c.FailSeedBase = 100_000
	}
	return c
}

// Row is one experimental arm: a bug under one fault kind at one rate.
// Rate 0 with kind -1 is the bug's clean baseline.
type Row struct {
	Bug      string
	Kind     Kind
	Rate     float64
	Detected bool // root cause ranked at all
	Rank     int  // 0 = missed
	DebugLen int  // Debug Buffer entries at failure
	Survived int  // candidates after pruning

	// Ingest-level damage (trace faults only).
	RecordsIn int // records that reached the tracker
	Lost      int // records the recovering reader could not save

	// Module-level effects (weight faults and recovery).
	Flips      int    // SEUs injected
	Recoveries uint64 // snapshot rollbacks across all modules
}

// Result is a full campaign: per-bug baselines plus one row per arm.
type Result struct {
	Baselines []Row
	Rows      []Row
}

// RunCampaign executes the sweep. It is deterministic for a fixed
// config: the rng for each arm is derived from (seed, bug, kind, rate)
// indices, never from global state.
func RunCampaign(cfg CampaignConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	for bi, name := range cfg.Bugs {
		b, err := workloads.BugByName(name)
		if err != nil {
			return nil, err
		}
		pipe, err := BuildPipeline(b, cfg)
		if err != nil {
			return nil, fmt.Errorf("faults: %s: %w", name, err)
		}

		base := pipe.run(b, nil, nil)
		base.Bug, base.Kind, base.Rate = name, -1, 0
		res.Baselines = append(res.Baselines, base)

		for ki, kind := range cfg.Kinds {
			for ri, rate := range cfg.Rates {
				armSeed := cfg.Seed + int64(bi)*1_000_000 + int64(ki)*10_000 + int64(ri)*100
				row := pipe.arm(b, kind, rate, armSeed)
				row.Bug, row.Kind, row.Rate = name, kind, rate
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// Pipeline holds the per-bug clean diagnosis artifacts every campaign
// arm shares: the offline-trained network, the Correct Set, and one
// production failure. The RCA calibration harness (internal/rca)
// reuses it as the labeled replay it scores verdicts against — the
// bug's class and root-cause site are known ground truth.
type Pipeline struct {
	Trained    *train.Result
	CorrectSet *deps.SeqSet
	// CorrectSetRuns is how many correct executions built CorrectSet —
	// the evidence base behind every pruning decision.
	CorrectSetRuns int
	Fail           workloads.Run
}

// BuildPipeline trains on correct executions of the bug, collects the
// Correct Set, and finds one production failure (never reproduced).
func BuildPipeline(b workloads.Bug, cfg CampaignConfig) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	correct, err := workloads.CollectOutcome(b, false, cfg.TrainRuns+cfg.TestRuns, 0)
	if err != nil {
		return nil, fmt.Errorf("collecting training runs: %w", err)
	}
	tracesOf := func(runs []workloads.Run) []*trace.Trace {
		out := make([]*trace.Trace, len(runs))
		for i, r := range runs {
			out[i] = r.Trace
		}
		return out
	}
	tr, err := train.Train(tracesOf(correct[:cfg.TrainRuns]), tracesOf(correct[cfg.TrainRuns:]), cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("offline training: %w", err)
	}
	pruneRuns, err := workloads.CollectOutcome(b, false, cfg.CorrectSetRuns, 50_000)
	if err != nil {
		return nil, fmt.Errorf("collecting correct-set runs: %w", err)
	}
	fails, err := workloads.CollectOutcome(b, true, 1, cfg.FailSeedBase)
	if err != nil {
		return nil, fmt.Errorf("no failing execution: %w", err)
	}
	return &Pipeline{
		Trained:        tr,
		CorrectSet:     deps.CollectSequences(tracesOf(pruneRuns), deps.ExtractorConfig{N: tr.N}),
		CorrectSetRuns: cfg.CorrectSetRuns,
		Fail:           fails[0],
	}, nil
}

// arm prepares the faulted replay for one (kind, rate) cell and runs it.
func (p *Pipeline) arm(b workloads.Bug, kind Kind, rate float64, seed int64) Row {
	in := New(seed)
	failTrace := p.Fail.Trace
	var row Row
	var seu func(r trace.Record, m *core.Module)

	switch kind {
	case TraceBits:
		t, rep, err := in.CorruptStream(failTrace, rate/frameBytes)
		if err != nil {
			// Unrecoverable ingest (magic destroyed): nothing reaches
			// the tracker; diagnosis trivially fails.
			return Row{DebugLen: 0}
		}
		failTrace, row.Lost = t, rep.Lost
	case TraceTruncate:
		failTrace, row.Lost = in.truncateStream(failTrace, rate)
	case RecordDrop:
		failTrace, row.Lost = in.DropRecords(failTrace, rate)
	case RecordDup:
		failTrace, _ = in.DuplicateRecords(failTrace, rate)
	case RecordReorder:
		failTrace, _ = in.SwapRecords(failTrace, rate)
	case DepDrop:
		failTrace, row.Lost = in.DropLoads(failTrace, rate)
	case DepStale:
		failTrace, row.Lost = in.DropStores(failTrace, rate)
	case FalseShare:
		failTrace, _ = in.AliasToLine(failTrace, rate, 64)
	case WeightSEU:
		seu = func(r trace.Record, m *core.Module) {
			if in.rng.Float64() < rate {
				in.FlipWeightBit(m.Network())
				row.Flips++
			}
		}
	}

	got := p.run(b, failTrace, seu)
	got.Lost, got.Flips = row.Lost, row.Flips
	return got
}

// truncateStream round-trips the trace through serialization with a cut
// tail, returning the partial trace and records lost.
func (in *Injector) truncateStream(t *trace.Trace, rate float64) (*trace.Trace, int) {
	var buf bytes.Buffer
	if err := t.Write(&buf); err != nil {
		return &trace.Trace{Program: t.Program, Seed: t.Seed}, len(t.Records)
	}
	data, _ := in.Truncate(buf.Bytes(), 1-rate)
	got, rep, err := trace.ReadReport(bytes.NewReader(data))
	if err != nil {
		// The cut landed inside the header: nothing survives ingest.
		return &trace.Trace{Program: t.Program, Seed: t.Seed}, len(t.Records)
	}
	return got, rep.Lost
}

// Deploy replays failTrace (nil = the clean failing trace) through a
// fresh deployment of the trained weights, applying the per-record
// module fault if set, and returns the resulting Debug Buffer plus the
// deployment's stats.
func (p *Pipeline) Deploy(failTrace *trace.Trace, seu func(trace.Record, *core.Module)) ([]core.DebugEntry, core.Stats) {
	if failTrace == nil {
		failTrace = p.Fail.Trace
	}
	tr := p.Trained
	binary := core.NewWeightBinary(tr.Net.NIn, tr.Net.NHidden)
	binary.PatchAll(p.Fail.Program.NumThreads(), tr.Net.Flatten(nil))
	// The bug traces run a few hundred records, two orders of magnitude
	// below the hardware-default 1000-dependence rate window — at that
	// cadence no window would ever complete and the weight breaker would
	// be blind. Scale the window down and make the breaker hair-trigger
	// (one stalled window) so saturated or stalled modules can recover
	// within the handful of windows a campaign replay affords.
	tracker := core.NewTracker(binary, core.TrackerConfig{
		Module: core.Config{N: tr.N, Encoder: tr.Encoder,
			CheckInterval: 15, RecoveryWindows: 1},
	})
	for _, r := range failTrace.Records {
		if seu != nil {
			seu(r, tracker.Module(int(r.Tid)))
		}
		tracker.OnRecord(r)
	}
	return tracker.DebugBuffers(), tracker.Stats()
}

// Rank prunes and ranks a deployed Debug Buffer against the pipeline's
// Correct Set.
func (p *Pipeline) Rank(debug []core.DebugEntry) *ranking.Report {
	return ranking.Rank(debug, p.CorrectSet)
}

// run deploys the trained model and replays failTrace (nil = the clean
// failing trace), applying the per-record module fault if set, then
// prunes and ranks the Debug Buffer.
func (p *Pipeline) run(b workloads.Bug, failTrace *trace.Trace, seu func(trace.Record, *core.Module)) Row {
	if failTrace == nil {
		failTrace = p.Fail.Trace
	}
	debug, stats := p.Deploy(failTrace, seu)
	rep := p.Rank(debug)
	rank := rep.RankOf(b.Matcher(p.Fail.Program))
	return Row{
		Detected:   rank > 0,
		Rank:       rank,
		DebugLen:   len(debug),
		Survived:   len(rep.Ranked),
		RecordsIn:  len(failTrace.Records),
		Recoveries: stats.Recoveries,
	}
}

// frameBytes converts a per-record fault rate into the per-byte rate
// that damages the same fraction of framed records.
const frameBytes = 33

// Render formats the campaign as a fixed-width table with per-bug
// baselines on top.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-12s %7s | %8s %5s %5s %6s | %6s %5s %5s\n",
		"bug", "fault", "rate", "detected", "rank", "dbuf", "cands", "lost", "flips", "recov")
	line := strings.Repeat("-", 92)
	sb.WriteString(line + "\n")
	for _, b := range r.Baselines {
		fmt.Fprintf(&sb, "%-10s %-12s %7s | %8v %5d %5d %6d | %6s %5s %5s\n",
			b.Bug, "(baseline)", "-", b.Detected, b.Rank, b.DebugLen, b.Survived, "-", "-", "-")
	}
	sb.WriteString(line + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %-12s %7.4f | %8v %5d %5d %6d | %6d %5d %5d\n",
			row.Bug, row.Kind, row.Rate, row.Detected, row.Rank, row.DebugLen,
			row.Survived, row.Lost, row.Flips, row.Recoveries)
	}
	return sb.String()
}

// DetectionRate returns the fraction of arms that still ranked the root
// cause, the campaign's headline number.
func (r *Result) DetectionRate() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if row.Detected {
			n++
		}
	}
	return float64(n) / float64(len(r.Rows))
}
