package faults

import (
	"testing"

	"act/internal/wire"
)

// netScenario is the campaign's batch traffic: three failing runs all
// logging the bug sequence (plus noise that correct runs also log),
// two correct runs. The fault-free ranked output puts the bug at rank
// 1 on cross-run weight.
func netScenario() []*wire.Batch { return SyntheticFleetTraffic(3, 2) }

func TestNetCampaignAllArmsUnchanged(t *testing.T) {
	res, err := RunNetCampaign(netScenario(), NetCampaignConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(AllNetKinds()) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(AllNetKinds()))
	}
	if len(res.Baseline.Ranked) == 0 {
		t.Fatal("empty baseline ranking")
	}
	for _, row := range res.Rows {
		if !row.Unchanged {
			t.Errorf("%s (victim %d) changed the ranked output", row.Kind, row.Victim)
		}
		switch row.Kind {
		case NetCorrupt:
			if row.BadSpans == 0 {
				t.Errorf("net-corrupt injected no observable damage: %+v", row)
			}
			if row.Dups != 0 {
				t.Errorf("net-corrupt redelivery counted as dup (frame was lost): %+v", row)
			}
		case NetCut:
			if !row.Truncated {
				t.Errorf("net-cut did not truncate a stream: %+v", row)
			}
		case NetDup:
			if row.Dups != 1 {
				t.Errorf("net-dup dups = %d, want 1: %+v", row.Dups, row)
			}
		}
		if row.Streams != 2 {
			t.Errorf("%s used %d streams, want 2 (damage + redelivery)", row.Kind, row.Streams)
		}
	}
	if got := res.UnchangedRate(); got != 1 {
		t.Fatalf("unchanged rate = %v, want 1", got)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

// TestNetCampaignDeterministic: same seed, same result.
func TestNetCampaignDeterministic(t *testing.T) {
	a, err := RunNetCampaign(netScenario(), NetCampaignConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNetCampaign(netScenario(), NetCampaignConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("campaign not deterministic:\n%s\nvs\n%s", a.Render(), b.Render())
	}
}

// TestNetCampaignEverySeed sweeps seeds so the random victim and damage
// positions cover all batches; no seed may change the ranking.
func TestNetCampaignEverySeed(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		res, err := RunNetCampaign(netScenario(), NetCampaignConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := res.UnchangedRate(); got != 1 {
			t.Fatalf("seed %d: unchanged rate = %v\n%s", seed, got, res.Render())
		}
	}
}

func TestNetKindParse(t *testing.T) {
	ks, err := ParseNetKinds("net-dup, net-cut")
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 || ks[0] != NetDup || ks[1] != NetCut {
		t.Fatalf("got %v", ks)
	}
	if _, err := ParseNetKinds("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if ks, _ := ParseNetKinds("all"); len(ks) != len(AllNetKinds()) {
		t.Fatalf("all -> %v", ks)
	}
}
