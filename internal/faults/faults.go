// Package faults is a deterministic fault injector for the ACT
// pipeline. Production deployments see three classes of damage the
// evaluation must survive: trace streams corrupted or truncated on their
// way to offline tooling, dependence streams degraded by last-writer
// SRAM-table eviction and false sharing (Section IV/VI-D), and
// single-event upsets in the AM's weight memory. Every injection draws
// from one seeded source, so a campaign run is reproducible bit for bit.
//
// The injector operates at three levels, mirroring those classes:
//
//   - byte level: FlipBits and Truncate damage a serialized trace, the
//     input to the hardened framed reader;
//   - record level: Drop/Duplicate/Swap perturb the record stream, and
//     DropLoads/DropStores/AliasToLine model dependence-stream faults
//     (a dropped store leaves stale last-writer metadata behind, exactly
//     what a victimized SRAM entry looks like; line aliasing recreates
//     false sharing);
//   - weight level: FlipWeightBit applies an SEU to one network weight.
package faults

import (
	"bytes"
	"math"
	"math/rand"

	"act/internal/nn"
	"act/internal/trace"
)

// Injector is a seeded source of faults. It is not safe for concurrent
// use; campaigns create one per experimental arm.
type Injector struct {
	rng *rand.Rand
}

// New returns an injector drawing from the given seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// FlipBits returns a copy of data in which each byte independently had
// one random bit flipped with the given probability, plus the number of
// bytes damaged.
func (in *Injector) FlipBits(data []byte, rate float64) ([]byte, int) {
	out := append([]byte(nil), data...)
	flips := 0
	for i := range out {
		if in.rng.Float64() < rate {
			out[i] ^= 1 << uint(in.rng.Intn(8))
			flips++
		}
	}
	return out, flips
}

// Truncate cuts data at a random point in its final (1-keepMin) span —
// the crash-while-writing fault. It returns the prefix and the number of
// bytes lost.
func (in *Injector) Truncate(data []byte, keepMin float64) ([]byte, int) {
	if keepMin < 0 {
		keepMin = 0
	} else if keepMin > 1 {
		keepMin = 1
	}
	floor := int(keepMin * float64(len(data)))
	cut := floor
	if len(data) > floor {
		cut = floor + in.rng.Intn(len(data)-floor+1)
	}
	return data[:cut], len(data) - cut
}

// filterRecords copies t, keeping records for which keep returns true.
func filterRecords(t *trace.Trace, keep func(trace.Record) bool) (*trace.Trace, int) {
	out := &trace.Trace{Program: t.Program, Seed: t.Seed, Steps: t.Steps,
		Records: make([]trace.Record, 0, len(t.Records))}
	dropped := 0
	for _, r := range t.Records {
		if keep(r) {
			out.Records = append(out.Records, r)
		} else {
			dropped++
		}
	}
	return out, dropped
}

// DropRecords removes each record with the given probability.
func (in *Injector) DropRecords(t *trace.Trace, rate float64) (*trace.Trace, int) {
	return filterRecords(t, func(trace.Record) bool { return in.rng.Float64() >= rate })
}

// DropLoads removes each load record with the given probability: a
// dependence the tracker never sees.
func (in *Injector) DropLoads(t *trace.Trace, rate float64) (*trace.Trace, int) {
	return filterRecords(t, func(r trace.Record) bool {
		return r.Store || in.rng.Float64() >= rate
	})
}

// DropStores removes each store record with the given probability. The
// previous writer of the granule then stays "last": the stale-metadata
// fault left behind when an SRAM last-writer entry is evicted before a
// consumer load arrives.
func (in *Injector) DropStores(t *trace.Trace, rate float64) (*trace.Trace, int) {
	return filterRecords(t, func(r trace.Record) bool {
		return !r.Store || in.rng.Float64() >= rate
	})
}

// DuplicateRecords re-emits each record immediately with the given
// probability (a retried write on the collection path). It returns the
// copy and the number of duplicates inserted.
func (in *Injector) DuplicateRecords(t *trace.Trace, rate float64) (*trace.Trace, int) {
	out := &trace.Trace{Program: t.Program, Seed: t.Seed, Steps: t.Steps,
		Records: make([]trace.Record, 0, len(t.Records))}
	dups := 0
	for _, r := range t.Records {
		out.Records = append(out.Records, r)
		if in.rng.Float64() < rate {
			out.Records = append(out.Records, r)
			dups++
		}
	}
	return out, dups
}

// SwapRecords exchanges each adjacent record pair with the given
// probability — locally reordered delivery. It returns the copy and the
// number of swaps.
func (in *Injector) SwapRecords(t *trace.Trace, rate float64) (*trace.Trace, int) {
	out := &trace.Trace{Program: t.Program, Seed: t.Seed, Steps: t.Steps,
		Records: append([]trace.Record(nil), t.Records...)}
	swaps := 0
	for i := 0; i+1 < len(out.Records); i += 2 {
		if in.rng.Float64() < rate {
			out.Records[i], out.Records[i+1] = out.Records[i+1], out.Records[i]
			swaps++
		}
	}
	return out, swaps
}

// AliasToLine rounds each record's address down to its line-sized
// granule with the given probability, so unrelated words collide in
// last-writer tracking — the false-sharing artifact of line-granularity
// hardware. line must be a power of two.
func (in *Injector) AliasToLine(t *trace.Trace, rate float64, line uint64) (*trace.Trace, int) {
	out := &trace.Trace{Program: t.Program, Seed: t.Seed, Steps: t.Steps,
		Records: append([]trace.Record(nil), t.Records...)}
	aliased := 0
	for i := range out.Records {
		if in.rng.Float64() < rate {
			out.Records[i].Addr &^= line - 1
			aliased++
		}
	}
	return out, aliased
}

// FlipWeightBit applies a single-event upset to the network: one random
// bit of one random weight register is inverted. It returns the register
// index and bit position. Flips in the exponent or sign routinely drive
// the weight to a huge magnitude, NaN, or Inf — the divergence the AM's
// snapshot/rollback breaker must catch.
func (in *Injector) FlipWeightBit(net *nn.Network) (reg int, bit uint) {
	reg = in.rng.Intn(net.WeightCount())
	bit = uint(in.rng.Intn(64))
	v := math.Float64bits(net.ReadRegister(reg))
	net.WriteRegister(reg, math.Float64frombits(v^(1<<bit)))
	return reg, bit
}

// CorruptStream serializes the trace in the framed format, damages the
// bytes with FlipBits at the given rate, and reads it back through the
// recovering reader — the full ingest round trip a production trace
// takes. It returns the recovered partial trace and the reader's report.
func (in *Injector) CorruptStream(t *trace.Trace, rate float64) (*trace.Trace, *trace.CorruptionReport, error) {
	var buf bytes.Buffer
	if err := t.Write(&buf); err != nil {
		return nil, nil, err
	}
	data, _ := in.FlipBits(buf.Bytes(), rate)
	return trace.ReadReport(bytes.NewReader(data))
}
