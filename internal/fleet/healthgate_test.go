package fleet

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"act/internal/deps"
	"act/internal/obs"
	"act/internal/wire"
)

// TestFleetHealthGateFlushOnShutdown pins the SIGTERM-mid-ship fix: the
// daemons route termination through an obs.Health gate whose shutdown
// hook closes the in-flight agent, so evidence the collector cannot
// take lands in the spool instead of dying with the process. This test
// runs the exact hook wiring actagent uses — an atomic current-agent
// pointer, a flush hook, a Shutdown from a "signal handler" goroutine —
// against a down collector, then replays the spool into a live one and
// checks nothing was lost.
func TestFleetHealthGateFlushOnShutdown(t *testing.T) {
	spool := filepath.Join(t.TempDir(), "spool.actw")

	var current atomic.Pointer[Agent]
	health := obs.NewHealth()
	health.SetReady("agent", true)
	health.OnShutdown("flush-current", func() {
		if ag := current.Load(); ag != nil {
			ag.Close() // idempotent; the error is the spool's to report
		}
	})

	src := &stubSource{}
	src.push(failingEntries(0)...)
	ag, err := NewAgent(src, AgentConfig{
		Addr:      "collector:0",
		Name:      "doomed",
		Run:       31,
		SpoolPath: spool,
		Retry:     quickRetry(2),
		Dial: func(string) (net.Conn, error) {
			return nil, errors.New("injected: collector down")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ag.SetOutcome(wire.OutcomeFailing)
	current.Store(ag)

	// The "SIGTERM": a different goroutine drives the gate, exactly like
	// actagent's signal handler. Shutdown returns only once the hook —
	// and therefore the flush — has completed.
	done := make(chan struct{})
	go func() {
		defer close(done)
		health.Shutdown()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("health.Shutdown did not return")
	}
	if health.Ready() {
		t.Fatal("gate still ready after shutdown")
	}

	if st := ag.Stats(); st.Spooled == 0 || st.Shipped != 0 {
		t.Fatalf("evidence not spooled by the shutdown hook: %+v", st)
	}
	if fi, err := os.Stat(spool); err != nil || fi.Size() == 0 {
		t.Fatalf("spool file missing or empty after shutdown: %v", err)
	}

	// Close after the hook already closed must stay safe (main's deferred
	// Close races the signal path in the daemon). It may re-report the
	// down collector; what matters is the spool survives untouched.
	ag.Close()
	if st := ag.Stats(); st.SpoolDrops != 0 {
		t.Fatalf("second Close dropped the spool: %+v", st)
	}
	if fi, err := os.Stat(spool); err != nil || fi.Size() == 0 {
		t.Fatalf("spool file gone after second Close: %v", err)
	}

	// A later invocation with the same spool and a live collector
	// replays the evidence: the interrupted run lost nothing.
	c, addr := startCollector(t, CollectorConfig{})
	ag2, err := NewAgent(&stubSource{}, AgentConfig{
		Addr: addr, Name: "revived", Run: 32, SpoolPath: spool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ag2.Flush(); err != nil {
		t.Fatalf("replay flush: %v", err)
	}
	if err := ag2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := ag2.Stats(); st.Replayed == 0 {
		t.Fatalf("spool not replayed: %+v", st)
	}
	waitFor(t, "spooled evidence ingested", func() bool { return c.Stats().Batches >= 1 })
	rep := c.Report()
	if rep.RankOf(func(s deps.Sequence) bool { return s.Key() == bugSeq.Key() }) == 0 {
		t.Fatal("evidence from the interrupted run missing from report")
	}
}
