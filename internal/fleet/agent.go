// Package fleet moves ACT's production telemetry off the box and merges
// it centrally. The paper's Debug Buffer and misprediction statistics
// are produced on end-user machines; diagnosing at production scale is
// an aggregation problem — many instances, one collector. An Agent runs
// next to a deployed monitor, periodically drains its Debug Buffers
// into bounded batches and ships them over TCP in the wire format; the
// Collector receives batches from the whole fleet, deduplicates
// re-deliveries, counts per-sequence occurrences across runs, and ranks
// the merged evidence so a sequence seen in many failing runs but few
// correct ones surfaces first.
//
// The transport is at-least-once by design: the agent retries with
// capped backoff (reusing internal/loader's transient/permanent
// classification), spools batches to disk while the collector is down,
// and replays the spool on reconnect. The collector makes redelivery
// harmless by dropping batches whose sequence hash it has already
// ingested, and the wire format's per-frame CRCs let a connection
// survive torn or corrupted frames.
//
//act:goleak
package fleet

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"act/internal/core"
	"act/internal/loader"
	"act/internal/wire"
)

// Source is what an Agent drains: a deployed monitor (act.Monitor via
// act.ShipTo) or anything else that accumulates Debug Buffer entries.
// Drain returns the entries logged since the previous drain — clearing
// them — plus a snapshot of the cumulative counters.
type Source interface {
	Drain() ([]core.DebugEntry, core.Stats)
}

// AgentConfig parameterizes an Agent.
type AgentConfig struct {
	Addr string // collector address (host:port); required
	Name string // agent identity in batches; default "agent"
	Run  uint64 // run id, unique per monitored execution; default 1

	// Interval is the drain cadence of the background loop started by
	// Start; default 2s. Flush drains on demand regardless.
	Interval time.Duration
	// MaxBatchEntries caps entries per batch so one frame stays well
	// under the collector's payload limit; default 256.
	MaxBatchEntries int
	// MaxQueue bounds the in-memory batch queue. When the collector is
	// unreachable and the spool is off (or full), the oldest queued
	// batch is dropped for each new one — fresh evidence outlives
	// stale under backpressure; default 64.
	MaxQueue int

	// SpoolPath, when set, is a file where undeliverable batches are
	// saved (in wire format) and replayed on the next successful
	// connect, so a collector outage loses nothing.
	SpoolPath string
	// SpoolMaxBytes caps the spool file; when exceeded, the spool is
	// dropped wholesale and restarted so the newest evidence is what
	// survives; default 8 MiB.
	SpoolMaxBytes int64

	// Retry governs per-ship connection attempts; zero value = loader
	// defaults (4 attempts, 10ms base, 250ms cap). Wire protocol
	// errors are classified permanent on top of the given policy.
	Retry loader.RetryConfig

	// DialTimeout bounds one connection attempt to the collector;
	// default 5s. Chaos tests shrink it so a dead collector is detected
	// in milliseconds; slow links raise it.
	DialTimeout time.Duration
	// WriteTimeout is the per-write deadline on the collector
	// connection, matching the collector's ReadTimeout on the other
	// side; default 2 minutes. A collector that accepts but never reads
	// fails the ship with a timeout instead of stalling the loop.
	WriteTimeout time.Duration

	// Dial replaces the TCP dialer (tests, alternate transports).
	Dial func(addr string) (net.Conn, error)
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.Name == "" {
		c.Name = "agent"
	}
	if c.Run == 0 {
		c.Run = 1
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxBatchEntries <= 0 {
		c.MaxBatchEntries = 256
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.SpoolMaxBytes <= 0 {
		c.SpoolMaxBytes = 8 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 2 * time.Minute
	}
	if c.Dial == nil {
		timeout := c.DialTimeout
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	base := c.Retry.Transient
	if base == nil {
		base = loader.TransientDefault
	}
	c.Retry.Transient = func(err error) bool {
		return base(err) && !wire.IsProtocolError(err)
	}
	return c
}

// AgentStats counts an agent's activity.
type AgentStats struct {
	Drained        uint64 // entries taken from the source
	Batches        uint64 // batches formed
	Shipped        uint64 // batches written to the collector
	Spooled        uint64 // batches written to the spool file
	Replayed       uint64 // spooled batches re-shipped after reconnect
	DroppedBatches uint64 // batches lost to queue backpressure
	SpoolDrops     uint64 // spool resets after exceeding the size cap
	Dials          uint64 // connection (re)establishments
	ShipAttempts   uint64 // ship attempts, retries included (attempts - dials = retries after failure)

	// Spool damage observed during replay: a crash mid-append (or disk
	// corruption) costs the damaged frames, which the replay reader
	// skips and counts here — the CorruptionReport of the spool path.
	SpoolBadSpans     uint64 // corrupt spans skipped while replaying the spool
	SpoolSkippedBytes uint64 // bytes discarded while replaying the spool
}

// Agent drains a Source and ships batches to the collector. All methods
// are safe for concurrent use with each other; the Source is only ever
// called from inside the agent's lock, so a Source guarding a monitor
// needs no locking of its own beyond what the monitor requires.
type Agent struct {
	cfg AgentConfig
	src Source

	mu       sync.Mutex
	queue    []*wire.Batch // guarded by mu
	seq      uint64        // guarded by mu
	outcome  wire.Outcome  // guarded by mu
	sentMark bool          // guarded by mu; current outcome label batched at least once
	conn     net.Conn      // guarded by mu
	wr       *wire.Writer  // guarded by mu
	stats    AgentStats    // guarded by mu

	started  bool // guarded by mu
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewAgent creates an agent shipping src's entries to cfg.Addr. The
// agent is passive until Start (periodic) or Flush (on demand).
func NewAgent(src Source, cfg AgentConfig) (*Agent, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("fleet: agent needs a collector address")
	}
	return &Agent{
		cfg:  cfg.withDefaults(),
		src:  src,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}, nil
}

// SetOutcome labels batches drained from now on: call with
// wire.OutcomeFailing when the monitored program crashes, or
// wire.OutcomeCorrect when it exits clean, then Flush.
func (a *Agent) SetOutcome(o wire.Outcome) {
	a.mu.Lock()
	if a.outcome != o {
		a.outcome = o
		a.sentMark = false // next drain emits a batch even when empty
	}
	a.mu.Unlock()
}

// Stats returns a copy of the activity counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// QueueDepth returns the number of batches waiting in the in-memory
// queue (act_agent_queue_depth).
func (a *Agent) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// SpoolBytes returns the current size of the spool file, 0 when
// spooling is off or the file is absent (act_agent_spool_bytes).
func (a *Agent) SpoolBytes() int64 {
	a.mu.Lock()
	path := a.cfg.SpoolPath
	a.mu.Unlock()
	return SpoolSize(path)
}

// Tick drains the source into the bounded queue without shipping.
func (a *Agent) Tick() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
}

// drainLocked pulls entries from the source and forms batches, applying
// drop-oldest backpressure to the queue.
//
//act:locked mu
func (a *Agent) drainLocked() {
	entries, stats := a.src.Drain()
	a.stats.Drained += uint64(len(entries))
	if len(entries) == 0 && a.seq > 0 && a.sentMark {
		// Nothing new, and the collector has already seen this run
		// under its current outcome label: skip the empty batch. The
		// run's first batch and outcome flips always go out.
		return
	}
	a.sentMark = true
	for first := true; first || len(entries) > 0; first = false {
		n := len(entries)
		if n > a.cfg.MaxBatchEntries {
			n = a.cfg.MaxBatchEntries
		}
		b := &wire.Batch{
			Agent:   a.cfg.Name,
			Run:     a.cfg.Run,
			Seq:     a.seq,
			Outcome: a.outcome,
			Stats:   stats,
			Entries: entries[:n:n],
		}
		entries = entries[n:]
		a.seq++
		a.stats.Batches++
		if len(a.queue) >= a.cfg.MaxQueue {
			a.queue = a.queue[1:]
			a.stats.DroppedBatches++
		}
		a.queue = append(a.queue, b)
	}
}

// Flush drains the source and ships everything queued (and spooled),
// synchronously. On failure the batches are spooled (if configured) and
// the error returned; the queue keeps what could be neither shipped nor
// spooled, under its drop-oldest bound.
func (a *Agent) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.drainLocked()
	return a.shipLocked()
}

// Start runs the periodic drain-and-ship loop in the background until
// Close.
func (a *Agent) Start() {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.mu.Lock()
				a.drainLocked()
				a.shipLocked() // errors already counted; spool has the rest
				a.mu.Unlock()
			}
		}
	}()
}

// Close stops the loop, attempts a final flush, and closes the
// connection. The returned error is the final flush's.
func (a *Agent) Close() error {
	a.stopOnce.Do(func() { close(a.stop) })
	a.mu.Lock()
	started := a.started
	a.mu.Unlock()
	if started {
		<-a.done
	}
	err := a.Flush()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.conn != nil {
		a.conn.Close()
		a.conn = nil
		a.wr = nil
	}
	return err
}

// shipLocked writes queued batches to the collector under the retry
// policy. On success the queue (and any spool) is empty; on failure the
// queue is spooled to disk when configured.
//
//act:locked mu
func (a *Agent) shipLocked() error {
	if len(a.queue) == 0 && !a.spoolExists() {
		return nil
	}
	err := loader.Do(a.cfg.Retry, func() error {
		a.stats.ShipAttempts++
		if a.conn == nil {
			conn, err := a.cfg.Dial(a.cfg.Addr)
			if err != nil {
				return err
			}
			a.conn = conn
			a.wr = wire.NewWriter(DeadlineWriter(conn, a.cfg.WriteTimeout))
			a.stats.Dials++
			if err := a.replaySpoolLocked(); err != nil {
				a.dropConnLocked()
				return err
			}
		}
		for len(a.queue) > 0 {
			if err := a.wr.WriteBatch(a.queue[0]); err != nil {
				a.dropConnLocked()
				return err
			}
			a.queue = a.queue[1:]
			a.stats.Shipped++
		}
		return nil
	})
	if err != nil && a.cfg.SpoolPath != "" {
		if serr := a.spoolLocked(); serr == nil {
			return fmt.Errorf("fleet: collector unreachable, %d batch(es) spooled: %w",
				a.stats.Spooled, err)
		}
	}
	return err
}

// dropConnLocked abandons the current connection after an error; the
// next attempt redials. Batches not yet acknowledged stay queued — the
// collector dedups any frame that did arrive.
//
//act:locked mu
func (a *Agent) dropConnLocked() {
	if a.conn != nil {
		a.conn.Close()
	}
	a.conn = nil
	a.wr = nil
}

// spoolExists reports whether a non-empty spool file is waiting.
func (a *Agent) spoolExists() bool {
	if a.cfg.SpoolPath == "" {
		return false
	}
	fi, err := os.Stat(a.cfg.SpoolPath)
	return err == nil && fi.Size() > 0
}

// spoolLocked appends the queued batches to the spool file, emptying
// the queue. A spool past its size cap is dropped and restarted: under
// sustained outage the newest evidence is the evidence worth keeping.
//
//act:locked mu
func (a *Agent) spoolLocked() error {
	if len(a.queue) == 0 {
		return nil
	}
	written, reset, err := AppendSpool(a.cfg.SpoolPath, a.cfg.SpoolMaxBytes, a.queue)
	if reset {
		a.stats.SpoolDrops++
	}
	a.queue = a.queue[written:]
	a.stats.Spooled += uint64(written)
	return err
}

// replaySpoolLocked re-ships every batch saved in the spool file over
// the (fresh) connection, then removes the file. Damage inside the
// spool — a crash mid-append — costs only the damaged frames, exactly
// like damage on the wire; the skipped spans are surfaced in the
// SpoolBadSpans/SpoolSkippedBytes counters (per replay attempt).
//
//act:locked mu
func (a *Agent) replaySpoolLocked() error {
	if !a.spoolExists() {
		return nil
	}
	f, err := os.Open(a.cfg.SpoolPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rd := wire.NewReader(f, 0)
	defer func() {
		rep := rd.Report()
		a.stats.SpoolBadSpans += uint64(rep.BadSpans)
		a.stats.SpoolSkippedBytes += uint64(rep.SkippedBytes)
	}()
	for {
		b, err := rd.Next()
		if err != nil {
			break // EOF or a spool too damaged to continue; ship what we got
		}
		if err := a.wr.WriteBatch(b); err != nil {
			return err
		}
		a.stats.Replayed++
	}
	return os.Remove(a.cfg.SpoolPath)
}
