package fleet

import "act/internal/obs"

// Metrics bridges. Agents and collectors already count their activity
// under their own locks (AgentStats, CollectorStats); these helpers
// expose those counters on a registry as scrape-time samples, so
// instrumented daemons pay nothing on the ship/ingest paths beyond the
// collector's ingest span.

// RegisterAgentMetrics registers the act_agent_* series against a
// getter instead of a fixed instance — the shape a daemon that rotates
// one Agent per run needs. get must be safe to call concurrently and
// may return nil (series then read 0).
func RegisterAgentMetrics(r *obs.Registry, get func() *Agent) {
	stats := func() AgentStats {
		if a := get(); a != nil {
			return a.Stats()
		}
		return AgentStats{}
	}
	r.CounterFunc("act_agent_drained_total",
		"Debug Buffer entries drained from the monitored source.",
		func() uint64 { return stats().Drained })
	r.CounterFunc("act_agent_batches_total",
		"Batches formed from drained entries.",
		func() uint64 { return stats().Batches })
	r.CounterFunc("act_agent_shipped_total",
		"Batches written to the collector.",
		func() uint64 { return stats().Shipped })
	r.CounterFunc("act_agent_spooled_total",
		"Batches written to the on-disk spool.",
		func() uint64 { return stats().Spooled })
	r.CounterFunc("act_agent_replayed_total",
		"Spooled batches re-shipped after reconnect.",
		func() uint64 { return stats().Replayed })
	r.CounterFunc("act_agent_dropped_batches_total",
		"Batches lost to queue backpressure.",
		func() uint64 { return stats().DroppedBatches })
	r.CounterFunc("act_agent_spool_drops_total",
		"Spool resets after exceeding the size cap.",
		func() uint64 { return stats().SpoolDrops })
	r.CounterFunc("act_agent_dials_total",
		"Collector connection (re)establishments.",
		func() uint64 { return stats().Dials })
	r.CounterFunc("act_agent_ship_attempts_total",
		"Ship attempts including retries; attempts minus shipped batches reflects retry pressure.",
		func() uint64 { return stats().ShipAttempts })
	r.CounterFunc("act_agent_spool_bad_spans_total",
		"Corrupt spans skipped while replaying the spool.",
		func() uint64 { return stats().SpoolBadSpans })
	r.CounterFunc("act_agent_spool_skipped_bytes_total",
		"Bytes discarded while resynchronizing a damaged spool.",
		func() uint64 { return stats().SpoolSkippedBytes })
	r.GaugeFunc("act_agent_queue_depth",
		"Batches waiting in the in-memory queue.",
		func() float64 {
			if a := get(); a != nil {
				return float64(a.QueueDepth())
			}
			return 0
		})
	r.GaugeFunc("act_agent_spool_bytes",
		"Current size of the on-disk spool file.",
		func() float64 {
			if a := get(); a != nil {
				return float64(a.SpoolBytes())
			}
			return 0
		})
}

// RegisterMetrics exposes the agent's activity on r as act_agent_*
// series, sampled at scrape time — the fixed-instance form of
// RegisterAgentMetrics.
func (a *Agent) RegisterMetrics(r *obs.Registry) {
	RegisterAgentMetrics(r, func() *Agent { return a })
}

// RegisterMetrics exposes the collector's activity on r as
// act_collector_* series, sampled at scrape time, plus the live ingest
// span histogram.
func (c *Collector) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("act_collector_conns_total",
		"Agent connections accepted.",
		func() uint64 { return c.Stats().Conns })
	r.CounterFunc("act_collector_rejected_total",
		"Connections refused at the MaxConns cap.",
		func() uint64 { return c.Stats().Rejected })
	r.CounterFunc("act_collector_batches_total",
		"Batches ingested into the aggregate.",
		func() uint64 { return c.Stats().Batches })
	r.CounterFunc("act_collector_dup_batches_total",
		"Redelivered batches dropped by dedup.",
		func() uint64 { return c.Stats().DupBatches })
	r.CounterFunc("act_collector_entries_total",
		"Debug Buffer entries ingested before per-run dedup.",
		func() uint64 { return c.Stats().Entries })
	r.CounterFunc("act_collector_bad_spans_total",
		"Corrupt spans skipped across all connections.",
		func() uint64 { return c.Stats().BadSpans })
	r.CounterFunc("act_collector_skipped_bytes_total",
		"Bytes discarded while resynchronizing corrupt streams.",
		func() uint64 { return c.Stats().SkippedBytes })
	r.GaugeFunc("act_collector_sequences",
		"Distinct dependence sequences aggregated.",
		func() float64 { return float64(c.Sequences()) })
	r.GaugeFunc("act_collector_runs",
		"Distinct runs seen, decided or not.",
		func() float64 { return float64(c.Runs()) })
	r.AddHistogram("act_collector_ingest_ns",
		"Duration of one batch merge in nanoseconds.", &c.ingestNS)
}
